// DPI tests: Aho-Corasick correctness (overlaps, shared prefixes, counts)
// and element-level drop/paint actions.
#include <gtest/gtest.h>

#include <cstring>

#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "nf/dpi.hpp"

namespace mdp::nf {
namespace {

std::size_t count_in(AhoCorasick& ac, const std::string& text) {
  return ac.match_count(reinterpret_cast<const std::byte*>(text.data()),
                        text.size());
}

TEST(AhoCorasick, FindsSinglePattern) {
  AhoCorasick ac;
  ac.add_pattern("needle");
  ac.build();
  EXPECT_EQ(count_in(ac, "hay needle hay"), 1u);
  EXPECT_EQ(count_in(ac, "haystack only"), 0u);
  EXPECT_EQ(count_in(ac, "needleneedle"), 2u);
}

TEST(AhoCorasick, OverlappingOccurrencesAllCounted) {
  AhoCorasick ac;
  ac.add_pattern("aa");
  ac.build();
  EXPECT_EQ(count_in(ac, "aaaa"), 3u) << "overlaps at 0,1,2";
}

TEST(AhoCorasick, PatternsSharingPrefixesAndSuffixes) {
  AhoCorasick ac;
  ac.add_pattern("he");
  ac.add_pattern("she");
  ac.add_pattern("his");
  ac.add_pattern("hers");
  ac.build();
  // "ushers" contains she (1), he (1), hers (1).
  EXPECT_EQ(count_in(ac, "ushers"), 3u);
}

TEST(AhoCorasick, SubstringPatternBothMatch) {
  AhoCorasick ac;
  ac.add_pattern("abc");
  ac.add_pattern("b");
  ac.build();
  EXPECT_EQ(count_in(ac, "abc"), 2u);
}

TEST(AhoCorasick, FirstMatchIdReported) {
  AhoCorasick ac;
  int id_foo = ac.add_pattern("foo");
  int id_bar = ac.add_pattern("bar");
  ac.build();
  std::string text = "xxbarfoo";
  int first = -1;
  ac.match_count(reinterpret_cast<const std::byte*>(text.data()),
                 text.size(), &first);
  EXPECT_EQ(first, id_bar);
  (void)id_foo;
}

TEST(AhoCorasick, BinaryBytesSupported) {
  AhoCorasick ac;
  std::string pat("\x00\xff\x7f", 3);
  ac.add_pattern(pat);
  ac.build();
  std::string text = std::string("abc") + pat + "def";
  EXPECT_EQ(count_in(ac, text), 1u);
}

TEST(AhoCorasick, UnbuiltAutomatonMatchesNothing) {
  AhoCorasick ac;
  ac.add_pattern("x");
  EXPECT_EQ(count_in(ac, "xxx"), 0u);
}

struct DpiFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{64, 2048};

  net::PacketPtr packet_with_payload(const std::string& payload) {
    net::BuildSpec spec;
    spec.flow = {1, 2, 3, 4, 17};
    spec.payload_len = payload.size();
    auto pkt = net::build_udp(pool, spec);
    auto parsed = net::parse(*pkt);
    std::memcpy(pkt->data() + parsed->payload_offset, payload.data(),
                payload.size());
    return pkt;
  }
};

TEST_F(DpiFixture, DropActionDivertsMatches) {
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    dpi :: Dpi(drop, "EVIL", "MALWARE");
    clean :: Counter; dirty :: Counter;
    dpi [0] -> clean -> Discard; dpi [1] -> dirty -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* dpi = router.find("dpi");
  dpi->push(0, packet_with_payload("totally benign data"));
  dpi->push(0, packet_with_payload("xxEVILxx"));
  dpi->push(0, packet_with_payload("MALWARE and EVIL"));
  EXPECT_EQ(router.find_as<click::Counter>("clean")->packets(), 1u);
  EXPECT_EQ(router.find_as<click::Counter>("dirty")->packets(), 2u);
}

TEST_F(DpiFixture, PaintActionMarksAndPasses) {
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  ASSERT_TRUE(router.configure(
      "dpi :: Dpi(paint 7, \"BAD\"); q :: Queue(8); dpi -> q;", &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* dpi = router.find("dpi");
  dpi->push(0, packet_with_payload("has BAD inside"));
  dpi->push(0, packet_with_payload("spotless"));
  auto* q = router.find_as<click::Queue>("q");
  auto first = q->pull(0);
  auto second = q->pull(0);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->anno().paint, 7);
  EXPECT_EQ(second->anno().paint, 0);
}

TEST_F(DpiFixture, MatchWithoutPort1Drops) {
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  ASSERT_TRUE(router.configure(
      "dpi :: Dpi(drop, \"X\"); c :: Counter; dpi -> c -> Discard;", &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  std::size_t in_use = pool.in_use();
  router.find("dpi")->push(0, packet_with_payload("XXX"));
  EXPECT_EQ(pool.in_use(), in_use);
  EXPECT_EQ(router.find_as<click::Counter>("c")->packets(), 0u);
}

TEST(DpiConfig, Rejected) {
  sim::EventQueue eq;
  net::PacketPool pool(8, 2048);
  std::string err;
  click::Router r1(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r1.configure("d :: Dpi(drop);", &err)) << "needs patterns";
  click::Router r2(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r2.configure("d :: Dpi(explode, \"x\");", &err));
  click::Router r3(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r3.configure("d :: Dpi(paint 900, \"x\");", &err));
}

}  // namespace
}  // namespace mdp::nf
