// Simulation substrate tests: event queue ordering/determinism, RNG,
// distributions, the SimCore queueing model, interference duty cycle, and
// the multi-queue NIC.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet_builder.hpp"
#include "sim/distributions.hpp"
#include "sim/event_queue.hpp"
#include "sim/interference.hpp"
#include "sim/nic.hpp"
#include "sim/rng.hpp"
#include "sim/sim_core.hpp"

namespace mdp::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(300, [&] { order.push_back(3); });
  eq.schedule_at(100, [&] { order.push_back(1); });
  eq.schedule_at(200, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eq.schedule_at(500, [&order, i] { order.push_back(i); });
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedSchedulingFromCallbacks) {
  EventQueue eq;
  std::vector<std::uint64_t> times;
  eq.schedule_at(10, [&] {
    times.push_back(eq.now());
    eq.schedule_in(5, [&] { times.push_back(eq.now()); });
  });
  eq.run();
  EXPECT_EQ(times, (std::vector<std::uint64_t>{10, 15}));
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue eq;
  eq.schedule_at(100, [&] {
    eq.schedule_at(50, [&] { EXPECT_EQ(eq.now(), 100u); });
  });
  eq.run();
}

TEST(EventQueue, RunUntilAdvancesClockEvenWhenIdle) {
  EventQueue eq;
  eq.run_until(12345);
  EXPECT_EQ(eq.now(), 12345u);
}

TEST(EventQueue, ClearDiscardsWithoutExecuting) {
  EventQueue eq;
  bool fired = false;
  // The closure owns a resource; clear() must destroy (not run) it.
  auto owned = std::make_unique<int>(1);
  eq.schedule_at(5, [&fired, o = std::move(owned)] { fired = true; });
  eq.clear();
  EXPECT_TRUE(eq.empty());
  eq.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, MoveOnlyCaptures) {
  EventQueue eq;
  auto p = std::make_unique<int>(7);
  int got = 0;
  eq.schedule_at(1, [p = std::move(p), &got] { got = *p; });
  eq.run();
  EXPECT_EQ(got, 7);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(Rng(123).next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    ASSERT_LT(rng.uniform_u64(17), 17u);
  }
}

// Distribution means converge to the configured value.
struct DistCase {
  const char* name;
  std::function<DistributionPtr()> make;
  double expected_mean;
  double tolerance;  // relative
};

class DistributionMean : public ::testing::TestWithParam<int> {};

TEST_P(DistributionMean, SampleMeanMatchesAnalyticMean) {
  static const DistCase cases[] = {
      {"constant", [] { return std::make_unique<Constant>(42.0); }, 42.0,
       0.001},
      {"uniform", [] { return std::make_unique<Uniform>(10, 30); }, 20.0,
       0.02},
      {"exponential", [] { return std::make_unique<Exponential>(1000.0); },
       1000.0, 0.03},
      {"lognormal", [] { return std::make_unique<LogNormal>(0.0, 0.5); },
       std::exp(0.125), 0.03},
      {"pareto",
       [] { return std::make_unique<BoundedPareto>(1.3, 1.0, 1000.0); },
       0.0 /* use dist->mean() */, 0.05},
  };
  const DistCase& c = cases[GetParam()];
  auto dist = c.make();
  double expected = c.expected_mean > 0 ? c.expected_mean : dist->mean();

  Rng rng(777);
  double sum = 0;
  constexpr int kN = 400'000;
  for (int i = 0; i < kN; ++i) sum += dist->sample(rng);
  double sample_mean = sum / kN;
  EXPECT_NEAR(sample_mean, expected, expected * c.tolerance)
      << c.name << ": analytic mean " << dist->mean();
}

INSTANTIATE_TEST_SUITE_P(All, DistributionMean, ::testing::Range(0, 5));

TEST(BoundedPareto, SamplesWithinBounds) {
  BoundedPareto p(1.1, 2.0, 500.0);
  Rng rng(1);
  for (int i = 0; i < 50'000; ++i) {
    double v = p.sample(rng);
    ASSERT_GE(v, 2.0 - 1e-9);
    ASSERT_LE(v, 500.0 + 1e-9);
  }
}

TEST(EmpiricalCdf, InterpolatesBetweenKnots) {
  EmpiricalCdf cdf({{0, 0.0}, {100, 0.5}, {1000, 1.0}});
  Rng rng(2);
  int below_100 = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i)
    if (cdf.sample(rng) <= 100.0) ++below_100;
  EXPECT_NEAR(below_100 / static_cast<double>(kN), 0.5, 0.02);
}

TEST(EmpiricalCdf, RejectsBadKnots) {
  EXPECT_THROW(EmpiricalCdf({{1, 0.5}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf({{1, 0.9}, {2, 0.1}}), std::invalid_argument);
}

TEST(SimCore, ServesFifoWithCorrectTimes) {
  EventQueue eq;
  SimCore core(eq);
  std::vector<TimeNs> completions;
  core.submit(100, [&](TimeNs t) { completions.push_back(t); });
  core.submit(50, [&](TimeNs t) { completions.push_back(t); });
  eq.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 100u);
  EXPECT_EQ(completions[1], 150u);
  EXPECT_EQ(core.busy_ns(), 150u);
  EXPECT_EQ(core.jobs_completed(), 2u);
}

TEST(SimCore, IdleCoreStartsImmediately) {
  EventQueue eq;
  SimCore core(eq);
  eq.schedule_at(1000, [&] {
    core.submit(10, [&](TimeNs t) { EXPECT_EQ(t, 1010u); });
  });
  eq.run();
}

TEST(SimCore, HighPriorityJumpsQueue) {
  EventQueue eq;
  SimCore core(eq);
  std::vector<int> order;
  core.submit(100, [&](TimeNs) { order.push_back(0); });  // in service
  core.submit(100, [&](TimeNs) { order.push_back(1); });  // queued
  core.submit(10, [&](TimeNs) { order.push_back(2); }, /*high=*/true);
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}))
      << "high-priority job must run after the in-service job but before "
         "queued normal jobs";
}

TEST(SimCore, BacklogTracksOutstandingWork) {
  EventQueue eq;
  SimCore core(eq);
  core.submit(100, [](TimeNs) {});
  core.submit(200, [](TimeNs) {});
  // At t=0 (before any event runs) one job is in service (100ns left) and
  // one queued (200ns).
  EXPECT_EQ(core.backlog_ns(), 300u);
  EXPECT_EQ(core.queue_depth(), 1u);
  eq.run();
  EXPECT_EQ(core.backlog_ns(), 0u);
}

TEST(SimCore, TheftIsInvisibleToTheDispatcherView) {
  EventQueue eq;
  SimCore core(eq);
  // A theft burst in service: ground truth sees it, the dispatcher not.
  core.submit(10'000, [](TimeNs) {}, /*high_priority=*/true, /*visible=*/false);
  EXPECT_EQ(core.backlog_ns(), 10'000u);
  EXPECT_EQ(core.visible_backlog_ns(), 0u)
      << "a stolen core must look idle to the scheduler";
  // Packets queued behind the theft ARE visible.
  core.submit(300, [](TimeNs) {});
  EXPECT_EQ(core.visible_backlog_ns(), 300u);
  EXPECT_EQ(core.backlog_ns(), 10'300u);
  eq.run();
  EXPECT_EQ(core.visible_backlog_ns(), 0u);
}

TEST(Interference, DutyCycleConverges) {
  EventQueue eq;
  SimCore core(eq);
  InterferenceConfig cfg;
  cfg.duty_cycle = 0.2;
  cfg.mean_burst_ns = 50'000;
  InterferenceModel noise(eq, core, cfg, /*seed=*/5);
  noise.start();
  constexpr TimeNs kHorizon = 5 * kSecond;
  eq.run_until(kHorizon);
  double duty = static_cast<double>(noise.total_stolen_ns()) /
                static_cast<double>(kHorizon);
  EXPECT_NEAR(duty, 0.2, 0.05);
  EXPECT_GT(noise.bursts_injected(), 1000u);
}

TEST(Interference, ZeroDutyInjectsNothing) {
  EventQueue eq;
  SimCore core(eq);
  InterferenceConfig cfg;
  cfg.duty_cycle = 0.0;
  InterferenceModel noise(eq, core, cfg, 5);
  noise.start();
  eq.run_until(kSecond);
  EXPECT_EQ(noise.bursts_injected(), 0u);
}

TEST(SimNic, RssSteersByFlowHashConsistently) {
  net::PacketPool pool(64, 2048);
  SimNic nic(NicConfig{4, 16});
  net::BuildSpec spec;
  spec.flow = {0x0a000001, 0x0b000001, 1000, 80, 17};
  auto p1 = net::build_udp(pool, spec);
  auto p2 = net::build_udp(pool, spec);
  std::size_t q1 = nic.rss_queue(*p1);
  EXPECT_EQ(q1, nic.rss_queue(*p2)) << "same flow must map to same queue";
  ASSERT_TRUE(nic.rx(std::move(p1)));
  EXPECT_EQ(nic.queue_depth(q1), 1u);
  auto out = nic.poll(q1);
  EXPECT_TRUE(out);
  EXPECT_FALSE(nic.poll(q1));
}

TEST(SimNic, TailDropsWhenQueueFull) {
  net::PacketPool pool(64, 2048);
  SimNic nic(NicConfig{1, 2});
  net::BuildSpec spec;
  spec.flow = {1, 2, 3, 4, 17};
  ASSERT_TRUE(nic.rx_to(0, net::build_udp(pool, spec)));
  ASSERT_TRUE(nic.rx_to(0, net::build_udp(pool, spec)));
  EXPECT_FALSE(nic.rx_to(0, net::build_udp(pool, spec)));
  EXPECT_EQ(nic.total_drops(), 1u);
  EXPECT_EQ(nic.total_received(), 2u);
}

TEST(Determinism, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    EventQueue eq;
    SimCore core(eq);
    Rng rng(seed);
    Exponential gaps(500);
    std::vector<TimeNs> completions;
    TimeNs t = 0;
    for (int i = 0; i < 200; ++i) {
      t += static_cast<TimeNs>(gaps.sample(rng)) + 1;
      eq.schedule_at(t, [&core, &completions, &rng] {
        core.submit(static_cast<TimeNs>(rng.uniform_u64(300) + 1),
                    [&completions](TimeNs done) {
                      completions.push_back(done);
                    });
      });
    }
    eq.run();
    return completions;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace mdp::sim
