// Deduplicator tests: exactly-once acceptance, expected-count accounting,
// hedge increments, cancellation, and the age sweep.
#include <gtest/gtest.h>

#include "core/dedup.hpp"
#include "core/reorder.hpp"
#include "sim/rng.hpp"

#include <iterator>
#include <vector>

namespace mdp::core {
namespace {

TEST(Dedup, FirstCopyWinsRestDrop) {
  Deduplicator d;
  auto k = Deduplicator::key(1, 1);
  d.expect(k, 3, 0);
  EXPECT_TRUE(d.accept(k));
  EXPECT_FALSE(d.accept(k));
  EXPECT_FALSE(d.accept(k));
  EXPECT_EQ(d.dup_drops(), 2u);
  EXPECT_EQ(d.pending(), 0u) << "entry retires when all copies seen";
}

TEST(Dedup, SingleCopyRetiresImmediately) {
  Deduplicator d;
  auto k = Deduplicator::key(5, 9);
  d.expect(k, 1, 0);
  EXPECT_TRUE(d.accept(k));
  EXPECT_EQ(d.pending(), 0u);
}

TEST(Dedup, UnknownKeyIsLateDrop) {
  Deduplicator d;
  EXPECT_FALSE(d.accept(Deduplicator::key(1, 1)));
  EXPECT_EQ(d.late_drops(), 1u);
}

TEST(Dedup, KeysAreFlowAndSeqScoped) {
  // Distinct (flow, seq) pairs used in practice map to distinct keys.
  Deduplicator d;
  d.expect(Deduplicator::key(1, 0), 1, 0);
  d.expect(Deduplicator::key(2, 0), 1, 0);
  d.expect(Deduplicator::key(1, 1), 1, 0);
  EXPECT_TRUE(d.accept(Deduplicator::key(1, 0)));
  EXPECT_TRUE(d.accept(Deduplicator::key(2, 0)));
  EXPECT_TRUE(d.accept(Deduplicator::key(1, 1)));
}

TEST(Dedup, AddExpectedExtendsLifetime) {
  Deduplicator d;
  auto k = Deduplicator::key(1, 1);
  d.expect(k, 1, 0);
  d.add_expected(k);  // hedge issued
  EXPECT_TRUE(d.accept(k));
  EXPECT_EQ(d.pending(), 1u) << "hedge copy still outstanding";
  EXPECT_FALSE(d.accept(k));
  EXPECT_EQ(d.pending(), 0u);
}

TEST(Dedup, CancelOneReleasesSlot) {
  Deduplicator d;
  auto k = Deduplicator::key(1, 1);
  d.expect(k, 2, 0);
  EXPECT_TRUE(d.accept(k));
  EXPECT_EQ(d.pending(), 1u);
  d.cancel_one(k);  // second copy filtered in-chain
  EXPECT_EQ(d.pending(), 0u);
}

TEST(Dedup, CancelAllCopiesWithoutAcceptRetires) {
  Deduplicator d;
  auto k = Deduplicator::key(3, 3);
  d.expect(k, 2, 0);
  d.cancel_one(k);
  EXPECT_EQ(d.pending(), 1u);
  d.cancel_one(k);
  EXPECT_EQ(d.pending(), 0u);
}

TEST(Dedup, CompletedReflectsFirstAcceptance) {
  Deduplicator d;
  auto k = Deduplicator::key(1, 1);
  d.expect(k, 2, 0);
  EXPECT_FALSE(d.completed(k));
  d.accept(k);
  EXPECT_TRUE(d.completed(k));
  // Retired entries also count as completed.
  d.accept(k);
  EXPECT_TRUE(d.completed(k));
}

TEST(Dedup, SweepRemovesOnlyOldEntries) {
  Deduplicator d;
  d.expect(Deduplicator::key(1, 1), 2, /*now=*/0);
  d.expect(Deduplicator::key(1, 2), 2, /*now=*/900);
  EXPECT_EQ(d.sweep(/*now=*/1000, /*max_age=*/500), 1u);
  EXPECT_EQ(d.pending(), 1u);
  EXPECT_EQ(d.swept(), 1u);
}

TEST(Dedup, RandomizedExactlyOnceProperty) {
  // For random replication factors and arrival patterns, exactly one copy
  // per (flow, seq) is ever accepted.
  sim::Rng rng(31337);
  Deduplicator d;
  std::uint64_t accepted = 0;
  constexpr int kPackets = 20'000;
  for (int i = 0; i < kPackets; ++i) {
    std::uint32_t flow = static_cast<std::uint32_t>(rng.uniform_u64(64));
    auto k = Deduplicator::key(flow, static_cast<std::uint64_t>(i));
    auto copies = static_cast<std::uint8_t>(1 + rng.uniform_u64(4));
    d.expect(k, copies, 0);
    int accepted_here = 0;
    for (std::uint8_t c = 0; c < copies; ++c)
      if (d.accept(k)) ++accepted_here;
    ASSERT_EQ(accepted_here, 1);
    accepted += accepted_here;
  }
  EXPECT_EQ(accepted, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(d.pending(), 0u);
}


TEST(Dedup, LateDuplicateAfterFlushAllIsReleasedNotLeaked) {
  // Regression: a path-down flush_all() releases a flow's buffered
  // original, the dedup sweep ages the half-open entry out, and only then
  // does the straggler copy limp off its slow path. The merge stage must
  // recycle it as a late drop — not re-egress it, not strand it in the
  // pool.
  sim::EventQueue eq;
  net::PacketPool pool{64, 256};
  Deduplicator d;
  std::vector<std::uint64_t> egressed;
  ReorderBuffer rb(eq, ReorderConfig{}, [&](net::PacketPtr p) {
    egressed.push_back(p->anno().seq);  // PacketPtr recycles on scope exit
  });

  auto make = [&](std::uint64_t seq) {
    auto p = pool.alloc();
    p->set_length(64);
    p->anno().flow_id = 7;
    p->anno().seq = seq;
    return p;
  };
  // Merge-stage contract (MdpDataPlane::on_service_end): dedup verdict
  // first, and only the accepted copy reaches the reorder buffer.
  auto merge = [&](net::PacketPtr p) {
    const auto k = Deduplicator::key(p->anno().flow_id, p->anno().seq);
    if (!d.accept(k)) return;  // duplicate/late copy recycles right here
    rb.submit(std::move(p));
  };

  d.expect(Deduplicator::key(7, 0), 2, /*now=*/0);
  d.expect(Deduplicator::key(7, 1), 2, /*now=*/0);

  merge(make(1));  // out of order: parks in the buffer waiting for seq 0
  EXPECT_EQ(rb.buffered(), 1u);
  EXPECT_EQ(egressed.size(), 0u);

  // Path down: flush everything now; seq 1 egresses past the hole.
  EXPECT_EQ(rb.flush_all(), 1u);
  ASSERT_EQ(egressed.size(), 1u);
  EXPECT_EQ(egressed[0], 1u);
  EXPECT_EQ(pool.in_use(), 0u) << "flush_all leaked the buffered packet";

  // The age sweep retires both half-open entries (seq 0 never arrived at
  // all; seq 1 still owes its second copy)...
  EXPECT_EQ(d.sweep(/*now=*/1'000'000, /*max_age=*/500'000), 2u);
  EXPECT_EQ(d.pending(), 0u);

  // ...and only now do the stragglers arrive: the duplicate of the
  // flushed seq-1 original, and the seq-0 copy whose twin died with the
  // path. Both must be recycled, neither may egress.
  merge(make(1));
  merge(make(0));
  EXPECT_EQ(d.late_drops(), 2u);
  EXPECT_EQ(egressed.size(), 1u) << "a late copy re-egressed after flush";
  EXPECT_EQ(pool.in_use(), 0u) << "late duplicates leaked packets";
}

TEST(Dedup, AcceptBatchMatchesScalarAccept) {
  // Burst drain is a straight loop over accept(): same verdicts, same
  // counters, one call per burst.
  Deduplicator scalar, batch;
  std::vector<std::uint64_t> keys;
  for (std::uint32_t f = 0; f < 4; ++f) {
    auto k = Deduplicator::key(f, 7);
    scalar.expect(k, 2, 0);
    batch.expect(k, 2, 0);
    keys.push_back(k);  // first copy
    keys.push_back(k);  // duplicate copy
  }
  keys.push_back(Deduplicator::key(99, 99));  // never registered: late

  std::vector<bool> expected;
  std::size_t scalar_firsts = 0;
  for (auto k : keys) {
    bool first = scalar.accept(k);
    expected.push_back(first);
    if (first) ++scalar_firsts;
  }

  // std::vector<bool> has no .data(); use a plain bool array as the span.
  bool storage[16];
  ASSERT_LE(keys.size(), std::size(storage));
  std::size_t firsts = batch.accept_batch(keys, {storage, keys.size()});

  EXPECT_EQ(firsts, scalar_firsts);
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(storage[i], expected[i]) << "verdict " << i;
  EXPECT_EQ(batch.dup_drops(), scalar.dup_drops());
  EXPECT_EQ(batch.late_drops(), scalar.late_drops());
  EXPECT_EQ(batch.pending(), scalar.pending());
}

}  // namespace
}  // namespace mdp::core
