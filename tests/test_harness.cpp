// Harness-level integration tests. These are small versions of the real
// experiments: they assert the *qualitative* results the paper's figures
// depend on (interference inflates single-path tails; multipath removes
// them; redundancy costs throughput headroom).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "workload/trace.hpp"
#include "workload/trace_replay.hpp"

namespace mdp::harness {
namespace {

ScenarioConfig small_scenario(const std::string& policy) {
  ScenarioConfig cfg;
  cfg.policy = policy;
  cfg.packets = 30'000;
  cfg.warmup_packets = 3'000;
  cfg.load = 0.4;
  cfg.num_paths = 4;
  cfg.seed = 11;
  return cfg;
}

TEST(Harness, ScenarioCompletesAndAccountsPackets) {
  auto res = run_scenario(small_scenario("jsq"));
  EXPECT_EQ(res.emitted, 30'000u);
  // Everything not filtered by the chain must egress.
  EXPECT_EQ(res.egressed + res.chain_filtered, res.emitted);
  EXPECT_EQ(res.measured, res.latency.count());
  EXPECT_GT(res.latency.count(), 20'000u);
  EXPECT_GT(res.latency.p50(), 0u);
  EXPECT_GT(res.achieved_mpps, 0.0);
  EXPECT_EQ(res.per_path_dispatched.size(), 4u);
}

TEST(Harness, MeanServiceReflectsChainChoice) {
  ScenarioConfig a = small_scenario("jsq");
  a.chain = "ipcheck";
  ScenarioConfig b = small_scenario("jsq");
  b.chain = "full";
  EXPECT_GT(mean_service_ns(b), mean_service_ns(a) * 3);
}

TEST(Harness, InterferenceInflatesSinglePathTailNotMultipath) {
  auto base = small_scenario("single");
  base.interference = true;
  base.interference_cfg.duty_cycle = 0.25;
  base.interference_cfg.mean_burst_ns = 150'000;
  // Interference on path 0 only: single-path eats it, JSQ routes around.
  base.interference_paths = {0};
  auto single = run_scenario(base);

  auto multi_cfg = base;
  multi_cfg.policy = "jsq";
  auto jsq = run_scenario(multi_cfg);

  EXPECT_GT(single.latency.p999(), jsq.latency.p999() * 4)
      << "single p999=" << single.latency.p999()
      << " jsq p999=" << jsq.latency.p999();
  // Medians stay comparable (the tail is the story, not the median).
  EXPECT_LT(jsq.latency.p50(), single.latency.p50() * 3);
}

TEST(Harness, RedundancyDoublesInternalWork) {
  auto cfg = small_scenario("red2");
  auto res = run_scenario(cfg);
  EXPECT_NEAR(res.replica_fraction, 1.0, 0.05)
      << "red2 must add ~1 extra copy per packet";
  EXPECT_GT(res.duplicate_fraction, 0.3)
      << "roughly half of dispatched copies are dropped at merge";
}

TEST(Harness, UtilizationMatchesOfferedLoad) {
  auto cfg = small_scenario("jsq");
  cfg.load = 0.5;
  cfg.packets = 60'000;
  auto res = run_scenario(cfg);
  double mean_util = 0;
  for (double u : res.per_path_utilization) mean_util += u;
  mean_util /= static_cast<double>(res.per_path_utilization.size());
  EXPECT_NEAR(mean_util, 0.5, 0.1);
}

TEST(Harness, BurstyArrivalsWidenTheTail) {
  auto smooth = small_scenario("single");
  smooth.num_paths = 1;
  auto bursty = smooth;
  bursty.bursty_arrivals = true;
  bursty.mmpp.burst_factor = 12;
  auto a = run_scenario(smooth);
  auto b = run_scenario(bursty);
  EXPECT_GT(b.latency.p999(), a.latency.p999() * 2);
}

TEST(Harness, QueueSamplingProducesSeries) {
  auto cfg = small_scenario("jsq");
  cfg.packets = 5'000;
  cfg.sample_queues_interval_ns = 100'000;
  auto res = run_scenario(cfg);
  ASSERT_EQ(res.queue_depth_series.size(), 4u);
  EXPECT_GT(res.queue_depth_series[0].samples().size(), 10u);
}

TEST(Harness, RpcScenarioCompletesFlows) {
  auto cfg = small_scenario("adaptive");
  cfg.load = 0.3;
  auto res = run_rpc_scenario(cfg, "uniform", 400);
  EXPECT_EQ(res.flows_started, 400u);
  EXPECT_GT(res.flows_completed, 390u);
  EXPECT_GT(res.all_fct.p50(), 0u);
}

TEST(Harness, UnknownPolicyAndWorkloadThrow) {
  auto cfg = small_scenario("not-a-policy");
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  auto cfg2 = small_scenario("jsq");
  EXPECT_THROW(run_rpc_scenario(cfg2, "not-a-workload", 10),
               std::invalid_argument);
}

TEST(Harness, TraceCaptureReplayReproducesDataPlaneBehaviour) {
  // Capture a workload into a trace, then replay it through two fresh
  // data planes: identical per-packet egress order and latencies.
  workload::TraceWriter trace;
  {
    sim::EventQueue eq;
    net::PacketPool pool(2048, 2048);
    workload::TrafficGenConfig tg;
    tg.seed = 9;
    workload::TrafficGen gen(
        eq, pool, tg, std::make_unique<workload::PoissonArrivals>(1200),
        [&](net::PacketPtr p) {
          trace.append(workload::TraceRecord{
              eq.now(), p->anno().flow_id,
              static_cast<std::uint16_t>(p->length()),
              static_cast<std::uint8_t>(p->anno().traffic_class)});
        });
    gen.start(5000);
    eq.run();
  }
  ASSERT_EQ(trace.records().size(), 5000u);

  auto run_replay = [&] {
    sim::EventQueue eq;
    net::PacketPool pool(2048, 2048);
    core::DataPlaneConfig cfg;
    cfg.num_paths = 4;
    cfg.dedup_sweep_interval_ns = 0;
    core::MdpDataPlane dp(eq, pool, cfg, core::make_scheduler("adaptive"));
    std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
    dp.set_egress([&](net::PacketPtr p) {
      out.emplace_back(p->anno().flow_id,
                       p->anno().egress_ns - p->anno().ingress_ns);
    });
    workload::TraceReplay replay(
        eq, pool, trace.records(),
        [&](net::PacketPtr p) { dp.ingress(std::move(p)); });
    replay.start();
    eq.run();
    return out;
  };
  auto a = run_replay();
  auto b = run_replay();
  EXPECT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b) << "replayed trace must be bit-identical end to end";
}

TEST(Harness, DeterministicAcrossRuns) {
  auto a = run_scenario(small_scenario("adaptive"));
  auto b = run_scenario(small_scenario("adaptive"));
  EXPECT_EQ(a.latency.p999(), b.latency.p999());
  EXPECT_EQ(a.egressed, b.egressed);
  EXPECT_EQ(a.hedges, b.hedges);
}

}  // namespace
}  // namespace mdp::harness
