// Backend conformance suite: the contract every io::PacketBackend must
// pass before the data plane will trust it (docs/IO_BACKENDS.md).
//
// One shared suite runs against every registered backend: burst semantics,
// partial-burst ownership, packet-pool accounting at quiesce. The
// loopback wire then doubles as the fault harness: byte-for-byte VXLAN
// round trips, seeded determinism, drop/dup/delay/reorder lanes, and the
// receive-side healing pipeline (Deduplicator::accept_batch +
// ReorderBuffer::submit_batch) driven by a 10k-packet seeded property
// test asserting exactly-once, in-order-per-flow delivery with zero pool
// leaks. AF_XDP/DPDK backends added later must join the INSTANTIATE list
// and pass unchanged.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/dedup.hpp"
#include "core/reorder.hpp"
#include "io/loopback_backend.hpp"
#include "io/packet_backend.hpp"
#include "io/synthetic_backend.hpp"
#include "net/packet_builder.hpp"
#include "net/vxlan.hpp"
#include "sim/event_queue.hpp"
#if MDP_WITH_AF_PACKET
#include <cstdlib>

#include "io/af_packet_backend.hpp"
#endif

namespace mdp {
namespace {

// ---------------------------------------------------------------------------
// Harness: wraps a backend-under-test with the uniform operations the
// shared suite needs — a way to put frames on the DUT's rx side (peer
// injection for wire-like backends, internal generation for synthetic)
// and a pool to audit for leaks at quiesce.
struct Harness {
  std::unique_ptr<net::PacketPool> frame_pool;  ///< driver-side frames
  std::unique_ptr<io::PacketBackend> dut;
  std::unique_ptr<io::PacketBackend> peer;  ///< wire peer (null: synthetic)
  io::LoopbackBackend* dut_loop = nullptr;
  io::LoopbackBackend* peer_loop = nullptr;

  net::PacketPool& audit_pool() {
    if (frame_pool) return *frame_pool;
    return static_cast<io::SyntheticBackend&>(*dut).pool();
  }

  /// True when the DUT only sees frames a peer transmitted.
  bool injectable() const { return peer != nullptr; }

  /// Put `pkts` on the wire toward the DUT's rx side.
  std::size_t inject(std::span<net::PacketPtr> pkts) {
    return peer ? peer->tx_burst(pkts) : 0;
  }

  /// Make everything in flight rx-able (release staged wire frames).
  void settle() {
    if (peer_loop) peer_loop->flush();
    if (dut_loop) dut_loop->flush();
  }
};

using HarnessFactory = std::function<std::unique_ptr<Harness>()>;

std::unique_ptr<Harness> make_synthetic() {
  auto h = std::make_unique<Harness>();
  io::SyntheticConfig cfg;
  cfg.pool_size = 1024;
  h->dut = std::make_unique<io::SyntheticBackend>(cfg);
  return h;
}

std::unique_ptr<Harness> make_loopback() {
  auto h = std::make_unique<Harness>();
  h->frame_pool = std::make_unique<net::PacketPool>(1024, 2048,
                                                    /*allow_growth=*/false);
  io::LoopbackConfig cfg;
  cfg.queue_depth = 512;
  auto [peer, dut] = io::LoopbackBackend::make_pair(cfg);
  h->peer_loop = peer.get();
  h->dut_loop = dut.get();
  h->peer = std::move(peer);
  h->dut = std::move(dut);
  return h;
}

/// A minimal valid UDP frame with multipath annotations filled in.
net::PacketPtr make_frame(net::PacketPool& pool, std::uint32_t flow_id,
                          std::uint64_t seq, std::uint16_t path,
                          std::uint8_t copy_index = 0) {
  net::BuildSpec spec;
  spec.flow = {0x0a000001 + flow_id, 0x0a000002,
               static_cast<std::uint16_t>(1024 + flow_id), 4789, 0};
  spec.payload_len = 64;
  spec.payload_fill = static_cast<std::uint8_t>(seq);
  net::PacketPtr pkt = net::build_udp(pool, spec);
  if (!pkt) return pkt;
  auto& a = pkt->anno();
  a.flow_id = flow_id;
  a.seq = seq;
  a.path_id = path;
  a.copy_index = copy_index;
  a.is_replica = copy_index > 0;
  a.flow_hash = net::hash_flow(spec.flow);
  return pkt;
}

// ---------------------------------------------------------------------------
// Shared conformance suite.
class BackendConformance
    : public ::testing::TestWithParam<
          std::pair<const char*, HarnessFactory>> {};

TEST_P(BackendConformance, CapsAreSane) {
  auto h = GetParam().second();
  const io::BackendCaps& caps = h->dut->caps();
  EXPECT_EQ(caps.name, GetParam().first);
  EXPECT_GT(caps.max_burst, 0u);
  EXPECT_TRUE(h->dut->start());
  h->dut->stop();
}

TEST_P(BackendConformance, RxBurstHonorsSpanSize) {
  auto h = GetParam().second();
  ASSERT_TRUE(h->dut->start());
  if (h->injectable()) {
    std::vector<net::PacketPtr> frames;
    for (int i = 0; i < 8; ++i)
      frames.push_back(make_frame(h->audit_pool(), 0, i, 0));
    ASSERT_EQ(h->inject(frames), 8u);
    h->settle();
  }
  net::PacketPtr got[4];
  EXPECT_EQ(h->dut->rx_burst(std::span<net::PacketPtr>(got, 0)), 0u);
  const std::size_t n = h->dut->rx_burst(std::span<net::PacketPtr>(got, 4));
  EXPECT_LE(n, 4u);
  EXPECT_GT(n, 0u) << "a primed backend must deliver something";
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(got[i]);
    EXPECT_NE(got[i]->anno().flow_hash, 0u)
        << "rx contract: flow_hash is populated";
  }
  // Drain whatever else was primed so the leak audit below stays clean
  // (wire backends only: the synthetic generator never runs dry).
  if (h->injectable()) {
    net::PacketPtr rest[16];
    while (h->dut->rx_burst(std::span<net::PacketPtr>(rest, 16)) > 0) {
      for (auto& p : rest) p.reset();
    }
  }
  for (auto& p : got) p.reset();
  EXPECT_EQ(h->audit_pool().in_use(), 0u);
}

TEST_P(BackendConformance, TxBurstConsumesPrefixOnly) {
  auto h = GetParam().second();
  ASSERT_TRUE(h->dut->start());
  // Offer far more than any queue can take in one go; the backend must
  // consume exactly a prefix: [0..n) nulled (ownership taken), [n..)
  // untouched and still owned by us.
  const std::size_t offer = h->dut->caps().queue_depth
                                ? h->dut->caps().queue_depth + 64
                                : 128;
  std::vector<net::PacketPtr> pkts;
  std::size_t built = 0;
  for (; built < offer; ++built) {
    auto f = make_frame(h->audit_pool(), 1, built, 0);
    if (!f) break;  // driver pool smaller than the queue: offer what we have
    pkts.push_back(std::move(f));
  }
  ASSERT_GT(built, 0u);
  const std::size_t n =
      h->dut->tx_burst(std::span<net::PacketPtr>(pkts.data(), built));
  EXPECT_LE(n, built);
  for (std::size_t i = 0; i < built; ++i) {
    if (i < n)
      EXPECT_FALSE(pkts[i]) << "consumed entries must be nulled at " << i;
    else
      EXPECT_TRUE(pkts[i]) << "rejected entries stay owned by caller at "
                           << i;
  }
  pkts.clear();  // rejected tail recycles here
  // Packets the backend took are either internal (wire) or recycled
  // (synthetic sink). Drain the wire to finish the accounting.
  if (h->injectable()) {
    h->settle();
    net::PacketPtr buf[64];
    std::size_t drained = 0;
    while (true) {
      // tx'd toward the peer: drain from the peer's rx side.
      const std::size_t k =
          h->peer->rx_burst(std::span<net::PacketPtr>(buf, 64));
      if (k == 0) break;
      drained += k;
      for (std::size_t i = 0; i < k; ++i) buf[i].reset();
      h->settle();
    }
    EXPECT_EQ(drained, n);
  }
  EXPECT_EQ(h->audit_pool().in_use(), 0u) << "zero-leak quiesce";
}

TEST_P(BackendConformance, ZeroCapacityAndIdleWireEdgeCases) {
  // The degenerate calls a driver loop makes constantly — empty tx
  // bursts, zero-capacity rx bursts, flush/advance on an idle wire — must
  // all be well-defined no-ops: no frames produced, no ownership taken,
  // no pool movement. A backend that misbehaves here corrupts the first
  // quiet pump() after quiesce.
  auto h = GetParam().second();
  ASSERT_TRUE(h->dut->start());

  // tx_burst over an empty span: nothing consumed, nothing counted.
  const std::uint64_t tx_before = h->dut->tx_packets();
  EXPECT_EQ(h->dut->tx_burst(std::span<net::PacketPtr>()), 0u);
  EXPECT_EQ(h->dut->tx_packets(), tx_before);

  // rx_burst with capacity 0 on an IDLE backend: no frames, even from a
  // generator backend that could always produce one.
  net::PacketPtr none[1];
  EXPECT_EQ(h->dut->rx_burst(std::span<net::PacketPtr>(none, 0)), 0u);
  EXPECT_EQ(h->dut->rx_burst(std::span<net::PacketPtr>(none, 0)), 0u)
      << "zero-capacity rx must stay a no-op on repeat";

  // Idle-wire maintenance calls: flush and advance with nothing staged.
  if (h->dut_loop) {
    EXPECT_EQ(h->dut_loop->flush(), 0u);
    h->dut_loop->advance(16);
    EXPECT_EQ(h->dut_loop->in_flight(), 0u);
  }
  if (h->peer_loop) EXPECT_EQ(h->peer_loop->flush(), 0u);

  // Now prime one frame and confirm zero-capacity rx STILL returns
  // nothing (capacity, not availability, is the bound) and doesn't
  // disturb the frame, which a real burst then picks up intact.
  if (h->injectable()) {
    std::vector<net::PacketPtr> frames;
    frames.push_back(make_frame(h->audit_pool(), 5, 99, 0));
    ASSERT_EQ(h->inject(frames), 1u);
    h->settle();
    EXPECT_EQ(h->dut->rx_burst(std::span<net::PacketPtr>(none, 0)), 0u);
    net::PacketPtr got[4];
    const std::size_t n =
        h->dut->rx_burst(std::span<net::PacketPtr>(got, 4));
    ASSERT_EQ(n, 1u);
    ASSERT_TRUE(got[0]);
    EXPECT_EQ(got[0]->anno().flow_id, 5u);
    EXPECT_EQ(got[0]->anno().seq, 99u);
    got[0].reset();
  }
  EXPECT_EQ(h->audit_pool().in_use(), 0u) << "zero-leak quiesce";
}

TEST_P(BackendConformance, RoundTripConservesPacketsAndPool) {
  auto h = GetParam().second();
  ASSERT_TRUE(h->dut->start());
  constexpr std::size_t kFrames = 256;
  std::size_t injected = 0, rxed = 0, txed = 0;
  net::PacketPtr buf[32];
  std::size_t next_seq = 0;
  while (txed < kFrames) {
    if (h->injectable() && injected < kFrames) {
      std::vector<net::PacketPtr> frames;
      for (int i = 0; i < 16 && injected + frames.size() < kFrames; ++i)
        frames.push_back(
            make_frame(h->audit_pool(), 2, next_seq++, 0));
      injected += h->inject(frames);
      // Unaccepted frames drop here and recycle; don't count them.
      for (auto& f : frames)
        if (f) --next_seq, f.reset();
      h->settle();
    }
    const std::size_t n =
        h->dut->rx_burst(std::span<net::PacketPtr>(buf, 32));
    rxed += n;
    if (n > 0) {
      std::size_t sent = 0;
      while (sent < n)
        sent += h->dut->tx_burst(
            std::span<net::PacketPtr>(buf + sent, n - sent));
      txed += sent;
    }
    if (!h->injectable() && rxed >= kFrames) break;
  }
  // Wire backends: the peer drains the echoed frames.
  if (h->injectable()) {
    h->settle();
    net::PacketPtr drain[32];
    std::size_t echoed = 0;
    std::size_t k;
    while ((k = h->peer->rx_burst(
                std::span<net::PacketPtr>(drain, 32))) > 0) {
      for (std::size_t i = 0; i < k; ++i) drain[i].reset();
      echoed += k;
      h->settle();
    }
    EXPECT_EQ(echoed, txed);
  }
  EXPECT_EQ(h->dut->rx_packets(), rxed);
  EXPECT_GE(h->dut->tx_packets(), txed);
  EXPECT_EQ(h->audit_pool().in_use(), 0u) << "zero-leak quiesce";
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendConformance,
    ::testing::Values(
        std::make_pair("synthetic", HarnessFactory(make_synthetic)),
        std::make_pair("loopback", HarnessFactory(make_loopback))),
    [](const auto& info) { return std::string(info.param.first); });

#if MDP_WITH_AF_PACKET
// Compiled in but only *run* when the environment names an interface the
// runner may open with CAP_NET_RAW (never true in CI).
TEST(AfPacketBackend, StartsWhenInterfaceGranted) {
  const char* iface = std::getenv("MDP_AF_PACKET_IFACE");
  if (!iface) GTEST_SKIP() << "set MDP_AF_PACKET_IFACE to run";
  io::AfPacketConfig cfg;
  cfg.interface = iface;
  io::AfPacketBackend backend(cfg);
  std::string err;
  ASSERT_TRUE(backend.start(&err)) << err;
  EXPECT_EQ(backend.caps().name, "af_packet");
  backend.stop();
}
#endif

// ---------------------------------------------------------------------------
// Loopback as the deterministic wire: byte-exact delivery and fault lanes.

TEST(LoopbackWire, VxlanFrameRoundTripsByteForByte) {
  net::PacketPool pool(64, 2048, false);
  auto [a, b] = io::LoopbackBackend::make_pair({});
  net::PacketPtr pkt = make_frame(pool, 7, 42, 1);
  ASSERT_TRUE(pkt);
  net::VxlanTunnel tunnel;
  tunnel.local_vtep = 0xc0a80001;
  tunnel.remote_vtep = 0xc0a80002;
  tunnel.vni = 5001;
  ASSERT_TRUE(net::vxlan_encap(*pkt, tunnel));
  std::vector<std::byte> wire_bytes(pkt->payload().begin(),
                                    pkt->payload().end());

  net::PacketPtr frames[1] = {std::move(pkt)};
  ASSERT_EQ(a->tx_burst(frames), 1u);
  net::PacketPtr got[4];
  ASSERT_EQ(b->rx_burst(got), 1u);
  ASSERT_TRUE(got[0]);
  ASSERT_EQ(got[0]->length(), wire_bytes.size());
  EXPECT_EQ(std::memcmp(got[0]->data(), wire_bytes.data(),
                        wire_bytes.size()),
            0)
      << "the wire must not touch a single byte";
  // Annotations ride along (same Packet object end to end).
  EXPECT_EQ(got[0]->anno().flow_id, 7u);
  EXPECT_EQ(got[0]->anno().seq, 42u);
  auto info = net::vxlan_decap(*got[0]);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->vni, 5001u);
  got[0].reset();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(LoopbackWire, SeededFaultsAreDeterministic) {
  auto run_once = [] {
    net::PacketPool pool(256, 2048, false);
    io::LoopbackConfig cfg;
    cfg.seed = 1234;
    auto [a, b] = io::LoopbackBackend::make_pair(cfg);
    io::LoopbackFaults f;
    f.drop_rate = 0.2;
    f.dup_rate = 0.15;
    f.reorder_rate = 0.3;
    f.reorder_extra_ticks = 3;
    a->set_path_faults(0, f);
    std::vector<std::uint64_t> delivered;
    for (std::uint64_t seq = 0; seq < 100; ++seq) {
      a->advance(1);  // the driver owns wire time; tx_burst never ticks
      net::PacketPtr frames[1] = {make_frame(pool, 0, seq, 0)};
      EXPECT_EQ(a->tx_burst(frames), 1u);
      net::PacketPtr got[8];
      std::size_t n;
      while ((n = b->rx_burst(got)) > 0)
        for (std::size_t i = 0; i < n; ++i) {
          delivered.push_back(got[i]->anno().seq);
          got[i].reset();
        }
    }
    while (a->in_flight() > 0) {
      a->flush();
      net::PacketPtr got[8];
      std::size_t n;
      while ((n = b->rx_burst(got)) > 0)
        for (std::size_t i = 0; i < n; ++i) {
          delivered.push_back(got[i]->anno().seq);
          got[i].reset();
        }
    }
    EXPECT_EQ(pool.in_use(), 0u);
    return delivered;
  };
  auto first = run_once();
  auto second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same seed, same stream, same delivery order";
  EXPECT_NE(first.size(), 100u) << "faults visibly reshape the stream";
}

TEST(LoopbackWire, PerPathDelayLetsFastPathOvertake) {
  net::PacketPool pool(64, 2048, false);
  auto [a, b] = io::LoopbackBackend::make_pair({});
  io::LoopbackFaults slow;
  slow.delay_ticks = 3;
  a->set_path_faults(1, slow);  // path 1 is the slow last mile
  // seq 0 rides the slow path, seq 1 the fast one, in separate tx calls.
  net::PacketPtr f0[1] = {make_frame(pool, 0, 0, 1)};
  net::PacketPtr f1[1] = {make_frame(pool, 0, 1, 0)};
  ASSERT_EQ(a->tx_burst(f0), 1u);
  ASSERT_EQ(a->tx_burst(f1), 1u);
  a->advance(4);  // slow frame's delivery tick arrives
  net::PacketPtr got[4];
  const std::size_t n = b->rx_burst(got);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(got[0]->anno().seq, 1u) << "fast path delivered first";
  EXPECT_EQ(got[1]->anno().seq, 0u);
  got[0].reset();
  got[1].reset();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(LoopbackWire, DropLaneEatsEverythingAndLeaksNothing) {
  net::PacketPool pool(64, 2048, false);
  auto [a, b] = io::LoopbackBackend::make_pair({});
  io::LoopbackFaults f;
  f.drop_rate = 1.0;
  a->set_path_faults(0, f);
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    net::PacketPtr frames[1] = {make_frame(pool, 0, seq, 0)};
    ASSERT_EQ(a->tx_burst(frames), 1u) << "drops still consume ownership";
  }
  EXPECT_EQ(a->dropped(), 32u);
  net::PacketPtr got[4];
  EXPECT_EQ(b->rx_burst(got), 0u);
  EXPECT_EQ(pool.in_use(), 0u) << "dropped frames went back to the pool";
}

// ---------------------------------------------------------------------------
// The receive-side healing pipeline over fault lanes: this is what the
// conformance suite exists to protect.

TEST(LoopbackHealing, DeduplicatorDeliversExactlyOnceUnderDupFaults) {
  net::PacketPool pool(512, 2048, false);
  sim::EventQueue eq;
  auto [a, b] = io::LoopbackBackend::make_pair({});
  io::LoopbackFaults f;
  f.dup_rate = 1.0;  // the wire doubles every frame
  a->set_path_faults(0, f);
  core::Deduplicator dedup;
  constexpr std::uint64_t kSeqs = 200;
  std::uint64_t delivered = 0, arrivals = 0;
  for (std::uint64_t seq = 0; seq < kSeqs; ++seq) {
    dedup.expect(core::Deduplicator::key(3, seq), 2, eq.now());
    net::PacketPtr frames[1] = {make_frame(pool, 3, seq, 0)};
    ASSERT_EQ(a->tx_burst(frames), 1u);
    net::PacketPtr got[8];
    std::size_t n;
    while ((n = b->rx_burst(got)) > 0) {
      std::uint64_t keys[8];
      bool first[8];
      for (std::size_t i = 0; i < n; ++i)
        keys[i] = core::Deduplicator::key(got[i]->anno().flow_id,
                                          got[i]->anno().seq);
      arrivals += n;
      delivered += dedup.accept_batch({keys, n}, {first, n});
      for (std::size_t i = 0; i < n; ++i) got[i].reset();
    }
  }
  EXPECT_EQ(a->duplicated(), kSeqs);
  EXPECT_EQ(arrivals, 2 * kSeqs) << "every frame arrived twice";
  EXPECT_EQ(delivered, kSeqs) << "but egressed exactly once";
  EXPECT_EQ(dedup.dup_drops(), kSeqs);
  EXPECT_EQ(dedup.pending(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(LoopbackHealing, ReorderBufferHealsWireReordering) {
  net::PacketPool pool(512, 2048, false);
  sim::EventQueue eq;
  auto [a, b] = io::LoopbackBackend::make_pair({});
  io::LoopbackFaults f;
  f.reorder_rate = 0.4;
  f.reorder_extra_ticks = 5;
  a->set_path_faults(0, f);

  std::vector<std::uint64_t> emitted;
  core::ReorderBuffer reorder(eq, {true, 1'000'000},
                              [&](net::PacketPtr pkt) {
                                emitted.push_back(pkt->anno().seq);
                              });
  constexpr std::uint64_t kSeqs = 400;
  std::uint64_t wire_order_breaks = 0, last_rx = 0;
  bool first_rx = true;
  for (std::uint64_t seq = 0; seq < kSeqs; ++seq) {
    a->advance(1);  // wire time flows with the offered stream
    net::PacketPtr frames[1] = {make_frame(pool, 9, seq, 0)};
    ASSERT_EQ(a->tx_burst(frames), 1u);
    net::PacketPtr got[16];
    std::size_t n;
    while ((n = b->rx_burst(got)) > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!first_rx && got[i]->anno().seq < last_rx) ++wire_order_breaks;
        last_rx = got[i]->anno().seq;
        first_rx = false;
      }
      reorder.submit_batch({got, n});
      eq.run_until(eq.now() + 100);
    }
  }
  while (a->in_flight() > 0) {
    a->flush();
    net::PacketPtr got[16];
    std::size_t n;
    while ((n = b->rx_burst(got)) > 0) {
      reorder.submit_batch({got, n});
      eq.run_until(eq.now() + 100);
    }
  }
  EXPECT_GT(a->reordered(), 0u);
  EXPECT_GT(wire_order_breaks, 0u) << "the wire really did reorder";
  ASSERT_EQ(emitted.size(), kSeqs);
  for (std::uint64_t i = 0; i < kSeqs; ++i)
    ASSERT_EQ(emitted[i], i) << "healed stream must be in order";
  EXPECT_GT(reorder.out_of_order(), 0u);
  EXPECT_EQ(reorder.buffered(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(LoopbackHealing, FlushAllReleasesPendingThroughThePool) {
  // Path-down drill: strand successors behind a hole, flush, audit.
  net::PacketPool pool(64, 2048, false);
  sim::EventQueue eq;
  std::vector<std::uint64_t> emitted;
  core::ReorderBuffer reorder(eq, {true, 1'000'000},
                              [&](net::PacketPtr pkt) {
                                emitted.push_back(pkt->anno().seq);
                              });
  // seq 0 "was dispatched on the path that just died": submit only 1..5.
  for (std::uint64_t seq = 1; seq <= 5; ++seq)
    reorder.submit(make_frame(pool, 4, seq, 1));
  EXPECT_TRUE(emitted.empty());
  EXPECT_EQ(reorder.buffered(), 5u);
  EXPECT_EQ(pool.in_use(), 5u);

  EXPECT_EQ(reorder.flush_all(), 5u);
  EXPECT_EQ(reorder.flushed(), 5u);
  ASSERT_EQ(emitted.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(emitted[i], i + 1);
  EXPECT_EQ(reorder.buffered(), 0u);
  EXPECT_EQ(pool.in_use(), 0u)
      << "flush released every pending PacketPtr through the pool";
  // The window advanced past the hole: the flow continues in order and a
  // late copy of the hole is delivered as late-after-skip, not lost.
  reorder.submit(make_frame(pool, 4, 6, 1));
  reorder.submit(make_frame(pool, 4, 0, 1));
  EXPECT_EQ(emitted.size(), 7u);
  EXPECT_EQ(reorder.late_after_skip(), 1u);
  eq.clear();
  EXPECT_EQ(pool.in_use(), 0u);
}

// ---------------------------------------------------------------------------
// The 10k-packet seeded property test: redundant-2 dispatch over two
// faulty last-mile paths, healed by dedup + reorder. Invariants:
//   exactly-once  — every seq with >= 1 surviving copy egresses once
//   in-order      — per-flow egress seqs strictly increase
//   zero leaks    — the frame pool is fully recycled at quiesce
TEST(LoopbackHealing, PropertyTenThousandPacketsExactlyOnceInOrder) {
  constexpr std::uint32_t kFlows = 4;
  constexpr std::uint64_t kSeqsPerFlow = 1250;  // x2 copies = 10k frames
  net::PacketPool pool(8192, 2048, false);
  sim::EventQueue eq;
  io::LoopbackConfig cfg;
  cfg.queue_depth = 8192;
  cfg.seed = 42;
  auto [tx, rx] = io::LoopbackBackend::make_pair(cfg);
  io::LoopbackFaults path0;
  path0.drop_rate = 0.10;
  path0.dup_rate = 0.05;
  path0.reorder_rate = 0.20;
  path0.reorder_extra_ticks = 6;
  io::LoopbackFaults path1;
  path1.drop_rate = 0.25;
  path1.dup_rate = 0.02;
  path1.reorder_rate = 0.10;
  path1.reorder_extra_ticks = 3;
  path1.delay_ticks = 2;  // the asymmetric slow path
  tx->set_path_faults(0, path0);
  tx->set_path_faults(1, path1);

  core::Deduplicator dedup;
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> egressed;
  std::vector<std::uint64_t> last_seq(kFlows, 0);
  std::vector<bool> any_seq(kFlows, false);
  std::uint64_t order_violations = 0;
  // Timeout is sized >> the wire's worst dwell (~8 ticks of eq time) so a
  // skip can never outrun an in-flight copy, yet small enough that timers
  // fire mid-run and permanent holes don't strand the whole tail.
  core::ReorderBuffer reorder(
      eq, {true, 10'000}, [&](net::PacketPtr pkt) {
        const auto& a = pkt->anno();
        ++egressed[{a.flow_id, a.seq}];
        if (any_seq[a.flow_id] && a.seq <= last_seq[a.flow_id])
          ++order_violations;
        last_seq[a.flow_id] = a.seq;
        any_seq[a.flow_id] = true;
      });

  std::set<std::pair<std::uint32_t, std::uint64_t>> arrived;
  auto drain = [&] {
    net::PacketPtr got[64];
    std::size_t n;
    while ((n = rx->rx_burst(got)) > 0) {
      std::uint64_t keys[64];
      bool first[64];
      for (std::size_t i = 0; i < n; ++i) {
        const auto& a = got[i]->anno();
        arrived.insert({a.flow_id, a.seq});
        keys[i] = core::Deduplicator::key(a.flow_id, a.seq);
      }
      dedup.accept_batch({keys, n}, {first, n});
      for (std::size_t i = 0; i < n; ++i)
        if (!first[i]) got[i].reset();  // duplicate copy: dropped here
      reorder.submit_batch({got, n});
      for (std::size_t i = 0; i < n; ++i) got[i].reset();
      eq.run_until(eq.now() + 50);
    }
  };

  for (std::uint64_t seq = 0; seq < kSeqsPerFlow; ++seq) {
    for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
      tx->advance(1);  // one wire tick per offered redundant pair
      dedup.expect(core::Deduplicator::key(flow, seq), 2, eq.now());
      net::PacketPtr copies[2] = {make_frame(pool, flow, seq, 0, 0),
                                  make_frame(pool, flow, seq, 1, 1)};
      ASSERT_TRUE(copies[0] && copies[1]) << "pool sized for the sweep";
      std::size_t sent = 0;
      while (sent < 2)
        sent += tx->tx_burst(std::span<net::PacketPtr>(copies + sent,
                                                       2 - sent));
      drain();
    }
  }
  // Quiesce: release staged wire frames, fire reorder timers, flush.
  while (tx->in_flight() > 0) {
    tx->flush();
    drain();
  }
  eq.run();   // all timeout timers fire: windows hop permanent holes
  drain();
  reorder.flush_all();

  // exactly-once: nothing egressed twice, and everything that survived
  // the wire egressed.
  std::uint64_t total_egressed = 0;
  for (const auto& [key, count] : egressed) {
    EXPECT_EQ(count, 1) << "flow " << key.first << " seq " << key.second
                        << " egressed " << count << " times";
    total_egressed += static_cast<std::uint64_t>(count);
  }
  EXPECT_EQ(total_egressed, arrived.size())
      << "every (flow, seq) with a surviving copy egressed exactly once";
  EXPECT_GT(tx->dropped(), 0u);
  EXPECT_GT(tx->duplicated(), 0u);
  EXPECT_GT(tx->reordered(), 0u);
  EXPECT_LT(arrived.size(), kFlows * kSeqsPerFlow)
      << "some seqs lost both copies (the interesting case)";
  EXPECT_EQ(order_violations, 0u) << "per-flow egress stayed in order";
  EXPECT_EQ(reorder.buffered(), 0u);
  EXPECT_EQ(pool.in_use(), 0u) << "zero pool leaks at quiesce";
  EXPECT_EQ(pool.total_allocs(), pool.total_recycles());
}

// ---------------------------------------------------------------------------
// Differential wire oracle: a deliberately naive reference model of the
// loopback fault semantics — plain vectors, a full sort per release, and a
// per-frame replay of the same splitmix64 streams. The slab/calendar
// rewrite must be byte-equivalent to it: same delivery order, same fault
// counters, same pool balance, for any seed.

struct NaiveWireModel {
  struct Delivered {
    std::uint32_t flow;
    std::uint64_t seq;
    std::uint8_t copy;
    bool operator==(const Delivered&) const = default;
  };

  explicit NaiveWireModel(std::uint64_t seed) : seed_(seed) {}

  static std::uint64_t next_u64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);  // splitmix64
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static double next_unit(std::uint64_t& state) {
    return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
  }

  std::uint64_t& rng(std::uint16_t path) {
    if (path >= state_.size()) {
      const std::size_t old = state_.size();
      state_.resize(path + 1);
      for (std::size_t p = old; p < state_.size(); ++p)
        state_[p] = seed_ * 0x9e3779b97f4a7c15ull + p + 1;
    }
    return state_[path];
  }

  void set_faults(std::uint16_t path, const io::LoopbackFaults& f) {
    if (path >= lanes_.size()) lanes_.resize(path + 1);
    lanes_[path] = f;
    rng(path);
  }

  void tx(std::uint32_t flow, std::uint64_t seq, std::uint16_t path,
          std::uint8_t copy) {
    static const io::LoopbackFaults kClean{};
    const io::LoopbackFaults& lane =
        path < lanes_.size() ? lanes_[path] : kClean;
    if (lane.drop_rate > 0 && next_unit(rng(path)) < lane.drop_rate) {
      ++dropped;
      return;
    }
    std::uint64_t due = tick_ + lane.delay_ticks;
    if (lane.reorder_rate > 0 && next_unit(rng(path)) < lane.reorder_rate) {
      due += lane.reorder_extra_ticks;
      ++reordered;
    }
    const bool dup =
        lane.dup_rate > 0 && next_unit(rng(path)) < lane.dup_rate;
    emit(due, {flow, seq, copy});
    if (dup) {
      ++duplicated;
      emit(due, {flow, seq, static_cast<std::uint8_t>(copy + 1)});
    }
  }

  void advance(std::uint64_t ticks) {
    tick_ += ticks;
    release(tick_);
  }

  void flush_all() { release(UINT64_MAX); }

  std::vector<Delivered> delivered;
  std::uint64_t dropped = 0, duplicated = 0, reordered = 0;

 private:
  struct Held {
    std::uint64_t due, order;
    Delivered d;
  };

  void emit(std::uint64_t due, Delivered d) {
    if (due <= tick_) {
      delivered.push_back(d);  // the wire passes it straight through
    } else {
      held_.push_back(Held{due, order_++, d});
    }
  }

  void release(std::uint64_t limit) {
    std::vector<Held> ready;
    std::erase_if(held_, [&](const Held& h) {
      if (h.due > limit) return false;
      ready.push_back(h);
      return true;
    });
    std::sort(ready.begin(), ready.end(), [](const Held& a, const Held& b) {
      return a.due != b.due ? a.due < b.due : a.order < b.order;
    });
    for (const Held& h : ready) delivered.push_back(h.d);
  }

  std::uint64_t seed_;
  std::uint64_t tick_ = 0;
  std::uint64_t order_ = 0;
  std::vector<io::LoopbackFaults> lanes_;
  std::vector<std::uint64_t> state_;
  std::vector<Held> held_;
};

TEST(LoopbackOracle, PropertyRewrittenWireMatchesNaiveModelExactly) {
  constexpr std::uint64_t kFrames = 10'000;
  constexpr std::size_t kWindow = 16;  // frames per wire tick
  io::LoopbackFaults lane0;
  lane0.drop_rate = 0.08;
  lane0.dup_rate = 0.06;
  lane0.reorder_rate = 0.15;
  lane0.reorder_extra_ticks = 5;
  lane0.delay_ticks = 1;
  io::LoopbackFaults lane1;
  lane1.drop_rate = 0.20;
  lane1.dup_rate = 0.02;
  lane1.reorder_rate = 0.10;
  lane1.reorder_extra_ticks = 3;
  lane1.delay_ticks = 3;
  // path 2 stays clean: the direct-push fast path must interleave
  // correctly with both faulted lanes.

  for (const std::uint64_t seed : {11ull, 42ull, 20260808ull}) {
    net::PacketPool pool(2048, 2048, false);
    io::LoopbackConfig cfg;
    cfg.queue_depth = 8192;
    cfg.seed = seed;
    auto [tx, rx] = io::LoopbackBackend::make_pair(cfg);
    tx->set_path_faults(0, lane0);
    tx->set_path_faults(1, lane1);

    NaiveWireModel model(seed);
    model.set_faults(0, lane0);
    model.set_faults(1, lane1);

    std::vector<NaiveWireModel::Delivered> wire;
    auto drain = [&] {
      net::PacketPtr got[64];
      std::size_t n;
      while ((n = rx->rx_burst(got)) > 0)
        for (std::size_t i = 0; i < n; ++i) {
          const auto& a = got[i]->anno();
          wire.push_back({a.flow_id, a.seq, a.copy_index});
          got[i].reset();
        }
    };

    net::PacketPtr burst[kWindow];
    for (std::uint64_t base = 0; base < kFrames; base += kWindow) {
      tx->advance(1);
      model.advance(1);
      std::size_t built = 0;
      for (; built < kWindow && base + built < kFrames; ++built) {
        const std::uint64_t i = base + built;
        const auto path = static_cast<std::uint16_t>((i * 2654435761u) % 3);
        const auto flow = static_cast<std::uint32_t>(i % 7);
        burst[built] = make_frame(pool, flow, i, path);
        ASSERT_TRUE(burst[built]);
        model.tx(flow, i, path, 0);
      }
      std::size_t sent = 0;
      while (sent < built)
        sent += tx->tx_burst(
            std::span<net::PacketPtr>(burst + sent, built - sent));
      drain();
    }
    while (tx->in_flight() > 0) {
      tx->flush();
      drain();
    }
    model.flush_all();

    ASSERT_EQ(wire.size(), model.delivered.size()) << "seed " << seed;
    for (std::size_t i = 0; i < wire.size(); ++i)
      ASSERT_TRUE(wire[i] == model.delivered[i])
          << "seed " << seed << ": delivery diverged at index " << i
          << " (wire flow " << wire[i].flow << " seq " << wire[i].seq
          << " copy " << int(wire[i].copy) << " vs model flow "
          << model.delivered[i].flow << " seq " << model.delivered[i].seq
          << " copy " << int(model.delivered[i].copy) << ")";
    EXPECT_EQ(tx->dropped(), model.dropped) << "seed " << seed;
    EXPECT_EQ(tx->duplicated(), model.duplicated) << "seed " << seed;
    EXPECT_EQ(tx->reordered(), model.reordered) << "seed " << seed;
    EXPECT_EQ(pool.in_use(), 0u) << "seed " << seed;
    EXPECT_EQ(pool.total_allocs(), pool.total_recycles())
        << "seed " << seed << ": dup clones must come from the wire's own "
        << "slab, never the caller's pool";
  }
}

// ---------------------------------------------------------------------------
// Burst-size byte-identity: fault decisions are strictly per-frame, so the
// same seed + offered stream must deliver identically no matter how the
// stream is chunked into bursts. Pins the "batched evaluation, per-frame
// decisions" contract of the slab rewrite.

TEST(LoopbackOracle, BurstSizeCannotChangeDeliveryOrFaultCounters) {
  constexpr std::uint64_t kFrames = 4096;
  constexpr std::uint64_t kWindow = 256;  // frames per wire tick
  io::LoopbackFaults lane0;
  lane0.drop_rate = 0.05;
  lane0.dup_rate = 0.04;
  lane0.reorder_rate = 0.12;
  lane0.reorder_extra_ticks = 4;
  io::LoopbackFaults lane1;
  lane1.drop_rate = 0.15;
  lane1.reorder_rate = 0.08;
  lane1.reorder_extra_ticks = 2;
  lane1.delay_ticks = 3;

  struct RunResult {
    std::vector<NaiveWireModel::Delivered> delivered;
    std::uint64_t dropped, duplicated, reordered;
  };
  auto run_with_burst = [&](std::size_t burst_size) {
    net::PacketPool pool(2048, 2048, false);
    io::LoopbackConfig cfg;
    cfg.queue_depth = 8192;
    cfg.seed = 7;
    auto [tx, rx] = io::LoopbackBackend::make_pair(cfg);
    tx->set_path_faults(0, lane0);
    tx->set_path_faults(1, lane1);

    RunResult res;
    auto drain = [&] {
      net::PacketPtr got[64];
      std::size_t n;
      while ((n = rx->rx_burst(got)) > 0)
        for (std::size_t i = 0; i < n; ++i) {
          const auto& a = got[i]->anno();
          res.delivered.push_back({a.flow_id, a.seq, a.copy_index});
          got[i].reset();
        }
    };

    std::vector<net::PacketPtr> chunk(burst_size);
    for (std::uint64_t base = 0; base < kFrames; base += kWindow) {
      tx->advance(1);  // wire time is fixed at window granularity, so the
                       // chunking below is the only variable
      for (std::uint64_t off = 0; off < kWindow; off += burst_size) {
        for (std::size_t k = 0; k < burst_size; ++k) {
          const std::uint64_t i = base + off + k;
          chunk[k] = make_frame(pool, static_cast<std::uint32_t>(i % 5), i,
                                static_cast<std::uint16_t>(i & 1));
          EXPECT_TRUE(chunk[k]);
        }
        std::size_t sent = 0;
        while (sent < burst_size)
          sent += tx->tx_burst(std::span<net::PacketPtr>(
              chunk.data() + sent, burst_size - sent));
      }
      drain();
    }
    while (tx->in_flight() > 0) {
      tx->flush();
      drain();
    }
    res.dropped = tx->dropped();
    res.duplicated = tx->duplicated();
    res.reordered = tx->reordered();
    EXPECT_EQ(pool.in_use(), 0u) << "burst " << burst_size;
    return res;
  };

  const RunResult ref = run_with_burst(1);
  EXPECT_FALSE(ref.delivered.empty());
  EXPECT_GT(ref.reordered, 0u);
  for (const std::size_t b : {8u, 32u, 256u}) {
    const RunResult got = run_with_burst(b);
    EXPECT_EQ(got.delivered.size(), ref.delivered.size()) << "burst " << b;
    EXPECT_TRUE(got.delivered == ref.delivered)
        << "burst " << b << " changed the delivery order";
    EXPECT_EQ(got.dropped, ref.dropped) << "burst " << b;
    EXPECT_EQ(got.duplicated, ref.duplicated) << "burst " << b;
    EXPECT_EQ(got.reordered, ref.reordered) << "burst " << b;
  }
}

// ---------------------------------------------------------------------------
// Quiesce edge cases: the flush()/in_flight() contract under ring
// backpressure, empty spans, and fault-lane pool traffic.

TEST(LoopbackQuiesce, FlushAgainstFullRxRingReleasesPartiallyUntilDrained) {
  net::PacketPool pool(128, 2048, false);
  io::LoopbackConfig cfg;
  cfg.queue_depth = 64;
  cfg.ring_capacity = 8;  // shallow wire: staged frames outnumber slots
  auto [tx, rx] = io::LoopbackBackend::make_pair(cfg);
  io::LoopbackFaults slow;
  slow.delay_ticks = 1000;  // far beyond the test horizon
  tx->set_path_faults(0, slow);

  net::PacketPtr frames[32];
  for (std::uint64_t seq = 0; seq < 32; ++seq)
    frames[seq] = make_frame(pool, 0, seq, 0);
  ASSERT_EQ(tx->tx_burst(frames), 32u);
  EXPECT_EQ(tx->in_flight(), 32u);

  // First flush can only fill the 8-slot ring: a partial release.
  const std::size_t first = tx->flush();
  EXPECT_EQ(first, 8u) << "flush is bounded by wire ring space";
  EXPECT_EQ(tx->in_flight(), 32u) << "unreleased frames still in flight";

  // Repeat-until-drained: interleave rx_burst and flush, frames arrive in
  // (due, tx order) — here all dues are equal, so in tx order.
  std::uint64_t expect_seq = 0;
  std::size_t rounds = 0;
  while (tx->in_flight() > 0) {
    ASSERT_LT(rounds++, 64u) << "quiesce loop must terminate";
    net::PacketPtr got[8];
    std::size_t n;
    while ((n = rx->rx_burst(got)) > 0)
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i]->anno().seq, expect_seq++);
        got[i].reset();
      }
    tx->flush();
  }
  EXPECT_EQ(expect_seq, 32u) << "every staged frame was released";
  EXPECT_GE(rounds, 4u) << "the shallow ring forced multiple rounds";
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.total_allocs(), pool.total_recycles());
}

TEST(LoopbackQuiesce, ZeroCapacitySpansAndExhaustedWireConsumeNothing) {
  net::PacketPool pool(64, 2048, false);
  io::LoopbackConfig cfg;
  cfg.queue_depth = 8;
  auto [tx, rx] = io::LoopbackBackend::make_pair(cfg);
  io::LoopbackFaults slow;
  slow.delay_ticks = 100;
  tx->set_path_faults(0, slow);

  // Zero-capacity spans: no consumption, no counters, no clock movement.
  EXPECT_EQ(tx->tx_burst({}), 0u);
  EXPECT_EQ(rx->rx_burst({}), 0u);
  EXPECT_EQ(tx->tx_packets(), 0u);
  EXPECT_EQ(tx->tx_rejected(), 0u);
  EXPECT_EQ(tx->tick(), 0u);

  // Fill the wire to queue_depth, then offer more: the partial-burst rule
  // consumes nothing and accounts the rejects.
  net::PacketPtr fill[8];
  for (std::uint64_t seq = 0; seq < 8; ++seq)
    fill[seq] = make_frame(pool, 0, seq, 0);
  ASSERT_EQ(tx->tx_burst(fill), 8u);
  EXPECT_EQ(tx->in_flight(), 8u);

  net::PacketPtr extra[4];
  for (std::uint64_t seq = 8; seq < 12; ++seq)
    extra[seq - 8] = make_frame(pool, 0, seq, 0);
  EXPECT_EQ(tx->tx_burst(extra), 0u) << "wire at queue_depth rejects all";
  EXPECT_EQ(tx->tx_rejected(), 4u);
  for (auto& p : extra) {
    EXPECT_TRUE(p) << "rejected frames stay caller-owned";
    p.reset();
  }

  while (tx->in_flight() > 0) {
    tx->flush();
    net::PacketPtr got[8];
    std::size_t n;
    while ((n = rx->rx_burst(got)) > 0)
      for (std::size_t i = 0; i < n; ++i) got[i].reset();
  }
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.total_allocs(), pool.total_recycles());
}

TEST(LoopbackQuiesce, InFlightAccountsDropRecycleAndSlabClones) {
  net::PacketPool pool(128, 2048, false);
  auto [tx, rx] = io::LoopbackBackend::make_pair({});
  io::LoopbackFaults eat;
  eat.drop_rate = 1.0;
  io::LoopbackFaults twin;
  twin.dup_rate = 1.0;
  tx->set_path_faults(0, eat);
  tx->set_path_faults(1, twin);

  // Drop lane: consumed but never in flight — recycled synchronously.
  const std::uint64_t allocs_before = pool.total_allocs();
  net::PacketPtr doomed[10];
  for (std::uint64_t seq = 0; seq < 10; ++seq)
    doomed[seq] = make_frame(pool, 0, seq, 0);
  ASSERT_EQ(tx->tx_burst(doomed), 10u);
  EXPECT_EQ(tx->dropped(), 10u);
  EXPECT_EQ(tx->in_flight(), 0u) << "dropped frames are not in flight";
  EXPECT_EQ(pool.in_use(), 0u) << "drop recycles synchronously";

  // Dup lane: each frame doubles; clones count toward in_flight but come
  // from the backend's slab, not the caller's pool.
  net::PacketPtr twins[10];
  for (std::uint64_t seq = 0; seq < 10; ++seq)
    twins[seq] = make_frame(pool, 7, seq, 1);
  ASSERT_EQ(tx->tx_burst(twins), 10u);
  EXPECT_EQ(tx->duplicated(), 10u);
  EXPECT_EQ(tx->in_flight(), 20u) << "originals + clones in flight";
  EXPECT_EQ(pool.total_allocs(), allocs_before + 20)
      << "exactly the frames this test built: clones never touched the "
      << "caller pool";

  std::size_t received = 0;
  net::PacketPtr got[32];
  std::size_t n;
  while ((n = rx->rx_burst(got)) > 0)
    for (std::size_t i = 0; i < n; ++i) {
      ++received;
      got[i].reset();
    }
  EXPECT_EQ(received, 20u);
  EXPECT_EQ(tx->in_flight(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.total_allocs(), pool.total_recycles());
}

}  // namespace
}  // namespace mdp
