// mdp::ctrl tests: the control plane from decision kernel to closed loop.
//
// Unit layer: PathStateMachine hysteresis edges, SloMonitor windows (incl.
// a two-writer concurrency smoke — the monitor is the only cross-thread
// surface), AdaptiveHedger sustain/cooldown discipline, and the Controller
// against a scripted FakeActuator (lifecycle, capacity guard, backlog
// breach, probe breach, decision log + report JSON).
//
// End-to-end layer: ThreadedDataPlane over a LoopbackBackend pair with a
// per-path delay fault lane. The driver measures delivery lag in *driver
// loop iterations* (a logical unit — no wall clock in the control loop),
// feeds the SloMonitor, and ticks the Controller once per round. The
// expected state trajectory is exact: quarantine on the second breaching
// window, drain to zero backlog, probe-only probation after the lane
// heals, then ACTIVE again — with exactly-once in-order per-flow delivery
// and a zero-leak pool audit at quiesce. Workers run for real throughout,
// which is what makes this binary meaningful under TSan.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "core/reorder.hpp"
#include "core/threaded_dataplane.hpp"
#include "ctrl/controller.hpp"
#include "io/loopback_backend.hpp"
#include "net/packet_builder.hpp"
#include "net/vxlan.hpp"
#include "sim/event_queue.hpp"
#include "trace/json.hpp"

namespace mdp {
namespace {

using ctrl::Admission;
using ctrl::PathState;

// ---------------------------------------------------------------------------
// PathStateMachine: hysteresis edges.

ctrl::TickInput breach_tick() {
  ctrl::TickInput in;
  in.breach = true;
  in.has_signal = true;
  return in;
}

ctrl::TickInput clean_tick() {
  ctrl::TickInput in;
  in.has_signal = true;
  return in;
}

TEST(PathStateMachine, SingleBreachNeverQuarantines) {
  ctrl::PathStateMachine fsm({.quarantine_after = 2});
  EXPECT_FALSE(fsm.on_tick(breach_tick()));
  EXPECT_EQ(fsm.state(), PathState::kActive);
  EXPECT_EQ(fsm.breach_streak(), 1);
  // The spike passes; the streak resets.
  EXPECT_FALSE(fsm.on_tick(clean_tick()));
  EXPECT_EQ(fsm.breach_streak(), 0);
  EXPECT_FALSE(fsm.on_tick(breach_tick()));
  EXPECT_EQ(fsm.state(), PathState::kActive);
}

TEST(PathStateMachine, SilenceBreaksTheStreak) {
  ctrl::PathStateMachine fsm({.quarantine_after = 2});
  fsm.on_tick(breach_tick());
  // A window with too few samples is not evidence either way.
  fsm.on_tick(ctrl::TickInput{});
  fsm.on_tick(breach_tick());
  EXPECT_EQ(fsm.state(), PathState::kActive);
  EXPECT_EQ(fsm.breach_streak(), 1);
}

TEST(PathStateMachine, QuarantineAfterClampsToTwo) {
  ctrl::PathStateMachine fsm({.quarantine_after = 0});
  fsm.on_tick(breach_tick());
  EXPECT_EQ(fsm.state(), PathState::kActive);
  fsm.on_tick(breach_tick());
  EXPECT_EQ(fsm.state(), PathState::kQuarantined);
}

TEST(PathStateMachine, FullLifecycle) {
  ctrl::PathStateMachine fsm({.quarantine_after = 2, .probation_probes = 4});
  fsm.on_tick(breach_tick());
  EXPECT_TRUE(fsm.on_tick(breach_tick()));
  EXPECT_EQ(fsm.state(), PathState::kQuarantined);
  EXPECT_EQ(fsm.quarantines(), 1u);

  // One masked tick, then draining until backlog hits zero.
  EXPECT_TRUE(fsm.on_tick(ctrl::TickInput{}));
  EXPECT_EQ(fsm.state(), PathState::kDraining);
  EXPECT_FALSE(fsm.on_tick(ctrl::TickInput{}));  // not drained yet
  ctrl::TickInput drained;
  drained.drained = true;
  EXPECT_TRUE(fsm.on_tick(drained));
  EXPECT_EQ(fsm.state(), PathState::kReinstated);

  // Probation: clean probes accumulate across ticks.
  ctrl::TickInput probes;
  probes.clean_probes = 2;
  EXPECT_FALSE(fsm.on_tick(probes));
  EXPECT_EQ(fsm.probation_progress(), 2u);
  EXPECT_TRUE(fsm.on_tick(probes));
  EXPECT_EQ(fsm.state(), PathState::kActive);
  EXPECT_EQ(fsm.reinstatements(), 1u);
}

TEST(PathStateMachine, ProbeBreachRequarantines) {
  ctrl::PathStateMachine fsm({.quarantine_after = 2, .probation_probes = 4});
  fsm.on_tick(breach_tick());
  fsm.on_tick(breach_tick());
  fsm.on_tick(ctrl::TickInput{});
  ctrl::TickInput drained;
  drained.drained = true;
  fsm.on_tick(drained);
  ASSERT_EQ(fsm.state(), PathState::kReinstated);

  // A single out-of-SLO probe sends it straight back — it can never
  // rejoin ACTIVE while still sick, so it cannot flap.
  ctrl::TickInput bad;
  bad.clean_probes = 3;
  bad.violated_probes = 1;
  EXPECT_TRUE(fsm.on_tick(bad));
  EXPECT_EQ(fsm.state(), PathState::kQuarantined);
  EXPECT_EQ(fsm.quarantines(), 2u);
  EXPECT_EQ(fsm.reinstatements(), 0u);
}

// ---------------------------------------------------------------------------
// SloMonitor: window harvest semantics and thread safety.

TEST(SloMonitor, HarvestSummarizesAndDrainsTheWindow) {
  ctrl::SloMonitor mon(2, /*slo_target_ns=*/1000);
  for (int i = 0; i < 98; ++i) mon.observe(0, 500);
  mon.observe(0, 8000);
  mon.observe(0, 8000);

  ctrl::WindowStats w = mon.harvest(0);
  EXPECT_EQ(w.samples, 100u);
  EXPECT_EQ(w.violations, 2u);
  EXPECT_EQ(w.sum_ns, 98u * 500 + 2u * 8000);
  // The CDF crosses 0.99 inside the 8000 bucket; the reported edge is
  // bucket-quantized, within one sub-bucket (~25%) above the true value.
  EXPECT_GE(w.p99_ns, 8000u);
  EXPECT_LE(w.p99_ns, 12000u);
  EXPECT_GE(w.max_ns, 8000u);
  EXPECT_NEAR(w.violation_fraction(), 0.02, 1e-9);

  // The window is an interval: a second harvest is empty.
  ctrl::WindowStats again = mon.harvest(0);
  EXPECT_EQ(again.samples, 0u);
  EXPECT_EQ(again.violation_fraction(), 0.0);

  // The other path's window is untouched.
  EXPECT_EQ(mon.harvest(1).samples, 0u);

  // Lifetime totals survive the harvest.
  EXPECT_EQ(mon.total_observed(), 100u);
  EXPECT_EQ(mon.total_violations(), 2u);
}

TEST(SloMonitor, RuntimeTargetAppliesToNewObservations) {
  ctrl::SloMonitor mon(1, 1000);
  mon.observe(0, 500);
  mon.set_slo_target_ns(100);
  mon.observe(0, 500);
  ctrl::WindowStats w = mon.harvest(0);
  EXPECT_EQ(w.samples, 2u);
  EXPECT_EQ(w.violations, 1u);
}

TEST(SloMonitor, ConcurrentObserveWhileHarvesting) {
  // Two writer threads hammer one path while the controller thread
  // harvests mid-stream: nothing may be lost or double-counted. This is
  // the TSan witness for the monitor's lock-free ingestion.
  ctrl::SloMonitor mon(1, /*slo_target_ns=*/100);
  constexpr int kPerThread = 50'000;
  std::uint64_t samples = 0, violations = 0;

  std::thread fast([&] {
    for (int i = 0; i < kPerThread; ++i) mon.observe(0, 50);
  });
  std::thread slow([&] {
    for (int i = 0; i < kPerThread; ++i) mon.observe(0, 200);
  });
  for (int i = 0; i < 100; ++i) {
    ctrl::WindowStats w = mon.harvest(0);
    samples += w.samples;
    violations += w.violations;
    std::this_thread::yield();
  }
  fast.join();
  slow.join();
  ctrl::WindowStats w = mon.harvest(0);
  samples += w.samples;
  violations += w.violations;

  EXPECT_EQ(samples, 2u * kPerThread);
  EXPECT_EQ(violations, static_cast<std::uint64_t>(kPerThread));
  EXPECT_EQ(mon.total_observed(), 2u * kPerThread);
  EXPECT_EQ(mon.total_violations(), static_cast<std::uint64_t>(kPerThread));
}

/// A span with the given stage durations (everything else zero-width);
/// e2e telescopes to queue_wait + service + reorder exactly.
trace::SpanRecord make_span(std::uint64_t queue_wait, std::uint64_t service,
                            std::uint64_t reorder) {
  trace::SpanRecord sp;
  sp.ingress_ns = 1;
  sp.dispatch_ns = sp.ingress_ns;
  sp.service_start_ns = sp.dispatch_ns + queue_wait;
  sp.service_end_ns = sp.service_start_ns + service;
  sp.chain_done_ns = sp.service_end_ns;
  sp.merge_ns = sp.chain_done_ns;
  sp.egress_ns = sp.merge_ns + reorder;
  sp.active = true;
  return sp;
}

TEST(SloMonitor, ObserveSpanAttributesStagesAndReportsP50) {
  ctrl::SloMonitor mon(2, /*slo_target_ns=*/1000);
  for (int i = 0; i < 9; ++i)
    mon.observe_span(0, make_span(/*queue_wait=*/100, /*service=*/300, 0));
  mon.observe_span(0, make_span(200, 7000, 800));  // e2e 8000: the tail

  ctrl::WindowStats w = mon.harvest(0);
  EXPECT_EQ(w.samples, 10u);
  EXPECT_EQ(w.violations, 1u);
  ASSERT_TRUE(w.has_stage_evidence());
  // Stage mass is conserved exactly — no quantization on the sums.
  using trace::Stage;
  EXPECT_EQ(w.stage_sum_ns[static_cast<std::size_t>(Stage::kQueueWait)],
            9u * 100 + 200);
  EXPECT_EQ(w.stage_sum_ns[static_cast<std::size_t>(Stage::kService)],
            9u * 300 + 7000);
  EXPECT_EQ(w.stage_sum_ns[static_cast<std::size_t>(Stage::kReorder)], 800u);
  EXPECT_EQ(w.stage_sum_ns[static_cast<std::size_t>(Stage::kSchedule)], 0u);
  EXPECT_EQ(w.dominant_stage(), Stage::kService);
  EXPECT_EQ(w.dominant_stage_ns(), 9u * 300 + 7000);
  EXPECT_GT(w.dominant_share(), 0.5);
  // The median sits in the 400ns cohort; the reported edge is
  // bucket-quantized within ~25% above the true value.
  EXPECT_GE(w.p50_ns, 400u);
  EXPECT_LE(w.p50_ns, 500u);

  // Harvest drains the stage evidence with the window.
  ctrl::WindowStats again = mon.harvest(0);
  EXPECT_EQ(again.samples, 0u);
  EXPECT_FALSE(again.has_stage_evidence());
  EXPECT_EQ(again.p50_ns, 0u);
}

TEST(SloMonitor, DominantStageTiesBreakToTheEarliestStage) {
  ctrl::SloMonitor mon(1, 1000);
  mon.observe_span(0, make_span(/*queue_wait=*/500, /*service=*/500, 0));
  ctrl::WindowStats w = mon.harvest(0);
  EXPECT_EQ(w.dominant_stage(), trace::Stage::kQueueWait);
}

TEST(SloMonitor, ConcurrentObserveSpanWhileHarvesting) {
  // Companion to ConcurrentObserveWhileHarvesting: two writers feed spans
  // with disjoint stage shapes while the controller harvests mid-stream.
  // Stage mass must be conserved exactly across all harvests — the TSan
  // witness for the per-stage atomic sums.
  ctrl::SloMonitor mon(1, /*slo_target_ns=*/100);
  constexpr int kPerThread = 50'000;
  std::uint64_t samples = 0;
  std::array<std::uint64_t, trace::kNumStages> stage_sums{};
  auto absorb = [&](const ctrl::WindowStats& w) {
    samples += w.samples;
    for (std::size_t s = 0; s < trace::kNumStages; ++s)
      stage_sums[s] += w.stage_sum_ns[s];
  };

  std::thread queuey([&] {
    for (int i = 0; i < kPerThread; ++i)
      mon.observe_span(0, make_span(/*queue_wait=*/40, /*service=*/10, 0));
  });
  std::thread servicey([&] {
    for (int i = 0; i < kPerThread; ++i)
      mon.observe_span(0, make_span(0, /*service=*/200, /*reorder=*/50));
  });
  for (int i = 0; i < 100; ++i) {
    absorb(mon.harvest(0));
    std::this_thread::yield();
  }
  queuey.join();
  servicey.join();
  absorb(mon.harvest(0));

  using trace::Stage;
  EXPECT_EQ(samples, 2u * kPerThread);
  EXPECT_EQ(stage_sums[static_cast<std::size_t>(Stage::kQueueWait)],
            40u * kPerThread);
  EXPECT_EQ(stage_sums[static_cast<std::size_t>(Stage::kService)],
            210u * kPerThread);
  EXPECT_EQ(stage_sums[static_cast<std::size_t>(Stage::kReorder)],
            50u * kPerThread);
  EXPECT_EQ(stage_sums[static_cast<std::size_t>(Stage::kSchedule)], 0u);
}

// ---------------------------------------------------------------------------
// AdaptiveHedger: sustain + cooldown discipline.

ctrl::HedgerConfig hedger_cfg() {
  ctrl::HedgerConfig cfg;
  cfg.min_replicas = 1;
  cfg.max_replicas = 3;
  cfg.raise_threshold = 1.0;
  cfg.lower_threshold = 0.5;
  cfg.sustain_ticks = 2;
  cfg.cooldown_ticks = 3;
  cfg.min_samples = 10;
  return cfg;
}

TEST(AdaptiveHedger, RaisesOnlyWhenSustainedAndRespectsCooldown) {
  ctrl::AdaptiveHedger h(hedger_cfg());
  EXPECT_EQ(h.update(2000, 100, 1000), 1u);  // one hot window: no change
  EXPECT_EQ(h.update(2000, 100, 1000), 2u);  // sustained: raise
  EXPECT_EQ(h.raises(), 1u);
  // Cooldown holds the factor even though windows stay hot.
  EXPECT_EQ(h.update(2000, 100, 1000), 2u);
  EXPECT_EQ(h.update(2000, 100, 1000), 2u);
  // Cooldown expired and the breach sustained again: next step.
  EXPECT_EQ(h.update(2000, 100, 1000), 3u);
  // Clamped at max_replicas no matter how hot it stays.
  for (int i = 0; i < 10; ++i) h.update(4000, 100, 1000);
  EXPECT_EQ(h.replicas(), 3u);
}

TEST(AdaptiveHedger, LowersAfterSustainedCalm) {
  ctrl::AdaptiveHedger h(hedger_cfg());
  h.update(2000, 100, 1000);
  h.update(2000, 100, 1000);
  ASSERT_EQ(h.replicas(), 2u);
  for (int i = 0; i < 4; ++i) h.update(100, 100, 1000);  // burn cooldown
  EXPECT_EQ(h.update(100, 100, 1000), 1u);
  EXPECT_EQ(h.lowers(), 1u);
  // Floor: never below min_replicas.
  for (int i = 0; i < 10; ++i) h.update(100, 100, 1000);
  EXPECT_EQ(h.replicas(), 1u);
}

TEST(AdaptiveHedger, ThinWindowsCarryNoSignal) {
  ctrl::AdaptiveHedger h(hedger_cfg());
  h.update(2000, 100, 1000);
  // Below min_samples: not only no change, the streak resets.
  h.update(2000, 5, 1000);
  EXPECT_EQ(h.update(2000, 100, 1000), 1u);
  EXPECT_EQ(h.update(2000, 100, 1000), 2u);
}

TEST(AdaptiveHedger, DisabledHoldsTheFloor) {
  ctrl::HedgerConfig cfg = hedger_cfg();
  cfg.enabled = false;
  ctrl::AdaptiveHedger h(cfg);
  for (int i = 0; i < 10; ++i) h.update(5000, 100, 1000);
  EXPECT_EQ(h.replicas(), 1u);
  EXPECT_EQ(h.raises(), 0u);
}

// ---------------------------------------------------------------------------
// HedgeTimeoutController: the PID loop on the hedge-fire deadline.

ctrl::HedgeTimeoutConfig hedge_timeout_cfg() {
  ctrl::HedgeTimeoutConfig cfg;
  cfg.enabled = true;
  cfg.min_timeout_ns = 100;
  cfg.max_timeout_ns = 0;  // ceiling = SLO target
  cfg.kp = 0.5;
  cfg.ki = 0.1;
  cfg.kd = 0.0;
  cfg.min_samples = 4;
  cfg.deadband = 0.0;
  return cfg;
}

TEST(HedgeTimeoutController, DisabledNeverActuates) {
  ctrl::HedgeTimeoutController c;  // default config: disabled
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(c.update(/*p50=*/200, /*p99=*/9000, 1000, 1000), 0u);
  EXPECT_EQ(c.timeout_ns(), 0u);
  EXPECT_EQ(c.adjustments(), 0u);
  EXPECT_FALSE(c.enabled());
}

TEST(HedgeTimeoutController, ThinWindowsCarryNoSignal) {
  ctrl::HedgeTimeoutController c(hedge_timeout_cfg());
  // Before any adequate window there is nothing to actuate: 0 means
  // "leave the scheduler's own budget in place".
  EXPECT_EQ(c.update(200, 5000, /*samples=*/2, 1000), 0u);
  EXPECT_EQ(c.adjustments(), 0u);
  // One adequate hot window sets a deadline...
  const std::uint64_t t = c.update(200, 5000, 100, 1000);
  EXPECT_GT(t, 0u);
  EXPECT_EQ(c.adjustments(), 1u);
  // ...which a thin window holds untouched.
  EXPECT_EQ(c.update(200, 50, 2, 1000), t);
  EXPECT_EQ(c.adjustments(), 1u);
}

TEST(HedgeTimeoutController, TailErrorDrivesDeadlineBetweenFloorAndCeiling) {
  ctrl::HedgeTimeoutController c(hedge_timeout_cfg());
  // Sustained hot tail: the deadline slams to the floor (= p50 here, above
  // min_timeout_ns) so stragglers are rescued at the earliest sane moment.
  std::uint64_t t = 0;
  for (int i = 0; i < 4; ++i) t = c.update(200, 3000, 100, 1000);
  EXPECT_EQ(t, 200u);
  // Sustained calm: the integral bleeds off and the deadline relaxes all
  // the way back to the ceiling (= the SLO target), shedding hedge load.
  for (int i = 0; i < 50; ++i) t = c.update(200, 100, 100, 1000);
  EXPECT_EQ(t, 1000u);
  EXPECT_GT(c.adjustments(), 1u);
}

TEST(HedgeTimeoutController, FloorTracksTheMedianAndMinTimeout) {
  ctrl::HedgeTimeoutConfig cfg = hedge_timeout_cfg();
  cfg.min_timeout_ns = 500;
  ctrl::HedgeTimeoutController c(cfg);
  // Hot enough that the position slams to the floor immediately.
  EXPECT_EQ(c.update(/*p50=*/200, 9000, 100, 1000), 500u)
      << "min_timeout_ns backstops a tiny median";
  EXPECT_EQ(c.update(/*p50=*/800, 9000, 100, 1000), 800u)
      << "the median moves the floor: never hedge before p50";
}

TEST(HedgeTimeoutController, DeadbandSuppressesSubNoiseActuation) {
  ctrl::HedgeTimeoutConfig cfg = hedge_timeout_cfg();
  cfg.ki = 0.0;  // pure proportional: moves are easy to predict
  cfg.deadband = 0.25;
  ctrl::HedgeTimeoutController c(cfg);
  // Pin the deadline to the floor with a hot window.
  EXPECT_EQ(c.update(200, 9000, 100, 1000), 200u);
  EXPECT_EQ(c.adjustments(), 1u);
  // A mildly calm window wants a small relaxation (candidate ~240, a 20%
  // move): under the deadband, so the scheduler knob is not twitched.
  EXPECT_EQ(c.update(200, 900, 100, 1000), 200u);
  EXPECT_EQ(c.adjustments(), 1u);
  // A strongly calm window's move clears the deadband and actuates.
  const std::uint64_t t = c.update(200, 100, 100, 1000);
  EXPECT_GT(t, 200u);
  EXPECT_EQ(c.adjustments(), 2u);
}

// ---------------------------------------------------------------------------
// Controller against a scripted actuator.

struct FakeActuator : ctrl::Actuator {
  explicit FakeActuator(std::size_t paths)
      : admission(paths, Admission::kEnabled),
        probes(paths, 0),
        backlog(paths, 0),
        flushes(paths, 0) {}

  std::size_t num_paths() const override { return admission.size(); }
  void set_admission(std::size_t p, Admission a) override {
    admission[p] = a;
  }
  void grant_probes(std::size_t p, std::uint64_t n) override {
    probes[p] += n;
  }
  std::uint64_t path_backlog(std::size_t p) const override {
    return backlog[p];
  }
  void flush_path(std::size_t p) override { ++flushes[p]; }
  void set_replicas(std::size_t r) override { replicas = r; }
  void set_hedge_timeout(std::uint64_t t) override {
    hedge_timeouts.push_back(t);
  }

  std::vector<Admission> admission;
  std::vector<std::uint64_t> probes;
  std::vector<std::uint64_t> backlog;
  std::vector<std::uint64_t> flushes;
  std::vector<std::uint64_t> hedge_timeouts;
  std::size_t replicas = 1;
};

ctrl::Config controller_cfg() {
  ctrl::Config cfg;
  cfg.slo_target_ns = 1000;
  cfg.violation_threshold = 0.25;
  cfg.min_samples = 4;
  cfg.path.quarantine_after = 2;
  cfg.path.probation_probes = 4;
  cfg.probe_grant_per_tick = 8;
  cfg.min_serving_paths = 1;
  cfg.hedger.enabled = false;
  return cfg;
}

void feed(ctrl::SloMonitor& mon, std::uint16_t path, int n,
          std::uint64_t latency) {
  for (int i = 0; i < n; ++i) mon.observe(path, latency);
}

/// Stage-attributed feeder: n identical spans with the given stage shape.
void feed_spans(ctrl::SloMonitor& mon, std::uint16_t path, int n,
                std::uint64_t queue_wait, std::uint64_t service,
                std::uint64_t reorder) {
  for (int i = 0; i < n; ++i)
    mon.observe_span(path, make_span(queue_wait, service, reorder));
}

TEST(Controller, QuarantineDrainProbationLifecycle) {
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Controller ctl(controller_cfg(), act, mon);

  // Two consecutive breaching windows on path 1.
  feed(mon, 1, 8, 5000);
  ctl.tick(1);
  EXPECT_EQ(ctl.path_state(1), PathState::kActive);
  EXPECT_TRUE(ctl.decisions().empty());

  feed(mon, 1, 8, 5000);
  ctl.tick(2);
  EXPECT_EQ(ctl.path_state(1), PathState::kQuarantined);
  EXPECT_EQ(act.admission[1], Admission::kDisabled);
  EXPECT_EQ(ctl.quarantines(), 1u);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_STREQ(ctl.decisions()[0].reason, "slo_breach");
  EXPECT_EQ(ctl.decisions()[0].path, 1u);
  EXPECT_EQ(ctl.decisions()[0].samples, 8u);
  EXPECT_EQ(ctl.decisions()[0].violations, 8u);

  // One masked tick starts the drain (flush fires on the transition).
  ctl.tick(3);
  EXPECT_EQ(ctl.path_state(1), PathState::kDraining);
  EXPECT_EQ(act.flushes[1], 1u);

  // Still work in flight: keep draining, keep flushing.
  act.backlog[1] = 5;
  ctl.tick(4);
  EXPECT_EQ(ctl.path_state(1), PathState::kDraining);
  EXPECT_EQ(act.flushes[1], 2u);

  // Backlog reaches zero: probation begins, probes are granted.
  act.backlog[1] = 0;
  ctl.tick(5);
  EXPECT_EQ(ctl.path_state(1), PathState::kReinstated);
  EXPECT_EQ(act.admission[1], Admission::kProbeOnly);
  EXPECT_EQ(act.probes[1], 8u);

  // Probation observations have no sample minimum: every probe counts.
  feed(mon, 1, 2, 100);
  ctl.tick(6);
  EXPECT_EQ(ctl.path_state(1), PathState::kReinstated);
  feed(mon, 1, 2, 100);
  ctl.tick(7);
  EXPECT_EQ(ctl.path_state(1), PathState::kActive);
  EXPECT_EQ(act.admission[1], Admission::kEnabled);
  EXPECT_EQ(ctl.reinstatements(), 1u);
  EXPECT_STREQ(ctl.decisions().back().reason, "probation_passed");

  // Path 0 was never touched.
  EXPECT_EQ(act.admission[0], Admission::kEnabled);
  EXPECT_EQ(act.flushes[0], 0u);
}

TEST(Controller, ProbeBreachGoesStraightBackToQuarantine) {
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Controller ctl(controller_cfg(), act, mon);

  feed(mon, 1, 8, 5000);
  ctl.tick(1);
  feed(mon, 1, 8, 5000);
  ctl.tick(2);
  ctl.tick(3);
  ctl.tick(4);
  ASSERT_EQ(ctl.path_state(1), PathState::kReinstated);

  // One violating probe during probation: re-quarantined, no flap.
  mon.observe(1, 9000);
  ctl.tick(5);
  EXPECT_EQ(ctl.path_state(1), PathState::kQuarantined);
  EXPECT_EQ(act.admission[1], Admission::kDisabled);
  EXPECT_STREQ(ctl.decisions().back().reason, "probe_breach");
  EXPECT_EQ(ctl.quarantines(), 2u);
  EXPECT_EQ(ctl.reinstatements(), 0u);
}

TEST(Controller, CapacityGuardSuppressesLastPathQuarantine) {
  // Both paths breach; min_serving_paths=1 lets the first quarantine
  // through and suppresses the second — a contained tail beats a masked
  // fleet.
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  ctrl::Controller ctl(cfg, act, mon);

  for (int t = 1; t <= 4; ++t) {
    feed(mon, 0, 8, 5000);
    feed(mon, 1, 8, 5000);
    ctl.tick(t);
  }
  const bool p0_quarantined = ctl.path_state(0) != PathState::kActive;
  const bool p1_quarantined = ctl.path_state(1) != PathState::kActive;
  EXPECT_NE(p0_quarantined, p1_quarantined);  // exactly one masked
  EXPECT_GT(ctl.suppressed_quarantines(), 0u);
  EXPECT_EQ(ctl.quarantines(), 1u);
}

TEST(Controller, BacklogBreachCatchesSilentBlackholes) {
  // A blackholed path produces no completions, so there is no SLO window
  // to judge — backlog evidence must be enough on its own.
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  cfg.backlog_limit = 10;
  ctrl::Controller ctl(cfg, act, mon);

  act.backlog[0] = 50;
  ctl.tick(1);
  EXPECT_EQ(ctl.path_state(0), PathState::kActive);
  ctl.tick(2);
  EXPECT_EQ(ctl.path_state(0), PathState::kQuarantined);
  EXPECT_STREQ(ctl.decisions().back().reason, "backlog_breach");
  EXPECT_EQ(ctl.decisions().back().backlog, 50u);
}

TEST(Controller, CombinedBreachReasonNamesBothSignals) {
  // The reason vocabulary is three-valued: "slo_breach" (see
  // ReportJsonIsParseableAndComplete), "backlog_breach" (see
  // BacklogBreachCatchesSilentBlackholes), and — when both causes fire in
  // the same window — the combined label, so neither signal masks the
  // other in the postmortem.
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  cfg.backlog_limit = 10;
  ctrl::Controller ctl(cfg, act, mon);

  act.backlog[1] = 50;
  feed(mon, 1, 8, 5000);
  ctl.tick(1);
  feed(mon, 1, 8, 5000);
  ctl.tick(2);
  ASSERT_EQ(ctl.path_state(1), PathState::kQuarantined);
  EXPECT_STREQ(ctl.decisions().back().reason, "slo+backlog_breach");
  EXPECT_EQ(ctl.decisions().back().backlog, 50u);
}

TEST(Controller, QuarantineDecisionCarriesTheDominantStage) {
  // When the monitor is fed spans, the quarantine decision says WHERE the
  // breaching window's latency went — the stage verdict that makes the
  // decision log debuggable.
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Controller ctl(controller_cfg(), act, mon);

  feed_spans(mon, 1, 8, /*queue_wait=*/4000, /*service=*/600,
             /*reorder=*/200);
  ctl.tick(1);
  feed_spans(mon, 1, 8, 4000, 600, 200);
  ctl.tick(2);
  ASSERT_EQ(ctl.path_state(1), PathState::kQuarantined);
  const ctrl::Decision& d = ctl.decisions().back();
  EXPECT_STREQ(d.reason, "slo_breach");
  EXPECT_STREQ(d.dominant_stage, "queue_wait");
  EXPECT_EQ(d.dominant_stage_ns, 8u * 4000);

  // The per-decision stage fields surface in the report JSON.
  auto doc = trace::JsonValue::parse(ctl.report_json());
  ASSERT_TRUE(doc.has_value());
  const trace::JsonValue& jd = doc->find("decisions")->items().back();
  EXPECT_EQ(jd.find("dominant_stage")->as_string(), "queue_wait");
  EXPECT_EQ(jd.find("dominant_stage_ns")->as_u64(), 8u * 4000);
}

TEST(Controller, ServiceDominatedBreachDefersQuarantine) {
  // Stage-aware actuation: a service-dominated breach means the path's
  // core is slow, not its queue deep — masking just moves the load while
  // hedging can rescue the stragglers. The quarantine is deferred for a
  // bounded budget of ticks, then a persistent breach is caught anyway.
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  cfg.service_defer_ticks = 2;
  ctrl::Controller ctl(cfg, act, mon);

  for (int t = 1; t <= 3; ++t) {
    feed_spans(mon, 1, 8, /*queue_wait=*/100, /*service=*/4800,
               /*reorder=*/100);
    ctl.tick(t);
    EXPECT_EQ(ctl.path_state(1), PathState::kActive) << "tick " << t;
  }
  EXPECT_EQ(ctl.service_deferrals(), 2u);
  feed_spans(mon, 1, 8, 100, 4800, 100);
  ctl.tick(4);
  EXPECT_EQ(ctl.path_state(1), PathState::kQuarantined);
  EXPECT_STREQ(ctl.decisions().back().dominant_stage, "service");
}

TEST(Controller, QueueDominatedBreachIsNotDeferred) {
  // The deferral is stage-gated: a queue-dominated breach means the path
  // itself is backed up — masking IS the right actuator, immediately.
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  cfg.service_defer_ticks = 2;
  ctrl::Controller ctl(cfg, act, mon);

  feed_spans(mon, 1, 8, /*queue_wait=*/4800, /*service=*/100,
             /*reorder=*/100);
  ctl.tick(1);
  feed_spans(mon, 1, 8, 4800, 100, 100);
  ctl.tick(2);
  EXPECT_EQ(ctl.path_state(1), PathState::kQuarantined);
  EXPECT_EQ(ctl.service_deferrals(), 0u);
}

TEST(Controller, CleanWindowRefillsTheServiceDeferralBudget) {
  // The budget is per-episode: one clean window ends the episode, so the
  // next service-dominated breach gets a fresh deferral allowance.
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  cfg.service_defer_ticks = 1;
  ctrl::Controller ctl(cfg, act, mon);

  feed_spans(mon, 1, 8, 100, 4800, 100);
  ctl.tick(1);  // deferred: budget spent
  EXPECT_EQ(ctl.service_deferrals(), 1u);
  feed(mon, 1, 8, 100);
  ctl.tick(2);  // clean window: episode over, budget refilled
  feed_spans(mon, 1, 8, 100, 4800, 100);
  ctl.tick(3);  // deferred again from the fresh budget
  EXPECT_EQ(ctl.service_deferrals(), 2u);
  EXPECT_EQ(ctl.path_state(1), PathState::kActive);
}

TEST(Controller, HedgeTimeoutLoopActuatesTheScheduler) {
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  cfg.violation_threshold = 1.5;  // never quarantine in this test
  cfg.hedge_timeout.enabled = true;
  cfg.hedge_timeout.min_timeout_ns = 100;
  cfg.hedge_timeout.min_samples = 4;
  ctrl::Controller ctl(cfg, act, mon);

  // A hot serving window: the PID sets a deadline and actuates it.
  feed_spans(mon, 0, 8, /*queue_wait=*/100, /*service=*/4500,
             /*reorder=*/400);
  ctl.tick(1);
  ASSERT_EQ(act.hedge_timeouts.size(), 1u);
  const std::uint64_t first = act.hedge_timeouts[0];
  EXPECT_GT(first, 0u);
  EXPECT_EQ(ctl.hedge_timeout_ns(), first);
  EXPECT_EQ(ctl.hedge_timeout_adjustments(), 1u);
  {
    const ctrl::Decision& d = ctl.decisions().back();
    EXPECT_EQ(d.path, ctrl::Decision::kHedge);
    EXPECT_STREQ(d.reason, "hedge_timeout");
    EXPECT_EQ(d.hedge_timeout_ns, first);
    EXPECT_STREQ(d.dominant_stage, "service");
    EXPECT_EQ(d.dominant_stage_ns, 8u * 4500);
  }

  // A calm window relaxes the deadline downward from the p50-pinned floor
  // toward the SLO-bounded band — a second, different actuation.
  feed_spans(mon, 0, 8, 10, 100, 10);
  ctl.tick(2);
  ASSERT_EQ(act.hedge_timeouts.size(), 2u);
  EXPECT_NE(act.hedge_timeouts[1], first);

  // The loop's state surfaces in the report and the stats registry.
  auto doc = trace::JsonValue::parse(ctl.report_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("hedge_timeout_ns")->as_u64(), ctl.hedge_timeout_ns());
  EXPECT_EQ(doc->find("hedge_timeout_adjustments")->as_u64(), 2u);
  EXPECT_EQ(doc->find("service_deferrals")->as_u64(), 0u);
  const trace::JsonValue& jd = doc->find("decisions")->items().back();
  EXPECT_EQ(jd.find("reason")->as_string(), "hedge_timeout");
  EXPECT_EQ(jd.find("target")->as_string(), "hedger");
  EXPECT_EQ(jd.find("hedge_timeout_ns")->as_u64(), ctl.hedge_timeout_ns());

  trace::StatsRegistry reg;
  ctl.register_stats(reg);
  trace::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("ctrl.hedge_timeout_changes"), 2u);
  EXPECT_EQ(snap.counters.at("ctrl.service_deferrals"), 0u);
  EXPECT_EQ(snap.gauges.at("ctrl.hedge_timeout_ns"),
            static_cast<double>(ctl.hedge_timeout_ns()));
}

TEST(Controller, HedgerActuatesReplicasFromServingTail) {
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  cfg.violation_threshold = 1.5;  // never quarantine in this test
  cfg.hedger.enabled = true;
  cfg.hedger.sustain_ticks = 2;
  cfg.hedger.cooldown_ticks = 0;
  cfg.hedger.min_samples = 4;
  ctrl::Controller ctl(cfg, act, mon);

  feed(mon, 0, 8, 5000);
  ctl.tick(1);
  EXPECT_EQ(act.replicas, 1u);
  feed(mon, 0, 8, 5000);
  ctl.tick(2);
  EXPECT_EQ(act.replicas, 2u);
  EXPECT_EQ(ctl.hedge_raises(), 1u);
  EXPECT_EQ(ctl.decisions().back().path, ctrl::Decision::kHedge);
  EXPECT_STREQ(ctl.decisions().back().reason, "hedge_raise");
}

TEST(Controller, RuntimeKnobsSyncTheMonitor) {
  ctrl::SloMonitor mon(1, 999);
  FakeActuator act(1);
  ctrl::Controller ctl(controller_cfg(), act, mon);
  EXPECT_EQ(mon.slo_target_ns(), 1000u);  // aligned at construction
  ctl.set_slo_target_ns(5000);
  EXPECT_EQ(mon.slo_target_ns(), 5000u);
  EXPECT_EQ(ctl.config().slo_target_ns, 5000u);
}

TEST(Controller, DecisionLogIsBoundedWithEvictionCount) {
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Config cfg = controller_cfg();
  cfg.decision_log_capacity = 2;
  ctrl::Controller ctl(cfg, act, mon);

  // Full lifecycle = 4 transitions; capacity 2 keeps the newest two.
  feed(mon, 1, 8, 5000);
  ctl.tick(1);
  feed(mon, 1, 8, 5000);
  ctl.tick(2);
  ctl.tick(3);
  ctl.tick(4);
  feed(mon, 1, 4, 100);
  ctl.tick(5);
  ASSERT_EQ(ctl.decisions().size(), 2u);
  EXPECT_STREQ(ctl.decisions().back().reason, "probation_passed");

  auto doc = trace::JsonValue::parse(ctl.report_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("decisions_evicted")->as_u64(), 2u);
}

TEST(Controller, ReportJsonIsParseableAndComplete) {
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Controller ctl(controller_cfg(), act, mon);

  feed(mon, 1, 8, 5000);
  ctl.tick(1);
  feed(mon, 1, 8, 5000);
  ctl.tick(2);

  auto doc = trace::JsonValue::parse(ctl.report_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("slo_target_ns")->as_u64(), 1000u);
  EXPECT_EQ(doc->find("ticks")->as_u64(), 2u);
  EXPECT_EQ(doc->find("quarantines")->as_u64(), 1u);
  ASSERT_NE(doc->find("path_states"), nullptr);
  ASSERT_EQ(doc->find("path_states")->items().size(), 2u);
  EXPECT_EQ(doc->find("path_states")->items()[1].as_string(), "quarantined");

  const trace::JsonValue* decisions = doc->find("decisions");
  ASSERT_NE(decisions, nullptr);
  ASSERT_EQ(decisions->items().size(), 1u);
  const trace::JsonValue& d = decisions->items()[0];
  EXPECT_EQ(d.find("path")->as_u64(), 1u);
  EXPECT_EQ(d.find("from")->as_string(), "active");
  EXPECT_EQ(d.find("to")->as_string(), "quarantined");
  EXPECT_EQ(d.find("reason")->as_string(), "slo_breach");
  EXPECT_EQ(d.find("samples")->as_u64(), 8u);
}

TEST(Controller, StatsRegistryExportsCtrlCounters) {
  ctrl::SloMonitor mon(2, 1000);
  FakeActuator act(2);
  ctrl::Controller ctl(controller_cfg(), act, mon);
  feed(mon, 1, 8, 5000);
  ctl.tick(1);
  feed(mon, 1, 8, 5000);
  ctl.tick(2);

  trace::StatsRegistry reg;
  ctl.register_stats(reg);
  mon.register_stats(reg);
  trace::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("ctrl.ticks"), 2u);
  EXPECT_EQ(snap.counters.at("ctrl.quarantines"), 1u);
  EXPECT_EQ(snap.counters.at("slo.observed"), 16u);
  EXPECT_EQ(snap.counters.at("slo.violations"), 16u);
}

// ---------------------------------------------------------------------------
// End to end: ThreadedDataPlane + LoopbackBackend fault lane + Controller.

/// Driver-side frame (mirrors the conformance suite's builder).
net::PacketPtr make_frame(net::PacketPool& pool, std::uint32_t flow_id,
                          std::uint64_t seq) {
  net::BuildSpec spec;
  spec.flow = {0x0a000001 + flow_id, 0x0a000002,
               static_cast<std::uint16_t>(1024 + flow_id), 4789, 0};
  spec.payload_len = 64;
  spec.payload_fill = static_cast<std::uint8_t>(seq);
  net::PacketPtr pkt = net::build_udp(pool, spec);
  if (!pkt) return pkt;
  auto& a = pkt->anno();
  a.flow_id = flow_id;
  a.seq = seq;
  a.path_id = 0;
  a.flow_hash = net::hash_flow(spec.flow);
  return pkt;
}

/// ThreadedPlaneActuator with the loopback wire behind the plane: a drain
/// flush must also release frames staged on the wire's fault lanes.
class RigActuator : public ctrl::ThreadedPlaneActuator {
 public:
  RigActuator(core::ThreadedDataPlane& dp, io::LoopbackBackend& plane_end,
              io::LoopbackBackend& driver_end)
      : ThreadedPlaneActuator(dp),
        plane_end_(plane_end),
        driver_end_(driver_end) {}

  void flush_path(std::size_t) override {
    plane_end_.flush();
    driver_end_.flush();
  }

 private:
  io::LoopbackBackend& plane_end_;
  io::LoopbackBackend& driver_end_;
};

TEST(ControllerEndToEnd, QuarantineDrainReinstateOverLoopback) {
  constexpr std::size_t kPaths = 2;
  constexpr std::uint32_t kFlows = 4;
  constexpr int kSeqsPerRound = 4;  // 16 frames per round
  constexpr std::uint32_t kDelayTicks = 400;
  // Lag is measured in driver loop iterations scaled by 1000 — a logical
  // unit, so the quarantine trajectory is deterministic under any thread
  // scheduling. Healthy echoes come back within a handful of iterations;
  // delayed ones need >= kDelayTicks/2 wire releases (the wire also ticks
  // on pump's tx_burst), putting them far above the target either way.
  constexpr std::uint64_t kSloUnits = 100'000;

  net::PacketPool pool(512, 2048, /*allow_growth=*/false);
  io::LoopbackConfig lcfg;
  lcfg.queue_depth = 1024;
  auto [driver_end, plane_end] = io::LoopbackBackend::make_pair(lcfg);

  core::ThreadedConfig tcfg;
  tcfg.num_paths = kPaths;
  tcfg.policy = "rr";  // deterministic 8/8 split of each round
  tcfg.ring_capacity = 256;
  tcfg.pool_size = 256;
  tcfg.payload_bytes = 64;
  tcfg.work_iterations = 1;
  tcfg.burst_size = 16;
  tcfg.backend = plane_end.get();

  core::ThreadedDataPlane dp(tcfg, [](std::uint64_t, std::uint16_t) {});

  ctrl::SloMonitor mon(kPaths, kSloUnits);
  RigActuator act(dp, *plane_end, *driver_end);
  ctrl::Config ccfg;
  ccfg.slo_target_ns = kSloUnits;
  ccfg.violation_threshold = 0.25;
  ccfg.min_samples = 2;
  ccfg.path.quarantine_after = 2;
  ccfg.path.probation_probes = 4;
  ccfg.probe_grant_per_tick = 8;
  ccfg.min_serving_paths = 1;
  ccfg.hedger.enabled = false;
  ctrl::Controller ctl(ccfg, act, mon);

  // The fault: every frame the plane serves on path 1 is held back on the
  // wire for kDelayTicks — the classic last-mile laggard.
  plane_end->set_path_faults(1, {.delay_ticks = kDelayTicks});

  dp.start();

  // Driver-side exactly-once / in-order audit behind a ReorderBuffer.
  sim::EventQueue eq;
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> delivered;
  std::vector<std::uint64_t> next_emit(kFlows, 0);
  bool in_order = true;
  core::ReorderBuffer reorder(
      eq, {.enabled = true, .timeout_ns = 1'000'000'000},
      [&](net::PacketPtr pkt) {
        const auto& a = pkt->anno();
        ++delivered[{a.flow_id, a.seq}];
        if (a.seq != next_emit[a.flow_id]) in_order = false;
        next_emit[a.flow_id] = a.seq + 1;
      });

  std::vector<std::uint64_t> next_seq(kFlows, 0);
  std::uint64_t total_sent = 0;

  // One round = send a fixed burst, run the loop until every echo of the
  // round is back (so windows never carry stale cross-round samples),
  // then tick the controller once.
  auto run_round = [&](std::uint64_t round) {
    std::vector<net::PacketPtr> burst;
    for (std::uint32_t f = 0; f < kFlows; ++f)
      for (int s = 0; s < kSeqsPerRound; ++s) {
        net::PacketPtr pkt = make_frame(pool, f, next_seq[f]++);
        ASSERT_TRUE(static_cast<bool>(pkt));
        burst.push_back(std::move(pkt));
      }
    const std::size_t sent =
        driver_end->tx_burst({burst.data(), burst.size()});
    ASSERT_EQ(sent, burst.size());
    total_sent += sent;
    burst.clear();

    std::size_t outstanding = sent;
    int iters = 0;
    while (outstanding > 0) {
      ++iters;
      ASSERT_LT(iters, 20000) << "round " << round << " never drained";
      dp.pump();
      plane_end->advance();
      driver_end->advance();
      net::PacketPtr rx[64];
      std::size_t got;
      while ((got = driver_end->rx_burst({rx, 64})) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
          mon.observe(rx[i]->anno().path_id,
                      static_cast<std::uint64_t>(iters) * 1000);
          reorder.submit(std::move(rx[i]));
          --outstanding;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(10));
    }
    ctl.tick(round);
  };

  // Rounds 1-2: path 1 serves half of each round with delayed echoes —
  // two consecutive breaching windows.
  run_round(1);
  EXPECT_EQ(ctl.path_state(1), PathState::kActive);
  run_round(2);
  ASSERT_EQ(ctl.path_state(1), PathState::kQuarantined);
  EXPECT_EQ(dp.path_admission(1), core::PathAdmission::kDisabled);
  EXPECT_EQ(ctl.quarantines(), 1u);
  const std::uint64_t served_at_quarantine = dp.per_path_count(1);

  // The lane heals while the path is masked (no traffic will touch it
  // until probation probes are granted).
  plane_end->set_path_faults(1, {});

  // Round 3: masked tick -> drain starts.
  run_round(3);
  ASSERT_EQ(ctl.path_state(1), PathState::kDraining);

  // Round 4: backlog is zero (the round loop drains everything) ->
  // probation begins with probe-only admission.
  run_round(4);
  ASSERT_EQ(ctl.path_state(1), PathState::kReinstated);
  EXPECT_EQ(dp.path_inflight(1), 0u);
  EXPECT_EQ(dp.path_admission(1), core::PathAdmission::kProbeOnly);

  // Round 5: rr spends the 8 probe credits on path 1; the healed lane
  // answers in-SLO, probation passes.
  run_round(5);
  ASSERT_EQ(ctl.path_state(1), PathState::kActive);
  EXPECT_EQ(dp.path_admission(1), core::PathAdmission::kEnabled);
  EXPECT_EQ(ctl.reinstatements(), 1u);

  // Round 6: path 1 is serving real traffic again.
  run_round(6);
  EXPECT_GT(dp.per_path_count(1), served_at_quarantine);

  // The delayed rounds genuinely reordered flows (fast path overtakes),
  // and the ReorderBuffer restored per-flow order.
  EXPECT_GT(reorder.out_of_order(), 0u);
  EXPECT_TRUE(in_order);
  EXPECT_EQ(reorder.buffered(), 0u);

  // Exactly-once: every (flow, seq) delivered once, none missing.
  EXPECT_EQ(delivered.size(), total_sent);
  for (const auto& [key, count] : delivered) EXPECT_EQ(count, 1);

  // Quiesce: nothing in flight anywhere, then a zero-leak pool audit.
  EXPECT_EQ(dp.inflight(), 0u);
  for (int i = 0; i < 100 && dp.egress_backlog() > 0; ++i) dp.pump();
  dp.stop();
  EXPECT_EQ(plane_end->in_flight(), 0u);
  EXPECT_EQ(driver_end->in_flight(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.total_allocs(), pool.total_recycles());

  // The whole story is in the decision log.
  auto doc = trace::JsonValue::parse(ctl.report_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("quarantines")->as_u64(), 1u);
  EXPECT_EQ(doc->find("reinstatements")->as_u64(), 1u);
  EXPECT_EQ(doc->find("path_states")->items()[1].as_string(), "active");
}

}  // namespace
}  // namespace mdp
