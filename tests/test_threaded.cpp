// ThreadedDataPlane tests: real-thread end-to-end completion accounting,
// policy steering, backpressure, restartability, backend-pumped I/O, and
// batch-aware exemplar attribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "core/threaded_dataplane.hpp"
#include "io/loopback_backend.hpp"
#include "io/synthetic_backend.hpp"
#include "net/packet_builder.hpp"

namespace mdp::core {
namespace {

TEST(ThreadedDataPlane, AllSubmittedPacketsComplete) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  std::atomic<std::uint64_t> completions{0};
  ThreadedDataPlane dp(cfg, [&](std::uint64_t latency, std::uint16_t) {
    EXPECT_GT(latency, 0u);
    completions.fetch_add(1);
  });
  dp.start();
  constexpr std::uint64_t kPackets = 20'000;
  std::uint64_t submitted = 0;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    while (!dp.ingress(i * 0x9e3779b97f4a7c15ULL)) {
    }
    ++submitted;
  }
  dp.stop();
  EXPECT_EQ(submitted, kPackets);
  EXPECT_EQ(dp.completed(), kPackets);
  EXPECT_EQ(completions.load(), kPackets);
  std::uint64_t per_path_sum = 0;
  for (std::size_t p = 0; p < cfg.num_paths; ++p)
    per_path_sum += dp.per_path_count(p);
  EXPECT_EQ(per_path_sum, kPackets);
}

TEST(ThreadedDataPlane, StageHistogramsRecordWhenEnabled) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.record_stage_hist = true;
  ThreadedDataPlane dp(cfg, [](std::uint64_t, std::uint16_t) {});
  dp.start();
  constexpr std::uint64_t kPackets = 5'000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    while (!dp.ingress(i * 0x9e3779b97f4a7c15ULL)) {
    }
  }
  dp.stop();
  // Every completed packet contributes one sample per stage histogram.
  EXPECT_EQ(dp.queue_wait_hist().count(), kPackets);
  EXPECT_EQ(dp.service_hist().count(), kPackets);
  EXPECT_EQ(dp.merge_wait_hist().count(), kPackets);
  EXPECT_GT(dp.service_hist().sum(), 0u);
}

TEST(ThreadedDataPlane, StageHistogramsOffByDefault) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  ThreadedDataPlane dp(cfg, [](std::uint64_t, std::uint16_t) {});
  dp.start();
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    while (!dp.ingress(i)) {
    }
  }
  dp.stop();
  EXPECT_EQ(dp.queue_wait_hist().count(), 0u);
  EXPECT_EQ(dp.service_hist().count(), 0u);
  EXPECT_EQ(dp.merge_wait_hist().count(), 0u);
}

TEST(ThreadedDataPlane, HashPolicySteersFlowConsistently) {
  ThreadedConfig cfg;
  cfg.num_paths = 4;
  cfg.policy = "hash";
  ThreadedDataPlane dp(cfg, nullptr);
  dp.start();
  // One flow hash: all packets must land on one path.
  for (int i = 0; i < 1000; ++i)
    while (!dp.ingress(0xabcdef)) {
    }
  dp.stop();
  int used = 0;
  for (std::size_t p = 0; p < 4; ++p)
    if (dp.per_path_count(p) > 0) ++used;
  EXPECT_EQ(used, 1);
}

TEST(ThreadedDataPlane, RrPolicySpreadsEvenly) {
  ThreadedConfig cfg;
  cfg.num_paths = 4;
  cfg.policy = "rr";
  ThreadedDataPlane dp(cfg, nullptr);
  dp.start();
  for (int i = 0; i < 4000; ++i)
    while (!dp.ingress(static_cast<std::uint64_t>(i))) {
    }
  dp.stop();
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_EQ(dp.per_path_count(p), 1000u);
}

TEST(ThreadedDataPlane, RejectsWhenPoolExhaustedInsteadOfBlocking) {
  ThreadedConfig cfg;
  cfg.num_paths = 1;
  cfg.pool_size = 8;
  cfg.ring_capacity = 4;
  ThreadedDataPlane dp(cfg, nullptr);
  // Workers not started: rings fill up and ingress must fail-fast.
  int accepted = 0;
  for (int i = 0; i < 100; ++i)
    if (dp.ingress(i)) ++accepted;
  EXPECT_LE(accepted, 8);
  EXPECT_GT(dp.rejected(), 0u);
  dp.start();  // drain what was queued
  dp.stop();
  EXPECT_EQ(dp.completed(), static_cast<std::uint64_t>(accepted));
}

TEST(ThreadedDataPlane, JsqAvoidsBuriedPath) {
  // With JSQ on ring occupancy and workers stopped, all packets pile onto
  // alternating rings rather than one.
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.ring_capacity = 64;
  cfg.pool_size = 64;
  ThreadedDataPlane dp(cfg, nullptr);
  for (int i = 0; i < 60; ++i) dp.ingress(i);
  // Not started: ring sizes visible to JSQ; spread must be ~even.
  auto a = dp.per_path_count(0);
  auto b = dp.per_path_count(1);
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b), 2.0);
  dp.start();
  dp.stop();
}

// Counter-equivalence under end-to-end bursting: every accepted packet
// completes exactly once (in == out + rejected) and the plane quiesces
// with zero inflight, at both burst extremes.
class ThreadedBurst : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadedBurst, CounterEquivalenceAndZeroInflightQuiesce) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.burst_size = GetParam();
  std::atomic<std::uint64_t> completions{0};
  ThreadedDataPlane dp(cfg, [&](std::uint64_t latency, std::uint16_t) {
    EXPECT_GT(latency, 0u);
    completions.fetch_add(1);
  });
  EXPECT_EQ(dp.burst_size(), GetParam());
  dp.start();
  constexpr std::uint64_t kPackets = 20'000;
  std::vector<std::uint64_t> hashes(64);
  std::uint64_t accepted = 0, offered = 0;
  while (offered < kPackets) {
    std::size_t n = std::min<std::uint64_t>(hashes.size(),
                                            kPackets - offered);
    for (std::size_t i = 0; i < n; ++i)
      hashes[i] = (offered + i) * 0x9e3779b97f4a7c15ULL;
    accepted += dp.ingress_burst({hashes.data(), n});
    offered += n;
  }
  dp.stop();
  EXPECT_EQ(accepted + dp.rejected(), offered)
      << "every offered packet is either accepted or rejected";
  EXPECT_EQ(dp.completed(), accepted);
  EXPECT_EQ(completions.load(), accepted);
  EXPECT_EQ(dp.inflight(), 0u) << "quiesced plane must hold no packets";
  std::uint64_t per_path_sum = 0;
  for (std::size_t p = 0; p < cfg.num_paths; ++p)
    per_path_sum += dp.per_path_count(p);
  EXPECT_EQ(per_path_sum, accepted);
}

INSTANTIATE_TEST_SUITE_P(BurstSizes, ThreadedBurst,
                         ::testing::Values(std::size_t{1},
                                           std::size_t{32}));

TEST(ThreadedDataPlane, IngressBurstRejectsOnBackpressure) {
  ThreadedConfig cfg;
  cfg.num_paths = 1;
  cfg.pool_size = 8;
  cfg.ring_capacity = 4;
  ThreadedDataPlane dp(cfg, nullptr);
  // Workers not started: the slot pool caps acceptance and the remainder
  // must be rejected, not blocked on.
  std::vector<std::uint64_t> hashes(100);
  for (std::size_t i = 0; i < hashes.size(); ++i) hashes[i] = i;
  std::size_t accepted = dp.ingress_burst(hashes);
  EXPECT_LE(accepted, 8u);
  EXPECT_EQ(dp.rejected(), hashes.size() - accepted);
  dp.start();  // drain what was queued
  dp.stop();
  EXPECT_EQ(dp.completed(), accepted);
  EXPECT_EQ(dp.inflight(), 0u);
}

TEST(ThreadedDataPlane, IngressBurstJsqSpreadsAcrossPaths) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.ring_capacity = 64;
  cfg.pool_size = 64;
  ThreadedDataPlane dp(cfg, nullptr);
  // Workers stopped: JSQ sees ring occupancy; a burst must still spread
  // (depths are sampled once then tracked locally per dispatch).
  std::vector<std::uint64_t> hashes(60);
  for (std::size_t i = 0; i < hashes.size(); ++i) hashes[i] = i;
  EXPECT_EQ(dp.ingress_burst(hashes), 60u);
  auto a = dp.per_path_count(0);
  auto b = dp.per_path_count(1);
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b), 2.0);
  dp.start();
  dp.stop();
  EXPECT_EQ(dp.completed(), 60u);
}

// Batch-aware exemplar regression (ROADMAP "batch-aware tracing
// exemplars"): at burst_size 32 a tail exemplar must record the burst it
// rode in and claim only its attributed share of the burst's service
// span — not the whole span, which is what made pre-batching exemplars
// overstate tail service time by up to 32x.
TEST(ThreadedDataPlane, BatchExemplarsAttributeServiceWithinBurstSpan) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.burst_size = 32;
  cfg.pool_size = 8192;
  cfg.ring_capacity = 4096;
  cfg.record_stage_hist = true;
  ThreadedDataPlane dp(cfg, nullptr);
  // Pre-fill the path rings before the workers start: 8192 slots split
  // 4096/4096 by JSQ, so every worker pop is a full burst of exactly 32
  // and the burst metadata assertions below are deterministic.
  std::vector<std::uint64_t> hashes(64);
  std::uint64_t accepted = 0;
  for (std::uint64_t b = 0; b < 128; ++b) {
    for (std::size_t i = 0; i < hashes.size(); ++i)
      hashes[i] = (b * 64 + i) * 0x9e3779b97f4a7c15ULL;
    accepted += dp.ingress_burst(hashes);
  }
  ASSERT_EQ(accepted, 8192u);
  dp.start();
  dp.stop();
  ASSERT_EQ(dp.completed(), accepted);
  EXPECT_EQ(dp.exemplars().seen(), accepted)
      << "every completed packet was offered to the reservoir";
  EXPECT_EQ(dp.service_hist().count(), accepted);

  auto check = [](const trace::Exemplar& ex) {
    const trace::SpanRecord& sp = ex.span;
    ASSERT_EQ(sp.burst_size, 32u) << "pre-filled rings pop full bursts";
    EXPECT_LT(sp.burst_pos, sp.burst_size);
    const std::uint64_t raw = sp.stage_ns(trace::Stage::kService);
    const std::uint64_t attributed = sp.attributed_service_ns();
    EXPECT_EQ(attributed, raw / sp.burst_size);
    EXPECT_LE(attributed, raw)
        << "a packet may not claim more than its burst's span";
    EXPECT_LE(attributed * sp.burst_size, raw)
        << "shares must telescope back under the burst span";
  };
  const auto slowest = dp.exemplars().slowest();
  ASSERT_FALSE(slowest.empty());
  for (const auto& ex : slowest) check(ex);
  for (const auto& ex : dp.exemplars().sample()) check(ex);
  // The slowest exemplar's e2e is consistent with its own stages.
  EXPECT_EQ(slowest.front().e2e_ns, slowest.front().span.e2e_ns());
}

// Backend pump mode with the synthetic source: counter equivalence with
// the generator's own accounting, and a fully recycled pool at quiesce.
TEST(ThreadedDataPlane, PumpSyntheticBackendCounterEquivalence) {
  constexpr std::uint64_t kLimit = 20'000;
  io::SyntheticConfig scfg;
  scfg.rx_limit = kLimit;
  scfg.pool_size = 4096;
  io::SyntheticBackend backend(scfg);

  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.burst_size = 32;
  cfg.pool_size = 4096;
  cfg.backend = &backend;
  std::atomic<std::uint64_t> completions{0};
  ThreadedDataPlane dp(cfg, [&](std::uint64_t, std::uint16_t) {
    completions.fetch_add(1);
  });
  dp.start();
  while (backend.rx_packets() < kLimit) dp.pump();
  while (dp.inflight() > 0 || dp.egress_backlog() > 0) dp.pump();
  dp.stop();

  EXPECT_EQ(backend.rx_packets(), kLimit);
  EXPECT_EQ(dp.submitted() + dp.rejected(), kLimit)
      << "every generated frame was admitted or rejected, never lost";
  EXPECT_EQ(dp.completed(), dp.submitted());
  EXPECT_EQ(completions.load(), dp.completed());
  EXPECT_EQ(backend.tx_packets(), dp.completed())
      << "every completed frame went back out through the backend";
  EXPECT_EQ(dp.egress_backlog(), 0u);
  EXPECT_EQ(backend.pool().in_use(), 0u) << "zero pool leaks at quiesce";
}

// Backend pump mode over the loopback wire: real VXLAN-capable frames in
// from a peer, through dispatch/workers/collector, and back out to the
// peer — exactly once each, bytes parseable, pool fully recycled.
TEST(ThreadedDataPlane, PumpLoopbackBackendRoundTripsRealFrames) {
  constexpr std::uint64_t kFrames = 2'000;
  constexpr std::uint32_t kFlows = 4;
  net::PacketPool pool(4096, 2048, /*allow_growth=*/false);
  auto [driver, plane_end] = io::LoopbackBackend::make_pair({});

  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.burst_size = 32;
  cfg.pool_size = 4096;
  cfg.backend = plane_end.get();
  ThreadedDataPlane dp(cfg, nullptr);
  dp.start();

  std::set<std::pair<std::uint32_t, std::uint64_t>> echoed_ids;
  std::uint64_t echoed = 0;
  auto drain_echoes = [&] {
    net::PacketPtr got[64];
    std::size_t n;
    while ((n = driver->rx_burst(got)) > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto& a = got[i]->anno();
        echoed_ids.insert({a.flow_id, a.seq});
        auto parsed = net::parse(*got[i]);
        ASSERT_TRUE(parsed.has_value()) << "frame bytes survived intact";
        EXPECT_EQ(parsed->payload_len, 64u);
        got[i].reset();
        ++echoed;
      }
    }
  };

  std::uint64_t sent = 0;
  while (true) {
    if (sent < kFrames) {
      net::PacketPtr batch[32];
      std::size_t n = 0;
      for (; n < 32 && sent + n < kFrames; ++n) {
        const std::uint64_t seq = sent + n;
        net::BuildSpec spec;
        spec.flow = {0x0a000001 + static_cast<std::uint32_t>(seq % kFlows),
                     0x0a000002, 2000, 4789, 0};
        spec.payload_fill = static_cast<std::uint8_t>(seq);
        batch[n] = net::build_udp(pool, spec);
        ASSERT_TRUE(batch[n]);
        auto& a = batch[n]->anno();
        a.flow_id = static_cast<std::uint32_t>(seq % kFlows);
        a.seq = seq / kFlows;
        a.flow_hash = net::hash_flow(spec.flow);
      }
      std::size_t consumed = 0;
      while (consumed < n) {
        consumed += driver->tx_burst(
            std::span<net::PacketPtr>(batch + consumed, n - consumed));
        dp.pump();
        drain_echoes();
      }
      sent += n;
    }
    dp.pump();
    drain_echoes();
    if (sent == kFrames && dp.inflight() == 0 && dp.egress_backlog() == 0 &&
        driver->in_flight() == 0 && plane_end->in_flight() == 0) {
      drain_echoes();
      break;
    }
  }
  dp.stop();
  drain_echoes();

  EXPECT_EQ(dp.submitted() + dp.rejected(), kFrames)
      << "every frame the peer sent reached admission";
  EXPECT_EQ(echoed, dp.completed());
  EXPECT_EQ(echoed_ids.size(), echoed)
      << "each (flow, seq) came back exactly once";
  EXPECT_EQ(pool.in_use(), 0u) << "zero pool leaks at quiesce";
}

}  // namespace
}  // namespace mdp::core
