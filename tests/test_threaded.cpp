// ThreadedDataPlane tests: real-thread end-to-end completion accounting,
// policy steering, backpressure, and restartability.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "core/threaded_dataplane.hpp"

namespace mdp::core {
namespace {

TEST(ThreadedDataPlane, AllSubmittedPacketsComplete) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  std::atomic<std::uint64_t> completions{0};
  ThreadedDataPlane dp(cfg, [&](std::uint64_t latency, std::uint16_t) {
    EXPECT_GT(latency, 0u);
    completions.fetch_add(1);
  });
  dp.start();
  constexpr std::uint64_t kPackets = 20'000;
  std::uint64_t submitted = 0;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    while (!dp.ingress(i * 0x9e3779b97f4a7c15ULL)) {
    }
    ++submitted;
  }
  dp.stop();
  EXPECT_EQ(submitted, kPackets);
  EXPECT_EQ(dp.completed(), kPackets);
  EXPECT_EQ(completions.load(), kPackets);
  std::uint64_t per_path_sum = 0;
  for (std::size_t p = 0; p < cfg.num_paths; ++p)
    per_path_sum += dp.per_path_count(p);
  EXPECT_EQ(per_path_sum, kPackets);
}

TEST(ThreadedDataPlane, StageHistogramsRecordWhenEnabled) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.record_stage_hist = true;
  ThreadedDataPlane dp(cfg, [](std::uint64_t, std::uint16_t) {});
  dp.start();
  constexpr std::uint64_t kPackets = 5'000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    while (!dp.ingress(i * 0x9e3779b97f4a7c15ULL)) {
    }
  }
  dp.stop();
  // Every completed packet contributes one sample per stage histogram.
  EXPECT_EQ(dp.queue_wait_hist().count(), kPackets);
  EXPECT_EQ(dp.service_hist().count(), kPackets);
  EXPECT_EQ(dp.merge_wait_hist().count(), kPackets);
  EXPECT_GT(dp.service_hist().sum(), 0u);
}

TEST(ThreadedDataPlane, StageHistogramsOffByDefault) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  ThreadedDataPlane dp(cfg, [](std::uint64_t, std::uint16_t) {});
  dp.start();
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    while (!dp.ingress(i)) {
    }
  }
  dp.stop();
  EXPECT_EQ(dp.queue_wait_hist().count(), 0u);
  EXPECT_EQ(dp.service_hist().count(), 0u);
  EXPECT_EQ(dp.merge_wait_hist().count(), 0u);
}

TEST(ThreadedDataPlane, HashPolicySteersFlowConsistently) {
  ThreadedConfig cfg;
  cfg.num_paths = 4;
  cfg.policy = "hash";
  ThreadedDataPlane dp(cfg, nullptr);
  dp.start();
  // One flow hash: all packets must land on one path.
  for (int i = 0; i < 1000; ++i)
    while (!dp.ingress(0xabcdef)) {
    }
  dp.stop();
  int used = 0;
  for (std::size_t p = 0; p < 4; ++p)
    if (dp.per_path_count(p) > 0) ++used;
  EXPECT_EQ(used, 1);
}

TEST(ThreadedDataPlane, RrPolicySpreadsEvenly) {
  ThreadedConfig cfg;
  cfg.num_paths = 4;
  cfg.policy = "rr";
  ThreadedDataPlane dp(cfg, nullptr);
  dp.start();
  for (int i = 0; i < 4000; ++i)
    while (!dp.ingress(static_cast<std::uint64_t>(i))) {
    }
  dp.stop();
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_EQ(dp.per_path_count(p), 1000u);
}

TEST(ThreadedDataPlane, RejectsWhenPoolExhaustedInsteadOfBlocking) {
  ThreadedConfig cfg;
  cfg.num_paths = 1;
  cfg.pool_size = 8;
  cfg.ring_capacity = 4;
  ThreadedDataPlane dp(cfg, nullptr);
  // Workers not started: rings fill up and ingress must fail-fast.
  int accepted = 0;
  for (int i = 0; i < 100; ++i)
    if (dp.ingress(i)) ++accepted;
  EXPECT_LE(accepted, 8);
  EXPECT_GT(dp.rejected(), 0u);
  dp.start();  // drain what was queued
  dp.stop();
  EXPECT_EQ(dp.completed(), static_cast<std::uint64_t>(accepted));
}

TEST(ThreadedDataPlane, JsqAvoidsBuriedPath) {
  // With JSQ on ring occupancy and workers stopped, all packets pile onto
  // alternating rings rather than one.
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.ring_capacity = 64;
  cfg.pool_size = 64;
  ThreadedDataPlane dp(cfg, nullptr);
  for (int i = 0; i < 60; ++i) dp.ingress(i);
  // Not started: ring sizes visible to JSQ; spread must be ~even.
  auto a = dp.per_path_count(0);
  auto b = dp.per_path_count(1);
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b), 2.0);
  dp.start();
  dp.stop();
}

// Counter-equivalence under end-to-end bursting: every accepted packet
// completes exactly once (in == out + rejected) and the plane quiesces
// with zero inflight, at both burst extremes.
class ThreadedBurst : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadedBurst, CounterEquivalenceAndZeroInflightQuiesce) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.burst_size = GetParam();
  std::atomic<std::uint64_t> completions{0};
  ThreadedDataPlane dp(cfg, [&](std::uint64_t latency, std::uint16_t) {
    EXPECT_GT(latency, 0u);
    completions.fetch_add(1);
  });
  EXPECT_EQ(dp.burst_size(), GetParam());
  dp.start();
  constexpr std::uint64_t kPackets = 20'000;
  std::vector<std::uint64_t> hashes(64);
  std::uint64_t accepted = 0, offered = 0;
  while (offered < kPackets) {
    std::size_t n = std::min<std::uint64_t>(hashes.size(),
                                            kPackets - offered);
    for (std::size_t i = 0; i < n; ++i)
      hashes[i] = (offered + i) * 0x9e3779b97f4a7c15ULL;
    accepted += dp.ingress_burst({hashes.data(), n});
    offered += n;
  }
  dp.stop();
  EXPECT_EQ(accepted + dp.rejected(), offered)
      << "every offered packet is either accepted or rejected";
  EXPECT_EQ(dp.completed(), accepted);
  EXPECT_EQ(completions.load(), accepted);
  EXPECT_EQ(dp.inflight(), 0u) << "quiesced plane must hold no packets";
  std::uint64_t per_path_sum = 0;
  for (std::size_t p = 0; p < cfg.num_paths; ++p)
    per_path_sum += dp.per_path_count(p);
  EXPECT_EQ(per_path_sum, accepted);
}

INSTANTIATE_TEST_SUITE_P(BurstSizes, ThreadedBurst,
                         ::testing::Values(std::size_t{1},
                                           std::size_t{32}));

TEST(ThreadedDataPlane, IngressBurstRejectsOnBackpressure) {
  ThreadedConfig cfg;
  cfg.num_paths = 1;
  cfg.pool_size = 8;
  cfg.ring_capacity = 4;
  ThreadedDataPlane dp(cfg, nullptr);
  // Workers not started: the slot pool caps acceptance and the remainder
  // must be rejected, not blocked on.
  std::vector<std::uint64_t> hashes(100);
  for (std::size_t i = 0; i < hashes.size(); ++i) hashes[i] = i;
  std::size_t accepted = dp.ingress_burst(hashes);
  EXPECT_LE(accepted, 8u);
  EXPECT_EQ(dp.rejected(), hashes.size() - accepted);
  dp.start();  // drain what was queued
  dp.stop();
  EXPECT_EQ(dp.completed(), accepted);
  EXPECT_EQ(dp.inflight(), 0u);
}

TEST(ThreadedDataPlane, IngressBurstJsqSpreadsAcrossPaths) {
  ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.ring_capacity = 64;
  cfg.pool_size = 64;
  ThreadedDataPlane dp(cfg, nullptr);
  // Workers stopped: JSQ sees ring occupancy; a burst must still spread
  // (depths are sampled once then tracked locally per dispatch).
  std::vector<std::uint64_t> hashes(60);
  for (std::size_t i = 0; i < hashes.size(); ++i) hashes[i] = i;
  EXPECT_EQ(dp.ingress_burst(hashes), 60u);
  auto a = dp.per_path_count(0);
  auto b = dp.per_path_count(1);
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b), 2.0);
  dp.start();
  dp.stop();
  EXPECT_EQ(dp.completed(), 60u);
}

}  // namespace
}  // namespace mdp::core
