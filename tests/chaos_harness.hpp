// Chaos harness: a seeded, single-threaded soak rig that closes the whole
// loop the library exists for — generation -> per-path queues -> loopback
// wire with fault lanes (drop / dup / delay / reorder) -> dedup ->
// reorder -> egress — with a live mdp::ctrl::Controller observing every
// egress span (SloMonitor::observe_span) and actuating admission masks,
// drains, probe grants, replication, and the PID hedge deadline back onto
// the rig.
//
// Everything is driven by one logical clock (1 iteration == 1 wire tick ==
// 1000 ns of sim time) and one splitmix64 stream, so a given
// ChaosScenarioConfig yields the exact same packet stream, fault pattern,
// controller decision log, and egress order every run — the determinism
// test diffs two runs byte for byte. Bottlenecks are injectable per stage:
//   - a fault phase with delay_ticks makes the WIRE slow -> the egress
//     spans show `service` as the dominant stage;
//   - a drain_per_iter below the offered per-path rate makes the rig QUEUE
//     deep -> the spans show `queue_wait`;
// which is what lets test_chaos_soak assert that the controller's
// dominant-stage verdict matches the bottleneck that was actually injected.
//
// Hedging: packets dispatched as a single copy are tracked; once the
// controller actuates a hedge deadline (set_hedge_timeout), any tracked
// packet older than the deadline whose first copy has not egressed gets
// one clone on the next admissible path (Deduplicator::add_expected keeps
// exactly-once intact).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <atomic>

#include "core/dedup.hpp"
#include "core/granularity.hpp"
#include "core/reorder.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/tenant.hpp"
#include "io/loopback_backend.hpp"
#include "net/packet_builder.hpp"
#include "net/tenant.hpp"
#include "sim/event_queue.hpp"
#include "telem/flight_recorder.hpp"
#include "telem/snapshot_exporter.hpp"
#include "trace/span.hpp"
#include "workload/conn_storm.hpp"

namespace mdp::chaos {

/// A fault lane applied to `path` for iterations [from_iter, to_iter).
/// Outside its window the path reverts to a clean wire, so scenarios can
/// script fault storms that come and go (and the admission flips they
/// provoke from the controller).
struct FaultPhase {
  std::uint64_t from_iter = 0;
  std::uint64_t to_iter = 0;
  std::uint16_t path = 0;
  io::LoopbackFaults faults{};
};

struct ChaosScenarioConfig {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 100'000;
  std::uint32_t flows = 4;
  std::size_t num_paths = 2;
  /// Packets generated per iteration (each picks its flow from the RNG).
  std::uint64_t packets_per_iter = 1;
  /// Dispatch mode. false (default): round-robin spraying across
  /// admissible paths — the multipath data plane's normal mode, where a
  /// slow path surfaces as REORDER dwell on its siblings (head-of-line
  /// blocking at the resequencer). true: flow % num_paths affinity, which
  /// keeps each path's trouble in its own spans — what the attribution
  /// scenarios need to pin a bottleneck on the path that caused it.
  bool flow_affinity = false;
  /// Per-path rig-queue drain budget per iteration; sized per num_paths
  /// (missing entries default to 4). Below the path's offered rate this
  /// is the queue_wait bottleneck injector.
  std::vector<std::size_t> drain_per_iter{};
  std::vector<FaultPhase> phases{};
  /// Flow-granularity replication (legacy/tenantless generation only):
  /// when true and the live granularity allows flow replicas, every
  /// packet of a flow is sent once on each path of the flow's stable
  /// admissible pair (scan from flow % num_paths), with the dedup stage
  /// expecting both copies — first copy wins per sequence. Flows for
  /// which fewer than two admissible paths exist fall back to the legacy
  /// single-copy dispatch (and so stay hedgeable). false keeps the rig
  /// byte-for-byte identical to the pre-replication harness.
  bool flow_replica = false;
  /// Granularity the rig starts at; RigActuator::set_granularity (the
  /// controller's third lever) overrides it mid-run. kPacketHedge is the
  /// legacy behavior: hedge sweep armed, no flow replicas.
  core::Granularity granularity = core::Granularity::kPacketHedge;
  /// Feed LATE duplicate copies (dedup losers) into the path SLO windows
  /// too. Successful proactive control erases its own evidence: a hedge
  /// rescue caps the e2e latency and the slow first copy is dropped at
  /// dedup unobserved, so the path that caused the trouble looks clean and
  /// every forecast actuation books as a false positive. With this flag
  /// each dropped copy's true per-copy wire latency still lands in its own
  /// path's window (reactive confirmation keeps working) while e2e
  /// delivery metrics stay rescue-capped. false keeps the rig
  /// byte-for-byte identical to the pre-forecast harness.
  bool observe_late_copies = false;
  ctrl::Config ctrl{};
  std::uint64_t ctrl_tick_every = 64;  ///< iterations between ticks
  std::uint64_t reorder_timeout_ns = 200'000;
  std::size_t pool_size = 16384;
  std::size_t wire_depth = 8192;
  /// Flight-recorder ring size per channel (rounded to a power of two).
  std::size_t recorder_events_per_channel = 8192;
  /// Span of timeline a quarantine auto-dump captures (0 = everything
  /// the rings retain). 100 us = the last ~100 rig iterations.
  std::uint64_t quarantine_dump_window_ns = 100'000;

  /// One tenant's traffic shape in tenant mode: a ConnStorm schedule
  /// (flow arrivals / teardowns; each arrival also emits one packet),
  /// a steady per-iteration packet rate round-robined over the tenant's
  /// live flows, and the contract handed to ctrl::TenantAdmission.
  struct TenantTraffic {
    workload::ConnStormTenant storm{};
    ctrl::TenantSpec spec{};
    std::uint64_t packets_per_iter = 1;
  };
  /// Non-empty switches the rig into tenant mode (docs/TENANCY.md):
  /// generation is driven per tenant (flows = storm connections, ids
  /// dense across tenants), every packet passes TenantAdmission::admit()
  /// BEFORE entering the plane, src addresses live in per-tenant /12
  /// subnets classified back through net::TenantClassifier, and the
  /// controller runs the tenant admission stage each tick. Empty keeps
  /// the legacy tenantless rig byte-for-byte.
  std::vector<TenantTraffic> tenants{};
  /// Hysteresis thresholds for the tenant state machines (the `tenants`
  /// vector inside is overwritten from TenantTraffic::spec; tenants with
  /// slo_target_ns == 0 inherit ctrl.slo_target_ns).
  ctrl::TenantAdmissionConfig tenant_ctrl{};
};

struct ChaosResult {
  std::uint64_t generated = 0;       ///< (flow, seq) pairs offered
  std::uint64_t copies_sent = 0;     ///< frames handed to rig queues
  std::uint64_t hedges_sent = 0;
  std::uint64_t arrived_unique = 0;  ///< (flow, seq) with >= 1 survivor
  std::uint64_t egressed = 0;
  std::uint64_t duplicate_egress = 0;
  std::uint64_t order_violations = 0;
  // Pool audit at quiesce.
  std::uint64_t pool_in_use = 0;
  std::uint64_t pool_allocs = 0;
  std::uint64_t pool_recycles = 0;
  // Wire fault counters.
  std::uint64_t wire_dropped = 0;
  std::uint64_t wire_duplicated = 0;
  std::uint64_t wire_reordered = 0;
  // Controller outcome.
  std::uint64_t quarantines = 0;
  std::uint64_t reinstatements = 0;
  std::uint64_t hedge_timeout_ns = 0;
  std::uint64_t hedge_timeout_adjustments = 0;
  std::uint64_t service_deferrals = 0;
  /// Extra copies sent by flow-granularity replication (not hedges).
  std::uint64_t flow_replicas = 0;
  std::uint64_t granularity_shifts = 0;
  core::Granularity final_granularity = core::Granularity::kPacketHedge;
  std::vector<ctrl::Decision> decisions;
  std::string ctrl_report;  ///< report_json(): the byte-identity artifact
  /// Egress order as (flow << 32 | seq), for run-to-run identity checks.
  std::vector<std::uint64_t> delivered_log;
  /// (egress_ns, e2e latency_ns) of every delivered packet, in egress
  /// order — the raw series behind the A/B breach-window and storm-onset
  /// metrics (bench-side, identical bucketing for both controllers).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> latency_log;
  // Forecast stage outcome (all zero while ctrl.forecast.enabled=false).
  std::uint64_t breach_windows = 0;
  std::uint64_t forecast_prehedges = 0;
  std::uint64_t forecast_probes = 0;
  std::uint64_t forecast_prequarantines = 0;
  std::uint64_t forecast_restores = 0;
  std::uint64_t forecast_confirmed = 0;
  std::uint64_t forecast_false_positives = 0;
  // Telemetry plane artifacts. The rig runs on one logical clock and one
  // RNG stream, so all three are byte-identical across same-seed reruns.
  std::uint64_t telem_events = 0;   ///< events emitted across all channels
  std::uint64_t auto_dumps = 0;     ///< quarantine-triggered dumps taken
  std::string telem_dump;           ///< final mdp.flight_recorder.v1 timeline
  std::string telem_report;         ///< mdp.telem.v1 per-tick time series
  /// Timeline captured at the moment of the most recent quarantine
  /// (Controller::last_quarantine_dump); empty when nothing was cut.
  std::string quarantine_dump;
  // Tenancy outcome (all empty/zero for tenantless scenarios).
  std::uint64_t tenant_throttles = 0;
  std::uint64_t tenant_sheds = 0;
  std::uint64_t tenant_reinstates = 0;
  std::uint64_t tenant_dropped = 0;  ///< packets refused at the door
  std::vector<const char*> tenant_final_states;
  std::vector<std::uint64_t> tenant_offered;        ///< packets per tenant
  std::vector<std::uint64_t> tenant_flow_arrivals;  ///< storm arrivals
  /// Exact e2e latency of every egressed packet, per tenant, in egress
  /// order — the evidence behind the non-contagion assertion (tests sort
  /// a copy for exact p99.9, no histogram quantization).
  std::vector<std::vector<std::uint64_t>> tenant_latencies;
};

class ChaosRig {
 public:
  explicit ChaosRig(ChaosScenarioConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.num_paths == 0) cfg_.num_paths = 1;
    cfg_.drain_per_iter.resize(cfg_.num_paths, 4);
    if (cfg_.ctrl.slo_target_ns == 0) cfg_.ctrl.slo_target_ns = 10'000;
  }

  ChaosResult run() {
    net::PacketPool pool(cfg_.pool_size, 1024, /*allow_growth=*/false);
    sim::EventQueue eq;
    io::LoopbackConfig wire_cfg;
    wire_cfg.queue_depth = cfg_.wire_depth;
    wire_cfg.seed = cfg_.seed;
    auto [tx, rx] = io::LoopbackBackend::make_pair(wire_cfg);

    core::Deduplicator dedup;
    ChaosResult res;

    // Tenant mode: admission stage + storm generator + per-tenant /12
    // subnets wired through the classifier. `ta` stays null in legacy
    // (tenantless) scenarios and every tenant branch below is skipped.
    const std::size_t num_tenants = cfg_.tenants.size();
    std::unique_ptr<ctrl::TenantAdmission> ta_own;
    ctrl::TenantAdmission* ta = nullptr;
    std::unique_ptr<workload::ConnStorm> storm;
    std::vector<std::deque<std::uint32_t>> tenant_live(num_tenants);
    std::vector<std::size_t> tenant_rr(num_tenants, 0);
    tenants_live_.store(nullptr, std::memory_order_release);
    tenants_owner_.reset();
    classifier_ = net::TenantClassifier{};
    if (num_tenants > 0) {
      ctrl::TenantAdmissionConfig tc = cfg_.tenant_ctrl;
      tc.tenants.clear();
      std::vector<workload::ConnStormTenant> storms;
      for (std::size_t i = 0; i < num_tenants; ++i) {
        tc.tenants.push_back(cfg_.tenants[i].spec);
        workload::ConnStormTenant s = cfg_.tenants[i].storm;
        s.tenant = static_cast<std::uint16_t>(i);
        storms.push_back(s);
        classifier_.add_prefix(tenant_subnet(static_cast<std::uint16_t>(i)),
                               12, static_cast<std::uint16_t>(i));
      }
      tc.default_slo_target_ns = cfg_.ctrl.slo_target_ns;
      ta_own = std::make_unique<ctrl::TenantAdmission>(tc);
      ta = ta_own.get();
      storm = std::make_unique<workload::ConnStorm>(std::move(storms),
                                                    cfg_.seed);
      res.tenant_offered.assign(num_tenants, 0);
      res.tenant_flow_arrivals.assign(num_tenants, 0);
      res.tenant_latencies.assign(num_tenants, {});
    }

    // Flight recorder: one channel for the whole rig (single-threaded, so
    // one writer suffices). Every stage of the loop emits into it; the
    // controller gets its own "ctrl" channel via attach_recorder below.
    telem::FlightRecorder rec(
        {.events_per_channel = cfg_.recorder_events_per_channel});
    rig_chan_ = rec.channel("rig");

    std::map<std::pair<std::uint32_t, std::uint64_t>, int> egress_count;
    std::vector<std::uint64_t> last_seq(cfg_.flows, 0);
    std::vector<bool> any_seq(cfg_.flows, false);
    core::ReorderBuffer reorder(
        eq, {true, sim::TimeNs(cfg_.reorder_timeout_ns)},
        [&](net::PacketPtr pkt) {
          const auto& a = pkt->anno();
          const int n = ++egress_count[{a.flow_id, a.seq}];
          if (n > 1) ++res.duplicate_egress;
          if (any_seq[a.flow_id] && a.seq <= last_seq[a.flow_id])
            ++res.order_violations;
          last_seq[a.flow_id] = a.seq;
          any_seq[a.flow_id] = true;
          ++res.egressed;
          res.delivered_log.push_back((std::uint64_t{a.flow_id} << 32) |
                                      a.seq);
          // Stage-attributed span from the rig's stamps: generation ->
          // queue (ingress/dispatch), tx onto the wire (service start),
          // rx off the wire (service end / merge), reorder emit (egress).
          trace::SpanRecord sp;
          sp.ingress_ns = a.ingress_ns;
          sp.dispatch_ns = a.ingress_ns;
          sp.service_start_ns = a.dispatch_ns;
          sp.service_end_ns = a.egress_ns;
          sp.chain_done_ns = a.egress_ns;
          sp.merge_ns = a.egress_ns;
          sp.egress_ns = static_cast<std::uint64_t>(eq.now());
          sp.flow_id = a.flow_id;
          sp.seq = a.seq;
          sp.path_id = a.path_id;
          sp.active = true;
          mon_->observe_span(a.path_id, sp);
          res.latency_log.emplace_back(sp.egress_ns,
                                       sp.egress_ns - a.ingress_ns);
          if (ta) {
            // Per-tenant evidence: the exact e2e latency feeds both the
            // tenant's SLO window and the test-side latency log.
            const std::uint64_t lat = sp.egress_ns - a.ingress_ns;
            ta->observe(a.tenant_id, lat);
            if (a.tenant_id < res.tenant_latencies.size())
              res.tenant_latencies[a.tenant_id].push_back(lat);
          }
          rig_chan_->emit(sp.egress_ns, telem::EventType::kReorderRelease,
                          a.path_id, 1,
                          (std::uint64_t{a.flow_id} << 32) | a.seq);
        });

    mon_ = std::make_unique<ctrl::SloMonitor>(cfg_.num_paths,
                                              cfg_.ctrl.slo_target_ns);
    RigActuator act(*this, *tx);
    ctrl::Controller controller(cfg_.ctrl, act, *mon_);
    telem::SnapshotExporter exporter({.capacity_ticks = 4096});
    controller.set_telem_exporter(&exporter);
    controller.attach_recorder(&rec, cfg_.quarantine_dump_window_ns);
    if (ta) {
      controller.attach_tenants(ta);
      // Publish the live admission stage for concurrent prodding (the
      // flap-from-a-second-thread soak). The object stays valid after
      // run() returns (owned by the rig), but the pointer drops to null
      // once the run's results are final.
      tenants_owner_ = std::move(ta_own);
      tenants_live_.store(ta, std::memory_order_release);
    }

    queues_.clear();
    queues_.resize(cfg_.num_paths);
    admission_.assign(cfg_.num_paths, ctrl::Admission::kEnabled);
    probe_credits_.assign(cfg_.num_paths, 0);
    replicas_ = 1;
    hedge_timeout_ns_ = 0;
    granularity_ = cfg_.granularity;
    rr_ = 0;
    rng_ = cfg_.seed ? cfg_.seed : 0x9e3779b97f4a7c15ULL;

    std::vector<std::uint64_t> next_seq(cfg_.flows, 0);
    std::deque<Outstanding> outstanding;
    std::vector<net::PacketPtr> txvec;
    txvec.reserve(64);

    auto drain_rx = [&] {
      net::PacketPtr got[64];
      std::size_t n;
      while ((n = rx->rx_burst(std::span<net::PacketPtr>(got, 64))) > 0) {
        std::uint64_t keys[64];
        bool first[64];
        for (std::size_t i = 0; i < n; ++i) {
          auto& a = got[i]->anno();
          a.egress_ns = static_cast<std::uint64_t>(eq.now());
          keys[i] = core::Deduplicator::key(a.flow_id, a.seq);
        }
        dedup.accept_batch({keys, n}, {first, n});
        for (std::size_t i = 0; i < n; ++i)
          if (!first[i]) {
            const auto& a = got[i]->anno();
            if (cfg_.observe_late_copies) {
              // The losing copy's true per-copy wire latency, charged to
              // the path that carried it — the evidence a hedge rescue
              // would otherwise erase (see the config flag's comment).
              trace::SpanRecord sp;
              sp.ingress_ns = a.ingress_ns;
              sp.dispatch_ns = a.ingress_ns;
              sp.service_start_ns = a.dispatch_ns;
              sp.service_end_ns = a.egress_ns;
              sp.chain_done_ns = a.egress_ns;
              sp.merge_ns = a.egress_ns;
              sp.egress_ns = static_cast<std::uint64_t>(eq.now());
              sp.flow_id = a.flow_id;
              sp.seq = a.seq;
              sp.path_id = a.path_id;
              sp.active = true;
              mon_->observe_span(a.path_id, sp);
            }
            rig_chan_->emit(static_cast<std::uint64_t>(eq.now()),
                            telem::EventType::kDedupDrop, a.path_id, 1,
                            keys[i]);
            got[i].reset();
          }
        reorder.submit_batch({got, n});
        for (std::size_t i = 0; i < n; ++i) got[i].reset();
      }
    };

    const std::uint64_t total_iters = cfg_.iterations;
    // Quiesce bound: generously past anything a staged wire + deep queue
    // + reorder timeout can strand.
    const std::uint64_t hard_stop =
        total_iters + cfg_.pool_size + cfg_.reorder_timeout_ns / 1000 + 256;
    for (std::uint64_t iter = 0; iter < hard_stop; ++iter) {
      const std::uint64_t now = iter * 1'000;
      now_ns_ = now;
      eq.run_until(sim::TimeNs(now));

      for (const auto& ph : cfg_.phases) {
        if (iter == ph.from_iter) {
          tx->set_path_faults(ph.path, ph.faults);
          rig_chan_->emit(now, telem::EventType::kFaultInject, ph.path, 1,
                          iter);
        }
        if (iter == ph.to_iter) {
          tx->set_path_faults(ph.path, {});
          rig_chan_->emit(now, telem::EventType::kFaultInject, ph.path, 0,
                          iter);
        }
      }

      const bool generating = iter < total_iters;
      if (generating && num_tenants > 0) {
        // Tenant mode. One packet into the plane, gated at the door:
        // admission refusal happens BEFORE dedup.expect, so a shed
        // tenant's packets never become expected keys and the
        // exactly-once / zero-leak invariants hold under any flap.
        auto emit_tenant = [&](std::uint16_t t, std::uint32_t flow) {
          ++res.tenant_offered[t];
          if (!ta->admit(t)) return;
          if (flow >= next_seq.size()) {
            next_seq.resize(flow + 1, 0);
            last_seq.resize(flow + 1, 0);
            any_seq.resize(flow + 1, false);
          }
          const std::uint64_t seq = next_seq[flow]++;
          const std::uint64_t key = core::Deduplicator::key(flow, seq);
          const std::size_t copies =
              std::min<std::size_t>(replicas_, cfg_.num_paths);
          dedup.expect(key, static_cast<std::uint8_t>(copies), eq.now());
          ++res.generated;
          std::uint16_t first_path = 0;
          for (std::size_t c = 0; c < copies; ++c) {
            const std::uint16_t path = pick_path(flow);
            if (c == 0) first_path = path;
            net::PacketPtr pkt = make_frame(
                pool, flow, seq, path, static_cast<std::uint8_t>(c), t);
            if (!pkt) {
              dedup.cancel_one(key);
              ++pool_exhausted_;
              continue;
            }
            pkt->anno().ingress_ns = now;
            queues_[path].push_back(std::move(pkt));
            ++res.copies_sent;
          }
          if (copies == 1)
            outstanding.push_back({key, flow, seq, now, first_path, false, t});
        };
        // Storm events: each arrival opens a flow (and emits its first
        // packet); teardowns retire flows FIFO per tenant.
        for (const auto& ev : storm->tick()) {
          const std::uint16_t t = ev.tenant;
          const auto conn = static_cast<std::uint32_t>(ev.conn_id);
          if (ev.type == workload::ConnEvent::Type::kArrival) {
            ta->on_flow_arrival(t);
            ++res.tenant_flow_arrivals[t];
            tenant_live[t].push_back(conn);
            emit_tenant(t, conn);
          } else {
            auto& dq = tenant_live[t];
            if (!dq.empty() && dq.front() == conn) {
              dq.pop_front();
            } else {
              auto it = std::find(dq.begin(), dq.end(), conn);
              if (it != dq.end()) dq.erase(it);
            }
          }
        }
        // Steady per-tenant rate, round-robined over the tenant's live
        // flows so every open connection keeps its sequence advancing.
        std::uint64_t burst = 0;
        for (std::size_t t = 0; t < num_tenants; ++t) {
          auto& dq = tenant_live[t];
          if (dq.empty()) continue;
          for (std::uint64_t g = 0; g < cfg_.tenants[t].packets_per_iter;
               ++g) {
            const std::uint32_t flow = dq[tenant_rr[t]++ % dq.size()];
            emit_tenant(static_cast<std::uint16_t>(t), flow);
            ++burst;
          }
        }
        if (burst > 0)
          rig_chan_->emit(now, telem::EventType::kIngressBurst,
                          telem::kAllPaths,
                          static_cast<std::uint32_t>(burst), res.generated);
      } else if (generating) {
        for (std::uint64_t g = 0; g < cfg_.packets_per_iter; ++g) {
          const std::uint32_t flow =
              static_cast<std::uint32_t>(next_u64() % cfg_.flows);
          const std::uint64_t seq = next_seq[flow]++;
          const std::uint64_t key = core::Deduplicator::key(flow, seq);
          // Flow-granularity replication: the whole flow rides its stable
          // admissible pair, both copies expected up front (first copy
          // wins at dedup). Never tracked in `outstanding` — a replicated
          // flow is already redundant, hedging it would triple-send.
          std::uint16_t rpaths[2];
          if (cfg_.flow_replica &&
              core::granularity_allows_flow_replica(granularity_) &&
              replica_pair(flow, rpaths)) {
            dedup.expect(key, 2, eq.now());
            ++res.generated;
            for (std::size_t c = 0; c < 2; ++c) {
              net::PacketPtr pkt = make_frame(
                  pool, flow, seq, rpaths[c], static_cast<std::uint8_t>(c));
              if (!pkt) {
                dedup.cancel_one(key);
                ++pool_exhausted_;
                continue;
              }
              pkt->anno().ingress_ns = now;
              queues_[rpaths[c]].push_back(std::move(pkt));
              ++res.copies_sent;
              if (c > 0) ++res.flow_replicas;
            }
            continue;
          }
          const std::size_t copies =
              std::min<std::size_t>(replicas_, cfg_.num_paths);
          dedup.expect(key, static_cast<std::uint8_t>(copies), eq.now());
          ++res.generated;
          std::uint16_t first_path = 0;
          for (std::size_t c = 0; c < copies; ++c) {
            const std::uint16_t path = pick_path(flow);
            if (c == 0) first_path = path;
            net::PacketPtr pkt = make_frame(
                pool, flow, seq, path, static_cast<std::uint8_t>(c));
            if (!pkt) {
              // Pool exhausted: account the missing copy so dedup can
              // still retire the key. Scenarios size the pool to make
              // this unreachable; the counter keeps it honest.
              dedup.cancel_one(key);
              ++pool_exhausted_;
              continue;
            }
            pkt->anno().ingress_ns = now;
            queues_[path].push_back(std::move(pkt));
            ++res.copies_sent;
          }
          if (copies == 1)
            outstanding.push_back({key, flow, seq, now, first_path, false});
        }
        if (cfg_.packets_per_iter > 0)
          rig_chan_->emit(now, telem::EventType::kIngressBurst,
                          telem::kAllPaths,
                          static_cast<std::uint32_t>(cfg_.packets_per_iter),
                          res.generated);
      }

      // Hedge sweep: rescue tracked single-copy packets older than the
      // actuated deadline whose first copy has not egressed.
      while (!outstanding.empty() &&
             (dedup.completed(outstanding.front().key) ||
              now - outstanding.front().gen_ns > 2 * cfg_.reorder_timeout_ns))
        outstanding.pop_front();
      if (hedge_timeout_ns_ > 0 &&
          core::granularity_allows_hedge(granularity_)) {
        for (auto& o : outstanding) {
          if (now - o.gen_ns <= hedge_timeout_ns_) break;  // gen order
          if (o.hedged || dedup.completed(o.key)) continue;
          // Hedges spend the owning tenant's per-window budget.
          if (ta && !ta->try_consume_hedge_token(o.tenant)) continue;
          const std::uint16_t alt =
              cfg_.num_paths > 1
                  ? static_cast<std::uint16_t>((o.path + 1) % cfg_.num_paths)
                  : o.path;
          net::PacketPtr copy = make_frame(pool, o.flow, o.seq, alt, 1,
                                           ta ? o.tenant : kNoTenant);
          if (!copy) {
            ++pool_exhausted_;
            break;
          }
          copy->anno().ingress_ns = o.gen_ns;
          dedup.add_expected(o.key);
          queues_[alt].push_back(std::move(copy));
          o.hedged = true;
          ++res.hedges_sent;
          ++res.copies_sent;
          rig_chan_->emit(now, telem::EventType::kHedgeFire, alt, 1, o.key);
        }
      }

      // One wire tick per iteration — advance() is the wire's only clock,
      // tx_burst never ticks — then a single tx_burst carrying every
      // path's drain budget (fault lanes select on anno().path_id).
      tx->advance(1);
      txvec.clear();
      for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
        for (std::size_t k = 0;
             k < cfg_.drain_per_iter[p] && !queues_[p].empty(); ++k) {
          queues_[p].front()->anno().dispatch_ns = now;
          txvec.push_back(std::move(queues_[p].front()));
          queues_[p].pop_front();
        }
      }
      if (txvec.empty()) {
        if (!generating && tx->in_flight() > 0) tx->flush();
      } else {
        const std::size_t sent = tx->tx_burst(
            std::span<net::PacketPtr>(txvec.data(), txvec.size()));
        // Wire full: unconsumed frames go back to the front of their
        // queues, preserving per-path order.
        for (std::size_t i = txvec.size(); i > sent; --i) {
          net::PacketPtr& p = txvec[i - 1];
          queues_[p->anno().path_id].push_front(std::move(p));
        }
      }
      drain_rx();

      if ((iter + 1) % cfg_.ctrl_tick_every == 0) controller.tick(now);
      if ((iter + 1) % 4096 == 0)
        dedup.sweep(eq.now(), sim::TimeNs(4 * cfg_.reorder_timeout_ns));

      if (!generating && tx->in_flight() == 0 && queues_empty() &&
          reorder.buffered() == 0)
        break;
    }

    eq.run();  // outstanding reorder timers fire
    drain_rx();
    reorder.flush_all();

    res.arrived_unique = egress_count.size();
    res.pool_in_use = pool.in_use();
    res.pool_allocs = pool.total_allocs();
    res.pool_recycles = pool.total_recycles();
    res.wire_dropped = tx->dropped();
    res.wire_duplicated = tx->duplicated();
    res.wire_reordered = tx->reordered();
    res.quarantines = controller.quarantines();
    res.reinstatements = controller.reinstatements();
    res.hedge_timeout_ns = controller.hedge_timeout_ns();
    res.hedge_timeout_adjustments = controller.hedge_timeout_adjustments();
    res.service_deferrals = controller.service_deferrals();
    res.granularity_shifts = controller.granularity_shifts();
    res.final_granularity = granularity_;
    res.breach_windows = controller.breach_windows();
    res.forecast_prehedges = controller.forecast_prehedges();
    res.forecast_probes = controller.forecast_probes();
    res.forecast_prequarantines = controller.forecast_prequarantines();
    res.forecast_restores = controller.forecast_restores();
    res.forecast_confirmed = controller.forecast_confirmed();
    res.forecast_false_positives = controller.forecast_false_positives();
    res.decisions = controller.decisions();
    res.ctrl_report = controller.report_json();
    res.telem_events = rec.total_emitted();
    res.auto_dumps = controller.auto_dumps();
    res.quarantine_dump = controller.last_quarantine_dump();
    res.telem_report = exporter.to_json();
    res.telem_dump = rec.dump_json();
    if (ta) {
      res.tenant_throttles = ta->throttles();
      res.tenant_sheds = ta->sheds();
      res.tenant_reinstates = ta->reinstates();
      res.tenant_dropped = ta->total_dropped();
      for (std::size_t t = 0; t < num_tenants; ++t)
        res.tenant_final_states.push_back(ctrl::tenant_state_name(
            ta->state(static_cast<std::uint16_t>(t))));
      tenants_live_.store(nullptr, std::memory_order_release);
    }
    rig_chan_ = nullptr;
    mon_.reset();
    return res;
  }

  std::uint64_t pool_exhaustions() const noexcept { return pool_exhausted_; }

  /// Non-null only while a tenant-mode run() is in flight: the live
  /// admission stage, for tests that hammer admit()/state()/observe()
  /// from a second thread while the rig runs (everything on that surface
  /// is lock-free). The object outlives the run (rig-owned), so a racing
  /// reader that loaded the pointer just before it dropped stays safe.
  ctrl::TenantAdmission* tenants_live() const noexcept {
    return tenants_live_.load(std::memory_order_acquire);
  }

 private:
  struct Outstanding {
    std::uint64_t key;
    std::uint32_t flow;
    std::uint64_t seq;
    std::uint64_t gen_ns;
    std::uint16_t path;
    bool hedged;
    std::uint16_t tenant = 0;
  };

  /// The controller's write interface onto the rig: admission + probe
  /// credits gate pick_path(), backlog is rig queue depth, flush pushes
  /// the staged wire, replication and the hedge deadline feed generation.
  class RigActuator final : public ctrl::Actuator {
   public:
    RigActuator(ChaosRig& rig, io::LoopbackBackend& wire)
        : rig_(rig), wire_(wire) {}
    std::size_t num_paths() const override { return rig_.cfg_.num_paths; }
    void set_admission(std::size_t path, ctrl::Admission a) override {
      rig_.admission_[path] = a;
      rig_.rig_chan_->emit(rig_.now_ns_, telem::EventType::kAdmissionFlip,
                           static_cast<std::uint16_t>(path),
                           static_cast<std::uint32_t>(a), 0);
    }
    void grant_probes(std::size_t path, std::uint64_t n) override {
      rig_.probe_credits_[path] += n;
    }
    std::uint64_t path_backlog(std::size_t path) const override {
      return rig_.queues_[path].size();
    }
    void flush_path(std::size_t) override { wire_.flush(); }
    void set_replicas(std::size_t r) override { rig_.replicas_ = r; }
    void set_hedge_timeout(std::uint64_t t) override {
      rig_.hedge_timeout_ns_ = t;
    }
    void set_granularity(core::Granularity g) override {
      rig_.granularity_ = g;
      rig_.rig_chan_->emit(rig_.now_ns_, telem::EventType::kUser,
                           telem::kAllPaths,
                           static_cast<std::uint32_t>(g), 0);
    }

   private:
    ChaosRig& rig_;
    io::LoopbackBackend& wire_;
  };

  /// Sentinel for legacy (tenantless) frames; keeps the pre-tenancy
  /// address formula byte-for-byte.
  static constexpr std::uint16_t kNoTenant = 0xffff;

  /// The /12 block tenant `t` sources from: 10.(16*(t+1)).0.0/12. The
  /// rig's classifier rules and frame builder must agree on this.
  static constexpr std::uint32_t tenant_subnet(std::uint16_t t) noexcept {
    return 0x0a000000u | (static_cast<std::uint32_t>(t + 1) << 20);
  }

  net::PacketPtr make_frame(net::PacketPool& pool, std::uint32_t flow_id,
                            std::uint64_t seq, std::uint16_t path,
                            std::uint8_t copy_index,
                            std::uint16_t tenant = kNoTenant) {
    net::BuildSpec spec;
    if (tenant == kNoTenant) {
      spec.flow = {0x0a000001 + flow_id, 0x0a000002,
                   static_cast<std::uint16_t>(1024 + flow_id), 4789, 0};
    } else {
      // Tenant-mode source addresses live in the tenant's /12, so the
      // annotation below is the classifier's verdict, not a copy of the
      // generator's intent — the same derivation the NF path uses.
      spec.flow = {tenant_subnet(tenant) | (flow_id & 0xfffff), 0x0a000002,
                   static_cast<std::uint16_t>(1024 + (flow_id & 0x7fff)),
                   4789, 0};
    }
    spec.payload_len = 64;
    spec.payload_fill = static_cast<std::uint8_t>(seq);
    net::PacketPtr pkt = net::build_udp(pool, spec);
    if (!pkt) return pkt;
    auto& a = pkt->anno();
    a.flow_id = flow_id;
    a.seq = seq;
    a.path_id = path;
    a.copy_index = copy_index;
    a.is_replica = copy_index > 0;
    a.flow_hash = net::hash_flow(spec.flow);
    if (tenant != kNoTenant) a.tenant_id = classifier_.classify(spec.flow);
    return pkt;
  }

  bool admissible(std::size_t p) const {
    switch (admission_[p]) {
      case ctrl::Admission::kEnabled: return true;
      case ctrl::Admission::kProbeOnly: return probe_credits_[p] > 0;
      case ctrl::Admission::kDisabled: return false;
    }
    return false;
  }

  void consume_credit(std::size_t p) {
    if (admission_[p] == ctrl::Admission::kProbeOnly &&
        probe_credits_[p] > 0)
      --probe_credits_[p];
  }

  /// Stable replica pair for `flow`: the first two admissible paths
  /// scanning from the flow's home (flow % num_paths). Returns false —
  /// caller falls back to legacy single-copy dispatch — when fewer than
  /// two paths are admissible, so a storm that masks paths degrades
  /// replication gracefully instead of double-sending on one survivor.
  bool replica_pair(std::uint32_t flow, std::uint16_t out[2]) {
    if (cfg_.num_paths < 2) return false;
    std::size_t n = 0;
    const std::size_t home = flow % cfg_.num_paths;
    for (std::size_t off = 0; off < cfg_.num_paths && n < 2; ++off) {
      const std::size_t p = (home + off) % cfg_.num_paths;
      if (admissible(p)) out[n++] = static_cast<std::uint16_t>(p);
    }
    if (n < 2) return false;
    consume_credit(out[0]);
    consume_credit(out[1]);
    return true;
  }

  /// Path selection; probe credits are consumed one per placement. Falls
  /// back to the full set if everything is masked (same belt-and-braces
  /// rule as ThreadedDataPlane::pick_path).
  std::uint16_t pick_path(std::uint32_t flow) {
    if (cfg_.flow_affinity) {
      const std::size_t home = flow % cfg_.num_paths;
      for (std::size_t off = 0; off < cfg_.num_paths; ++off) {
        const std::size_t p = (home + off) % cfg_.num_paths;
        if (admissible(p)) {
          consume_credit(p);
          return static_cast<std::uint16_t>(p);
        }
      }
      return static_cast<std::uint16_t>(home);  // all masked: serve anyway
    }
    bool any = false;
    for (std::size_t p = 0; p < cfg_.num_paths; ++p)
      if (admissible(p)) { any = true; break; }
    for (std::size_t tries = 0; tries < cfg_.num_paths; ++tries) {
      const std::size_t p = rr_++ % cfg_.num_paths;
      if (!any || admissible(p)) {
        consume_credit(p);
        return static_cast<std::uint16_t>(p);
      }
    }
    return static_cast<std::uint16_t>(rr_++ % cfg_.num_paths);
  }

  bool queues_empty() const {
    for (const auto& q : queues_)
      if (!q.empty()) return false;
    return true;
  }

  std::uint64_t next_u64() {  // splitmix64
    std::uint64_t z = (rng_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  ChaosScenarioConfig cfg_;
  std::unique_ptr<ctrl::SloMonitor> mon_;
  std::vector<std::deque<net::PacketPtr>> queues_;
  std::vector<ctrl::Admission> admission_;
  std::vector<std::uint64_t> probe_credits_;
  std::size_t replicas_ = 1;
  std::uint64_t hedge_timeout_ns_ = 0;
  core::Granularity granularity_ = core::Granularity::kPacketHedge;
  std::size_t rr_ = 0;
  std::uint64_t rng_ = 1;
  std::uint64_t pool_exhausted_ = 0;
  /// Live only during run(): the rig's flight-recorder channel and the
  /// current logical time, so the actuator can stamp admission flips.
  telem::FlightRecorder::Channel* rig_chan_ = nullptr;
  std::uint64_t now_ns_ = 0;
  // Tenant mode state. The owner keeps the admission stage alive past
  // run() so a second thread that raced the final pointer-clear never
  // touches a destroyed object; the classifier is rebuilt per run.
  net::TenantClassifier classifier_;
  std::unique_ptr<ctrl::TenantAdmission> tenants_owner_;
  std::atomic<ctrl::TenantAdmission*> tenants_live_{nullptr};
};

}  // namespace mdp::chaos
