// LPM table and IPLookup element tests, plus link-scheduler elements
// (PrioSched / DrrSched) and the FlowCache fast path.
#include <gtest/gtest.h>

#include "click/elements.hpp"
#include "click/elements_sched.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "nf/flow_cache.hpp"
#include "nf/lpm.hpp"
#include "sim/rng.hpp"

namespace mdp::nf {
namespace {

std::uint32_t ip(const char* s) {
  std::uint32_t v = 0;
  EXPECT_TRUE(net::ipv4_from_string(s, &v));
  return v;
}

TEST(LpmTable, LongestPrefixWinsRegardlessOfInsertOrder) {
  LpmTable t;
  t.insert(Prefix{ip("10.0.0.0"), 8}, 1);
  t.insert(Prefix{ip("10.1.0.0"), 16}, 2);
  t.insert(Prefix{ip("10.1.2.0"), 24}, 3);
  EXPECT_EQ(t.lookup(ip("10.1.2.3")), 3);
  EXPECT_EQ(t.lookup(ip("10.1.9.9")), 2);
  EXPECT_EQ(t.lookup(ip("10.9.9.9")), 1);
  EXPECT_FALSE(t.lookup(ip("11.0.0.1")).has_value());

  // Same routes in reverse order: identical answers.
  LpmTable t2;
  t2.insert(Prefix{ip("10.1.2.0"), 24}, 3);
  t2.insert(Prefix{ip("10.1.0.0"), 16}, 2);
  t2.insert(Prefix{ip("10.0.0.0"), 8}, 1);
  for (const char* a : {"10.1.2.3", "10.1.9.9", "10.9.9.9"})
    EXPECT_EQ(t.lookup(ip(a)), t2.lookup(ip(a))) << a;
}

TEST(LpmTable, DefaultRouteCatchesEverything) {
  LpmTable t;
  t.insert(Prefix{0, 0}, 99);
  t.insert(Prefix{ip("192.168.0.0"), 16}, 1);
  EXPECT_EQ(t.lookup(ip("8.8.8.8")), 99);
  EXPECT_EQ(t.lookup(ip("192.168.1.1")), 1);
}

TEST(LpmTable, HostRoutesAndRemoval) {
  LpmTable t;
  t.insert(Prefix{ip("10.0.0.0"), 8}, 1);
  t.insert(Prefix{ip("10.0.0.5"), 32}, 7);
  EXPECT_EQ(t.lookup(ip("10.0.0.5")), 7);
  EXPECT_TRUE(t.remove(Prefix{ip("10.0.0.5"), 32}));
  EXPECT_EQ(t.lookup(ip("10.0.0.5")), 1) << "falls back to the /8";
  EXPECT_FALSE(t.remove(Prefix{ip("10.0.0.5"), 32})) << "already gone";
  EXPECT_EQ(t.num_routes(), 1u);
}

TEST(LpmTable, OverwriteKeepsRouteCount) {
  LpmTable t;
  t.insert(Prefix{ip("10.0.0.0"), 8}, 1);
  t.insert(Prefix{ip("10.0.0.0"), 8}, 5);
  EXPECT_EQ(t.num_routes(), 1u);
  EXPECT_EQ(t.lookup(ip("10.1.1.1")), 5);
}

TEST(LpmTable, AgreesWithLinearScanOnRandomInputs) {
  sim::Rng rng(606);
  LpmTable t;
  std::vector<std::pair<Prefix, int>> routes;
  for (int i = 0; i < 200; ++i) {
    Prefix p;
    p.len = static_cast<std::uint8_t>(rng.uniform_u64(25) + 8);
    std::uint32_t mask =
        p.len >= 32 ? 0xffffffffu : ~(0xffffffffu >> p.len);
    p.addr = static_cast<std::uint32_t>(rng.next_u64()) & mask;
    // Overwrite semantics: last insert for a prefix wins, mirror that.
    int v = i;
    t.insert(p, v);
    bool replaced = false;
    for (auto& [rp, rv] : routes)
      if (rp.addr == p.addr && rp.len == p.len) {
        rv = v;
        replaced = true;
      }
    if (!replaced) routes.emplace_back(p, v);
  }
  for (int i = 0; i < 20'000; ++i) {
    std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
    if (rng.bernoulli(0.5) && !routes.empty()) {
      // Bias toward covered space.
      const auto& [rp, rv] = routes[rng.uniform_u64(routes.size())];
      std::uint32_t mask =
          rp.len >= 32 ? 0xffffffffu : ~(0xffffffffu >> rp.len);
      addr = (rp.addr & mask) | (addr & ~mask);
    }
    // Linear reference: longest matching prefix, latest on tie len.
    int best = -1, best_len = -1;
    for (const auto& [rp, rv] : routes)
      if (rp.contains(addr) && rp.len > best_len) {
        best_len = rp.len;
        best = rv;
      }
    auto got = t.lookup(addr);
    if (best < 0) {
      ASSERT_FALSE(got.has_value()) << net::ipv4_to_string(addr);
    } else {
      ASSERT_TRUE(got.has_value()) << net::ipv4_to_string(addr);
      ASSERT_EQ(*got, best) << net::ipv4_to_string(addr);
    }
  }
}

TEST(IPLookupElement, RoutesByDstPrefix) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    rt :: IPLookup("10.0.0.0/8 0", "192.168.0.0/16 1", "0.0.0.0/0 2");
    a :: Counter; b :: Counter; c :: Counter;
    rt [0] -> a -> Discard; rt [1] -> b -> Discard; rt [2] -> c -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto send = [&](const char* dst) {
    net::BuildSpec spec;
    spec.flow = {ip("1.1.1.1"), ip(dst), 1, 2, 0};
    router.find("rt")->push(0, net::build_udp(pool, spec));
  };
  send("10.5.5.5");
  send("192.168.3.3");
  send("8.8.8.8");
  EXPECT_EQ(router.find_as<click::Counter>("a")->packets(), 1u);
  EXPECT_EQ(router.find_as<click::Counter>("b")->packets(), 1u);
  EXPECT_EQ(router.find_as<click::Counter>("c")->packets(), 1u);
}

TEST(IPLookupElement, ConfigErrors) {
  sim::EventQueue eq;
  net::PacketPool pool(8, 2048);
  std::string err;
  click::Router r1(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r1.configure("rt :: IPLookup;", &err));
  click::Router r2(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r2.configure("rt :: IPLookup(\"10.0.0.0/40 1\");", &err));
  click::Router r3(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r3.configure("rt :: IPLookup(\"10.0.0.0/8\");", &err));
}

// --- FlowCache ---------------------------------------------------------------

struct FlowCacheFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{256, 2048};
  click::Router router{click::Router::Context{&eq, &pool}};
  FlowCache* fc = nullptr;
  click::Queue* fast_out = nullptr;

  void SetUp() override {
    // miss path: cache [1] -> NAT chain -> back into cache input 1.
    std::string err;
    ASSERT_TRUE(router.configure(R"(
      fc :: FlowCache(1024);
      nat :: Nat(10.10.10.10);
      out :: Queue(64);
      fc [0] -> out;
      fc [1] -> nat -> [1] fc;
    )",
                                 &err))
        << err;
    ASSERT_TRUE(router.initialize(&err)) << err;
    fc = router.find_as<FlowCache>("fc");
    fast_out = router.find_as<click::Queue>("out");
  }

  void send(std::uint16_t sport) {
    net::BuildSpec spec;
    spec.flow = {0xc0a80101, 0x08080808, sport, 443, 0};
    fc->push(0, net::build_udp(pool, spec));
  }
};

TEST_F(FlowCacheFixture, FirstPacketSlowPathRestHitCache) {
  send(1000);  // miss -> slow path -> learned
  EXPECT_EQ(fc->core().misses(), 1u);
  EXPECT_EQ(fc->core().hits(), 0u);
  EXPECT_EQ(fc->core().size(), 1u);
  for (int i = 0; i < 9; ++i) send(1000);
  EXPECT_EQ(fc->core().hits(), 9u);
  EXPECT_EQ(fc->core().misses(), 1u);
  EXPECT_NEAR(fc->core().hit_rate(), 0.9, 1e-9);
  EXPECT_EQ(fast_out->size(), 10u);
}

TEST_F(FlowCacheFixture, CachedRewriteMatchesSlowPathRewrite) {
  send(2000);
  auto slow = fast_out->pull(0);
  ASSERT_TRUE(slow);
  auto slow_parsed = net::parse(*slow);
  ASSERT_TRUE(slow_parsed);
  ASSERT_EQ(slow_parsed->flow.src_ip, 0x0a0a0a0au) << "NAT on slow path";

  send(2000);  // hit: the cache must reproduce the same rewrite
  auto fast = fast_out->pull(0);
  ASSERT_TRUE(fast);
  auto fast_parsed = net::parse(*fast);
  ASSERT_TRUE(fast_parsed);
  EXPECT_EQ(fast_parsed->flow, slow_parsed->flow)
      << "fast path must produce the slow path's 5-tuple";
  EXPECT_TRUE(net::validate_ipv4_csum(*fast, *fast_parsed));
}

TEST_F(FlowCacheFixture, DistinctFlowsDistinctEntries) {
  for (std::uint16_t p = 1; p <= 20; ++p) send(p);
  EXPECT_EQ(fc->core().size(), 20u);
  EXPECT_EQ(fc->core().misses(), 20u);
}

TEST(FlowCacheCore, LruEvictionAtCapacity) {
  FlowCacheCore c(2);
  net::FlowKey f1{1, 2, 3, 4, 17}, f2{2, 2, 3, 4, 17}, f3{3, 2, 3, 4, 17};
  c.install(f1, {});
  c.install(f2, {});
  c.lookup(f1);  // f1 recent, f2 is LRU
  c.install(f3, {});
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_NE(c.lookup(f1), nullptr);
  EXPECT_EQ(c.lookup(f2), nullptr) << "LRU entry must be the one evicted";
}

}  // namespace
}  // namespace mdp::nf

// --- link schedulers -------------------------------------------------------------

namespace mdp::click {
namespace {

struct SchedFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{512, 2048};
  Router router{Router::Context{&eq, &pool}};

  net::PacketPtr pkt_of_size(std::size_t payload, std::uint8_t paint) {
    net::BuildSpec spec;
    spec.flow = {1, 2, 3, 4, 17};
    spec.payload_len = payload;
    auto p = net::build_udp(pool, spec);
    p->anno().paint = paint;
    return p;
  }
};

TEST_F(SchedFixture, PrioSchedServesLowInputFirst) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    hi :: Queue(16); lo :: Queue(16); ps :: PrioSched;
    hi -> [0] ps; lo -> [1] ps;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* hi = router.find_as<Queue>("hi");
  auto* lo = router.find_as<Queue>("lo");
  auto* ps = router.find("ps");
  lo->push(0, pkt_of_size(64, 1));
  hi->push(0, pkt_of_size(64, 0));
  auto first = ps->pull(0);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->anno().paint, 0) << "high-priority input served first";
  auto second = ps->pull(0);
  ASSERT_TRUE(second);
  EXPECT_EQ(second->anno().paint, 1);
  EXPECT_FALSE(ps->pull(0));
}

TEST_F(SchedFixture, DrrIsByteFairAcrossUnequalPacketSizes) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    big :: Queue(512); small :: Queue(512); drr :: DrrSched(500);
    big -> [0] drr; small -> [1] drr;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* big = router.find_as<Queue>("big");
  auto* small = router.find_as<Queue>("small");
  auto* drr = router.find_as<DrrSched>("drr");
  // Input 0: 1400B packets; input 1: 100B packets. Byte-fair service
  // means ~equal bytes, i.e. ~14x more small packets served.
  for (int i = 0; i < 200; ++i) big->push(0, pkt_of_size(1400 - 42, 0));
  for (int i = 0; i < 400; ++i) small->push(0, pkt_of_size(100 - 42, 1));
  std::uint64_t drained = 0;
  while (true) {
    auto p = drr->pull(0);
    if (!p) break;
    if (++drained >= 220) break;  // stop while both queues still backlogged
  }
  double bytes_big = static_cast<double>(drr->served_bytes(0));
  double bytes_small = static_cast<double>(drr->served_bytes(1));
  ASSERT_GT(bytes_big, 0);
  ASSERT_GT(bytes_small, 0);
  EXPECT_NEAR(bytes_big / bytes_small, 1.0, 0.25)
      << "DRR must serve roughly equal bytes per input";
  EXPECT_GT(drr->served(1), drr->served(0) * 8)
      << "packet counts skew toward the small-packet input";
}

TEST_F(SchedFixture, DrrDrainsFullyAndStops) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    a :: Queue(16); b :: Queue(16); drr :: DrrSched;
    a -> [0] drr; b -> [1] drr;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* a = router.find_as<Queue>("a");
  auto* b = router.find_as<Queue>("b");
  for (int i = 0; i < 5; ++i) {
    a->push(0, pkt_of_size(100, 0));
    b->push(0, pkt_of_size(100, 1));
  }
  auto* drr = router.find("drr");
  int got = 0;
  while (drr->pull(0)) ++got;
  EXPECT_EQ(got, 10);
  EXPECT_FALSE(drr->pull(0));
  EXPECT_EQ(pool.in_use(), 0u);
}

}  // namespace
}  // namespace mdp::click
