// Trace tests: span lifecycle and telescoping invariant, exemplar
// reservoir correctness + determinism, StatsRegistry snapshot/diff/merge,
// JSON and CSV exports, and the end-to-end integration property — every
// traced packet's stage durations sum exactly to its e2e latency.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/rng.hpp"
#include "stats/counters.hpp"
#include "trace/exemplar.hpp"
#include "trace/json.hpp"
#include "trace/registry.hpp"
#include "trace/span.hpp"
#include "trace/tracer.hpp"

namespace mdp::trace {
namespace {

// ---------------------------------------------------------------- spans ---

SpanRecord make_full_span() {
  SpanRecord s;
  s.active = true;
  s.ingress_ns = 1'000;
  s.dispatch_ns = 1'050;
  s.service_start_ns = 2'000;
  s.service_end_ns = 2'700;
  s.chain_done_ns = 2'700;
  s.merge_ns = 2'700;
  s.egress_ns = 3'100;
  return s;
}

TEST(Span, StagesTelescopeToE2e) {
  SpanRecord s = make_full_span();
  auto stages = s.stages();
  std::uint64_t sum = std::accumulate(stages.begin(), stages.end(), 0ull);
  EXPECT_EQ(sum, s.e2e_ns());
  EXPECT_EQ(s.e2e_ns(), 2'100u);
  EXPECT_EQ(s.stage_ns(Stage::kSchedule), 50u);
  EXPECT_EQ(s.stage_ns(Stage::kQueueWait), 950u);
  EXPECT_EQ(s.stage_ns(Stage::kService), 700u);
  EXPECT_EQ(s.stage_ns(Stage::kChain), 0u);
  EXPECT_EQ(s.stage_ns(Stage::kMerge), 0u);
  EXPECT_EQ(s.stage_ns(Stage::kReorder), 400u);
}

TEST(Span, TruncatedSpanStillTelescopes) {
  // A packet dropped mid-pipeline (or a stage never stamped) leaves later
  // boundaries at 0; hole-filling must keep stages non-negative and the
  // telescoping sum exact.
  SpanRecord s;
  s.active = true;
  s.ingress_ns = 500;
  s.dispatch_ns = 600;
  // service/chain/merge never stamped; egress stamped directly.
  s.egress_ns = 900;
  auto stages = s.stages();
  std::uint64_t sum = std::accumulate(stages.begin(), stages.end(), 0ull);
  EXPECT_EQ(sum, s.e2e_ns());
  EXPECT_EQ(s.e2e_ns(), 400u);
  EXPECT_EQ(s.stage_ns(Stage::kSchedule), 100u);
  EXPECT_EQ(s.stage_ns(Stage::kReorder), 300u);
}

TEST(Span, BackwardsBoundaryIsClamped) {
  SpanRecord s = make_full_span();
  s.merge_ns = 100;  // bogus: before chain_done
  auto b = s.boundaries();
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GE(b[i], b[i - 1]);
  auto stages = s.stages();
  std::uint64_t sum = std::accumulate(stages.begin(), stages.end(), 0ull);
  EXPECT_EQ(sum, s.e2e_ns());
}

TEST(Span, PropertyRandomBoundariesAlwaysTelescope) {
  // Seeded fuzz over every shape a span can arrive in: random boundary
  // values (including 0 = never stamped and out-of-order garbage) and
  // random truncation points. The invariant under test is the contract
  // every consumer (Tracer folding, ctrl stage evidence) leans on:
  // monotone effective boundaries, non-negative stages, and the stage sum
  // telescoping EXACTLY to e2e — for any input whatsoever.
  sim::Rng rng(0xface5eedULL);
  for (int trial = 0; trial < 10'000; ++trial) {
    SpanRecord s;
    s.active = true;
    std::uint64_t* fields[] = {&s.ingress_ns,     &s.dispatch_ns,
                               &s.service_start_ns, &s.service_end_ns,
                               &s.chain_done_ns,  &s.merge_ns,
                               &s.egress_ns};
    const std::size_t truncate_at = rng.next_u64() % 8;  // 7 = no truncation
    for (std::size_t i = 0; i < 7; ++i) {
      switch (rng.next_u64() % 4) {
        case 0: *fields[i] = 0; break;                       // never stamped
        case 1: *fields[i] = rng.next_u64() % 100; break;        // tiny / early
        case 2: *fields[i] = rng.next_u64() % 1'000'000; break;  // plausible
        default: *fields[i] = rng.next_u64(); break;             // garbage
      }
      if (i >= truncate_at) *fields[i] = 0;  // dropped mid-pipeline
    }
    auto b = s.boundaries();
    for (std::size_t i = 1; i < b.size(); ++i)
      ASSERT_GE(b[i], b[i - 1]) << "trial " << trial;
    auto stages = s.stages();
    const std::uint64_t sum =
        std::accumulate(stages.begin(), stages.end(), 0ull);
    ASSERT_EQ(sum, s.e2e_ns()) << "trial " << trial;
  }
}

TEST(Span, DefaultSpanIsInactiveAndZero) {
  SpanRecord s;
  EXPECT_FALSE(s.active);
  EXPECT_EQ(s.e2e_ns(), 0u);
  for (auto d : s.stages()) EXPECT_EQ(d, 0u);
}

TEST(Tracer, IgnoresInactiveSpansAndRespectsEnable) {
  Tracer tr;
  SpanRecord inactive = make_full_span();
  inactive.active = false;
  tr.on_egress(inactive);
  EXPECT_EQ(tr.traced(), 0u);

  tr.set_enabled(false);
  tr.on_egress(make_full_span());
  EXPECT_EQ(tr.traced(), 0u);

  tr.set_enabled(true);
  tr.on_egress(make_full_span());
  EXPECT_EQ(tr.traced(), 1u);
  EXPECT_EQ(tr.e2e().count(), 1u);
  EXPECT_EQ(tr.stage_histogram(Stage::kQueueWait).count(), 1u);
}

// ------------------------------------------------------------- counters ---

enum class TestCtr : std::uint8_t { kA, kB, kCount };

TEST(EnumCounters, IncGetReset) {
  stats::EnumCounters<TestCtr> c;
  EXPECT_EQ(c.get(TestCtr::kA), 0u);
  c.inc(TestCtr::kA);
  c.inc(TestCtr::kA, 4);
  c.inc(TestCtr::kB);
  EXPECT_EQ(c.get(TestCtr::kA), 5u);
  EXPECT_EQ(c.get(TestCtr::kB), 1u);
  c.reset();
  EXPECT_EQ(c.get(TestCtr::kA), 0u);
  EXPECT_EQ(stats::EnumCounters<TestCtr>::size(), 2u);
}

// ------------------------------------------------------------ reservoir ---

SpanRecord span_with_latency(std::uint64_t e2e) {
  SpanRecord s;
  s.active = true;
  s.ingress_ns = 1'000;
  s.egress_ns = 1'000 + e2e;
  return s;
}

TEST(Reservoir, SlowestMatchesSortReference) {
  ReservoirConfig cfg;
  cfg.slowest_capacity = 8;
  cfg.sample_capacity = 0;
  cfg.seed = 7;
  ExemplarReservoir r(cfg);
  sim::Rng rng(42);
  std::vector<std::uint64_t> lat;
  for (int i = 0; i < 5'000; ++i) {
    std::uint64_t v = rng.uniform_u64(10'000'000);
    lat.push_back(v);
    r.offer(span_with_latency(v));
  }
  std::sort(lat.rbegin(), lat.rend());
  auto slowest = r.slowest();
  ASSERT_EQ(slowest.size(), 8u);
  for (std::size_t i = 0; i < slowest.size(); ++i) {
    EXPECT_EQ(slowest[i].e2e_ns, lat[i]) << "rank " << i;
    if (i) {
      EXPECT_GE(slowest[i - 1].e2e_ns, slowest[i].e2e_ns);
    }
  }
  EXPECT_EQ(r.seen(), 5'000u);
}

TEST(Reservoir, UniformSampleIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    ReservoirConfig cfg;
    cfg.slowest_capacity = 0;
    cfg.sample_capacity = 16;
    cfg.seed = seed;
    ExemplarReservoir r(cfg);
    for (int i = 0; i < 20'000; ++i)
      r.offer(span_with_latency(static_cast<std::uint64_t>(i)));
    std::vector<std::uint64_t> ords;
    for (const auto& e : r.sample()) ords.push_back(e.ordinal);
    return ords;
  };
  auto a = run(3), b = run(3), c = run(4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  ASSERT_EQ(a.size(), 16u);
  // Algorithm R keeps distinct ordinals by construction.
  std::sort(a.begin(), a.end());
  EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end());
}

TEST(Reservoir, ResetRestoresDeterminism) {
  ReservoirConfig cfg;
  cfg.sample_capacity = 8;
  cfg.seed = 11;
  ExemplarReservoir r(cfg);
  auto feed = [&] {
    for (int i = 0; i < 1'000; ++i)
      r.offer(span_with_latency(static_cast<std::uint64_t>(i * 3)));
    std::vector<std::uint64_t> ords;
    for (const auto& e : r.sample()) ords.push_back(e.ordinal);
    return ords;
  };
  auto first = feed();
  r.reset();
  EXPECT_EQ(r.seen(), 0u);
  EXPECT_EQ(feed(), first);
}

// ------------------------------------------------------------- registry ---

TEST(Registry, SnapshotCollectsEverySourceKind) {
  std::uint64_t ctr = 7;
  stats::CounterSet set;
  set.inc("x", 3);
  set.inc("y");
  stats::LatencyHistogram h;
  h.record(100);
  h.record(300);
  stats::TimeSeries ts(1000, "depth");
  ts.observe(100, 4);

  StatsRegistry reg;
  reg.add_counter("plain", [&] { return ctr; });
  reg.add_gauge("g", [] { return 2.5; });
  reg.add_counter_set("pre", &set);
  reg.add_histogram("lat", &h);
  reg.add_time_series(&ts);
  EXPECT_EQ(reg.num_sources(), 5u);

  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("plain"), 7u);
  EXPECT_EQ(s.counters.at("pre.x"), 3u);
  EXPECT_EQ(s.counters.at("pre.y"), 1u);
  EXPECT_DOUBLE_EQ(s.gauges.at("g"), 2.5);
  EXPECT_EQ(s.histograms.at("lat").count(), 2u);
  ASSERT_EQ(s.series.size(), 1u);
  EXPECT_EQ(s.series[0].name, "depth");

  // Live sources: a later snapshot sees subsequent increments.
  ctr = 9;
  set.inc("x");
  EXPECT_EQ(reg.snapshot().counters.at("plain"), 9u);
  EXPECT_EQ(reg.snapshot().counters.at("pre.x"), 4u);
}

TEST(Registry, DiffSinceGivesIntervalView) {
  std::uint64_t ctr = 0;
  stats::LatencyHistogram h;
  StatsRegistry reg;
  reg.add_counter("c", [&] { return ctr; });
  reg.add_gauge("g", [&] { return static_cast<double>(ctr); });
  reg.add_histogram("h", &h);

  ctr = 5;
  h.record(100);
  Snapshot t0 = reg.snapshot();
  ctr = 12;
  h.record(100);
  h.record(900);
  Snapshot t1 = reg.snapshot();

  Snapshot d = t1.diff_since(t0);
  EXPECT_EQ(d.counters.at("c"), 7u);
  EXPECT_DOUBLE_EQ(d.gauges.at("g"), 12.0);  // gauges keep current value
  EXPECT_EQ(d.histograms.at("h").count(), 2u);
  EXPECT_EQ(d.histograms.at("h").sum(), h.sum() - 100);
}

TEST(Registry, MergeCombinesShards) {
  stats::LatencyHistogram ha, hb;
  ha.record(100);
  hb.record(200);
  hb.record(300);
  std::uint64_t ca = 2, cb = 5;

  StatsRegistry ra, rb;
  ra.add_counter("c", [&] { return ca; });
  ra.add_histogram("h", &ha);
  ra.add_gauge("only_a", [] { return 1.0; });
  rb.add_counter("c", [&] { return cb; });
  rb.add_histogram("h", &hb);
  rb.add_gauge("only_b", [] { return 2.0; });

  Snapshot s = ra.snapshot();
  s.merge(rb.snapshot());
  EXPECT_EQ(s.counters.at("c"), 7u);
  EXPECT_EQ(s.histograms.at("h").count(), 3u);
  EXPECT_EQ(s.histograms.at("h").sum(), 600u);
  EXPECT_DOUBLE_EQ(s.gauges.at("only_a"), 1.0);
  EXPECT_DOUBLE_EQ(s.gauges.at("only_b"), 2.0);
}

// ----------------------------------------------------------- histograms ---

TEST(HistogramExt, SumTracksRecordedTotal) {
  stats::LatencyHistogram h;
  h.record(100);
  h.record_n(50, 3);
  EXPECT_EQ(h.sum(), 250u);
}

TEST(HistogramExt, SubtractIsIntervalOfPrefix) {
  sim::Rng rng(9);
  stats::LatencyHistogram h, later_only;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 20'000; ++i)
    vals.push_back(rng.uniform_u64(5'000'000) + 1);
  for (int i = 0; i < 8'000; ++i) h.record(vals[i]);
  stats::LatencyHistogram earlier = h;  // prefix snapshot
  for (int i = 8'000; i < 20'000; ++i) {
    h.record(vals[i]);
    later_only.record(vals[i]);
  }
  stats::LatencyHistogram d = h;
  d.subtract(earlier);
  EXPECT_EQ(d.count(), later_only.count());
  EXPECT_EQ(d.sum(), later_only.sum());
  for (double q : {0.5, 0.9, 0.99})
    EXPECT_EQ(d.quantile(q), later_only.quantile(q)) << q;
}

// ----------------------------------------------------------------- json ---

TEST(Json, WriterParserRoundTrip) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("hello \"world\"\n\t\x01");
  w.key("num").value(std::uint64_t{18'000'000'000'000'000'000ull});
  w.key("neg").value(std::int64_t{-42});
  w.key("pi").value(3.25);
  w.key("yes").value(true);
  w.key("no").value(false);
  w.key("nothing").null();
  w.key("arr").begin_array();
  w.value(1).value(2).value(3);
  w.begin_object();
  w.key("nested").value("x");
  w.end_object();
  w.end_array();
  w.key("spliced").raw("{\"a\":1}");
  w.end_object();

  auto v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("name")->as_string(), "hello \"world\"\n\t\x01");
  EXPECT_EQ(v->find("neg")->as_double(), -42.0);
  EXPECT_DOUBLE_EQ(v->find("pi")->as_double(), 3.25);
  EXPECT_TRUE(v->find("yes")->as_bool());
  EXPECT_FALSE(v->find("no")->as_bool());
  EXPECT_EQ(v->find("nothing")->type(), JsonValue::Type::kNull);
  ASSERT_TRUE(v->find("arr")->is_array());
  EXPECT_EQ(v->find("arr")->items().size(), 4u);
  EXPECT_EQ(v->find("arr")->items()[2].as_u64(), 3u);
  EXPECT_EQ(v->find_path({"spliced", "a"})->as_u64(), 1u);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, ParserRejectsMalformed) {
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,2,]").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  EXPECT_TRUE(JsonValue::parse(" {\"a\": [1, 2]} ").has_value());
}

TEST(Json, UnicodeEscapeDecodes) {
  auto v = JsonValue::parse("\"a\\u00e9b\"");  // é
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\xc3\xa9" "b");
}

// -------------------------------------------------------------- exports ---

Snapshot sample_snapshot() {
  static std::uint64_t ctr = 41;
  static stats::LatencyHistogram h;
  if (h.count() == 0) {
    h.record(1'000);
    h.record(3'000);
  }
  StatsRegistry reg;
  reg.add_counter("reqs", [] { return ctr; });
  reg.add_gauge("depth", [] { return 1.5; });
  reg.add_histogram("lat", &h);
  return reg.snapshot();
}

TEST(Exports, SnapshotJsonParsesAndRoundTrips) {
  Snapshot s = sample_snapshot();
  auto v = JsonValue::parse(s.to_json());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find_path({"counters", "reqs"})->as_u64(), 41u);
  EXPECT_DOUBLE_EQ(v->find_path({"gauges", "depth"})->as_double(), 1.5);
  const JsonValue* lat = v->find_path({"histograms", "lat"});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_u64(), 2u);
  EXPECT_EQ(lat->find("sum_ns")->as_u64(), 4'000u);
}

TEST(Exports, SnapshotCsvHasHeaderAndRows) {
  Snapshot s = sample_snapshot();
  std::string csv = s.to_csv();
  EXPECT_EQ(csv.rfind("type,name,value,count,sum_ns", 0), 0u)
      << "header must be the first line";
  EXPECT_NE(csv.find("counter,reqs,41"), std::string::npos);
  EXPECT_NE(csv.find("gauge,depth,1.5"), std::string::npos);
  EXPECT_NE(csv.find("hist,lat,"), std::string::npos);
  // One header + one line per metric.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

// ---------------------------------------------------------- integration ---

TEST(Integration, StageLatenciesSumToEndToEnd) {
  harness::ScenarioConfig cfg;
  cfg.policy = "adaptive";
  cfg.num_paths = 3;
  cfg.load = 0.6;
  cfg.packets = 30'000;
  cfg.warmup_packets = 0;  // trace everything: traced must equal egressed
  cfg.interference = true;
  cfg.interference_cfg.duty_cycle = 0.1;
  cfg.seed = 5;
  cfg.trace = true;
  auto res = harness::run_scenario(cfg);
  ASSERT_TRUE(res.trace.has_value());
  const TraceReport& tr = *res.trace;

  EXPECT_EQ(tr.traced, res.egressed);
  EXPECT_GT(tr.traced, 0u);

  // The telescoping invariant, exemplar by exemplar: stage durations sum
  // EXACTLY (0 ns error) to the end-to-end latency.
  ASSERT_GE(tr.slowest.size(), 16u);
  ASSERT_GE(tr.sampled.size(), 16u);
  auto check = [](const Exemplar& ex) {
    auto stages = ex.span.stages();
    std::uint64_t sum =
        std::accumulate(stages.begin(), stages.end(), 0ull);
    EXPECT_EQ(sum, ex.e2e_ns);
    EXPECT_EQ(ex.span.e2e_ns(), ex.e2e_ns);
  };
  for (const auto& ex : tr.slowest) check(ex);
  for (const auto& ex : tr.sampled) check(ex);

  // Aggregate form of the same invariant: per-stage histogram sums add up
  // to the e2e histogram sum, and counts line up.
  std::uint64_t stage_total = 0;
  for (const auto& h : tr.stage_hist) {
    EXPECT_EQ(h.count(), tr.traced);
    stage_total += h.sum();
  }
  EXPECT_EQ(stage_total, tr.e2e.sum());
  EXPECT_EQ(tr.e2e.count(), tr.traced);

  // PathMonitor inflight accounting must never have gone negative.
  EXPECT_EQ(res.stats.counters.at("paths.inflight_underflows"), 0u);
  // Registry view agrees with the report.
  EXPECT_EQ(res.stats.counters.at("trace.traced"), tr.traced);
  EXPECT_EQ(res.stats.counters.at("dp.egress"), res.egressed);
}

TEST(Integration, ExemplarsAreDeterministicAcrossRuns) {
  auto run = [] {
    harness::ScenarioConfig cfg;
    cfg.policy = "jsq";
    cfg.num_paths = 2;
    cfg.load = 0.5;
    cfg.packets = 15'000;
    cfg.warmup_packets = 0;
    cfg.seed = 12;
    cfg.trace = true;
    return harness::run_scenario(cfg);
  };
  auto a = run(), b = run();
  ASSERT_TRUE(a.trace && b.trace);
  ASSERT_EQ(a.trace->slowest.size(), b.trace->slowest.size());
  for (std::size_t i = 0; i < a.trace->slowest.size(); ++i) {
    EXPECT_EQ(a.trace->slowest[i].ordinal, b.trace->slowest[i].ordinal);
    EXPECT_EQ(a.trace->slowest[i].e2e_ns, b.trace->slowest[i].e2e_ns);
  }
  ASSERT_EQ(a.trace->sampled.size(), b.trace->sampled.size());
  for (std::size_t i = 0; i < a.trace->sampled.size(); ++i)
    EXPECT_EQ(a.trace->sampled[i].ordinal, b.trace->sampled[i].ordinal);
}

TEST(Integration, TracingDisabledLeavesNoTrace) {
  harness::ScenarioConfig cfg;
  cfg.packets = 10'000;
  cfg.warmup_packets = 1'000;
  cfg.seed = 3;
  cfg.trace = false;
  auto res = harness::run_scenario(cfg);
  EXPECT_FALSE(res.trace.has_value());
  EXPECT_EQ(res.stats.counters.count("trace.traced"), 0u);
  // The rest of the snapshot is still populated.
  EXPECT_GT(res.stats.counters.at("dp.ingress"), 0u);
  EXPECT_EQ(res.stats.counters.at("paths.inflight_underflows"), 0u);
}

TEST(Integration, RunReportJsonIsWellFormed) {
  harness::ScenarioConfig cfg;
  cfg.policy = "red2";
  cfg.num_paths = 2;
  cfg.load = 0.4;
  cfg.packets = 12'000;
  cfg.warmup_packets = 1'000;
  cfg.seed = 8;
  cfg.trace = true;
  auto res = harness::run_scenario(cfg);
  std::string doc = harness::scenario_report_json(cfg, res);

  auto v = JsonValue::parse(doc);
  ASSERT_TRUE(v.has_value()) << doc.substr(0, 200);
  EXPECT_EQ(v->find("schema")->as_string(), "mdp.run_report.v2");
  EXPECT_EQ(v->find_path({"config", "policy"})->as_string(), "red2");
  EXPECT_EQ(v->find_path({"metrics", "egressed"})->as_u64(), res.egressed);
  // Per-stage histograms present in the snapshot section.
  for (std::size_t i = 0; i < kNumStages; ++i) {
    std::string key = std::string("trace.stage.") + stage_name(stage_at(i));
    EXPECT_NE(v->find_path({"stats", "histograms", key}), nullptr) << key;
  }
  // >= 16 tail exemplars, each with a full stage breakdown.
  const JsonValue* slowest = v->find_path({"trace", "exemplars", "slowest"});
  ASSERT_NE(slowest, nullptr);
  ASSERT_TRUE(slowest->is_array());
  EXPECT_GE(slowest->items().size(), 16u);
  for (const auto& ex : slowest->items()) {
    const JsonValue* stages = ex.find("stages_ns");
    ASSERT_NE(stages, nullptr);
    std::uint64_t sum = 0;
    for (const auto& [name, val] : stages->members()) sum += val.as_u64();
    EXPECT_EQ(sum, ex.find("e2e_ns")->as_u64());
  }
}

}  // namespace
}  // namespace mdp::trace
