// Unit + property tests for the packet substrate: buffer geometry,
// headroom/tailroom arithmetic, pool recycling, and clone fidelity.
#include <gtest/gtest.h>

#include <cstring>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/rng.hpp"

namespace mdp::net {
namespace {

TEST(Packet, FreshPacketHasDefaultHeadroomAndZeroLength) {
  PacketPool pool(4, 2048);
  auto pkt = pool.alloc();
  ASSERT_TRUE(pkt);
  EXPECT_EQ(pkt->length(), 0u);
  EXPECT_EQ(pkt->headroom(), Packet::kDefaultHeadroom);
  EXPECT_EQ(pkt->tailroom(), 2048 - Packet::kDefaultHeadroom);
  EXPECT_EQ(pkt->capacity(), 2048u);
}

TEST(Packet, PushConsumesHeadroom) {
  PacketPool pool(4, 2048);
  auto pkt = pool.alloc();
  ASSERT_NE(pkt->push(14), nullptr);
  EXPECT_EQ(pkt->length(), 14u);
  EXPECT_EQ(pkt->headroom(), Packet::kDefaultHeadroom - 14);
  // Exhaust the headroom.
  EXPECT_NE(pkt->push(pkt->headroom()), nullptr);
  EXPECT_EQ(pkt->headroom(), 0u);
  EXPECT_EQ(pkt->push(1), nullptr) << "push beyond headroom must fail";
}

TEST(Packet, PullStripsFront) {
  PacketPool pool(4, 2048);
  auto pkt = pool.alloc();
  ASSERT_TRUE(pkt->set_length(100));
  pkt->data()[0] = std::byte{0xaa};
  pkt->data()[20] = std::byte{0xbb};
  ASSERT_NE(pkt->pull(20), nullptr);
  EXPECT_EQ(pkt->length(), 80u);
  EXPECT_EQ(pkt->data()[0], std::byte{0xbb});
  EXPECT_EQ(pkt->pull(81), nullptr) << "pull beyond length must fail";
  EXPECT_EQ(pkt->length(), 80u) << "failed pull must not change length";
}

TEST(Packet, PutAndTrimAdjustTail) {
  PacketPool pool(4, 256);
  auto pkt = pool.alloc();
  std::byte* tail = pkt->put(64);
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(pkt->length(), 64u);
  EXPECT_TRUE(pkt->trim(32));
  EXPECT_EQ(pkt->length(), 32u);
  EXPECT_FALSE(pkt->trim(64));
  std::byte* overflow = pkt->put(pkt->tailroom() + 1);
  EXPECT_EQ(overflow, nullptr);
}

TEST(Packet, PushPullRoundTripPreservesBytes) {
  PacketPool pool(4, 2048);
  auto pkt = pool.alloc();
  ASSERT_TRUE(pkt->set_length(64));
  for (std::size_t i = 0; i < 64; ++i)
    pkt->data()[i] = static_cast<std::byte>(i);
  ASSERT_NE(pkt->pull(14), nullptr);
  ASSERT_NE(pkt->push(14), nullptr);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(pkt->data()[i], static_cast<std::byte>(i)) << "at " << i;
}

TEST(Packet, AssignReplacesContents) {
  PacketPool pool(4, 2048);
  auto pkt = pool.alloc();
  std::vector<std::byte> src(100);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i * 3);
  ASSERT_TRUE(pkt->assign(src));
  EXPECT_EQ(pkt->length(), 100u);
  EXPECT_EQ(std::memcmp(pkt->data(), src.data(), 100), 0);
}

TEST(Packet, AssignTooLargeFails) {
  PacketPool pool(4, 256);
  auto pkt = pool.alloc();
  std::vector<std::byte> big(300);
  EXPECT_FALSE(pkt->assign(big));
}

TEST(PacketPool, AllocRecycleRestoresAvailability) {
  PacketPool pool(8, 512, /*allow_growth=*/false);
  EXPECT_EQ(pool.available(), 8u);
  {
    auto a = pool.alloc();
    auto b = pool.alloc();
    EXPECT_EQ(pool.in_use(), 2u);
  }
  EXPECT_EQ(pool.available(), 8u) << "handles must recycle on destruction";
  EXPECT_EQ(pool.total_allocs(), 2u);
  EXPECT_EQ(pool.total_recycles(), 2u);
}

TEST(PacketPool, ExhaustionWithoutGrowthReturnsNull) {
  PacketPool pool(2, 512, /*allow_growth=*/false);
  auto a = pool.alloc();
  auto b = pool.alloc();
  auto c = pool.alloc();
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_FALSE(c);
}

TEST(PacketPool, GrowthDoublesCapacity) {
  PacketPool pool(2, 512, /*allow_growth=*/true);
  std::vector<PacketPtr> held;
  for (int i = 0; i < 10; ++i) {
    auto p = pool.alloc();
    ASSERT_TRUE(p);
    held.push_back(std::move(p));
  }
  EXPECT_GE(pool.capacity(), 10u);
}

TEST(PacketPool, CloneCopiesPayloadAndAnnotations) {
  PacketPool pool(4, 2048);
  auto orig = pool.alloc();
  ASSERT_TRUE(orig->set_length(40));
  for (std::size_t i = 0; i < 40; ++i)
    orig->data()[i] = static_cast<std::byte>(0x40 + i);
  orig->anno().flow_id = 77;
  orig->anno().seq = 123456;
  orig->anno().traffic_class = TrafficClass::kLatencyCritical;

  auto copy = pool.clone(*orig);
  ASSERT_TRUE(copy);
  EXPECT_EQ(copy->length(), 40u);
  EXPECT_EQ(std::memcmp(copy->data(), orig->data(), 40), 0);
  EXPECT_EQ(copy->anno().flow_id, 77u);
  EXPECT_EQ(copy->anno().seq, 123456u);
  EXPECT_EQ(copy->anno().traffic_class, TrafficClass::kLatencyCritical);

  // Mutating the copy must not touch the original.
  copy->data()[0] = std::byte{0x00};
  EXPECT_EQ(orig->data()[0], std::byte{0x40});
}

TEST(PacketPool, ResetClearsAnnotationsOnReuse) {
  PacketPool pool(1, 512, /*allow_growth=*/false);
  {
    auto p = pool.alloc();
    p->anno().flow_id = 9;
    p->anno().seq = 9;
    p->set_length(100);
  }
  auto q = pool.alloc();
  EXPECT_EQ(q->anno().flow_id, 0u);
  EXPECT_EQ(q->anno().seq, 0u);
  EXPECT_EQ(q->length(), 0u);
}

// Property: arbitrary sequences of geometry operations never violate
// headroom + length + tailroom == capacity, and never corrupt a sentinel
// byte pattern written to the live payload region.
class PacketGeometryProperty : public ::testing::TestWithParam<int> {};

TEST_P(PacketGeometryProperty, InvariantsHoldUnderRandomOps) {
  sim::Rng rng(GetParam());
  PacketPool pool(2, 1024);
  auto pkt = pool.alloc();
  ASSERT_TRUE(pkt->set_length(64));

  for (int step = 0; step < 2000; ++step) {
    std::size_t op = rng.uniform_u64(5);
    std::size_t n = rng.uniform_u64(64) + 1;
    switch (op) {
      case 0:
        pkt->push(n);
        break;
      case 1:
        pkt->pull(n);
        break;
      case 2:
        pkt->put(n);
        break;
      case 3:
        pkt->trim(n);
        break;
      case 4:
        pkt->reset();
        pkt->set_length(rng.uniform_u64(100));
        break;
    }
    ASSERT_EQ(pkt->headroom() + pkt->length() + pkt->tailroom(),
              pkt->capacity())
        << "geometry broken at step " << step;
    ASSERT_LE(pkt->length(), pkt->capacity());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketGeometryProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace mdp::net
