// NAT tests: binding stability, port uniqueness, reverse lookups, LRU and
// idle expiry, and in-place packet rewriting with valid checksums.
#include <gtest/gtest.h>

#include <set>

#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "nf/nat.hpp"

namespace mdp::nf {
namespace {

net::FlowKey flow_n(std::uint32_t n) {
  return net::FlowKey{0xc0a80000 + n, 0x08080808,
                      static_cast<std::uint16_t>(1000 + n % 50000), 443,
                      net::kIpProtoTcp};
}

TEST(NatTable, BindingIsStablePerFlow) {
  NatTable t;
  auto p1 = t.translate(flow_n(1), 100);
  auto p2 = t.translate(flow_n(1), 200);
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(*p1, *p2);
  EXPECT_EQ(t.size(), 1u);
}

TEST(NatTable, DistinctFlowsGetDistinctPorts) {
  NatTable t;
  std::set<std::uint16_t> ports;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    auto p = t.translate(flow_n(i), i);
    ASSERT_TRUE(p);
    EXPECT_TRUE(ports.insert(*p).second) << "port " << *p << " reused";
  }
}

TEST(NatTable, PortsComeFromConfiguredRange) {
  NatConfig cfg;
  cfg.port_lo = 20000;
  cfg.port_hi = 20010;
  NatTable t(cfg);
  for (std::uint32_t i = 0; i < 11; ++i) {
    auto p = t.translate(flow_n(i), i);
    ASSERT_TRUE(p);
    EXPECT_GE(*p, 20000);
    EXPECT_LE(*p, 20010);
  }
}

TEST(NatTable, ReverseLookupFindsOwner) {
  NatTable t;
  auto p = t.translate(flow_n(7), 0);
  ASSERT_TRUE(p);
  auto owner = t.reverse(*p);
  ASSERT_TRUE(owner);
  EXPECT_EQ(*owner, flow_n(7));
  EXPECT_FALSE(t.reverse(1).has_value());
}

TEST(NatTable, LruEvictionWhenPortsExhausted) {
  NatConfig cfg;
  cfg.port_lo = 30000;
  cfg.port_hi = 30002;  // 3 ports
  NatTable t(cfg);
  ASSERT_TRUE(t.translate(flow_n(0), 0));
  ASSERT_TRUE(t.translate(flow_n(1), 1));
  ASSERT_TRUE(t.translate(flow_n(2), 2));
  // Refresh flow 0 so flow 1 is the LRU.
  ASSERT_TRUE(t.translate(flow_n(0), 3));
  auto p = t.translate(flow_n(3), 4);
  ASSERT_TRUE(p) << "eviction must free a port";
  EXPECT_EQ(t.evictions(), 1u);
  // Flow 1 (the LRU) must be gone; flow 0 must survive.
  auto p0 = t.translate(flow_n(0), 5);
  ASSERT_TRUE(p0);
  EXPECT_EQ(t.size(), 3u);
}

TEST(NatTable, IdleExpiryRemovesOldBindings) {
  NatConfig cfg;
  cfg.idle_timeout_ns = 1000;
  NatTable t(cfg);
  t.translate(flow_n(0), 0);
  t.translate(flow_n(1), 1500);
  EXPECT_EQ(t.expire(2000), 1u) << "only flow 0 is older than the timeout";
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.expire(10'000), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(NatTable, MaxEntriesTriggersEviction) {
  NatConfig cfg;
  cfg.max_entries = 4;
  NatTable t(cfg);
  for (std::uint32_t i = 0; i < 10; ++i)
    ASSERT_TRUE(t.translate(flow_n(i), i));
  EXPECT_LE(t.size(), 4u);
}

struct NatElementFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{64, 2048};
  click::Router router{click::Router::Context{&eq, &pool}};
  click::Counter* out = nullptr;
  Nat* nat = nullptr;

  void SetUp() override {
    std::string err;
    ASSERT_TRUE(router.configure(
        "nat :: Nat(10.10.10.10); chk :: CheckIPHeader; out :: Counter; "
        "nat -> chk -> out -> Discard;",
        &err))
        << err;
    ASSERT_TRUE(router.initialize(&err)) << err;
    out = router.find_as<click::Counter>("out");
    nat = router.find_as<Nat>("nat");
  }
};

TEST_F(NatElementFixture, RewritesSourceAndKeepsChecksumsValid) {
  net::BuildSpec spec;
  spec.flow = {0xc0a80101, 0x08080808, 3333, 443, 0};
  auto pkt = net::build_tcp(pool, spec);

  // Intercept at the egress: reconfigure is complex, so push and inspect
  // via the NAT table + the CheckIPHeader pass-through count.
  nat->push(0, std::move(pkt));
  EXPECT_EQ(out->packets(), 1u)
      << "rewritten packet must still pass IPv4 header validation";
  EXPECT_EQ(nat->translated(), 1u);

  auto parsed_flow = spec.flow;
  parsed_flow.protocol = net::kIpProtoTcp;
  auto port = nat->table().translate(parsed_flow, 0);
  ASSERT_TRUE(port);
  auto rev = nat->table().reverse(*port);
  ASSERT_TRUE(rev);
  EXPECT_EQ(rev->src_ip, 0xc0a80101u);
}

TEST_F(NatElementFixture, TcpChecksumStillVerifies) {
  net::BuildSpec spec;
  spec.flow = {0xc0a80102, 0x08080808, 4444, 443, 0};
  spec.payload_len = 33;
  auto pkt = net::build_tcp(pool, spec);
  // Snapshot before push via a side channel: run the NAT inline.
  net::Packet* raw = pkt.get();
  nat->push(0, std::move(pkt));
  // The packet has been recycled by Discard; re-do the rewrite on a fresh
  // packet and verify L4 checksum manually instead.
  auto pkt2 = net::build_tcp(pool, spec);
  raw = pkt2.get();
  (void)raw;
  // Manually apply a NAT-equivalent rewrite path: use a second NAT element
  // wired into a capture sink.
  click::Router r2(click::Router::Context{&eq, &pool});
  std::string err;
  ASSERT_TRUE(r2.configure("n :: Nat(10.10.10.10); q :: Queue(4); n -> q;",
                           &err))
      << err;
  ASSERT_TRUE(r2.initialize(&err)) << err;
  r2.find("n")->push(0, std::move(pkt2));
  auto got = r2.find_as<click::Queue>("q")->pull(0);
  ASSERT_TRUE(got);
  auto parsed = net::parse(*got);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->flow.src_ip, 0x0a0a0a0au) << "src must be external IP";
  // Verify the TCP checksum over the pseudo header folds to zero.
  net::Ipv4View ip(got->data() + parsed->l3_offset);
  std::uint16_t l4_len =
      static_cast<std::uint16_t>(ip.total_length() - ip.header_len());
  std::uint32_t sum = net::pseudo_header_sum(ip.src(), ip.dst(),
                                             ip.protocol(), l4_len);
  sum = net::checksum_partial(got->data() + parsed->l4_offset, l4_len, sum);
  EXPECT_EQ(net::checksum_fold(sum), 0);
}

TEST_F(NatElementFixture, NonIpGoesToFailPortOrDrops) {
  auto junk = pool.alloc();
  junk->set_length(30);
  std::size_t in_use = pool.in_use();
  nat->push(0, std::move(junk));
  EXPECT_EQ(nat->failed(), 1u);
  EXPECT_EQ(pool.in_use(), in_use - 1) << "untranslatable packet recycles";
}

TEST(NatElement, ConfigRejectsBadArgs) {
  sim::EventQueue eq;
  net::PacketPool pool(8, 2048);
  click::Router r(click::Router::Context{&eq, &pool});
  std::string err;
  EXPECT_FALSE(r.configure("n :: Nat(notanip);", &err));
  click::Router r2(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r2.configure("n :: Nat(10.0.0.1, 500);", &err));
  click::Router r3(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r3.configure("n :: Nat(10.0.0.1, 9000, 100);", &err));
}

}  // namespace
}  // namespace mdp::nf
