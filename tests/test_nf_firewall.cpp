// Firewall tests: rule parsing, first-match semantics, engine equivalence
// (linear vs source-prefix trie), and element-level port behaviour.
#include <gtest/gtest.h>

#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "nf/chain.hpp"
#include "nf/firewall.hpp"
#include "sim/rng.hpp"

namespace mdp::nf {
namespace {

net::FlowKey mk(const char* src, const char* dst, std::uint16_t sport,
                std::uint16_t dport, std::uint8_t proto) {
  net::FlowKey f;
  EXPECT_TRUE(net::ipv4_from_string(src, &f.src_ip));
  EXPECT_TRUE(net::ipv4_from_string(dst, &f.dst_ip));
  f.src_port = sport;
  f.dst_port = dport;
  f.protocol = proto;
  return f;
}

TEST(FwRule, ParsesFullSyntax) {
  std::string err;
  auto r = FwRule::parse(
      "deny proto tcp src 10.0.0.0/8 dst 192.168.1.1 sport 1000-2000 "
      "dport 80",
      &err);
  ASSERT_TRUE(r.has_value()) << err;
  EXPECT_EQ(r->action, FwAction::kDeny);
  EXPECT_EQ(r->protocol, net::kIpProtoTcp);
  EXPECT_EQ(r->src.len, 8);
  EXPECT_EQ(r->dst.len, 32);
  EXPECT_EQ(r->sport.lo, 1000);
  EXPECT_EQ(r->sport.hi, 2000);
  EXPECT_EQ(r->dport.lo, 80);
  EXPECT_EQ(r->dport.hi, 80);
}

TEST(FwRule, ParseRejectsGarbage) {
  std::string err;
  EXPECT_FALSE(FwRule::parse("", &err).has_value());
  EXPECT_FALSE(FwRule::parse("permit src any", &err).has_value());
  EXPECT_FALSE(FwRule::parse("allow proto icmpish", &err).has_value());
  EXPECT_FALSE(FwRule::parse("allow src 1.2.3.4/40", &err).has_value());
  EXPECT_FALSE(FwRule::parse("allow sport 9-2", &err).has_value());
  EXPECT_FALSE(FwRule::parse("allow dport", &err).has_value());
}

TEST(FwRule, PrefixMatchSemantics) {
  std::string err;
  auto r = FwRule::parse("deny src 10.1.0.0/16", &err);
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->matches(mk("10.1.2.3", "1.1.1.1", 1, 2, 17)));
  EXPECT_FALSE(r->matches(mk("10.2.2.3", "1.1.1.1", 1, 2, 17)));
}

TEST(FirewallTable, FirstMatchWinsInOrder) {
  FirewallTable t;
  std::string err;
  t.add_rule(*FwRule::parse("deny src 10.0.0.0/8", &err));
  t.add_rule(*FwRule::parse("allow src 10.1.0.0/16", &err));
  // The /16 allow is shadowed by the earlier /8 deny.
  std::size_t idx;
  EXPECT_EQ(t.decide(mk("10.1.1.1", "2.2.2.2", 5, 6, 6), &idx),
            FwAction::kDeny);
  EXPECT_EQ(idx, 0u);
}

TEST(FirewallTable, DefaultActionAppliesWhenNoMatch) {
  FirewallTable t;
  std::string err;
  t.add_rule(*FwRule::parse("deny src 10.0.0.0/8", &err));
  std::size_t idx;
  EXPECT_EQ(t.decide(mk("11.0.0.1", "2.2.2.2", 5, 6, 6), &idx),
            FwAction::kAllow);
  EXPECT_EQ(idx, t.num_rules());
  t.set_default(FwAction::kDeny);
  EXPECT_EQ(t.decide(mk("11.0.0.1", "2.2.2.2", 5, 6, 6)), FwAction::kDeny);
}

TEST(FirewallTable, TrieEngineMatchesLinearOnRandomInputs) {
  // Property: both engines agree on every decision and fired rule index.
  sim::Rng rng(2024);
  FirewallTable linear, trie;
  trie.set_engine(FirewallTable::Engine::kSrcTrie);
  std::string err;
  for (int i = 0; i < 64; ++i) {
    char buf[128];
    std::uint32_t a = static_cast<std::uint32_t>(rng.uniform_u64(256));
    std::uint32_t b = static_cast<std::uint32_t>(rng.uniform_u64(256));
    int len = static_cast<int>(rng.uniform_u64(4)) * 8;  // 0,8,16,24
    std::uint16_t port = static_cast<std::uint16_t>(rng.uniform_u64(1024));
    std::snprintf(buf, sizeof(buf), "%s src %u.%u.0.0/%d dport %u-%u",
                  rng.bernoulli(0.5) ? "allow" : "deny", a, b,
                  len == 0 ? 8 : len, port, port + 200);
    auto rule = FwRule::parse(buf, &err);
    ASSERT_TRUE(rule) << buf << ": " << err;
    linear.add_rule(*rule);
    trie.add_rule(*rule);
  }
  for (int i = 0; i < 20'000; ++i) {
    net::FlowKey f;
    f.src_ip = static_cast<std::uint32_t>(rng.next_u64());
    // Bias half the flows into the rule space for match coverage.
    if (rng.bernoulli(0.5)) f.src_ip &= 0xffff0000;
    f.dst_ip = static_cast<std::uint32_t>(rng.next_u64());
    f.src_port = static_cast<std::uint16_t>(rng.uniform_u64(65536));
    f.dst_port = static_cast<std::uint16_t>(rng.uniform_u64(2048));
    f.protocol = rng.bernoulli(0.5) ? net::kIpProtoTcp : net::kIpProtoUdp;
    std::size_t il = 0, it = 0;
    FwAction al = linear.decide(f, &il);
    FwAction at = trie.decide(f, &it);
    ASSERT_EQ(al, at) << "engine disagreement for " << f.to_string();
    ASSERT_EQ(il, it) << "different rule fired for " << f.to_string();
  }
}

TEST(FirewallElement, RoutesAllowAndDenyPorts) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    fw :: Firewall(default allow, deny src 10.9.0.0/16);
    ok :: Counter; bad :: Counter;
    fw [0] -> ok -> Discard; fw [1] -> bad -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;

  auto send = [&](const char* src) {
    net::BuildSpec spec;
    EXPECT_TRUE(net::ipv4_from_string(src, &spec.flow.src_ip));
    spec.flow.dst_ip = 0x0a006401;
    spec.flow.src_port = 1234;
    spec.flow.dst_port = 80;
    router.find("fw")->push(0, net::build_udp(pool, spec));
  };
  send("10.9.1.1");
  send("10.8.1.1");
  send("10.9.255.255");
  auto* fw = router.find_as<Firewall>("fw");
  EXPECT_EQ(fw->denied(), 2u);
  EXPECT_EQ(fw->allowed(), 1u);
  EXPECT_EQ(router.find_as<click::Counter>("ok")->packets(), 1u);
  EXPECT_EQ(router.find_as<click::Counter>("bad")->packets(), 2u);
}

TEST(FirewallElement, DeniedDroppedWhenPortUnconnected) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  ASSERT_TRUE(router.configure(
      "fw :: Firewall(default deny); ok :: Counter; fw -> ok -> Discard;",
      &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  net::BuildSpec spec;
  spec.flow = {0x01020304, 0x05060708, 1, 2, 17};
  std::size_t in_use = pool.in_use();
  router.find("fw")->push(0, net::build_udp(pool, spec));
  EXPECT_EQ(pool.in_use(), in_use) << "denied packet must recycle";
  EXPECT_EQ(router.find_as<click::Counter>("ok")->packets(), 0u);
}

TEST(MakeFirewallRules, GeneratesParseableRules) {
  std::string err;
  for (const auto& text : make_firewall_rules(100)) {
    EXPECT_TRUE(FwRule::parse(text, &err).has_value())
        << text << ": " << err;
  }
  EXPECT_EQ(make_firewall_rules(100).size(), 100u);
}

}  // namespace
}  // namespace mdp::nf
