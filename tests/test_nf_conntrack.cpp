// Connection tracker + stateful firewall tests: TCP state machine
// progression, direction handling, expiry, and the
// established-traffic-bypasses-ACL behaviour.
#include <gtest/gtest.h>

#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "nf/conntrack.hpp"

namespace mdp::nf {
namespace {

const net::FlowKey kFwd{0x0a000001, 0x0b000001, 40000, 443,
                        net::kIpProtoTcp};
const net::FlowKey kRev = kFwd.reversed();

using net::TcpView;

TEST(ConnTracker, TcpHandshakeReachesEstablished) {
  ConnTracker ct;
  EXPECT_EQ(ct.observe(kFwd, TcpView::kSyn, 0), ConnState::kNew);
  EXPECT_EQ(ct.observe(kRev, TcpView::kSyn | TcpView::kAck, 1),
            ConnState::kSynAck);
  EXPECT_EQ(ct.observe(kFwd, TcpView::kAck, 2), ConnState::kEstablished);
  EXPECT_EQ(ct.lookup(kFwd), ConnState::kEstablished);
  EXPECT_EQ(ct.lookup(kRev), ConnState::kEstablished)
      << "both directions share one connection";
  EXPECT_EQ(ct.size(), 1u);
}

TEST(ConnTracker, SynAckFromInitiatorDoesNotAdvance) {
  ConnTracker ct;
  ct.observe(kFwd, TcpView::kSyn, 0);
  // Bogus SYN+ACK from the same side that sent the SYN.
  EXPECT_EQ(ct.observe(kFwd, TcpView::kSyn | TcpView::kAck, 1),
            ConnState::kNew);
}

TEST(ConnTracker, FinFromBothSidesCloses) {
  ConnTracker ct;
  ct.observe(kFwd, TcpView::kSyn, 0);
  ct.observe(kRev, TcpView::kSyn | TcpView::kAck, 1);
  ct.observe(kFwd, TcpView::kAck, 2);
  EXPECT_EQ(ct.observe(kFwd, TcpView::kFin | TcpView::kAck, 3),
            ConnState::kFinWait);
  EXPECT_EQ(ct.observe(kRev, TcpView::kAck, 4), ConnState::kFinWait);
  EXPECT_EQ(ct.observe(kRev, TcpView::kFin | TcpView::kAck, 5),
            ConnState::kClosed);
}

TEST(ConnTracker, RstClosesImmediately) {
  ConnTracker ct;
  ct.observe(kFwd, TcpView::kSyn, 0);
  ct.observe(kRev, TcpView::kSyn | TcpView::kAck, 1);
  ct.observe(kFwd, TcpView::kAck, 2);
  EXPECT_EQ(ct.observe(kRev, TcpView::kRst, 3), ConnState::kClosed);
}

TEST(ConnTracker, UdpBecomesEstablishedOnReply) {
  ConnTracker ct;
  net::FlowKey udp_f{1, 2, 100, 53, net::kIpProtoUdp};
  EXPECT_EQ(ct.observe(udp_f, 0, 0), ConnState::kNew);
  EXPECT_EQ(ct.observe(udp_f, 0, 1), ConnState::kNew)
      << "more packets from the initiator don't establish";
  EXPECT_EQ(ct.observe(udp_f.reversed(), 0, 2), ConnState::kEstablished);
}

TEST(ConnTracker, ExpiryByProtocolTimeout) {
  ConnTrackerConfig cfg;
  cfg.tcp_idle_timeout_ns = 1000;
  cfg.udp_idle_timeout_ns = 100;
  ConnTracker ct(cfg);
  ct.observe(kFwd, TcpView::kSyn, 0);
  ct.observe(net::FlowKey{1, 2, 3, 4, net::kIpProtoUdp}, 0, 0);
  EXPECT_EQ(ct.expire(500), 1u) << "only the UDP entry is past timeout";
  EXPECT_EQ(ct.expire(2000), 1u) << "now the TCP entry too";
  EXPECT_EQ(ct.size(), 0u);
}

TEST(ConnTracker, ClosedEntriesLingerBriefly) {
  ConnTrackerConfig cfg;
  cfg.closed_linger_ns = 100;
  ConnTracker ct(cfg);
  ct.observe(kFwd, TcpView::kRst, 0);
  EXPECT_EQ(ct.size(), 1u);
  EXPECT_EQ(ct.expire(50), 0u);
  EXPECT_EQ(ct.expire(200), 1u);
}

TEST(ConnTracker, CapacityEvictsOldest) {
  ConnTrackerConfig cfg;
  cfg.max_entries = 3;
  ConnTracker ct(cfg);
  for (std::uint32_t i = 0; i < 5; ++i)
    ct.observe(net::FlowKey{i + 1, 99, 1000, 80, net::kIpProtoTcp},
               TcpView::kSyn, i);
  EXPECT_LE(ct.size(), 3u);
  EXPECT_EQ(ct.evictions(), 2u);
  // The oldest flows (1, 2) were evicted; 5 survives.
  EXPECT_EQ(ct.lookup(net::FlowKey{5, 99, 1000, 80, net::kIpProtoTcp}),
            ConnState::kNew);
}

struct SfwFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{256, 2048};
  click::Router router{click::Router::Context{&eq, &pool}};
  StatefulFirewall* sfw = nullptr;
  click::Counter* ok = nullptr;
  click::Counter* bad = nullptr;

  void SetUp() override {
    std::string err;
    ASSERT_TRUE(router.configure(R"(
      sfw :: StatefulFirewall(default deny, allow proto tcp dport 443);
      ok :: Counter; bad :: Counter;
      sfw [0] -> ok -> Discard; sfw [1] -> bad -> Discard;
    )",
                                 &err))
        << err;
    ASSERT_TRUE(router.initialize(&err)) << err;
    sfw = router.find_as<StatefulFirewall>("sfw");
    ok = router.find_as<click::Counter>("ok");
    bad = router.find_as<click::Counter>("bad");
  }

  void send(const net::FlowKey& flow, std::uint8_t flags) {
    net::BuildSpec spec;
    spec.flow = flow;
    spec.tcp_flags = flags;
    sfw->push(0, net::build_tcp(pool, spec));
  }
};

TEST_F(SfwFixture, HandshakeThenDataAllAccepted) {
  send(kFwd, TcpView::kSyn);
  send(kRev, TcpView::kSyn | TcpView::kAck);
  send(kFwd, TcpView::kAck);
  send(kFwd, TcpView::kAck | TcpView::kPsh);  // data
  send(kRev, TcpView::kAck);                  // reply direction
  EXPECT_EQ(ok->packets(), 5u);
  EXPECT_EQ(bad->packets(), 0u);
  EXPECT_EQ(sfw->tracker().lookup(kFwd), ConnState::kEstablished);
}

TEST_F(SfwFixture, AclBlocksOpeningButNotEstablished) {
  // Port 80 is not allowed by the ACL: the SYN is rejected.
  net::FlowKey port80 = kFwd;
  port80.dst_port = 80;
  send(port80, TcpView::kSyn);
  EXPECT_EQ(bad->packets(), 1u);
  EXPECT_EQ(ok->packets(), 0u);
}

TEST_F(SfwFixture, MidStreamPacketWithoutConnectionRejected) {
  send(kFwd, TcpView::kAck);  // no SYN ever seen
  EXPECT_EQ(bad->packets(), 1u);
  EXPECT_EQ(sfw->out_of_state(), 1u);
}

TEST_F(SfwFixture, ReverseDirectionOfAllowedConnPassesDespiteAcl) {
  // The ACL only allows dport 443; the reverse direction has dport 40000
  // and would fail a stateless check — statefulness must admit it.
  send(kFwd, TcpView::kSyn);
  send(kRev, TcpView::kSyn | TcpView::kAck);
  EXPECT_EQ(ok->packets(), 2u);
  EXPECT_EQ(bad->packets(), 0u);
}

}  // namespace
}  // namespace mdp::nf
