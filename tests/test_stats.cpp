// Stats tests: histogram accuracy bounds, quantile monotonicity, merge,
// CDF; table renderers; time series bucketing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/rng.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"
#include "stats/time_series.hpp"

namespace mdp::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 128; ++v) h.record(v);
  EXPECT_EQ(h.count(), 128u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 127u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 127u);
  EXPECT_EQ(h.p50(), 63u);
}

TEST(Histogram, SingleValueAllQuantilesEqual) {
  LatencyHistogram h;
  h.record_n(5000, 1000);
  std::uint64_t q50 = h.p50();
  EXPECT_EQ(h.p99(), q50);
  EXPECT_EQ(h.p999(), q50);
  // Relative quantization error bounded by 2^-7.
  EXPECT_NEAR(static_cast<double>(q50), 5000.0, 5000.0 / 128.0 + 1);
}

TEST(Histogram, RelativeErrorBoundAcrossMagnitudes) {
  for (std::uint64_t v :
       {137ULL, 1'500ULL, 73'000ULL, 2'000'000ULL, 900'000'000ULL,
        123'456'789'012ULL}) {
    LatencyHistogram h;
    h.record(v);
    std::uint64_t q = h.quantile(0.5);
    double rel = std::abs(static_cast<double>(q) - static_cast<double>(v)) /
                 static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / 128.0 + 1e-9) << "value " << v << " -> " << q;
    EXPECT_GE(q, v) << "bucket upper edge must not under-report";
  }
}

TEST(Histogram, QuantilesMonotone) {
  LatencyHistogram h;
  sim::Rng rng(5);
  for (int i = 0; i < 100'000; ++i)
    h.record(rng.uniform_u64(10'000'000) + 1);
  std::uint64_t prev = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0}) {
    std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << "quantile " << q;
    prev = v;
  }
}

TEST(Histogram, QuantileOfUniformIsProportional) {
  LatencyHistogram h;
  sim::Rng rng(11);
  for (int i = 0; i < 200'000; ++i) h.record(rng.uniform_u64(1'000'000));
  EXPECT_NEAR(static_cast<double>(h.p50()), 500'000, 25'000);
  EXPECT_NEAR(static_cast<double>(h.p99()), 990'000, 25'000);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  sim::Rng rng(3);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 10'000; ++i) {
    std::uint64_t v = rng.uniform_u64(1'000'000) + 1;
    if (i % 2) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(a.quantile(q), combined.quantile(q)) << q;
}

TEST(Histogram, CdfIsNonDecreasingAndEndsAtOne) {
  LatencyHistogram h;
  sim::Rng rng(4);
  for (int i = 0; i < 5000; ++i) h.record(rng.uniform_u64(100'000));
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev = 0;
  std::uint64_t prev_v = 0;
  for (auto [v, p] : cdf) {
    EXPECT_GE(p, prev);
    EXPECT_GE(v, prev_v);
    prev = p;
    prev_v = v;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

// Property: histogram quantiles track exact (sorted-vector) quantiles
// within the configured relative error across distributions and seeds.
class HistogramAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(HistogramAccuracy, QuantilesWithinRelativeErrorOfExact) {
  sim::Rng rng(GetParam());
  LatencyHistogram h;
  std::vector<std::uint64_t> exact;
  constexpr int kN = 50'000;
  exact.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    // Log-uniform values spanning 6 decades — the worst case for a
    // fixed-bucket scheme, easy for a log-bucketed one.
    double mag = rng.uniform_range(1, 7);
    auto v = static_cast<std::uint64_t>(std::pow(10.0, mag));
    h.record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    auto idx = static_cast<std::size_t>(q * (kN - 1));
    double truth = static_cast<double>(exact[idx]);
    double est = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(est, truth, truth / 64.0 + 2)
        << "q=" << q << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy, ::testing::Range(1, 6));

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.record(12345);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(FormatNs, HumanUnits) {
  EXPECT_EQ(format_ns(500), "500ns");
  EXPECT_EQ(format_ns(1500), "1.5us");
  EXPECT_EQ(format_ns(2'500'000), "2.50ms");
  EXPECT_EQ(format_ns(3'000'000'000ULL), "3.000s");
}

TEST(Table, TextRendersAllCells) {
  Table t({"policy", "p99"});
  t.add_row({"jsq", "120us"});
  t.add_row({"single", "4.2ms"});
  std::string s = t.to_text();
  EXPECT_NE(s.find("policy"), std::string::npos);
  EXPECT_NE(s.find("jsq"), std::string::npos);
  EXPECT_NE(s.find("4.2ms"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TimeSeries, BucketsAverageWithinInterval) {
  TimeSeries ts(1000, "q");
  ts.observe(100, 10);
  ts.observe(900, 20);
  ts.observe(1500, 7);
  auto s = ts.samples();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].value, 15.0);
  EXPECT_DOUBLE_EQ(s[1].value, 7.0);
  EXPECT_EQ(s[0].t_ns, 0u);
  EXPECT_EQ(s[1].t_ns, 1000u);
}

TEST(TimeSeries, MaxModeKeepsPeak) {
  TimeSeries ts(1000);
  ts.observe_max(0, 3);
  ts.observe_max(10, 42);
  ts.observe_max(20, 7);
  auto s = ts.samples();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].value, 42.0);
}

TEST(Counters, IncrementAndQuery) {
  CounterSet c;
  c.inc("a");
  c.inc("a", 4);
  c.inc("b");
  EXPECT_EQ(c.get("a"), 5u);
  EXPECT_EQ(c.get("b"), 1u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_EQ(c.to_string(), "a=5 b=1");
}

}  // namespace
}  // namespace mdp::stats
