// Ring tests: FIFO semantics, capacity behaviour, bulk ops, and real
// multi-threaded loss/duplication checks for both SPSC and MPMC rings.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "ring/calendar_queue.hpp"
#include "ring/mpmc_ring.hpp"
#include "ring/spsc_ring.hpp"

namespace mdp::ring {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> r(100);
  EXPECT_EQ(r.capacity(), 128u);
  SpscRing<int> r2(128);
  EXPECT_EQ(r2.capacity(), 128u);
  SpscRing<int> tiny(0);
  EXPECT_GE(tiny.capacity(), 2u);
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> r(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.try_push(i));
  for (int i = 0; i < 10; ++i) {
    int v = -1;
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(r.try_pop(v)) << "empty ring must fail pop";
}

TEST(SpscRing, FullRingRejectsPush) {
  SpscRing<int> r(4);
  for (std::size_t i = 0; i < r.capacity(); ++i)
    ASSERT_TRUE(r.try_push(static_cast<int>(i)));
  EXPECT_FALSE(r.try_push(99));
  int v;
  ASSERT_TRUE(r.try_pop(v));
  EXPECT_TRUE(r.try_push(99)) << "pop must free a slot";
}

TEST(SpscRing, WrapAroundManyTimes) {
  SpscRing<int> r(4);
  int next_out = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(r.try_push(i));
    if (i % 3 == 2) {  // drain occasionally, crossing the wrap point
      int v;
      while (r.try_pop(v)) EXPECT_EQ(v, next_out++);
    }
  }
  int v;
  while (r.try_pop(v)) EXPECT_EQ(v, next_out++);
  EXPECT_EQ(next_out, 1000);
}

TEST(SpscRing, BulkPushAllOrNothing) {
  SpscRing<int> r(8);
  std::vector<int> items{1, 2, 3, 4, 5};
  EXPECT_EQ(r.try_push_bulk(items), 5u);
  std::vector<int> too_many(6, 7);
  EXPECT_EQ(r.try_push_bulk(too_many), 0u) << "bulk must be all-or-nothing";
  EXPECT_EQ(r.size(), 5u);
}

TEST(SpscRing, BurstPopReturnsUpToN) {
  SpscRing<int> r(16);
  for (int i = 0; i < 5; ++i) r.try_push(i);
  std::vector<int> out(8, -1);
  EXPECT_EQ(r.try_pop_burst(out), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, ThreadedTransferNoLossNoDupNoReorder) {
  constexpr int kItems = 200'000;
  SpscRing<int> r(1024);
  std::vector<int> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    int v;
    while (static_cast<int>(received.size()) < kItems) {
      if (r.try_pop(v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    while (!r.try_push(i)) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i)
    ASSERT_EQ(received[i], i) << "order broken at " << i;
}

TEST(MpmcRing, FifoSingleThread) {
  MpmcRing<int> r(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.try_push(i));
  for (int i = 0; i < 10; ++i) {
    int v;
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(MpmcRing, FullAndEmptyBoundaries) {
  MpmcRing<int> r(4);
  for (std::size_t i = 0; i < r.capacity(); ++i)
    ASSERT_TRUE(r.try_push(static_cast<int>(i)));
  EXPECT_FALSE(r.try_push(5));
  int v;
  for (std::size_t i = 0; i < r.capacity(); ++i) ASSERT_TRUE(r.try_pop(v));
  EXPECT_FALSE(r.try_pop(v));
}

// Property: N producers x M consumers, every produced token consumed
// exactly once. Parameterized over (producers, consumers).
class MpmcStress
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MpmcStress, ExactlyOnceDelivery) {
  const auto [kProducers, kConsumers] = GetParam();
  constexpr int kPerProducer = 30'000;
  const int total = kProducers * kPerProducer;
  MpmcRing<std::uint64_t> r(512);
  std::atomic<int> consumed{0};
  std::vector<std::atomic<std::uint8_t>> seen(total);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t v;
      while (consumed.load(std::memory_order_relaxed) < total) {
        if (r.try_pop(v)) {
          seen[v].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t token =
            static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!r.try_push(token)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  for (int i = 0; i < total; ++i)
    ASSERT_EQ(seen[i].load(), 1) << "token " << i
                                 << " not delivered exactly once";
}

INSTANTIATE_TEST_SUITE_P(Topologies, MpmcStress,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 1),
                                           std::make_pair(1, 2),
                                           std::make_pair(2, 2)));

TEST(SpscRing, BurstPushPartialWhenNearlyFull) {
  SpscRing<int> r(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(r.try_push(i));
  std::vector<int> items{5, 6, 7, 8, 9};
  EXPECT_EQ(r.try_push_burst(items), 3u) << "only 3 slots free";
  int v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(MpmcRing, BurstPushPopSingleThread) {
  MpmcRing<int> r(16);
  std::vector<int> in{0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(r.try_push_burst(in), 7u);
  std::vector<int> out(16, -1);
  EXPECT_EQ(r.try_pop_burst(out), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(r.try_pop_burst(out), 0u) << "empty ring pops nothing";
}

TEST(MpmcRing, BurstPartialOnNearlyFullAndNearlyEmpty) {
  MpmcRing<int> r(8);
  std::vector<int> first{0, 1, 2, 3, 4, 5};
  ASSERT_EQ(r.try_push_burst(first), 6u);
  std::vector<int> more{6, 7, 8, 9};
  EXPECT_EQ(r.try_push_burst(more), 2u) << "only 2 slots free";
  std::vector<int> none{99};
  EXPECT_EQ(r.try_push_burst(none), 0u) << "full ring pushes nothing";
  std::vector<int> out(20, -1);
  EXPECT_EQ(r.try_pop_burst(out), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
}

TEST(MpmcRing, BurstWrapAroundManyTimes) {
  MpmcRing<int> r(8);
  int next_in = 0, next_out = 0;
  std::vector<int> in(5), out(5, -1);
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 5; ++i) in[i] = next_in + i;
    std::size_t pushed = r.try_push_burst(in);
    next_in += static_cast<int>(pushed);
    std::size_t popped = r.try_pop_burst(out);
    for (std::size_t i = 0; i < popped; ++i)
      ASSERT_EQ(out[i], next_out++) << "order broken in round " << round;
  }
  while (r.try_pop_burst(out) > 0) {
  }
  EXPECT_GT(next_out, 1000) << "wrap coverage: many generations crossed";
}

// Burst variant of the exactly-once property: concurrent producers and
// consumers moving items in bursts of mixed sizes must neither lose nor
// duplicate a token even while bursts straddle the wrap point.
TEST(MpmcRing, BurstConcurrentProducersExactlyOnce) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 24'000;
  const int total = kProducers * kPerProducer;
  MpmcRing<std::uint64_t> r(256);
  std::atomic<int> consumed{0};
  std::vector<std::atomic<std::uint8_t>> seen(total);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<std::uint64_t> out(32);
      while (consumed.load(std::memory_order_relaxed) < total) {
        std::size_t n = r.try_pop_burst(out);
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        for (std::size_t i = 0; i < n; ++i) seen[out[i]].fetch_add(1);
        consumed.fetch_add(static_cast<int>(n));
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::uint64_t> batch;
      int sent = 0;
      while (sent < kPerProducer) {
        // Vary burst size 1..24 so partial-burst paths get exercised.
        int want = 1 + (sent % 24);
        if (sent + want > kPerProducer) want = kPerProducer - sent;
        batch.resize(static_cast<std::size_t>(want));
        for (int i = 0; i < want; ++i)
          batch[static_cast<std::size_t>(i)] =
              static_cast<std::uint64_t>(p) * kPerProducer + sent + i;
        std::size_t pushed = 0;
        while (pushed < batch.size()) {
          std::span<std::uint64_t> rest{batch.data() + pushed,
                                        batch.size() - pushed};
          std::size_t n = r.try_push_burst(rest);
          if (n == 0) std::this_thread::yield();
          pushed += n;
        }
        sent += want;
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  for (int i = 0; i < total; ++i)
    ASSERT_EQ(seen[i].load(), 1) << "token " << i
                                 << " not delivered exactly once";
}

TEST(MpmcRing, MoveOnlyTypes) {
  MpmcRing<std::unique_ptr<int>> r(8);
  ASSERT_TRUE(r.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(r.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 42);
}

// ---------------------------------------------------------------------------
// CalendarQueue: the tick-bucket staging structure behind the loopback
// wire's fault lanes. Contract: peek/pop enumerate entries in global
// (due, push order) as long as pushes happen at a nondecreasing clock with
// due in [now, now + horizon].

TEST(CalendarQueue, ReleasesInDueThenPushOrder) {
  CalendarQueue<int> q(8);
  q.push(5, 50);
  q.push(2, 20);
  q.push(5, 51);  // same due as the first: FIFO within a due
  q.push(3, 30);
  EXPECT_EQ(q.size(), 4u);

  EXPECT_EQ(q.peek(1), nullptr) << "nothing due yet";
  std::vector<int> released;
  while (int* e = q.peek(5)) {
    released.push_back(*e);
    q.pop_front();
  }
  EXPECT_EQ(released, (std::vector<int>{20, 30, 50, 51}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PeekRespectsTheLimit) {
  CalendarQueue<int> q(16);
  q.push(10, 1);
  q.push(12, 2);
  ASSERT_EQ(q.peek(9), nullptr);
  ASSERT_NE(q.peek(10), nullptr);
  EXPECT_EQ(*q.peek(10), 1);
  q.pop_front();
  EXPECT_EQ(q.peek(11), nullptr) << "next entry is due at 12";
  ASSERT_NE(q.peek(12), nullptr);
  EXPECT_EQ(*q.peek(12), 2);
  q.pop_front();
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, WheelLapsKeepBucketsSorted) {
  // Wheel of 8: dues 3 and 11 share a bucket but are a lap apart. Pushed
  // at the clocks the contract allows (3 at now<=3, 11 at now>=4), the
  // earlier due must still come out first.
  CalendarQueue<int> q(7);
  q.push(3, 33);    // pushed at now = 0
  q.push(11, 111);  // pushed at now = 4 (due 11 = 4 + horizon 7)
  ASSERT_NE(q.peek(3), nullptr);
  EXPECT_EQ(*q.peek(3), 33);
  q.pop_front();
  EXPECT_EQ(q.peek(10), nullptr);
  ASSERT_NE(q.peek(11), nullptr);
  EXPECT_EQ(*q.peek(11), 111);
  q.pop_front();
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PeekAnyIgnoresDueForFlush) {
  CalendarQueue<int> q(32);
  q.push(20, 200);
  q.push(7, 70);
  q.push(20, 201);
  std::vector<int> flushed;
  std::uint64_t due = 0;
  while (int* e = q.peek_any(&due)) {
    flushed.push_back(*e);
    q.pop_front();
  }
  EXPECT_EQ(flushed, (std::vector<int>{70, 200, 201}));
}

TEST(CalendarQueue, EnsureHorizonRebucketsPreservingOrder) {
  CalendarQueue<int> q(3);
  q.push(1, 10);
  q.push(3, 30);
  q.push(1, 11);
  q.ensure_horizon(100);  // grow mid-flight: entries must survive in order
  EXPECT_EQ(q.size(), 3u);
  q.push(90, 900);
  std::vector<int> released;
  std::uint64_t due = 0;
  while (int* e = q.peek_any(&due)) {
    released.push_back(*e);
    q.pop_front();
  }
  EXPECT_EQ(released, (std::vector<int>{10, 11, 30, 900}));
}

TEST(CalendarQueue, InterleavedPushPopAcrossAdvancingClock) {
  // Property: against a naive sorted reference, for a clock that advances
  // while entries are pushed with bounded offsets.
  constexpr std::uint64_t kHorizon = 16;
  CalendarQueue<std::uint64_t> q(kHorizon);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reference;  // due, id
  std::uint64_t rng = 99, id = 0;
  std::vector<std::uint64_t> got, want;
  for (std::uint64_t now = 0; now < 500; ++now) {
    for (int k = 0; k < 3; ++k) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t due = now + ((rng >> 33) % (kHorizon + 1));
      q.push(due, id);
      reference.emplace_back(due, id);
      ++id;
    }
    while (std::uint64_t* e = q.peek(now)) {
      got.push_back(*e);
      q.pop_front();
    }
  }
  while (std::uint64_t* e = q.peek(UINT64_MAX)) {
    got.push_back(*e);
    q.pop_front();
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (const auto& [due, i] : reference) want.push_back(i);
  EXPECT_EQ(got, want) << "calendar order == stable sort by due";
}

}  // namespace
}  // namespace mdp::ring
