// ReorderBuffer tests: in-order passthrough, hole buffering, timeout skip,
// late delivery after skip, detection-only mode, and the random-permutation
// in-order-egress property.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/reorder.hpp"
#include "sim/rng.hpp"

namespace mdp::core {
namespace {

struct ReorderFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{512, 256};
  std::vector<std::pair<std::uint32_t, std::uint64_t>> egressed;

  std::unique_ptr<ReorderBuffer> make(bool enabled = true,
                                      sim::TimeNs timeout = 10'000) {
    ReorderConfig cfg;
    cfg.enabled = enabled;
    cfg.timeout_ns = timeout;
    return std::make_unique<ReorderBuffer>(
        eq, cfg, [this](net::PacketPtr p) {
          egressed.emplace_back(p->anno().flow_id, p->anno().seq);
        });
  }

  net::PacketPtr pkt(std::uint32_t flow, std::uint64_t seq) {
    auto p = pool.alloc();
    p->set_length(64);
    p->anno().flow_id = flow;
    p->anno().seq = seq;
    return p;
  }
};

TEST_F(ReorderFixture, InOrderPassesThroughImmediately) {
  auto rb = make();
  for (std::uint64_t s = 0; s < 5; ++s) rb->submit(pkt(1, s));
  ASSERT_EQ(egressed.size(), 5u);
  for (std::uint64_t s = 0; s < 5; ++s) EXPECT_EQ(egressed[s].second, s);
  EXPECT_EQ(rb->in_order(), 5u);
  EXPECT_EQ(rb->out_of_order(), 0u);
}

TEST_F(ReorderFixture, EarlyPacketWaitsForPredecessor) {
  auto rb = make();
  rb->submit(pkt(1, 1));  // hole: seq 0 missing
  EXPECT_TRUE(egressed.empty());
  EXPECT_EQ(rb->buffered(), 1u);
  rb->submit(pkt(1, 0));
  ASSERT_EQ(egressed.size(), 2u);
  EXPECT_EQ(egressed[0].second, 0u);
  EXPECT_EQ(egressed[1].second, 1u);
  EXPECT_EQ(rb->buffered(), 0u);
}

TEST_F(ReorderFixture, TimeoutSkipsHole) {
  auto rb = make(true, 10'000);
  rb->submit(pkt(1, 1));
  rb->submit(pkt(1, 2));
  EXPECT_TRUE(egressed.empty());
  eq.run_until(20'000);
  ASSERT_EQ(egressed.size(), 2u) << "timeout must release past the hole";
  EXPECT_EQ(egressed[0].second, 1u);
  EXPECT_EQ(egressed[1].second, 2u);
  EXPECT_GE(rb->timeout_releases(), 1u);
}

TEST_F(ReorderFixture, LatePacketAfterSkipStillDelivered) {
  auto rb = make(true, 10'000);
  rb->submit(pkt(1, 1));
  eq.run_until(20'000);  // skip past seq 0
  ASSERT_EQ(egressed.size(), 1u);
  rb->submit(pkt(1, 0));  // the missing packet finally arrives
  ASSERT_EQ(egressed.size(), 2u);
  EXPECT_EQ(egressed[1].second, 0u);
  EXPECT_EQ(rb->late_after_skip(), 1u);
}

TEST_F(ReorderFixture, FlowsAreIndependent) {
  auto rb = make();
  rb->submit(pkt(1, 0));
  rb->submit(pkt(2, 1));  // flow 2 has a hole; flow 1 must be unaffected
  rb->submit(pkt(1, 1));
  ASSERT_EQ(egressed.size(), 2u);
  EXPECT_EQ(egressed[0].first, 1u);
  EXPECT_EQ(egressed[1].first, 1u);
}

TEST_F(ReorderFixture, DisabledModeDetectsButPassesThrough) {
  auto rb = make(/*enabled=*/false);
  rb->submit(pkt(1, 2));
  rb->submit(pkt(1, 0));  // out of order but must egress immediately
  ASSERT_EQ(egressed.size(), 2u);
  EXPECT_EQ(egressed[0].second, 2u);
  EXPECT_EQ(rb->out_of_order(), 2u)
      << "seq 2 (gap) and seq 0 (below window) both count";
  EXPECT_EQ(rb->buffered(), 0u);
}

TEST_F(ReorderFixture, DwellRecordedForBufferedPackets) {
  auto rb = make(true, 100'000);
  rb->submit(pkt(1, 1));
  eq.run_until(5'000);
  rb->submit(pkt(1, 0));
  ASSERT_EQ(egressed.size(), 2u);
  EXPECT_EQ(rb->dwell().count(), 2u);
  EXPECT_GE(rb->dwell().max(), 5'000u) << "seq 1 dwelled ~5us";
}

TEST_F(ReorderFixture, OooFractionComputed) {
  auto rb = make();
  rb->submit(pkt(1, 0));  // in order
  rb->submit(pkt(1, 2));  // gap: out of order
  rb->submit(pkt(1, 1));  // fills the hole: arrives in (buffer) order
  EXPECT_NEAR(rb->ooo_fraction(), 1.0 / 3.0, 1e-9);
}

TEST_F(ReorderFixture, NoPacketLeaksThroughLifecycle) {
  auto rb = make(true, 1'000);
  sim::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    std::uint32_t flow = static_cast<std::uint32_t>(rng.uniform_u64(4));
    static std::uint64_t next_seq[4] = {0, 0, 0, 0};
    // Randomly drop (skip) some seqs to create permanent holes.
    if (rng.bernoulli(0.1)) next_seq[flow]++;
    rb->submit(pkt(flow, next_seq[flow]++));
    eq.run_until(eq.now() + rng.uniform_u64(500));
  }
  eq.run_until(eq.now() + 100'000);  // drain all timers
  EXPECT_EQ(rb->buffered(), 0u);
  EXPECT_EQ(pool.in_use(), 0u) << "every packet must have been released";
}

// Property: any permutation of a window of packets, submitted with a
// generous timeout, egresses fully and in order.
class ReorderPermutationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReorderPermutationProperty, PermutedWindowEgressesInOrder) {
  sim::EventQueue eq;
  net::PacketPool pool(256, 256);
  std::vector<std::uint64_t> egressed;
  ReorderConfig cfg;
  cfg.enabled = true;
  cfg.timeout_ns = 1'000'000'000;  // effectively infinite
  ReorderBuffer rb(eq, cfg, [&](net::PacketPtr p) {
    egressed.push_back(p->anno().seq);
  });

  sim::Rng rng(GetParam());
  constexpr std::uint64_t kWindow = 64;
  std::vector<std::uint64_t> seqs(kWindow);
  for (std::uint64_t i = 0; i < kWindow; ++i) seqs[i] = i;
  // Fisher-Yates with our deterministic RNG.
  for (std::size_t i = kWindow - 1; i > 0; --i)
    std::swap(seqs[i], seqs[rng.uniform_u64(i + 1)]);

  for (std::uint64_t s : seqs) {
    auto p = pool.alloc();
    p->set_length(10);
    p->anno().flow_id = 1;
    p->anno().seq = s;
    rb.submit(std::move(p));
  }
  ASSERT_EQ(egressed.size(), kWindow);
  for (std::uint64_t i = 0; i < kWindow; ++i)
    ASSERT_EQ(egressed[i], i) << "out of order at position " << i;
  EXPECT_EQ(pool.in_use(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderPermutationProperty,
                         ::testing::Range(1, 9));


TEST_F(ReorderFixture, SubmitBatchSkipsNullsAndResequences) {
  // A dedup-compacted burst: some slots null, survivors out of order.
  // submit_batch must behave exactly like a per-packet submit loop —
  // nulls skipped, holes buffered, drains on arrival of predecessors.
  auto rb = make();
  std::vector<net::PacketPtr> burst;
  burst.push_back(pkt(1, 2));       // early: buffered
  burst.push_back(net::PacketPtr{});  // dedup-dropped slot
  burst.push_back(pkt(1, 0));       // in order: released
  burst.push_back(pkt(1, 1));       // fills the hole: 1 then 2 drain
  burst.push_back(net::PacketPtr{});
  rb->submit_batch(burst);
  ASSERT_EQ(egressed.size(), 3u);
  for (std::uint64_t s = 0; s < 3; ++s) EXPECT_EQ(egressed[s].second, s);
  EXPECT_EQ(rb->buffered(), 0u);
  EXPECT_EQ(rb->out_of_order(), 1u);
}

}  // namespace
}  // namespace mdp::core
