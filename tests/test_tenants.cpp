// Tenancy tier tests (docs/TENANCY.md): the classifier, the bounded-memory
// FlowTable (second-chance eviction, per-tenant caps, pinning, the 1M-flow
// memory bound), the ConnStorm workload's determinism contract, and the
// ctrl tenant stage — TenantStateMachine hysteresis edges, TenantAdmission
// gating/budgets/harvest, per-tenant SLO classes through SloMonitor slot
// targets, and the Controller integration (decision log, report schema,
// actuation).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctrl/controller.hpp"
#include "ctrl/tenant.hpp"
#include "net/tenant.hpp"
#include "nf/flow_table.hpp"
#include "sim/rng.hpp"
#include "workload/conn_storm.hpp"

namespace mdp {
namespace {

using ctrl::TenantState;

net::FlowKey flow_n(std::uint32_t n) {
  return net::FlowKey{0x0b000000 + n, 0x0a006401,
                      static_cast<std::uint16_t>(1000 + n % 60000), 80, 6};
}

// ---------------------------------------------------------------------------
// TenantClassifier

TEST(TenantClassifier, LongestPrefixWinsAndDefaultApplies) {
  net::TenantClassifier cls;
  cls.add_prefix(0x0a000000, 8, 1);   // 10.0.0.0/8      -> tenant 1
  cls.add_prefix(0x0a100000, 12, 2);  // 10.16.0.0/12    -> tenant 2
  cls.add_prefix(0x0a100100, 24, 3);  // 10.16.1.0/24    -> tenant 3

  EXPECT_EQ(cls.classify({0x0a200001, 0, 0, 0, 0}), 1);  // 10.32.x: /8
  EXPECT_EQ(cls.classify({0x0a1f0001, 0, 0, 0, 0}), 2);  // 10.31.x: /12
  EXPECT_EQ(cls.classify({0x0a100105, 0, 0, 0, 0}), 3);  // 10.16.1.5: /24
  // No rule matches -> the implicit default tenant.
  EXPECT_EQ(cls.classify({0x0b000001, 0, 0, 0, 0}), net::kDefaultTenant);
  EXPECT_EQ(cls.num_rules(), 3u);
}

TEST(TenantClassifier, EmptyClassifierMapsEverythingToDefault) {
  net::TenantClassifier cls;
  EXPECT_TRUE(cls.empty());
  EXPECT_EQ(cls.classify({0x0a000001, 0, 0, 0, 0}), net::kDefaultTenant);
}

// ---------------------------------------------------------------------------
// FlowTable: bounded memory, second-chance eviction, caps, pinning.

TEST(FlowTable, CapacityBoundsSizeUnderChurn) {
  nf::FlowTable<std::uint64_t> t(64);
  for (std::uint32_t i = 0; i < 1000; ++i)
    ASSERT_NE(t.insert(flow_n(i), 0, i), nullptr);
  EXPECT_EQ(t.size(), 64u);
  EXPECT_EQ(t.capacity(), 64u);
  EXPECT_EQ(t.evictions(), 1000u - 64u);
}

TEST(FlowTable, SecondChanceKeepsTheLookedUpWorkingSet) {
  // Hot flows earn reference bits via find(); a storm of one-shot inserts
  // (which earn none) must recycle itself around them — scan resistance.
  nf::FlowTable<std::uint64_t> t(32);
  for (std::uint32_t i = 0; i < 8; ++i) t.insert(flow_n(i), 0, i);
  for (std::uint32_t round = 0; round < 200; ++round) {
    for (std::uint32_t i = 0; i < 8; ++i)
      ASSERT_NE(t.find(flow_n(i)), nullptr)
          << "hot flow " << i << " evicted in round " << round;
    t.insert(flow_n(1000 + round), 0, round);  // cold storm entry
  }
  EXPECT_EQ(t.size(), 32u);
}

TEST(FlowTable, TenantAtCapEvictsOnlyItsOwnEntries) {
  nf::FlowTable<std::uint64_t> t(64);
  t.set_tenant_cap(0, 4);
  for (std::uint32_t i = 0; i < 4; ++i)
    ASSERT_NE(t.insert(flow_n(i), 0, i), nullptr);
  for (std::uint32_t i = 100; i < 104; ++i)
    ASSERT_NE(t.insert(flow_n(i), 1, i), nullptr);

  // Tenant 0's 5th insert displaces one of tenant 0's own entries.
  std::vector<std::uint16_t> evicted_tenants;
  t.set_evict_callback([&](const net::FlowKey&, const std::uint64_t&,
                           std::uint16_t tenant) {
    evicted_tenants.push_back(tenant);
  });
  for (std::uint32_t i = 10; i < 30; ++i)
    ASSERT_NE(t.insert(flow_n(i), 0, i), nullptr);
  EXPECT_EQ(t.tenant_occupancy(0), 4u);
  EXPECT_EQ(t.tenant_occupancy(1), 4u);  // tenant 1 untouched
  ASSERT_EQ(evicted_tenants.size(), 20u);
  for (std::uint16_t e : evicted_tenants) EXPECT_EQ(e, 0);
}

TEST(FlowTable, PinnedEntriesDeferEvictionUntilUnpin) {
  nf::FlowTable<std::uint64_t> t(2);
  ASSERT_NE(t.insert(flow_n(1), 0, 1), nullptr);
  ASSERT_NE(t.insert(flow_n(2), 0, 2), nullptr);
  ASSERT_TRUE(t.pin(flow_n(1)));
  ASSERT_TRUE(t.pin(flow_n(2)));

  // Everything pinned: the insert must fail rather than evict in-flight
  // state, and the deferrals are counted.
  EXPECT_EQ(t.insert(flow_n(3), 0, 3), nullptr);
  EXPECT_EQ(t.cap_rejections(), 1u);
  EXPECT_GT(t.pinned_deferrals(), 0u);
  EXPECT_NE(t.peek(flow_n(1)), nullptr);
  EXPECT_NE(t.peek(flow_n(2)), nullptr);

  ASSERT_TRUE(t.unpin(flow_n(2)));
  ASSERT_NE(t.insert(flow_n(3), 0, 3), nullptr);
  EXPECT_EQ(t.evictions(), 1u);
  EXPECT_NE(t.peek(flow_n(1)), nullptr);  // still pinned, still present
  EXPECT_EQ(t.peek(flow_n(2)), nullptr);  // the unpinned one made room
}

TEST(FlowTable, EraseIfExpiresWithoutCountingEvictions) {
  nf::FlowTable<std::uint64_t> t(64);
  for (std::uint32_t i = 0; i < 32; ++i) t.insert(flow_n(i), i % 2, i);
  const std::size_t n = t.erase_if(
      [](const net::FlowKey&, const std::uint64_t& v, std::uint16_t) {
        return v % 2 == 0;
      });
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.evictions(), 0u);
  for (std::uint32_t i = 0; i < 32; ++i)
    EXPECT_EQ(t.peek(flow_n(i)) != nullptr, i % 2 == 1);
  // Occupancy accounting survives the backward-shift erase storm.
  EXPECT_EQ(t.tenant_occupancy(0), 0u);
  EXPECT_EQ(t.tenant_occupancy(1), 16u);
}

TEST(FlowTable, ChurnPropertyMatchesReferenceModel) {
  // Property test for backward-shift deletion and erase_if under churn:
  // 10k randomized insert/erase/find ops per seed, with periodic erase_if
  // sweeps, checked against a std::unordered_map reference model.
  // Backward-shift compaction must never lose or duplicate an entry, and
  // per-tenant occupancy must stay exact through every erase storm.
  constexpr std::size_t kCapacity = 512;
  constexpr std::uint32_t kUniverse = 700;  // > capacity: real probe chains
  constexpr int kTrials = 10'000;
  constexpr std::uint16_t kTenants = 4;
  const auto tenant_of = [](std::uint32_t n) {
    return static_cast<std::uint16_t>(n % kTenants);
  };

  for (std::uint64_t seed : {1ull, 77ull, 4242ull}) {
    sim::Rng rng(seed);
    nf::FlowTable<std::uint64_t> t(kCapacity);
    std::unordered_map<std::uint32_t, std::uint64_t> model;

    for (int op = 0; op < kTrials; ++op) {
      const auto n = static_cast<std::uint32_t>(rng.uniform_u64(kUniverse));
      const std::uint64_t roll = rng.uniform_u64(100);
      if (roll < 45) {  // insert-or-update
        // Stay below capacity so the clock hand never fires: the model
        // tracks explicit ops only (evictions() == 0 asserted below).
        if (model.size() >= kCapacity && model.count(n) == 0) continue;
        const std::uint64_t v = rng.uniform_u64(1u << 30);
        ASSERT_NE(t.insert(flow_n(n), tenant_of(n), v), nullptr)
            << "seed " << seed << " op " << op;
        model[n] = v;
      } else if (roll < 70) {  // erase
        EXPECT_EQ(t.erase(flow_n(n)), model.erase(n) == 1)
            << "seed " << seed << " op " << op;
      } else if (roll < 95) {  // lookup
        const auto it = model.find(n);
        const std::uint64_t* got = t.find(flow_n(n));
        ASSERT_EQ(got != nullptr, it != model.end())
            << "seed " << seed << " op " << op;
        if (got != nullptr) EXPECT_EQ(*got, it->second);
      } else {  // erase_if sweep: idle-expiry of a random value residue
        const std::uint64_t r = rng.uniform_u64(7);
        const std::size_t erased = t.erase_if(
            [&](const net::FlowKey&, const std::uint64_t& v, std::uint16_t) {
              return v % 7 == r;
            });
        std::size_t expected = 0;
        for (auto it = model.begin(); it != model.end();) {
          if (it->second % 7 == r) {
            it = model.erase(it);
            ++expected;
          } else {
            ++it;
          }
        }
        EXPECT_EQ(erased, expected) << "seed " << seed << " op " << op;
      }

      if (op % 1000 == 999) {
        ASSERT_EQ(t.size(), model.size()) << "seed " << seed << " op " << op;
        std::array<std::size_t, kTenants> occ{};
        for (const auto& [key, value] : model) ++occ[tenant_of(key)];
        for (std::uint16_t ten = 0; ten < kTenants; ++ten)
          ASSERT_EQ(t.tenant_occupancy(ten), occ[ten])
              << "seed " << seed << " op " << op << " tenant " << ten;
      }
    }

    // Full cross-check: every table entry appears exactly once and matches
    // the model; every universe key answers presence correctly.
    std::size_t visited = 0;
    std::set<std::uint32_t> seen;
    t.for_each([&](const net::FlowKey& k, const std::uint64_t& v,
                   std::uint16_t tenant) {
      ++visited;
      const std::uint32_t n = k.src_ip - 0x0b000000;  // flow_n inverse
      EXPECT_TRUE(seen.insert(n).second) << "duplicated entry " << n;
      const auto it = model.find(n);
      ASSERT_NE(it, model.end()) << "ghost entry " << n;
      EXPECT_EQ(v, it->second);
      EXPECT_EQ(tenant, tenant_of(n));
    });
    EXPECT_EQ(visited, model.size()) << "seed " << seed;
    for (std::uint32_t n = 0; n < kUniverse; ++n)
      ASSERT_EQ(t.peek(flow_n(n)) != nullptr, model.count(n) == 1)
          << "seed " << seed << " flow " << n;
    EXPECT_EQ(t.evictions(), 0u);
    EXPECT_EQ(t.cap_rejections(), 0u);
  }
}

TEST(FlowTable, MillionFlowsBoundedMemory) {
  // The tenancy tier's sizing claim: 1M+ concurrent flows in one table,
  // memory fixed at construction — churn past capacity recycles in place.
  constexpr std::size_t kCap = 1u << 20;  // 1,048,576
  nf::FlowTable<std::uint64_t> t(kCap);
  const std::size_t slots_before = t.capacity();
  constexpr std::uint32_t kInserts = kCap + (kCap >> 2);  // 1.25M
  for (std::uint32_t i = 0; i < kInserts; ++i)
    ASSERT_NE(t.insert(flow_n(i), i & 3, i), nullptr);
  EXPECT_EQ(t.size(), kCap);
  EXPECT_EQ(t.capacity(), slots_before);  // no rehash, no growth
  EXPECT_EQ(t.evictions(), kInserts - kCap);
  // The table still answers: recent inserts are present.
  EXPECT_NE(t.peek(flow_n(kInserts - 1)), nullptr);
  std::size_t occ = 0;
  for (std::uint16_t ten = 0; ten < 4; ++ten) occ += t.tenant_occupancy(ten);
  EXPECT_EQ(occ, kCap);
}

// ---------------------------------------------------------------------------
// ConnStorm: determinism and ramp shape.

workload::ConnStormTenant storm_tenant(std::uint16_t id) {
  workload::ConnStormTenant t;
  t.tenant = id;
  t.base_arrivals_per_tick = 1.5;
  t.conn_lifetime_ticks = 8;
  t.storm_from = 20;
  t.storm_to = 40;
  t.storm_peak_arrivals_per_tick = 12.0;
  return t;
}

TEST(ConnStorm, SameSeedSameEventSequence) {
  workload::ConnStorm a({storm_tenant(0), storm_tenant(1)}, 42);
  workload::ConnStorm b({storm_tenant(0), storm_tenant(1)}, 42);
  for (int tick = 0; tick < 100; ++tick) {
    const auto ea = a.tick();
    const auto eb = b.tick();
    ASSERT_EQ(ea.size(), eb.size()) << "tick " << tick;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].type, eb[i].type);
      EXPECT_EQ(ea[i].tenant, eb[i].tenant);
      EXPECT_EQ(ea[i].conn_id, eb[i].conn_id);
    }
  }
  EXPECT_EQ(a.total_arrivals(), b.total_arrivals());
  EXPECT_GT(a.total_arrivals(), 0u);
}

TEST(ConnStorm, TriangleRampPeaksAtMidpointAndFlowsDrain) {
  workload::ConnStorm s({storm_tenant(0)}, 7);
  EXPECT_DOUBLE_EQ(s.scheduled_rate(0, 10), 1.5);   // before the storm
  EXPECT_DOUBLE_EQ(s.scheduled_rate(0, 30), 12.0);  // midpoint = peak
  EXPECT_DOUBLE_EQ(s.scheduled_rate(0, 50), 1.5);   // after
  EXPECT_GT(s.scheduled_rate(0, 25), s.scheduled_rate(0, 21));

  // Run well past storm end + lifetime: every arrival must tear down.
  std::uint64_t arrivals = 0, teardowns = 0;
  for (int tick = 0; tick < 60; ++tick) {
    for (const auto& ev : s.tick()) {
      if (ev.type == workload::ConnEvent::Type::kArrival) ++arrivals;
      else ++teardowns;
    }
  }
  EXPECT_GT(arrivals, 60u);  // the storm contributed well above base rate
  // Flows older than conn_lifetime_ticks are gone; only the newest remain.
  EXPECT_LE(s.live_flows(), 8 * 3u);
  EXPECT_EQ(arrivals - teardowns, s.live_flows());
}

TEST(ConnStorm, ConnIdsAreDenseAndUnique) {
  workload::ConnStorm s({storm_tenant(0), storm_tenant(1)}, 3);
  std::set<std::uint64_t> ids;
  std::uint64_t max_id = 0, arrivals = 0;
  for (int tick = 0; tick < 50; ++tick) {
    for (const auto& ev : s.tick()) {
      if (ev.type != workload::ConnEvent::Type::kArrival) continue;
      EXPECT_TRUE(ids.insert(ev.conn_id).second) << "duplicate conn id";
      max_id = std::max(max_id, ev.conn_id);
      ++arrivals;
    }
  }
  ASSERT_GT(arrivals, 0u);
  EXPECT_EQ(max_id, arrivals - 1);  // dense: 0..N-1 across both tenants
}

// ---------------------------------------------------------------------------
// TenantStateMachine: hysteresis edges.

TEST(TenantStateMachine, FullLifecycleThroughShedAndBack) {
  ctrl::TenantStateMachine fsm(/*throttle_after=*/2, /*shed_after=*/2,
                               /*cooldown=*/2, /*probation=*/2);
  EXPECT_FALSE(fsm.on_window(true));
  EXPECT_EQ(fsm.state(), TenantState::kAdmitted);
  EXPECT_TRUE(fsm.on_window(true));  // 2nd storming window -> throttled
  EXPECT_EQ(fsm.state(), TenantState::kThrottled);
  EXPECT_FALSE(fsm.on_window(true));
  EXPECT_TRUE(fsm.on_window(true));  // 2 more -> shed
  EXPECT_EQ(fsm.state(), TenantState::kShed);
  EXPECT_FALSE(fsm.on_window(false));
  EXPECT_TRUE(fsm.on_window(false));  // 2 calm -> probation
  EXPECT_EQ(fsm.state(), TenantState::kProbation);
  EXPECT_FALSE(fsm.on_window(false));
  EXPECT_TRUE(fsm.on_window(false));  // 2 calm -> reinstated
  EXPECT_EQ(fsm.state(), TenantState::kAdmitted);
  EXPECT_EQ(fsm.throttles(), 1u);
  EXPECT_EQ(fsm.sheds(), 1u);
  EXPECT_EQ(fsm.reinstates(), 1u);
}

TEST(TenantStateMachine, ProbationReshedsOnOneStormingWindow) {
  ctrl::TenantStateMachine fsm(1, 1, 1, 4);
  fsm.on_window(true);   // -> throttled
  fsm.on_window(true);   // -> shed
  fsm.on_window(false);  // -> probation
  ASSERT_EQ(fsm.state(), TenantState::kProbation);
  // No hysteresis on the way back down: probation is one strike.
  EXPECT_TRUE(fsm.on_window(true));
  EXPECT_EQ(fsm.state(), TenantState::kShed);
  EXPECT_EQ(fsm.sheds(), 2u);
}

TEST(TenantStateMachine, ThrottledRecoversWithoutShedding) {
  ctrl::TenantStateMachine fsm(1, 4, 2, 2);
  fsm.on_window(true);
  ASSERT_EQ(fsm.state(), TenantState::kThrottled);
  fsm.on_window(false);
  EXPECT_TRUE(fsm.on_window(false));  // cooldown met -> admitted directly
  EXPECT_EQ(fsm.state(), TenantState::kAdmitted);
  EXPECT_EQ(fsm.sheds(), 0u);
  EXPECT_EQ(fsm.reinstates(), 1u);
}

// ---------------------------------------------------------------------------
// TenantAdmission: gating, budgets, harvest.

ctrl::TenantAdmissionConfig two_tenant_cfg() {
  ctrl::TenantAdmissionConfig cfg;
  ctrl::TenantSpec storm;
  storm.name = "storm";
  storm.arrival_budget_per_tick = 10;
  storm.hedge_budget_per_tick = 2;
  storm.throttle_keep_one_in = 4;
  ctrl::TenantSpec calm;
  calm.name = "calm";
  calm.arrival_budget_per_tick = 100;
  cfg.tenants = {storm, calm};
  cfg.throttle_after = 1;
  cfg.shed_after = 1;
  cfg.cooldown_windows = 2;
  cfg.probation_windows = 2;
  cfg.default_slo_target_ns = 10'000;
  return cfg;
}

TEST(TenantAdmission, AdmittedTenantPassesAndCountersHarvest) {
  ctrl::TenantAdmission ta(two_tenant_cfg());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ta.admit(0));
  ta.on_flow_arrival(0);
  auto r = ta.tick_tenant(0);
  EXPECT_EQ(r.arrivals, 5u);
  EXPECT_EQ(r.admitted, 5u);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.flow_arrivals, 1u);
  EXPECT_FALSE(r.storming);  // 5 <= budget 10
  EXPECT_FALSE(r.changed);
  // Exchange-to-zero: the next window starts clean.
  r = ta.tick_tenant(0);
  EXPECT_EQ(r.arrivals, 0u);
}

TEST(TenantAdmission, ThrottleAdmitsOneInN) {
  ctrl::TenantAdmission ta(two_tenant_cfg());
  for (int i = 0; i < 50; ++i) ta.admit(0);  // 50 > budget 10
  auto r = ta.tick_tenant(0);
  EXPECT_TRUE(r.storming);
  EXPECT_TRUE(r.changed);
  EXPECT_EQ(r.after, TenantState::kThrottled);
  EXPECT_STREQ(r.reason, "tenant_throttle");

  int admitted = 0;
  for (int i = 0; i < 40; ++i) admitted += ta.admit(0) ? 1 : 0;
  EXPECT_EQ(admitted, 10);  // exactly 1 in 4
  EXPECT_EQ(ta.dropped(0), 30u);
}

TEST(TenantAdmission, ShedDropsEverythingThenReinstates) {
  ctrl::TenantAdmission ta(two_tenant_cfg());
  for (int i = 0; i < 50; ++i) ta.admit(0);
  ta.tick_tenant(0);  // -> throttled
  for (int i = 0; i < 50; ++i) ta.admit(0);
  auto r = ta.tick_tenant(0);
  EXPECT_EQ(r.after, TenantState::kShed);
  EXPECT_STREQ(r.reason, "tenant_shed");
  EXPECT_EQ(ta.shed_count(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ta.admit(0));
  // Tenant 1 is untouched throughout — admission is per tenant.
  EXPECT_TRUE(ta.admit(1));

  // Calm windows: cooldown -> probation -> reinstated.
  ta.tick_tenant(0);
  r = ta.tick_tenant(0);
  EXPECT_EQ(r.after, TenantState::kProbation);
  EXPECT_STREQ(r.reason, "tenant_probation");
  EXPECT_TRUE(ta.admit(0));  // probation admits
  ta.tick_tenant(0);
  r = ta.tick_tenant(0);
  EXPECT_EQ(r.after, TenantState::kAdmitted);
  EXPECT_STREQ(r.reason, "tenant_reinstate");
  EXPECT_EQ(ta.sheds(), 1u);
  EXPECT_EQ(ta.reinstates(), 1u);
  EXPECT_GT(ta.total_dropped(), 0u);
}

TEST(TenantAdmission, HedgeTokensRefillPerWindow) {
  ctrl::TenantAdmission ta(two_tenant_cfg());
  EXPECT_TRUE(ta.try_consume_hedge_token(0));
  EXPECT_TRUE(ta.try_consume_hedge_token(0));
  EXPECT_FALSE(ta.try_consume_hedge_token(0));  // budget 2 spent
  ta.tick_tenant(0);                            // refill
  EXPECT_TRUE(ta.try_consume_hedge_token(0));
  // Tenant 1's budget is 0 = unlimited.
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ta.try_consume_hedge_token(1));
}

TEST(TenantAdmission, UncontractedAndUnknownTenantsAlwaysPass) {
  ctrl::TenantAdmissionConfig cfg;
  cfg.tenants = {ctrl::TenantSpec{}};  // budget 0 = uncontracted
  ctrl::TenantAdmission ta(cfg);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(ta.admit(0));
  EXPECT_FALSE(ta.tick_tenant(0).storming);
  // Ids beyond the configured set pass (fail-open: classification bugs
  // must not become outages).
  EXPECT_TRUE(ta.admit(42));
  EXPECT_EQ(ta.state(42), TenantState::kAdmitted);
}

TEST(TenantAdmission, PerTenantSloClassesShareOneMonitor) {
  auto cfg = two_tenant_cfg();
  cfg.tenants[0].slo_target_ns = 5'000;  // stricter than the default
  ctrl::TenantAdmission ta(cfg);
  EXPECT_EQ(ta.monitor().slot_target_ns(0), 5'000u);
  EXPECT_EQ(ta.monitor().slot_target_ns(1), 10'000u);  // inherited default

  ta.observe(0, 7'000);  // violates tenant 0's 5k target
  ta.observe(1, 7'000);  // within tenant 1's 10k target
  auto r0 = ta.tick_tenant(0);
  auto r1 = ta.tick_tenant(1);
  EXPECT_EQ(r0.slo.samples, 1u);
  EXPECT_EQ(r0.slo.violations, 1u);
  EXPECT_EQ(r1.slo.samples, 1u);
  EXPECT_EQ(r1.slo.violations, 0u);
}

// ---------------------------------------------------------------------------
// Controller integration: the tenant stage inside tick().

struct TenantFakeActuator : ctrl::Actuator {
  std::size_t num_paths() const override { return 2; }
  void set_admission(std::size_t, ctrl::Admission) override {}
  void grant_probes(std::size_t, std::uint64_t) override {}
  std::uint64_t path_backlog(std::size_t) const override { return 0; }
  void flush_path(std::size_t) override {}
  void set_tenant_admission(std::uint16_t tenant, TenantState s) override {
    actuations.emplace_back(tenant, s);
  }
  std::vector<std::pair<std::uint16_t, TenantState>> actuations;
};

TEST(Controller, TenantStageLogsDecisionsAndReports) {
  ctrl::SloMonitor mon(2, 10'000);
  TenantFakeActuator act;
  ctrl::Config ccfg;
  ccfg.slo_target_ns = 10'000;
  ctrl::Controller ctl(ccfg, act, mon);
  ctrl::TenantAdmission ta(two_tenant_cfg());
  ctl.attach_tenants(&ta);

  // Tenant 0 breaks its arrival contract; tenant 1 stays in budget.
  for (int i = 0; i < 50; ++i) ta.admit(0);
  for (int i = 0; i < 5; ++i) ta.admit(1);
  ctl.tick(1'000);
  ASSERT_EQ(act.actuations.size(), 1u);
  EXPECT_EQ(act.actuations[0].first, 0);
  EXPECT_EQ(act.actuations[0].second, TenantState::kThrottled);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  const auto& d = ctl.decisions()[0];
  EXPECT_EQ(d.path, ctrl::Decision::kTenant);
  EXPECT_STREQ(d.reason, "tenant_throttle");
  EXPECT_EQ(d.tenant, 0);
  EXPECT_EQ(d.tenant_to, TenantState::kThrottled);
  EXPECT_EQ(d.arrivals, 50u);
  EXPECT_EQ(ctrl::decision_reason_code("tenant_throttle"), 11u);
  EXPECT_EQ(ctrl::decision_reason_code("tenant_shed"), 12u);
  EXPECT_EQ(ctrl::decision_reason_code("tenant_reinstate"), 14u);

  // Continued storm -> shed, then the report carries the tenant section.
  for (int i = 0; i < 50; ++i) ta.admit(0);
  ctl.tick(2'000);
  EXPECT_EQ(ta.state(0), TenantState::kShed);
  EXPECT_EQ(ctl.tenant_sheds(), 1u);
  const std::string report = ctl.report_json();
  EXPECT_NE(report.find("\"tenants\""), std::string::npos);
  EXPECT_NE(report.find("\"storm\""), std::string::npos);
  EXPECT_NE(report.find("\"calm\""), std::string::npos);
  EXPECT_NE(report.find("\"tenant_sheds\""), std::string::npos);
  EXPECT_NE(report.find("\"target\":\"tenant\""), std::string::npos);
}

}  // namespace
}  // namespace mdp
