// Load-balancer tests: affinity, consistent-hash balance and minimal
// disruption, smooth WRR weighting, health handling, packet rewriting.
#include <gtest/gtest.h>

#include <map>

#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "nf/load_balancer.hpp"
#include "sim/rng.hpp"

namespace mdp::nf {
namespace {

net::FlowKey flow_n(std::uint32_t n) {
  return net::FlowKey{0x0b000000 + n, 0x0a006401,
                      static_cast<std::uint16_t>(1000 + n % 60000), 80, 6};
}

LoadBalancerCore make_ch(std::size_t backends) {
  LoadBalancerCore lb(LoadBalancerCore::Policy::kConsistentHash);
  for (std::size_t i = 0; i < backends; ++i)
    lb.add_backend(Backend{0x0ac80001 + static_cast<std::uint32_t>(i), 1,
                           true});
  return lb;
}

TEST(LoadBalancerCore, AffinityKeepsFlowOnBackend) {
  auto lb = make_ch(4);
  std::uint32_t d1 = lb.select(flow_n(1));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(lb.select(flow_n(1)), d1);
  EXPECT_EQ(lb.affinity_entries(), 1u);
}

TEST(LoadBalancerCore, ConsistentHashBalancesFlows) {
  auto lb = make_ch(4);
  std::map<std::uint32_t, int> counts;
  constexpr int kFlows = 8000;
  for (std::uint32_t i = 0; i < kFlows; ++i) ++counts[lb.select(flow_n(i))];
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [dip, n] : counts) {
    EXPECT_GT(n, kFlows / 4 / 2) << "backend starved";
    EXPECT_LT(n, kFlows / 4 * 2) << "backend overloaded";
  }
}

TEST(LoadBalancerCore, RemovingBackendDisturbsFewFlows) {
  // Flows mapped to surviving backends must keep their assignment when one
  // backend dies (the consistent-hash property). Use two fresh cores so
  // affinity does not mask the ring behaviour.
  auto before = make_ch(4);
  auto after = make_ch(4);
  after.set_healthy(0x0ac80002, false);

  int moved_from_survivors = 0;
  constexpr int kFlows = 4000;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    std::uint32_t b = before.select(flow_n(i));
    std::uint32_t a = after.select(flow_n(i));
    if (b != 0x0ac80002 && a != b) ++moved_from_survivors;
    EXPECT_NE(a, 0x0ac80002u) << "dead backend selected";
  }
  EXPECT_EQ(moved_from_survivors, 0)
      << "consistent hashing must only remap the dead backend's flows";
}

TEST(LoadBalancerCore, UnhealthyBackendFlowsReassign) {
  auto lb = make_ch(3);
  std::uint32_t victim = lb.select(flow_n(5));
  lb.set_healthy(victim, false);
  std::uint32_t next = lb.select(flow_n(5));
  EXPECT_NE(next, victim);
  lb.set_healthy(victim, true);
  // Affinity now points at the replacement; it must stick.
  EXPECT_EQ(lb.select(flow_n(5)), next);
}

TEST(LoadBalancerCore, WeightedRrHonorsWeights) {
  LoadBalancerCore lb(LoadBalancerCore::Policy::kWeightedRR);
  lb.add_backend(Backend{1, 3, true});
  lb.add_backend(Backend{2, 1, true});
  std::map<std::uint32_t, int> counts;
  for (std::uint32_t i = 0; i < 4000; ++i) ++counts[lb.select(flow_n(i))];
  double ratio = static_cast<double>(counts[1]) / counts[2];
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(LoadBalancerCore, NoHealthyBackendReturnsZero) {
  auto lb = make_ch(2);
  lb.set_healthy(0x0ac80001, false);
  lb.set_healthy(0x0ac80002, false);
  EXPECT_EQ(lb.select(flow_n(1)), 0u);
}

struct LbElementFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{64, 2048};
  click::Router router{click::Router::Context{&eq, &pool}};
  click::Queue* q = nullptr;

  void SetUp() override {
    std::string err;
    ASSERT_TRUE(router.configure(R"(
      lb :: LoadBalancer(10.0.100.1, 10.200.0.1, 10.200.0.2);
      chk :: CheckIPHeader;
      q :: Queue(64);
      lb -> chk -> q;
    )",
                                 &err))
        << err;
    ASSERT_TRUE(router.initialize(&err)) << err;
    q = router.find_as<click::Queue>("q");
  }
};

TEST_F(LbElementFixture, RewritesVipToBackendWithValidChecksum) {
  net::BuildSpec spec;
  spec.flow = flow_n(9);
  router.find("lb")->push(0, net::build_tcp(pool, spec));
  auto out = q->pull(0);
  ASSERT_TRUE(out) << "packet must survive CheckIPHeader after rewrite";
  auto parsed = net::parse(*out);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->flow.dst_ip == 0x0ac80001 ||
              parsed->flow.dst_ip == 0x0ac80002)
      << net::ipv4_to_string(parsed->flow.dst_ip);
}

TEST_F(LbElementFixture, NonVipTrafficPassesUntouched) {
  net::BuildSpec spec;
  spec.flow = {0x0b000001, 0x01010101, 500, 80, 0};
  router.find("lb")->push(0, net::build_udp(pool, spec));
  auto out = q->pull(0);
  ASSERT_TRUE(out);
  auto parsed = net::parse(*out);
  EXPECT_EQ(parsed->flow.dst_ip, 0x01010101u);
  EXPECT_EQ(router.find_as<LoadBalancer>("lb")->rewritten(), 0u);
}

TEST(LbElement, ConfigErrors) {
  sim::EventQueue eq;
  net::PacketPool pool(8, 2048);
  std::string err;
  click::Router r1(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r1.configure("lb :: LoadBalancer(10.0.0.1);", &err));
  click::Router r2(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(
      r2.configure("lb :: LoadBalancer(bogus, 10.0.0.2);", &err));
  click::Router r3(click::Router::Context{&eq, &pool});
  EXPECT_FALSE(r3.configure(
      "lb :: LoadBalancer(10.0.0.1, 10.0.0.2, policy bogus);", &err));
}

}  // namespace
}  // namespace mdp::nf
