// Flow-granularity replication tests (RepNet lever, see
// docs/ARCHITECTURE.md):
//   - FlowReplicator unit behavior: size-class gating, per-tenant token
//     budgets (charged once per flow), disjoint path selection from
//     backlog evidence, starvation fallback, decision caching;
//   - Deduplicator flow-copy registry: first-copy-wins per sequence,
//     mid-flow downshift, release_flow retiring in-flight copies;
//   - MdpDataPlane end to end: replication disabled (or the lever parked
//     at kPacketHedge) is byte-identical to the seed plane; enabled
//     replication keeps exactly-once / in-order / zero-leak while
//     actually double-sending short flows;
//   - Controller e2e: a delay-lane storm escalates the granularity lever
//     packet -> flow and back, with every shift a logged decision.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "chaos_harness.hpp"
#include "core/dataplane.hpp"
#include "core/flow_replicator.hpp"
#include "core/granularity.hpp"
#include "net/packet_builder.hpp"

namespace mdp {
namespace {

using core::FlowReplicator;
using core::FlowReplicatorConfig;
using core::Granularity;

// ---------------------------------------------------------------------------
// FlowReplicator units.

struct StubCtx final : core::PathContext {
  std::vector<std::uint8_t> ups;
  std::vector<sim::TimeNs> backlogs;
  std::size_t num_paths() const override { return ups.size(); }
  bool up(std::size_t p) const override { return ups[p] != 0; }
  sim::TimeNs backlog_ns(std::size_t p) const override {
    return backlogs[p];
  }
  std::size_t queue_depth(std::size_t) const override { return 0; }
  std::uint64_t inflight(std::size_t) const override { return 0; }
  double ewma_latency_ns(std::size_t) const override { return 0; }
  sim::TimeNs now() const override { return 0; }
};

struct ReplFixture {
  net::PacketPool pool{256, 512};
  StubCtx ctx;
  core::PathVec out;

  ReplFixture() {
    ctx.ups = {1, 1, 1, 1};
    ctx.backlogs = {50, 10, 30, 20};
  }

  net::PacketPtr make(std::uint32_t flow, std::uint32_t flow_bytes,
                      net::TrafficClass tc = net::TrafficClass::kBestEffort,
                      std::uint16_t tenant = 0) {
    net::BuildSpec spec;
    spec.flow = {0x0a010101 + flow, 0x0a006401,
                 static_cast<std::uint16_t>(1024 + flow), 80, 0};
    auto pkt = net::build_udp(pool, spec);
    auto& a = pkt->anno();
    a.flow_id = flow;
    a.flow_bytes = flow_bytes;
    a.traffic_class = tc;
    a.tenant_id = tenant;
    return pkt;
  }
};

TEST(FlowReplicator, ShortFlowRidesTheTwoLeastBackloggedPaths) {
  ReplFixture f;
  FlowReplicator repl({.enabled = true, .size_cutoff_bytes = 30'000});
  auto pkt = f.make(7, 2'000);
  ASSERT_TRUE(repl.route(*pkt, f.ctx, f.out));
  // Backlogs are {50, 10, 30, 20}: the disjoint pair is {1, 3}.
  ASSERT_EQ(f.out.size(), 2u);
  EXPECT_EQ(f.out[0], 1u);
  EXPECT_EQ(f.out[1], 3u);
  EXPECT_EQ(repl.flows_replicated(), 1u);

  // The decision is cached: later packets reuse the pair even after the
  // backlog picture inverts (path stability is the point — reordering
  // within the flow stays bounded to its two paths).
  f.ctx.backlogs = {1, 900, 2, 900};
  auto pkt2 = f.make(7, 2'000);
  ASSERT_TRUE(repl.route(*pkt2, f.ctx, f.out));
  ASSERT_EQ(f.out.size(), 2u);
  EXPECT_EQ(f.out[0], 1u);
  EXPECT_EQ(f.out[1], 3u);
  EXPECT_EQ(repl.flows_seen(), 1u) << "decided once, cached thereafter";
}

TEST(FlowReplicator, SizeClassGateRefusesElephants) {
  ReplFixture f;
  FlowReplicator repl({.enabled = true, .size_cutoff_bytes = 30'000});
  auto big = f.make(1, 1'000'000);
  EXPECT_FALSE(repl.route(*big, f.ctx, f.out));
  EXPECT_EQ(repl.size_gated(), 1u);
  EXPECT_EQ(repl.flows_replicated(), 0u);
  // The elephant's verdict is cached too: no re-gating per packet.
  auto big2 = f.make(1, 1'000'000);
  EXPECT_FALSE(repl.route(*big2, f.ctx, f.out));
  EXPECT_EQ(repl.flows_seen(), 1u);
  EXPECT_EQ(repl.size_gated(), 1u);

  // Unknown size (0 bytes) falls back to the traffic-class hint.
  auto lc = f.make(2, 0, net::TrafficClass::kLatencyCritical);
  EXPECT_TRUE(repl.route(*lc, f.ctx, f.out));
  auto be = f.make(3, 0, net::TrafficClass::kBestEffort);
  EXPECT_FALSE(repl.route(*be, f.ctx, f.out));
}

TEST(FlowReplicator, TokenExhaustionFallsBackToSinglePath) {
  ReplFixture f;
  FlowReplicator repl({.enabled = true});
  int budget = 1;
  int charges = 0;
  repl.set_token_fn([&](std::uint16_t) {
    ++charges;
    return budget-- > 0;
  });
  // Flow 1 takes the last token and replicates; flow 2 is denied and
  // must fall back to the caller's normal single-path scheduler.
  auto p1 = f.make(1, 2'000);
  EXPECT_TRUE(repl.route(*p1, f.ctx, f.out));
  auto p2 = f.make(2, 2'000);
  EXPECT_FALSE(repl.route(*p2, f.ctx, f.out));
  EXPECT_EQ(repl.token_denied(), 1u);
  // The budget is charged per FLOW, not per packet: more packets of
  // flow 1 must not touch the token fn again.
  for (int i = 0; i < 5; ++i) {
    auto p = f.make(1, 2'000);
    EXPECT_TRUE(repl.route(*p, f.ctx, f.out));
  }
  EXPECT_EQ(charges, 2) << "one charge per first-packet decision";
}

TEST(FlowReplicator, PathStarvationAndDownedReplicaSets) {
  ReplFixture f;
  FlowReplicator repl({.enabled = true});
  // Only one path up at decision time: cannot build a pair.
  f.ctx.ups = {0, 1, 0, 0};
  auto p = f.make(1, 2'000);
  EXPECT_FALSE(repl.route(*p, f.ctx, f.out));
  EXPECT_EQ(repl.path_starved(), 1u);

  // A replicated flow whose paths later go down: filtered by up(), and
  // when the whole set is dark, one live path keeps the flow moving.
  f.ctx.ups = {1, 1, 1, 1};
  auto q = f.make(2, 2'000);
  ASSERT_TRUE(repl.route(*q, f.ctx, f.out));
  ASSERT_EQ(f.out.size(), 2u);
  const auto kept = f.out[0];
  f.ctx.ups[f.out[1]] = 0;
  auto q2 = f.make(2, 2'000);
  ASSERT_TRUE(repl.route(*q2, f.ctx, f.out));
  ASSERT_EQ(f.out.size(), 1u);
  EXPECT_EQ(f.out[0], kept);
  f.ctx.ups = {0, 0, 0, 1};  // entire pair down; path 3 is the survivor
  auto q3 = f.make(2, 2'000);
  ASSERT_TRUE(repl.route(*q3, f.ctx, f.out));
  ASSERT_EQ(f.out.size(), 1u);
  EXPECT_EQ(f.out[0], 3u);
}

TEST(FlowReplicator, EraseAndClearFireTheDropCallback) {
  ReplFixture f;
  FlowReplicator repl({.enabled = true});
  std::set<std::uint32_t> dropped;
  repl.set_drop_callback([&](std::uint32_t flow) { dropped.insert(flow); });
  for (std::uint32_t flow : {1u, 2u, 3u}) {
    auto p = f.make(flow, 2'000);
    repl.route(*p, f.ctx, f.out);
  }
  EXPECT_EQ(repl.tracked(), 3u);
  EXPECT_TRUE(repl.erase(2));
  EXPECT_EQ(dropped, std::set<std::uint32_t>{2});
  EXPECT_FALSE(repl.erase(2)) << "double-erase must be a no-op";
  repl.clear();
  EXPECT_EQ(dropped, (std::set<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(repl.tracked(), 0u);
}

// ---------------------------------------------------------------------------
// Deduplicator flow-copy registry.

TEST(DedupFlowRegistry, FirstCopyWinsPerSequence) {
  core::Deduplicator d;
  d.register_flow(9, 2);
  EXPECT_EQ(d.flow_copies(9), 2u);
  EXPECT_EQ(d.flow_copies(8), 1u) << "unregistered flows default to 1";
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    d.expect_flow(9, seq, 0);
    EXPECT_TRUE(d.accept(core::Deduplicator::key(9, seq)));
    EXPECT_FALSE(d.accept(core::Deduplicator::key(9, seq)))
        << "second copy of seq " << seq << " must be dropped";
  }
  EXPECT_EQ(d.pending(), 0u) << "both copies seen retires the entry";
  EXPECT_EQ(d.dup_drops(), 4u);
}

TEST(DedupFlowRegistry, MidFlowDownshiftReturnsToSingleCopy) {
  core::Deduplicator d;
  d.register_flow(5, 2);
  d.expect_flow(5, 0, 0);
  EXPECT_TRUE(d.deregister_flow(5));
  EXPECT_FALSE(d.deregister_flow(5));
  // Sequences expected after the downshift are single-copy: one accept
  // retires them immediately.
  d.expect_flow(5, 1, 0);
  EXPECT_TRUE(d.accept(core::Deduplicator::key(5, 1)));
  EXPECT_EQ(d.pending(), 1u) << "only the pre-downshift 2-copy entry left";
  // The pre-downshift entry still expects both copies.
  EXPECT_TRUE(d.accept(core::Deduplicator::key(5, 0)));
  EXPECT_FALSE(d.accept(core::Deduplicator::key(5, 0)));
  EXPECT_EQ(d.pending(), 0u);
}

TEST(DedupFlowRegistry, ReleaseFlowRetiresInFlightCopies) {
  core::Deduplicator d;
  d.register_flow(3, 2);
  for (std::uint64_t seq = 0; seq < 3; ++seq) d.expect_flow(3, seq, 0);
  d.register_flow(4, 2);
  d.expect_flow(4, 0, 0);
  EXPECT_EQ(d.pending(), 4u);
  // Flow 3 completes with copies still in flight: its entries retire;
  // flow 4's survives.
  EXPECT_EQ(d.release_flow(3), 3u);
  EXPECT_EQ(d.pending(), 1u);
  // The straggler copies arrive after release: late drops, not deliveries.
  EXPECT_FALSE(d.accept(core::Deduplicator::key(3, 1)));
  EXPECT_EQ(d.late_drops(), 1u);
  EXPECT_TRUE(d.accept(core::Deduplicator::key(4, 0)));
}

// ---------------------------------------------------------------------------
// MdpDataPlane end to end.

struct DpFixture {
  sim::EventQueue eq;
  net::PacketPool pool{4096, 2048};
  std::unique_ptr<core::MdpDataPlane> dp;
  /// (flow, seq, egress_ns): the byte-identity artifact.
  std::vector<std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>> log;

  ~DpFixture() { eq.clear(); }

  explicit DpFixture(core::DataPlaneConfig cfg) {
    cfg.num_paths = 4;
    cfg.dedup_sweep_interval_ns = 0;
    dp = std::make_unique<core::MdpDataPlane>(eq, pool, cfg,
                                              core::make_scheduler("rss"));
    dp->set_egress([this](net::PacketPtr p) {
      log.emplace_back(p->anno().flow_id, p->anno().seq,
                       p->anno().egress_ns);
    });
  }

  void send(std::uint32_t flow, sim::TimeNs at, std::uint32_t flow_bytes) {
    eq.schedule_at(at, [this, flow, flow_bytes] {
      net::BuildSpec spec;
      spec.flow = {0x0a010101 + flow, 0x0a006401,
                   static_cast<std::uint16_t>(1024 + flow), 80, 0};
      auto pkt = net::build_udp(pool, spec);
      ASSERT_TRUE(pkt);
      auto& a = pkt->anno();
      a.flow_id = flow;
      a.flow_hash = net::hash_flow(spec.flow);
      a.flow_bytes = flow_bytes;
      a.ingress_ns = eq.now();
      dp->ingress(std::move(pkt));
    });
  }

  void drive(std::uint32_t flows = 6, int per_flow = 60,
             std::uint32_t flow_bytes = 2'000) {
    sim::TimeNs t = 0;
    for (int i = 0; i < per_flow; ++i)
      for (std::uint32_t fl = 0; fl < flows; ++fl)
        send(fl, t += 600, flow_bytes);
    eq.run();
  }
};

TEST(DataPlaneReplication, DisabledAndParkedLeverAreByteIdenticalToSeed) {
  core::DataPlaneConfig off{};  // flow_repl defaulted off: the seed plane
  DpFixture a(off);
  a.drive();

  core::DataPlaneConfig parked{};
  parked.flow_repl.enabled = true;
  DpFixture b(parked);
  ASSERT_EQ(b.dp->granularity(), Granularity::kBoth)
      << "enabling flow replication must arm both levers by default";
  b.dp->set_granularity(Granularity::kPacketHedge);  // park the new lever
  b.drive();

  ASSERT_FALSE(a.log.empty());
  EXPECT_EQ(a.log, b.log)
      << "a parked granularity lever must not perturb egress order or "
         "timing by a single event";
  EXPECT_EQ(
      b.dp->fast_counters().get(core::DpCounter::kFlowReplicas), 0u);

  // And kNone truncates even scheduler redundancy to one copy: the
  // whole redundancy machine can be turned off from one knob.
  core::DataPlaneConfig none{};
  DpFixture c(none);
  c.dp->set_granularity(Granularity::kNone);
  c.drive();
  EXPECT_EQ(c.dp->fast_counters().get(core::DpCounter::kReplicas), 0u);
  EXPECT_EQ(c.dp->fast_counters().get(core::DpCounter::kHedges), 0u);
}

TEST(DataPlaneReplication, ReplicatedFlowsStayExactlyOnceInOrder) {
  core::DataPlaneConfig cfg{};
  cfg.flow_repl.enabled = true;
  cfg.flow_repl.size_cutoff_bytes = 30'000;
  DpFixture f(cfg);
  constexpr std::uint32_t kFlows = 6;
  constexpr int kPerFlow = 60;
  f.drive(kFlows, kPerFlow, /*flow_bytes=*/2'000);

  EXPECT_EQ(f.log.size(), static_cast<std::size_t>(kFlows * kPerFlow))
      << "every (flow, seq) must egress exactly once despite double-send";
  std::map<std::uint32_t, std::uint64_t> next;
  for (const auto& [flow, seq, ns] : f.log) {
    EXPECT_EQ(seq, next[flow]) << "flow " << flow;
    next[flow] = seq + 1;
  }
  const auto& fc = f.dp->fast_counters();
  EXPECT_EQ(fc.get(core::DpCounter::kFlowReplicas),
            static_cast<std::uint64_t>(kFlows * kPerFlow))
      << "every packet of every short flow must have sent a second copy";
  EXPECT_EQ(f.dp->flow_replicator()->flows_replicated(), kFlows);
  EXPECT_GT(f.dp->dedup().dup_drops(), 0u) << "losing copies must be real";
  EXPECT_GT(f.dp->extra_copy_bytes(), 0u);
  EXPECT_EQ(f.pool.in_use(), 0u) << "no leaks";

  // Flow completion retires all per-flow state.
  for (std::uint32_t fl = 0; fl < kFlows; ++fl) f.dp->end_flow(fl);
  EXPECT_EQ(f.dp->flow_replicator()->tracked(), 0u);
  EXPECT_EQ(f.dp->dedup().registered_flows(), 0u);
  EXPECT_EQ(f.dp->dedup().pending(), 0u);
}

TEST(DataPlaneReplication, ElephantsAreGatedToSinglePath) {
  core::DataPlaneConfig cfg{};
  cfg.flow_repl.enabled = true;
  cfg.flow_repl.size_cutoff_bytes = 30'000;
  DpFixture f(cfg);
  f.drive(/*flows=*/4, /*per_flow=*/40, /*flow_bytes=*/1'000'000);
  EXPECT_EQ(f.dp->fast_counters().get(core::DpCounter::kFlowReplicas), 0u);
  EXPECT_EQ(f.dp->flow_replicator()->flows_replicated(), 0u);
  EXPECT_EQ(f.dp->flow_replicator()->size_gated(), 4u);
  EXPECT_EQ(f.log.size(), 160u);
  EXPECT_EQ(f.pool.in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Controller e2e: the granularity lever moves on stage evidence.

TEST(GranularityE2E, DelayStormFlipsPacketToFlowAndBack) {
  chaos::ChaosScenarioConfig cfg;
  cfg.seed = 3;
  cfg.iterations = 40'000;
  cfg.flows = 4;
  cfg.num_paths = 2;
  cfg.packets_per_iter = 1;
  cfg.drain_per_iter = {8, 8};
  cfg.flow_affinity = true;  // keep the slow wire's pain in its own spans
  cfg.flow_replica = true;   // rig capability; the LEVER decides engagement
  cfg.granularity = Granularity::kPacketHedge;
  cfg.ctrl.slo_target_ns = 10'000;
  cfg.ctrl.violation_threshold = 0.25;
  cfg.ctrl.min_samples = 16;
  // Suppress quarantine: this scenario isolates the granularity lever
  // (otherwise the controller would cut the slow path instead).
  cfg.ctrl.path.quarantine_after = 1'000'000;
  cfg.ctrl.hedger.enabled = false;
  cfg.ctrl.hedge_timeout.enabled = false;
  cfg.ctrl.granularity.enabled = true;
  cfg.ctrl.granularity.baseline = Granularity::kPacketHedge;
  cfg.ctrl.granularity.min_samples = 16;
  cfg.ctrl.granularity.sustain_ticks = 2;
  cfg.ctrl.granularity.cooldown_ticks = 2;
  // Path 1's last mile turns slow mid-run: 40 wire ticks >> the SLO, a
  // service-stage storm by construction.
  cfg.phases.push_back({4'000, 24'000, 1, {.delay_ticks = 40}});

  chaos::ChaosResult r = chaos::ChaosRig(cfg).run();

  // Core invariants hold across the flip in BOTH directions.
  EXPECT_EQ(r.duplicate_egress, 0u);
  EXPECT_EQ(r.order_violations, 0u);
  EXPECT_EQ(r.pool_in_use, 0u);
  EXPECT_EQ(r.pool_allocs, r.pool_recycles);

  // The lever must move: service-dominant inflation escalates the
  // PacketHedge baseline to FlowReplica, and the clean tail brings it
  // home. Every shift is a logged, evidenced decision.
  ASSERT_GE(r.granularity_shifts, 2u)
      << "the storm must flip the lever out AND the calm must flip it back";
  std::vector<const ctrl::Decision*> shifts;
  for (const auto& d : r.decisions)
    if (d.path == ctrl::Decision::kGranularity) shifts.push_back(&d);
  ASSERT_GE(shifts.size(), 2u);
  EXPECT_STREQ(shifts.front()->reason, "granularity_shift");
  EXPECT_EQ(shifts.front()->gran_from, Granularity::kPacketHedge);
  EXPECT_EQ(shifts.front()->gran_to, Granularity::kFlowReplica)
      << "a service-dominant storm calls for flow replicas, not more "
         "packet hedges";
  EXPECT_STREQ(shifts.front()->dominant_stage, "service");
  EXPECT_EQ(shifts.back()->gran_to, Granularity::kPacketHedge)
      << "the lever must come home after the storm";
  EXPECT_EQ(r.final_granularity, Granularity::kPacketHedge);
  EXPECT_GT(r.flow_replicas, 0u)
      << "the flow-replica phase must have actually double-sent flows";

  // The decision log carries the lever: every decision logged while the
  // lever is enabled has a granularity field, and the report surfaces
  // the current setting at top level.
  EXPECT_NE(r.ctrl_report.find("\"granularity\""), std::string::npos);
  EXPECT_NE(r.ctrl_report.find("\"granularity_shift\""), std::string::npos);

  // Determinism: the flip is part of the reproducible artifact set.
  chaos::ChaosResult r2 = chaos::ChaosRig(cfg).run();
  EXPECT_EQ(r.ctrl_report, r2.ctrl_report);
  EXPECT_EQ(r.delivered_log, r2.delivered_log);
  EXPECT_EQ(r.granularity_shifts, r2.granularity_shifts);
}

}  // namespace
}  // namespace mdp
