// MdpDataPlane integration tests: exactly-once end-to-end delivery across
// every policy, functional chain effects (NAT/firewall really applied),
// redundancy accounting, hedging, failover, pool balance, determinism.
#include <gtest/gtest.h>

#include <map>

#include "core/dataplane.hpp"
#include "net/packet_builder.hpp"
#include "sim/interference.hpp"

namespace mdp::core {
namespace {

struct DpFixture {
  sim::EventQueue eq;
  net::PacketPool pool{2048, 2048};
  std::unique_ptr<MdpDataPlane> dp;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> egressed;
  stats::LatencyHistogram latency;

  ~DpFixture() {
    // Pending closures may own packets; destroy them before the pool.
    eq.clear();
  }

  explicit DpFixture(const std::string& policy, std::size_t paths = 4,
                     DataPlaneConfig cfg = {}) {
    cfg.num_paths = paths;
    cfg.dedup_sweep_interval_ns = 0;  // keep the event queue drainable
    dp = std::make_unique<MdpDataPlane>(eq, pool, cfg,
                                        make_scheduler(policy));
    dp->set_egress([this](net::PacketPtr p) {
      egressed.emplace_back(p->anno().flow_id, p->anno().seq);
      latency.record(p->anno().egress_ns - p->anno().ingress_ns);
    });
  }

  void send(std::uint32_t flow_id, sim::TimeNs at,
            net::TrafficClass tc = net::TrafficClass::kBestEffort,
            std::uint32_t src_ip = 0x0a010101) {
    eq.schedule_at(at, [this, flow_id, tc, src_ip] {
      net::BuildSpec spec;
      spec.flow = {src_ip, 0x0a006401,
                   static_cast<std::uint16_t>(1024 + flow_id), 80, 0};
      auto pkt = net::build_udp(pool, spec);
      ASSERT_TRUE(pkt);
      pkt->anno().flow_id = flow_id;
      pkt->anno().flow_hash = net::hash_flow(spec.flow);
      pkt->anno().traffic_class = tc;
      dp->ingress(std::move(pkt));
    });
  }
};

class PolicyEndToEnd : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyEndToEnd, ExactlyOnceInOrderDelivery) {
  DpFixture f(GetParam());
  constexpr int kFlows = 8;
  constexpr int kPerFlow = 100;
  sim::TimeNs t = 0;
  for (int i = 0; i < kPerFlow; ++i)
    for (std::uint32_t fl = 0; fl < kFlows; ++fl)
      f.send(fl, t += 700,
             fl == 0 ? net::TrafficClass::kLatencyCritical
                     : net::TrafficClass::kBestEffort);
  f.eq.run();

  EXPECT_EQ(f.egressed.size(),
            static_cast<std::size_t>(kFlows * kPerFlow))
      << GetParam() << ": every ingress packet must egress exactly once";

  // Exactly-once and per-flow in-order.
  std::map<std::uint32_t, std::uint64_t> next;
  for (auto [flow, seq] : f.egressed) {
    EXPECT_EQ(seq, next[flow]) << GetParam() << " flow " << flow;
    next[flow] = seq + 1;
  }
  EXPECT_EQ(f.pool.in_use(), 0u) << "no packet leaks";
  EXPECT_GT(f.latency.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyEndToEnd,
                         ::testing::Values("single", "rss", "rr", "jsq",
                                           "lla", "flowlet", "red2", "red3",
                                           "adaptive"));

TEST(DataPlane, FunctionalChainAppliesNatRewrite) {
  sim::EventQueue eq;
  net::PacketPool pool(256, 2048);
  DataPlaneConfig cfg;
  cfg.num_paths = 2;
  cfg.chain = "fw-nat";
  cfg.dedup_sweep_interval_ns = 0;
  MdpDataPlane dp(eq, pool, cfg, make_scheduler("jsq"));
  std::uint32_t seen_src = 0;
  dp.set_egress([&](net::PacketPtr p) {
    auto parsed = net::parse(*p);
    ASSERT_TRUE(parsed);
    seen_src = parsed->flow.src_ip;
  });
  net::BuildSpec spec;
  spec.flow = {0x0a010101, 0x0a006401, 7777, 80, 0};
  auto pkt = net::build_udp(pool, spec);
  pkt->anno().flow_id = 1;
  dp.ingress(std::move(pkt));
  eq.run();
  EXPECT_EQ(seen_src, 0x0a0a0a0au) << "NAT must rewrite at the real chain";
}

TEST(DataPlane, FirewallFiltersDarkTraffic) {
  sim::EventQueue eq;
  net::PacketPool pool(256, 2048);
  DataPlaneConfig cfg;
  cfg.num_paths = 2;
  cfg.chain = "fw";
  cfg.dedup_sweep_interval_ns = 0;
  MdpDataPlane dp(eq, pool, cfg, make_scheduler("jsq"));
  std::uint64_t egressed = 0;
  dp.set_egress([&](net::PacketPtr) { ++egressed; });

  auto send = [&](std::uint32_t src) {
    net::BuildSpec spec;
    spec.flow = {src, 0x0a006401, 1000, 80, 0};
    auto pkt = net::build_udp(pool, spec);
    pkt->anno().flow_id = src;
    dp.ingress(std::move(pkt));
  };
  send(0x7f000001);  // 127.0.0.1 -> denied by preset rules
  send(0x0a010101);  // allowed
  eq.run();
  EXPECT_EQ(egressed, 1u);
  EXPECT_EQ(dp.counters().get("chain_filtered"), 1u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(DataPlane, RedundantPolicyDropsDuplicatesAtMerge) {
  DpFixture f("red2");
  for (int i = 0; i < 50; ++i) f.send(1, 1000 * (i + 1));
  f.eq.run();
  EXPECT_EQ(f.egressed.size(), 50u);
  const auto& c = f.dp->counters();
  EXPECT_EQ(c.get("replicas"), 50u) << "one extra copy per packet";
  // Each packet's second copy is either deduped or filtered; with the
  // default allow-all flow nothing is filtered, so 50 dup drops.
  EXPECT_EQ(c.get("dup_dropped"), 50u);
  EXPECT_EQ(f.dp->dedup().pending(), 0u);
}

TEST(DataPlane, HedgeFiresWhenPathStalls) {
  sim::EventQueue eq;
  net::PacketPool pool(512, 2048);
  DataPlaneConfig cfg;
  cfg.num_paths = 2;
  cfg.dedup_sweep_interval_ns = 0;
  AdaptiveMdpConfig acfg;
  acfg.hedge_timeout_ns = 5'000;  // fixed, aggressive
  MdpDataPlane dp(eq, pool, cfg,
                  std::make_unique<AdaptiveMdpScheduler>(acfg));
  std::uint64_t egressed = 0;
  dp.set_egress([&](net::PacketPtr) { ++egressed; });

  // Stall path 0 with a long high-priority theft job, then inject a BE
  // packet that JSQ-flowlet will route to... path 0 or 1; stall both is
  // overkill — stall the one the packet lands on by stalling both briefly
  // except path 1 recovers fast.
  dp.core(0).submit(2'000'000, [](sim::TimeNs) {}, true, /*visible=*/false);

  net::BuildSpec spec;
  spec.flow = {0x0a010101, 0x0a006401, 1024, 80, 0};
  auto pkt = net::build_udp(pool, spec);
  pkt->anno().flow_id = 1;
  eq.schedule_at(100, [&, p = std::move(pkt)]() mutable {
    // Force dispatch onto the stalled path by stalling path 1 less: JSQ
    // picks path 1 normally, so instead mark path 1 down.
    dp.set_path_up(1, false);
    dp.ingress(std::move(p));
    dp.set_path_up(1, true);
  });
  eq.run();
  EXPECT_EQ(egressed, 1u);
  EXPECT_EQ(dp.counters().get("hedges"), 1u)
      << "hedge must fire for the stalled path";
  // The hedge copy (path 1) completes long before the stalled original.
  EXPECT_GE(dp.monitor().completed(1), 1u);
}

TEST(DataPlane, LcPriorityJumpsQueueUnderCongestion) {
  auto run = [](bool prio) {
    DataPlaneConfig cfg;
    cfg.lc_priority = prio;
    DpFixture f("single", 1, cfg);
    stats::LatencyHistogram lc, be;
    f.dp->set_egress([&](net::PacketPtr p) {
      auto& h = p->anno().traffic_class ==
                        net::TrafficClass::kLatencyCritical
                    ? lc
                    : be;
      h.record(p->anno().egress_ns - p->anno().ingress_ns);
    });
    // Overload one path briefly so a queue forms; 1 LC packet per 10 BE.
    // LC traffic lives on its own flows (as in TrafficGen) — otherwise
    // in-order delivery makes priority wait for queued same-flow BE seqs.
    sim::TimeNs t = 0;
    for (int i = 0; i < 2000; ++i) {
      bool lc = i % 10 == 0;
      f.send(lc ? 100 + (i / 10) % 4 : i % 16, t += 500,
             lc ? net::TrafficClass::kLatencyCritical
                : net::TrafficClass::kBestEffort);
    }
    f.eq.run();
    return std::make_pair(lc.p99(), be.p99());
  };
  auto [lc_off, be_off] = run(false);
  auto [lc_on, be_on] = run(true);
  EXPECT_LT(lc_on, lc_off / 4)
      << "priority must collapse LC queueing delay";
  EXPECT_LT(lc_on, be_on) << "LC must beat BE when prioritized";
  (void)be_off;
}

TEST(DataPlane, PathDownFailsOverEverything) {
  DpFixture f("jsq");
  f.dp->set_path_up(0, false);
  f.dp->set_path_up(2, false);
  for (int i = 0; i < 40; ++i) f.send(i % 4, 500 * (i + 1));
  f.eq.run();
  EXPECT_EQ(f.egressed.size(), 40u);
  EXPECT_EQ(f.dp->monitor().dispatched(0), 0u);
  EXPECT_EQ(f.dp->monitor().dispatched(2), 0u);
  EXPECT_GT(f.dp->monitor().dispatched(1), 0u);
  EXPECT_GT(f.dp->monitor().dispatched(3), 0u);
}

TEST(DataPlane, InterferenceInflatesSinglePathTail) {
  auto run = [](bool noisy) {
    DpFixture f("single", 1);
    std::unique_ptr<sim::InterferenceModel> noise;
    if (noisy) {
      sim::InterferenceConfig icfg;
      icfg.duty_cycle = 0.3;
      icfg.mean_burst_ns = 200'000;
      noise = std::make_unique<sim::InterferenceModel>(f.eq, f.dp->core(0),
                                                       icfg, 99);
      noise->start();
    }
    sim::TimeNs t = 0;
    for (int i = 0; i < 3000; ++i) f.send(i % 16, t += 4000);
    f.eq.run_until(t + 50 * sim::kMillisecond);
    return f.latency.p999();
  };
  auto quiet = run(false);
  auto noisy = run(true);
  EXPECT_GT(noisy, quiet * 5)
      << "interference must inflate the single-path p99.9 dramatically";
}

TEST(DataPlane, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    DataPlaneConfig cfg;
    cfg.seed = seed;
    DpFixture f("adaptive", 4, cfg);
    sim::TimeNs t = 0;
    for (int i = 0; i < 500; ++i)
      f.send(i % 8, t += 900,
             i % 5 == 0 ? net::TrafficClass::kLatencyCritical
                        : net::TrafficClass::kBestEffort);
    f.eq.run();
    return std::make_pair(f.egressed, f.latency.p999());
  };
  auto a = run(7);
  auto b = run(7);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// Property: even with paths flapping up/down randomly mid-run and an
// aggressive hedging policy, delivery stays exactly-once and in order and
// no packet leaks. (Down paths still *drain* — down only stops new
// dispatches — so nothing strands.)
class FailureFlappingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FailureFlappingFuzz, ExactlyOnceUnderPathFlapping) {
  sim::EventQueue eq;
  net::PacketPool pool(4096, 2048);
  DataPlaneConfig cfg;
  cfg.num_paths = 4;
  cfg.dedup_sweep_interval_ns = 0;
  cfg.seed = GetParam();
  // Strict order is only guaranteed while the resequencer never times out;
  // give it a budget beyond any stall this run can produce. (With the
  // default 200us timeout, stacked theft bursts legitimately force
  // late-after-skip deliveries — that path is covered in reorder tests.)
  cfg.reorder.timeout_ns = 1 * sim::kSecond;
  AdaptiveMdpConfig acfg;
  acfg.hedge_timeout_ns = 10'000;  // hedge aggressively
  MdpDataPlane dp(eq, pool, cfg,
                  std::make_unique<AdaptiveMdpScheduler>(acfg));

  std::map<std::uint32_t, std::uint64_t> next_seq;
  std::uint64_t egressed = 0;
  bool order_ok = true;
  dp.set_egress([&](net::PacketPtr p) {
    ++egressed;
    if (p->anno().seq != next_seq[p->anno().flow_id]) order_ok = false;
    next_seq[p->anno().flow_id] = p->anno().seq + 1;
  });

  sim::Rng rng(GetParam() * 77 + 5);
  // Random path flapping, always leaving at least path 0 up.
  for (int i = 0; i < 200; ++i) {
    eq.schedule_at(rng.uniform_u64(3'000'000), [&dp, &rng] {
      std::size_t p = 1 + rng.uniform_u64(3);
      dp.set_path_up(p, rng.bernoulli(0.5));
    });
  }
  // Random theft stalls.
  for (int i = 0; i < 30; ++i) {
    eq.schedule_at(rng.uniform_u64(3'000'000), [&dp, &rng] {
      dp.core(rng.uniform_u64(4))
          .submit(10'000 + rng.uniform_u64(100'000), [](sim::TimeNs) {},
                  true, false);
    });
  }

  constexpr int kPackets = 3000;
  for (int i = 0; i < kPackets; ++i) {
    eq.schedule_at(1 + i * 900, [&dp, &pool, i] {
      net::BuildSpec spec;
      spec.flow = {0x0a010101, 0x0a006401,
                   static_cast<std::uint16_t>(1024 + i % 12), 80, 0};
      auto pkt = net::build_udp(pool, spec);
      pkt->anno().flow_id = i % 12;
      pkt->anno().traffic_class = i % 7 == 0
                                      ? net::TrafficClass::kLatencyCritical
                                      : net::TrafficClass::kBestEffort;
      dp.ingress(std::move(pkt));
    });
  }
  eq.run();

  EXPECT_EQ(egressed, static_cast<std::uint64_t>(kPackets))
      << "every packet exactly once despite flapping + hedging";
  EXPECT_TRUE(order_ok) << "per-flow order preserved";
  EXPECT_EQ(pool.in_use(), 0u) << "no leaks";
  EXPECT_EQ(dp.dedup().pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureFlappingFuzz,
                         ::testing::Range(1, 7));

TEST(DataPlane, BoundedPathQueueDropsUnderOverload) {
  DataPlaneConfig cfg;
  cfg.path_queue_capacity = 8;
  DpFixture f("single", 1, cfg);
  // Arrivals far faster than service: the bounded queue must tail-drop.
  for (int i = 0; i < 500; ++i) f.send(i % 4, 10 * (i + 1));
  f.eq.run();
  const auto& c = f.dp->counters();
  EXPECT_GT(c.get("queue_drops"), 0u);
  EXPECT_EQ(f.egressed.size() + c.get("queue_drops"), 500u)
      << "every packet either egresses or is a counted drop";
  EXPECT_EQ(f.pool.in_use(), 0u);
  EXPECT_EQ(f.dp->dedup().pending(), 0u) << "dropped slots released";
}

TEST(DataPlane, RedundancySurvivesOneCopyQueueDrop) {
  // Path 0's queue is full; red2 sends copies to paths 0 and 1 — the
  // path-1 copy must still deliver exactly once.
  DataPlaneConfig cfg;
  cfg.path_queue_capacity = 4;
  DpFixture f("red2", 2, cfg);
  // Pre-fill path 0's queue with invisible stall + visible packets so it
  // stays the "least backlogged" choice for a while yet drops.
  f.dp->core(0).submit(10'000'000, [](sim::TimeNs) {}, true, false);
  // Arrival pace leaves path 1 comfortably below capacity: only path 0's
  // copies (stuck behind the stall) tail-drop.
  for (int i = 0; i < 40; ++i) f.send(i % 4, 2000 * (i + 1));
  f.eq.run();
  EXPECT_EQ(f.egressed.size(), 40u)
      << "surviving copies must cover the dropped ones";
  EXPECT_EQ(f.dp->dedup().pending(), 0u);
}

TEST(DataPlane, CostModelScalesWithChainLength) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  DataPlaneConfig short_cfg;
  short_cfg.chain = "ipcheck";
  short_cfg.dedup_sweep_interval_ns = 0;
  DataPlaneConfig long_cfg;
  long_cfg.chain = "full";
  long_cfg.dedup_sweep_interval_ns = 0;
  MdpDataPlane a(eq, pool, short_cfg, make_scheduler("jsq"));
  MdpDataPlane b(eq, pool, long_cfg, make_scheduler("jsq"));
  EXPECT_GT(b.chain_cost_ns(), a.chain_cost_ns() * 3);
}

// Property: conservation holds for every chain preset — each ingress
// packet either egresses exactly once or is accounted as chain-filtered.
class ChainPresetConservation
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ChainPresetConservation, IngressFullyAccounted) {
  sim::EventQueue eq;
  net::PacketPool pool(2048, 2048);
  DataPlaneConfig cfg;
  cfg.num_paths = 3;
  cfg.chain = GetParam();
  cfg.dedup_sweep_interval_ns = 0;
  MdpDataPlane dp(eq, pool, cfg, make_scheduler("adaptive"));
  std::uint64_t egressed = 0;
  dp.set_egress([&](net::PacketPtr) { ++egressed; });

  sim::Rng rng(99);
  constexpr int kPackets = 400;
  for (int i = 0; i < kPackets; ++i) {
    eq.schedule_at(1 + i * 1500, [&, i] {
      net::BuildSpec spec;
      // Mix of allowed and (for fw chains) denied sources.
      std::uint32_t src = rng.bernoulli(0.1)
                              ? 0x7f000001  // 127.0.0.1: denied by presets
                              : 0x0a010000 + static_cast<std::uint32_t>(
                                                 rng.uniform_u64(1000));
      spec.flow = {src, 0x0a006401,
                   static_cast<std::uint16_t>(1024 + i % 10), 80, 0};
      auto pkt = net::build_udp(pool, spec);
      pkt->anno().flow_id = i % 10;
      if (i % 6 == 0)
        pkt->anno().traffic_class = net::TrafficClass::kLatencyCritical;
      dp.ingress(std::move(pkt));
    });
  }
  eq.run();

  std::uint64_t filtered = dp.counters().get("chain_filtered");
  std::uint64_t dup = dp.counters().get("dup_dropped");
  // Copies of one packet may split between filtered and delivered, so
  // per-PACKET accounting uses the dedup ledger: nothing pending, every
  // packet either egressed once or had every copy filtered.
  EXPECT_EQ(dp.dedup().pending(), 0u) << GetParam();
  EXPECT_LE(egressed, static_cast<std::uint64_t>(kPackets)) << GetParam();
  EXPECT_EQ(dp.counters().get("dispatched"),
            egressed + dup + filtered)
      << GetParam() << ": every dispatched copy accounted";
  EXPECT_EQ(pool.in_use(), 0u) << GetParam();
  if (GetParam() == "ipcheck") EXPECT_EQ(egressed, 400u);
}

INSTANTIATE_TEST_SUITE_P(
    AllChains, ChainPresetConservation,
    ::testing::Values("ipcheck", "fw", "stateful", "fw-nat", "fw-nat-lb",
                      "fw-nat-lb-mon", "overlay", "full"));

TEST(DataPlane, RejectsInvalidConfig) {
  sim::EventQueue eq;
  net::PacketPool pool(8, 2048);
  DataPlaneConfig cfg;
  cfg.num_paths = 0;
  EXPECT_THROW(MdpDataPlane(eq, pool, cfg, make_scheduler("jsq")),
               std::invalid_argument);
  DataPlaneConfig cfg2;
  EXPECT_THROW(MdpDataPlane(eq, pool, cfg2, nullptr),
               std::invalid_argument);
  DataPlaneConfig cfg3;
  cfg3.chain = "no-such-chain";
  EXPECT_THROW(MdpDataPlane(eq, pool, cfg3, make_scheduler("jsq")),
               std::runtime_error);
}

}  // namespace
}  // namespace mdp::core
