// Chaos/soak suite: the whole stack — queues, faulty wire, dedup, reorder,
// SLO monitor, controller, hedging — run for 100k+ packets per seed under
// scripted fault storms, with the global invariants asserted at quiesce:
//
//   exactly-once   every (flow, seq) egresses at most once
//   in-order       per-flow egress seqs strictly increase
//   zero leaks     pool in_use == 0 and total_allocs == total_recycles
//   sane log       every controller decision uses a known reason, a legal
//                  FSM edge, and a known stage name
//   attribution    the dominant-stage verdict on the first quarantine
//                  matches the bottleneck the scenario injected
//   determinism    same seed -> byte-identical decision log, egress
//                  order, flight-recorder dump, and telem time series
//
// Any invariant failure attaches the tail of the flight-recorder dump to
// the failure message, so a red soak run carries its own timeline.
// See tests/chaos_harness.hpp for the rig itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chaos_harness.hpp"

namespace mdp {
namespace {

using chaos::ChaosResult;
using chaos::ChaosRig;
using chaos::ChaosScenarioConfig;

// ---------------------------------------------------------------------------
// Shared invariant checks.

void expect_core_invariants(const ChaosResult& r, const char* label) {
  EXPECT_EQ(r.duplicate_egress, 0u) << label << ": double egress";
  EXPECT_EQ(r.order_violations, 0u) << label << ": per-flow order broken";
  EXPECT_EQ(r.pool_in_use, 0u) << label << ": leaked frames at quiesce";
  EXPECT_EQ(r.pool_allocs, r.pool_recycles)
      << label << ": alloc/recycle imbalance";
  EXPECT_LE(r.egressed, r.copies_sent) << label;
  EXPECT_GT(r.egressed, 0u) << label << ": nothing made it through";
}

void expect_decision_log_sane(const ChaosResult& r, const char* label) {
  static const std::set<std::string> kReasons = {
      "slo_breach",     "backlog_breach", "slo+backlog_breach",
      "probe_breach",   "drain_start",    "drained",
      "probation_passed", "hedge_raise",  "hedge_lower",
      "hedge_timeout",  "tenant_throttle", "tenant_shed",
      "tenant_probation", "tenant_reinstate", "granularity_shift"};
  static const std::set<std::string> kStages = {
      "", "schedule", "queue_wait", "service", "chain", "merge", "reorder"};
  for (const auto& d : r.decisions) {
    EXPECT_TRUE(kReasons.count(d.reason))
        << label << ": unknown reason '" << d.reason << "'";
    EXPECT_TRUE(kStages.count(d.dominant_stage))
        << label << ": unknown stage '" << d.dominant_stage << "'";
    if (d.path == ctrl::Decision::kHedge ||
        d.path == ctrl::Decision::kGranularity)
      continue;
    if (d.path == ctrl::Decision::kTenant) {
      using T = ctrl::TenantState;
      const bool legal_t =
          (d.tenant_from == T::kAdmitted && d.tenant_to == T::kThrottled) ||
          (d.tenant_from == T::kThrottled && d.tenant_to == T::kShed) ||
          (d.tenant_from == T::kProbation && d.tenant_to == T::kShed) ||
          (d.tenant_from == T::kShed && d.tenant_to == T::kProbation) ||
          (d.tenant_from == T::kThrottled && d.tenant_to == T::kAdmitted) ||
          (d.tenant_from == T::kProbation && d.tenant_to == T::kAdmitted);
      EXPECT_TRUE(legal_t)
          << label << ": illegal tenant edge "
          << ctrl::tenant_state_name(d.tenant_from) << " -> "
          << ctrl::tenant_state_name(d.tenant_to);
      continue;
    }
    // Legal FSM edges, and the reason vocabulary glued to each edge.
    using S = ctrl::PathState;
    const bool legal =
        (d.from == S::kActive && d.to == S::kQuarantined) ||
        (d.from == S::kReinstated && d.to == S::kQuarantined) ||
        (d.from == S::kQuarantined && d.to == S::kDraining) ||
        (d.from == S::kDraining && d.to == S::kReinstated) ||
        (d.from == S::kReinstated && d.to == S::kActive);
    EXPECT_TRUE(legal) << label << ": illegal edge "
                       << ctrl::path_state_name(d.from) << " -> "
                       << ctrl::path_state_name(d.to);
  }
}

/// Attach the tail of the rig's flight-recorder dump to the current
/// failure, so the log of a red run shows what the plane was doing in its
/// final retained window (the full dump can run to hundreds of KB; the
/// tail holds the newest — most relevant — events).
void attach_recorder_tail(const ChaosResult& r, const char* label) {
  constexpr std::size_t kTailBytes = 4096;
  const std::string& d = r.telem_dump;
  const std::size_t from = d.size() > kTailBytes ? d.size() - kTailBytes : 0;
  ADD_FAILURE() << label << ": flight-recorder tail (" << r.telem_events
                << " events emitted; last " << (d.size() - from) << " of "
                << d.size() << " dump bytes):\n"
                << d.substr(from);
}

/// The standard invariant bundle, with the flight-recorder tail attached
/// iff a check inside this call failed (not on pre-existing failures).
void expect_invariants_with_timeline(const ChaosResult& r,
                                     const char* label) {
  const bool failed_before = ::testing::Test::HasFailure();
  expect_core_invariants(r, label);
  expect_decision_log_sane(r, label);
  if (!failed_before && ::testing::Test::HasFailure())
    attach_recorder_tail(r, label);
}

/// First quarantine decision in the log, or nullptr.
const ctrl::Decision* first_quarantine(const ChaosResult& r) {
  for (const auto& d : r.decisions)
    if (d.path != ctrl::Decision::kHedge &&
        d.to == ctrl::PathState::kQuarantined)
      return &d;
  return nullptr;
}

ctrl::Config soak_ctrl() {
  ctrl::Config c;
  c.slo_target_ns = 10'000;  // 10 logical iterations
  c.violation_threshold = 0.25;
  c.min_samples = 16;
  c.path.quarantine_after = 2;
  c.path.probation_probes = 8;
  c.probe_grant_per_tick = 8;
  c.min_serving_paths = 1;
  c.hedger.enabled = false;
  c.hedge_timeout.enabled = false;
  return c;
}

// ---------------------------------------------------------------------------
// Attribution: the dominant-stage verdict matches the injected bottleneck.

TEST(ChaosAttribution, WireDelayYieldsServiceDominatedQuarantine) {
  ChaosScenarioConfig cfg;
  cfg.seed = 7;
  cfg.iterations = 20'000;
  cfg.packets_per_iter = 1;
  cfg.drain_per_iter = {8, 8};  // queues never build: wire is the bottleneck
  cfg.flow_affinity = true;     // keep the slow path's pain in its own spans
  cfg.ctrl = soak_ctrl();
  // Path 1's last mile turns slow mid-run: 40 wire ticks = 40k ns >> SLO.
  cfg.phases.push_back({2'000, 18'000, 1, {.delay_ticks = 40}});

  ChaosResult r = ChaosRig(cfg).run();
  expect_invariants_with_timeline(r, "service");
  ASSERT_GT(r.quarantines, 0u) << "the slow path must get caught";
  const ctrl::Decision* q = first_quarantine(r);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->path, 1u) << "the delayed path is the one quarantined";
  EXPECT_STREQ(q->reason, "slo_breach");
  EXPECT_STREQ(q->dominant_stage, "service")
      << "wire delay must be attributed to the service stage";
  EXPECT_GT(q->dominant_stage_ns, 0u);
  // The quarantine must have auto-captured a timeline at decision time,
  // and that dump must show the decision event that triggered it.
  EXPECT_GT(r.auto_dumps, 0u);
  ASSERT_FALSE(r.quarantine_dump.empty());
  EXPECT_NE(r.quarantine_dump.find("\"ctrl_decision\""), std::string::npos)
      << "the dump is taken after the decision event, so it must show it";
  EXPECT_NE(r.quarantine_dump.find("\"ingress_burst\""), std::string::npos)
      << "the dump window must cover the traffic leading up to the cut";
}

TEST(ChaosAttribution, DrainStarvationYieldsQueueWaitDominatedQuarantine) {
  ChaosScenarioConfig cfg;
  cfg.seed = 11;
  cfg.iterations = 20'000;
  cfg.packets_per_iter = 3;      // ~1.5 pkts/iter per path
  cfg.drain_per_iter = {8, 1};   // path 1 drains slower than it fills
  cfg.reorder_timeout_ns = 1'000'000;  // outlast the deepest queue dwell
  cfg.flow_affinity = true;      // keep the starved queue in its own spans
  cfg.ctrl = soak_ctrl();

  ChaosResult r = ChaosRig(cfg).run();
  expect_invariants_with_timeline(r, "queue");
  ASSERT_GT(r.quarantines, 0u) << "the starved path must get caught";
  const ctrl::Decision* q = first_quarantine(r);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->path, 1u) << "the starved path is the one quarantined";
  EXPECT_STREQ(q->dominant_stage, "queue_wait")
      << "drain starvation must be attributed to queue wait";
  EXPECT_GT(q->dominant_stage_ns, 0u);
}

// ---------------------------------------------------------------------------
// The soak sweep: >= 8 seeds x 100k packets through composed fault storms
// with hedging live. Every seed must satisfy every invariant.

ChaosScenarioConfig soak_cfg(std::uint64_t seed) {
  ChaosScenarioConfig cfg;
  cfg.seed = seed;
  cfg.iterations = 100'000;
  cfg.flows = 4;
  cfg.packets_per_iter = 1;
  cfg.drain_per_iter = {4, 4};
  cfg.ctrl = soak_ctrl();
  cfg.ctrl.slo_target_ns = 6'000;
  cfg.ctrl.backlog_limit = 4'096;
  cfg.ctrl.hedge_timeout.enabled = true;
  cfg.ctrl.hedge_timeout.min_timeout_ns = 1'000;
  cfg.ctrl.hedge_timeout.min_samples = 16;
  // Two overlapping fault storms plus a clean tail so quarantined paths
  // can drain, pass probation, and serve again before quiesce.
  io::LoopbackFaults storm0;
  storm0.drop_rate = 0.05;
  storm0.dup_rate = 0.03;
  storm0.reorder_rate = 0.10;
  storm0.reorder_extra_ticks = 4;
  io::LoopbackFaults storm1;
  storm1.drop_rate = 0.02;
  storm1.reorder_rate = 0.15;
  storm1.reorder_extra_ticks = 8;
  storm1.delay_ticks = 6;
  cfg.phases.push_back({5'000, 60'000, 0, storm0});
  cfg.phases.push_back({20'000, 80'000, 1, storm1});
  return cfg;
}

TEST(ChaosSoak, EightSeedSweepHoldsAllInvariants) {
  std::uint64_t total_hedges = 0;
  std::uint64_t total_decisions = 0;
  for (std::uint64_t seed : {3u, 17u, 29u, 43u, 59u, 71u, 83u, 97u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosRig rig(soak_cfg(seed));
    ChaosResult r = rig.run();
    const std::string label = "seed " + std::to_string(seed);
    EXPECT_EQ(r.generated, 100'000u);
    expect_invariants_with_timeline(r, label.c_str());
    EXPECT_GT(r.telem_events, 0u)
        << label << ": the flight recorder must see the run";
    EXPECT_EQ(rig.pool_exhaustions(), 0u)
        << label << ": pool must be sized for the sweep";
    EXPECT_EQ(r.egressed, r.arrived_unique)
        << label << ": every surviving (flow, seq) egressed exactly once";
    EXPECT_GT(r.wire_dropped + r.wire_duplicated + r.wire_reordered, 0u)
        << label << ": the storms must actually fire";
    total_hedges += r.hedges_sent;
    total_decisions += r.decisions.size();
  }
  EXPECT_GT(total_hedges, 0u)
      << "the PID hedge deadline must rescue stragglers somewhere in the "
         "sweep";
  EXPECT_GT(total_decisions, 0u) << "the controller must visibly act";
}

// ---------------------------------------------------------------------------
// Flow-granularity replication soak: the same storms, but every flow rides
// a stable pair of faulty paths with both copies expected at dedup.
// First-copy-wins must hold exactly-once / in-order / zero-leak across
// seeds, reruns must be byte-identical, and the lever parked at
// kPacketHedge must leave the rig byte-for-byte the legacy machine.

ChaosScenarioConfig replica_soak_cfg(std::uint64_t seed) {
  ChaosScenarioConfig cfg = soak_cfg(seed);
  cfg.flow_replica = true;
  cfg.granularity = core::Granularity::kBoth;  // replicas AND hedging live
  return cfg;
}

TEST(ChaosFlowReplica, FourSeedSweepHoldsAllInvariants) {
  std::uint64_t total_replicas = 0;
  for (std::uint64_t seed : {5u, 19u, 31u, 47u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosRig rig(replica_soak_cfg(seed));
    ChaosResult r = rig.run();
    const std::string label = "replica seed " + std::to_string(seed);
    EXPECT_EQ(r.generated, 100'000u);
    expect_invariants_with_timeline(r, label.c_str());
    EXPECT_EQ(rig.pool_exhaustions(), 0u)
        << label << ": pool must be sized for double-send";
    EXPECT_EQ(r.egressed, r.arrived_unique)
        << label << ": every surviving (flow, seq) egressed exactly once";
    // Replication must be the norm, not a fluke: with both paths serving,
    // nearly every packet goes out twice.
    EXPECT_GT(r.flow_replicas, r.generated / 2)
        << label << ": flow replication barely engaged";
    EXPECT_GT(r.wire_dropped + r.wire_duplicated + r.wire_reordered, 0u)
        << label << ": the storms must actually hit the replicated flows";
    total_replicas += r.flow_replicas;
  }
  EXPECT_GT(total_replicas, 0u);
}

TEST(ChaosFlowReplica, SameSeedIsByteIdentical) {
  ChaosScenarioConfig cfg = replica_soak_cfg(23);
  cfg.iterations = 30'000;
  ChaosResult a = ChaosRig(cfg).run();
  ChaosResult b = ChaosRig(cfg).run();
  EXPECT_GT(a.flow_replicas, 0u) << "replication must engage to prove it";
  EXPECT_EQ(a.flow_replicas, b.flow_replicas);
  EXPECT_EQ(a.ctrl_report, b.ctrl_report)
      << "same seed must reproduce the decision log byte for byte";
  EXPECT_EQ(a.delivered_log, b.delivered_log)
      << "same seed must reproduce the egress order exactly";
  EXPECT_EQ(a.telem_dump, b.telem_dump);
  EXPECT_EQ(a.telem_report, b.telem_report);
}

TEST(ChaosFlowReplica, LeverOffIsByteIdenticalToLegacyRig) {
  // flow_replica=true but granularity parked at kPacketHedge: the replica
  // branch is dead code, and the rig must be indistinguishable from the
  // pre-replication harness — same RNG draws, same egress order, same
  // decision log. This is the "disabled means OFF" contract.
  ChaosScenarioConfig legacy = soak_cfg(42);
  legacy.iterations = 30'000;
  ChaosScenarioConfig parked = legacy;
  parked.flow_replica = true;
  parked.granularity = core::Granularity::kPacketHedge;
  ChaosResult a = ChaosRig(legacy).run();
  ChaosResult b = ChaosRig(parked).run();
  EXPECT_EQ(b.flow_replicas, 0u);
  EXPECT_EQ(a.delivered_log, b.delivered_log)
      << "a parked replication lever must not perturb the packet stream";
  EXPECT_EQ(a.ctrl_report, b.ctrl_report);
  EXPECT_EQ(a.telem_dump, b.telem_dump);
  EXPECT_EQ(a.hedges_sent, b.hedges_sent);
}

// ---------------------------------------------------------------------------
// Determinism: the decision log is a reproducible artifact. Same seed ->
// byte-identical report JSON and identical egress order.

TEST(ChaosSoak, SameSeedIsByteIdentical) {
  ChaosScenarioConfig cfg = soak_cfg(42);
  cfg.iterations = 30'000;  // plenty of decisions, quick enough to run twice
  ChaosResult a = ChaosRig(cfg).run();
  ChaosResult b = ChaosRig(cfg).run();
  EXPECT_FALSE(a.decisions.empty())
      << "a run with no decisions proves nothing";
  EXPECT_EQ(a.ctrl_report, b.ctrl_report)
      << "same seed must reproduce the decision log byte for byte";
  EXPECT_EQ(a.delivered_log, b.delivered_log)
      << "same seed must reproduce the egress order exactly";
  EXPECT_EQ(a.hedges_sent, b.hedges_sent);
  EXPECT_EQ(a.egressed, b.egressed);
  // The telemetry plane is part of the deterministic artifact set: the
  // merged flight-recorder timeline, the per-tick telem series, and any
  // quarantine auto-dump must all be byte-identical across reruns.
  EXPECT_GT(a.telem_events, 0u);
  ASSERT_FALSE(a.telem_dump.empty());
  EXPECT_EQ(a.telem_dump, b.telem_dump)
      << "same seed must reproduce the flight-recorder dump byte for byte";
  ASSERT_FALSE(a.telem_report.empty());
  EXPECT_EQ(a.telem_report, b.telem_report)
      << "same seed must reproduce the telem time series byte for byte";
  EXPECT_EQ(a.quarantine_dump, b.quarantine_dump);
  EXPECT_EQ(a.telem_events, b.telem_events);
  EXPECT_EQ(a.auto_dumps, b.auto_dumps);

  ChaosScenarioConfig other = cfg;
  other.seed = 43;
  ChaosResult c = ChaosRig(other).run();
  EXPECT_NE(a.delivered_log, c.delivered_log)
      << "a different seed must visibly change the run";
}

// ---------------------------------------------------------------------------
// Tenancy (docs/TENANCY.md): a storming tenant must not poison its
// neighbor's tail. Tenant A rides a connection-storm ramp that breaks its
// arrival contract; tenant B keeps a steady in-budget load. The invariant
// is NON-CONTAGION: with tenant admission live, B's exact p99.9 stays
// inside its SLO while A gets throttled/shed — and the global soak
// invariants (exactly-once, in-order, zero-leak) hold throughout,
// including while the admission state flaps under a second thread.

ChaosScenarioConfig tenant_storm_cfg(std::uint64_t seed) {
  ChaosScenarioConfig cfg;
  cfg.seed = seed;
  cfg.iterations = 40'000;
  cfg.num_paths = 2;
  cfg.drain_per_iter = {4, 4};
  cfg.packets_per_iter = 0;  // tenant mode generates all traffic
  cfg.ctrl = soak_ctrl();
  cfg.ctrl.slo_target_ns = 50'000;  // B's contract: p99.9 <= 50 us logical
  cfg.pool_size = 32'768;
  // Constant 2-tick wire delay on both paths: the victim's latencies are
  // real nonzero numbers, so the p99.9 assertion below has teeth.
  io::LoopbackFaults base_wire;
  base_wire.delay_ticks = 2;
  cfg.phases.push_back({0, 1'000'000, 0, base_wire});
  cfg.phases.push_back({0, 1'000'000, 1, base_wire});

  // Tenant A ("storm"): a connection storm ramping to ~20 new flows per
  // iteration — far past its contracted 320 packet arrivals per 64-iter
  // controller window. Offered load at peak (~24 pkts/iter) is 3x the
  // plane's drain budget (8/iter): without admission this drowns everyone.
  ChaosScenarioConfig::TenantTraffic a;
  a.storm.base_arrivals_per_tick = 0.05;
  a.storm.conn_lifetime_ticks = 32;
  a.storm.storm_from = 5'000;
  a.storm.storm_to = 35'000;
  a.storm.storm_peak_arrivals_per_tick = 20.0;
  a.spec.name = "storm";
  a.spec.arrival_budget_per_tick = 320;
  a.spec.throttle_keep_one_in = 8;
  a.packets_per_iter = 2;

  // Tenant B ("steady"): in budget the whole run.
  ChaosScenarioConfig::TenantTraffic b;
  b.storm.base_arrivals_per_tick = 0.2;
  b.storm.conn_lifetime_ticks = 2'000;
  b.spec.name = "steady";
  b.spec.arrival_budget_per_tick = 1'000;
  b.packets_per_iter = 2;

  cfg.tenants = {a, b};
  cfg.tenant_ctrl.throttle_after = 2;
  cfg.tenant_ctrl.shed_after = 2;
  cfg.tenant_ctrl.cooldown_windows = 4;
  cfg.tenant_ctrl.probation_windows = 4;
  return cfg;
}

/// Exact quantile over a tenant's full latency log (no histogram buckets).
std::uint64_t exact_quantile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

TEST(ChaosTenants, StormNonContagionInvariant) {
  ChaosResult r = ChaosRig(tenant_storm_cfg(5)).run();
  expect_invariants_with_timeline(r, "tenant storm");

  // The storm must be real: >= 100k new-flow arrivals offered by tenant A.
  ASSERT_EQ(r.tenant_flow_arrivals.size(), 2u);
  EXPECT_GE(r.tenant_flow_arrivals[0], 100'000u)
      << "the connection storm must offer at least 100k flow arrivals";

  // The admission stage must catch the contract breach...
  EXPECT_GE(r.tenant_throttles, 1u);
  EXPECT_GE(r.tenant_sheds, 1u) << "a 3x-overload tenant must get shed";
  EXPECT_GT(r.tenant_dropped, 0u);
  // ...and reinstate once the storm passes (the ramp ends well before
  // quiesce, leaving room for cooldown + probation).
  EXPECT_GE(r.tenant_reinstates, 1u);
  ASSERT_EQ(r.tenant_final_states.size(), 2u);
  EXPECT_STREQ(r.tenant_final_states[1], "ADMITTED")
      << "the well-behaved tenant must never leave admitted";

  // Non-contagion: B's EXACT p99.9 stays inside its SLO target while A
  // storms at 3x the plane's capacity.
  ASSERT_EQ(r.tenant_latencies.size(), 2u);
  ASSERT_GT(r.tenant_latencies[1].size(), 10'000u)
      << "tenant B must actually have run traffic through the storm";
  const std::uint64_t b_p999 = exact_quantile(r.tenant_latencies[1], 0.999);
  EXPECT_GT(b_p999, 0u) << "the base wire delay must make latency nonzero";
  EXPECT_LE(b_p999, 50'000u)
      << "tenant B's p99.9 breached its SLO: the storm leaked across "
         "tenants (contagion)";
  // A's own tail is allowed to be terrible — that's the deal it signed.

  // The shed must be visible in the artifacts: a tenant decision in the
  // log and a "tenants" section in the report.
  bool saw_shed = false;
  for (const auto& d : r.decisions)
    if (d.path == ctrl::Decision::kTenant &&
        std::string(d.reason) == "tenant_shed")
      saw_shed = true;
  EXPECT_TRUE(saw_shed) << "the shed must be a logged, evidenced decision";
  EXPECT_NE(r.ctrl_report.find("\"tenants\""), std::string::npos);
  EXPECT_NE(r.ctrl_report.find("\"storm\""), std::string::npos);
  EXPECT_NE(r.telem_report.find("\"tenants\""), std::string::npos)
      << "telem per-tick rows must carry the tenant columns";
}

TEST(ChaosTenants, SameSeedIsByteIdentical) {
  ChaosScenarioConfig cfg = tenant_storm_cfg(9);
  cfg.iterations = 15'000;
  cfg.tenants[0].storm.storm_from = 2'000;
  cfg.tenants[0].storm.storm_to = 12'000;
  ChaosResult a = ChaosRig(cfg).run();
  ChaosResult b = ChaosRig(cfg).run();
  EXPECT_GT(a.tenant_sheds + a.tenant_throttles, 0u)
      << "a run where admission never acts proves nothing";
  EXPECT_EQ(a.ctrl_report, b.ctrl_report)
      << "tenant decisions must be as reproducible as path decisions";
  EXPECT_EQ(a.delivered_log, b.delivered_log);
  EXPECT_EQ(a.telem_report, b.telem_report);
  EXPECT_EQ(a.telem_dump, b.telem_dump);
  EXPECT_EQ(a.tenant_dropped, b.tenant_dropped);
  EXPECT_EQ(a.tenant_latencies, b.tenant_latencies);
  EXPECT_EQ(a.tenant_offered, b.tenant_offered);
}

TEST(ChaosTenants, AdmissionFlapFromSecondThreadKeepsInvariants) {
  // A second thread hammers the admission stage's lock-free surface —
  // admit / state / observe / hedge tokens — while the rig runs. The
  // outcome is intentionally nondeterministic (the flap changes which
  // packets enter); what must survive ANY interleaving is the invariant
  // set: exactly-once, per-flow order, zero leaks. Under TSan this is
  // also the data-race proof for the admit-path atomics.
  ChaosScenarioConfig cfg = tenant_storm_cfg(13);
  cfg.iterations = 12'000;
  cfg.tenants[0].storm.storm_from = 1'000;
  cfg.tenants[0].storm.storm_to = 9'000;
  ChaosRig rig(cfg);

  std::atomic<bool> done{false};
  ChaosResult r;
  std::thread runner([&] {
    r = rig.run();
    done.store(true, std::memory_order_release);
  });
  std::uint64_t prods = 0;
  while (!done.load(std::memory_order_acquire)) {
    if (ctrl::TenantAdmission* ta = rig.tenants_live()) {
      for (int t = 0; t < 2; ++t) {
        ta->admit(static_cast<std::uint16_t>(t));
        (void)ta->state(static_cast<std::uint16_t>(t));
        ta->observe(static_cast<std::uint16_t>(t), 1'000 + prods % 100'000);
        ta->try_consume_hedge_token(static_cast<std::uint16_t>(t));
        ta->on_flow_arrival(static_cast<std::uint16_t>(t));
      }
      ++prods;
    } else {
      std::this_thread::yield();
    }
  }
  runner.join();
  EXPECT_GT(prods, 0u) << "the prodding thread must have overlapped the run";
  expect_invariants_with_timeline(r, "tenant flap");
  EXPECT_GT(r.egressed, 0u);
}

}  // namespace
}  // namespace mdp
