// Click engine tests: registry, config-language parsing, element
// semantics, the stride scheduler, and chain cost accounting.
#include <gtest/gtest.h>

#include "click/element.hpp"
#include "click/elements.hpp"
#include "click/registry.hpp"
#include "click/router.hpp"
#include "click/task.hpp"
#include "net/packet_builder.hpp"
#include "nf/chain.hpp"

#include <cstring>
#include <vector>

namespace mdp::click {
namespace {

struct ClickFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{256, 2048};
  Router router{Router::Context{&eq, &pool}};

  net::PacketPtr make_udp(std::uint16_t sport = 1000,
                          std::size_t payload = 64) {
    net::BuildSpec spec;
    spec.flow = {0x0a000001, 0x0a000002, sport, 80, 17};
    spec.payload_len = payload;
    auto pkt = net::build_udp(pool, spec);
    EXPECT_TRUE(pkt);
    return pkt;
  }
};

TEST_F(ClickFixture, RegistryKnowsStandardElements) {
  auto& reg = ElementRegistry::instance();
  for (const char* name :
       {"Queue", "Unqueue", "Counter", "Discard", "Tee", "Classifier",
        "HashSwitch", "RoundRobinSwitch", "Paint", "PaintSwitch",
        "CheckIPHeader", "DecIPTTL", "Strip", "Unstrip", "EtherMirror",
        "InfiniteSource", "Firewall", "Nat", "LoadBalancer", "Dpi",
        "RateLimiter", "FlowMonitor"})
    EXPECT_TRUE(reg.has(name)) << name;
  EXPECT_FALSE(reg.has("Bogus"));
  EXPECT_EQ(reg.create("Bogus"), nullptr);
}

TEST_F(ClickFixture, ParseDeclarationsAndConnections) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    // a comment
    q :: Queue(8);
    cnt :: Counter;
    sink :: Discard;
    /* block comment */
    cnt -> q;
  )",
                               &err))
      << err;
  EXPECT_NE(router.find("q"), nullptr);
  EXPECT_NE(router.find("cnt"), nullptr);
  EXPECT_EQ(router.find("nonexistent"), nullptr);
  auto* q = router.find_as<Queue>("q");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->capacity(), 8u);
}

TEST_F(ClickFixture, ParseAnonymousChains) {
  std::string err;
  ASSERT_TRUE(router.configure(
      "c :: Counter; c -> Paint(3) -> Counter -> Discard;", &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* c = router.find_as<Counter>("c");
  c->push(0, make_udp());
  EXPECT_EQ(c->packets(), 1u);
}

TEST_F(ClickFixture, ParsePortSpecifiers) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    cl :: Classifier(23/11, -);
    a :: Counter; b :: Counter;
    cl [0] -> a -> Discard;
    cl [1] -> [0] b -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* cl = router.find("cl");
  // Offset 23 of an Ethernet+IPv4 frame is the protocol byte; 0x11 = UDP.
  cl->push(0, make_udp());
  EXPECT_EQ(router.find_as<Counter>("a")->packets(), 1u);
  EXPECT_EQ(router.find_as<Counter>("b")->packets(), 0u);
}

TEST_F(ClickFixture, ParseErrorsAreReported) {
  std::string err;
  EXPECT_FALSE(router.configure("x :: NoSuchElement;", &err));
  EXPECT_NE(err.find("NoSuchElement"), std::string::npos);

  Router r2;
  EXPECT_FALSE(r2.configure("a -> b;", &err));
  Router r3;
  EXPECT_FALSE(r3.configure("q :: Queue(0);", &err));
  Router r4;
  EXPECT_FALSE(r4.configure("q :: Queue(4); q :: Queue(4);", &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST_F(ClickFixture, DoubleConnectOutputRejected) {
  std::string err;
  EXPECT_FALSE(router.configure(
      "c :: Counter; d1 :: Discard; d2 :: Discard; c -> d1; c -> d2;",
      &err));
  EXPECT_NE(err.find("already connected"), std::string::npos);
}

TEST_F(ClickFixture, QueueStoresAndDropsAtCapacity) {
  std::string err;
  ASSERT_TRUE(router.configure("q :: Queue(2);", &err)) << err;
  auto* q = router.find_as<Queue>("q");
  q->push(0, make_udp(1));
  q->push(0, make_udp(2));
  q->push(0, make_udp(3));  // dropped
  EXPECT_EQ(q->size(), 2u);
  EXPECT_EQ(q->drops(), 1u);
  EXPECT_EQ(q->highwater(), 2u);
  auto out = q->pull(0);
  ASSERT_TRUE(out);
  auto parsed = net::parse(*out);
  EXPECT_EQ(parsed->flow.src_port, 1) << "FIFO order";
}

TEST_F(ClickFixture, UnqueueMovesPacketsUnderScheduler) {
  std::string err;
  ASSERT_TRUE(router.configure(
      "q :: Queue(16); u :: Unqueue; c :: Counter; "
      "q -> u -> c -> Discard;",
      &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* q = router.find_as<Queue>("q");
  for (int i = 0; i < 5; ++i) q->push(0, make_udp());
  router.scheduler().run(100);
  EXPECT_EQ(router.find_as<Counter>("c")->packets(), 5u);
  EXPECT_EQ(q->size(), 0u);
}

TEST_F(ClickFixture, TeeDuplicatesToAllOutputs) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    t :: Tee; a :: Counter; b :: Counter; c :: Counter;
    t [0] -> a -> Discard; t [1] -> b -> Discard; t [2] -> c -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  std::uint64_t in_use_before = pool.in_use();
  router.find("t")->push(0, make_udp());
  EXPECT_EQ(router.find_as<Counter>("a")->packets(), 1u);
  EXPECT_EQ(router.find_as<Counter>("b")->packets(), 1u);
  EXPECT_EQ(router.find_as<Counter>("c")->packets(), 1u);
  EXPECT_EQ(pool.in_use(), in_use_before)
      << "all copies must be recycled by Discard";
}

TEST_F(ClickFixture, ClassifierMasksAndFallthrough) {
  std::string err;
  // 12/0800 matches the IPv4 ethertype; mask variant checks low nibble.
  ASSERT_TRUE(router.configure(R"(
    cl :: Classifier(12/0800, -);
    ip :: Counter; other :: Counter;
    cl [0] -> ip -> Discard; cl [1] -> other -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* cl = router.find("cl");
  cl->push(0, make_udp());
  auto arp = pool.alloc();
  arp->set_length(60);
  net::EthernetView(arp->data()).set_ether_type(net::kEtherTypeArp);
  cl->push(0, std::move(arp));
  EXPECT_EQ(router.find_as<Counter>("ip")->packets(), 1u);
  EXPECT_EQ(router.find_as<Counter>("other")->packets(), 1u);
}

TEST_F(ClickFixture, ClassifierRejectsBadPatterns) {
  std::string err;
  Router r;
  EXPECT_FALSE(r.configure("c :: Classifier(nonsense);", &err));
  Router r2;
  EXPECT_FALSE(r2.configure("c :: Classifier(12/08zz);", &err));
  Router r3;
  EXPECT_FALSE(r3.configure("c :: Classifier(12/0800%ff);", &err))
      << "mask length mismatch must be rejected";
}

TEST_F(ClickFixture, HashSwitchIsFlowConsistent) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    h :: HashSwitch(2); a :: Counter; b :: Counter;
    h [0] -> a -> Discard; h [1] -> b -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* h = router.find("h");
  for (int i = 0; i < 10; ++i) h->push(0, make_udp(4242));
  auto* a = router.find_as<Counter>("a");
  auto* b = router.find_as<Counter>("b");
  EXPECT_EQ(a->packets() + b->packets(), 10u);
  EXPECT_TRUE(a->packets() == 10 || b->packets() == 10)
      << "one flow must stick to one output";
}

TEST_F(ClickFixture, RoundRobinSwitchAlternates) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    r :: RoundRobinSwitch(2); a :: Counter; b :: Counter;
    r [0] -> a -> Discard; r [1] -> b -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  for (int i = 0; i < 10; ++i) router.find("r")->push(0, make_udp());
  EXPECT_EQ(router.find_as<Counter>("a")->packets(), 5u);
  EXPECT_EQ(router.find_as<Counter>("b")->packets(), 5u);
}

TEST_F(ClickFixture, PaintThenPaintSwitchRoutes) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    p :: Paint(1); ps :: PaintSwitch;
    a :: Counter; b :: Counter;
    p -> ps; ps [0] -> a -> Discard; ps [1] -> b -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.find("p")->push(0, make_udp());
  EXPECT_EQ(router.find_as<Counter>("b")->packets(), 1u);
  EXPECT_EQ(router.find_as<Counter>("a")->packets(), 0u);
}

TEST_F(ClickFixture, CheckIPHeaderDropsCorrupted) {
  std::string err;
  ASSERT_TRUE(router.configure(
      "chk :: CheckIPHeader; ok :: Counter; chk -> ok -> Discard;", &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* chk = router.find_as<CheckIPHeader>("chk");
  chk->push(0, make_udp());
  auto bad = make_udp();
  bad->data()[net::kEthernetHeaderLen + 8] ^= std::byte{0x55};  // TTL
  chk->push(0, std::move(bad));
  EXPECT_EQ(router.find_as<Counter>("ok")->packets(), 1u);
  EXPECT_EQ(chk->drops(), 1u);
}

TEST_F(ClickFixture, DecIPTTLKeepsChecksumValid) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    dec :: DecIPTTL; chk :: CheckIPHeader; ok :: Counter;
    dec -> chk -> ok -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.find("dec")->push(0, make_udp());
  EXPECT_EQ(router.find_as<Counter>("ok")->packets(), 1u)
      << "post-decrement checksum must still validate";
}

TEST_F(ClickFixture, DecIPTTLExpiresAtOne) {
  std::string err;
  ASSERT_TRUE(router.configure(
      "dec :: DecIPTTL; ok :: Counter; dec -> ok -> Discard;", &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  net::BuildSpec spec;
  spec.flow = {1, 2, 3, 4, 17};
  spec.ttl = 1;
  auto pkt = net::build_udp(pool, spec);
  auto* dec = router.find_as<DecIPTTL>("dec");
  dec->push(0, std::move(pkt));
  EXPECT_EQ(dec->expired(), 1u);
  EXPECT_EQ(router.find_as<Counter>("ok")->packets(), 0u);
}

TEST_F(ClickFixture, StripUnstripRestoreFrame) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    s :: Strip(14); u :: Unstrip(14); c :: Counter;
    s -> u -> c -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto pkt = make_udp();
  std::size_t len = pkt->length();
  auto* c = router.find_as<Counter>("c");
  router.find("s")->push(0, std::move(pkt));
  EXPECT_EQ(c->packets(), 1u);
  EXPECT_EQ(c->bytes(), len) << "Unstrip must restore the original length";
}

TEST_F(ClickFixture, EtherMirrorSwapsMacs) {
  auto pkt = make_udp();
  net::EthernetView eth(pkt->data());
  auto src = eth.src();
  auto dst = eth.dst();
  EtherMirror mirror;
  auto out = mirror.simple_action(std::move(pkt));
  ASSERT_TRUE(out);
  net::EthernetView eth2(out->data());
  EXPECT_EQ(eth2.src(), dst);
  EXPECT_EQ(eth2.dst(), src);
}

TEST_F(ClickFixture, InfiniteSourceHonorsLimit) {
  std::string err;
  ASSERT_TRUE(router.configure(
      "src :: InfiniteSource(25, 100, 4); c :: Counter; "
      "src -> c -> Discard;",
      &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.scheduler().run(1000);
  EXPECT_EQ(router.find_as<Counter>("c")->packets(), 25u);
}

TEST_F(ClickFixture, ChainCostSumsAlongSpine) {
  std::string err;
  ASSERT_TRUE(router.configure(
      "a :: Counter; b :: Counter; a -> b -> Discard;", &err))
      << err;
  auto* a = router.find("a");
  auto* b = router.find("b");
  auto* d = b->output_element(0);
  EXPECT_EQ(router.chain_cost(a),
            a->cost_ns() + b->cost_ns() + d->cost_ns());
}

TEST_F(ClickFixture, CompoundElementExpandsAndForwards) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    elementclass Tagger { input -> Paint(3) -> Counter -> output; };
    t :: Tagger;
    q :: Queue(8);
    t -> q;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  // Push into the compound instance's input endpoint.
  auto* in = router.find("t/input");
  ASSERT_NE(in, nullptr) << "compound must expand to t/input";
  in->push(0, make_udp());
  auto out = router.find_as<Queue>("q")->pull(0);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->anno().paint, 3) << "body elements must run";
  EXPECT_EQ(router.find_as<Counter>("t/Counter@2")->packets(), 1u)
      << "inner anonymous elements are name-scoped under the instance";
}

TEST_F(ClickFixture, CompoundInstancesAreIndependent) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    elementclass C { input -> cnt :: Counter; cnt -> output; };
    a :: C; b :: C;
    a -> Discard; b -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.find("a/input")->push(0, make_udp());
  router.find("a/input")->push(0, make_udp());
  router.find("b/input")->push(0, make_udp());
  EXPECT_EQ(router.find_as<Counter>("a/cnt")->packets(), 2u);
  EXPECT_EQ(router.find_as<Counter>("b/cnt")->packets(), 1u);
}

TEST_F(ClickFixture, CompoundInConnectionChain) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    elementclass Stamp { input -> Paint(9) -> output; };
    s :: Stamp;
    c :: Counter;
    c -> s -> Queue(4);
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.find("c")->push(0, make_udp());
  auto* q = router.find_as<Queue>("Queue@2");
  ASSERT_NE(q, nullptr);
  auto out = q->pull(0);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->anno().paint, 9);
}

TEST_F(ClickFixture, NestedCompounds) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    elementclass Inner { input -> Paint(5) -> output; };
    elementclass Outer { input -> i :: Inner; i -> output; };
    o :: Outer;
    o -> Queue(4);
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.find("o/input")->push(0, make_udp());
  auto out = router.find_as<Queue>("Queue@2")->pull(0);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->anno().paint, 5);
}

TEST_F(ClickFixture, CompoundErrors) {
  std::string err;
  Router r1;
  EXPECT_FALSE(r1.configure("elementclass Queue { input -> output; };",
                            &err))
      << "shadowing a built-in class must fail";
  Router r2;
  EXPECT_FALSE(r2.configure(
      "elementclass C { input -> output; }; x :: C(42);", &err))
      << "compounds take no arguments";
  Router r3;
  EXPECT_FALSE(r3.configure("elementclass C;", &err));
}

TEST(StrideScheduler, ProportionalToTickets) {
  StrideScheduler sched;
  int a_count = 0, b_count = 0;
  Task a([&] { ++a_count; return true; }, /*tickets=*/300);
  Task b([&] { ++b_count; return true; }, /*tickets=*/100);
  sched.add(&a);
  sched.add(&b);
  sched.run(4000);
  double ratio = static_cast<double>(a_count) / b_count;
  EXPECT_NEAR(ratio, 3.0, 0.2);
}

// --- batch path ----------------------------------------------------------------

// The element batch path must be observationally identical to per-packet
// push: same survivors, same bytes, same order, same element state — here
// across the default evaluation chain (CheckIPHeader -> Firewall -> Nat ->
// LoadBalancer), which exercises drops, header rewrites, and per-flow
// state allocated in arrival order.
TEST_F(ClickFixture, ChainBatchMatchesPerPacket) {
  const auto spec = nf::ChainSpec::preset("fw-nat-lb");
  std::string err;

  Router r_scalar{Router::Context{&eq, &pool}};
  Router r_batch{Router::Context{&eq, &pool}};
  auto scalar = nf::build_chain(r_scalar, "s", spec, &err);
  ASSERT_TRUE(scalar) << err;
  auto batch = nf::build_chain(r_batch, "b", spec, &err);
  ASSERT_TRUE(batch) << err;
  Element* q_scalar = r_scalar.add_element("sink", "Queue", {"256"}, &err);
  ASSERT_NE(q_scalar, nullptr) << err;
  Element* q_batch = r_batch.add_element("sink", "Queue", {"256"}, &err);
  ASSERT_NE(q_batch, nullptr) << err;
  ASSERT_TRUE(r_scalar.connect(scalar->tail, 0, q_scalar, 0, &err)) << err;
  ASSERT_TRUE(r_batch.connect(batch->tail, 0, q_batch, 0, &err)) << err;
  ASSERT_TRUE(r_scalar.initialize(&err)) << err;
  ASSERT_TRUE(r_batch.initialize(&err)) << err;

  // Mixed stream: mostly allowed flows, some hitting the firewall's deny
  // prefixes (127/8), several packets per flow so NAT bindings get reused.
  auto make_stream = [&] {
    std::vector<net::PacketPtr> pkts;
    for (int i = 0; i < 96; ++i) {
      net::BuildSpec s;
      std::uint32_t src = (i % 7 == 3)
                              ? 0x7f000001u + static_cast<std::uint32_t>(i)
                              : 0x0a000001u + static_cast<std::uint32_t>(i % 9);
      s.flow = {src, 0x0a640001,
                static_cast<std::uint16_t>(1000 + i % 9), 80, 17};
      s.payload_len = 32 + static_cast<std::size_t>(i % 48);
      auto pkt = net::build_udp(pool, s);
      EXPECT_TRUE(pkt);
      pkts.push_back(std::move(pkt));
    }
    return pkts;
  };

  auto in_scalar = make_stream();
  for (auto& pkt : in_scalar) scalar->head->push(0, std::move(pkt));

  auto in_batch = make_stream();
  constexpr std::size_t kBurst = 32;
  for (std::size_t off = 0; off < in_batch.size(); off += kBurst) {
    PacketBatch burst;
    for (std::size_t i = off; i < off + kBurst && i < in_batch.size(); ++i)
      burst.push_back(std::move(in_batch[i]));
    nf::process_batch(*batch, std::move(burst));
  }

  auto* qs = static_cast<Queue*>(q_scalar);
  auto* qb = static_cast<Queue*>(q_batch);
  ASSERT_EQ(qs->size(), qb->size()) << "same survivor count";
  EXPECT_GT(qs->size(), 0u);
  EXPECT_LT(qs->size(), 96u) << "some packets must have been denied";
  while (true) {
    auto a = qs->pull(0);
    auto b = qb->pull(0);
    ASSERT_EQ(static_cast<bool>(a), static_cast<bool>(b));
    if (!a) break;
    ASSERT_EQ(a->length(), b->length());
    EXPECT_EQ(std::memcmp(a->data(), b->data(), a->length()), 0)
        << "batch path must produce identical bytes";
    EXPECT_EQ(a->anno().paint, b->anno().paint);
  }
}

// Default push_batch on an element with a custom multi-port push() must
// fall back to per-packet push (no silent misrouting).
TEST_F(ClickFixture, DefaultPushBatchFallsBackToPush) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    cl :: Classifier(23/11, -);
    udp :: Counter; other :: Counter;
    cl [0] -> udp -> Discard;
    cl [1] -> other -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  PacketBatch batch;
  for (int i = 0; i < 8; ++i) batch.push_back(make_udp());
  router.find("cl")->push_batch(0, std::move(batch));
  EXPECT_EQ(router.find_as<Counter>("udp")->packets(), 8u);
  EXPECT_EQ(router.find_as<Counter>("other")->packets(), 0u);
}

TEST(StrideScheduler, StopsWhenAllTasksIdle) {
  StrideScheduler sched;
  int fires = 0;
  Task t([&] { ++fires; return false; });
  sched.add(&t);
  std::size_t productive = sched.run(1000);
  EXPECT_EQ(productive, 0u);
  EXPECT_LT(fires, 10) << "scheduler must give up on an idle task set";
}

}  // namespace
}  // namespace mdp::click
