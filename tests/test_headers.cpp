// Tests for header views, packet builder/parser, checksums (full and
// incremental), and FlowKey hashing.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/flow_key.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "sim/rng.hpp"

namespace mdp::net {
namespace {

FlowKey test_flow() {
  FlowKey f;
  ipv4_from_string("192.168.1.10", &f.src_ip);
  ipv4_from_string("10.0.100.1", &f.dst_ip);
  f.src_port = 5555;
  f.dst_port = 80;
  return f;
}

TEST(Ipv4String, RoundTrip) {
  std::uint32_t ip = 0;
  ASSERT_TRUE(ipv4_from_string("1.2.3.4", &ip));
  EXPECT_EQ(ip, 0x01020304u);
  EXPECT_EQ(ipv4_to_string(ip), "1.2.3.4");
  EXPECT_EQ(ipv4_to_string(0xffffffff), "255.255.255.255");
}

TEST(Ipv4String, RejectsMalformed) {
  std::uint32_t ip = 0;
  EXPECT_FALSE(ipv4_from_string("1.2.3", &ip));
  EXPECT_FALSE(ipv4_from_string("256.1.1.1", &ip));
  EXPECT_FALSE(ipv4_from_string("1.2.3.4.5", &ip));
  EXPECT_FALSE(ipv4_from_string("bogus", &ip));
}

TEST(Builder, UdpRoundTripParses) {
  PacketPool pool(4, 2048);
  BuildSpec spec;
  spec.flow = test_flow();
  spec.payload_len = 100;
  auto pkt = build_udp(pool, spec);
  ASSERT_TRUE(pkt);
  EXPECT_EQ(pkt->length(), kEthernetHeaderLen + kIpv4MinHeaderLen +
                               kUdpHeaderLen + 100);

  auto parsed = parse(*pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->has_l4);
  EXPECT_EQ(parsed->flow.src_ip, spec.flow.src_ip);
  EXPECT_EQ(parsed->flow.dst_ip, spec.flow.dst_ip);
  EXPECT_EQ(parsed->flow.src_port, 5555);
  EXPECT_EQ(parsed->flow.dst_port, 80);
  EXPECT_EQ(parsed->flow.protocol, kIpProtoUdp);
  EXPECT_EQ(parsed->payload_len, 100u);
}

TEST(Builder, TcpRoundTripParses) {
  PacketPool pool(4, 2048);
  BuildSpec spec;
  spec.flow = test_flow();
  spec.payload_len = 10;
  spec.tcp_seq = 0xdeadbeef;
  spec.tcp_flags = TcpView::kSyn;
  auto pkt = build_tcp(pool, spec);
  ASSERT_TRUE(pkt);
  auto parsed = parse(*pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow.protocol, kIpProtoTcp);
  TcpView tcp(pkt->data() + parsed->l4_offset);
  EXPECT_EQ(tcp.seq(), 0xdeadbeefu);
  EXPECT_EQ(tcp.flags(), TcpView::kSyn);
}

TEST(Builder, Ipv4ChecksumValidates) {
  PacketPool pool(4, 2048);
  BuildSpec spec;
  spec.flow = test_flow();
  auto pkt = build_udp(pool, spec);
  auto parsed = parse(*pkt);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(validate_ipv4_csum(*pkt, *parsed));
  // Corrupt a header byte: checksum must fail.
  pkt->data()[parsed->l3_offset + 8] ^= std::byte{0xff};  // TTL
  EXPECT_FALSE(validate_ipv4_csum(*pkt, *parsed));
}

TEST(Builder, L4ChecksumVerifiesAgainstPseudoHeader) {
  PacketPool pool(4, 2048);
  BuildSpec spec;
  spec.flow = test_flow();
  spec.payload_len = 37;  // odd length exercises the pad byte
  auto pkt = build_udp(pool, spec);
  auto parsed = parse(*pkt);
  ASSERT_TRUE(parsed);
  Ipv4View ip(pkt->data() + parsed->l3_offset);
  std::uint16_t l4_len =
      static_cast<std::uint16_t>(ip.total_length() - ip.header_len());
  std::uint32_t sum = pseudo_header_sum(ip.src(), ip.dst(), ip.protocol(),
                                        l4_len);
  sum = checksum_partial(pkt->data() + parsed->l4_offset, l4_len, sum);
  EXPECT_EQ(checksum_fold(sum), 0)
      << "checksum over segment incl. stored csum must fold to 0";
}

TEST(Parse, RejectsTruncatedAndNonIp) {
  PacketPool pool(4, 2048);
  auto pkt = pool.alloc();
  pkt->set_length(10);  // shorter than Ethernet
  EXPECT_FALSE(parse(*pkt).has_value());

  pkt->set_length(60);
  EthernetView eth(pkt->data());
  eth.set_ether_type(kEtherTypeArp);
  EXPECT_FALSE(parse(*pkt).has_value());
}

TEST(Checksum, IncrementalMatchesFullRecompute16) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::byte buf[40];
    for (auto& b : buf)
      b = static_cast<std::byte>(rng.uniform_u64(256));
    // Zero the checksum field location (bytes 10-11) then install.
    buf[10] = buf[11] = std::byte{0};
    std::uint16_t c0 = checksum(buf, sizeof(buf));
    store_be16(buf + 10, c0);

    // Change the 16-bit word at offset 8.
    std::uint16_t old_word = load_be16(buf + 8);
    std::uint16_t new_word =
        static_cast<std::uint16_t>(rng.uniform_u64(65536));
    std::uint16_t incr = checksum_update16(c0, old_word, new_word);

    store_be16(buf + 8, new_word);
    buf[10] = buf[11] = std::byte{0};
    std::uint16_t full = checksum(buf, sizeof(buf));
    EXPECT_EQ(incr, full) << "trial " << trial;
    store_be16(buf + 10, full);
  }
}

TEST(Checksum, IncrementalMatchesFullRecompute32) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::byte buf[40];
    for (auto& b : buf)
      b = static_cast<std::byte>(rng.uniform_u64(256));
    buf[10] = buf[11] = std::byte{0};
    std::uint16_t c0 = checksum(buf, sizeof(buf));
    store_be16(buf + 10, c0);

    std::uint32_t old_val = load_be32(buf + 12);
    std::uint32_t new_val = static_cast<std::uint32_t>(rng.next_u64());
    std::uint16_t incr = checksum_update32(c0, old_val, new_val);

    store_be32(buf + 12, new_val);
    buf[10] = buf[11] = std::byte{0};
    EXPECT_EQ(incr, checksum(buf, sizeof(buf))) << "trial " << trial;
  }
}

TEST(FlowKey, CanonicalOrdersEndpoints) {
  FlowKey a{0x0a000001, 0x0b000001, 100, 200, 6};
  FlowKey b = a.reversed();
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_NE(a, b);
}

TEST(FlowKey, ReversedSwapsBothEndpoints) {
  FlowKey a{1, 2, 3, 4, 17};
  FlowKey r = a.reversed();
  EXPECT_EQ(r.src_ip, 2u);
  EXPECT_EQ(r.dst_ip, 1u);
  EXPECT_EQ(r.src_port, 4);
  EXPECT_EQ(r.dst_port, 3);
  EXPECT_EQ(r.reversed(), a);
}

TEST(FlowKey, HashIsStableAndSeedSensitive) {
  FlowKey a{0x0a000001, 0x0b000001, 100, 200, 6};
  EXPECT_EQ(hash_flow(a), hash_flow(a));
  EXPECT_NE(hash_flow(a), hash_flow(a, /*seed=*/12345));
  FlowKey b = a;
  b.src_port = 101;
  EXPECT_NE(hash_flow(a), hash_flow(b));
}

TEST(FlowKey, HashSpreadsAcrossBuckets) {
  // 4096 sequential flows over 8 buckets must not skew grossly.
  std::array<int, 8> buckets{};
  for (std::uint32_t i = 0; i < 4096; ++i) {
    FlowKey f{0x0a000000 + i, 0x0b000001, static_cast<std::uint16_t>(i),
              80, 17};
    ++buckets[hash_flow(f) % 8];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 4096 / 8 / 2);
    EXPECT_LT(b, 4096 / 8 * 2);
  }
}

}  // namespace
}  // namespace mdp::net
