// Scheduler policy tests against a scripted PathContext double: selection
// logic, flowlet stickiness, redundancy, adaptivity, hedge budgets, and
// the never-pick-a-down-path property across all policies.
#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.hpp"
#include "net/flow_key.hpp"
#include "net/packet_pool.hpp"

namespace mdp::core {
namespace {

class FakeContext final : public PathContext {
 public:
  explicit FakeContext(std::size_t n) : n_(n) {
    backlog.assign(n, 0);
    ewma.assign(n, 0);
    depth.assign(n, 0);
    inflight_v.assign(n, 0);
    up_v.assign(n, true);
  }
  std::size_t num_paths() const override { return n_; }
  bool up(std::size_t p) const override { return up_v[p]; }
  sim::TimeNs backlog_ns(std::size_t p) const override { return backlog[p]; }
  std::size_t queue_depth(std::size_t p) const override { return depth[p]; }
  std::uint64_t inflight(std::size_t p) const override {
    return inflight_v[p];
  }
  double ewma_latency_ns(std::size_t p) const override { return ewma[p]; }
  sim::TimeNs now() const override { return now_v; }

  std::size_t n_;
  std::vector<sim::TimeNs> backlog;
  std::vector<double> ewma;
  std::vector<std::size_t> depth;
  std::vector<std::uint64_t> inflight_v;
  std::vector<bool> up_v;
  sim::TimeNs now_v = 0;
};

struct PolicyFixture : ::testing::Test {
  net::PacketPool pool{16, 2048};
  sim::Rng rng{1};

  net::PacketPtr pkt(std::uint32_t flow_id = 1,
                     net::TrafficClass tc = net::TrafficClass::kBestEffort) {
    auto p = pool.alloc();
    p->set_length(100);
    p->anno().flow_id = flow_id;
    p->anno().flow_hash = net::mix64(flow_id * 2654435761u + 17);
    p->anno().traffic_class = tc;
    return p;
  }

  PathVec select(Scheduler& s, const PathContext& ctx, net::Packet& p) {
    PathVec out;
    s.select(p, ctx, rng, out);
    return out;
  }
};

TEST_F(PolicyFixture, SinglePathAlwaysPinned) {
  FakeContext ctx(4);
  SinglePathScheduler s(2);
  auto p = pkt();
  for (int i = 0; i < 5; ++i) {
    auto out = select(s, ctx, *p);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 2);
  }
}

TEST_F(PolicyFixture, SinglePathFallsBackWhenPinnedDown) {
  FakeContext ctx(4);
  ctx.up_v[2] = false;
  SinglePathScheduler s(2);
  auto p = pkt();
  auto out = select(s, ctx, *p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);
}

TEST_F(PolicyFixture, RssIsFlowStableAndFlowSpread) {
  FakeContext ctx(4);
  RssHashScheduler s;
  auto p = pkt(42);
  auto first = select(s, ctx, *p);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(select(s, ctx, *p), first) << "same flow, same path";
  std::set<std::uint16_t> used;
  for (std::uint32_t f = 0; f < 64; ++f) {
    auto q = pkt(f);
    used.insert(select(s, ctx, *q)[0]);
  }
  EXPECT_EQ(used.size(), 4u) << "64 flows must cover all 4 paths";
}

TEST_F(PolicyFixture, RoundRobinCyclesThroughUpPaths) {
  FakeContext ctx(3);
  RoundRobinScheduler s;
  auto p = pkt();
  std::vector<std::uint16_t> seq;
  for (int i = 0; i < 6; ++i) seq.push_back(select(s, ctx, *p)[0]);
  EXPECT_EQ(seq, (std::vector<std::uint16_t>{0, 1, 2, 0, 1, 2}));
}

TEST_F(PolicyFixture, JsqPicksMinimumBacklog) {
  FakeContext ctx(4);
  ctx.backlog = {500, 100, 900, 100};
  JsqScheduler s;
  auto p = pkt();
  EXPECT_EQ(select(s, ctx, *p)[0], 1) << "ties break to lowest id";
  ctx.backlog[1] = 2000;
  EXPECT_EQ(select(s, ctx, *p)[0], 3);
}

TEST_F(PolicyFixture, LeastLatencyCombinesEwmaAndBacklog) {
  FakeContext ctx(2);
  ctx.ewma = {10'000, 1'000};
  LeastLatencyScheduler s(/*epsilon=*/0.0);
  auto p = pkt();
  EXPECT_EQ(select(s, ctx, *p)[0], 1);
  // Bury path 1 in backlog: path 0 wins despite worse EWMA.
  ctx.backlog[1] = 100'000;
  EXPECT_EQ(select(s, ctx, *p)[0], 0);
}

TEST_F(PolicyFixture, FlowletSticksWithinGapAndSwitchesAfter) {
  FakeContext ctx(4);
  ctx.backlog = {100, 0, 0, 0};
  FlowletScheduler s(/*gap_ns=*/1000);
  auto p = pkt(7);
  ctx.now_v = 0;
  auto first = select(s, ctx, *p)[0];
  EXPECT_EQ(first, 1) << "first packet goes to least backlog";
  // Make the chosen path look bad; within the gap the flow must stick.
  ctx.backlog[first] = 1'000'000;
  ctx.now_v = 500;
  EXPECT_EQ(select(s, ctx, *p)[0], first);
  // After an idle gap the flowlet re-routes.
  ctx.now_v = 5000;
  auto next = select(s, ctx, *p)[0];
  EXPECT_NE(next, first);
  EXPECT_GE(s.flowlet_switches(), 1u);
}

TEST_F(PolicyFixture, RedundantSelectsKDistinctLeastLoaded) {
  FakeContext ctx(4);
  ctx.backlog = {400, 100, 300, 200};
  RedundantScheduler s(2);
  auto p = pkt();
  auto out = select(s, ctx, *p);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 3);
  EXPECT_NE(out[0], out[1]);
}

TEST_F(PolicyFixture, RedundantClampsToAvailablePaths) {
  FakeContext ctx(2);
  RedundantScheduler s(4);
  auto p = pkt();
  auto out = select(s, ctx, *p);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(PolicyFixture, AdaptiveReplicatesCriticalOnly) {
  FakeContext ctx(4);
  AdaptiveMdpScheduler s;
  auto lc = pkt(1, net::TrafficClass::kLatencyCritical);
  auto be = pkt(2, net::TrafficClass::kBestEffort);
  EXPECT_EQ(select(s, ctx, *lc).size(), 2u);
  EXPECT_EQ(select(s, ctx, *be).size(), 1u);
  EXPECT_EQ(s.replicated(), 1u);
}

TEST_F(PolicyFixture, AdaptiveLoadGateSuppressesReplication) {
  FakeContext ctx(4);
  AdaptiveMdpConfig cfg;
  cfg.replicate_backlog_cap_ns = 10'000;
  AdaptiveMdpScheduler s(cfg);
  auto lc = pkt(1, net::TrafficClass::kLatencyCritical);
  // All paths lightly loaded: replicate.
  EXPECT_EQ(select(s, ctx, *lc).size(), 2u);
  // Every alternate path buried: the gate degrades to a single copy on
  // the least-backlogged path.
  ctx.backlog = {5'000, 50'000, 60'000, 70'000};
  auto out = select(s, ctx, *lc);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);
  // Gate disabled: always replicate.
  AdaptiveMdpConfig ungated;
  ungated.replicate_backlog_cap_ns = 0;
  AdaptiveMdpScheduler s2(ungated);
  EXPECT_EQ(select(s2, ctx, *lc).size(), 2u);
}

TEST_F(PolicyFixture, AdaptiveSmallFlowReplication) {
  AdaptiveMdpConfig cfg;
  cfg.small_flow_bytes = 10'000;
  AdaptiveMdpScheduler s(cfg);
  FakeContext ctx(4);
  auto small = pkt(1);
  small->anno().flow_bytes = 5'000;
  auto big = pkt(2);
  big->anno().flow_bytes = 1'000'000;
  EXPECT_EQ(select(s, ctx, *small).size(), 2u);
  EXPECT_EQ(select(s, ctx, *big).size(), 1u);
}

TEST_F(PolicyFixture, AdaptiveHedgeBudgetAutoScalesWithEwma) {
  FakeContext ctx(2);
  AdaptiveMdpScheduler s;
  auto be = pkt(1, net::TrafficClass::kBestEffort);
  // No observations yet: floor applies.
  EXPECT_EQ(s.hedge_timeout_ns(*be, ctx), s.config().hedge_min_ns);
  ctx.ewma = {100'000, 300'000};
  EXPECT_EQ(s.hedge_timeout_ns(*be, ctx),
            static_cast<sim::TimeNs>(3.0 * 200'000));
  // Replicated (critical) packets are not hedged.
  auto lc = pkt(2, net::TrafficClass::kLatencyCritical);
  EXPECT_EQ(s.hedge_timeout_ns(*lc, ctx), 0u);
}

TEST_F(PolicyFixture, AdaptiveHedgeDisabledReturnsZero) {
  AdaptiveMdpConfig cfg;
  cfg.hedge_enabled = false;
  AdaptiveMdpScheduler s(cfg);
  FakeContext ctx(2);
  auto p = pkt();
  EXPECT_EQ(s.hedge_timeout_ns(*p, ctx), 0u);
}

// --- select_batch ---------------------------------------------------------------

TEST_F(PolicyFixture, SelectBatchDefaultMatchesPerPacketLoop) {
  // Stateful policy (flowlet), two fresh instances fed the same stream:
  // the default batch path loops select(), so results must be identical.
  FakeContext ctx(4);
  ctx.backlog = {300, 100, 200, 400};
  FlowletScheduler scalar, batch;
  std::vector<net::PacketPtr> pkts;
  std::vector<const net::Packet*> ptrs;
  for (std::uint32_t i = 0; i < 12; ++i) {
    pkts.push_back(pkt(1 + i % 3));
    ptrs.push_back(pkts.back().get());
  }
  std::vector<PathVec> expected;
  sim::Rng rng2{1};
  for (const auto* p : ptrs) {
    PathVec out;
    scalar.select(*p, ctx, rng2, out);
    expected.push_back(out);
  }
  std::vector<PathVec> got;
  sim::Rng rng3{1};
  batch.select_batch(ptrs, ctx, rng3, got);
  EXPECT_EQ(got, expected);
}

TEST_F(PolicyFixture, JsqSelectBatchSizeOneMatchesSelect) {
  FakeContext ctx(4);
  ctx.backlog = {500, 100, 300, 200};
  JsqScheduler s;
  auto p = pkt();
  const net::Packet* ptr = p.get();
  std::vector<PathVec> got;
  s.select_batch({&ptr, 1}, ctx, rng, got);
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].size(), 1u);
  EXPECT_EQ(got[0][0], 1) << "size-1 batch must equal scalar JSQ";
}

TEST_F(PolicyFixture, JsqSelectBatchSpreadsAcrossIdlePaths) {
  // One backlog sample per burst plus local accounting: an idle 4-path
  // system must receive a 8-packet burst evenly, not all on path 0.
  FakeContext ctx(4);
  JsqScheduler s;
  std::vector<net::PacketPtr> pkts;
  std::vector<const net::Packet*> ptrs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    pkts.push_back(pkt(i));
    ptrs.push_back(pkts.back().get());
  }
  std::vector<PathVec> got;
  s.select_batch(ptrs, ctx, rng, got);
  std::vector<int> per_path(4, 0);
  for (const auto& v : got) {
    ASSERT_EQ(v.size(), 1u);
    ++per_path[v[0]];
  }
  for (int p = 0; p < 4; ++p) EXPECT_EQ(per_path[p], 2) << "path " << p;
}

TEST_F(PolicyFixture, JsqSelectBatchNeverPicksDownPath) {
  FakeContext ctx(4);
  ctx.up_v[0] = false;
  ctx.up_v[2] = false;
  JsqScheduler s;
  std::vector<net::PacketPtr> pkts;
  std::vector<const net::Packet*> ptrs;
  for (std::uint32_t i = 0; i < 16; ++i) {
    pkts.push_back(pkt(i));
    ptrs.push_back(pkts.back().get());
  }
  std::vector<PathVec> got;
  s.select_batch(ptrs, ctx, rng, got);
  for (const auto& v : got) {
    ASSERT_EQ(v.size(), 1u);
    EXPECT_TRUE(v[0] == 1 || v[0] == 3);
  }
}

TEST_F(PolicyFixture, AdaptiveSelectBatchReplicatesCriticalOnly) {
  FakeContext ctx(4);
  AdaptiveMdpScheduler s;
  std::vector<net::PacketPtr> pkts;
  std::vector<const net::Packet*> ptrs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    pkts.push_back(pkt(i, i % 2 == 0 ? net::TrafficClass::kLatencyCritical
                                     : net::TrafficClass::kBestEffort));
    ptrs.push_back(pkts.back().get());
  }
  std::vector<PathVec> got;
  s.select_batch(ptrs, ctx, rng, got);
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(got[i].size(), 2u) << "critical packet " << i;
      EXPECT_NE(got[i][0], got[i][1]);
    } else {
      EXPECT_EQ(got[i].size(), 1u) << "best-effort packet " << i;
    }
  }
  EXPECT_EQ(s.replicated(), 4u);
}

TEST(SchedulerFactory, KnownNamesConstruct) {
  for (const auto& name : evaluation_policy_names()) {
    auto s = make_scheduler(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_NE(make_scheduler("red3"), nullptr);
  EXPECT_NE(make_scheduler("red4"), nullptr);
  EXPECT_EQ(make_scheduler("bogus"), nullptr);
}

TEST(SchedulerFactory, ParameterizedNamesConstructWithTheParameter) {
  // "<policy>:<param>" names build tuned instances; the parameter must
  // actually land in the scheduler, not just parse.
  auto red = make_scheduler("redundant:3");
  ASSERT_NE(red, nullptr);
  EXPECT_EQ(red->name(), "red3");
  EXPECT_EQ(dynamic_cast<RedundantScheduler*>(red.get())->replicas(), 3u);
  EXPECT_EQ(make_scheduler("red:2")->name(), "red2");

  auto fl = make_scheduler("flowlet:20000");
  ASSERT_NE(fl, nullptr);
  EXPECT_EQ(dynamic_cast<FlowletScheduler*>(fl.get())->gap_ns(), 20'000);

  // single:<path> pins to the requested path.
  auto single = make_scheduler("single:1");
  ASSERT_NE(single, nullptr);
  net::PacketPool pool(4, 2048);
  sim::Rng rng(7);
  FakeContext ctx(4);
  auto pkt = pool.alloc();
  pkt->set_length(64);
  PathVec out;
  single->select(*pkt, ctx, rng, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);

  EXPECT_NE(make_scheduler("lla:0.1"), nullptr);
  EXPECT_NE(make_scheduler("adaptive:3"), nullptr);
}

TEST(SchedulerFactory, MalformedParameterizedNamesAreRejected) {
  EXPECT_EQ(make_scheduler("red:"), nullptr);       // empty param
  EXPECT_EQ(make_scheduler("red:0"), nullptr);      // zero replicas
  EXPECT_EQ(make_scheduler("red:65"), nullptr);     // over the cap
  EXPECT_EQ(make_scheduler("flowlet:abc"), nullptr);
  EXPECT_EQ(make_scheduler("flowlet:0"), nullptr);
  EXPECT_EQ(make_scheduler("lla:1.5"), nullptr);    // epsilon > 1
  EXPECT_EQ(make_scheduler("lla:-0.1"), nullptr);
  EXPECT_EQ(make_scheduler("bogus:1"), nullptr);    // unknown base
  EXPECT_EQ(make_scheduler("single:70000"), nullptr);  // > uint16 max
}

// Property: no policy ever selects a down path (while any path is up),
// never returns duplicates, and always returns at least one path.
class DownPathProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(DownPathProperty, NeverSelectsDownPath) {
  auto sched = make_scheduler(GetParam());
  ASSERT_NE(sched, nullptr);
  net::PacketPool pool(16, 2048);
  sim::Rng rng(99);
  FakeContext ctx(6);

  for (int trial = 0; trial < 3000; ++trial) {
    // Random up/down pattern with at least one up path.
    bool any_up = false;
    for (std::size_t p = 0; p < 6; ++p) {
      ctx.up_v[p] = rng.bernoulli(0.7);
      ctx.backlog[p] = rng.uniform_u64(100'000);
      ctx.ewma[p] = static_cast<double>(rng.uniform_u64(100'000));
      any_up |= ctx.up_v[p];
    }
    if (!any_up) ctx.up_v[rng.uniform_u64(6)] = true;
    ctx.now_v += rng.uniform_u64(100'000);

    auto pkt = pool.alloc();
    pkt->set_length(64);
    pkt->anno().flow_id = static_cast<std::uint32_t>(rng.uniform_u64(32));
    pkt->anno().flow_hash = net::mix64(pkt->anno().flow_id + 5);
    pkt->anno().traffic_class = rng.bernoulli(0.3)
                                    ? net::TrafficClass::kLatencyCritical
                                    : net::TrafficClass::kBestEffort;
    PathVec out;
    sched->select(*pkt, ctx, rng, out);
    ASSERT_GE(out.size(), 1u);
    std::set<std::uint16_t> distinct(out.begin(), out.end());
    ASSERT_EQ(distinct.size(), out.size()) << "duplicate paths selected";
    for (auto p : out)
      ASSERT_TRUE(ctx.up_v[p]) << GetParam() << " picked down path " << p
                               << " at trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DownPathProperty,
                         ::testing::Values("single", "rss", "rr", "jsq",
                                           "lla", "flowlet", "red2", "red3",
                                           "adaptive", "redundant:4",
                                           "flowlet:20000", "lla:0.3",
                                           "adaptive:3"));

}  // namespace
}  // namespace mdp::core
