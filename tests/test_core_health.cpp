// PathHealthMonitor tests: down detection on a blackholed path, recovery,
// transition hysteresis, and closed-loop failover through the data plane.
#include <gtest/gtest.h>

#include "core/dataplane.hpp"
#include "core/health.hpp"
#include "net/packet_builder.hpp"

namespace mdp::core {
namespace {

struct HealthFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{512, 2048};
  std::unique_ptr<MdpDataPlane> dp;
  std::unique_ptr<PathHealthMonitor> hm;

  void SetUp() override {
    DataPlaneConfig cfg;
    cfg.num_paths = 3;
    cfg.dedup_sweep_interval_ns = 0;
    dp = std::make_unique<MdpDataPlane>(eq, pool, cfg,
                                        make_scheduler("jsq"));
    HealthConfig hcfg;
    hcfg.probe_interval_ns = 100'000;   // 100us
    hcfg.probe_deadline_ns = 50'000;    // 50us
    hm = std::make_unique<PathHealthMonitor>(eq, *dp, hcfg);
  }

  /// Blackhole a path: an enormous high-priority job pins its core.
  void stall_path(std::size_t p, sim::TimeNs duration) {
    dp->core(p).submit(duration, [](sim::TimeNs) {}, true, /*visible=*/false);
  }
};

TEST_F(HealthFixture, HealthyPathsStayUp) {
  hm->start();
  eq.run_until(5 * sim::kMillisecond);
  for (std::size_t p = 0; p < 3; ++p) EXPECT_TRUE(hm->path_healthy(p));
  EXPECT_EQ(hm->down_transitions(), 0u);
  EXPECT_GT(hm->probes_sent(), 100u);
  EXPECT_EQ(hm->probes_missed(), 0u);
}

TEST_F(HealthFixture, RegistryExposesProbeCounters) {
  trace::StatsRegistry reg;
  hm->register_stats(reg);
  hm->start();
  stall_path(1, 2 * sim::kMillisecond);
  eq.run_until(5 * sim::kMillisecond);

  trace::Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("health.probes_sent"), hm->probes_sent());
  EXPECT_EQ(s.counters.at("health.probes_missed"), hm->probes_missed());
  EXPECT_EQ(s.counters.at("health.down_transitions"),
            hm->down_transitions());
  EXPECT_EQ(s.counters.at("health.up_transitions"), hm->up_transitions());
  EXPECT_GT(s.counters.at("health.probes_missed"), 0u);
  EXPECT_DOUBLE_EQ(s.gauges.at("health.paths_healthy"), 3.0);  // recovered
}

TEST_F(HealthFixture, StalledPathGoesDownThenRecovers) {
  hm->start();
  std::vector<std::pair<std::size_t, bool>> transitions;
  hm->set_on_transition([&](std::size_t p, bool up) {
    transitions.emplace_back(p, up);
  });

  eq.schedule_at(1 * sim::kMillisecond,
                 [this] { stall_path(1, 2 * sim::kMillisecond); });
  eq.run_until(2 * sim::kMillisecond);
  EXPECT_FALSE(hm->path_healthy(1)) << "3 missed probes => down";
  EXPECT_TRUE(hm->path_healthy(0));
  EXPECT_TRUE(hm->path_healthy(2));

  eq.run_until(6 * sim::kMillisecond);
  EXPECT_TRUE(hm->path_healthy(1)) << "must recover after the stall ends";
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], (std::pair<std::size_t, bool>{1, false}));
  EXPECT_EQ(transitions[1], (std::pair<std::size_t, bool>{1, true}));
}

TEST_F(HealthFixture, ShortBlipDoesNotFlap) {
  hm->start();
  // One 60us stall: at most one missed probe < down_after(3).
  eq.schedule_at(500'000, [this] { stall_path(0, 60'000); });
  eq.run_until(3 * sim::kMillisecond);
  EXPECT_TRUE(hm->path_healthy(0));
  EXPECT_EQ(hm->down_transitions(), 0u);
}

TEST_F(HealthFixture, AlternatingProbeResultsNeverOscillate) {
  // Hysteresis in both directions: down needs down_after(3) CONSECUTIVE
  // misses, up needs up_after(2) CONSECUTIVE passes. A path that misses
  // every other probe satisfies neither, so it must hold its current
  // state — no flapping on a 50% lossy path.
  hm->start();

  // Phase 1 (up, alternating): stall 60us around every second probe
  // (probes fire at 100us, 200us, ...; a 60us stall starting 5us before
  // a probe blows its 50us deadline). Misses at 100, 300, ..., 1900us
  // interleave with passes, so the miss streak never reaches 3.
  for (int k = 0; k < 10; ++k) {
    eq.schedule_at(95'000 + k * 200'000,
                   [this] { stall_path(1, 60'000); });
  }
  eq.run_until(2'500'000);
  EXPECT_TRUE(hm->path_healthy(1)) << "alternating misses must not down";
  EXPECT_EQ(hm->down_transitions(), 0u);
  EXPECT_GE(hm->probes_missed(), 8u);

  // Drive the path down for real: one long stall covers 3 consecutive
  // probe deadlines.
  eq.schedule_at(2'600'000, [this] { stall_path(1, 350'000); });
  eq.run_until(3'000'000);
  ASSERT_FALSE(hm->path_healthy(1));
  EXPECT_EQ(hm->down_transitions(), 1u);

  // Phase 2 (down, alternating): same every-other-probe pattern. Each
  // lone pass resets to a streak of 1; the next miss clears it, so the
  // pass streak never reaches 2 and the path must stay down.
  for (int k = 0; k < 8; ++k) {
    eq.schedule_at(3'095'000 + k * 200'000,
                   [this] { stall_path(1, 60'000); });
  }
  eq.run_until(4'450'000);  // last alternating stall covers the 4500us probe
  EXPECT_FALSE(hm->path_healthy(1)) << "alternating passes must not up";
  EXPECT_EQ(hm->up_transitions(), 0u);

  // Heal: two clean consecutive probes recover the path exactly once.
  eq.run_until(5'500'000);
  EXPECT_TRUE(hm->path_healthy(1));
  EXPECT_EQ(hm->up_transitions(), 1u);
  EXPECT_EQ(hm->down_transitions(), 1u);
}

TEST_F(HealthFixture, TrafficFailsOverWhileDown) {
  hm->start();
  std::uint64_t egressed = 0;
  dp->set_egress([&](net::PacketPtr) { ++egressed; });

  stall_path(2, 10 * sim::kMillisecond);  // blackhole path 2 from t=0
  eq.run_until(1 * sim::kMillisecond);    // let the monitor react
  ASSERT_FALSE(hm->path_healthy(2));

  std::uint64_t dispatched_before = dp->monitor().dispatched(2);
  for (int i = 0; i < 200; ++i) {
    eq.schedule_in(1000 + i * 500, [this, i] {
      net::BuildSpec spec;
      spec.flow = {0x0a010101, 0x0a006401,
                   static_cast<std::uint16_t>(1000 + i % 8), 80, 0};
      auto pkt = net::build_udp(pool, spec);
      pkt->anno().flow_id = i % 8;
      dp->ingress(std::move(pkt));
    });
  }
  eq.run_until(5 * sim::kMillisecond);
  EXPECT_EQ(egressed, 200u);
  EXPECT_EQ(dp->monitor().dispatched(2), dispatched_before)
      << "no traffic may land on the down path";
}

}  // namespace
}  // namespace mdp::core
