// VXLAN overlay tests: encap/decap round trip at the net layer and via
// the Click elements; plus VLAN tagging, DSCP marking, Meter, Switch.
#include <gtest/gtest.h>

#include <cstring>

#include "click/elements.hpp"
#include "click/elements_net.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "net/vxlan.hpp"

namespace mdp::net {
namespace {

PacketPtr inner_packet(PacketPool& pool, std::uint16_t sport = 4242) {
  BuildSpec spec;
  spec.flow = {0x0a000001, 0x0a000002, sport, 80, 17};
  spec.payload_len = 64;
  return build_udp(pool, spec);
}

TEST(Vxlan, EncapDecapRoundTripPreservesInnerFrame) {
  PacketPool pool(8, 2048);
  auto pkt = inner_packet(pool);
  std::vector<std::byte> original(pkt->payload().begin(),
                                  pkt->payload().end());

  VxlanTunnel tun;
  tun.local_vtep = 0xc0a80a01;
  tun.remote_vtep = 0xc0a80a02;
  tun.vni = 5001;
  ASSERT_TRUE(vxlan_encap(*pkt, tun));
  EXPECT_EQ(pkt->length(), original.size() + kVxlanOverhead);

  // The outer stack parses as a UDP/4789 IPv4 packet with valid checksum.
  auto outer = parse(*pkt);
  ASSERT_TRUE(outer);
  EXPECT_EQ(outer->flow.protocol, kIpProtoUdp);
  EXPECT_EQ(outer->flow.dst_port, kVxlanPort);
  EXPECT_EQ(outer->flow.src_ip, tun.local_vtep);
  EXPECT_TRUE(validate_ipv4_csum(*pkt, *outer));

  auto info = vxlan_decap(*pkt);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->vni, 5001u);
  EXPECT_EQ(info->outer_src, tun.local_vtep);
  EXPECT_EQ(info->outer_dst, tun.remote_vtep);
  ASSERT_EQ(pkt->length(), original.size());
  EXPECT_EQ(std::memcmp(pkt->data(), original.data(), original.size()), 0);
}

TEST(Vxlan, OuterSourcePortCarriesInnerFlowEntropy) {
  PacketPool pool(8, 2048);
  VxlanTunnel tun;
  auto p1 = inner_packet(pool, 1000);
  auto p2 = inner_packet(pool, 1000);
  auto p3 = inner_packet(pool, 2000);
  ASSERT_TRUE(vxlan_encap(*p1, tun));
  ASSERT_TRUE(vxlan_encap(*p2, tun));
  ASSERT_TRUE(vxlan_encap(*p3, tun));
  auto sp = [](Packet& p) { return parse(p)->flow.src_port; };
  EXPECT_EQ(sp(*p1), sp(*p2)) << "same inner flow, same outer port";
  EXPECT_NE(sp(*p1), sp(*p3)) << "different flows should spread";
}

TEST(Vxlan, DecapRejectsNonVxlan) {
  PacketPool pool(8, 2048);
  auto pkt = inner_packet(pool);  // plain UDP to port 80
  std::size_t len = pkt->length();
  EXPECT_FALSE(vxlan_decap(*pkt).has_value());
  EXPECT_EQ(pkt->length(), len) << "failed decap must not modify";
}

TEST(Vxlan, EncapFailsWithoutHeadroom) {
  PacketPool pool(8, 2048);
  auto pkt = pool.alloc();
  pkt->push(pkt->headroom());  // consume all headroom
  VxlanTunnel tun;
  EXPECT_FALSE(vxlan_encap(*pkt, tun));
}

}  // namespace
}  // namespace mdp::net

namespace mdp::click {
namespace {

struct NetElemFixture : ::testing::Test {
  sim::EventQueue eq;
  net::PacketPool pool{64, 2048};
  Router router{Router::Context{&eq, &pool}};

  net::PacketPtr make_udp(std::uint16_t sport = 7000) {
    net::BuildSpec spec;
    spec.flow = {0x0a000001, 0x0a000002, sport, 80, 17};
    return net::build_udp(pool, spec);
  }
};

TEST_F(NetElemFixture, VxlanElementsTunnelEndToEnd) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    enc :: VxlanEncap(7, 192.168.10.1, 192.168.10.2);
    dec :: VxlanDecap(7);
    chk :: CheckIPHeader;
    q :: Queue(8);
    enc -> dec -> chk -> q;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.find("enc")->push(0, make_udp());
  auto out = router.find_as<Queue>("q")->pull(0);
  ASSERT_TRUE(out) << "inner frame must survive the tunnel and validate";
  auto* dec = router.find_as<VxlanDecap>("dec");
  EXPECT_EQ(dec->decapped(), 1u);
  EXPECT_EQ(dec->last_vni(), 7u);
}

TEST_F(NetElemFixture, VxlanDecapVniMismatchDiverts) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    enc :: VxlanEncap(8, 192.168.10.1, 192.168.10.2);
    dec :: VxlanDecap(9);
    ok :: Counter; rej :: Counter;
    enc -> dec; dec [0] -> ok -> Discard; dec [1] -> rej -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.find("enc")->push(0, make_udp());
  EXPECT_EQ(router.find_as<Counter>("rej")->packets(), 1u);
  EXPECT_EQ(router.find_as<Counter>("ok")->packets(), 0u);
}

TEST_F(NetElemFixture, VlanTagRoundTrip) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    enc :: VLANEncap(100, 5);
    dec :: VLANDecap;
    chk :: CheckIPHeader;
    q :: Queue(8);
    enc -> dec -> chk -> q;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto pkt = make_udp();
  std::size_t len = pkt->length();
  router.find("enc")->push(0, std::move(pkt));
  auto out = router.find_as<Queue>("q")->pull(0);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->length(), len) << "decap must restore the original size";
  EXPECT_EQ(router.find_as<VLANDecap>("dec")->decapped(), 1u);
}

TEST_F(NetElemFixture, VlanEncapWritesCorrectTag) {
  VLANEncap enc;
  std::string err;
  ASSERT_TRUE(enc.configure({"100", "5"}, &err)) << err;
  auto pkt = enc.simple_action(make_udp());
  ASSERT_TRUE(pkt);
  net::EthernetView eth(pkt->data());
  EXPECT_EQ(eth.ether_type(), net::kEtherTypeVlan);
  std::uint16_t tci = net::load_be16(pkt->data() + 14);
  EXPECT_EQ(tci & 0x0fff, 100);
  EXPECT_EQ(tci >> 13, 5);
  // Inner ethertype follows the tag.
  EXPECT_EQ(net::load_be16(pkt->data() + 16), net::kEtherTypeIpv4);
}

TEST_F(NetElemFixture, SetIPDscpKeepsChecksumValid) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    mark :: SetIPDscp(46);
    chk :: CheckIPHeader;
    q :: Queue(4);
    mark -> chk -> q;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  router.find("mark")->push(0, make_udp());
  auto out = router.find_as<Queue>("q")->pull(0);
  ASSERT_TRUE(out) << "checksum must still validate after DSCP rewrite";
  auto parsed = net::parse(*out);
  EXPECT_EQ(net::Ipv4View(out->data() + parsed->l3_offset).dscp(), 46);
}

TEST_F(NetElemFixture, MeterDivertsWhenRateExceeds) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    m :: Meter(100000);  // 100k pps
    ok :: Counter; over :: Counter;
    m [0] -> ok -> Discard; m [1] -> over -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* m = router.find("m");
  // 1M pps offered (1us gaps): must trip the meter.
  for (int i = 0; i < 2000; ++i) {
    auto pkt = make_udp();
    pkt->anno().ingress_ns = static_cast<std::uint64_t>(i) * 1000;
    m->push(0, std::move(pkt));
  }
  EXPECT_GT(router.find_as<Counter>("over")->packets(), 1000u);
  // 10k pps offered (100us gaps): must pass.
  auto* ok = router.find_as<Counter>("ok");
  auto before = ok->packets();
  for (int i = 0; i < 200; ++i) {
    auto pkt = make_udp();
    pkt->anno().ingress_ns = 10'000'000 + static_cast<std::uint64_t>(i) * 100'000;
    m->push(0, std::move(pkt));
  }
  EXPECT_GE(ok->packets() - before, 190u);
}

TEST_F(NetElemFixture, SwitchRetargetsAtRuntime) {
  std::string err;
  ASSERT_TRUE(router.configure(R"(
    s :: Switch(2);
    a :: Counter; b :: Counter;
    s [0] -> a -> Discard; s [1] -> b -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  auto* s = router.find_as<Switch>("s");
  s->push(0, make_udp());
  s->set_output(1);
  s->push(0, make_udp());
  s->push(0, make_udp());
  EXPECT_EQ(router.find_as<Counter>("a")->packets(), 1u);
  EXPECT_EQ(router.find_as<Counter>("b")->packets(), 2u);
}

}  // namespace
}  // namespace mdp::click
