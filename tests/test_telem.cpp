// mdp::telem unit suite: flight-recorder ring semantics (wraparound
// overwrite order, cross-channel merge, window filter, disable gate),
// seqlock safety under concurrent emit/dump (the TSan target), dump_json
// schema conformance, and the snapshot exporter's bounded time series,
// counter deltas, and Prometheus rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telem/flight_recorder.hpp"
#include "telem/snapshot_exporter.hpp"
#include "trace/json.hpp"
#include "trace/registry.hpp"

namespace mdp {
namespace {

using telem::Event;
using telem::EventType;
using telem::FlightRecorder;
using telem::PathTickStats;
using telem::SnapshotExporter;

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorder, EmptyRecorderDumpsAValidEmptyTimeline) {
  FlightRecorder rec;
  EXPECT_EQ(rec.total_emitted(), 0u);
  EXPECT_TRUE(rec.collect().empty());
  const auto v = trace::JsonValue::parse(rec.dump_json());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("schema")->as_string(), "mdp.flight_recorder.v1");
  EXPECT_EQ(v->find("emitted")->as_u64(), 0u);
  EXPECT_EQ(v->find("retained")->as_u64(), 0u);
  EXPECT_TRUE(v->find("events")->is_array());
  EXPECT_TRUE(v->find("events")->items().empty());
}

TEST(FlightRecorder, ChannelIsGetOrCreateAndBoundedByMaxChannels) {
  FlightRecorder rec({.events_per_channel = 8, .max_channels = 2});
  auto* a = rec.channel("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(rec.channel("a"), a) << "same name must return the same ring";
  ASSERT_NE(rec.channel("b"), nullptr);
  EXPECT_EQ(rec.channel("c"), nullptr) << "past max_channels";
  EXPECT_EQ(rec.channel_names(), (std::vector<std::string>{"a", "b"}));
  // 2 channels x 8 slots x 5 atomic words.
  EXPECT_EQ(rec.memory_bytes(), 2u * 8u * 5u * sizeof(std::uint64_t));
}

TEST(FlightRecorder, WraparoundRetainsExactlyTheNewestInEmitOrder) {
  FlightRecorder rec({.events_per_channel = 8});
  auto* ch = rec.channel("w");
  for (std::uint64_t i = 0; i < 20; ++i)
    ch->emit(i * 10, EventType::kUser, 0, static_cast<std::uint32_t>(i), i);
  EXPECT_EQ(ch->emitted(), 20u);
  EXPECT_EQ(rec.total_emitted(), 20u);
  const std::vector<Event> ev = rec.collect();
  ASSERT_EQ(ev.size(), 8u) << "ring keeps exactly the last capacity events";
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].ts_ns, (12 + i) * 10) << "oldest overwritten first";
    EXPECT_EQ(ev[i].b, 12 + i);
    if (i > 0) EXPECT_LT(ev[i - 1].seq, ev[i].seq);
  }
}

TEST(FlightRecorder, DumpMergesChannelsInTimeOrderWithSeqTiebreak) {
  FlightRecorder rec({.events_per_channel = 16});
  auto* a = rec.channel("a");
  auto* b = rec.channel("b");
  // Interleave timestamps across channels, including an exact tie at
  // t=50: the recorder-wide epoch stamped at emit must break it in emit
  // order (a's event first).
  a->emit(30, EventType::kIngressBurst, 0, 1, 0);
  b->emit(10, EventType::kEgressBurst, 1, 1, 0);
  a->emit(50, EventType::kHedgeFire, 0, 1, 7);
  b->emit(50, EventType::kDedupDrop, 1, 1, 8);
  b->emit(40, EventType::kUser, 1, 0, 0);
  const std::vector<Event> ev = rec.collect();
  ASSERT_EQ(ev.size(), 5u);
  const std::uint64_t want_ts[] = {10, 30, 40, 50, 50};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ev[i].ts_ns, want_ts[i]);
  EXPECT_EQ(ev[3].type, EventType::kHedgeFire) << "tie broken by emit seq";
  EXPECT_EQ(ev[4].type, EventType::kDedupDrop);
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_TRUE(ev[i - 1].ts_ns < ev[i].ts_ns ||
                (ev[i - 1].ts_ns == ev[i].ts_ns && ev[i - 1].seq < ev[i].seq));
}

TEST(FlightRecorder, WindowKeepsOnlyTheSpanBeforeTheNewestEvent) {
  FlightRecorder rec({.events_per_channel = 64});
  auto* ch = rec.channel("w");
  for (std::uint64_t t = 0; t <= 1000; t += 100)
    ch->emit(t, EventType::kUser, 0, 0, t);
  const std::vector<Event> ev = rec.collect(/*window_ns=*/250);
  ASSERT_EQ(ev.size(), 3u) << "newest=1000, cutoff=750: keep 800/900/1000";
  EXPECT_EQ(ev.front().ts_ns, 800u);
  EXPECT_EQ(ev.back().ts_ns, 1000u);
}

TEST(FlightRecorder, DisabledRecorderEmitsNothingUntilReenabled) {
  FlightRecorder rec({.events_per_channel = 8, .max_channels = 4,
                      .enabled = false});
  auto* ch = rec.channel("x");
  ch->emit(1, EventType::kUser, 0, 0, 0);
  EXPECT_EQ(rec.total_emitted(), 0u);
  EXPECT_TRUE(rec.collect().empty());
  rec.set_enabled(true);
  ch->emit(2, EventType::kUser, 0, 0, 0);
  EXPECT_EQ(rec.total_emitted(), 1u);
  EXPECT_EQ(rec.collect().size(), 1u);
}

TEST(FlightRecorder, DumpJsonCarriesDecodedEventFields) {
  FlightRecorder rec({.events_per_channel = 8});
  rec.channel("ing")->emit(123, EventType::kIngressBurst, telem::kAllPaths,
                           32, 456);
  const auto v = trace::JsonValue::parse(rec.dump_json());
  ASSERT_TRUE(v.has_value());
  const trace::JsonValue* events = v->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 1u);
  const trace::JsonValue& e = events->items()[0];
  EXPECT_EQ(e.find("t")->as_u64(), 123u);
  EXPECT_EQ(e.find("chan")->as_string(), "ing");
  EXPECT_EQ(e.find("type")->as_string(), "ingress_burst");
  EXPECT_EQ(e.find("path")->as_u64(), telem::kAllPaths);
  EXPECT_EQ(e.find("n")->as_u64(), 32u);
  EXPECT_EQ(e.find("data")->as_u64(), 456u);
}

// The TSan target: writers emit full tilt on their own channels while a
// reader dumps concurrently. The seqlock protocol must keep every
// collected event internally consistent (a torn slot would decode to a
// mismatched (index, payload) pair) and the dump loop data-race-free.
TEST(FlightRecorder, ConcurrentEmitAndDumpStaySane) {
  FlightRecorder rec({.events_per_channel = 256, .max_channels = 4});
  constexpr int kWriters = 3;
  constexpr std::uint64_t kPerWriter = 20'000;
  FlightRecorder::Channel* chans[kWriters];
  for (int w = 0; w < kWriters; ++w)
    chans[w] = rec.channel("w" + std::to_string(w));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i)
        // ts encodes (writer, i) redundantly with b so a torn read is
        // detectable below.
        chans[w]->emit(i, EventType::kUser, static_cast<std::uint16_t>(w),
                       static_cast<std::uint32_t>(w),
                       (static_cast<std::uint64_t>(w) << 32) | i);
    });
  std::uint64_t dumps = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const std::vector<Event> ev = rec.collect();
    ++dumps;
    for (const Event& e : ev) {
      ASSERT_LT(e.path, kWriters) << "torn slot leaked through the seqlock";
      EXPECT_EQ(e.b >> 32, e.path);
      EXPECT_EQ(e.b & 0xffffffffu, e.ts_ns);
      EXPECT_EQ(e.a, e.path);
    }
    bool done = true;
    for (auto* c : chans) done = done && c->emitted() == kPerWriter;
    if (done) stop.store(true, std::memory_order_relaxed);
  }
  for (auto& t : writers) t.join();
  EXPECT_GT(dumps, 0u);
  EXPECT_EQ(rec.total_emitted(), kWriters * kPerWriter);
  // Quiescent now: the final collect sees exactly one full ring per
  // channel, each in order.
  const std::vector<Event> final_ev = rec.collect();
  EXPECT_EQ(final_ev.size(), 3u * 256u);
}

// ---------------------------------------------------------------------------
// Snapshot exporter.

PathTickStats make_path(std::uint16_t path, std::uint64_t base) {
  PathTickStats s;
  s.path = path;
  s.samples = base;
  s.violations = base / 10;
  s.sum_ns = base * 100;
  s.p50_ns = base * 2;
  s.p99_ns = base * 4;
  s.p999_ns = base * 8;
  s.max_ns = base * 16;
  s.stage_sum_ns[2] = base * 50;  // "service"
  return s;
}

TEST(SnapshotExporter, RecordsTicksAndEvictsPastCapacity) {
  SnapshotExporter ex({.capacity_ticks = 4});
  for (std::uint64_t t = 0; t < 10; ++t) {
    ex.begin_tick(t, t * 1000);
    ex.add_path(make_path(0, t + 1));
    ex.end_tick();
  }
  EXPECT_EQ(ex.ticks_recorded(), 10u);
  EXPECT_EQ(ex.ticks_evicted(), 6u);
  const auto v = trace::JsonValue::parse(ex.to_json());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("schema")->as_string(), "mdp.telem.v1");
  EXPECT_EQ(v->find("capacity_ticks")->as_u64(), 4u);
  const trace::JsonValue* ticks = v->find("ticks");
  ASSERT_NE(ticks, nullptr);
  ASSERT_EQ(ticks->items().size(), 4u) << "oldest rows evicted";
  EXPECT_EQ(ticks->items().front().find("tick")->as_u64(), 6u);
  EXPECT_EQ(ticks->items().back().find("tick")->as_u64(), 9u);
}

TEST(SnapshotExporter, TickRowsCarryPerPathQuantilesAndStageSums) {
  SnapshotExporter ex;
  ex.begin_tick(7, 7000);
  ex.add_path(make_path(0, 100));
  ex.add_path(make_path(1, 200));
  ex.end_tick();
  const auto v = trace::JsonValue::parse(ex.to_json());
  ASSERT_TRUE(v.has_value());
  const trace::JsonValue& row = v->find("ticks")->items().at(0);
  EXPECT_EQ(row.find("now_ns")->as_u64(), 7000u);
  const auto& paths = row.find("paths")->items();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[1].find("path")->as_u64(), 1u);
  EXPECT_EQ(paths[1].find("samples")->as_u64(), 200u);
  EXPECT_EQ(paths[1].find("p999_ns")->as_u64(), 1600u);
  const trace::JsonValue* stages = paths[1].find("stage_sum_ns");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->find("service")->as_u64(), 10'000u);
  EXPECT_EQ(stages->find("queue_wait"), nullptr)
      << "zero stages are omitted";
}

TEST(SnapshotExporter, CounterDeltasDiffTheRegistryBetweenTicks) {
  std::uint64_t hits = 0;
  trace::StatsRegistry reg;
  reg.add_counter("dp.hits", [&] { return hits; });
  SnapshotExporter ex({.capacity_ticks = 16, .registry = &reg});
  hits = 5;
  ex.begin_tick(0, 0);
  ex.end_tick();
  hits = 12;
  ex.begin_tick(1, 1000);
  ex.end_tick();
  ex.begin_tick(2, 2000);  // no movement: delta object omitted entirely
  ex.end_tick();
  const auto v = trace::JsonValue::parse(ex.to_json());
  ASSERT_TRUE(v.has_value());
  const auto& ticks = v->find("ticks")->items();
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_EQ(ticks[0].find_path({"counter_deltas", "dp.hits"})->as_u64(), 5u);
  EXPECT_EQ(ticks[1].find_path({"counter_deltas", "dp.hits"})->as_u64(), 7u);
  EXPECT_EQ(ticks[2].find("counter_deltas"), nullptr);
}

TEST(SnapshotExporter, PrometheusRendersNewestTickAndCumulativeCounters) {
  std::uint64_t q = 0;
  trace::StatsRegistry reg;
  reg.add_counter("ctrl.quarantines", [&] { return q; });
  SnapshotExporter ex({.capacity_ticks = 8, .registry = &reg});
  q = 3;
  ex.begin_tick(41, 41'000);
  ex.add_path(make_path(1, 10));
  ex.end_tick();
  const std::string prom = ex.to_prometheus();
  EXPECT_NE(prom.find("mdp_telem_tick 41\n"), std::string::npos);
  EXPECT_NE(prom.find("mdp_telem_window_p99_ns{path=\"1\"} 40\n"),
            std::string::npos);
  EXPECT_NE(prom.find("mdp_telem_window_stage_sum_ns{path=\"1\","
                      "stage=\"service\"} 500\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE mdp_ctrl_quarantines counter\n"),
            std::string::npos)
      << "registry keys must be mapped to the Prometheus charset";
  EXPECT_NE(prom.find("mdp_ctrl_quarantines 3\n"), std::string::npos);
}

}  // namespace
}  // namespace mdp
