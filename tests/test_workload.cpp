// Workload tests: arrival processes, flow-size CDFs, the open-loop traffic
// generator (rate calibration, flow identity, class marking), the RPC/FCT
// workload, and the trace format round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "workload/arrival.hpp"
#include "workload/flow_size.hpp"
#include "workload/rpc_workload.hpp"
#include "workload/trace.hpp"
#include "workload/trace_replay.hpp"
#include "workload/traffic_gen.hpp"

namespace mdp::workload {
namespace {

TEST(Arrivals, PoissonMeanGapConverges) {
  PoissonArrivals a(2000);
  sim::Rng rng(1);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(a.next_gap(rng));
  EXPECT_NEAR(sum / kN, 2000, 50);
}

TEST(Arrivals, DeterministicIsExact) {
  DeterministicArrivals a(500);
  sim::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_gap(rng), 500u);
}

TEST(Arrivals, MmppLongRunRateMatchesMeanGap) {
  MmppConfig cfg;
  cfg.base_gap_ns = 2000;
  cfg.burst_factor = 10;
  cfg.mean_hi_dwell_ns = 50'000;
  cfg.mean_lo_dwell_ns = 450'000;
  MmppArrivals a(cfg);
  sim::Rng rng(3);
  double sum = 0;
  constexpr int kN = 500'000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(a.next_gap(rng));
  EXPECT_NEAR(sum / kN, a.mean_gap_ns(), a.mean_gap_ns() * 0.05);
}

TEST(Arrivals, MmppIsBurstier) {
  // Variance of gap counts in fixed windows must exceed Poisson's.
  auto dispersion = [](ArrivalProcess& a) {
    sim::Rng rng(7);
    constexpr std::uint64_t kWindow = 100'000;
    std::vector<int> counts;
    std::uint64_t t = 0, edge = kWindow;
    int c = 0;
    for (int i = 0; i < 300'000; ++i) {
      t += a.next_gap(rng);
      while (t >= edge) {
        counts.push_back(c);
        c = 0;
        edge += kWindow;
      }
      ++c;
    }
    double mean = 0, var = 0;
    for (int x : counts) mean += x;
    mean /= counts.size();
    for (int x : counts) var += (x - mean) * (x - mean);
    var /= counts.size();
    return var / mean;  // index of dispersion; 1 for Poisson
  };
  PoissonArrivals poisson(2000);
  MmppArrivals mmpp(MmppConfig{2000, 10, 50'000, 450'000});
  EXPECT_NEAR(dispersion(poisson), 1.0, 0.3);
  EXPECT_GT(dispersion(mmpp), 3.0);
}

TEST(FlowSizes, FactoriesProduceSaneDistributions) {
  for (const auto& name : flow_size_workload_names()) {
    auto d = flow_sizes_by_name(name);
    ASSERT_NE(d, nullptr) << name;
    sim::Rng rng(4);
    for (int i = 0; i < 10'000; ++i) {
      double v = d->sample(rng);
      ASSERT_GT(v, 0) << name;
      ASSERT_LE(v, 1e9 + 1) << name;
    }
  }
  EXPECT_EQ(flow_sizes_by_name("nope"), nullptr);
}

TEST(FlowSizes, DataMiningIsHeavierTailedThanWebSearch) {
  auto ws = web_search_flow_sizes();
  auto dm = data_mining_flow_sizes();
  sim::Rng r1(5), r2(5);
  // Median: data-mining flows are mostly tiny.
  std::vector<double> wsv, dmv;
  for (int i = 0; i < 50'000; ++i) {
    wsv.push_back(ws->sample(r1));
    dmv.push_back(dm->sample(r2));
  }
  std::sort(wsv.begin(), wsv.end());
  std::sort(dmv.begin(), dmv.end());
  EXPECT_LT(dmv[25'000], wsv[25'000]) << "data-mining median smaller";
  EXPECT_GT(dmv[49'900], wsv[49'900]) << "data-mining tail fatter";
}

TEST(TrafficGen, EmitsRequestedCountAtCalibratedRate) {
  sim::EventQueue eq;
  net::PacketPool pool(1024, 2048);
  TrafficGenConfig cfg;
  cfg.num_flows = 16;
  std::uint64_t count = 0;
  TrafficGen gen(eq, pool, cfg,
                 std::make_unique<PoissonArrivals>(1000),
                 [&](net::PacketPtr) { ++count; });
  gen.start(5000);
  eq.run();
  EXPECT_EQ(count, 5000u);
  EXPECT_EQ(gen.emitted(), 5000u);
  // Mean gap 1000ns * 5000 packets ~ 5ms total.
  EXPECT_NEAR(static_cast<double>(eq.now()), 5e6, 5e5);
}

TEST(TrafficGen, FlowKeysAreDistinctAndStable) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  TrafficGenConfig cfg;
  cfg.num_flows = 64;
  TrafficGen gen(eq, pool, cfg, std::make_unique<DeterministicArrivals>(1),
                 [](net::PacketPtr) {});
  std::set<std::string> keys;
  for (std::uint32_t f = 0; f < 64; ++f)
    keys.insert(gen.flow_key(f).to_string());
  EXPECT_EQ(keys.size(), 64u);
  EXPECT_EQ(gen.flow_key(3), gen.flow_key(3));
}

TEST(TrafficGen, MarksConfiguredCriticalFraction) {
  sim::EventQueue eq;
  net::PacketPool pool(1024, 2048);
  TrafficGenConfig cfg;
  cfg.num_flows = 100;
  cfg.latency_critical_fraction = 0.2;
  std::uint64_t critical = 0, total = 0;
  TrafficGen gen(eq, pool, cfg, std::make_unique<DeterministicArrivals>(10),
                 [&](net::PacketPtr p) {
                   ++total;
                   if (p->anno().traffic_class ==
                       net::TrafficClass::kLatencyCritical)
                     ++critical;
                 });
  gen.start(20'000);
  eq.run();
  EXPECT_NEAR(static_cast<double>(critical) / total, 0.2, 0.03);
}

TEST(TrafficGen, PacketsParseAndSizesWithinBounds) {
  sim::EventQueue eq;
  net::PacketPool pool(1024, 2048);
  TrafficGenConfig cfg;
  TrafficGen gen(eq, pool, cfg, std::make_unique<DeterministicArrivals>(10),
                 [&](net::PacketPtr p) {
                   auto parsed = net::parse(*p);
                   ASSERT_TRUE(parsed.has_value());
                   ASSERT_GE(parsed->payload_len, cfg.min_payload);
                   ASSERT_LE(parsed->payload_len, cfg.max_payload);
                 });
  gen.start(2000);
  eq.run();
}

TEST(RpcWorkload, FlowsCompleteWithPositiveFct) {
  sim::EventQueue eq;
  net::PacketPool pool(4096, 2048);
  RpcWorkloadConfig cfg;
  cfg.mean_interarrival_ns = 50'000;
  RpcWorkload* rpc_ptr = nullptr;
  RpcWorkload rpc(eq, pool, cfg, uniform_rpc_flow_sizes(),
                  [&](net::PacketPtr p) {
                    // Instant network: echo egress immediately.
                    rpc_ptr->on_packet_egress(p->anno().flow_id, eq.now());
                  });
  rpc_ptr = &rpc;
  rpc.start(200);
  eq.run();
  EXPECT_EQ(rpc.flows_started(), 200u);
  EXPECT_EQ(rpc.flows_completed(), 200u);
  EXPECT_EQ(rpc.all_fct().count(), 200u);
  EXPECT_EQ(rpc.flows_incomplete(), 0u);
  // Uniform 1-16 KB at 1448 MSS: multi-packet flows pace at 1us, so FCT
  // must be positive for flows with >1 packet.
  EXPECT_GT(rpc.all_fct().max(), 0u);
}

TEST(RpcWorkload, ShortAndLongSplitByCutoff) {
  sim::EventQueue eq;
  net::PacketPool pool(65536, 2048);
  RpcWorkloadConfig cfg;
  cfg.short_flow_cutoff_bytes = 100'000;
  RpcWorkload* rpc_ptr = nullptr;
  RpcWorkload rpc(eq, pool, cfg, web_search_flow_sizes(),
                  [&](net::PacketPtr p) {
                    rpc_ptr->on_packet_egress(p->anno().flow_id, eq.now());
                  });
  rpc_ptr = &rpc;
  rpc.start(300);
  eq.run();
  EXPECT_EQ(rpc.short_fct().count() + rpc.long_fct().count(), 300u);
  EXPECT_GT(rpc.short_fct().count(), 0u);
  EXPECT_GT(rpc.long_fct().count(), 0u);
}

TEST(TraceReplay, ReproducesArrivalTimesAndIdentity) {
  sim::EventQueue eq;
  net::PacketPool pool(256, 2048);
  std::vector<TraceRecord> records;
  for (std::uint32_t i = 0; i < 100; ++i)
    records.push_back(TraceRecord{i * 1000 + 7, i % 5,
                                  static_cast<std::uint16_t>(100 + i), 2});
  std::vector<std::tuple<std::uint64_t, std::uint32_t, std::size_t>> got;
  TraceReplay replay(eq, pool, records, [&](net::PacketPtr p) {
    got.emplace_back(eq.now(), p->anno().flow_id, p->length());
  });
  replay.start();
  eq.run();
  ASSERT_EQ(got.size(), 100u);
  EXPECT_EQ(replay.emitted(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(std::get<0>(got[i]), i * 1000 + 7) << "arrival time " << i;
    EXPECT_EQ(std::get<1>(got[i]), i % 5);
  }
  // Same trace replayed twice is identical (determinism end to end).
  sim::EventQueue eq2;
  std::vector<std::tuple<std::uint64_t, std::uint32_t, std::size_t>> got2;
  TraceReplay replay2(eq2, pool, records, [&](net::PacketPtr p) {
    got2.emplace_back(eq2.now(), p->anno().flow_id, p->length());
  });
  replay2.start();
  eq2.run();
  EXPECT_EQ(got, got2);
}

TEST(TraceReplay, OffsetShiftsAllArrivals) {
  sim::EventQueue eq;
  net::PacketPool pool(16, 2048);
  std::vector<TraceRecord> records{TraceRecord{100, 1, 200, 0}};
  std::uint64_t fired_at = 0;
  TraceReplay replay(eq, pool, records,
                     [&](net::PacketPtr) { fired_at = eq.now(); },
                     /*time_offset_ns=*/5000);
  replay.start();
  eq.run();
  EXPECT_EQ(fired_at, 5100u);
}

TEST(Trace, SaveLoadRoundTrip) {
  TraceWriter w;
  for (std::uint32_t i = 0; i < 1000; ++i)
    w.append(TraceRecord{i * 100, i % 7,
                         static_cast<std::uint16_t>(64 + i % 1400),
                         static_cast<std::uint8_t>(i % 3)});
  std::string path = "/tmp/mdp_trace_test.bin";
  ASSERT_TRUE(w.save(path));
  TraceReader r;
  ASSERT_TRUE(r.load(path));
  ASSERT_EQ(r.records().size(), 1000u);
  EXPECT_EQ(r.records(), w.records());
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbageFile) {
  std::string path = "/tmp/mdp_trace_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  TraceReader r;
  EXPECT_FALSE(r.load(path));
  EXPECT_FALSE(r.load("/tmp/definitely_missing_file.bin"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdp::workload
