// mdp::forecast test tier (docs/FORECAST.md):
//
//   estimator      Holt level+trend on synthetic ramps / steps / noise:
//                  the forecast must LEAD a ramp, cold-start gating must
//                  hold, and a regime change must collapse confidence —
//                  the estimator telling the controller "do not actuate".
//   quantiles      WindowStats::quantile_ns edge pinning: empty window,
//                  single-bucket window, top-bucket saturation, and
//                  monotonicity in q.
//   capacity       the offline solver: monotone envelope, interpolation,
//                  pessimistic extrapolation, and the honest 0 when even
//                  max_paths cannot hold the SLO.
//   e2e            the chaos rig with the proactive stage live: on a
//                  seeded ramping delay storm the pre-hedge must fire
//                  BEFORE the first reactive quarantine; a no-storm soak
//                  must record ZERO forecast actuations; a forecast never
//                  hard-quarantines (probe-first, from == to on every
//                  forecast_* decision); and forecast.enabled=false must
//                  be byte-identical to the pre-forecast controller.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "chaos_harness.hpp"
#include "ctrl/slo_monitor.hpp"
#include "forecast/capacity.hpp"
#include "forecast/tail_estimator.hpp"

namespace mdp {
namespace {

using chaos::ChaosResult;
using chaos::ChaosRig;
using chaos::ChaosScenarioConfig;
using forecast::CapacityModel;
using forecast::EstimatorConfig;
using forecast::Forecast;
using forecast::TailEstimator;
using forecast::WindowSample;

// ---------------------------------------------------------------------------
// TailEstimator units.

WindowSample sample(std::uint64_t p999, std::uint64_t samples = 64) {
  WindowSample w;
  w.samples = samples;
  w.p99_ns = p999 - p999 / 10;
  w.p999_ns = p999;
  return w;
}

TEST(TailEstimator, ForecastLeadsALinearRamp) {
  TailEstimator est(1);
  const std::uint64_t h = est.config().horizon_ticks;
  std::uint64_t last = 0;
  for (int i = 0; i < 30; ++i) {
    last = 2'000 + 400 * static_cast<std::uint64_t>(i);
    est.observe(0, sample(last));
  }
  const Forecast f = est.forecast(0);
  // On a ramp the Holt pair tracks the drift: the forecast must be AHEAD
  // of the newest measurement, in the direction of travel, and within a
  // sane band of the true extrapolation.
  EXPECT_GT(f.p999_ns, last) << "the forecast must lead the measurement";
  const std::uint64_t truth = last + 400 * h;
  EXPECT_NEAR(static_cast<double>(f.p999_ns), static_cast<double>(truth),
              0.25 * static_cast<double>(truth));
  EXPECT_GT(f.p99_ns, 0u);
  // A tracked drift means small residuals means high confidence.
  EXPECT_GE(f.confidence, 0.7);
  EXPECT_TRUE(f.actionable);
  EXPECT_EQ(f.horizon_ticks, h);
  EXPECT_EQ(est.windows_seen(0), 30u);
  EXPECT_EQ(est.windows_skipped(0), 0u);
}

TEST(TailEstimator, ColdStartNeverActionable) {
  TailEstimator est(1);
  const std::uint64_t need = est.config().min_windows;
  for (std::uint64_t i = 0; i + 1 < need; ++i) {
    est.observe(0, sample(5'000));
    EXPECT_FALSE(est.forecast(0).actionable)
        << "window " << i << ": actionable before min_windows";
  }
  // A constant series is maximally predictable — confidence 1 — so the
  // very next adequate window flips the gate.
  est.observe(0, sample(5'000));
  const Forecast f = est.forecast(0);
  EXPECT_DOUBLE_EQ(f.confidence, 1.0);
  EXPECT_TRUE(f.actionable);
}

TEST(TailEstimator, ThinWindowsAreSkippedEntirely) {
  TailEstimator est(1);
  const std::uint64_t thin = est.config().min_samples - 1;
  for (int i = 0; i < 20; ++i) est.observe(0, sample(50'000, thin));
  EXPECT_EQ(est.windows_seen(0), 0u);
  EXPECT_EQ(est.windows_skipped(0), 20u);
  const Forecast f = est.forecast(0);
  EXPECT_EQ(f.p999_ns, 0u) << "skipped windows must not move the state";
  EXPECT_FALSE(f.actionable);
}

TEST(TailEstimator, RegimeChangeCollapsesConfidenceThenRecovers) {
  TailEstimator est(1);
  for (int i = 0; i < 20; ++i) est.observe(0, sample(1'000));
  ASSERT_TRUE(est.forecast(0).actionable);
  ASSERT_DOUBLE_EQ(est.forecast(0).confidence, 1.0);

  // Step x20: the one-step residual spikes, confidence collapses below
  // the floor, and the estimator must refuse to actuate even though its
  // point forecast is now chasing the step.
  est.observe(0, sample(20'000));
  const Forecast onset = est.forecast(0);
  EXPECT_LT(onset.confidence, est.config().confidence_floor);
  EXPECT_FALSE(onset.actionable)
      << "a fresh regime change must never actuate";

  // The new regime holds; residuals shrink; confidence recovers and the
  // level converges on the new plateau.
  for (int i = 0; i < 20; ++i) est.observe(0, sample(20'000));
  const Forecast settled = est.forecast(0);
  EXPECT_GE(settled.confidence, est.config().confidence_floor);
  EXPECT_TRUE(settled.actionable);
  EXPECT_NEAR(static_cast<double>(settled.p999_ns), 20'000.0, 2'000.0);
}

TEST(TailEstimator, DominantStageIsTheTrendingOneNotTheBiggest) {
  TailEstimator est(1);
  const auto qw = static_cast<std::size_t>(trace::Stage::kQueueWait);
  const auto sv = static_cast<std::size_t>(trace::Stage::kService);
  for (std::uint64_t i = 0; i < 20; ++i) {
    WindowSample w = sample(5'000 + 100 * i);
    // queue_wait carries the most mass but is FLAT; service is smaller
    // but worsening every window — the forecast must name service.
    w.stage_sum_ns[qw] = 64 * 4'000;
    w.stage_sum_ns[sv] = 64 * (500 + 100 * i);
    est.observe(0, w);
  }
  const Forecast f = est.forecast(0);
  ASSERT_TRUE(f.has_stage);
  EXPECT_EQ(f.dominant_stage, trace::Stage::kService)
      << "the forecast names where the tail is HEADING";
  EXPECT_GT(f.dominant_stage_slope, 0.0);
}

TEST(TailEstimator, OutOfRangePathIsInert) {
  TailEstimator est(2);
  est.observe(7, sample(5'000));  // must not crash or touch state
  EXPECT_EQ(est.windows_seen(7), 0u);
  const Forecast f = est.forecast(7);
  EXPECT_FALSE(f.actionable);
  EXPECT_EQ(f.p999_ns, 0u);
}

// ---------------------------------------------------------------------------
// WindowStats::quantile_ns edge pinning (the interpolated accessor the
// estimator consumes; the quantized p50/p99/p999 fields stay untouched).

TEST(WindowQuantile, EmptyWindowIsZero) {
  ctrl::SloMonitor mon(1, 10'000);
  const ctrl::WindowStats w = mon.harvest(0);
  EXPECT_EQ(w.samples, 0u);
  EXPECT_EQ(w.quantile_ns(0.5), 0u);
  EXPECT_EQ(w.quantile_ns(0.999), 0u);
  EXPECT_EQ(w.quantile_ns(0.0), 0u);
}

TEST(WindowQuantile, SingleSampleReturnsItsBucketUpperEdge) {
  ctrl::SloMonitor mon(1, 10'000);
  mon.observe(0, 1'000);
  const ctrl::WindowStats w = mon.harvest(0);
  ASSERT_EQ(w.samples, 1u);
  const std::uint64_t edge =
      ctrl::slo_bucket_upper_edge(ctrl::slo_bucket_index(1'000));
  // rank/count = 1/1 -> frac 1 -> the bucket's upper edge, for every q.
  EXPECT_EQ(w.quantile_ns(0.001), edge);
  EXPECT_EQ(w.quantile_ns(0.5), edge);
  EXPECT_EQ(w.quantile_ns(1.0), edge);
  EXPECT_EQ(w.quantile_ns(0.5), w.p50_ns)
      << "single sample: interpolated and quantized must agree";
}

TEST(WindowQuantile, InterpolatesWithinTheCrossingBucket) {
  ctrl::SloMonitor mon(1, 1'000'000);
  // 100 samples in the 1000-bucket, 100 in the 3000-bucket.
  for (int i = 0; i < 100; ++i) mon.observe(0, 1'000);
  for (int i = 0; i < 100; ++i) mon.observe(0, 3'000);
  const ctrl::WindowStats w = mon.harvest(0);
  ASSERT_EQ(w.samples, 200u);
  const std::size_t lo_idx = ctrl::slo_bucket_index(1'000);
  const std::uint64_t lo_lower = ctrl::slo_bucket_lower_edge(lo_idx);
  const std::uint64_t lo_upper = ctrl::slo_bucket_upper_edge(lo_idx);
  // q=0.25 -> rank 50 of the low bucket's 100 -> halfway up its span.
  const std::uint64_t q25 = w.quantile_ns(0.25);
  EXPECT_EQ(q25, lo_lower + (lo_upper - lo_lower) / 2);
  // q=1.0 lands exactly on the top bucket's upper edge.
  EXPECT_EQ(w.quantile_ns(1.0),
            ctrl::slo_bucket_upper_edge(ctrl::slo_bucket_index(3'000)));
  // Monotone in q, and the interpolated p99 never exceeds the quantized
  // one (upper edge of the crossing bucket is the ceiling).
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const std::uint64_t v = w.quantile_ns(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(w.quantile_ns(0.99), w.p99_ns);
}

TEST(WindowQuantile, SaturatedTopOctaveReturnsMax) {
  ctrl::SloMonitor mon(1, 10'000);
  for (int i = 0; i < 10; ++i) mon.observe(0, 1'000);
  mon.observe(0, UINT64_MAX);
  const ctrl::WindowStats w = mon.harvest(0);
  ASSERT_EQ(w.samples, 11u);
  // The top octave has no sub-bucket resolution to pretend to: the
  // interpolated quantile saturates rather than inventing a value.
  EXPECT_EQ(w.quantile_ns(1.0), UINT64_MAX);
  EXPECT_LT(w.quantile_ns(0.5), 10'000u);
}

// ---------------------------------------------------------------------------
// CapacityModel: the offline "paths needed for SLO X at load Y" solver.

TEST(CapacityModel, EmptyOrUnfinalizedIsInert) {
  CapacityModel m;
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.predict_tail_ns(1.0), 0.0);
  EXPECT_EQ(m.paths_needed(10.0, 1'000, 8), 0u);
  m.add_observation(1.0, 1'000.0);
  EXPECT_DOUBLE_EQ(m.predict_tail_ns(1.0), 0.0) << "finalize() not called";
  m.finalize();
  EXPECT_DOUBLE_EQ(m.predict_tail_ns(1.0), 1'000.0);
}

TEST(CapacityModel, RejectsNonPositiveLoad) {
  CapacityModel m;
  m.add_observation(0.0, 1'000.0);
  m.add_observation(-1.0, 1'000.0);
  m.add_observation(1.0, -5.0);
  EXPECT_TRUE(m.empty());
}

TEST(CapacityModel, MonotoneEnvelopeFlattensDipsAndCollapsesDuplicates) {
  CapacityModel m;
  m.add_observation(3.0, 6'000.0);
  m.add_observation(1.0, 5'000.0);
  m.add_observation(2.0, 4'000.0);  // a dip: tails never improve with load
  m.add_observation(2.0, 3'500.0);  // duplicate load, better tail: noise
  m.finalize();
  EXPECT_EQ(m.observations(), 3u);
  EXPECT_DOUBLE_EQ(m.predict_tail_ns(2.0), 5'000.0)
      << "the dip must be flattened up to its left neighbor";
  EXPECT_DOUBLE_EQ(m.predict_tail_ns(3.0), 6'000.0);
}

TEST(CapacityModel, InterpolatesClampsAndExtrapolatesPessimistically) {
  CapacityModel m;
  m.add_observation(1.0, 1'000.0);
  m.add_observation(3.0, 3'000.0);
  m.finalize();
  EXPECT_DOUBLE_EQ(m.predict_tail_ns(2.0), 2'000.0);  // interior: linear
  EXPECT_DOUBLE_EQ(m.predict_tail_ns(0.25), 1'000.0);  // clamp below
  // Beyond the last point: extrapolate along the final segment's slope
  // (1000 ns per unit load) — deliberately err toward MORE paths.
  EXPECT_DOUBLE_EQ(m.predict_tail_ns(5.0), 5'000.0);
}

TEST(CapacityModel, PathsNeededInvertsTheCurve) {
  CapacityModel m;
  for (int load = 1; load <= 8; ++load)
    m.add_observation(static_cast<double>(load), 1'000.0 * load);
  m.finalize();
  // total 10/tick, SLO 2500 ns: per-path share must be <= 2.5 -> k = 4.
  EXPECT_EQ(m.paths_needed(10.0, 2'500, 8), 4u);
  // Loose SLO: one path carries it all.
  EXPECT_EQ(m.paths_needed(10.0, 10'000, 8), 1u);
  // SLO below the curve's floor (clamped first point = 1000 ns): even
  // max_paths cannot hold it — the solver must say 0, not max_paths.
  EXPECT_EQ(m.paths_needed(10.0, 400, 8), 0u);
  // Degenerate total load still costs one path.
  EXPECT_EQ(m.paths_needed(0.0, 2'500, 8), 1u);
}

// ---------------------------------------------------------------------------
// Controller e2e under the chaos rig.

const std::set<std::string>& known_reasons() {
  static const std::set<std::string> kReasons = {
      "slo_breach",       "backlog_breach",   "slo+backlog_breach",
      "probe_breach",     "drain_start",      "drained",
      "probation_passed", "hedge_raise",      "hedge_lower",
      "hedge_timeout",    "tenant_throttle",  "tenant_shed",
      "tenant_probation", "tenant_reinstate", "granularity_shift",
      "forecast_prehedge", "forecast_probe",  "forecast_prequarantine",
      "forecast_restore"};
  return kReasons;
}

void expect_rig_invariants(const ChaosResult& r, const char* label) {
  EXPECT_EQ(r.duplicate_egress, 0u) << label;
  EXPECT_EQ(r.order_violations, 0u) << label;
  EXPECT_EQ(r.pool_in_use, 0u) << label;
  EXPECT_EQ(r.pool_allocs, r.pool_recycles) << label;
  EXPECT_GT(r.egressed, 0u) << label;
  for (const auto& d : r.decisions) {
    EXPECT_TRUE(known_reasons().count(d.reason))
        << label << ": unknown reason '" << d.reason << "'";
    // The probe-first contract: a forecast_* decision never moves the
    // FSM. Only the reactive judge quarantines.
    if (std::string(d.reason).rfind("forecast_", 0) == 0) {
      EXPECT_EQ(d.from, d.to)
          << label << ": a forecast actuation moved the FSM ("
          << d.reason << ")";
    }
  }
}

ctrl::Config forecast_ctrl() {
  ctrl::Config c;
  c.slo_target_ns = 10'000;  // 10 logical iterations
  c.violation_threshold = 0.25;
  c.min_samples = 16;
  c.path.quarantine_after = 2;
  c.path.probation_probes = 8;
  c.probe_grant_per_tick = 8;
  c.min_serving_paths = 1;
  c.hedger.enabled = true;
  c.hedge_timeout.enabled = true;
  c.hedge_timeout.min_timeout_ns = 1'000;
  c.hedge_timeout.min_samples = 16;
  c.forecast.enabled = true;
  return c;
}

/// A ramping delay storm on path 1: 512-iteration (8-window) steps so
/// the Holt pair locks onto the drift well before the tail crosses the
/// SLO. delay d -> e2e latency roughly (d + 1) us against a 10 us SLO:
/// the ramp spends four phases (2..8) strictly inside the SLO — where
/// only a FORECAST can see trouble — then jumps over it (12) where the
/// reactive judge finally has a breach to rule on.
ChaosScenarioConfig ramp_storm_cfg(std::uint64_t seed) {
  ChaosScenarioConfig cfg;
  cfg.seed = seed;
  cfg.iterations = 20'000;
  cfg.flows = 4;
  cfg.packets_per_iter = 2;
  cfg.drain_per_iter = {8, 8};
  cfg.flow_affinity = true;  // keep the slow path's pain in its own spans
  cfg.observe_late_copies = true;
  cfg.ctrl = forecast_ctrl();
  const std::uint32_t delays[] = {2, 4, 6, 8};
  std::uint64_t from = 4'000;
  for (std::uint32_t d : delays) {
    cfg.phases.push_back({from, from + 512, 1, {.delay_ticks = d}});
    from += 512;
  }
  cfg.phases.push_back({from, 16'000, 1, {.delay_ticks = 12}});
  return cfg;
}

TEST(ForecastChaos, PrehedgeFiresBeforeTheReactiveBreach) {
  // Keep this scenario about the PRE-HEDGE: park the pre-quarantine
  // threshold out of reach so admission stays untouched until the
  // reactive judge rules.
  ChaosScenarioConfig cfg = ramp_storm_cfg(21);
  cfg.ctrl.forecast.prequarantine_threshold = 10.0;
  ChaosResult r = ChaosRig(cfg).run();
  expect_rig_invariants(r, "ramp");

  ASSERT_GE(r.forecast_prehedges, 1u)
      << "the ramp must trip the pre-hedge while still inside the SLO";
  ASSERT_GT(r.quarantines, 0u)
      << "the 12-tick plateau must eventually breach reactively";

  std::uint64_t prehedge_tick = 0;
  bool saw_prehedge = false;
  std::uint64_t quarantine_tick = 0;
  bool saw_quarantine = false;
  for (const auto& d : r.decisions) {
    if (!saw_prehedge && std::string(d.reason) == "forecast_prehedge") {
      prehedge_tick = d.tick;
      saw_prehedge = true;
      // The decision must carry the forecast evidence it acted on.
      EXPECT_GT(d.fc_p999_ns,
                static_cast<std::uint64_t>(
                    cfg.ctrl.forecast.prehedge_threshold *
                    static_cast<double>(cfg.ctrl.slo_target_ns)));
      EXPECT_GE(d.fc_confidence,
                cfg.ctrl.forecast.estimator.confidence_floor);
      EXPECT_EQ(d.fc_horizon_ticks,
                cfg.ctrl.forecast.estimator.horizon_ticks);
      EXPECT_EQ(d.path, 1u) << "the worst forecast is the ramping path";
    }
    if (!saw_quarantine && d.path < ctrl::Decision::kGranularity &&
        d.to == ctrl::PathState::kQuarantined) {
      quarantine_tick = d.tick;
      saw_quarantine = true;
    }
  }
  ASSERT_TRUE(saw_prehedge);
  ASSERT_TRUE(saw_quarantine);
  EXPECT_LT(prehedge_tick, quarantine_tick)
      << "the whole point: proactive actuation must LEAD the breach";

  // The pre-hedge must be confirmed by the breach that followed it.
  EXPECT_GE(r.forecast_confirmed, 1u);
  // The report carries the forecast section and the decision evidence.
  EXPECT_NE(r.ctrl_report.find("\"forecast_enabled\":true"),
            std::string::npos);
  EXPECT_NE(r.ctrl_report.find("\"forecast_prehedges\""), std::string::npos);
  EXPECT_NE(r.ctrl_report.find("forecast_prehedge"), std::string::npos);
  // The telem time series carries per-path forecast rows.
  EXPECT_NE(r.telem_report.find("\"forecast\""), std::string::npos);
}

TEST(ForecastChaos, PrequarantineIsProbeFirstAndSelfReleasing) {
  // The reactive judge is disarmed (violation fraction can never exceed
  // 1.1), so whatever the forecast does is all that happens: the ramp
  // must produce pre-quarantines but ZERO hard quarantines — the
  // "forecast never hard-drains" contract — and the holds must release
  // on their own (restore or max_hold expiry), booking false positives
  // since no breach can ever confirm them.
  ChaosScenarioConfig cfg = ramp_storm_cfg(33);
  cfg.ctrl.violation_threshold = 1.1;
  cfg.ctrl.hedger.enabled = false;
  cfg.ctrl.hedge_timeout.enabled = false;
  cfg.ctrl.forecast.prequarantine_threshold = 1.2;
  cfg.ctrl.forecast.probe_grant = 32;
  ChaosResult r = ChaosRig(cfg).run();
  expect_rig_invariants(r, "probe-first");

  EXPECT_GE(r.forecast_prequarantines, 1u)
      << "the 12-tick plateau forecast must cross 1.2x SLO";
  EXPECT_EQ(r.quarantines, 0u)
      << "no forecast may hard-quarantine without reactive confirmation";
  EXPECT_GE(r.forecast_restores, 1u)
      << "a hold without confirmation must release on its own";
  EXPECT_GE(r.forecast_false_positives, 1u)
      << "unconfirmed episodes must be booked as false positives";
  EXPECT_EQ(r.breach_windows, 0u);
  EXPECT_NE(r.ctrl_report.find("forecast_prequarantine"), std::string::npos);
  EXPECT_NE(r.ctrl_report.find("forecast_restore"), std::string::npos);
}

TEST(ForecastChaos, NoStormSoakNeverActuates) {
  // A clean plane with the forecast stage LIVE: it must observe (telem
  // rows carry forecasts) and touch nothing.
  ChaosScenarioConfig cfg;
  cfg.seed = 57;
  cfg.iterations = 20'000;
  cfg.flows = 4;
  cfg.packets_per_iter = 2;
  cfg.drain_per_iter = {8, 8};
  cfg.observe_late_copies = true;
  cfg.ctrl = forecast_ctrl();
  ChaosResult r = ChaosRig(cfg).run();
  expect_rig_invariants(r, "calm");

  EXPECT_EQ(r.forecast_prehedges, 0u);
  EXPECT_EQ(r.forecast_probes, 0u);
  EXPECT_EQ(r.forecast_prequarantines, 0u);
  EXPECT_EQ(r.forecast_restores, 0u);
  EXPECT_EQ(r.forecast_false_positives, 0u);
  EXPECT_EQ(r.breach_windows, 0u);
  EXPECT_EQ(r.quarantines, 0u);
  for (const auto& d : r.decisions)
    EXPECT_TRUE(std::string(d.reason).rfind("forecast_", 0) != 0)
        << "calm-plane forecast actuation: " << d.reason;
  // Observing without actuating: the telem rows still carry forecasts.
  EXPECT_NE(r.telem_report.find("\"forecast\""), std::string::npos);
  EXPECT_NE(r.ctrl_report.find("\"forecast_false_positive_fraction\""),
            std::string::npos);
}

TEST(ForecastChaos, SameSeedIsByteIdentical) {
  ChaosScenarioConfig cfg = ramp_storm_cfg(42);
  cfg.iterations = 12'000;
  cfg.phases.back().to_iter = 10'000;
  ChaosResult a = ChaosRig(cfg).run();
  ChaosResult b = ChaosRig(cfg).run();
  EXPECT_GT(a.forecast_prehedges + a.forecast_probes +
                a.forecast_prequarantines,
            0u)
      << "a run where the forecast never acts proves nothing";
  EXPECT_EQ(a.ctrl_report, b.ctrl_report)
      << "forecast decisions must be as reproducible as reactive ones";
  EXPECT_EQ(a.delivered_log, b.delivered_log);
  EXPECT_EQ(a.telem_report, b.telem_report);
  EXPECT_EQ(a.telem_dump, b.telem_dump);
  EXPECT_EQ(a.forecast_confirmed, b.forecast_confirmed);
  EXPECT_EQ(a.forecast_false_positives, b.forecast_false_positives);
}

TEST(ForecastChaos, DisabledIsByteIdenticalToThePreForecastController) {
  // The same storm, three configs: the plain pre-forecast default, the
  // default with every forecast KNOB customized but enabled=false, and
  // the harness observe_late_copies flag off (its own default). All
  // three must produce byte-identical artifacts — "disabled means OFF",
  // the same contract the replication lever honors — and none may leak
  // a single forecast key into any report.
  ChaosScenarioConfig legacy;
  legacy.seed = 64;
  legacy.iterations = 15'000;
  legacy.flows = 4;
  legacy.packets_per_iter = 2;
  legacy.drain_per_iter = {8, 8};
  legacy.flow_affinity = true;
  legacy.ctrl = forecast_ctrl();
  legacy.ctrl.forecast = ctrl::ForecastConfig{};  // default: disabled
  legacy.phases.push_back({3'000, 12'000, 1, {.delay_ticks = 14}});

  ChaosScenarioConfig parked = legacy;
  parked.ctrl.forecast.enabled = false;  // explicit, knobs customized
  parked.ctrl.forecast.prehedge_threshold = 0.1;
  parked.ctrl.forecast.prequarantine_threshold = 0.2;
  parked.ctrl.forecast.restore_threshold = 0.05;
  parked.ctrl.forecast.estimator.min_windows = 1;
  parked.ctrl.forecast.estimator.confidence_floor = 0.0;
  parked.ctrl.forecast.probe_grant = 1'000;

  ChaosResult a = ChaosRig(legacy).run();
  ChaosResult b = ChaosRig(parked).run();
  EXPECT_GT(a.quarantines, 0u) << "the storm must make the run eventful";
  EXPECT_EQ(a.ctrl_report, b.ctrl_report)
      << "a parked forecast stage must not perturb the decision log";
  EXPECT_EQ(a.delivered_log, b.delivered_log);
  EXPECT_EQ(a.telem_report, b.telem_report);
  EXPECT_EQ(a.telem_dump, b.telem_dump);
  EXPECT_EQ(a.hedges_sent, b.hedges_sent);

  // Zero leakage: no forecast key anywhere in a disabled run's artifacts.
  EXPECT_EQ(a.ctrl_report.find("forecast"), std::string::npos);
  EXPECT_EQ(a.telem_report.find("forecast"), std::string::npos);
  EXPECT_EQ(a.forecast_prehedges + a.forecast_probes +
                a.forecast_prequarantines + a.forecast_restores +
                a.forecast_confirmed + a.forecast_false_positives,
            0u);
}

}  // namespace
}  // namespace mdp
