// Token bucket, flow monitor, and chain builder tests.
#include <gtest/gtest.h>

#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "net/vxlan.hpp"
#include "nf/chain.hpp"
#include "nf/flow_monitor.hpp"
#include "nf/rate_limiter.hpp"

namespace mdp::nf {
namespace {

TEST(TokenBucket, AdmitsWithinBurst) {
  TokenBucket tb(/*rate_bps=*/1'000'000, /*burst=*/1000);
  EXPECT_TRUE(tb.admit(1000, 0));
  EXPECT_FALSE(tb.admit(1, 0)) << "bucket drained";
}

TEST(TokenBucket, RefillsAtConfiguredRate) {
  TokenBucket tb(1'000'000, 1000);  // 1 MB/s = 1 byte/us
  EXPECT_TRUE(tb.admit(1000, 0));
  // 500us later: 500 bytes refilled.
  EXPECT_TRUE(tb.admit(400, 500'000));
  EXPECT_FALSE(tb.admit(200, 500'000));
  // Long idle caps at burst.
  EXPECT_TRUE(tb.admit(1000, 10'000'000'000ULL));
  EXPECT_FALSE(tb.admit(1001, 10'000'000'001ULL));
}

TEST(TokenBucket, LongRunThroughputMatchesRate) {
  TokenBucket tb(1'000'000, 2000);
  std::uint64_t t = 0;
  std::uint64_t passed_bytes = 0;
  for (int i = 0; i < 100'000; ++i) {
    t += 500;  // 2 M packets/s offered, way over rate
    if (tb.admit(100, t)) passed_bytes += 100;
  }
  double achieved_bps = static_cast<double>(passed_bytes) * 1e9 /
                        static_cast<double>(t);
  EXPECT_NEAR(achieved_bps, 1'000'000, 50'000);
}

TEST(RateLimiterElement, SplitsConformingAndExcess) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  // 0.008 Mbps = 1000 bytes/s; burst 1 KB.
  ASSERT_TRUE(router.configure(R"(
    rl :: RateLimiter(0.008, 1);
    ok :: Counter; drop :: Counter;
    rl [0] -> ok -> Discard; rl [1] -> drop -> Discard;
  )",
                               &err))
      << err;
  ASSERT_TRUE(router.initialize(&err)) << err;
  net::BuildSpec spec;
  spec.flow = {1, 2, 3, 4, 17};
  spec.payload_len = 400;
  auto* rl = router.find("rl");
  for (int i = 0; i < 5; ++i) {
    auto pkt = net::build_udp(pool, spec);
    pkt->anno().ingress_ns = 1000 * i;  // all within ~0 time
    rl->push(0, std::move(pkt));
  }
  auto* ok = router.find_as<click::Counter>("ok");
  auto* drop = router.find_as<click::Counter>("drop");
  EXPECT_GE(ok->packets(), 1u);
  EXPECT_GE(drop->packets(), 1u);
  EXPECT_EQ(ok->packets() + drop->packets(), 5u);
}

TEST(FlowMonitorCore, TracksPerFlowStats) {
  FlowMonitorCore mon(16);
  net::FlowKey f{1, 2, 3, 4, 17};
  mon.record(f, 100, 1000);
  mon.record(f, 200, 2000);
  const FlowStats* st = mon.lookup(f);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->packets, 2u);
  EXPECT_EQ(st->bytes, 300u);
  EXPECT_EQ(st->first_seen_ns, 1000u);
  EXPECT_EQ(st->last_seen_ns, 2000u);
  EXPECT_EQ(mon.lookup(net::FlowKey{9, 9, 9, 9, 6}), nullptr);
}

TEST(FlowMonitorCore, TopKReturnsHeaviest) {
  FlowMonitorCore mon(64);
  for (std::uint32_t i = 0; i < 10; ++i) {
    net::FlowKey f{i, 2, 3, 4, 17};
    mon.record(f, (i + 1) * 1000, 0);
  }
  auto top = mon.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].second.bytes, 10'000u);
  EXPECT_EQ(top[1].second.bytes, 9'000u);
  EXPECT_EQ(top[2].second.bytes, 8'000u);
}

TEST(FlowMonitorCore, BoundedTableCountsOverflow) {
  FlowMonitorCore mon(2);
  for (std::uint32_t i = 0; i < 5; ++i)
    mon.record(net::FlowKey{i, 2, 3, 4, 17}, 10, 0);
  EXPECT_EQ(mon.num_flows(), 2u);
  EXPECT_EQ(mon.overflow(), 3u);
}

TEST(ChainSpec, PresetsHaveExpectedLengths) {
  EXPECT_EQ(ChainSpec::preset("ipcheck").length(), 1u);
  EXPECT_EQ(ChainSpec::preset("fw").length(), 2u);
  EXPECT_EQ(ChainSpec::preset("stateful").length(), 2u);
  EXPECT_EQ(ChainSpec::preset("fw-nat").length(), 3u);
  EXPECT_EQ(ChainSpec::preset("fw-nat-lb").length(), 4u);
  EXPECT_EQ(ChainSpec::preset("fw-nat-lb-mon").length(), 5u);
  EXPECT_EQ(ChainSpec::preset("overlay").length(), 5u);
  EXPECT_EQ(ChainSpec::preset("full").length(), 6u);
  EXPECT_EQ(ChainSpec::preset("no-such").length(), 0u);
}

TEST(ChainBuilder, OverlayChainEncapsulates) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  auto built =
      build_chain(router, "c", ChainSpec::preset("overlay"), &err);
  ASSERT_TRUE(built) << err;
  auto* q = router.add_element("q", "Queue", {"8"}, &err);
  ASSERT_TRUE(router.connect(built->tail, 0, q, 0, &err)) << err;
  ASSERT_TRUE(router.initialize(&err)) << err;

  net::BuildSpec spec;
  spec.flow = {0x0a010101, 0x0a006401, 1234, 80, 0};
  std::size_t inner_len = net::frame_length(spec, net::kIpProtoUdp);
  built->head->push(0, net::build_udp(pool, spec));
  auto out = router.find_as<click::Queue>("q")->pull(0);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->length(), inner_len + net::kVxlanOverhead);
  auto parsed = net::parse(*out);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->flow.dst_port, net::kVxlanPort);
}

TEST(ChainBuilder, BuildsAndCostsGrowWithLength) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  sim::TimeNs prev_cost = 0;
  int idx = 0;
  for (const auto& name : ChainSpec::preset_names()) {
    auto built = build_chain(router, "c" + std::to_string(idx++),
                             ChainSpec::preset(name), &err);
    ASSERT_TRUE(built) << name << ": " << err;
    EXPECT_GT(built->cost_ns, prev_cost)
        << "longer chain must cost more (" << name << ")";
    prev_cost = built->cost_ns;
  }
}

TEST(ChainBuilder, FunctionalEndToEndThroughFullChain) {
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  auto built =
      build_chain(router, "c", ChainSpec::preset("fw-nat-lb"), &err);
  ASSERT_TRUE(built) << err;
  // Terminate with a queue so we can inspect the output.
  auto* q = router.add_element("q", "Queue", {"16"}, &err);
  ASSERT_NE(q, nullptr) << err;
  ASSERT_TRUE(router.connect(built->tail, 0, q, 0, &err)) << err;
  ASSERT_TRUE(router.initialize(&err)) << err;

  net::BuildSpec spec;
  spec.flow = {0x0a010101, 0x0a006401, 1234, 80, 0};  // allowed src, VIP dst
  built->head->push(0, net::build_udp(pool, spec));
  auto out = router.find_as<click::Queue>("q")->pull(0);
  ASSERT_TRUE(out) << "packet must traverse fw->nat->lb";
  auto parsed = net::parse(*out);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->flow.src_ip, 0x0a0a0a0au) << "NAT applied";
  EXPECT_NE(parsed->flow.dst_ip, 0x0a006401u) << "LB applied";
}

TEST(ChainBuilder, UnknownPresetFails) {
  sim::EventQueue eq;
  net::PacketPool pool(8, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  EXPECT_FALSE(build_chain(router, "x", ChainSpec::preset("nope"), &err));
}

}  // namespace
}  // namespace mdp::nf
