#!/usr/bin/env python3
"""Docs gate: verify that every intra-repo markdown link resolves.

Scans all *.md files in the repository (skipping build trees) for inline
links and checks that relative targets exist on disk. External links
(http/https/mailto) and pure anchors (#...) are ignored; a `path#anchor`
link is checked for the file only.

Usage: check_md_links.py [repo_root]
"""
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", "build", "build-notrace", ".github"}


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    bad = []
    checked = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if not name.endswith(".md"):
                continue
            md = os.path.join(dirpath, name)
            with open(md, encoding="utf-8") as f:
                text = f.read()
            for m in LINK_RE.finditer(text):
                target = m.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                resolved = os.path.normpath(os.path.join(dirpath, target))
                checked += 1
                if not os.path.exists(resolved):
                    bad.append((os.path.relpath(md, root), target))
    for md, target in bad:
        print(f"BROKEN: {md} -> {target}")
    print(f"{checked} intra-repo links checked, {len(bad)} broken")
    sys.exit(1 if bad else 0)


if __name__ == "__main__":
    main()
