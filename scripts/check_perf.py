#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh bench --json sweep against its
committed baseline. Dispatches on the report's "bench" id:

    ext2_fastpath  vs BENCH_fastpath.json  (threaded-plane burst sweep)
    ext4_tenants   vs BENCH_tenants.json   (million-flow tenancy tier)
    fig11_fct      vs BENCH_fct.json       (flow-granularity FCT bench)
    ext5_forecast  vs BENCH_forecast.json  (predictive-control A/B bench)

Usage:
    check_perf.py <fresh.json> [<baseline.json>] [--max-regression 2.0]
    check_perf.py --self-test

Fails (exit 1) when any gated row regressed by more than --max-regression
(default 2x — deliberately generous: CI runners are shared and noisy;
this catches "someone made the hot path 5x slower", not 10% drift).

ext2_fastpath extras: the burst-32-vs-burst-1 speedup (>= 1.3x) and the
telem on/off overhead are reported as WARNING-only lines — an
oversubscribed runner can distort them arbitrarily, so they do not gate.
The loopback/synthetic gap at burst 32 DOES gate hard (<= 4x): both rows
come from the same fresh run, so runner speed cancels out, and a fresh
sweep missing either row fails rather than passing by omission.

ext4_tenants extras: rows marked wall_clock=false run on the rig's
LOGICAL clock (deterministic: same seed, same numbers, any machine), so
on top of the ratio rule the gate enforces the tenancy contract hard —
the victim tenant's p99.9 under a storm WITH admission must sit inside
the SLO target the row carries (docs/TENANCY.md). Regenerate baselines
from a Release build:

fig11_fct extras: every row is logical-clock (wall_clock=false), so the
whole report gates hard: each row's duplicate_byte_fraction must stay
<= 0.25 (replication must not degenerate into flooding), and on the
websearch workload the better of flow_replica/combined must beat
single_path short-flow p99 FCT by >= 2x — the PR's headline claim,
replayed from a seeded rig on every CI run.

ext5_forecast extras: every row is logical-clock, so the predictive
plane's A/B wins gate hard: client breach windows and storm-onset p99.9
must be STRICTLY lower with the forecast enabled than reactive-only on
the same seeded storm, the pre-hedge must land >= 1 controller tick
before the reactive quarantine, the calm soak must show zero forecast
actuations (FP <= 0.05), and a majority of storm pre-actuations must be
confirmed by a reactive breach (FP <= 0.5 — a rescue that works erases
some of its own confirming evidence; docs/FORECAST.md).

Regenerate baselines from a Release build:

    ./build/bench/ext2_fastpath --json BENCH_fastpath.json
    ./build/bench/ext4_tenants  --json BENCH_tenants.json
    ./build/bench/fig11_fct     --json BENCH_fct.json
    ./build/bench/ext5_forecast --json BENCH_forecast.json

--self-test exercises the gate's own failure branches (regression FAIL,
missing baseline row, new ungated row, SLO-breach FAIL, bench mismatch,
unreadable / corrupt / foreign input files) against synthetic tempfile
reports and exits 0 iff every branch behaves. CI runs it before trusting
the real comparison: a gate that cannot fail is worse than no gate.
"""
import argparse
import json
import sys

SUPPORTED = ("ext2_fastpath", "ext4_tenants", "fig11_fct",
             "ext5_forecast")
DEFAULT_BASELINE = {"ext2_fastpath": "BENCH_fastpath.json",
                    "ext4_tenants": "BENCH_tenants.json",
                    "fig11_fct": "BENCH_fct.json",
                    "ext5_forecast": "BENCH_forecast.json"}

# ext2_fastpath hard limit: the in-memory loopback wire must stay
# burst-native — within this factor of the synthetic packet source at
# burst 32, measured within one run so runner speed cancels out.
FASTPATH_MAX_LOOPBACK_GAP = 4.0

# fig11_fct hard limits (deterministic rows; no runner-noise excuse).
FCT_MAX_DUP_BYTE_FRACTION = 0.25
FCT_MIN_WEBSEARCH_SPEEDUP = 2.0

# ext5_forecast false-positive ceilings (docs/FORECAST.md): a calm wire
# must not trip the forecast at all; under a storm a majority of
# pre-actuations must be confirmed by the reactive judge.
FORECAST_MAX_CALM_FP = 0.05
FORECAST_MAX_STORM_FP = 0.5


def load_doc(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read ({e.strerror}); regenerate with "
                 f"./build/bench/<bench> --json {path}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON ({e})")
    if doc.get("bench") not in SUPPORTED:
        sys.exit(f"{path}: not a supported bench report "
                 f"(bench={doc.get('bench')!r}, want one of "
                 f"{', '.join(SUPPORTED)})")
    return doc


def fastpath_rows(doc, path):
    """{(backend, burst): ns_per_packet}. Rows predating the
    pluggable-backend sweep carry no "backend" field -> synthetic."""
    rows = {}
    for run in doc.get("runs", []):
        rep = run.get("report", {})
        if rep.get("schema") != "mdp.bench_fastpath.v1":
            continue
        if "burst" not in rep or "ns_per_packet" not in rep:
            sys.exit(f"{path}: mdp.bench_fastpath.v1 row missing "
                     f"burst/ns_per_packet: {sorted(rep)}")
        rows[(rep.get("backend", "synthetic"), rep["burst"])] = \
            rep["ns_per_packet"]
    if not rows:
        sys.exit(f"{path}: no mdp.bench_fastpath.v1 rows")
    return rows


def tenant_rows(doc, path):
    """{row_name: full row dict} from an ext4_tenants report."""
    rows = {}
    for run in doc.get("runs", []):
        rep = run.get("report", {})
        if rep.get("schema") != "mdp.bench_tenants.v1":
            continue
        if "row" not in rep or "value" not in rep:
            sys.exit(f"{path}: mdp.bench_tenants.v1 row missing "
                     f"row/value: {sorted(rep)}")
        rows[rep["row"]] = rep
    if not rows:
        sys.exit(f"{path}: no mdp.bench_tenants.v1 rows")
    return rows


def fct_rows(doc, path):
    """{(workload, mode): full row dict} from a fig11_fct report."""
    rows = {}
    for run in doc.get("runs", []):
        rep = run.get("report", {})
        if rep.get("schema") != "mdp.bench_fct.v1":
            continue
        for field in ("workload", "mode", "short_p99_fct_ns",
                      "duplicate_byte_fraction"):
            if field not in rep:
                sys.exit(f"{path}: mdp.bench_fct.v1 row missing "
                         f"{field}: {sorted(rep)}")
        rows[(rep["workload"], rep["mode"])] = rep
    if not rows:
        sys.exit(f"{path}: no mdp.bench_fct.v1 rows")
    return rows


def forecast_rows(doc, path):
    """{row_name: full row dict} from an ext5_forecast report."""
    rows = {}
    for run in doc.get("runs", []):
        rep = run.get("report", {})
        if rep.get("schema") != "mdp.bench_forecast.v1":
            continue
        if "row" not in rep or "value" not in rep:
            sys.exit(f"{path}: mdp.bench_forecast.v1 row missing "
                     f"row/value: {sorted(rep)}")
        rows[rep["row"]] = rep
    if not rows:
        sys.exit(f"{path}: no mdp.bench_forecast.v1 rows")
    return rows


def gate_ratios(fresh, base, value_of, key_label, max_regression):
    """The shared rule: every baselined row must be present and within
    max_regression of its baseline. Returns True when anything failed."""
    failed = False
    missing = sorted(set(base) - set(fresh))
    if missing:
        keys = ", ".join(key_label(k) for k in missing)
        print(f"FAIL: baseline rows missing from fresh run: {keys} "
              f"(did the sweep change? regenerate the baseline)")
        failed = True
    for key in sorted(set(fresh) - set(base)):
        print(f"note: {key_label(key)} is new in the fresh run "
              f"(no baseline row; not gated)")
    for key in sorted(base):
        if key not in fresh:
            continue
        fv, bv = value_of(fresh[key]), value_of(base[key])
        ratio = fv / bv if bv else float("inf") if fv else 1.0
        verdict = "ok"
        if ratio > max_regression:
            verdict = f"FAIL (> {max_regression}x regression)"
            failed = True
        print(f"{key_label(key):>34}: baseline {bv:10.1f}, "
              f"fresh {fv:10.1f}, ratio {ratio:.2f}x [{verdict}]")
    return failed


def check_fastpath(fresh, base, max_regression):
    failed = gate_ratios(fresh, base, lambda v: v,
                         lambda k: f"{k[0]}/burst{k[1]}", max_regression)

    if ("synthetic", 1) in fresh and ("synthetic", 32) in fresh:
        speedup = fresh[("synthetic", 1)] / fresh[("synthetic", 32)]
        tag = "ok" if speedup >= 1.3 else "WARNING (headline claim not " \
              "reproduced on this runner)"
        print(f"burst 32 vs 1 speedup: {speedup:.2f}x [{tag}]")

    # Observability budget: the telem-on twin of the synthetic burst-32
    # row is gated against its own baseline above (the standard 2x rule);
    # this line reports the on-vs-off ratio from the SAME fresh run, which
    # is immune to runner-speed drift between baseline and fresh.
    if ("synthetic", 32) in fresh and ("synthetic_telem", 32) in fresh:
        overhead = fresh[("synthetic_telem", 32)] / fresh[("synthetic", 32)]
        tag = "ok" if overhead <= 2.0 else \
            "WARNING (flight recorder is dominating the hot path)"
        print(f"telem on/off at burst 32: {overhead:.2f}x [{tag}]")

    # Loopback-gap gate: the slab wire's headline. Both rows come from
    # the SAME fresh run, so the ratio is immune to runner-speed drift
    # between baseline and fresh — it gates hard, and a sweep that
    # silently drops either backend fails instead of passing by omission.
    for key in (("synthetic", 32), ("loopback", 32)):
        if key not in fresh:
            print(f"FAIL: {key[0]}/burst{key[1]} row missing from the "
                  f"fresh run (the loopback gap cannot be checked)")
            failed = True
    if ("synthetic", 32) in fresh and ("loopback", 32) in fresh:
        gap = fresh[("loopback", 32)] / fresh[("synthetic", 32)]
        if gap > FASTPATH_MAX_LOOPBACK_GAP:
            print(f"FAIL: loopback/synthetic gap at burst 32 is "
                  f"{gap:.2f}x > {FASTPATH_MAX_LOOPBACK_GAP}x (the "
                  f"wire is no longer burst-native)")
            failed = True
        else:
            print(f"loopback/synthetic gap at burst 32: {gap:.2f}x "
                  f"(<= {FASTPATH_MAX_LOOPBACK_GAP}x) [ok]")
    return failed


def check_tenants(fresh, base, max_regression):
    failed = gate_ratios(fresh, base, lambda r: float(r["value"]),
                         lambda k: k, max_regression)

    # Hard contract checks on the deterministic (logical-clock) rows: the
    # victim's p99.9 must hold its SLO whenever admission is live. These
    # rows cannot be excused by runner noise — they replay a seeded rig.
    for name in ("victim_p999_storm_off", "victim_p999_storm_on_admission"):
        row = fresh.get(name)
        if not row or "slo_target_ns" not in row:
            continue
        value, slo = float(row["value"]), float(row["slo_target_ns"])
        if value > slo:
            print(f"FAIL: {name} = {value:.0f} logical ns breaches the "
                  f"victim SLO target {slo:.0f} (tenancy contract broken)")
            failed = True
        else:
            print(f"{name}: {value:.0f} <= SLO {slo:.0f} logical ns [ok]")

    on = fresh.get("victim_p999_storm_on_admission")
    off = fresh.get("victim_p999_storm_on_no_admission")
    if on and off and float(on["value"]) > 0:
        contagion = float(off["value"]) / float(on["value"])
        tag = "ok" if contagion >= 2.0 else \
            "WARNING (storm too weak to demonstrate contagion)"
        print(f"contagion factor (no admission / admission): "
              f"{contagion:.1f}x [{tag}]")
    return failed


def check_fct(fresh, base, max_regression):
    failed = gate_ratios(fresh, base,
                         lambda r: float(r["short_p99_fct_ns"]),
                         lambda k: f"{k[0]}/{k[1]}", max_regression)

    # Hard checks. fig11 runs on the event queue's logical clock, so
    # these replay bit-identically on any machine — a breach is a real
    # behavior change, never runner noise.
    for key in sorted(fresh):
        dup = float(fresh[key]["duplicate_byte_fraction"])
        if dup > FCT_MAX_DUP_BYTE_FRACTION:
            print(f"FAIL: {key[0]}/{key[1]} duplicate_byte_fraction "
                  f"{dup:.3f} > {FCT_MAX_DUP_BYTE_FRACTION} "
                  f"(replication degenerated into flooding)")
            failed = True
        else:
            print(f"{key[0]}/{key[1]}: duplicate_byte_fraction {dup:.3f} "
                  f"<= {FCT_MAX_DUP_BYTE_FRACTION} [ok]")

    # Headline claim: flow-granularity replication (or the combined
    # lever) cuts websearch short-flow p99 FCT by >= 2x vs single-path.
    single = fresh.get(("websearch", "single_path"))
    repl = [fresh[k] for k in (("websearch", "flow_replica"),
                               ("websearch", "combined")) if k in fresh]
    if single and repl:
        best = min(float(r["short_p99_fct_ns"]) for r in repl)
        speedup = float(single["short_p99_fct_ns"]) / best if best \
            else float("inf")
        if speedup < FCT_MIN_WEBSEARCH_SPEEDUP:
            print(f"FAIL: websearch short-flow p99 speedup {speedup:.2f}x "
                  f"< {FCT_MIN_WEBSEARCH_SPEEDUP}x (flow replication no "
                  f"longer beats single-path)")
            failed = True
        else:
            print(f"websearch short-flow p99 speedup (best replica mode "
                  f"vs single_path): {speedup:.2f}x [ok]")
    elif single:
        print("FAIL: websearch flow_replica/combined rows missing "
              "(cannot check the headline speedup)")
        failed = True
    return failed


def check_forecast(fresh, base, max_regression):
    failed = gate_ratios(fresh, base, lambda r: float(r["value"]),
                         lambda k: k, max_regression)

    def val(name):
        row = fresh.get(name)
        return float(row["value"]) if row else None

    # Hard A/B wins. Every ext5 row replays a seeded logical-clock rig,
    # so the predictive plane must STRICTLY beat reactive-only on both
    # client-visible currencies — a tie means the forecast's rescue
    # stopped working, never runner noise.
    for pred, react, what in (
            ("breach_windows_predictive", "breach_windows_reactive",
             "client breach windows"),
            ("onset_p999_predictive", "onset_p999_reactive",
             "storm-onset p99.9")):
        p, r = val(pred), val(react)
        if p is None or r is None:
            print(f"FAIL: {pred}/{react} rows missing "
                  f"(cannot check the A/B {what} win)")
            failed = True
        elif p >= r:
            print(f"FAIL: {pred} = {p:.0f} >= {react} = {r:.0f} "
                  f"(forecast no longer wins the {what} A/B)")
            failed = True
        else:
            print(f"{what}: predictive {p:.0f} < reactive {r:.0f} [ok]")

    lead = val("prehedge_lead_ticks")
    if lead is None or lead < 1:
        print(f"FAIL: prehedge_lead_ticks = {lead} (the pre-hedge must "
              f"land at least one controller tick before the reactive "
              f"quarantine)")
        failed = True
    else:
        print(f"prehedge lead: {lead:.0f} ticks before reactive [ok]")

    # False-positive contract (docs/FORECAST.md): calm wire -> no
    # actuation at all; storm -> a majority of pre-actuations confirmed
    # by a reactive breach (a rescue that works erases some of its own
    # confirming evidence, hence 50% there, not 5%).
    for name, ceiling in (("false_positive_fraction_calm",
                           FORECAST_MAX_CALM_FP),
                          ("false_positive_fraction_storm",
                           FORECAST_MAX_STORM_FP)):
        fp = val(name)
        if fp is None:
            print(f"FAIL: {name} row missing")
            failed = True
        elif fp > ceiling:
            print(f"FAIL: {name} {fp:.3f} > {ceiling} "
                  f"(forecast is actuating on noise)")
            failed = True
        else:
            print(f"{name}: {fp:.3f} <= {ceiling} [ok]")

    calm = val("calm_forecast_actuations")
    if calm is None or calm != 0:
        print(f"FAIL: calm_forecast_actuations = {calm} (a clean wire "
              f"must never trip the forecast)")
        failed = True
    else:
        print("calm_forecast_actuations: 0 [ok]")
    return failed


def self_test():
    """Drive the gate against synthetic reports covering every verdict
    branch. Returns 0 when all checks pass, 1 otherwise."""
    import contextlib
    import io
    import os
    import tempfile

    def fp_report(rows):
        return {"bench": "ext2_fastpath",
                "runs": [{"report": {"schema": "mdp.bench_fastpath.v1",
                                     "backend": b, "burst": n,
                                     "ns_per_packet": v}}
                         for (b, n), v in rows.items()]}

    def tn_report(rows):
        return {"bench": "ext4_tenants",
                "runs": [{"report": {"schema": "mdp.bench_tenants.v1",
                                     **row}}
                         for row in rows.values()]}

    def fct_report(rows):
        return {"bench": "fig11_fct",
                "runs": [{"report": {"schema": "mdp.bench_fct.v1",
                                     "workload": w, "mode": m,
                                     "wall_clock": False, **row}}
                         for (w, m), row in rows.items()]}

    def fc_report(rows):
        return {"bench": "ext5_forecast",
                "runs": [{"report": {"schema": "mdp.bench_forecast.v1",
                                     "wall_clock": False, **row}}
                         for row in rows.values()]}

    def run_gate(argv):
        """Run main() in-process; return (exit_code, captured_output)."""
        out = io.StringIO()
        code = 0
        with contextlib.redirect_stdout(out):
            try:
                main(argv)
            except SystemExit as e:
                if isinstance(e.code, str):   # sys.exit("message")
                    print(e.code)
                    code = 1
                else:
                    code = e.code or 0
        return code, out.getvalue()

    failures = []

    def check(name, cond, output):
        if not cond:
            failures.append(name)
            print(f"self-test FAIL: {name}\n--- gate output ---\n{output}")

    base_rows = {("synthetic", 1): 100.0, ("synthetic", 32): 50.0,
                 ("synthetic_telem", 32): 55.0, ("loopback", 32): 150.0}
    tn_base = {
        "flowtable_insert_1m": {"row": "flowtable_insert_1m",
                                "value": 100.0, "wall_clock": True},
        "victim_p999_storm_on_admission": {
            "row": "victim_p999_storm_on_admission", "value": 2000,
            "slo_target_ns": 50000, "wall_clock": False},
        "victim_p999_storm_on_no_admission": {
            "row": "victim_p999_storm_on_no_admission", "value": 4000000,
            "slo_target_ns": 50000, "wall_clock": False},
    }
    with tempfile.TemporaryDirectory() as d:
        def write(name, obj, raw=None):
            path = os.path.join(d, name)
            with open(path, "w") as f:
                if raw is not None:
                    f.write(raw)
                else:
                    json.dump(obj, f)
            return path

        base = write("base.json", fp_report(base_rows))
        tbase = write("tbase.json", tn_report(tn_base))

        # Clean pass: identical rows gate green, and the telem on/off
        # twin rows produce the observability-budget line.
        code, out = run_gate([write("same.json", fp_report(base_rows)),
                              base])
        check("identical rows pass", code == 0 and "FAIL" not in out, out)
        check("telem on/off ratio reported",
              "telem on/off at burst 32: 1.10x [ok]" in out, out)
        check("loopback gap reported",
              "loopback/synthetic gap at burst 32: 3.00x" in out, out)

        # Regression: a 3x slower row must fail a 2x gate.
        slow = {**base_rows, ("synthetic", 32): 150.0}
        code, out = run_gate([write("slow.json", fp_report(slow)), base])
        check("3x regression fails",
              code == 1 and "FAIL (> 2.0x regression)" in out, out)

        # Missing row: the fresh sweep silently dropping a baselined
        # configuration must fail, not pass by omission.
        only1 = {("synthetic", 1): 100.0}
        code, out = run_gate([write("narrow.json", fp_report(only1)), base])
        check("missing baseline row fails",
              code == 1 and "baseline rows missing" in out, out)

        # New row: an extra fresh configuration is noted but not gated.
        wide = {**base_rows, ("loopback", 64): 80.0}
        code, out = run_gate([write("wide.json", fp_report(wide)), base])
        check("new row noted, not gated",
              code == 0 and "not gated" in out, out)

        # Loopback gap past the ceiling: a hard FAIL even though every
        # row holds its own baseline ratio (same rows on both sides).
        gappy = {**base_rows, ("loopback", 32): 250.0}
        gap_base = write("gapbase.json", fp_report(gappy))
        code, out = run_gate([write("gappy.json", fp_report(gappy)),
                              gap_base])
        check("loopback gap fails",
              code == 1 and "no longer burst-native" in out, out)

        # A sweep that silently drops the loopback backend must fail,
        # not pass by omission (baseline equally thin, so the generic
        # missing-row rule alone would stay green).
        noloop = {k: v for k, v in base_rows.items() if k[0] != "loopback"}
        nl_base = write("noloopbase.json", fp_report(noloop))
        code, out = run_gate([write("noloop.json", fp_report(noloop)),
                              nl_base])
        check("missing loopback row fails",
              code == 1 and "loopback gap cannot be checked" in out, out)

        # Unreadable file.
        code, out = run_gate([os.path.join(d, "absent.json"), base])
        check("unreadable file fails",
              code == 1 and "cannot read" in out, out)

        # Corrupt JSON.
        code, out = run_gate([write("corrupt.json", None, raw="{nope"),
                              base])
        check("corrupt JSON fails",
              code == 1 and "not valid JSON" in out, out)

        # A foreign report (valid JSON, unknown bench).
        code, out = run_gate(
            [write("foreign.json", {"bench": "other", "runs": []}), base])
        check("foreign report fails",
              code == 1 and "not a supported bench report" in out, out)

        # An ext2 report with no usable rows.
        code, out = run_gate(
            [write("empty.json", {"bench": "ext2_fastpath", "runs": []}),
             base])
        check("row-less report fails",
              code == 1 and "no mdp.bench_fastpath.v1 rows" in out, out)

        # --- ext4_tenants branches ---------------------------------------
        # Clean tenants pass: contract line + contagion factor reported.
        code, out = run_gate([write("tsame.json", tn_report(tn_base)),
                              tbase])
        check("tenant rows pass",
              code == 0 and "<= SLO 50000 logical ns [ok]" in out
              and "contagion factor" in out, out)

        # Tenant regression: flowtable row 3x slower fails.
        tslow = {**tn_base,
                 "flowtable_insert_1m": {"row": "flowtable_insert_1m",
                                         "value": 300.0,
                                         "wall_clock": True}}
        code, out = run_gate([write("tslow.json", tn_report(tslow)), tbase])
        check("tenant regression fails",
              code == 1 and "FAIL (> 2.0x regression)" in out, out)

        # SLO breach on the deterministic admission row: hard FAIL even
        # though the ratio rule alone would let a loud baseline pass it.
        tbreach = dict(tn_base)
        tbreach["victim_p999_storm_on_admission"] = {
            "row": "victim_p999_storm_on_admission", "value": 80000,
            "slo_target_ns": 50000, "wall_clock": False}
        loud_base = write("loudbase.json", tn_report(tbreach))
        code, out = run_gate([write("tbreach.json", tn_report(tbreach)),
                              loud_base])
        check("tenant SLO breach fails",
              code == 1 and "breaches the victim SLO target" in out, out)

        # Mismatched bench ids between fresh and baseline must fail.
        code, out = run_gate([write("tok.json", tn_report(tn_base)), base])
        check("bench mismatch fails",
              code == 1 and "bench mismatch" in out, out)

        # --- fig11_fct branches ------------------------------------------
        fct_base = {
            ("websearch", "single_path"):
                {"short_p99_fct_ns": 1000000.0,
                 "duplicate_byte_fraction": 0.0},
            ("websearch", "flow_replica"):
                {"short_p99_fct_ns": 100000.0,
                 "duplicate_byte_fraction": 0.05},
            ("websearch", "combined"):
                {"short_p99_fct_ns": 400000.0,
                 "duplicate_byte_fraction": 0.20},
        }
        fbase = write("fbase.json", fct_report(fct_base))

        # Clean pass: dup-byte lines + the headline speedup line.
        code, out = run_gate([write("fsame.json", fct_report(fct_base)),
                              fbase])
        check("fct rows pass",
              code == 0 and "speedup (best replica mode" in out
              and "10.00x [ok]" in out, out)

        # Duplicate-byte flood: a row past the ceiling is a hard FAIL
        # even when its p99 ratio is fine.
        fflood = {k: dict(v) for k, v in fct_base.items()}
        fflood[("websearch", "combined")]["duplicate_byte_fraction"] = 0.60
        code, out = run_gate([write("fflood.json", fct_report(fflood)),
                              fbase])
        check("fct duplicate-byte flood fails",
              code == 1 and "degenerated into flooding" in out, out)

        # Lost headline: replica modes regressing to < 2x vs single-path
        # must fail even against an equally-bad baseline.
        fslow = {k: dict(v) for k, v in fct_base.items()}
        fslow[("websearch", "flow_replica")]["short_p99_fct_ns"] = 900000.0
        fslow[("websearch", "combined")]["short_p99_fct_ns"] = 900000.0
        bad_base = write("fbadbase.json", fct_report(fslow))
        code, out = run_gate([write("fslow.json", fct_report(fslow)),
                              bad_base])
        check("fct lost speedup fails",
              code == 1 and "no longer beats single-path" in out, out)

        # Missing replica rows: the claim must be checkable at all.
        fonly = {("websearch", "single_path"):
                 fct_base[("websearch", "single_path")]}
        thin_base = write("fthinbase.json", fct_report(fonly))
        code, out = run_gate([write("fonly.json", fct_report(fonly)),
                              thin_base])
        check("fct missing replica rows fails",
              code == 1 and "cannot check the headline speedup" in out, out)

        # --- ext5_forecast branches --------------------------------------
        fc_base = {name: {"row": name, "value": v} for name, v in (
            ("breach_windows_reactive", 2),
            ("breach_windows_predictive", 0),
            ("onset_p999_reactive", 12000),
            ("onset_p999_predictive", 2000),
            ("prehedge_lead_ticks", 30),
            ("false_positive_fraction_storm", 0.33),
            ("false_positive_fraction_calm", 0.0),
            ("calm_forecast_actuations", 0))}
        fcbase = write("fcbase.json", fc_report(fc_base))

        # Clean pass: both A/B win lines, the lead line, FP lines.
        code, out = run_gate([write("fcsame.json", fc_report(fc_base)),
                              fcbase])
        check("forecast rows pass",
              code == 0
              and "client breach windows: predictive 0 < reactive 2" in out
              and "prehedge lead: 30 ticks" in out, out)

        # Lost A/B win: a predictive tie is a hard FAIL even against an
        # equally-bad baseline (the ratio rule alone would pass it).
        fclost = {k: dict(v) for k, v in fc_base.items()}
        fclost["breach_windows_predictive"]["value"] = 2
        lost_base = write("fclostbase.json", fc_report(fclost))
        code, out = run_gate([write("fclost.json", fc_report(fclost)),
                              lost_base])
        check("forecast lost A/B win fails",
              code == 1 and "no longer wins the client breach windows" in out,
              out)

        # Calm-soak FP past the ceiling: hard FAIL.
        fcnoise = {k: dict(v) for k, v in fc_base.items()}
        fcnoise["false_positive_fraction_calm"]["value"] = 0.2
        noise_base = write("fcnoisebase.json", fc_report(fcnoise))
        code, out = run_gate([write("fcnoise.json", fc_report(fcnoise)),
                              noise_base])
        check("forecast calm FP ceiling fails",
              code == 1 and "actuating on noise" in out, out)

        # Any calm-soak actuation at all: hard FAIL.
        fctrip = {k: dict(v) for k, v in fc_base.items()}
        fctrip["calm_forecast_actuations"]["value"] = 3
        trip_base = write("fctripbase.json", fc_report(fctrip))
        code, out = run_gate([write("fctrip.json", fc_report(fctrip)),
                              trip_base])
        check("forecast calm actuation fails",
              code == 1 and "must never trip the forecast" in out, out)

    total = 24
    passed = total - len(failures)
    print(f"self-test: {passed}/{total} checks passed")
    return 1 if failures else 0


def main(argv=None):
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", nargs="?",
                    help="just-generated bench --json file")
    ap.add_argument("baseline", nargs="?", default=None,
                    help="committed baseline (default: per-bench)")
    ap.add_argument("--max-regression", type=float, default=2.0)
    ap.add_argument("--self-test", action="store_true",
                    help="exercise the gate's own failure branches and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        sys.exit(self_test())
    if not args.fresh:
        ap.error("fresh report path required (or --self-test)")

    fresh_doc = load_doc(args.fresh)
    bench = fresh_doc["bench"]
    baseline_path = args.baseline or DEFAULT_BASELINE[bench]
    base_doc = load_doc(baseline_path)
    if base_doc["bench"] != bench:
        sys.exit(f"bench mismatch: fresh is {bench}, baseline "
                 f"{baseline_path} is {base_doc['bench']}")

    if bench == "ext2_fastpath":
        failed = check_fastpath(fastpath_rows(fresh_doc, args.fresh),
                                fastpath_rows(base_doc, baseline_path),
                                args.max_regression)
    elif bench == "fig11_fct":
        failed = check_fct(fct_rows(fresh_doc, args.fresh),
                           fct_rows(base_doc, baseline_path),
                           args.max_regression)
    elif bench == "ext5_forecast":
        failed = check_forecast(forecast_rows(fresh_doc, args.fresh),
                                forecast_rows(base_doc, baseline_path),
                                args.max_regression)
    else:
        failed = check_tenants(tenant_rows(fresh_doc, args.fresh),
                               tenant_rows(base_doc, baseline_path),
                               args.max_regression)

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
