#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh ext2_fastpath burst sweep against the
committed baseline (BENCH_fastpath.json).

Usage:
    check_perf.py <fresh.json> [<baseline.json>] [--max-regression 2.0]
    check_perf.py --self-test

Fails (exit 1) when any burst row's ns/packet regressed by more than
--max-regression (default 2x — deliberately generous: CI runners are
shared and noisy; this catches "someone made the hot path 5x slower",
not 10% drift).

The burst-32-vs-burst-1 speedup (the PR's headline claim, >= 1.3x) is
checked as a WARNING only: on an oversubscribed runner the burst-1 row
can be arbitrarily distorted by scheduling, so it does not gate merges.
Regenerate the baseline by running, from a Release build:

    ./build/bench/ext2_fastpath --json BENCH_fastpath.json

--self-test exercises the gate's own failure branches (regression FAIL,
missing baseline row, new ungated row, unreadable / corrupt / foreign
input files) against synthetic tempfile reports and exits 0 iff every
branch behaves. CI runs it before trusting the real comparison: a gate
that cannot fail is worse than no gate.
"""
import argparse
import json
import sys


def load_rows(path):
    """Return {(backend, burst): ns_per_packet} from an ext2_fastpath
    --json file. Rows predating the pluggable-backend sweep carry no
    "backend" field and are treated as synthetic."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read ({e.strerror}); regenerate with "
                 f"./build/bench/ext2_fastpath --json {path}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON ({e})")
    if doc.get("bench") != "ext2_fastpath":
        sys.exit(f"{path}: not an ext2_fastpath report")
    rows = {}
    for run in doc.get("runs", []):
        rep = run.get("report", {})
        if rep.get("schema") != "mdp.bench_fastpath.v1":
            continue
        if "burst" not in rep or "ns_per_packet" not in rep:
            sys.exit(f"{path}: mdp.bench_fastpath.v1 row missing "
                     f"burst/ns_per_packet: {sorted(rep)}")
        rows[(rep.get("backend", "synthetic"), rep["burst"])] = \
            rep["ns_per_packet"]
    if not rows:
        sys.exit(f"{path}: no mdp.bench_fastpath.v1 rows")
    return rows


def self_test():
    """Drive the gate against synthetic reports covering every verdict
    branch. Returns 0 when all checks pass, 1 otherwise."""
    import contextlib
    import io
    import os
    import tempfile

    def report(rows):
        return {"bench": "ext2_fastpath",
                "runs": [{"report": {"schema": "mdp.bench_fastpath.v1",
                                     "backend": b, "burst": n,
                                     "ns_per_packet": v}}
                         for (b, n), v in rows.items()]}

    def run_gate(argv):
        """Run main() in-process; return (exit_code, captured_output)."""
        out = io.StringIO()
        code = 0
        with contextlib.redirect_stdout(out):
            try:
                main(argv)
            except SystemExit as e:
                if isinstance(e.code, str):   # sys.exit("message")
                    print(e.code)
                    code = 1
                else:
                    code = e.code or 0
        return code, out.getvalue()

    failures = []

    def check(name, cond, output):
        if not cond:
            failures.append(name)
            print(f"self-test FAIL: {name}\n--- gate output ---\n{output}")

    base_rows = {("synthetic", 1): 100.0, ("synthetic", 32): 50.0,
                 ("synthetic_telem", 32): 55.0}
    with tempfile.TemporaryDirectory() as d:
        def write(name, obj, raw=None):
            path = os.path.join(d, name)
            with open(path, "w") as f:
                if raw is not None:
                    f.write(raw)
                else:
                    json.dump(obj, f)
            return path

        base = write("base.json", report(base_rows))

        # Clean pass: identical rows gate green, and the telem on/off
        # twin rows produce the observability-budget line.
        code, out = run_gate([write("same.json", report(base_rows)), base])
        check("identical rows pass", code == 0 and "FAIL" not in out, out)
        check("telem on/off ratio reported",
              "telem on/off at burst 32: 1.10x [ok]" in out, out)

        # Regression: a 3x slower row must fail a 2x gate.
        slow = {**base_rows, ("synthetic", 32): 150.0}
        code, out = run_gate([write("slow.json", report(slow)), base])
        check("3x regression fails",
              code == 1 and "FAIL (> 2.0x regression)" in out, out)

        # Missing row: the fresh sweep silently dropping a baselined
        # configuration must fail, not pass by omission.
        only1 = {("synthetic", 1): 100.0}
        code, out = run_gate([write("narrow.json", report(only1)), base])
        check("missing baseline row fails",
              code == 1 and "baseline rows missing" in out, out)

        # New row: an extra fresh configuration is noted but not gated.
        wide = {**base_rows, ("loopback", 32): 80.0}
        code, out = run_gate([write("wide.json", report(wide)), base])
        check("new row noted, not gated",
              code == 0 and "not gated" in out, out)

        # Unreadable file.
        code, out = run_gate([os.path.join(d, "absent.json"), base])
        check("unreadable file fails",
              code == 1 and "cannot read" in out, out)

        # Corrupt JSON.
        code, out = run_gate([write("corrupt.json", None, raw="{nope"), base])
        check("corrupt JSON fails",
              code == 1 and "not valid JSON" in out, out)

        # A foreign report (valid JSON, wrong bench).
        code, out = run_gate(
            [write("foreign.json", {"bench": "other", "runs": []}), base])
        check("foreign report fails",
              code == 1 and "not an ext2_fastpath report" in out, out)

        # An ext2 report with no usable rows.
        code, out = run_gate(
            [write("empty.json", {"bench": "ext2_fastpath", "runs": []}),
             base])
        check("row-less report fails",
              code == 1 and "no mdp.bench_fastpath.v1 rows" in out, out)

    total = 9
    passed = total - len(failures)
    print(f"self-test: {passed}/{total} checks passed")
    return 1 if failures else 0


def main(argv=None):
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", nargs="?",
                    help="just-generated ext2_fastpath --json file")
    ap.add_argument("baseline", nargs="?", default="BENCH_fastpath.json")
    ap.add_argument("--max-regression", type=float, default=2.0)
    ap.add_argument("--self-test", action="store_true",
                    help="exercise the gate's own failure branches and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        sys.exit(self_test())
    if not args.fresh:
        ap.error("fresh report path required (or --self-test)")

    fresh = load_rows(args.fresh)
    base = load_rows(args.baseline)

    failed = False
    missing = sorted(set(base) - set(fresh))
    if missing:
        keys = ", ".join(f"{b}/burst{n}" for b, n in missing)
        print(f"FAIL: baseline rows missing from fresh run: {keys} "
              f"(did the sweep change? regenerate the baseline)")
        failed = True
    for backend, burst in sorted(set(fresh) - set(base)):
        print(f"note: {backend} burst {burst} is new in the fresh run "
              f"(no baseline row; not gated)")
    for key in sorted(base):
        backend, burst = key
        if key not in fresh:
            continue
        ratio = fresh[key] / base[key]
        verdict = "ok"
        if ratio > args.max_regression:
            verdict = f"FAIL (> {args.max_regression}x regression)"
            failed = True
        print(f"{backend:>9} burst {burst:>4}: "
              f"baseline {base[key]:8.1f} ns/pkt, "
              f"fresh {fresh[key]:8.1f} ns/pkt, ratio {ratio:.2f}x "
              f"[{verdict}]")

    if ("synthetic", 1) in fresh and ("synthetic", 32) in fresh:
        speedup = fresh[("synthetic", 1)] / fresh[("synthetic", 32)]
        tag = "ok" if speedup >= 1.3 else "WARNING (headline claim not " \
              "reproduced on this runner)"
        print(f"burst 32 vs 1 speedup: {speedup:.2f}x [{tag}]")

    # Observability budget: the telem-on twin of the synthetic burst-32
    # row is gated against its own baseline above (the standard 2x rule);
    # this line reports the on-vs-off ratio from the SAME fresh run, which
    # is immune to runner-speed drift between baseline and fresh.
    if ("synthetic", 32) in fresh and ("synthetic_telem", 32) in fresh:
        overhead = fresh[("synthetic_telem", 32)] / fresh[("synthetic", 32)]
        tag = "ok" if overhead <= 2.0 else \
            "WARNING (flight recorder is dominating the hot path)"
        print(f"telem on/off at burst 32: {overhead:.2f}x [{tag}]")

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
