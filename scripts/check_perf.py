#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh ext2_fastpath burst sweep against the
committed baseline (BENCH_fastpath.json).

Usage:
    check_perf.py <fresh.json> [<baseline.json>] [--max-regression 2.0]

Fails (exit 1) when any burst row's ns/packet regressed by more than
--max-regression (default 2x — deliberately generous: CI runners are
shared and noisy; this catches "someone made the hot path 5x slower",
not 10% drift).

The burst-32-vs-burst-1 speedup (the PR's headline claim, >= 1.3x) is
checked as a WARNING only: on an oversubscribed runner the burst-1 row
can be arbitrarily distorted by scheduling, so it does not gate merges.
Regenerate the baseline by running, from a Release build:

    ./build/bench/ext2_fastpath --json BENCH_fastpath.json
"""
import argparse
import json
import sys


def load_rows(path):
    """Return {(backend, burst): ns_per_packet} from an ext2_fastpath
    --json file. Rows predating the pluggable-backend sweep carry no
    "backend" field and are treated as synthetic."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read ({e.strerror}); regenerate with "
                 f"./build/bench/ext2_fastpath --json {path}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON ({e})")
    if doc.get("bench") != "ext2_fastpath":
        sys.exit(f"{path}: not an ext2_fastpath report")
    rows = {}
    for run in doc.get("runs", []):
        rep = run.get("report", {})
        if rep.get("schema") != "mdp.bench_fastpath.v1":
            continue
        if "burst" not in rep or "ns_per_packet" not in rep:
            sys.exit(f"{path}: mdp.bench_fastpath.v1 row missing "
                     f"burst/ns_per_packet: {sorted(rep)}")
        rows[(rep.get("backend", "synthetic"), rep["burst"])] = \
            rep["ns_per_packet"]
    if not rows:
        sys.exit(f"{path}: no mdp.bench_fastpath.v1 rows")
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", help="just-generated ext2_fastpath --json file")
    ap.add_argument("baseline", nargs="?", default="BENCH_fastpath.json")
    ap.add_argument("--max-regression", type=float, default=2.0)
    args = ap.parse_args()

    fresh = load_rows(args.fresh)
    base = load_rows(args.baseline)

    failed = False
    missing = sorted(set(base) - set(fresh))
    if missing:
        keys = ", ".join(f"{b}/burst{n}" for b, n in missing)
        print(f"FAIL: baseline rows missing from fresh run: {keys} "
              f"(did the sweep change? regenerate the baseline)")
        failed = True
    for backend, burst in sorted(set(fresh) - set(base)):
        print(f"note: {backend} burst {burst} is new in the fresh run "
              f"(no baseline row; not gated)")
    for key in sorted(base):
        backend, burst = key
        if key not in fresh:
            continue
        ratio = fresh[key] / base[key]
        verdict = "ok"
        if ratio > args.max_regression:
            verdict = f"FAIL (> {args.max_regression}x regression)"
            failed = True
        print(f"{backend:>9} burst {burst:>4}: "
              f"baseline {base[key]:8.1f} ns/pkt, "
              f"fresh {fresh[key]:8.1f} ns/pkt, ratio {ratio:.2f}x "
              f"[{verdict}]")

    if ("synthetic", 1) in fresh and ("synthetic", 32) in fresh:
        speedup = fresh[("synthetic", 1)] / fresh[("synthetic", 32)]
        tag = "ok" if speedup >= 1.3 else "WARNING (headline claim not " \
              "reproduced on this runner)"
        print(f"burst 32 vs 1 speedup: {speedup:.2f}x [{tag}]")

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
