#!/usr/bin/env python3
"""Render mdp telemetry as a timeline, offline, from the JSON artifacts.

Accepts any of:
  - an mdp.run_report.v2 document (renders its "telem" section, with the
    "ctrl" decision log overlaid on the tick where each decision fired),
  - a bare mdp.telem.v1 time series (as embedded in run reports or
    returned by SnapshotExporter::to_json),
  - an mdp.flight_recorder.v1 dump (the event timeline a chaos-soak
    failure or quarantine auto-dump attaches),
  - a bench sink document ({"bench": ..., "runs": [...]}): every run
    whose report carries a "telem" section is rendered (--run NAME
    narrows to one).

Usage:
    report_timeline.py FILE [--csv] [--run NAME] [--max-rows N]
    report_timeline.py FILE --tenant {all|ID} [--csv]
    report_timeline.py FILE --forecast [--csv]
    report_timeline.py --self-test

ASCII mode (default) prints one row per controller tick: per-path p99.9
with a bar scaled to the worst window in the series, plus the decisions
that fired since the previous tick. Rows are strided down to --max-rows,
but a tick whose interval carried a decision is always kept. --csv emits
the full series in long form (one row per tick x path), fit for plotting.

--tenant switches to the per-tenant view (docs/TENANCY.md): one column
group per tenant showing admission state and p99.9 per tick, with
tenant_throttle/tenant_shed/... decisions overlaid on the tick where they
fired. '--tenant all' renders every tenant in the series; '--tenant 1'
narrows to one. With --csv the long form is one row per tick x tenant
carrying the full TenantTickStats record.

--forecast switches to the predictive view (docs/FORECAST.md): for every
path whose telemetry carries the forecast sub-object, one column group of
forecast-vs-actual p99.9 per tick plus the estimator's confidence, with
only the forecast_* decisions overlaid — the side-by-side trajectories
show how far ahead of the actual tail the forecast ran and where it
crossed into actuation. With --csv the long form is one row per tick x
forecast-bearing path carrying the full forecast record.

--self-test drives every accepted input shape plus the failure branches
(unreadable file, corrupt JSON, unrecognized schema) against synthetic
documents and exits 0 iff all checks behave. CI runs it next to
check_perf.py --self-test.
"""
import argparse
import json
import sys

BAR_WIDTH = 20


def fmt_us(ns):
    return f"{ns / 1000:.1f}us"


def load_doc(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read ({e.strerror})")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON ({e})")


def decisions_from_ctrl(ctrl):
    """[(now_ns, label)] in log order from a run report's ctrl section."""
    marks = []
    for d in ctrl.get("decisions", []):
        label = d.get("reason", "?")
        if "path" in d:
            label += f"@{d['path']}"
        elif "tenant" in d:
            label += f"@t{d['tenant']}"
        marks.append((d.get("now_ns", 0), label))
    return marks


def render_telem_ascii(telem, marks, max_rows, out):
    ticks = telem.get("ticks", [])
    if not ticks:
        print("telem series is empty", file=out)
        return
    paths = sorted({p["path"] for t in ticks for p in t.get("paths", [])})
    peak = max((p.get("p999_ns", 0) for t in ticks
                for p in t.get("paths", [])), default=0)
    print(f"telem series: {len(ticks)} ticks retained "
          f"({telem.get('ticks_recorded', len(ticks))} recorded, "
          f"{telem.get('ticks_evicted', 0)} evicted), "
          f"paths {paths}, peak p99.9 {fmt_us(peak)}", file=out)
    header = ["tick", "t(ms)"]
    header += [f"p99.9 path{p}" for p in paths]
    header += ["worst", "decisions"]
    print("  ".join(header), file=out)

    stride = max(1, (len(ticks) + max_rows - 1) // max_rows)
    mi, pending = 0, []
    for i, row in enumerate(ticks):
        now = row.get("now_ns", 0)
        while mi < len(marks) and marks[mi][0] <= now:
            pending.append(marks[mi][1])
            mi += 1
        if i % stride != 0 and not pending and i != len(ticks) - 1:
            continue
        by_path = {p["path"]: p for p in row.get("paths", [])}
        cols = [str(row.get("tick", i)), f"{now / 1e6:.2f}"]
        worst = 0
        for p in paths:
            ps = by_path.get(p)
            if ps and ps.get("samples", 0) > 0:
                cols.append(fmt_us(ps.get("p999_ns", 0)))
                worst = max(worst, ps.get("p999_ns", 0))
            else:
                cols.append("-")
        bar = "#" * (round(BAR_WIDTH * worst / peak) if peak else 0)
        cols.append(f"|{bar:<{BAR_WIDTH}}|")
        cols.append(", ".join(pending))
        pending = []
        print("  ".join(cols), file=out)
    n_tenants = len({t.get("tenant") for row in ticks
                     for t in row.get("tenants", [])})
    if n_tenants:
        print(f"per-tenant series present ({n_tenants} tenants): "
              f"rerun with --tenant all", file=out)


def tenant_ids(telem, only):
    """Sorted tenant ids carried by the series, narrowed by --tenant."""
    return sorted({t.get("tenant") for row in telem.get("ticks", [])
                   for t in row.get("tenants", [])
                   if only == "all" or t.get("tenant") == only})


def render_tenants_ascii(telem, marks, max_rows, out, only):
    ticks = telem.get("ticks", [])
    ids = tenant_ids(telem, only)
    peak = max((t.get("p999_ns", 0) for row in ticks
                for t in row.get("tenants", [])
                if t.get("tenant") in ids), default=0)
    print(f"tenant series: {len(ticks)} ticks retained, "
          f"tenants {ids}, peak p99.9 {fmt_us(peak)}", file=out)
    header = ["tick", "t(ms)"]
    for t in ids:
        header += [f"t{t} state", f"t{t} p99.9", f"t{t} drop"]
    header += ["worst", "decisions"]
    print("  ".join(header), file=out)

    stride = max(1, (len(ticks) + max_rows - 1) // max_rows)
    mi, pending = 0, []
    for i, row in enumerate(ticks):
        now = row.get("now_ns", 0)
        while mi < len(marks) and marks[mi][0] <= now:
            pending.append(marks[mi][1])
            mi += 1
        if i % stride != 0 and not pending and i != len(ticks) - 1:
            continue
        by_id = {t.get("tenant"): t for t in row.get("tenants", [])}
        cols = [str(row.get("tick", i)), f"{now / 1e6:.2f}"]
        worst = 0
        for t in ids:
            ts = by_id.get(t)
            if ts is None:
                cols += ["-", "-", "-"]
                continue
            cols.append(ts.get("state", "?"))
            if ts.get("samples", 0) > 0:
                cols.append(fmt_us(ts.get("p999_ns", 0)))
                worst = max(worst, ts.get("p999_ns", 0))
            else:
                cols.append("-")
            cols.append(str(ts.get("dropped", 0)))
        bar = "#" * (round(BAR_WIDTH * worst / peak) if peak else 0)
        cols.append(f"|{bar:<{BAR_WIDTH}}|")
        cols.append(", ".join(pending))
        pending = []
        print("  ".join(cols), file=out)


def forecast_paths(telem):
    """Sorted path ids whose series carries the forecast sub-object."""
    return sorted({p["path"] for row in telem.get("ticks", [])
                   for p in row.get("paths", []) if "forecast" in p})


def render_forecast_ascii(telem, marks, max_rows, out):
    ticks = telem.get("ticks", [])
    ids = forecast_paths(telem)
    marks = [m for m in marks if m[1].startswith("forecast")]
    peak = max((max(p.get("p999_ns", 0),
                    p.get("forecast", {}).get("p999_ns", 0))
                for row in ticks for p in row.get("paths", [])
                if p["path"] in ids), default=0)
    print(f"forecast series: {len(ticks)} ticks retained, "
          f"forecast-bearing paths {ids}, peak p99.9 {fmt_us(peak)}",
          file=out)
    header = ["tick", "t(ms)"]
    for p in ids:
        header += [f"p{p} actual", f"p{p} fc p99.9", f"p{p} conf"]
    header += ["worst", "forecast decisions"]
    print("  ".join(header), file=out)

    stride = max(1, (len(ticks) + max_rows - 1) // max_rows)
    mi, pending = 0, []
    for i, row in enumerate(ticks):
        now = row.get("now_ns", 0)
        while mi < len(marks) and marks[mi][0] <= now:
            pending.append(marks[mi][1])
            mi += 1
        if i % stride != 0 and not pending and i != len(ticks) - 1:
            continue
        by_path = {p["path"]: p for p in row.get("paths", [])}
        cols = [str(row.get("tick", i)), f"{now / 1e6:.2f}"]
        worst = 0
        for p in ids:
            ps = by_path.get(p)
            fc = ps.get("forecast") if ps else None
            if ps and ps.get("samples", 0) > 0:
                cols.append(fmt_us(ps.get("p999_ns", 0)))
                worst = max(worst, ps.get("p999_ns", 0))
            else:
                cols.append("-")
            if fc:
                cols.append(fmt_us(fc.get("p999_ns", 0)))
                conf = fc.get("confidence", 0)
                star = "*" if fc.get("actionable") else ""
                cols.append(f"{conf:.2f}{star}")
                worst = max(worst, fc.get("p999_ns", 0))
            else:
                cols += ["-", "-"]
        bar = "#" * (round(BAR_WIDTH * worst / peak) if peak else 0)
        cols.append(f"|{bar:<{BAR_WIDTH}}|")
        cols.append(", ".join(pending))
        pending = []
        print("  ".join(cols), file=out)
    print("conf column: estimator confidence, '*' = actionable "
          "(cleared the cold-start gate)", file=out)


def render_forecast_csv(telem, marks, out):
    ids = set(forecast_paths(telem))
    marks = [m for m in marks if m[1].startswith("forecast")]
    print("tick,now_ns,path,samples,p999_ns,forecast_p99_ns,"
          "forecast_p999_ns,confidence,actionable,horizon_ticks,stage,"
          "decisions", file=out)
    mi = 0
    for i, row in enumerate(telem.get("ticks", [])):
        now = row.get("now_ns", 0)
        labels = []
        while mi < len(marks) and marks[mi][0] <= now:
            labels.append(marks[mi][1])
            mi += 1
        dec = ";".join(labels)
        for p in row.get("paths", []):
            if p["path"] not in ids:
                continue
            fc = p.get("forecast", {})
            print(",".join(str(v) for v in (
                row.get("tick", i), now, p["path"], p.get("samples", 0),
                p.get("p999_ns", 0), fc.get("p99_ns", 0),
                fc.get("p999_ns", 0), fc.get("confidence", 0),
                int(bool(fc.get("actionable"))),
                fc.get("horizon_ticks", 0), fc.get("stage", ""),
                dec)), file=out)
            dec = ""  # decisions annotate the tick once, on its first row


def render_telem_csv(telem, marks, out):
    print("tick,now_ns,path,samples,violations,p50_ns,p99_ns,p999_ns,"
          "max_ns,decisions", file=out)
    mi = 0
    for i, row in enumerate(telem.get("ticks", [])):
        now = row.get("now_ns", 0)
        labels = []
        while mi < len(marks) and marks[mi][0] <= now:
            labels.append(marks[mi][1])
            mi += 1
        dec = ";".join(labels)
        for p in row.get("paths", []):
            print(",".join(str(v) for v in (
                row.get("tick", i), now, p["path"], p.get("samples", 0),
                p.get("violations", 0), p.get("p50_ns", 0),
                p.get("p99_ns", 0), p.get("p999_ns", 0),
                p.get("max_ns", 0), dec)), file=out)
            dec = ""  # decisions annotate the tick once, on its first row


def render_tenants_csv(telem, marks, out, only):
    ids = set(tenant_ids(telem, only))
    print("tick,now_ns,tenant,state,arrivals,admitted,dropped,"
          "flow_arrivals,samples,violations,p50_ns,p99_ns,p999_ns,max_ns,"
          "decisions", file=out)
    mi = 0
    for i, row in enumerate(telem.get("ticks", [])):
        now = row.get("now_ns", 0)
        labels = []
        while mi < len(marks) and marks[mi][0] <= now:
            labels.append(marks[mi][1])
            mi += 1
        dec = ";".join(labels)
        for t in row.get("tenants", []):
            if t.get("tenant") not in ids:
                continue
            print(",".join(str(v) for v in (
                row.get("tick", i), now, t.get("tenant"),
                t.get("state", "?"), t.get("arrivals", 0),
                t.get("admitted", 0), t.get("dropped", 0),
                t.get("flow_arrivals", 0), t.get("samples", 0),
                t.get("violations", 0), t.get("p50_ns", 0),
                t.get("p99_ns", 0), t.get("p999_ns", 0),
                t.get("max_ns", 0), dec)), file=out)
            dec = ""  # decisions annotate the tick once, on its first row


def render_recorder_ascii(dump, max_rows, out):
    events = dump.get("events", [])
    print(f"flight recorder: {dump.get('emitted', 0)} emitted, "
          f"{dump.get('retained', len(events))} retained, "
          f"channels {dump.get('channels', [])}", file=out)
    if not events:
        print("no retained events", file=out)
        return
    shown = events[-max_rows:] if len(events) > max_rows else events
    if len(shown) < len(events):
        print(f"... {len(events) - len(shown)} older events elided "
              f"(--max-rows)", file=out)
    print("t(ms)  chan  type  path  n  data", file=out)
    for e in shown:
        path = "*" if e.get("path") == 0xffff else str(e.get("path", 0))
        print(f"{e.get('t', 0) / 1e6:.3f}  {e.get('chan', '?')}  "
              f"{e.get('type', '?')}  {path}  {e.get('n', 0)}  "
              f"{e.get('data', 0)}", file=out)


def render_recorder_csv(dump, out):
    print("t_ns,seq,chan,type,path,n,data", file=out)
    for e in dump.get("events", []):
        print(",".join(str(v) for v in (
            e.get("t", 0), e.get("seq", 0), e.get("chan", "?"),
            e.get("type", "?"), e.get("path", 0), e.get("n", 0),
            e.get("data", 0))), file=out)


def render_doc(doc, args, out, name=None):
    """Dispatch one document by schema. Returns True if it rendered."""
    schema = doc.get("schema", "")
    if name:
        print(f"== {name} ==", file=out)
    if schema == "mdp.flight_recorder.v1":
        if args.csv:
            render_recorder_csv(doc, out)
        else:
            render_recorder_ascii(doc, args.max_rows, out)
        return True
    if schema == "mdp.telem.v1":
        telem, marks = doc, []
    elif schema.startswith("mdp.run_report."):
        telem = doc.get("telem")
        if telem is None:
            print("run report has no telem section "
                  "(telem_enabled was off)", file=out)
            return False
        marks = decisions_from_ctrl(doc.get("ctrl", {}))
    else:
        return False
    if args.forecast:
        if not forecast_paths(telem):
            print("telem series carries no forecast records (the run had "
                  "forecast disabled, or its telemetry predates the "
                  "forecast plane)", file=out)
            sys.exit(1)
        if args.csv:
            render_forecast_csv(telem, marks, out)
        else:
            render_forecast_ascii(telem, marks, args.max_rows, out)
        return True
    if args.tenant is not None:
        if not tenant_ids(telem, args.tenant):
            print(f"telem series carries no rows for tenant "
                  f"'{args.tenant}' (run had no tenant tier, or the id "
                  f"is not in the series)", file=out)
            sys.exit(1)
        if args.csv:
            render_tenants_csv(telem, marks, out, args.tenant)
        else:
            render_tenants_ascii(telem, marks, args.max_rows, out,
                                 args.tenant)
        return True
    if args.csv:
        render_telem_csv(telem, marks, out)
    else:
        render_telem_ascii(telem, marks, args.max_rows, out)
    return True


def main(argv=None):
    ap = argparse.ArgumentParser()
    ap.add_argument("file", nargs="?",
                    help="run report / telem series / recorder dump / "
                         "bench sink JSON")
    ap.add_argument("--csv", action="store_true",
                    help="emit the full series as CSV instead of ASCII")
    ap.add_argument("--run", help="bench sink documents: render only the "
                                  "run with this name")
    ap.add_argument("--tenant",
                    help="render per-tenant trajectories instead of "
                         "per-path ones: 'all' or a tenant id")
    ap.add_argument("--forecast", action="store_true",
                    help="render forecast-vs-actual p99.9 trajectories "
                         "with the forecast_* decisions overlaid")
    ap.add_argument("--max-rows", type=int, default=24,
                    help="ASCII mode: stride the series down to ~N rows")
    ap.add_argument("--self-test", action="store_true",
                    help="exercise every input shape and failure branch")
    args = ap.parse_args(argv)

    if args.self_test:
        sys.exit(self_test())
    if not args.file:
        ap.error("input file required (or --self-test)")
    if args.tenant is not None and args.tenant != "all":
        try:
            args.tenant = int(args.tenant)
        except ValueError:
            ap.error("--tenant wants a tenant id or 'all'")

    doc = load_doc(args.file)
    if "bench" in doc and "runs" in doc:
        rendered = 0
        for run in doc["runs"]:
            rname = run.get("label") or run.get("name") or "?"
            if args.run and rname != args.run:
                continue
            rep = run.get("report", {})
            if isinstance(rep, dict) and \
                    render_doc(rep, args, sys.stdout, name=rname):
                rendered += 1
        if rendered == 0:
            sys.exit(f"{args.file}: no runs with a telem section"
                     + (f" matching --run {args.run}" if args.run else ""))
        return
    if not render_doc(doc, args, sys.stdout):
        if doc.get("schema", "").startswith("mdp.run_report."):
            sys.exit(1)  # render_doc already said the telem section is absent
        sys.exit(f"{args.file}: unrecognized schema "
                 f"'{doc.get('schema', '')}' (want mdp.run_report.v2, "
                 f"mdp.telem.v1, mdp.flight_recorder.v1, or a bench sink)")


def self_test():
    """Render synthetic documents of every accepted shape and hit the
    failure branches. Returns 0 when all checks pass."""
    import contextlib
    import io
    import os
    import tempfile

    telem = {
        "schema": "mdp.telem.v1", "capacity_ticks": 16,
        "ticks_recorded": 3, "ticks_evicted": 0,
        "ticks": [
            {"tick": t, "now_ns": t * 1_000_000,
             "paths": [{"path": p, "samples": 10, "violations": p,
                        "p50_ns": 1000, "p99_ns": 4000,
                        "p999_ns": 8000 * (t + 1), "max_ns": 20000,
                        "stage_sum_ns": {"service": 5000}}
                       for p in (0, 1)]}
            for t in range(3)],
    }
    ctrl = {"decisions": [{"now_ns": 1_000_000, "path": 1,
                           "reason": "slo_breach"}]}
    report = {"schema": "mdp.run_report.v2", "telem": telem, "ctrl": ctrl}
    dump = {"schema": "mdp.flight_recorder.v1", "emitted": 2, "retained": 2,
            "window_ns": 0, "channels": ["rig"],
            "events": [{"t": 1000, "seq": 0, "chan": "rig",
                        "type": "ingress_burst", "path": 0xffff,
                        "n": 32, "data": 1},
                       {"t": 2000, "seq": 1, "chan": "rig",
                        "type": "hedge_fire", "path": 1, "n": 1,
                        "data": 99}]}
    sink = {"bench": "ext3", "runs": [
        {"label": "ctrl-on", "report": report},
        {"name": "ctrl-off", "report": {"schema": "mdp.run_report.v2"}}]}

    # A tenant-tier run: two tenants, tenant 0 shed on the second tick.
    telem_t = json.loads(json.dumps(telem))
    for t, row in enumerate(telem_t["ticks"]):
        row["tenants"] = [
            {"tenant": n,
             "state": "SHED" if n == 0 and t >= 1 else "ADMITTED",
             "arrivals": 100, "admitted": 80, "dropped": 20 * n,
             "flow_arrivals": 5, "samples": 50, "violations": 0,
             "p50_ns": 1000, "p99_ns": 4000, "p999_ns": 6000 * (t + 1),
             "max_ns": 9000}
            for n in (0, 1)]
    ctrl_t = {"decisions": [{"now_ns": 1_000_000, "target": "tenant",
                             "tenant": 0, "reason": "tenant_shed"}]}
    report_t = {"schema": "mdp.run_report.v2", "telem": telem_t,
                "ctrl": ctrl_t}

    # A forecast-bearing run: path 1 carries the forecast sub-object
    # (path 0 deliberately does not — the view must tolerate a mix), with
    # a forecast_prehedge and an unrelated slo_breach in the decision log.
    telem_f = json.loads(json.dumps(telem))
    for t, row in enumerate(telem_f["ticks"]):
        for p in row["paths"]:
            if p["path"] == 1:
                p["forecast"] = {
                    "horizon_ticks": 1, "p99_ns": 5000,
                    "p999_ns": 9000 * (t + 2), "confidence": 0.8,
                    "actionable": True, "stage": "service"}
    ctrl_f = {"decisions": [
        {"now_ns": 1_000_000, "path": 1, "reason": "forecast_prehedge"},
        {"now_ns": 2_000_000, "path": 1, "reason": "slo_breach"}]}
    report_f = {"schema": "mdp.run_report.v2", "telem": telem_f,
                "ctrl": ctrl_f}

    def run(argv):
        out = io.StringIO()
        code = 0
        with contextlib.redirect_stdout(out):
            try:
                main(argv)
            except SystemExit as e:
                if isinstance(e.code, str):
                    print(e.code)
                    code = 1
                else:
                    code = e.code or 0
        return code, out.getvalue()

    failures = []

    def check(name, cond, output):
        if not cond:
            failures.append(name)
            print(f"self-test FAIL: {name}\n--- output ---\n{output}")

    with tempfile.TemporaryDirectory() as d:
        def write(name, obj, raw=None):
            path = os.path.join(d, name)
            with open(path, "w") as f:
                if raw is not None:
                    f.write(raw)
                else:
                    json.dump(obj, f)
            return path

        # Run report: trajectory + overlaid decision on its tick.
        code, out = run([write("report.json", report)])
        check("run report renders trajectory",
              code == 0 and "p99.9 path1" in out and "slo_breach@1" in out,
              out)

        # Bare telem series, ASCII and CSV.
        code, out = run([write("telem.json", telem)])
        check("bare telem renders", code == 0 and "3 ticks retained" in out,
              out)
        code, out = run([write("telem.json", telem), "--csv"])
        check("telem CSV has long-form rows",
              code == 0 and "tick,now_ns,path" in out
              and out.count("\n") == 1 + 3 * 2, out)

        # Recorder dump, ASCII and CSV; kAllPaths renders as '*'.
        code, out = run([write("dump.json", dump)])
        check("recorder dump renders",
              code == 0 and "ingress_burst" in out and "  *  32  " in out,
              out)
        code, out = run([write("dump.json", dump), "--csv"])
        check("recorder CSV row count",
              code == 0 and out.count("\n") == 1 + 2, out)

        # Bench sink: telem-bearing run renders, --run narrows, and a
        # sink with no matching telem run fails.
        code, out = run([write("sink.json", sink)])
        check("bench sink renders the telem run",
              code == 0 and "== ctrl-on ==" in out, out)
        code, out = run([write("sink.json", sink), "--run", "ctrl-off"])
        check("sink with only telem-less runs fails",
              code == 1 and "no runs with a telem section" in out, out)

        # Tenant view: trajectories, the decision overlay, the --tenant
        # narrowing, CSV long form, and the tenant-less failure branch.
        tpath = write("report_t.json", report_t)
        code, out = run([tpath, "--tenant", "all"])
        check("tenant view renders both trajectories with the shed overlay",
              code == 0 and "t0 state" in out and "t1 p99.9" in out
              and "SHED" in out and "tenant_shed@t0" in out, out)
        code, out = run([tpath, "--tenant", "1"])
        check("--tenant narrows to one tenant",
              code == 0 and "tenants [1]" in out and "t0 state" not in out,
              out)
        code, out = run([tpath, "--tenant", "all", "--csv"])
        check("tenant CSV has one row per tick x tenant",
              code == 0 and "tick,now_ns,tenant,state" in out
              and out.count("\n") == 1 + 3 * 2, out)
        code, out = run([write("report2.json", report), "--tenant", "all"])
        check("--tenant on a tenant-less series fails",
              code == 1 and "no rows for tenant" in out, out)
        code, out = run([tpath])
        check("default view hints at the tenant series",
              code == 0 and "per-tenant series present (2 tenants)" in out,
              out)

        # Forecast view: fc-vs-actual columns only for the forecast-
        # bearing path, forecast_* overlay kept, other decisions dropped.
        fpath = write("report_f.json", report_f)
        code, out = run([fpath, "--forecast"])
        check("forecast view renders fc-vs-actual with the overlay",
              code == 0 and "p1 fc p99.9" in out and "p0 fc" not in out
              and "forecast_prehedge@1" in out and "slo_breach" not in out
              and "0.80*" in out, out)
        code, out = run([fpath, "--forecast", "--csv"])
        check("forecast CSV has one row per tick x forecast path",
              code == 0 and "forecast_p999_ns" in out
              and out.count("\n") == 1 + 3, out)
        code, out = run([write("report3.json", report), "--forecast"])
        check("--forecast on a forecast-less series fails",
              code == 1 and "no forecast records" in out, out)

        # Failure branches.
        code, out = run([os.path.join(d, "absent.json")])
        check("unreadable file fails", code == 1 and "cannot read" in out,
              out)
        code, out = run([write("corrupt.json", None, raw="{nope")])
        check("corrupt JSON fails", code == 1 and "not valid JSON" in out,
              out)
        code, out = run([write("foreign.json", {"schema": "other.v9"})])
        check("unrecognized schema fails",
              code == 1 and "unrecognized schema" in out, out)
        code, out = run([write("notelem.json",
                               {"schema": "mdp.run_report.v2"})])
        check("telem-less run report fails with the no-telem message",
              code == 1 and "no telem section" in out
              and "unrecognized" not in out, out)

    total = 19
    passed = total - len(failures)
    print(f"self-test: {passed}/{total} checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    main()
