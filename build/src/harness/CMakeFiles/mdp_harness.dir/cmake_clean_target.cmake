file(REMOVE_RECURSE
  "libmdp_harness.a"
)
