file(REMOVE_RECURSE
  "CMakeFiles/mdp_harness.dir/experiment.cpp.o"
  "CMakeFiles/mdp_harness.dir/experiment.cpp.o.d"
  "libmdp_harness.a"
  "libmdp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
