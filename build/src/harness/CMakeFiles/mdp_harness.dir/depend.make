# Empty dependencies file for mdp_harness.
# This may be replaced when dependencies are built.
