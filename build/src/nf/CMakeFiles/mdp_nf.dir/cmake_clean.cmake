file(REMOVE_RECURSE
  "CMakeFiles/mdp_nf.dir/chain.cpp.o"
  "CMakeFiles/mdp_nf.dir/chain.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/conntrack.cpp.o"
  "CMakeFiles/mdp_nf.dir/conntrack.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/dpi.cpp.o"
  "CMakeFiles/mdp_nf.dir/dpi.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/firewall.cpp.o"
  "CMakeFiles/mdp_nf.dir/firewall.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/flow_cache.cpp.o"
  "CMakeFiles/mdp_nf.dir/flow_cache.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/flow_monitor.cpp.o"
  "CMakeFiles/mdp_nf.dir/flow_monitor.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/load_balancer.cpp.o"
  "CMakeFiles/mdp_nf.dir/load_balancer.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/lpm.cpp.o"
  "CMakeFiles/mdp_nf.dir/lpm.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/nat.cpp.o"
  "CMakeFiles/mdp_nf.dir/nat.cpp.o.d"
  "CMakeFiles/mdp_nf.dir/rate_limiter.cpp.o"
  "CMakeFiles/mdp_nf.dir/rate_limiter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
