# Empty compiler generated dependencies file for mdp_nf.
# This may be replaced when dependencies are built.
