
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/chain.cpp" "src/nf/CMakeFiles/mdp_nf.dir/chain.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/chain.cpp.o.d"
  "/root/repo/src/nf/conntrack.cpp" "src/nf/CMakeFiles/mdp_nf.dir/conntrack.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/conntrack.cpp.o.d"
  "/root/repo/src/nf/dpi.cpp" "src/nf/CMakeFiles/mdp_nf.dir/dpi.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/dpi.cpp.o.d"
  "/root/repo/src/nf/firewall.cpp" "src/nf/CMakeFiles/mdp_nf.dir/firewall.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/firewall.cpp.o.d"
  "/root/repo/src/nf/flow_cache.cpp" "src/nf/CMakeFiles/mdp_nf.dir/flow_cache.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/flow_cache.cpp.o.d"
  "/root/repo/src/nf/flow_monitor.cpp" "src/nf/CMakeFiles/mdp_nf.dir/flow_monitor.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/flow_monitor.cpp.o.d"
  "/root/repo/src/nf/load_balancer.cpp" "src/nf/CMakeFiles/mdp_nf.dir/load_balancer.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/load_balancer.cpp.o.d"
  "/root/repo/src/nf/lpm.cpp" "src/nf/CMakeFiles/mdp_nf.dir/lpm.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/lpm.cpp.o.d"
  "/root/repo/src/nf/nat.cpp" "src/nf/CMakeFiles/mdp_nf.dir/nat.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/nat.cpp.o.d"
  "/root/repo/src/nf/rate_limiter.cpp" "src/nf/CMakeFiles/mdp_nf.dir/rate_limiter.cpp.o" "gcc" "src/nf/CMakeFiles/mdp_nf.dir/rate_limiter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
