# Empty compiler generated dependencies file for mdp_core.
# This may be replaced when dependencies are built.
