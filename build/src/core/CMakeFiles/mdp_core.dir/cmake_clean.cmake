file(REMOVE_RECURSE
  "CMakeFiles/mdp_core.dir/dataplane.cpp.o"
  "CMakeFiles/mdp_core.dir/dataplane.cpp.o.d"
  "CMakeFiles/mdp_core.dir/health.cpp.o"
  "CMakeFiles/mdp_core.dir/health.cpp.o.d"
  "CMakeFiles/mdp_core.dir/reorder.cpp.o"
  "CMakeFiles/mdp_core.dir/reorder.cpp.o.d"
  "CMakeFiles/mdp_core.dir/scheduler.cpp.o"
  "CMakeFiles/mdp_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/mdp_core.dir/threaded_dataplane.cpp.o"
  "CMakeFiles/mdp_core.dir/threaded_dataplane.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
