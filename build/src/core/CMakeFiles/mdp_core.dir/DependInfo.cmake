
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataplane.cpp" "src/core/CMakeFiles/mdp_core.dir/dataplane.cpp.o" "gcc" "src/core/CMakeFiles/mdp_core.dir/dataplane.cpp.o.d"
  "/root/repo/src/core/health.cpp" "src/core/CMakeFiles/mdp_core.dir/health.cpp.o" "gcc" "src/core/CMakeFiles/mdp_core.dir/health.cpp.o.d"
  "/root/repo/src/core/reorder.cpp" "src/core/CMakeFiles/mdp_core.dir/reorder.cpp.o" "gcc" "src/core/CMakeFiles/mdp_core.dir/reorder.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/mdp_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/mdp_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/threaded_dataplane.cpp" "src/core/CMakeFiles/mdp_core.dir/threaded_dataplane.cpp.o" "gcc" "src/core/CMakeFiles/mdp_core.dir/threaded_dataplane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
