file(REMOVE_RECURSE
  "CMakeFiles/mdp_workload.dir/flow_size.cpp.o"
  "CMakeFiles/mdp_workload.dir/flow_size.cpp.o.d"
  "CMakeFiles/mdp_workload.dir/rpc_workload.cpp.o"
  "CMakeFiles/mdp_workload.dir/rpc_workload.cpp.o.d"
  "CMakeFiles/mdp_workload.dir/trace.cpp.o"
  "CMakeFiles/mdp_workload.dir/trace.cpp.o.d"
  "CMakeFiles/mdp_workload.dir/traffic_gen.cpp.o"
  "CMakeFiles/mdp_workload.dir/traffic_gen.cpp.o.d"
  "libmdp_workload.a"
  "libmdp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
