# Empty compiler generated dependencies file for mdp_workload.
# This may be replaced when dependencies are built.
