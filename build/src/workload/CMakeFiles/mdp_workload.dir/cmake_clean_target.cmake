file(REMOVE_RECURSE
  "libmdp_workload.a"
)
