
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flow_size.cpp" "src/workload/CMakeFiles/mdp_workload.dir/flow_size.cpp.o" "gcc" "src/workload/CMakeFiles/mdp_workload.dir/flow_size.cpp.o.d"
  "/root/repo/src/workload/rpc_workload.cpp" "src/workload/CMakeFiles/mdp_workload.dir/rpc_workload.cpp.o" "gcc" "src/workload/CMakeFiles/mdp_workload.dir/rpc_workload.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/mdp_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/mdp_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/traffic_gen.cpp" "src/workload/CMakeFiles/mdp_workload.dir/traffic_gen.cpp.o" "gcc" "src/workload/CMakeFiles/mdp_workload.dir/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mdp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mdp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
