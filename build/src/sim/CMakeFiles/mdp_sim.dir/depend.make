# Empty dependencies file for mdp_sim.
# This may be replaced when dependencies are built.
