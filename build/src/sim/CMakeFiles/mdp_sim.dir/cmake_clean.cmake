file(REMOVE_RECURSE
  "CMakeFiles/mdp_sim.dir/distributions.cpp.o"
  "CMakeFiles/mdp_sim.dir/distributions.cpp.o.d"
  "CMakeFiles/mdp_sim.dir/interference.cpp.o"
  "CMakeFiles/mdp_sim.dir/interference.cpp.o.d"
  "libmdp_sim.a"
  "libmdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
