
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/click/element.cpp" "src/click/CMakeFiles/mdp_click.dir/element.cpp.o" "gcc" "src/click/CMakeFiles/mdp_click.dir/element.cpp.o.d"
  "/root/repo/src/click/elements.cpp" "src/click/CMakeFiles/mdp_click.dir/elements.cpp.o" "gcc" "src/click/CMakeFiles/mdp_click.dir/elements.cpp.o.d"
  "/root/repo/src/click/elements_net.cpp" "src/click/CMakeFiles/mdp_click.dir/elements_net.cpp.o" "gcc" "src/click/CMakeFiles/mdp_click.dir/elements_net.cpp.o.d"
  "/root/repo/src/click/elements_sched.cpp" "src/click/CMakeFiles/mdp_click.dir/elements_sched.cpp.o" "gcc" "src/click/CMakeFiles/mdp_click.dir/elements_sched.cpp.o.d"
  "/root/repo/src/click/registry.cpp" "src/click/CMakeFiles/mdp_click.dir/registry.cpp.o" "gcc" "src/click/CMakeFiles/mdp_click.dir/registry.cpp.o.d"
  "/root/repo/src/click/router.cpp" "src/click/CMakeFiles/mdp_click.dir/router.cpp.o" "gcc" "src/click/CMakeFiles/mdp_click.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
