# Empty compiler generated dependencies file for mdp_click.
# This may be replaced when dependencies are built.
