file(REMOVE_RECURSE
  "CMakeFiles/mdp_click.dir/element.cpp.o"
  "CMakeFiles/mdp_click.dir/element.cpp.o.d"
  "CMakeFiles/mdp_click.dir/elements.cpp.o"
  "CMakeFiles/mdp_click.dir/elements.cpp.o.d"
  "CMakeFiles/mdp_click.dir/elements_net.cpp.o"
  "CMakeFiles/mdp_click.dir/elements_net.cpp.o.d"
  "CMakeFiles/mdp_click.dir/elements_sched.cpp.o"
  "CMakeFiles/mdp_click.dir/elements_sched.cpp.o.d"
  "CMakeFiles/mdp_click.dir/registry.cpp.o"
  "CMakeFiles/mdp_click.dir/registry.cpp.o.d"
  "CMakeFiles/mdp_click.dir/router.cpp.o"
  "CMakeFiles/mdp_click.dir/router.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
