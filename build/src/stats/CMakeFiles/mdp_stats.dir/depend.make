# Empty dependencies file for mdp_stats.
# This may be replaced when dependencies are built.
