file(REMOVE_RECURSE
  "libmdp_stats.a"
)
