file(REMOVE_RECURSE
  "CMakeFiles/mdp_stats.dir/histogram.cpp.o"
  "CMakeFiles/mdp_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/mdp_stats.dir/table.cpp.o"
  "CMakeFiles/mdp_stats.dir/table.cpp.o.d"
  "CMakeFiles/mdp_stats.dir/time_series.cpp.o"
  "CMakeFiles/mdp_stats.dir/time_series.cpp.o.d"
  "libmdp_stats.a"
  "libmdp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
