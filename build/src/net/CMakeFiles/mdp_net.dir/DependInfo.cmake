
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cpp" "src/net/CMakeFiles/mdp_net.dir/checksum.cpp.o" "gcc" "src/net/CMakeFiles/mdp_net.dir/checksum.cpp.o.d"
  "/root/repo/src/net/flow_key.cpp" "src/net/CMakeFiles/mdp_net.dir/flow_key.cpp.o" "gcc" "src/net/CMakeFiles/mdp_net.dir/flow_key.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/net/CMakeFiles/mdp_net.dir/headers.cpp.o" "gcc" "src/net/CMakeFiles/mdp_net.dir/headers.cpp.o.d"
  "/root/repo/src/net/packet_builder.cpp" "src/net/CMakeFiles/mdp_net.dir/packet_builder.cpp.o" "gcc" "src/net/CMakeFiles/mdp_net.dir/packet_builder.cpp.o.d"
  "/root/repo/src/net/packet_pool.cpp" "src/net/CMakeFiles/mdp_net.dir/packet_pool.cpp.o" "gcc" "src/net/CMakeFiles/mdp_net.dir/packet_pool.cpp.o.d"
  "/root/repo/src/net/vxlan.cpp" "src/net/CMakeFiles/mdp_net.dir/vxlan.cpp.o" "gcc" "src/net/CMakeFiles/mdp_net.dir/vxlan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
