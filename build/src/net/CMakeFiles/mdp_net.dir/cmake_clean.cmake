file(REMOVE_RECURSE
  "CMakeFiles/mdp_net.dir/checksum.cpp.o"
  "CMakeFiles/mdp_net.dir/checksum.cpp.o.d"
  "CMakeFiles/mdp_net.dir/flow_key.cpp.o"
  "CMakeFiles/mdp_net.dir/flow_key.cpp.o.d"
  "CMakeFiles/mdp_net.dir/headers.cpp.o"
  "CMakeFiles/mdp_net.dir/headers.cpp.o.d"
  "CMakeFiles/mdp_net.dir/packet_builder.cpp.o"
  "CMakeFiles/mdp_net.dir/packet_builder.cpp.o.d"
  "CMakeFiles/mdp_net.dir/packet_pool.cpp.o"
  "CMakeFiles/mdp_net.dir/packet_pool.cpp.o.d"
  "CMakeFiles/mdp_net.dir/vxlan.cpp.o"
  "CMakeFiles/mdp_net.dir/vxlan.cpp.o.d"
  "libmdp_net.a"
  "libmdp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
