# Empty compiler generated dependencies file for fig8_interference.
# This may be replaced when dependencies are built.
