file(REMOVE_RECURSE
  "CMakeFiles/fig8_interference.dir/fig8_interference.cpp.o"
  "CMakeFiles/fig8_interference.dir/fig8_interference.cpp.o.d"
  "fig8_interference"
  "fig8_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
