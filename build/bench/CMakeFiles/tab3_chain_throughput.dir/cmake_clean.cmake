file(REMOVE_RECURSE
  "CMakeFiles/tab3_chain_throughput.dir/tab3_chain_throughput.cpp.o"
  "CMakeFiles/tab3_chain_throughput.dir/tab3_chain_throughput.cpp.o.d"
  "tab3_chain_throughput"
  "tab3_chain_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_chain_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
