# Empty dependencies file for tab3_chain_throughput.
# This may be replaced when dependencies are built.
