file(REMOVE_RECURSE
  "CMakeFiles/fig10_reordering.dir/fig10_reordering.cpp.o"
  "CMakeFiles/fig10_reordering.dir/fig10_reordering.cpp.o.d"
  "fig10_reordering"
  "fig10_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
