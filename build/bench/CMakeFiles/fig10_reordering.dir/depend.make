# Empty dependencies file for fig10_reordering.
# This may be replaced when dependencies are built.
