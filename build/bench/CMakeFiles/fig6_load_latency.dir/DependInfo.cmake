
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_load_latency.cpp" "bench/CMakeFiles/fig6_load_latency.dir/fig6_load_latency.cpp.o" "gcc" "bench/CMakeFiles/fig6_load_latency.dir/fig6_load_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mdp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mdp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mdp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
