file(REMOVE_RECURSE
  "CMakeFiles/fig6_load_latency.dir/fig6_load_latency.cpp.o"
  "CMakeFiles/fig6_load_latency.dir/fig6_load_latency.cpp.o.d"
  "fig6_load_latency"
  "fig6_load_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_load_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
