file(REMOVE_RECURSE
  "CMakeFiles/fig9_redundancy_cost.dir/fig9_redundancy_cost.cpp.o"
  "CMakeFiles/fig9_redundancy_cost.dir/fig9_redundancy_cost.cpp.o.d"
  "fig9_redundancy_cost"
  "fig9_redundancy_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_redundancy_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
