# Empty compiler generated dependencies file for fig11_fct.
# This may be replaced when dependencies are built.
