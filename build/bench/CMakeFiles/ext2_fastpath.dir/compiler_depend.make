# Empty compiler generated dependencies file for ext2_fastpath.
# This may be replaced when dependencies are built.
