file(REMOVE_RECURSE
  "CMakeFiles/ext2_fastpath.dir/ext2_fastpath.cpp.o"
  "CMakeFiles/ext2_fastpath.dir/ext2_fastpath.cpp.o.d"
  "ext2_fastpath"
  "ext2_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext2_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
