# Empty dependencies file for tab2_policy_matrix.
# This may be replaced when dependencies are built.
