file(REMOVE_RECURSE
  "CMakeFiles/tab2_policy_matrix.dir/tab2_policy_matrix.cpp.o"
  "CMakeFiles/tab2_policy_matrix.dir/tab2_policy_matrix.cpp.o.d"
  "tab2_policy_matrix"
  "tab2_policy_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_policy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
