file(REMOVE_RECURSE
  "CMakeFiles/tab4_micro.dir/tab4_micro.cpp.o"
  "CMakeFiles/tab4_micro.dir/tab4_micro.cpp.o.d"
  "tab4_micro"
  "tab4_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
