# Empty compiler generated dependencies file for tab4_micro.
# This may be replaced when dependencies are built.
