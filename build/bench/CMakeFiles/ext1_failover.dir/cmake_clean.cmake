file(REMOVE_RECURSE
  "CMakeFiles/ext1_failover.dir/ext1_failover.cpp.o"
  "CMakeFiles/ext1_failover.dir/ext1_failover.cpp.o.d"
  "ext1_failover"
  "ext1_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
