# Empty dependencies file for ext1_failover.
# This may be replaced when dependencies are built.
