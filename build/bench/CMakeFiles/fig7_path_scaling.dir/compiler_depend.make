# Empty compiler generated dependencies file for fig7_path_scaling.
# This may be replaced when dependencies are built.
