file(REMOVE_RECURSE
  "CMakeFiles/test_nf_lpm.dir/test_nf_lpm.cpp.o"
  "CMakeFiles/test_nf_lpm.dir/test_nf_lpm.cpp.o.d"
  "test_nf_lpm"
  "test_nf_lpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
