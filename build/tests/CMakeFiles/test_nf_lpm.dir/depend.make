# Empty dependencies file for test_nf_lpm.
# This may be replaced when dependencies are built.
