file(REMOVE_RECURSE
  "CMakeFiles/test_nf_firewall.dir/test_nf_firewall.cpp.o"
  "CMakeFiles/test_nf_firewall.dir/test_nf_firewall.cpp.o.d"
  "test_nf_firewall"
  "test_nf_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
