# Empty dependencies file for test_nf_firewall.
# This may be replaced when dependencies are built.
