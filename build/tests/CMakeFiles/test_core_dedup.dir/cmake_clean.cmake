file(REMOVE_RECURSE
  "CMakeFiles/test_core_dedup.dir/test_core_dedup.cpp.o"
  "CMakeFiles/test_core_dedup.dir/test_core_dedup.cpp.o.d"
  "test_core_dedup"
  "test_core_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
