# Empty compiler generated dependencies file for test_core_dedup.
# This may be replaced when dependencies are built.
