file(REMOVE_RECURSE
  "CMakeFiles/test_nf_dpi.dir/test_nf_dpi.cpp.o"
  "CMakeFiles/test_nf_dpi.dir/test_nf_dpi.cpp.o.d"
  "test_nf_dpi"
  "test_nf_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
