# Empty dependencies file for test_nf_dpi.
# This may be replaced when dependencies are built.
