# Empty compiler generated dependencies file for test_vxlan.
# This may be replaced when dependencies are built.
