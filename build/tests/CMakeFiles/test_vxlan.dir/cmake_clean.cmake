file(REMOVE_RECURSE
  "CMakeFiles/test_vxlan.dir/test_vxlan.cpp.o"
  "CMakeFiles/test_vxlan.dir/test_vxlan.cpp.o.d"
  "test_vxlan"
  "test_vxlan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vxlan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
