# Empty dependencies file for test_click.
# This may be replaced when dependencies are built.
