file(REMOVE_RECURSE
  "CMakeFiles/test_click.dir/test_click.cpp.o"
  "CMakeFiles/test_click.dir/test_click.cpp.o.d"
  "test_click"
  "test_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
