# Empty compiler generated dependencies file for test_nf_conntrack.
# This may be replaced when dependencies are built.
