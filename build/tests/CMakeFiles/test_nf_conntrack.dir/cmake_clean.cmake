file(REMOVE_RECURSE
  "CMakeFiles/test_nf_conntrack.dir/test_nf_conntrack.cpp.o"
  "CMakeFiles/test_nf_conntrack.dir/test_nf_conntrack.cpp.o.d"
  "test_nf_conntrack"
  "test_nf_conntrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf_conntrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
