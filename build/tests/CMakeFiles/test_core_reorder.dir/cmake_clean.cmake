file(REMOVE_RECURSE
  "CMakeFiles/test_core_reorder.dir/test_core_reorder.cpp.o"
  "CMakeFiles/test_core_reorder.dir/test_core_reorder.cpp.o.d"
  "test_core_reorder"
  "test_core_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
