# Empty compiler generated dependencies file for test_core_reorder.
# This may be replaced when dependencies are built.
