file(REMOVE_RECURSE
  "CMakeFiles/test_nf_lb.dir/test_nf_lb.cpp.o"
  "CMakeFiles/test_nf_lb.dir/test_nf_lb.cpp.o.d"
  "test_nf_lb"
  "test_nf_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
