# Empty compiler generated dependencies file for test_core_health.
# This may be replaced when dependencies are built.
