file(REMOVE_RECURSE
  "CMakeFiles/test_core_health.dir/test_core_health.cpp.o"
  "CMakeFiles/test_core_health.dir/test_core_health.cpp.o.d"
  "test_core_health"
  "test_core_health.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_health.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
