# Empty dependencies file for test_nf_misc.
# This may be replaced when dependencies are built.
