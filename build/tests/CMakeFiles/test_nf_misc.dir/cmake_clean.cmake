file(REMOVE_RECURSE
  "CMakeFiles/test_nf_misc.dir/test_nf_misc.cpp.o"
  "CMakeFiles/test_nf_misc.dir/test_nf_misc.cpp.o.d"
  "test_nf_misc"
  "test_nf_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
