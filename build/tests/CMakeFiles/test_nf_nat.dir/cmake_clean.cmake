file(REMOVE_RECURSE
  "CMakeFiles/test_nf_nat.dir/test_nf_nat.cpp.o"
  "CMakeFiles/test_nf_nat.dir/test_nf_nat.cpp.o.d"
  "test_nf_nat"
  "test_nf_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
