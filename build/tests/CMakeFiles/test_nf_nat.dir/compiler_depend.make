# Empty compiler generated dependencies file for test_nf_nat.
# This may be replaced when dependencies are built.
