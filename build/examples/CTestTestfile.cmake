# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nfv_service_chain "/root/repo/build/examples/nfv_service_chain")
set_tests_properties(example_nfv_service_chain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_click_router "/root/repo/build/examples/click_router")
set_tests_properties(example_click_router PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mdp_run "/root/repo/build/examples/mdp_run" "policy=adaptive" "paths=2" "load=0.4" "packets=20000" "duty=0.1")
set_tests_properties(example_mdp_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tail_sla_tuning "/root/repo/build/examples/tail_sla_tuning")
set_tests_properties(example_tail_sla_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
