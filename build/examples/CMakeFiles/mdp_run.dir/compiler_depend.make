# Empty compiler generated dependencies file for mdp_run.
# This may be replaced when dependencies are built.
