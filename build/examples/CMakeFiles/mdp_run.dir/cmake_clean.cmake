file(REMOVE_RECURSE
  "CMakeFiles/mdp_run.dir/mdp_run.cpp.o"
  "CMakeFiles/mdp_run.dir/mdp_run.cpp.o.d"
  "mdp_run"
  "mdp_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdp_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
