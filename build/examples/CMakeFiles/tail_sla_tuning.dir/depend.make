# Empty dependencies file for tail_sla_tuning.
# This may be replaced when dependencies are built.
