file(REMOVE_RECURSE
  "CMakeFiles/tail_sla_tuning.dir/tail_sla_tuning.cpp.o"
  "CMakeFiles/tail_sla_tuning.dir/tail_sla_tuning.cpp.o.d"
  "tail_sla_tuning"
  "tail_sla_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_sla_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
