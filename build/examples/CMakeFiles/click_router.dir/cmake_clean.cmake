file(REMOVE_RECURSE
  "CMakeFiles/click_router.dir/click_router.cpp.o"
  "CMakeFiles/click_router.dir/click_router.cpp.o.d"
  "click_router"
  "click_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/click_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
