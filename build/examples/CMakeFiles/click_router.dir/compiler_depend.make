# Empty compiler generated dependencies file for click_router.
# This may be replaced when dependencies are built.
