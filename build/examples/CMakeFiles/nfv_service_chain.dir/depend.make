# Empty dependencies file for nfv_service_chain.
# This may be replaced when dependencies are built.
