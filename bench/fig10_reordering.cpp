// Fig 10: reordering at the multipath egress.
//
// Per-packet spraying (rr, jsq) reorders flows heavily; flowlet switching
// bounds it; the resequencing buffer restores order at a small dwell cost.
// Reports out-of-order fraction with the reorder buffer disabled
// (detection mode) and the dwell/timeout cost with it enabled.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

namespace {

harness::ScenarioResult run(const std::string& policy, bool reorder_on) {
  harness::ScenarioConfig cfg;
  cfg.policy = policy;
  cfg.num_paths = 4;
  cfg.load = 0.4;
  cfg.packets = 150'000;
  cfg.warmup_packets = 15'000;
  cfg.num_flows = 64;  // fewer, hotter flows: reordering is visible
  cfg.interference = true;
  cfg.interference_cfg.duty_cycle = 0.10;
  cfg.interference_cfg.mean_burst_ns = 100'000;
  cfg.dp.reorder.enabled = reorder_on;
  cfg.seed = 10;
  return harness::run_scenario(cfg);
}

}  // namespace

int main() {
  bench::banner("Fig 10", "Reordering by policy (k=4, 40% load): "
                          "out-of-order fraction and resequencing cost");

  const std::vector<std::string> policies = {"single", "rss", "rr", "jsq",
                                             "flowlet", "red2", "adaptive"};
  stats::Table t({"policy", "OOO frac (no buffer)", "p99 (no buffer)",
                  "dwell p99 (buffer)", "timeout rels", "p99 (buffer)"});
  for (const auto& policy : policies) {
    auto off = run(policy, false);
    auto on = run(policy, true);
    t.add_row({bench::policy_label(policy),
               stats::fmt_percent(off.ooo_fraction, 2),
               bench::us(off.latency.p99()),
               bench::us(on.reorder_dwell.p99()),
               stats::fmt_u64(on.reorder_timeout_releases),
               bench::us(on.latency.p99())});
  }
  bench::print_table(t);
  bench::note("single/rss never reorder (flow-pinned); rr/jsq spray "
              "per-packet and reorder the most; flowlet bounds OOO to "
              "flowlet switches; the buffer trades a bounded dwell for "
              "in-order egress");
  return 0;
}
