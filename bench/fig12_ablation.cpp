// Fig 12 (ablation): which AdaptiveMDP mechanism buys what.
//
// Three sweeps at the reference scenario (k=4, 60% load, 15% duty):
//   (a) replicate_k for latency-critical traffic
//   (b) hedge budget for best-effort traffic (off / fixed values / auto)
//   (c) flowlet gap (reordering vs load agility trade)
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

namespace {

harness::ScenarioResult run(core::AdaptiveMdpConfig acfg,
                            bool hedge_off_entirely = false) {
  harness::ScenarioConfig cfg;
  cfg.make_policy = [acfg] {
    return std::make_unique<core::AdaptiveMdpScheduler>(acfg);
  };
  cfg.policy = "adaptive(custom)";
  cfg.num_paths = 4;
  cfg.load = 0.6;
  cfg.packets = 150'000;
  cfg.warmup_packets = 15'000;
  cfg.lc_fraction = 0.1;
  cfg.interference = true;
  cfg.interference_cfg.duty_cycle = 0.15;
  cfg.interference_cfg.mean_burst_ns = 120'000;
  cfg.seed = 12;
  (void)hedge_off_entirely;
  return harness::run_scenario(cfg);
}

}  // namespace

int main() {
  bench::banner("Fig 12", "AdaptiveMDP ablation (k=4, 60% load, 15% duty)");

  std::printf("\n(a) replication factor for latency-critical traffic:\n");
  stats::Table ta({"replicate_k", "LC p99", "LC p99.9", "all p99.9",
                   "extra copies/pkt"});
  for (std::size_t k : {1u, 2u, 3u}) {
    core::AdaptiveMdpConfig acfg;
    acfg.replicate_k = k;
    auto res = run(acfg);
    ta.add_row({stats::fmt_u64(k), bench::us(res.lc_latency.p99()),
                bench::us(res.lc_latency.p999()),
                bench::us(res.latency.p999()),
                stats::fmt_double(res.replica_fraction, 2)});
  }
  bench::print_table(ta);

  std::printf("\n(b) hedge budget for best-effort traffic:\n");
  stats::Table tb({"hedge", "hedges fired", "BE+LC p99", "p99.9",
                   "extra copies/pkt"});
  struct HedgeCase {
    const char* label;
    bool enabled;
    sim::TimeNs fixed;
  };
  for (HedgeCase hc : {HedgeCase{"off", false, 0},
                       HedgeCase{"20us", true, 20'000},
                       HedgeCase{"50us", true, 50'000},
                       HedgeCase{"100us", true, 100'000},
                       HedgeCase{"auto(3xEWMA)", true, 0}}) {
    core::AdaptiveMdpConfig acfg;
    acfg.hedge_enabled = hc.enabled;
    acfg.hedge_timeout_ns = hc.fixed;
    auto res = run(acfg);
    tb.add_row({hc.label, stats::fmt_u64(res.hedges),
                bench::us(res.latency.p99()),
                bench::us(res.latency.p999()),
                stats::fmt_double(res.replica_fraction, 2)});
  }
  bench::print_table(tb);

  std::printf("\n(c) flowlet gap:\n");
  stats::Table tc({"gap", "OOO frac", "timeout rels", "p99", "p99.9"});
  for (sim::TimeNs gap : {10'000u, 50'000u, 200'000u, 1'000'000u}) {
    core::AdaptiveMdpConfig acfg;
    acfg.flowlet_gap_ns = gap;
    auto res = run(acfg);
    tc.add_row({bench::us(gap), stats::fmt_percent(res.ooo_fraction, 2),
                stats::fmt_u64(res.reorder_timeout_releases),
                bench::us(res.latency.p99()),
                bench::us(res.latency.p999())});
  }
  bench::print_table(tc);

  std::printf("\n(d) replication load gate (at 85%% load, where it matters):\n");
  stats::Table td({"backlog cap", "LC p99", "all p50", "all p99.9",
                   "extra copies/pkt"});
  struct GateCase {
    const char* label;
    sim::TimeNs cap;
  };
  for (GateCase gc : {GateCase{"off (always replicate)", 0},
                      GateCase{"10us", 10'000},
                      GateCase{"25us (default)", 25'000},
                      GateCase{"100us", 100'000}}) {
    core::AdaptiveMdpConfig acfg;
    acfg.replicate_backlog_cap_ns = gc.cap;
    harness::ScenarioConfig cfg;
    cfg.make_policy = [acfg] {
      return std::make_unique<core::AdaptiveMdpScheduler>(acfg);
    };
    cfg.policy = "adaptive(custom)";
    cfg.num_paths = 4;
    cfg.load = 0.85;
    cfg.packets = 150'000;
    cfg.warmup_packets = 15'000;
    cfg.interference = true;
    cfg.interference_cfg.duty_cycle = 0.15;
    cfg.interference_cfg.mean_burst_ns = 120'000;
    cfg.seed = 12;
    auto res = harness::run_scenario(cfg);
    td.add_row({gc.label, bench::us(res.lc_latency.p99()),
                bench::us(res.latency.p50()),
                bench::us(res.latency.p999()),
                stats::fmt_double(res.replica_fraction, 2)});
  }
  bench::print_table(td);

  std::printf("\n(e) multipath vs core-local prioritization for LC "
              "traffic (same scenario):\n");
  stats::Table te({"scheme", "LC p99", "LC p99.9", "all p99.9"});
  struct PrioCase {
    const char* label;
    const char* policy;
    std::size_t paths;
    bool prio;
  };
  for (PrioCase pc : {PrioCase{"single + LC priority", "single", 4, true},
                      PrioCase{"jsq (no priority)", "jsq", 4, false},
                      PrioCase{"jsq + LC priority", "jsq", 4, true},
                      PrioCase{"adaptive multipath", "adaptive", 4, false}}) {
    harness::ScenarioConfig cfg;
    cfg.policy = pc.policy;
    cfg.num_paths = pc.paths;
    cfg.load = 0.6;
    cfg.packets = 150'000;
    cfg.warmup_packets = 15'000;
    cfg.lc_fraction = 0.1;
    cfg.dp.lc_priority = pc.prio;
    cfg.interference = true;
    cfg.interference_cfg.duty_cycle = 0.15;
    cfg.interference_cfg.mean_burst_ns = 120'000;
    cfg.seed = 12;
    auto res = harness::run_scenario(cfg);
    te.add_row({pc.label, bench::us(res.lc_latency.p99()),
                bench::us(res.lc_latency.p999()),
                bench::us(res.latency.p999())});
  }
  bench::print_table(te);
  bench::note("priority reorders the queue but cannot reorder the "
              "hypervisor: during a theft burst the whole core stalls, so "
              "only another path rescues LC packets");

  bench::note("replication k=2 captures nearly all of k=3's LC tail gain "
              "at half the overhead; aggressive hedging (20us) burns "
              "copies for little gain over auto; long flowlet gaps pin "
              "flows to stalled paths and re-grow the tail");
  return 0;
}
