// Extension experiment 2: the vSwitch fast path (FlowCache).
//
// An exact-match cache in front of the fw-nat-lb slow path turns the
// per-packet cost from "full chain" into "cache lookup + rewrite" for
// every packet after a flow's first. The win depends on flow locality:
// sweep the active-flow count against a fixed cache capacity and report
// hit rate and the effective amortized per-packet cost.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "click/router.hpp"
#include "core/threaded_dataplane.hpp"
#include "io/loopback_backend.hpp"
#include "net/packet_builder.hpp"
#include "nf/chain.hpp"
#include "nf/flow_cache.hpp"
#include "sim/rng.hpp"
#include "telem/flight_recorder.hpp"

using namespace mdp;

namespace {

// One row of the threaded-plane burst sweep: wall-clock cost per packet
// pushed through ingress -> SPSC ring -> worker -> MPMC merge -> recycle.
struct BurstRow {
  std::size_t burst;
  std::uint64_t packets;
  std::uint64_t elapsed_ns;
  const char* backend = "synthetic";  ///< packet source this row ran on
  double ns_per_packet() const {
    return static_cast<double>(elapsed_ns) / static_cast<double>(packets);
  }
  double mpps() const { return 1e3 / ns_per_packet(); }
};

// Overhead-dominated configuration: tiny payload and a single checksum
// pass, so the framework cost the burst path amortizes (clock reads,
// policy sampling, ring ops, completion bookkeeping) IS the workload.
// Keeps the burst-1 vs burst-32 contrast robust even on small shared
// machines.
core::ThreadedConfig sweep_config(std::size_t burst) {
  core::ThreadedConfig cfg;
  cfg.num_paths = 2;
  cfg.payload_bytes = 64;
  cfg.work_iterations = 1;
  cfg.policy = "jsq";
  cfg.burst_size = burst;
  return cfg;
}

// `telem` attaches a FlightRecorder to the plane (one ingress_burst /
// egress_burst event per burst on the hot path) — the observability
// overhead the "synthetic_telem" gate row locks in.
BurstRow run_burst(std::size_t burst, std::uint64_t target_packets,
                   bool telem = false) {
  telem::FlightRecorder rec;
  core::ThreadedConfig cfg = sweep_config(burst);
  if (telem) cfg.recorder = &rec;
  core::ThreadedDataPlane dp(cfg, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  dp.start();
  if (burst == 1) {
    // Per-packet baseline: the pre-burst ingress path.
    for (std::uint64_t i = 0; i < target_packets; ++i)
      while (!dp.ingress(i * 0x9e3779b97f4a7c15ULL)) {
      }
  } else {
    std::vector<std::uint64_t> hashes(burst);
    std::uint64_t accepted = 0, next = 0;
    while (accepted < target_packets) {
      std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(burst, target_packets - accepted));
      for (std::size_t i = 0; i < want; ++i)
        hashes[i] = next++ * 0x9e3779b97f4a7c15ULL;
      std::size_t got = dp.ingress_burst({hashes.data(), want});
      if (got == 0) std::this_thread::yield();
      accepted += got;
    }
  }
  dp.stop();  // blocks until everything in flight completed
  const auto t1 = std::chrono::steady_clock::now();
  BurstRow row;
  row.burst = burst;
  row.packets = dp.completed();
  if (telem) row.backend = "synthetic_telem";
  row.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
          .count());
  return row;
}

// Loopback-backend row: real frames over the in-memory wire, recirculated
// through pump() — peer tx -> plane rx -> dispatch -> worker -> collector
// -> plane tx -> peer rx -> peer re-tx. Measures the full backend I/O path
// (rx_burst/tx_burst, PacketPtr hand-off, egress ring) that the synthetic
// rows bypass. The peer keeps ~half the frame pool circulating and tops
// the window back up from the pool, so transient admission rejects can
// never starve the loop.
BurstRow run_burst_loopback(std::size_t burst,
                            std::uint64_t target_packets) {
  net::PacketPool pool(4096, 2048, /*allow_growth=*/false);
  auto [driver, plane_end] = io::LoopbackBackend::make_pair({});
  core::ThreadedConfig cfg = sweep_config(burst);
  cfg.backend = plane_end.get();
  core::ThreadedDataPlane dp(cfg, nullptr);

  const auto t0 = std::chrono::steady_clock::now();
  dp.start();
  std::uint64_t seq = 0;
  net::PacketPtr got[core::ThreadedDataPlane::kMaxBurst];
  while (dp.completed() < target_packets) {
    // Top up the circulating window (covers initial seeding and any
    // frames the plane rejected back into the pool).
    if (pool.available() > pool.capacity() / 2) {
      net::PacketPtr fresh[64];
      std::size_t built = 0;
      for (; built < 64; ++built) {
        net::BuildSpec spec;
        spec.flow = {0x0a000001 + static_cast<std::uint32_t>(seq % 64),
                     0x0a000002, 2000, 4789, 0};
        spec.payload_len = 64;
        fresh[built] = net::build_udp(pool, spec);
        if (!fresh[built]) break;
        fresh[built]->anno().flow_hash = net::hash_flow(spec.flow);
        ++seq;
      }
      driver->tx_burst(std::span<net::PacketPtr>(fresh, built));
      // Unconsumed frames recycle here and are rebuilt next round.
    }
    const std::size_t admitted = dp.pump();
    const std::size_t n = driver->rx_burst(
        std::span<net::PacketPtr>(got, std::size(got)));
    if (n > 0) {
      const std::size_t sent =
          driver->tx_burst(std::span<net::PacketPtr>(got, n));
      for (std::size_t i = sent; i < n; ++i) got[i].reset();
    } else if (admitted == 0) {
      // Starved iteration: frames are parked in path rings waiting for a
      // worker/collector timeslice. Donate ours instead of spinning a
      // full quantum against them (decisive on single-core runners).
      std::this_thread::yield();
    }
  }
  dp.stop();
  const auto t1 = std::chrono::steady_clock::now();

  BurstRow row;
  row.burst = burst;
  row.packets = dp.completed();
  row.backend = "loopback";
  row.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
          .count());
  return row;
}

std::string burst_row_json(const BurstRow& row, double speedup_vs_1) {
  const auto cfg = sweep_config(row.burst);
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.bench_fastpath.v1");
  w.key("backend").value(row.backend);
  w.key("burst").value(static_cast<std::uint64_t>(row.burst));
  w.key("packets").value(row.packets);
  w.key("elapsed_ns").value(row.elapsed_ns);
  w.key("ns_per_packet").value(row.ns_per_packet());
  w.key("mpps").value(row.mpps());
  w.key("speedup_vs_burst1").value(speedup_vs_1);
  w.key("config").begin_object();
  w.key("num_paths").value(static_cast<std::uint64_t>(cfg.num_paths));
  w.key("payload_bytes").value(static_cast<std::uint64_t>(cfg.payload_bytes));
  w.key("work_iterations")
      .value(static_cast<std::uint64_t>(cfg.work_iterations));
  w.key("policy").value(cfg.policy);
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReportSink sink("ext2_fastpath", argc, argv);

  // --backend=synthetic|loopback|all (default all) selects which packet
  // sources the burst sweep runs on; the perf gate keys rows by
  // (backend, burst), so the default CI run must produce both.
  std::string backend_sel = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0)
      backend_sel = argv[i] + 10;
  }
  if (backend_sel != "all" && backend_sel != "synthetic" &&
      backend_sel != "loopback") {
    std::fprintf(stderr, "unknown --backend '%s' (want synthetic, "
                         "loopback, or all)\n", backend_sel.c_str());
    return 1;
  }
  const bool run_synthetic = backend_sel != "loopback";
  const bool run_loopback = backend_sel != "synthetic";

  bench::banner("Ext 2", "FlowCache fast path: hit rate and amortized "
                         "cost vs flow count (capacity 4096 flows)");

  stats::Table t({"active flows", "hit rate", "evictions",
                  "effective cost/pkt", "vs slow path"});
  for (std::size_t flows : {256u, 1024u, 4096u, 16384u, 65536u}) {
    sim::EventQueue eq;
    net::PacketPool pool(512, 2048);
    click::Router router(click::Router::Context{&eq, &pool});
    std::string err;

    // fc[1] -> slow chain -> back into fc[1]; fc[0] -> sink.
    auto* fc_elem = router.add_element("fc", "FlowCache", {"4096"}, &err);
    if (!fc_elem) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    auto built = nf::build_chain(router, "slow",
                                 nf::ChainSpec::preset("fw-nat-lb"), &err);
    auto* sink = router.add_element("sink", "Discard", {}, &err);
    if (!built || !sink ||
        !router.connect(fc_elem, 1, built->head, 0, &err) ||
        !router.connect(built->tail, 0, fc_elem, 1, &err) ||
        !router.connect(fc_elem, 0, sink, 0, &err) ||
        !router.initialize(&err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    auto* fc = dynamic_cast<nf::FlowCache*>(fc_elem);

    // Zipf-ish access: 80% of packets from the hottest 20% of flows.
    sim::Rng rng(17);
    constexpr int kPackets = 300'000;
    for (int i = 0; i < kPackets; ++i) {
      std::uint64_t f = rng.bernoulli(0.8)
                            ? rng.uniform_u64(flows / 5 + 1)
                            : rng.uniform_u64(flows);
      net::BuildSpec spec;
      spec.flow = {0x0b000000 + static_cast<std::uint32_t>(f), 0x0a006401,
                   static_cast<std::uint16_t>(1024 + f % 50000), 80, 0};
      fc_elem->push(0, net::build_udp(pool, spec));
    }

    double hit = fc->core().hit_rate();
    double slow_cost = static_cast<double>(built->cost_ns);
    double fast_cost = static_cast<double>(fc_elem->cost_ns());
    double effective = hit * fast_cost + (1 - hit) * (slow_cost + fast_cost);
    t.add_row({stats::fmt_u64(flows), stats::fmt_percent(hit, 1),
               stats::fmt_u64(fc->core().evictions()),
               bench::us(static_cast<std::uint64_t>(effective)),
               stats::fmt_double(slow_cost / effective, 1) + "x"});
  }
  bench::print_table(t);
  bench::note("with locality the fast path buys ~5-10x per-packet cost "
              "until the working set overwhelms the cache (evictions -> "
              "thrashing at 64k flows)");

  // --- threaded-plane burst sweep (the BENCH_fastpath.json baseline) ----
  bench::banner("Ext 2b", "threaded data plane burst sweep: wall-clock "
                          "ns/packet end-to-end vs burst size");
  constexpr std::uint64_t kSweepPackets = 200'000;
  std::vector<BurstRow> rows;
  if (run_synthetic) {
    for (std::size_t burst : {1u, 8u, 32u, 128u})
      rows.push_back(run_burst(burst, kSweepPackets));
    // Telemetry-on twin of the burst-32 row: same plane, flight recorder
    // attached. Gated against its own committed baseline, so a regression
    // in emit() cost fails CI even when the telem-off rows hold.
    rows.push_back(run_burst(32, kSweepPackets, /*telem=*/true));
  }
  if (run_loopback)
    rows.push_back(run_burst_loopback(32, kSweepPackets));

  // Speedup column is relative to the synthetic burst-1 row (the
  // per-packet baseline); rows from other backends report 0 when it
  // didn't run.
  const double base = run_synthetic ? rows.front().ns_per_packet() : 0.0;
  stats::Table bt({"backend", "burst", "packets", "ns/packet", "Mpps",
                   "vs burst 1"});
  for (const auto& row : rows) {
    const double speedup =
        base > 0 && std::string(row.backend) == "synthetic"
            ? base / row.ns_per_packet()
            : 0.0;
    bt.add_row({row.backend, stats::fmt_u64(row.burst),
                stats::fmt_u64(row.packets),
                stats::fmt_double(row.ns_per_packet(), 1),
                stats::fmt_double(row.mpps(), 2),
                speedup > 0 ? stats::fmt_double(speedup, 2) + "x" : "-"});
    sink.add_raw(std::string(row.backend) + "_burst_" +
                     std::to_string(row.burst),
                 burst_row_json(row, speedup));
  }
  bench::print_table(bt);
  double telem_off = 0, telem_on = 0;
  for (const auto& row : rows) {
    if (row.burst != 32) continue;
    if (std::string(row.backend) == "synthetic")
      telem_off = row.ns_per_packet();
    else if (std::string(row.backend) == "synthetic_telem")
      telem_on = row.ns_per_packet();
  }
  if (telem_off > 0 && telem_on > 0)
    bench::note("always-on flight recorder costs " +
                stats::fmt_double(telem_on - telem_off, 1) +
                " ns/packet at burst 32 (" +
                stats::fmt_double(telem_on / telem_off, 2) +
                "x the telem-off row) - the observability budget the "
                "synthetic_telem gate row holds");
  bench::note("burst 32 amortizes the per-packet framework overhead "
              "(clock reads, JSQ sampling, ring ops, completion "
              "bookkeeping) to once per burst; expect >= 1.3x over "
              "burst 1 (see docs/BENCHMARKS.md)");

  return sink.flush() ? 0 : 1;
}
