// Extension experiment 2: the vSwitch fast path (FlowCache).
//
// An exact-match cache in front of the fw-nat-lb slow path turns the
// per-packet cost from "full chain" into "cache lookup + rewrite" for
// every packet after a flow's first. The win depends on flow locality:
// sweep the active-flow count against a fixed cache capacity and report
// hit rate and the effective amortized per-packet cost.
#include "bench_common.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "nf/chain.hpp"
#include "nf/flow_cache.hpp"
#include "sim/rng.hpp"

using namespace mdp;

int main() {
  bench::banner("Ext 2", "FlowCache fast path: hit rate and amortized "
                         "cost vs flow count (capacity 4096 flows)");

  stats::Table t({"active flows", "hit rate", "evictions",
                  "effective cost/pkt", "vs slow path"});
  for (std::size_t flows : {256u, 1024u, 4096u, 16384u, 65536u}) {
    sim::EventQueue eq;
    net::PacketPool pool(512, 2048);
    click::Router router(click::Router::Context{&eq, &pool});
    std::string err;

    // fc[1] -> slow chain -> back into fc[1]; fc[0] -> sink.
    auto* fc_elem = router.add_element("fc", "FlowCache", {"4096"}, &err);
    if (!fc_elem) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    auto built = nf::build_chain(router, "slow",
                                 nf::ChainSpec::preset("fw-nat-lb"), &err);
    auto* sink = router.add_element("sink", "Discard", {}, &err);
    if (!built || !sink ||
        !router.connect(fc_elem, 1, built->head, 0, &err) ||
        !router.connect(built->tail, 0, fc_elem, 1, &err) ||
        !router.connect(fc_elem, 0, sink, 0, &err) ||
        !router.initialize(&err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    auto* fc = dynamic_cast<nf::FlowCache*>(fc_elem);

    // Zipf-ish access: 80% of packets from the hottest 20% of flows.
    sim::Rng rng(17);
    constexpr int kPackets = 300'000;
    for (int i = 0; i < kPackets; ++i) {
      std::uint64_t f = rng.bernoulli(0.8)
                            ? rng.uniform_u64(flows / 5 + 1)
                            : rng.uniform_u64(flows);
      net::BuildSpec spec;
      spec.flow = {0x0b000000 + static_cast<std::uint32_t>(f), 0x0a006401,
                   static_cast<std::uint16_t>(1024 + f % 50000), 80, 0};
      fc_elem->push(0, net::build_udp(pool, spec));
    }

    double hit = fc->core().hit_rate();
    double slow_cost = static_cast<double>(built->cost_ns);
    double fast_cost = static_cast<double>(fc_elem->cost_ns());
    double effective = hit * fast_cost + (1 - hit) * (slow_cost + fast_cost);
    t.add_row({stats::fmt_u64(flows), stats::fmt_percent(hit, 1),
               stats::fmt_u64(fc->core().evictions()),
               bench::us(static_cast<std::uint64_t>(effective)),
               stats::fmt_double(slow_cost / effective, 1) + "x"});
  }
  bench::print_table(t);
  bench::note("with locality the fast path buys ~5-10x per-packet cost "
              "until the working set overwhelms the cache (evictions -> "
              "thrashing at 64k flows)");
  return 0;
}
