// Fig 7: tail latency vs number of last-mile paths k.
//
// The core provisioning question: how many queue+core+chain replicas does
// the last mile need before the tail is gone? Expected: large step from
// k=1 to k=2, diminishing returns after k=4; replication-based policies
// need k>=2 to function at all.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

int main() {
  bench::banner("Fig 7", "p99.9 latency vs path count k (35% load, "
                         "interference 15% duty on all paths)");

  const std::vector<std::string> policies = {"single", "jsq", "lla", "red2",
                                             "adaptive"};
  stats::Table t({"k", "policy", "p50", "p99", "p99.9"});
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    for (const auto& policy : policies) {
      if (policy == "red2" && k < 2) continue;  // needs 2 paths
      harness::ScenarioConfig cfg;
      cfg.policy = policy;
      cfg.num_paths = k;
      cfg.load = 0.35;
      cfg.packets = 150'000;
      cfg.warmup_packets = 15'000;
      cfg.interference = true;
      cfg.interference_cfg.duty_cycle = 0.15;
      cfg.interference_cfg.mean_burst_ns = 120'000;
      cfg.seed = 7;
      auto res = harness::run_scenario(cfg);
      t.add_row({stats::fmt_u64(k), bench::policy_label(policy),
                 bench::us(res.latency.p50()), bench::us(res.latency.p99()),
                 bench::us(res.latency.p999())});
    }
  }
  bench::print_table(t);
  bench::note("the k=1 -> k=2 step removes most of the tail; beyond k=4 "
              "the returns diminish (interference on all k paths rarely "
              "aligns)");
  return 0;
}
