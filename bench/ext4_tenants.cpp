// Extension experiment 4: the million-flow multi-tenant tier
// (docs/TENANCY.md).
//
// Two claims, two methodologies:
//
//   1. Capacity (wall clock): nf::FlowTable holds 1M+ concurrent flows in
//      memory allocated once at construction, with insert / lookup /
//      eviction-churn costs flat enough to sit on a per-packet path.
//
//   2. Isolation (logical clock): a tenant whose connection storm offers
//      ~3x the plane's drain budget is throttled and shed by
//      ctrl::TenantAdmission before its backlog poisons the victim
//      tenant's tail. The victim's EXACT p99.9 is reported for the storm
//      off / storm+admission / storm-without-admission triple: the first
//      two must sit inside the victim's SLO, the third shows the
//      contagion the admission stage exists to prevent. Logical-clock
//      rows are deterministic — same seed, same numbers, any machine.
//
// JSON rows (--json): schema mdp.bench_tenants.v1, gated by
// scripts/check_perf.py against BENCH_tenants.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos_harness.hpp"
#include "nf/flow_table.hpp"
#include "stats/table.hpp"

using namespace mdp;

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

net::FlowKey flow_n(std::uint32_t n) {
  return net::FlowKey{0x0b000000 + n, 0x0a006401,
                      static_cast<std::uint16_t>(1000 + n % 60000), 80, 6};
}

struct MicroRow {
  const char* op;
  std::uint64_t ops;
  std::uint64_t elapsed_ns;
  double ns_per_op() const {
    return static_cast<double>(elapsed_ns) / static_cast<double>(ops);
  }
};

std::string micro_row_json(const MicroRow& r) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.bench_tenants.v1");
  w.key("row").value(std::string("flowtable_") + r.op);
  w.key("ops").value(r.ops);
  w.key("value").value(r.ns_per_op());
  w.key("unit").value("ns_per_op");
  w.key("wall_clock").value(true);
  w.end_object();
  return w.take();
}

/// The storm scenario behind the isolation rows: tenant 0 ("storm")
/// ramps to ~3x the plane's total drain budget; tenant 1 ("victim")
/// keeps a steady in-budget load with a 50 us logical SLO.
chaos::ChaosScenarioConfig storm_cfg(bool storm_on, bool admission_on) {
  chaos::ChaosScenarioConfig cfg;
  cfg.seed = 5;
  cfg.iterations = 25'000;
  cfg.num_paths = 2;
  cfg.drain_per_iter = {4, 4};
  cfg.packets_per_iter = 0;
  cfg.pool_size = 32'768;
  cfg.ctrl.slo_target_ns = 50'000;
  cfg.ctrl.hedger.enabled = false;
  cfg.ctrl.hedge_timeout.enabled = false;
  // A constant 2-tick wire delay on both paths: every packet has a real
  // (nonzero) base latency, so the victim's p99.9 is a meaningful number
  // rather than "delivered in the same logical tick".
  io::LoopbackFaults base_wire;
  base_wire.delay_ticks = 2;
  cfg.phases.push_back({0, 1'000'000, 0, base_wire});
  cfg.phases.push_back({0, 1'000'000, 1, base_wire});

  chaos::ChaosScenarioConfig::TenantTraffic a;
  a.storm.base_arrivals_per_tick = 0.05;
  a.storm.conn_lifetime_ticks = 32;
  if (storm_on) {
    a.storm.storm_from = 3'000;
    a.storm.storm_to = 22'000;
    a.storm.storm_peak_arrivals_per_tick = 20.0;
  }
  a.spec.name = "storm";
  // Budget 0 = uncontracted: the admission stage never judges the tenant
  // storming — the "what if we had no admission" ablation.
  a.spec.arrival_budget_per_tick = admission_on ? 320 : 0;
  a.spec.throttle_keep_one_in = 8;
  a.packets_per_iter = 2;

  chaos::ChaosScenarioConfig::TenantTraffic b;
  b.storm.base_arrivals_per_tick = 0.2;
  b.storm.conn_lifetime_ticks = 2'000;
  b.spec.name = "victim";
  b.spec.arrival_budget_per_tick = 1'000;
  b.packets_per_iter = 2;

  cfg.tenants = {a, b};
  cfg.tenant_ctrl.throttle_after = 2;
  cfg.tenant_ctrl.shed_after = 2;
  cfg.tenant_ctrl.cooldown_windows = 4;
  cfg.tenant_ctrl.probation_windows = 4;
  return cfg;
}

std::uint64_t exact_quantile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
}

struct StormRow {
  const char* label;
  std::uint64_t victim_p999_ns;
  std::uint64_t victim_samples;
  std::uint64_t sheds;
  std::uint64_t dropped;
};

std::string storm_row_json(const StormRow& r, std::uint64_t slo_ns) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.bench_tenants.v1");
  w.key("row").value(std::string("victim_p999_") + r.label);
  w.key("value").value(static_cast<double>(r.victim_p999_ns));
  w.key("unit").value("logical_ns");
  w.key("wall_clock").value(false);
  w.key("slo_target_ns").value(slo_ns);
  w.key("victim_samples").value(r.victim_samples);
  w.key("tenant_sheds").value(r.sheds);
  w.key("tenant_dropped").value(r.dropped);
  w.end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReportSink sink("ext4_tenants", argc, argv);
  bench::banner("ext4_tenants",
                "million-flow tenancy: FlowTable capacity + storm isolation");

  // --- 1. FlowTable at 1M+ flows (wall clock) -----------------------------
  constexpr std::size_t kCap = 1u << 20;  // 1,048,576
  constexpr std::uint32_t kChurn = kCap / 4;
  bench::note("FlowTable capacity 1,048,576; memory allocated once; churn "
              "inserts recycle via second-chance eviction");

  nf::FlowTable<std::uint64_t> table(kCap);
  std::vector<MicroRow> micro;

  std::uint64_t t0 = now_ns();
  for (std::uint32_t i = 0; i < kCap; ++i) table.insert(flow_n(i), i & 3, i);
  micro.push_back({"insert_1m", kCap, now_ns() - t0});

  t0 = now_ns();
  std::uint64_t hits = 0;
  for (std::uint32_t i = 0; i < kCap; ++i)
    hits += table.find(flow_n(i)) != nullptr;
  micro.push_back({"lookup_1m", kCap, now_ns() - t0});

  t0 = now_ns();
  for (std::uint32_t i = kCap; i < kCap + kChurn; ++i)
    table.insert(flow_n(i), i & 3, i);
  micro.push_back({"churn_insert", kChurn, now_ns() - t0});

  stats::Table mt({"operation", "ops", "ns/op"});
  for (const auto& r : micro) {
    mt.add_row({r.op, stats::fmt_u64(r.ops),
                stats::fmt_double(r.ns_per_op(), 1)});
    sink.add_raw(std::string("flowtable_") + r.op, micro_row_json(r));
  }
  bench::print_table(mt);
  std::printf("-- size after churn: %zu (bound held: %s), lookup hits %llu, "
              "evictions %llu\n",
              table.size(), table.size() == kCap ? "yes" : "NO",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(table.evictions()));
  if (table.size() != kCap || hits != kCap) {
    std::fprintf(stderr, "FATAL: 1M-flow bound or lookup integrity broke\n");
    return 1;
  }

  // --- 2. Storm isolation (logical clock, deterministic) ------------------
  bench::note("storm tenant ramps to ~3x drain budget; victim SLO 50,000 "
              "logical ns; p99.9 exact (full per-tenant latency log)");

  struct Scenario {
    const char* label;
    bool storm_on;
    bool admission_on;
  };
  const Scenario scenarios[] = {
      {"storm_off", false, true},
      {"storm_on_admission", true, true},
      {"storm_on_no_admission", true, false},
  };

  stats::Table st({"scenario", "victim p99.9", "victim samples",
                   "sheds", "dropped@door"});
  std::vector<StormRow> rows;
  for (const Scenario& s : scenarios) {
    chaos::ChaosRig rig(storm_cfg(s.storm_on, s.admission_on));
    chaos::ChaosResult r = rig.run();
    StormRow row;
    row.label = s.label;
    row.victim_p999_ns = exact_quantile(r.tenant_latencies[1], 0.999);
    row.victim_samples = r.tenant_latencies[1].size();
    row.sheds = r.tenant_sheds;
    row.dropped = r.tenant_dropped;
    rows.push_back(row);
    st.add_row({s.label, bench::us(row.victim_p999_ns),
                stats::fmt_u64(row.victim_samples),
                stats::fmt_u64(row.sheds), stats::fmt_u64(row.dropped)});
    sink.add_raw(std::string("victim_p999_") + s.label,
                 storm_row_json(row, 50'000));
  }
  bench::print_table(st);

  const double contagion =
      static_cast<double>(rows[2].victim_p999_ns) /
      static_cast<double>(std::max<std::uint64_t>(rows[1].victim_p999_ns, 1));
  std::printf("-- contagion factor (no admission / admission): %.1fx\n",
              contagion);
  bench::note(rows[1].victim_p999_ns <= 50'000
                  ? "victim SLO held under storm with admission [ok]"
                  : "victim SLO BREACHED under storm with admission");

  return sink.flush() ? 0 : 1;
}
