// Fig 11: flow completion time under flow-granularity replication.
//
// The flow-level view of the last-mile story, now with RepNet's lever:
// short (latency-critical) flows see their p99 FCT dominated by
// last-mile stalls. Four modes over the DCTCP web-search and VL2
// data-mining CDFs, all on per-flow ECMP (rss) so a flow's packets stay
// ordered on one path unless a lever moves them:
//
//   single_path   rss only — the flow eats whatever its path does
//   packet_hedge  rss + fixed hedge deadline — stragglers get a late
//                 second copy, one packet at a time
//   flow_replica  rss + FlowReplicator — short flows are cloned onto the
//                 two least-loaded disjoint paths at arrival, first copy
//                 wins per sequence at egress
//   combined      both levers armed
//
// Emits one mdp.bench_fct.v1 row per (workload, mode): short-flow
// p50/p99 FCT, long-flow p99, and the duplicate-byte fraction the mode
// paid for it. Deterministic (virtual time), so scripts/check_perf.py
// gates hard on these rows: flow_replica/combined must beat single_path
// short-flow p99 by >= 2x on websearch at <= 0.25 duplicate bytes.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "trace/json.hpp"

using namespace mdp;

namespace {

constexpr sim::TimeNs kHedgeNs = 400'000;         // packet-hedge deadline
constexpr std::uint32_t kReplCutoff = 100'000;   // flow-replica size gate
constexpr std::uint64_t kFlows = 4'000;

struct Mode {
  const char* name;
  const char* policy;
  bool flow_repl;
};

constexpr Mode kModes[] = {
    {"single_path", "rss", false},
    {"packet_hedge", "rss:400000", false},
    {"flow_replica", "rss", true},
    {"combined", "rss:400000", true},
};

harness::ScenarioConfig scenario(const Mode& m) {
  harness::ScenarioConfig cfg;
  cfg.policy = m.policy;
  cfg.num_paths = 4;
  cfg.load = 0.6;
  cfg.interference = true;
  cfg.interference_cfg.duty_cycle = 0.15;
  cfg.interference_cfg.mean_burst_ns = 120'000;
  cfg.seed = 11;
  if (m.flow_repl) {
    cfg.dp.flow_repl.enabled = true;
    cfg.dp.flow_repl.size_cutoff_bytes = kReplCutoff;
    cfg.dp.flow_repl.replicas = 2;
  }
  return cfg;
}

std::string row_json(const std::string& workload, const Mode& m,
                     const harness::RpcScenarioResult& r) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.bench_fct.v1");
  w.key("workload").value(workload);
  w.key("mode").value(m.name);
  // Virtual-time results: bitwise stable across machines, safe to gate
  // hard (same contract as the tenant rows).
  w.key("wall_clock").value(false);
  w.key("short_p50_fct_ns").value(r.short_fct.p50());
  w.key("short_p99_fct_ns").value(r.short_fct.p99());
  w.key("long_p99_fct_ns").value(r.long_fct.p99());
  w.key("all_p99_fct_ns").value(r.all_fct.p99());
  w.key("flows_started").value(r.flows_started);
  w.key("flows_completed").value(r.flows_completed);
  w.key("flows_replicated").value(r.flows_replicated);
  w.key("hedges_fired").value(r.hedges_fired);
  w.key("ingress_bytes").value(r.ingress_bytes);
  w.key("extra_copy_bytes").value(r.extra_copy_bytes);
  w.key("duplicate_byte_fraction").value(r.duplicate_byte_fraction);
  w.end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReportSink sink("fig11_fct", argc, argv);
  bench::banner("Fig 11", "Flow completion time vs replication granularity "
                          "(k=4, 60% load, interference 15%)");
  std::printf("modes: single_path | packet_hedge (rss + %lu us deadline) | "
              "flow_replica (<= %u B flows x2 paths) | combined\n",
              static_cast<unsigned long>(kHedgeNs / 1000),
              kReplCutoff);

  stats::Table t({"workload", "mode", "short p50", "short p99", "long p99",
                  "flows done", "repl flows", "hedges", "dup bytes"});
  for (const std::string workload : {"websearch", "datamining"}) {
    std::uint64_t base_short_p99 = 0;
    for (const Mode& m : kModes) {
      harness::ScenarioConfig cfg = scenario(m);
      auto res = harness::run_rpc_scenario(cfg, workload, kFlows);
      if (std::string(m.name) == "single_path")
        base_short_p99 = res.short_fct.p99();
      char dup[32];
      std::snprintf(dup, sizeof dup, "%.3f%%",
                    res.duplicate_byte_fraction * 100.0);
      t.add_row({workload, m.name, bench::us(res.short_fct.p50()),
                 bench::us(res.short_fct.p99()),
                 bench::us(res.long_fct.p99()),
                 stats::fmt_u64(res.flows_completed),
                 stats::fmt_u64(res.flows_replicated),
                 stats::fmt_u64(res.hedges_fired), dup});
      sink.add_raw(workload + std::string("/") + m.name,
                   row_json(workload, m, res));
      if (std::string(m.name) != "single_path" && base_short_p99 > 0 &&
          res.short_fct.p99() > 0) {
        std::printf("   %s/%s: short p99 %.2fx vs single_path\n",
                    workload.c_str(), m.name,
                    static_cast<double>(base_short_p99) /
                        static_cast<double>(res.short_fct.p99()));
      }
    }
  }
  bench::print_table(t);
  bench::note("flow_replica clones exactly the flows the SLO is judged on "
              "(<= cutoff bytes); duplicate-byte fraction is the price, "
              "gated at <= 0.25 by scripts/check_perf.py");
  return sink.flush() ? 0 : 1;
}
