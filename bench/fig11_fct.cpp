// Fig 11: flow completion time for an RPC workload.
//
// Flow-level view of the same story: short (latency-critical) flows see
// their p99 FCT dominated by last-mile stalls; multipath + selective
// replication shortens them without hurting long flows.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

int main() {
  bench::banner("Fig 11", "Flow completion time, RPC workloads (k=4, 60% "
                          "load, interference 15%)");

  const std::vector<std::string> policies = {"single", "rss", "jsq", "red2",
                                             "adaptive"};
  stats::Table t({"workload", "policy", "short p50", "short p99",
                  "long p99", "flows done"});
  for (const std::string workload : {"uniform", "websearch"}) {
    for (const auto& policy : policies) {
      harness::ScenarioConfig cfg;
      cfg.policy = policy;
      cfg.num_paths = 4;
      cfg.load = 0.6;
      cfg.interference = true;
      cfg.interference_cfg.duty_cycle = 0.15;
      cfg.interference_cfg.mean_burst_ns = 120'000;
      cfg.seed = 11;
      auto res = harness::run_rpc_scenario(cfg, workload, 4'000);
      t.add_row({workload, bench::policy_label(policy),
                 bench::us(res.short_fct.p50()),
                 bench::us(res.short_fct.p99()),
                 bench::us(res.long_fct.p99()),
                 stats::fmt_u64(res.flows_completed)});
    }
  }
  bench::print_table(t);
  bench::note("short flows carry the paper's SLO; adaptive replicates "
              "exactly those (flow_bytes <= cutoff are marked "
              "latency-critical by the workload)");
  return 0;
}
