// Tab 4: data-structure microbenchmarks (google-benchmark, real time,
// real hardware). These validate that the building blocks of the data
// plane are in the nanosecond class a DPDK-grade last mile requires.
#include <benchmark/benchmark.h>

#include <array>
#include <atomic>

#include "core/dedup.hpp"
#include "core/reorder.hpp"
#include "net/checksum.hpp"
#include "nf/chain.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/dpi.hpp"
#include "nf/firewall.hpp"
#include "nf/load_balancer.hpp"
#include "nf/nat.hpp"
#include "ring/mpmc_ring.hpp"
#include "ring/spsc_ring.hpp"
#include "sim/event_queue.hpp"
#include "stats/cacheline.hpp"
#include "stats/histogram.hpp"
#include "telem/flight_recorder.hpp"

using namespace mdp;

static void BM_SpscPushPop(benchmark::State& state) {
  ring::SpscRing<std::uint64_t> r(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    r.try_push(v);
    std::uint64_t out;
    r.try_pop(out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPop);

static void BM_SpscBulk32(benchmark::State& state) {
  ring::SpscRing<std::uint64_t> r(1024);
  std::uint64_t buf[32] = {};
  for (auto _ : state) {
    r.try_push_bulk(std::span<std::uint64_t>(buf, 32));
    std::uint64_t out[32];
    r.try_pop_burst(std::span<std::uint64_t>(out, 32));
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SpscBulk32);

// Burst sweep: the amortization the threaded data plane's hot path rides
// on. ns/item should drop steeply from burst 1 to 32 and flatten after.
static void BM_SpscBurst(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  ring::SpscRing<std::uint64_t> r(1024);
  std::vector<std::uint64_t> in(burst, 7), out(burst);
  for (auto _ : state) {
    r.try_push_burst(std::span<std::uint64_t>(in.data(), burst));
    r.try_pop_burst(std::span<std::uint64_t>(out.data(), burst));
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_SpscBurst)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

static void BM_MpmcBurst(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  ring::MpmcRing<std::uint64_t> r(1024);
  std::vector<std::uint64_t> in(burst, 7), out(burst);
  for (auto _ : state) {
    r.try_push_burst(std::span<std::uint64_t>(in.data(), burst));
    r.try_pop_burst(std::span<std::uint64_t>(out.data(), burst));
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_MpmcBurst)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

static void BM_MpmcPushPop(benchmark::State& state) {
  ring::MpmcRing<std::uint64_t> r(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    r.try_push(v);
    std::uint64_t out;
    r.try_pop(out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcPushPop);

// Packed-vs-padded per-path counters, the before/after for padding the
// plane's hot atomics (ThreadedDataPlane::path_completed_, SloMonitor's
// per-path windows) to std::hardware_destructive_interference_size. Each
// thread hammers its own logical counter; in the packed layout adjacent
// counters share a cache line, so every increment fights its neighbors'
// cores for the line (false sharing). The padded row gives each counter
// a line of its own — same code, several times cheaper per increment.
static void BM_CounterPackedMT(benchmark::State& state) {
  static std::array<std::atomic<std::uint64_t>, 8> counters;
  auto& c = counters[static_cast<std::size_t>(state.thread_index()) % 8];
  for (auto _ : state) c.fetch_add(1, std::memory_order_relaxed);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterPackedMT)->Threads(4)->UseRealTime();

static void BM_CounterPaddedMT(benchmark::State& state) {
  static std::array<stats::PaddedAtomicU64, 8> counters;
  auto& c = counters[static_cast<std::size_t>(state.thread_index()) % 8].v;
  for (auto _ : state) c.fetch_add(1, std::memory_order_relaxed);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterPaddedMT)->Threads(4)->UseRealTime();

// The flight recorder's hot-path cost: one enabled check + epoch
// fetch_add + five atomic stores into a preallocated seqlock slot. This
// is the per-event price the ext2 synthetic_telem gate row pays per
// burst (not per packet).
static void BM_FlightRecorderEmit(benchmark::State& state) {
  telem::FlightRecorder rec({.events_per_channel = 4096});
  auto* ch = rec.channel("bench");
  std::uint64_t t = 0;
  for (auto _ : state) {
    ++t;
    ch->emit(t, telem::EventType::kIngressBurst, 0, 32, t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderEmit);

static void BM_HistogramRecord(benchmark::State& state) {
  stats::LatencyHistogram h;
  std::uint64_t v = 12345;
  for (auto _ : state) {
    h.record(v);
    v = v * 6364136223846793005ULL + 1;
    v &= 0xfffffff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void BM_FlowHash(benchmark::State& state) {
  net::FlowKey f{0x0a000001, 0x0b000002, 1234, 80, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::hash_flow(f));
    ++f.src_port;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowHash);

static void BM_DedupExpectAccept(benchmark::State& state) {
  core::Deduplicator d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    auto k = core::Deduplicator::key(1, seq++);
    d.expect(k, 2, 0);
    benchmark::DoNotOptimize(d.accept(k));
    benchmark::DoNotOptimize(d.accept(k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DedupExpectAccept);

static void BM_ReorderInOrder(benchmark::State& state) {
  sim::EventQueue eq;
  net::PacketPool pool(4096, 256);
  core::ReorderBuffer rb(eq, core::ReorderConfig{}, [](net::PacketPtr) {});
  std::uint64_t seq = 0;
  for (auto _ : state) {
    auto p = pool.alloc();
    p->set_length(64);
    p->anno().flow_id = 1;
    p->anno().seq = seq++;
    rb.submit(std::move(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReorderInOrder);

static void BM_AhoCorasickScan(benchmark::State& state) {
  nf::AhoCorasick ac;
  ac.add_pattern("EVILPATTERN");
  ac.add_pattern("MALWARE");
  ac.add_pattern("c2beacon");
  ac.add_pattern("exfil");
  ac.build();
  std::vector<std::byte> payload(state.range(0));
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>('a' + (i % 23));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ac.match_count(payload.data(), payload.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AhoCorasickScan)->Arg(256)->Arg(1450);

static void BM_FirewallDecide(benchmark::State& state) {
  nf::FirewallTable t;
  t.set_engine(state.range(0) ? nf::FirewallTable::Engine::kSrcTrie
                              : nf::FirewallTable::Engine::kLinear);
  std::string err;
  for (const auto& text : nf::make_firewall_rules(64)) {
    auto r = nf::FwRule::parse(text, &err);
    t.add_rule(*r);
  }
  net::FlowKey f{0x0a050505, 0x0a006401, 1000, 80, 17};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.decide(f));
    f.src_ip += 0x100;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FirewallDecide)->Arg(0)->Arg(1);  // 0=linear, 1=trie

static void BM_NatTranslateHit(benchmark::State& state) {
  nf::NatTable t;
  net::FlowKey f{0xc0a80101, 0x08080808, 1000, 443, 6};
  t.translate(f, 0);
  std::uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.translate(f, ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NatTranslateHit);

static void BM_LbSelectHit(benchmark::State& state) {
  nf::LoadBalancerCore lb;
  for (std::uint32_t i = 0; i < 8; ++i)
    lb.add_backend(nf::Backend{0x0ac80001 + i, 1, true});
  net::FlowKey f{0x0b000001, 0x0a006401, 1000, 80, 6};
  lb.select(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb.select(f));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LbSelectHit);

static void BM_PoolAllocRecycle(benchmark::State& state) {
  net::PacketPool pool(256, 2048);
  for (auto _ : state) {
    auto p = pool.alloc();
    benchmark::DoNotOptimize(p.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAllocRecycle);

static void BM_BuildUdpFrame(benchmark::State& state) {
  net::PacketPool pool(256, 2048);
  net::BuildSpec spec;
  spec.flow = {0x0a000001, 0x0a006401, 1000, 80, 17};
  spec.payload_len = 200;
  for (auto _ : state) {
    auto p = net::build_udp(pool, spec);
    benchmark::DoNotOptimize(p.get());
    ++spec.flow.src_port;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildUdpFrame);

static void BM_ChecksumFrame(benchmark::State& state) {
  std::vector<std::byte> buf(state.range(0));
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::byte>(i * 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::checksum(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChecksumFrame)->Arg(64)->Arg(1500);

// Whole-chain batch path: one virtual call per element per burst through
// CheckIPHeader -> Firewall -> Nat -> LoadBalancer. Arg = burst size;
// packet construction is inside the loop for every variant, so only the
// chain traversal cost varies across rows.
static void BM_ChainBatch(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  sim::EventQueue eq;
  net::PacketPool pool(512, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  auto built = nf::build_chain(router, "c",
                               nf::ChainSpec::preset("fw-nat-lb"), &err);
  auto* sink = router.add_element("sink", "Discard", {}, &err);
  if (!built || !sink ||
      !router.connect(built->tail, 0, sink, 0, &err) ||
      !router.initialize(&err)) {
    state.SkipWithError(err.c_str());
    return;
  }
  net::BuildSpec spec;
  spec.flow = {0x0a000001, 0x0a006401, 1000, 80, 17};
  spec.payload_len = 64;
  for (auto _ : state) {
    click::PacketBatch batch;
    batch.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      batch.push_back(net::build_udp(pool, spec));
      spec.flow.src_port =
          static_cast<std::uint16_t>(1000 + (spec.flow.src_port + 1) % 64);
    }
    nf::process_batch(*built, std::move(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_ChainBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// Per-packet push through the same chain, as the batch rows' baseline.
static void BM_ChainPerPacket(benchmark::State& state) {
  sim::EventQueue eq;
  net::PacketPool pool(512, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  auto built = nf::build_chain(router, "c",
                               nf::ChainSpec::preset("fw-nat-lb"), &err);
  auto* sink = router.add_element("sink", "Discard", {}, &err);
  if (!built || !sink ||
      !router.connect(built->tail, 0, sink, 0, &err) ||
      !router.initialize(&err)) {
    state.SkipWithError(err.c_str());
    return;
  }
  net::BuildSpec spec;
  spec.flow = {0x0a000001, 0x0a006401, 1000, 80, 17};
  spec.payload_len = 64;
  for (auto _ : state) {
    built->head->push(0, net::build_udp(pool, spec));
    spec.flow.src_port =
        static_cast<std::uint16_t>(1000 + (spec.flow.src_port + 1) % 64);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainPerPacket);

BENCHMARK_MAIN();
