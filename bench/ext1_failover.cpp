// Extension experiment 1: closed-loop path failure handling.
//
// A path silently blackholes (hypervisor wedges its core) mid-run. Three
// variants of the same run:
//   none    — no detection: every packet RSS hashes onto path 2 is stuck
//             until the stall ends (the path looks IDLE — theft is
//             invisible to backlog-blind dispatch).
//   health  — PathHealthMonitor: the path is marked down after ~3 missed
//             probes and traffic fails over, then returns on recovery.
//   ctrl    — mdp::ctrl Controller: the blackhole produces NO completions,
//             so the SLO windows are empty; detection comes from the
//             backlog_limit arm (work that never comes back), then the
//             full quarantine -> drain -> probation -> reinstate loop runs
//             against the stall.
//
// With --json, emits one mdp.bench_failover.v1 row per variant (plus the
// ctrl variant's decision log) so the recovery numbers are scriptable.
#include "bench_common.hpp"
#include "core/dataplane.hpp"
#include "core/health.hpp"
#include "ctrl/controller.hpp"
#include "net/packet_builder.hpp"
#include "workload/traffic_gen.hpp"

using namespace mdp;

namespace {

enum class Variant { kNone, kHealth, kCtrl };

constexpr sim::TimeNs kFailAt = 20 * sim::kMillisecond;
constexpr sim::TimeNs kFailFor = 30 * sim::kMillisecond;

struct Result {
  stats::LatencyHistogram latency;
  std::uint64_t egressed = 0;
  std::uint64_t emitted = 0;
  std::uint64_t stuck_on_failed_path = 0;
  sim::TimeNs detect_ns = 0;   // blackhole start -> masked
  sim::TimeNs recover_ns = 0;  // blackhole end -> serving again
  std::string ctrl_report;     // ctrl variant only
};

Result run(Variant variant) {
  sim::EventQueue eq;
  net::PacketPool pool(8192, 2048);
  core::DataPlaneConfig cfg;
  cfg.num_paths = 4;
  cfg.dedup_sweep_interval_ns = 0;
  core::MdpDataPlane dp(eq, pool, cfg, core::make_scheduler("rss"));

  Result res;

  core::HealthConfig hcfg;
  hcfg.probe_interval_ns = 200'000;
  hcfg.probe_deadline_ns = 100'000;
  core::PathHealthMonitor hm(eq, dp, hcfg);
  if (variant == Variant::kHealth) {
    hm.set_on_transition([&](std::size_t p, bool up) {
      if (p != 2) return;
      if (!up && res.detect_ns == 0) res.detect_ns = eq.now() - kFailAt;
      if (up) res.recover_ns = eq.now() - (kFailAt + kFailFor);
    });
    hm.start();
  }

  // The controller variant: no completions arrive from a blackholed path,
  // so the SLO arm is blind — backlog_limit (stuck work) is the detector.
  // Probation probes ride the stalled core, so reinstatement happens only
  // once the core genuinely serves again.
  std::unique_ptr<ctrl::SloMonitor> slo_mon;
  std::unique_ptr<ctrl::SimPlaneActuator> actuator;
  std::unique_ptr<ctrl::Controller> controller;
  if (variant == Variant::kCtrl) {
    ctrl::Config ccfg;
    ccfg.slo_target_ns = 500'000;
    ccfg.violation_threshold = 0.25;
    ccfg.min_samples = 8;
    ccfg.backlog_limit = 16;
    ccfg.path.quarantine_after = 2;
    ccfg.path.probation_probes = 8;
    ccfg.probe_grant_per_tick = 8;
    ccfg.min_serving_paths = 2;
    slo_mon = std::make_unique<ctrl::SloMonitor>(cfg.num_paths,
                                                 ccfg.slo_target_ns);
    actuator = std::make_unique<ctrl::SimPlaneActuator>(eq, dp, *slo_mon);
    controller = std::make_unique<ctrl::Controller>(ccfg, *actuator,
                                                    *slo_mon);
    struct Ticker {
      static void arm(sim::EventQueue& eq, ctrl::Controller& c,
                      Result& res) {
        eq.schedule_in(500'000, [&eq, &c, &res] {
          const std::uint64_t q = c.quarantines();
          const std::uint64_t r = c.reinstatements();
          c.tick(static_cast<std::uint64_t>(eq.now()));
          if (c.quarantines() > q && res.detect_ns == 0)
            res.detect_ns = eq.now() - kFailAt;
          if (c.reinstatements() > r && res.recover_ns == 0 &&
              eq.now() > kFailAt + kFailFor)
            res.recover_ns = eq.now() - (kFailAt + kFailFor);
          arm(eq, c, res);
        });
      }
    };
    Ticker::arm(eq, *controller, res);
  }

  dp.set_egress([&](net::PacketPtr p) {
    if (slo_mon)
      slo_mon->observe(p->anno().path_id,
                       p->anno().egress_ns - p->anno().ingress_ns);
    res.latency.record(p->anno().egress_ns - p->anno().ingress_ns);
    ++res.egressed;
  });

  // The blackhole: invisible theft pinning path 2 for 30ms.
  eq.schedule_at(kFailAt, [&] {
    dp.core(2).submit(kFailFor, [](sim::TimeNs) {}, true, false);
  });

  workload::TrafficGenConfig tg;
  tg.seed = 5;
  workload::TrafficGen gen(
      eq, pool, tg, std::make_unique<workload::PoissonArrivals>(600.0),
      [&](net::PacketPtr pkt) { dp.ingress(std::move(pkt)); });
  gen.start(120'000);

  eq.run_until(150 * sim::kMillisecond);
  res.emitted = gen.emitted();
  // Packets dispatched to path 2 during the blackhole = stuck.
  res.stuck_on_failed_path =
      dp.monitor().dispatched(2) - dp.monitor().completed(2) +
      0;  // residual inflight at horizon
  if (controller) res.ctrl_report = controller->report_json();
  return res;
}

std::string row_json(const char* variant, const Result& r) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.bench_failover.v1");
  w.key("variant").value(variant);
  w.key("fail_at_ns").value(static_cast<std::uint64_t>(kFailAt));
  w.key("fail_for_ns").value(static_cast<std::uint64_t>(kFailFor));
  w.key("detect_ns").value(static_cast<std::uint64_t>(r.detect_ns));
  w.key("recover_ns").value(static_cast<std::uint64_t>(r.recover_ns));
  w.key("p99_ns").value(r.latency.p99());
  w.key("p999_ns").value(r.latency.p999());
  w.key("max_ns").value(r.latency.max());
  w.key("emitted").value(r.emitted);
  w.key("egressed").value(r.egressed);
  w.key("stuck_on_failed_path").value(r.stuck_on_failed_path);
  if (!r.ctrl_report.empty()) w.key("ctrl").raw(r.ctrl_report);
  w.end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ext 1", "Silent path blackhole (30ms on path 2 of 4): "
                         "no detection vs health probes vs mdp::ctrl "
                         "(RSS static hashing, ~1.7 Mpps)");
  bench::JsonReportSink sink("ext1", argc, argv);

  auto off = run(Variant::kNone);
  auto health = run(Variant::kHealth);
  auto ctrl = run(Variant::kCtrl);
  sink.add_raw("none", row_json("none", off));
  sink.add_raw("health", row_json("health", health));
  sink.add_raw("ctrl", row_json("ctrl", ctrl));

  stats::Table t({"metric", "no detection", "health monitor", "mdp::ctrl"});
  t.add_row({"p99", bench::us(off.latency.p99()),
             bench::us(health.latency.p99()), bench::us(ctrl.latency.p99())});
  t.add_row({"p99.9", bench::us(off.latency.p999()),
             bench::us(health.latency.p999()),
             bench::us(ctrl.latency.p999())});
  t.add_row({"max latency", bench::us(off.latency.max()),
             bench::us(health.latency.max()), bench::us(ctrl.latency.max())});
  t.add_row({"egressed", stats::fmt_u64(off.egressed),
             stats::fmt_u64(health.egressed), stats::fmt_u64(ctrl.egressed)});
  t.add_row({"failure detection", "-", bench::us(health.detect_ns),
             bench::us(ctrl.detect_ns)});
  t.add_row({"recovery detection", "-", bench::us(health.recover_ns),
             bench::us(ctrl.recover_ns)});
  bench::print_table(t);
  bench::note("health detection = probe_interval x down_after + deadline; "
              "ctrl detection = ticks until backlog_limit breaches twice "
              "(a blackhole makes no completions, so the SLO arm is "
              "blind). ctrl recovery includes drain + probation, so it "
              "trails the health monitor's up-edge by design");
  return sink.flush() ? 0 : 1;
}
