// Extension experiment 1: closed-loop path failure handling.
//
// A path silently blackholes (hypervisor wedges its core) mid-run. Without
// health probing, every packet JSQ sends there is stuck until the stall
// ends (the path looks IDLE — theft is invisible); with the
// PathHealthMonitor, the path is marked down after ~3 missed probes and
// traffic fails over, then returns after recovery.
#include "bench_common.hpp"
#include "core/dataplane.hpp"
#include "core/health.hpp"
#include "net/packet_builder.hpp"
#include "workload/traffic_gen.hpp"

using namespace mdp;

namespace {

struct Result {
  stats::LatencyHistogram latency;
  std::uint64_t egressed = 0;
  std::uint64_t emitted = 0;
  std::uint64_t stuck_on_failed_path = 0;
  sim::TimeNs detect_ns = 0;   // blackhole start -> marked down
  sim::TimeNs recover_ns = 0;  // blackhole end -> marked up
};

Result run(bool with_health) {
  sim::EventQueue eq;
  net::PacketPool pool(8192, 2048);
  core::DataPlaneConfig cfg;
  cfg.num_paths = 4;
  cfg.dedup_sweep_interval_ns = 0;
  core::MdpDataPlane dp(eq, pool, cfg, core::make_scheduler("rss"));

  Result res;
  dp.set_egress([&](net::PacketPtr p) {
    res.latency.record(p->anno().egress_ns - p->anno().ingress_ns);
    ++res.egressed;
  });

  core::HealthConfig hcfg;
  hcfg.probe_interval_ns = 200'000;
  hcfg.probe_deadline_ns = 100'000;
  core::PathHealthMonitor hm(eq, dp, hcfg);

  constexpr sim::TimeNs kFailAt = 20 * sim::kMillisecond;
  constexpr sim::TimeNs kFailFor = 30 * sim::kMillisecond;
  if (with_health) {
    hm.set_on_transition([&](std::size_t p, bool up) {
      if (p != 2) return;
      if (!up && res.detect_ns == 0) res.detect_ns = eq.now() - kFailAt;
      if (up) res.recover_ns = eq.now() - (kFailAt + kFailFor);
    });
    hm.start();
  }

  // The blackhole: invisible theft pinning path 2 for 30ms.
  eq.schedule_at(kFailAt, [&] {
    dp.core(2).submit(kFailFor, [](sim::TimeNs) {}, true, false);
  });

  workload::TrafficGenConfig tg;
  tg.seed = 5;
  workload::TrafficGen gen(
      eq, pool, tg, std::make_unique<workload::PoissonArrivals>(600.0),
      [&](net::PacketPtr pkt) { dp.ingress(std::move(pkt)); });
  gen.start(120'000);

  eq.run_until(150 * sim::kMillisecond);
  res.emitted = gen.emitted();
  // Packets dispatched to path 2 during the blackhole = stuck.
  res.stuck_on_failed_path =
      dp.monitor().dispatched(2) - dp.monitor().completed(2) +
      0;  // residual inflight at horizon
  return res;
}

}  // namespace

int main() {
  bench::banner("Ext 1", "Silent path blackhole (30ms on path 2 of 4): "
                         "health probing vs none (RSS static hashing, ~1.7 Mpps)");

  auto off = run(false);
  auto on = run(true);

  stats::Table t({"metric", "no health monitor", "with health monitor"});
  t.add_row({"p99", bench::us(off.latency.p99()),
             bench::us(on.latency.p99())});
  t.add_row({"p99.9", bench::us(off.latency.p999()),
             bench::us(on.latency.p999())});
  t.add_row({"max latency", bench::us(off.latency.max()),
             bench::us(on.latency.max())});
  t.add_row({"egressed", stats::fmt_u64(off.egressed),
             stats::fmt_u64(on.egressed)});
  t.add_row({"failure detection", "-", bench::us(on.detect_ns)});
  t.add_row({"recovery detection", "-", bench::us(on.recover_ns)});
  bench::print_table(t);
  bench::note("detection = probe_interval x down_after + deadline; only "
              "the packets dispatched inside that window eat the stall");
  return 0;
}
