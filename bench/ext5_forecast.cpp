// Extension experiment 5: predictive tail control (docs/FORECAST.md).
//
// Three claims, one logical clock (every row is deterministic — same
// seed, same numbers, any machine):
//
//   1. A/B lead time: the SAME seeded ramp-into-storm scenario runs
//      twice, reactive-only (forecast disabled) vs predictive (forecast
//      enabled), identical otherwise. A delay ramp on path 1 climbs
//      strictly inside the 10 us SLO — where only a forecast can see
//      trouble — then jumps over it. The predictive controller pre-raises
//      replication while still in SLO, so by storm onset every sequence
//      already has a clean-path copy and the client-visible tail never
//      breaches; the reactive controller eats the onset windows before
//      its levers engage. Both "client breach windows" and "onset p99.9"
//      are computed bench-side from the rig's delivered-latency log with
//      identical bucketing for both runs.
//
//   2. False positives: pre-actuations must be confirmed by a reactive
//      breach. A calm soak (forecast live, clean wire: it must touch
//      NOTHING) gates at <= 5% FP with zero actuations; the storm run's
//      confirmed/false-positive split gates at <= 50% (a rescue that
//      works erases some of its own confirming evidence — docs/
//      FORECAST.md — so a majority-confirmed bar is the honest one).
//
//   3. Capacity (forecast::CapacityModel): a per-path load sweep replays
//      each run's recorded per-window tails through a TailEstimator; the
//      settled level at each load calibrates the monotone load -> tail
//      curve, which then answers "how many paths does total load L need
//      to hold SLO X" — including the honest 0 ("max_paths cannot hold
//      it") case.
//
// JSON rows (--json): schema mdp.bench_forecast.v1, gated hard by
// scripts/check_perf.py against BENCH_forecast.json (strict A/B wins,
// FP ceiling, calm-soak zero actuations).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos_harness.hpp"
#include "forecast/capacity.hpp"
#include "forecast/tail_estimator.hpp"
#include "stats/table.hpp"

using namespace mdp;

namespace {

constexpr std::uint64_t kSloNs = 10'000;
constexpr std::uint64_t kCtrlTickEvery = 64;
constexpr std::uint64_t kWindowNs = kCtrlTickEvery * 1'000;
constexpr std::uint64_t kStormFromIter = 8'000;
constexpr std::uint64_t kStormOnsetNs = kStormFromIter * 1'000;
// The onset span is the first 3 controller windows of the storm: the
// stretch before the reactive confirmation hands control to the
// quarantine/probation machinery, which behaves identically in both
// planes. This is precisely what the pre-hedge's lead time must cover.
constexpr std::uint64_t kOnsetSpanNs = 3 * kWindowNs;
constexpr double kViolationFraction = 0.25;
constexpr std::uint64_t kMinWindowSamples = 16;

/// The A/B scenario. Spraying mode (the multipath plane's normal
/// dispatch): flows are wide enough (96) that resequencer head-of-line
/// victims on the clean path stay under the violation threshold, so the
/// reactive judge quarantines the path that is actually slow. Path 1
/// ramps 2 -> 8 delay ticks in 2000-iteration (~31-window) steps — e2e
/// roughly (d + 1) us, strictly inside the 10 us SLO — then holds 12
/// (a reactive breach) from iteration 8000 to 16000. Late duplicate copies
/// feed the path SLO windows on BOTH runs (observe_late_copies), so a
/// successful pre-hedge cannot erase the evidence that confirms it.
chaos::ChaosScenarioConfig ab_cfg(bool predictive, bool storm) {
  chaos::ChaosScenarioConfig cfg;
  cfg.seed = 11;
  cfg.iterations = 20'000;
  cfg.flows = 96;
  cfg.num_paths = 2;
  cfg.packets_per_iter = 2;
  cfg.drain_per_iter = {8, 8};
  cfg.flow_affinity = false;
  cfg.observe_late_copies = true;
  cfg.ctrl_tick_every = kCtrlTickEvery;

  cfg.ctrl.slo_target_ns = kSloNs;
  cfg.ctrl.violation_threshold = kViolationFraction;
  cfg.ctrl.min_samples = kMinWindowSamples;
  cfg.ctrl.path.quarantine_after = 2;
  cfg.ctrl.path.probation_probes = 8;
  cfg.ctrl.probe_grant_per_tick = 8;
  cfg.ctrl.min_serving_paths = 1;
  cfg.ctrl.hedger.enabled = true;  // the lever BOTH controllers share
  cfg.ctrl.hedge_timeout.enabled = false;
  cfg.ctrl.forecast.enabled = predictive;
  // The pre-hedge fires a full ramp phase (~31 ticks) before the storm;
  // the default 8-tick confirmation window would expire a correct call
  // before the breach it predicted arrives. Lead time is the product —
  // the accounting window must be sized to cover it.
  cfg.ctrl.forecast.confirm_window_ticks = 48;

  io::LoopbackFaults base;
  base.delay_ticks = 2;
  cfg.phases.push_back({0, 1'000'000, 0, base});
  if (storm) {
    std::uint64_t from = 0;
    for (std::uint32_t d : {2u, 4u, 6u, 8u}) {
      cfg.phases.push_back({from, from + 2'000, 1, {.delay_ticks = d}});
      from += 2'000;
    }
    cfg.phases.push_back({from, 16'000, 1, {.delay_ticks = 12}});
    cfg.phases.push_back({16'000, 1'000'000, 1, base});
  } else {
    cfg.phases.push_back({0, 1'000'000, 1, base});
  }
  return cfg;
}

/// The capacity sweep: both paths clean (2-tick wire) plus a sparse
/// straggler lane (0.05% of packets held 10 extra ticks), judge and all
/// levers disarmed — pure measurement. Per-path offered load is
/// packets_per_iter / 2 against a drain budget of 4: the top load (4.5)
/// oversubscribes the drain, so its tail is queue growth, not wire — the
/// cliff the capacity answer exists to keep fleets off of.
chaos::ChaosScenarioConfig cap_cfg(std::uint64_t packets_per_iter) {
  chaos::ChaosScenarioConfig cfg;
  cfg.seed = 7;
  cfg.iterations = 8'000;
  cfg.flows = 96;
  cfg.num_paths = 2;
  cfg.packets_per_iter = packets_per_iter;
  cfg.drain_per_iter = {4, 4};
  cfg.flow_affinity = false;
  cfg.ctrl_tick_every = kCtrlTickEvery;
  cfg.pool_size = 32'768;
  cfg.ctrl.slo_target_ns = kSloNs;
  cfg.ctrl.violation_threshold = 1.1;  // judge disarmed: observe only
  cfg.ctrl.hedger.enabled = false;
  cfg.ctrl.hedge_timeout.enabled = false;
  io::LoopbackFaults lane;
  lane.delay_ticks = 2;
  lane.reorder_rate = 0.0005;
  lane.reorder_extra_ticks = 10;
  cfg.phases.push_back({0, 1'000'000, 0, lane});
  cfg.phases.push_back({0, 1'000'000, 1, lane});
  return cfg;
}

std::uint64_t exact_quantile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
}

/// Client-visible breach windows: bucket the delivered-latency series by
/// egress time into controller-tick windows and count the windows whose
/// SLO-violation fraction clears the same threshold the controller uses.
/// Identical arithmetic for both A/B runs — the rescue's effect on what
/// CLIENTS see, independent of the controller's own path accounting.
std::uint64_t client_breach_windows(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& log) {
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> win;
  for (const auto& [egress_ns, latency_ns] : log) {
    auto& [samples, violations] = win[egress_ns / kWindowNs];
    ++samples;
    if (latency_ns > kSloNs) ++violations;
  }
  std::uint64_t breached = 0;
  for (const auto& [idx, sv] : win) {
    const auto& [samples, violations] = sv;
    if (samples >= kMinWindowSamples &&
        static_cast<double>(violations) >
            kViolationFraction * static_cast<double>(samples))
      ++breached;
  }
  return breached;
}

/// Exact p99.9 of deliveries egressing inside the storm-onset span.
std::uint64_t onset_p999(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& log) {
  std::vector<std::uint64_t> lat;
  for (const auto& [egress_ns, latency_ns] : log)
    if (egress_ns >= kStormOnsetNs && egress_ns < kStormOnsetNs + kOnsetSpanNs)
      lat.push_back(latency_ns);
  return exact_quantile(std::move(lat), 0.999);
}

/// Replay a run's recorded per-window tails through a TailEstimator and
/// return the settled level: the steady-state tail with window noise
/// smoothed out (the calibration input docs/FORECAST.md specifies).
std::uint64_t settled_tail_ns(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& log) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> win;
  for (const auto& [egress_ns, latency_ns] : log)
    win[egress_ns / kWindowNs].push_back(latency_ns);
  forecast::TailEstimator est(1);
  for (auto& [idx, lat] : win) {
    forecast::WindowSample w;
    w.samples = lat.size();
    w.p99_ns = exact_quantile(lat, 0.99);
    w.p999_ns = exact_quantile(std::move(lat), 0.999);
    est.observe(0, w);
  }
  return est.forecast(0).p999_ns;
}

std::string row_json(const std::string& row, double value, const char* unit,
                     const std::vector<std::pair<const char*, double>>&
                         extras = {}) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.bench_forecast.v1");
  w.key("row").value(row);
  w.key("value").value(value);
  w.key("unit").value(unit);
  w.key("wall_clock").value(false);
  for (const auto& [k, v] : extras) w.key(k).value(v);
  w.end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReportSink sink("ext5_forecast", argc, argv);
  bench::banner("ext5_forecast",
                "predictive tail control: forecast A/B, FP budget, capacity");

  // --- 1. A/B: reactive-only vs predictive, same seeded storm -------------
  bench::note("ramp 2..8 delay ticks inside the 10 us SLO, then a 12-tick "
              "plateau; identical seed/wire both runs, only "
              "forecast.enabled differs");

  chaos::ChaosResult reactive = chaos::ChaosRig(ab_cfg(false, true)).run();
  chaos::ChaosResult predictive = chaos::ChaosRig(ab_cfg(true, true)).run();

  const std::uint64_t r_breach = client_breach_windows(reactive.latency_log);
  const std::uint64_t p_breach = client_breach_windows(predictive.latency_log);
  const std::uint64_t r_onset = onset_p999(reactive.latency_log);
  const std::uint64_t p_onset = onset_p999(predictive.latency_log);

  // Lead time: first forecast_prehedge tick vs first reactive quarantine.
  std::uint64_t prehedge_tick = 0, quarantine_tick = 0;
  bool saw_prehedge = false, saw_quarantine = false;
  for (const auto& d : predictive.decisions) {
    if (!saw_prehedge && std::string(d.reason) == "forecast_prehedge") {
      prehedge_tick = d.tick;
      saw_prehedge = true;
    }
    if (!saw_quarantine && d.path < ctrl::Decision::kGranularity &&
        d.to == ctrl::PathState::kQuarantined) {
      quarantine_tick = d.tick;
      saw_quarantine = true;
    }
  }
  const std::uint64_t lead_ticks =
      (saw_prehedge && saw_quarantine && quarantine_tick > prehedge_tick)
          ? quarantine_tick - prehedge_tick
          : 0;

  const double storm_resolved = static_cast<double>(
      predictive.forecast_confirmed + predictive.forecast_false_positives);
  const double storm_fp =
      storm_resolved > 0.0
          ? static_cast<double>(predictive.forecast_false_positives) /
                storm_resolved
          : 0.0;
  const double dup_fraction =
      predictive.generated
          ? static_cast<double>(predictive.copies_sent -
                                predictive.generated) /
                static_cast<double>(predictive.generated)
          : 0.0;

  stats::Table ab({"metric", "reactive", "predictive"});
  ab.add_row({"client breach windows", stats::fmt_u64(r_breach),
              stats::fmt_u64(p_breach)});
  ab.add_row({"storm-onset p99.9", bench::us(r_onset), bench::us(p_onset)});
  ab.add_row({"ctrl breach windows (evidence)",
              stats::fmt_u64(reactive.breach_windows),
              stats::fmt_u64(predictive.breach_windows)});
  ab.add_row({"quarantines", stats::fmt_u64(reactive.quarantines),
              stats::fmt_u64(predictive.quarantines)});
  ab.add_row({"pre-hedges", "0",
              stats::fmt_u64(predictive.forecast_prehedges)});
  bench::print_table(ab);
  std::printf("-- pre-hedge lead over the reactive quarantine: %llu ticks; "
              "storm FP fraction %.3f; duplicate-copy overhead %.2fx\n",
              static_cast<unsigned long long>(lead_ticks), storm_fp,
              dup_fraction);

  if (predictive.forecast_prehedges == 0 || !saw_quarantine) {
    std::fprintf(stderr, "FATAL: A/B story did not materialize (prehedges "
                         "%llu, quarantine seen %d)\n",
                 static_cast<unsigned long long>(
                     predictive.forecast_prehedges),
                 saw_quarantine ? 1 : 0);
    return 1;
  }

  sink.add_raw("breach_windows_reactive",
               row_json("breach_windows_reactive",
                        static_cast<double>(r_breach), "windows"));
  sink.add_raw("breach_windows_predictive",
               row_json("breach_windows_predictive",
                        static_cast<double>(p_breach), "windows"));
  sink.add_raw("breach_windows_avoided",
               row_json("breach_windows_avoided",
                        static_cast<double>(r_breach - p_breach), "windows"));
  sink.add_raw("onset_p999_reactive",
               row_json("onset_p999_reactive", static_cast<double>(r_onset),
                        "logical_ns"));
  sink.add_raw("onset_p999_predictive",
               row_json("onset_p999_predictive", static_cast<double>(p_onset),
                        "logical_ns"));
  sink.add_raw("prehedge_lead_ticks",
               row_json("prehedge_lead_ticks",
                        static_cast<double>(lead_ticks), "ticks"));
  sink.add_raw("false_positive_fraction_storm",
               row_json("false_positive_fraction_storm", storm_fp, "fraction",
                        {{"confirmed",
                          static_cast<double>(predictive.forecast_confirmed)},
                         {"false_positives",
                          static_cast<double>(
                              predictive.forecast_false_positives)}}));
  sink.add_raw("predictive_duplicate_copy_fraction",
               row_json("predictive_duplicate_copy_fraction", dup_fraction,
                        "fraction"));

  // --- 2. Calm soak: a live forecast on a clean plane must touch nothing --
  chaos::ChaosResult calm = chaos::ChaosRig(ab_cfg(true, false)).run();
  const std::uint64_t calm_actuations = calm.forecast_prehedges +
                                        calm.forecast_probes +
                                        calm.forecast_prequarantines;
  const double calm_resolved = static_cast<double>(
      calm.forecast_confirmed + calm.forecast_false_positives);
  const double calm_fp =
      calm_resolved > 0.0
          ? static_cast<double>(calm.forecast_false_positives) / calm_resolved
          : 0.0;
  bench::note(calm_actuations == 0
                  ? "calm soak: zero forecast actuations [ok]"
                  : "calm soak: forecast ACTUATED on a clean plane");
  sink.add_raw("calm_forecast_actuations",
               row_json("calm_forecast_actuations",
                        static_cast<double>(calm_actuations), "actuations"));
  sink.add_raw("false_positive_fraction_calm",
               row_json("false_positive_fraction_calm", calm_fp, "fraction"));
  sink.add_raw("calm_breach_windows",
               row_json("calm_breach_windows",
                        static_cast<double>(client_breach_windows(
                            calm.latency_log)),
                        "windows"));

  // --- 3. Capacity: load sweep -> settled tails -> paths_needed -----------
  bench::note("per-path load sweep at drain 4/tick; settled estimator tail "
              "per load calibrates the capacity curve");

  const std::uint64_t loads_per_iter[] = {2, 4, 6, 9};
  forecast::CapacityModel model;
  stats::Table ct({"load/path", "settled tail p99.9"});
  for (std::uint64_t l : loads_per_iter) {
    chaos::ChaosResult res = chaos::ChaosRig(cap_cfg(l)).run();
    const double load_per_path = static_cast<double>(l) / 2.0;
    const std::uint64_t tail = settled_tail_ns(res.latency_log);
    model.add_observation(load_per_path, static_cast<double>(tail));
    ct.add_row({stats::fmt_double(load_per_path, 1), bench::us(tail)});
    char name[64];
    std::snprintf(name, sizeof(name), "capacity_tail_load_%llu",
                  static_cast<unsigned long long>(l));
    sink.add_raw(name, row_json(name, static_cast<double>(tail), "logical_ns",
                                {{"load_per_path", load_per_path}}));
  }
  model.finalize();
  bench::print_table(ct);

  struct CapQuery {
    const char* name;
    double total_load;
    std::uint64_t slo_ns;
    std::size_t max_paths;
  };
  const CapQuery queries[] = {
      {"capacity_paths_load9_slo10us", 9.0, kSloNs, 8},
      {"capacity_paths_load18_slo10us", 18.0, kSloNs, 8},
      {"capacity_paths_load18_slo10us_max4", 18.0, kSloNs, 4},
  };
  for (const CapQuery& q : queries) {
    const std::size_t k = model.paths_needed(q.total_load, q.slo_ns,
                                             q.max_paths);
    std::printf("-- paths_needed(load %.0f/tick, slo %s, max %zu) = %zu%s\n",
                q.total_load, bench::us(q.slo_ns).c_str(), q.max_paths, k,
                k == 0 ? " (cannot hold the SLO)" : "");
    sink.add_raw(q.name,
                 row_json(q.name, static_cast<double>(k), "paths",
                          {{"total_load_per_tick", q.total_load},
                           {"slo_ns", static_cast<double>(q.slo_ns)},
                           {"max_paths", static_cast<double>(q.max_paths)}}));
  }

  return sink.flush() ? 0 : 1;
}
