// Tab 2: policy x workload p99/p99.9 matrix at the reference operating
// point (k=4, 50% load, 15% duty interference).
//
// Workload columns vary the traffic mix: packet-size profile, flow count,
// and the latency-critical fraction — a small-RPC-heavy mix, a web-search
// mix (bigger packets), and a uniform spray.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

namespace {

struct WorkloadProfile {
  const char* name;
  double mean_payload;
  std::size_t num_flows;
  double lc_fraction;
  bool bursty;
};

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Tab 2", "p99 / p99.9 by policy and workload (k=4, 50% "
                         "load, 15% duty)");
  bench::JsonReportSink sink("tab2", argc, argv);

  const WorkloadProfile profiles[] = {
      {"rpc-small", 120, 512, 0.2, false},
      {"websearch-mix", 700, 256, 0.1, false},
      {"bursty-uniform", 250, 128, 0.1, true},
  };

  stats::Table t({"workload", "policy", "p50", "p99", "p99.9",
                  "dup drops", "hedges"});
  for (const auto& wp : profiles) {
    for (const auto& policy : core::evaluation_policy_names()) {
      harness::ScenarioConfig cfg;
      cfg.policy = policy;
      cfg.num_paths = 4;
      cfg.load = 0.5;
      cfg.packets = 150'000;
      cfg.warmup_packets = 15'000;
      cfg.mean_payload = wp.mean_payload;
      cfg.num_flows = wp.num_flows;
      cfg.lc_fraction = wp.lc_fraction;
      cfg.bursty_arrivals = wp.bursty;
      cfg.interference = true;
      cfg.interference_cfg.duty_cycle = 0.15;
      cfg.interference_cfg.mean_burst_ns = 120'000;
      cfg.seed = 2;
      cfg.trace = sink.active();
      auto res = harness::run_scenario(cfg);
      sink.add(std::string(wp.name) + "/" + policy, cfg, res);
      t.add_row({wp.name, bench::policy_label(policy),
                 bench::us(res.latency.p50()), bench::us(res.latency.p99()),
                 bench::us(res.latency.p999()),
                 stats::fmt_percent(res.duplicate_fraction, 1),
                 stats::fmt_u64(res.hedges)});
    }
  }
  bench::print_table(t);
  return sink.flush() ? 0 : 1;
}
