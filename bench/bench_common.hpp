// Shared output conventions for the experiment binaries: every figure and
// table prints a banner, the parameters it ran with, a column-aligned
// table, and (where useful) the qualitative check the paper's narrative
// depends on.
//
// Machine-readable output: every bench accepts `--json <file>` (or
// `--json=<file>`, "-" for stdout). When present, each scenario run is
// captured as an "mdp.run_report.v1" document and the bench writes
// {"bench": <id>, "runs": [{"label": ..., "report": {...}}, ...]} on exit.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness/report.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"
#include "trace/json.hpp"

namespace mdp::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
}

inline void print_table(const stats::Table& t) {
  std::printf("%s", t.to_text().c_str());
}

inline std::string us(std::uint64_t ns) { return stats::format_ns(ns); }

/// Collects per-run JSON reports when the user asked for them and writes
/// one combined document at the end. Inactive (all no-ops) without --json,
/// so benches pay nothing for the wiring.
class JsonReportSink {
 public:
  /// Parse `--json <file>` / `--json=<file>` out of argv. `id` names the
  /// bench in the output document (e.g. "fig6").
  JsonReportSink(std::string id, int argc, char** argv)
      : id_(std::move(id)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) path_ = argv[i + 1];
      else if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
    }
  }

  /// True when --json was given; benches use this to turn on cfg.trace.
  bool active() const { return !path_.empty(); }

  void add(const std::string& label, const harness::ScenarioConfig& cfg,
           const harness::ScenarioResult& res) {
    if (!active()) return;
    runs_.emplace_back(label, harness::scenario_report_json(cfg, res));
  }

  /// Add a run whose report is a pre-built JSON value (for benches whose
  /// rows aren't harness ScenarioResults, e.g. the fastpath burst sweep).
  void add_raw(const std::string& label, std::string report_json) {
    if (!active()) return;
    runs_.emplace_back(label, std::move(report_json));
  }

  /// Write the combined document. Returns true on success (or inactive).
  bool flush() {
    if (!active()) return true;
    trace::JsonWriter w;
    w.begin_object();
    w.key("bench").value(id_);
    w.key("runs").begin_array();
    for (const auto& [label, report] : runs_) {
      w.begin_object();
      w.key("label").value(label);
      w.key("report").raw(report);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    bool ok = harness::write_text_file(path_, w.take());
    if (!ok)
      std::fprintf(stderr, "failed to write json report to '%s'\n",
                   path_.c_str());
    return ok;
  }

 private:
  std::string id_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> runs_;
};

/// Human label for a policy name used in tables. Parameterized names
/// ("redundant:3", "flowlet:20000" — see core::make_scheduler) are
/// labelled from the base policy with the parameter carried along.
inline std::string policy_label(const std::string& p) {
  if (p == "single") return "SinglePath";
  if (p == "rss") return "RSS-Hash";
  if (p == "rr") return "RoundRobin";
  if (p == "jsq") return "JSQ";
  if (p == "lla") return "LeastLatency";
  if (p == "flowlet") return "Flowlet";
  if (p == "red2") return "Redundant-2";
  if (p == "red3") return "Redundant-3";
  if (p == "red4") return "Redundant-4";
  if (p == "adaptive") return "AdaptiveMDP";
  const std::size_t colon = p.find(':');
  if (colon != std::string::npos) {
    const std::string base = p.substr(0, colon);
    const std::string param = p.substr(colon + 1);
    if (base == "redundant" || base == "red") return "Redundant-" + param;
    if (base == "single") return "SinglePath(" + param + ")";
    if (base == "lla") return "LeastLatency(eps=" + param + ")";
    if (base == "flowlet") return "Flowlet(gap=" + param + "ns)";
    if (base == "adaptive") return "AdaptiveMDP(k=" + param + ")";
  }
  return p;
}

}  // namespace mdp::bench
