// Shared output conventions for the experiment binaries: every figure and
// table prints a banner, the parameters it ran with, a column-aligned
// table, and (where useful) the qualitative check the paper's narrative
// depends on.
#pragma once

#include <cstdio>
#include <string>

#include "stats/histogram.hpp"
#include "stats/table.hpp"

namespace mdp::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
}

inline void print_table(const stats::Table& t) {
  std::printf("%s", t.to_text().c_str());
}

inline std::string us(std::uint64_t ns) { return stats::format_ns(ns); }

/// Human label for a policy name used in tables.
inline std::string policy_label(const std::string& p) {
  if (p == "single") return "SinglePath";
  if (p == "rss") return "RSS-Hash";
  if (p == "rr") return "RoundRobin";
  if (p == "jsq") return "JSQ";
  if (p == "lla") return "LeastLatency";
  if (p == "flowlet") return "Flowlet";
  if (p == "red2") return "Redundant-2";
  if (p == "red3") return "Redundant-3";
  if (p == "red4") return "Redundant-4";
  if (p == "adaptive") return "AdaptiveMDP";
  return p;
}

}  // namespace mdp::bench
