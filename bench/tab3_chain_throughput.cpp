// Tab 3: NF chain cost and throughput by chain length.
//
// Per-chain: modelled per-packet cost, implied single-core Mpps, and the
// measured 4-path aggregate egress rate at 90% offered load; plus the
// per-element cost breakdown of the full chain (what a Click element
// profile would show).
#include "bench_common.hpp"
#include "click/router.hpp"
#include "harness/experiment.hpp"
#include "nf/chain.hpp"

using namespace mdp;

int main() {
  bench::banner("Tab 3", "Chain cost model and achieved throughput "
                         "(k=4 JSQ, 90% offered load, no interference)");

  stats::Table t({"chain", "stages", "cost/pkt", "1-core Mpps (model)",
                  "4-path Mpps (measured)", "p99"});
  for (const auto& name : nf::ChainSpec::preset_names()) {
    harness::ScenarioConfig cfg;
    cfg.policy = "jsq";
    cfg.num_paths = 4;
    cfg.chain = name;
    cfg.load = 0.9;
    cfg.packets = 150'000;
    cfg.warmup_packets = 15'000;
    cfg.seed = 3;
    auto res = harness::run_scenario(cfg);
    double svc = harness::mean_service_ns(cfg);
    t.add_row({name,
               stats::fmt_u64(nf::ChainSpec::preset(name).length()),
               bench::us(res.chain_cost_ns),
               stats::fmt_double(1e3 / svc, 3),
               stats::fmt_double(res.achieved_mpps, 3),
               bench::us(res.latency.p99())});
  }
  bench::print_table(t);

  std::printf("\nPer-element cost breakdown of the 'full' chain:\n");
  sim::EventQueue eq;
  net::PacketPool pool(64, 2048);
  click::Router router(click::Router::Context{&eq, &pool});
  std::string err;
  auto built =
      nf::build_chain(router, "c", nf::ChainSpec::preset("full"), &err);
  if (!built) {
    std::printf("chain build failed: %s\n", err.c_str());
    return 1;
  }
  stats::Table el({"element", "class", "cost/pkt"});
  const click::Element* cur = built->head;
  while (cur != nullptr) {
    el.add_row({cur->name(), cur->class_name(), bench::us(cur->cost_ns())});
    cur = cur->output_element(0);
  }
  bench::print_table(el);
  bench::note("the DPI stage dominates the full chain; Tab 3's 'who is "
              "the bottleneck' answer");
  return 0;
}
