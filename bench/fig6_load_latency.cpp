// Fig 6: latency vs offered load, all policies, k=4 paths, moderate
// background interference on every path (the realistic co-located host).
//
// Expected shape: all policies track each other at low load; SinglePath
// and RSS diverge first (no load awareness); Redundant-2 has the best tail
// at low-mid load but collapses earliest (doubled internal work);
// AdaptiveMDP tracks the best envelope across the range.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

int main(int argc, char** argv) {
  bench::banner("Fig 6", "Latency vs offered load (k=4, fw-nat-lb chain, "
                         "10% duty interference on all paths)");
  bench::JsonReportSink sink("fig6", argc, argv);

  stats::Table t({"load", "policy", "p50", "p99", "p99.9", "egress Mpps"});
  for (double load : {0.1, 0.3, 0.5, 0.7, 0.8, 0.9}) {
    for (const auto& policy : core::evaluation_policy_names()) {
      harness::ScenarioConfig cfg;
      cfg.policy = policy;
      cfg.num_paths = 4;
      cfg.load = load;
      cfg.packets = 150'000;
      cfg.warmup_packets = 15'000;
      cfg.interference = true;
      cfg.interference_cfg.duty_cycle = 0.10;
      cfg.interference_cfg.mean_burst_ns = 100'000;
      cfg.seed = 6;
      cfg.trace = sink.active();
      auto res = harness::run_scenario(cfg);
      sink.add(policy + "@" + stats::fmt_percent(load, 0), cfg, res);
      t.add_row({stats::fmt_percent(load, 0), bench::policy_label(policy),
                 bench::us(res.latency.p50()), bench::us(res.latency.p99()),
                 bench::us(res.latency.p999()),
                 stats::fmt_double(res.achieved_mpps, 3)});
    }
  }
  bench::print_table(t);
  bench::note("watch the red2 column collapse between 50% and 90% load "
              "while adaptive stays near the jsq throughput envelope");
  return sink.flush() ? 0 : 1;
}
