// Fig 8: tail latency vs interference intensity (CPU-theft duty cycle).
//
// Sweep the noisy neighbor from quiet to 40% core theft on all 4 paths.
// Expected: single-path p99.9 grows superlinearly; load-aware multipath
// degrades gracefully; replication holds the tail flattest because a
// packet only stalls when both its paths are stolen simultaneously.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

int main() {
  bench::banner("Fig 8", "p99/p99.9 vs interference duty cycle (k=4, 30% "
                         "load, theft on all paths)");

  const std::vector<std::string> policies = {"single", "rss", "jsq", "red2",
                                             "adaptive"};
  stats::Table t({"duty", "policy", "p50", "p99", "p99.9"});
  for (double duty : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40}) {
    for (const auto& policy : policies) {
      harness::ScenarioConfig cfg;
      cfg.policy = policy;
      cfg.num_paths = 4;
      cfg.load = 0.3;
      cfg.packets = 150'000;
      cfg.warmup_packets = 15'000;
      cfg.interference = duty > 0;
      cfg.interference_cfg.duty_cycle = duty;
      cfg.interference_cfg.mean_burst_ns = 120'000;
      cfg.seed = 8;
      auto res = harness::run_scenario(cfg);
      t.add_row({stats::fmt_percent(duty, 0), bench::policy_label(policy),
                 bench::us(res.latency.p50()), bench::us(res.latency.p99()),
                 bench::us(res.latency.p999())});
    }
  }
  bench::print_table(t);
  return 0;
}
