// Extension experiment 3: the online control plane closing the loop.
//
// A noisy neighbor steals path 2's core in long bursts (~2ms at 60% duty)
// mid-run. Which controller arm helps depends on what the dispatch policy
// can see, so the experiment tells two stories over the same interference:
//
//   quarantine story (policy = rss): static hashing keeps feeding the
//     stolen path its full share through the whole burst, so the evidence
//     is loud — queue backlog past the limit during the theft, then a
//     flood of blown deadlines as the core returns. The controller
//     quarantines/drains path 2, probes it through the gaps, and
//     reinstates it when the core comes back; re-quarantines on the next
//     burst.
//
//   hedging story (policy = redundant:1, least-backlog): backlog-aware
//     dispatch self-limits its exposure — only the couple of packets that
//     were in flight when the theft began get stuck, too few for per-path
//     SLO evidence. But those stragglers ARE the tail, and the hedger sees
//     the serving-tail inflation and raises the replication factor so
//     every packet's second copy completes elsewhere.
//
//   hedge-timeout story (policy = redundant:1 + PID deadline vs a fixed
//     redundant:3): brute-force replication buys its tail with bandwidth —
//     every packet pays 2 extra copies whether the thief is active or not,
//     and at the margin the copies ARE the load. The PID loop instead
//     moves the hedge-fire deadline from measured p50-vs-SLO headroom, so
//     only actual stragglers spawn a second copy. The comparison rows
//     (schema mdp.bench_controller.v1) put p99.9 next to the
//     duplicate-send fraction for both arms.
//
// The decision timelines (parsed back out of the run reports' "ctrl"
// section) show when and why each action fired.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

namespace {

harness::ScenarioConfig base_cfg(const std::string& policy) {
  harness::ScenarioConfig cfg;
  cfg.policy = policy;
  cfg.num_paths = 4;
  cfg.load = 0.3;
  cfg.packets = 150'000;
  cfg.warmup_packets = 15'000;
  cfg.seed = 31;
  // Spans feed the SloMonitor stage-attributed evidence, so quarantine
  // decisions carry a dominant-stage verdict in the timelines below.
  cfg.trace = true;
  return cfg;
}

void add_interference(harness::ScenarioConfig& cfg) {
  // Long theft bursts on one path: each burst spans a full controller
  // window, so the per-path evidence is unambiguous while it lasts.
  cfg.interference = true;
  cfg.interference_cfg.duty_cycle = 0.6;
  cfg.interference_cfg.mean_burst_ns = 2'000'000;
  cfg.interference_paths = {2};
}

void add_ctrl(harness::ScenarioConfig& cfg, std::uint64_t slo_ns) {
  cfg.ctrl_enabled = true;
  // Telemetry plane on: every tick's harvested per-path windows land in
  // the "telem" section of the run report, which is what the p99.9
  // trajectory timelines below (and scripts/report_timeline.py) render.
  cfg.telem_enabled = true;
  // The window matches the burst cadence (bursts ~2ms, gaps ~1.3ms): a
  // stolen core produces no completions *during* the theft, so half the
  // evidence is the post-burst flood of blown deadlines — a 2ms window
  // catches one flood per window, making breaches consecutive. The other
  // half is backlog: a stolen-but-still-fed path blows past backlog_limit
  // mid-burst, which needs no completions at all.
  cfg.ctrl_tick_interval_ns = 2'000'000;
  cfg.ctrl.slo_target_ns = slo_ns;
  cfg.ctrl.violation_threshold = 0.05;
  cfg.ctrl.min_samples = 8;
  cfg.ctrl.backlog_limit = 256;
  cfg.ctrl.path.quarantine_after = 2;
  cfg.ctrl.path.probation_probes = 16;
  cfg.ctrl.probe_grant_per_tick = 16;
  cfg.ctrl.min_serving_paths = 2;
}

void enable_hedger(harness::ScenarioConfig& cfg) {
  cfg.ctrl.hedger.enabled = true;
  cfg.ctrl.hedger.max_replicas = 2;
  cfg.ctrl.hedger.raise_threshold = 1.0;
  cfg.ctrl.hedger.lower_threshold = 0.3;
  cfg.ctrl.hedger.sustain_ticks = 2;
  cfg.ctrl.hedger.cooldown_ticks = 10;
  cfg.ctrl.hedger.min_samples = 32;
}

void enable_hedge_timeout(harness::ScenarioConfig& cfg) {
  // The fine lever: leave the replica count at 1 and let the PID move the
  // hedge-fire deadline inside [max(p50, 5us), SLO] from tail error.
  cfg.ctrl.hedge_timeout.enabled = true;
  cfg.ctrl.hedge_timeout.min_timeout_ns = 5'000;
  cfg.ctrl.hedge_timeout.min_samples = 32;
}

/// One mdp.bench_controller.v1 row: the hedge-timeout story's comparison
/// unit — tail percentiles next to the duplicate-send fraction they cost.
std::string controller_row(const std::string& arm, const std::string& policy,
                           std::uint64_t slo_ns,
                           const harness::ScenarioResult& r) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.bench_controller.v1");
  w.key("arm").value(arm);
  w.key("policy").value(policy);
  w.key("slo_target_ns").value(slo_ns);
  w.key("p50_ns").value(r.latency.p50());
  w.key("p99_ns").value(r.latency.p99());
  w.key("p999_ns").value(r.latency.p999());
  w.key("max_ns").value(r.latency.max());
  w.key("egressed").value(r.egressed);
  w.key("hedges").value(r.hedges);
  w.key("duplicate_send_fraction").value(r.replica_fraction);
  w.key("quarantines").value(r.ctrl_quarantines);
  w.end_object();
  return w.take();
}

void print_decision_timeline(const std::string& ctrl_report) {
  auto doc = trace::JsonValue::parse(ctrl_report);
  if (!doc) {
    bench::note("ctrl report did not parse");
    return;
  }
  const trace::JsonValue* decisions = doc->find("decisions");
  if (!decisions || decisions->items().empty()) {
    bench::note("controller made no decisions");
    return;
  }
  stats::Table t({"t(ms)", "target", "action", "reason", "evidence p99",
                  "backlog", "replicas"});
  for (const auto& d : decisions->items()) {
    const trace::JsonValue* path = d.find("path");
    const std::string target =
        path ? "path " + std::to_string(path->as_u64()) : "hedger";
    const std::string reason = d.find("reason")->as_string();
    std::string action;
    if (path) {
      action =
          d.find("from")->as_string() + " -> " + d.find("to")->as_string();
    } else if (reason == "hedge_raise") {
      action = "+1 replica";
    } else if (reason == "hedge_lower") {
      action = "-1 replica";
    } else if (reason == "hedge_timeout") {
      action =
          "deadline -> " + bench::us(d.find("hedge_timeout_ns")->as_u64());
    } else {
      action = reason;
    }
    // The stage verdict (tentpole evidence) rides along with the reason:
    // "slo_breach [service]" says not just THAT but WHERE.
    std::string reason_col = reason;
    if (const trace::JsonValue* ds = d.find("dominant_stage"))
      reason_col += " [" + ds->as_string() + "]";
    char tbuf[32];
    std::snprintf(tbuf, sizeof(tbuf), "%.2f",
                  d.find("now_ns")->as_double() / 1e6);
    t.add_row({tbuf, target, action, reason_col,
               bench::us(d.find("p99_ns")->as_u64()),
               stats::fmt_u64(d.find("backlog")->as_u64()),
               stats::fmt_u64(d.find("replicas")->as_u64())});
  }
  bench::print_table(t);
}

/// Render the telem time series as a per-path p99.9 trajectory with the
/// controller's decisions overlaid on the tick where they fired — the
/// same view `scripts/report_timeline.py` renders offline from the run
/// report JSON. Rows are strided down to ~max_rows, but any tick whose
/// interval carried a decision is always shown.
void print_telem_timeline(const std::string& telem_report,
                          const std::string& ctrl_report,
                          std::size_t max_rows = 16) {
  auto doc = trace::JsonValue::parse(telem_report);
  if (!doc) {
    bench::note("telem report did not parse");
    return;
  }
  const trace::JsonValue* ticks = doc->find("ticks");
  if (!ticks || ticks->items().empty()) {
    bench::note("telem series is empty");
    return;
  }
  std::vector<std::pair<std::uint64_t, std::string>> marks;
  if (auto cdoc = trace::JsonValue::parse(ctrl_report)) {
    if (const trace::JsonValue* ds = cdoc->find("decisions"))
      for (const auto& d : ds->items()) {
        std::string m = d.find("reason")->as_string();
        if (const trace::JsonValue* p = d.find("path"))
          m += "@" + std::to_string(p->as_u64());
        marks.emplace_back(d.find("now_ns")->as_u64(), std::move(m));
      }
  }
  const auto& rows = ticks->items();
  const std::size_t npaths = rows.front().find("paths")->items().size();
  std::vector<std::string> hdr = {"tick", "t(ms)"};
  for (std::size_t p = 0; p < npaths; ++p)
    hdr.push_back("p99.9 path" + std::to_string(p));
  hdr.push_back("decisions");
  stats::Table t(hdr);
  const std::size_t stride = rows.size() > max_rows
                                 ? (rows.size() + max_rows - 1) / max_rows
                                 : 1;
  std::size_t mi = 0;
  std::string pending;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const trace::JsonValue& row = rows[i];
    const std::uint64_t now = row.find("now_ns")->as_u64();
    for (; mi < marks.size() && marks[mi].first <= now; ++mi) {
      if (!pending.empty()) pending += ", ";
      pending += marks[mi].second;
    }
    if (i % stride != 0 && pending.empty() && i + 1 != rows.size())
      continue;
    std::vector<std::string> cols;
    char tbuf[32];
    std::snprintf(tbuf, sizeof(tbuf), "%.2f",
                  static_cast<double>(now) / 1e6);
    cols.push_back(stats::fmt_u64(row.find("tick")->as_u64()));
    cols.push_back(tbuf);
    for (std::size_t p = 0; p < npaths; ++p) {
      const trace::JsonValue* ps = nullptr;
      for (const auto& e : row.find("paths")->items())
        if (e.find("path")->as_u64() == p) ps = &e;
      cols.push_back(ps && ps->find("samples")->as_u64() > 0
                         ? bench::us(ps->find("p999_ns")->as_u64())
                         : "-");
    }
    cols.push_back(pending.empty() ? "" : pending);
    pending.clear();
    t.add_row(cols);
  }
  bench::print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ext 3", "Online control plane: SLO-driven quarantine + "
                         "adaptive hedging vs a noisy neighbor on path 2");
  bench::JsonReportSink sink("ext3", argc, argv);

  // Quiet calibration — the SLO target is 4x the clean p99 (probes share
  // the data path, so they see real queue wait; 4x keeps healthy paths
  // from flapping on probe jitter).
  auto quiet_cfg = base_cfg("rss");
  auto quiet = harness::run_scenario(quiet_cfg);
  sink.add("quiet", quiet_cfg, quiet);
  const std::uint64_t slo_ns = 4 * quiet.latency.p99();
  bench::note("quiet p99 = " + bench::us(quiet.latency.p99()) +
              "; SLO target set to 4x = " + bench::us(slo_ns));

  // --- quarantine story: static hashing can't dodge the thief -------------
  auto rss_off_cfg = base_cfg("rss");
  add_interference(rss_off_cfg);
  auto rss_off = harness::run_scenario(rss_off_cfg);
  sink.add("rss-ctrl-off", rss_off_cfg, rss_off);

  auto rss_on_cfg = base_cfg("rss");
  add_interference(rss_on_cfg);
  add_ctrl(rss_on_cfg, slo_ns);
  // rss has no replication knob (set_replication is a no-op for static
  // hashing), so the hedger stays off; the redundant run below covers it.
  auto rss_on = harness::run_scenario(rss_on_cfg);
  sink.add("rss-ctrl-on", rss_on_cfg, rss_on);

  // --- hedging story: least-backlog self-limits, stragglers remain --------
  auto red_off_cfg = base_cfg("redundant:1");
  add_interference(red_off_cfg);
  auto red_off = harness::run_scenario(red_off_cfg);
  sink.add("red1-ctrl-off", red_off_cfg, red_off);

  auto red_on_cfg = base_cfg("redundant:1");
  add_interference(red_on_cfg);
  add_ctrl(red_on_cfg, slo_ns);
  enable_hedger(red_on_cfg);
  auto red_on = harness::run_scenario(red_on_cfg);
  sink.add("red1-ctrl-on", red_on_cfg, red_on);

  // --- hedge-timeout story: PID deadline vs brute-force replication -------
  auto red3_cfg = base_cfg("redundant:3");
  add_interference(red3_cfg);
  auto red3 = harness::run_scenario(red3_cfg);
  sink.add("red3-fixed", red3_cfg, red3);

  auto pid_cfg = base_cfg("redundant:1");
  add_interference(pid_cfg);
  add_ctrl(pid_cfg, slo_ns);
  enable_hedge_timeout(pid_cfg);
  auto pid = harness::run_scenario(pid_cfg);
  sink.add("red1-pid-timeout", pid_cfg, pid);

  sink.add_raw("controller-row:red3-fixed",
               controller_row("red3-fixed", "redundant:3", slo_ns, red3));
  sink.add_raw("controller-row:red1-pid-timeout",
               controller_row("red1-pid-timeout", "redundant:1+pid", slo_ns,
                              pid));

  stats::Table t({"metric", "quiet", "rss off", "rss+ctrl", "red:1 off",
                  "red:1+ctrl"});
  auto row = [&](const char* name, auto get) {
    t.add_row({name, get(quiet), get(rss_off), get(rss_on), get(red_off),
               get(red_on)});
  };
  row("p50", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p50());
  });
  row("p99", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p99());
  });
  row("p99.9", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p999());
  });
  row("max", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.max());
  });
  row("egressed", [](const harness::ScenarioResult& r) {
    return stats::fmt_u64(r.egressed);
  });
  row("quarantines", [](const harness::ScenarioResult& r) {
    return r.ctrl_report.empty() ? std::string("-")
                                 : stats::fmt_u64(r.ctrl_quarantines);
  });
  row("reinstatements", [](const harness::ScenarioResult& r) {
    return r.ctrl_report.empty() ? std::string("-")
                                 : stats::fmt_u64(r.ctrl_reinstatements);
  });
  bench::print_table(t);

  // The hedge-timeout story head-to-head: same interference, same SLO —
  // what does each arm's tail cost in duplicate sends?
  std::printf("\nHedge-timeout story — PID deadline vs fixed redundant:3:\n");
  stats::Table ht({"metric", "red:3 fixed", "red:1 + PID deadline"});
  auto ht_row = [&](const char* name, auto get) {
    ht.add_row({name, get(red3), get(pid)});
  };
  ht_row("p50", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p50());
  });
  ht_row("p99", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p99());
  });
  ht_row("p99.9", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p999());
  });
  ht_row("dup-send fraction", [](const harness::ScenarioResult& r) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", r.replica_fraction);
    return std::string(buf);
  });
  ht_row("hedges", [](const harness::ScenarioResult& r) {
    return stats::fmt_u64(r.hedges);
  });
  bench::print_table(ht);

  std::printf("\nDecision timeline — quarantine story (rss + ctrl):\n");
  print_decision_timeline(rss_on.ctrl_report);
  std::printf("\nDecision timeline — hedging story (redundant:1 + ctrl):\n");
  print_decision_timeline(red_on.ctrl_report);
  std::printf(
      "\nDecision timeline — hedge-timeout story (redundant:1 + PID):\n");
  print_decision_timeline(pid.ctrl_report);

  std::printf("\np99.9 trajectory (telem series) — quarantine story:\n");
  print_telem_timeline(rss_on.telem_report, rss_on.ctrl_report);
  std::printf("\np99.9 trajectory (telem series) — hedge-timeout story:\n");
  print_telem_timeline(pid.telem_report, pid.ctrl_report);
  bench::note("the trajectories above are rendered from the \"telem\" "
              "section of the run report; scripts/report_timeline.py "
              "produces the same view (plus CSV) from the JSON offline");

  bench::note("the controller trades a little path capacity (quarantined "
              "windows) or bandwidth (replicas) for the interference tail; "
              "compare p99.9 ctrl on/off against the quiet baseline");
  bench::note("hedge-timeout story: the PID deadline pays for its tail "
              "with hedges fired only at actual stragglers, where fixed "
              "redundant:3 pays 2 extra copies on every packet");
  return sink.flush() ? 0 : 1;
}
