// Extension experiment 3: the online control plane closing the loop.
//
// A noisy neighbor steals path 2's core in long bursts (~2ms at 60% duty)
// mid-run. Which controller arm helps depends on what the dispatch policy
// can see, so the experiment tells two stories over the same interference:
//
//   quarantine story (policy = rss): static hashing keeps feeding the
//     stolen path its full share through the whole burst, so the evidence
//     is loud — queue backlog past the limit during the theft, then a
//     flood of blown deadlines as the core returns. The controller
//     quarantines/drains path 2, probes it through the gaps, and
//     reinstates it when the core comes back; re-quarantines on the next
//     burst.
//
//   hedging story (policy = redundant:1, least-backlog): backlog-aware
//     dispatch self-limits its exposure — only the couple of packets that
//     were in flight when the theft began get stuck, too few for per-path
//     SLO evidence. But those stragglers ARE the tail, and the hedger sees
//     the serving-tail inflation and raises the replication factor so
//     every packet's second copy completes elsewhere.
//
// The decision timelines (parsed back out of the run reports' "ctrl"
// section) show when and why each action fired.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

namespace {

harness::ScenarioConfig base_cfg(const std::string& policy) {
  harness::ScenarioConfig cfg;
  cfg.policy = policy;
  cfg.num_paths = 4;
  cfg.load = 0.3;
  cfg.packets = 150'000;
  cfg.warmup_packets = 15'000;
  cfg.seed = 31;
  return cfg;
}

void add_interference(harness::ScenarioConfig& cfg) {
  // Long theft bursts on one path: each burst spans a full controller
  // window, so the per-path evidence is unambiguous while it lasts.
  cfg.interference = true;
  cfg.interference_cfg.duty_cycle = 0.6;
  cfg.interference_cfg.mean_burst_ns = 2'000'000;
  cfg.interference_paths = {2};
}

void add_ctrl(harness::ScenarioConfig& cfg, std::uint64_t slo_ns) {
  cfg.ctrl_enabled = true;
  // The window matches the burst cadence (bursts ~2ms, gaps ~1.3ms): a
  // stolen core produces no completions *during* the theft, so half the
  // evidence is the post-burst flood of blown deadlines — a 2ms window
  // catches one flood per window, making breaches consecutive. The other
  // half is backlog: a stolen-but-still-fed path blows past backlog_limit
  // mid-burst, which needs no completions at all.
  cfg.ctrl_tick_interval_ns = 2'000'000;
  cfg.ctrl.slo_target_ns = slo_ns;
  cfg.ctrl.violation_threshold = 0.05;
  cfg.ctrl.min_samples = 8;
  cfg.ctrl.backlog_limit = 256;
  cfg.ctrl.path.quarantine_after = 2;
  cfg.ctrl.path.probation_probes = 16;
  cfg.ctrl.probe_grant_per_tick = 16;
  cfg.ctrl.min_serving_paths = 2;
}

void enable_hedger(harness::ScenarioConfig& cfg) {
  cfg.ctrl.hedger.enabled = true;
  cfg.ctrl.hedger.max_replicas = 2;
  cfg.ctrl.hedger.raise_threshold = 1.0;
  cfg.ctrl.hedger.lower_threshold = 0.3;
  cfg.ctrl.hedger.sustain_ticks = 2;
  cfg.ctrl.hedger.cooldown_ticks = 10;
  cfg.ctrl.hedger.min_samples = 32;
}

void print_decision_timeline(const std::string& ctrl_report) {
  auto doc = trace::JsonValue::parse(ctrl_report);
  if (!doc) {
    bench::note("ctrl report did not parse");
    return;
  }
  const trace::JsonValue* decisions = doc->find("decisions");
  if (!decisions || decisions->items().empty()) {
    bench::note("controller made no decisions");
    return;
  }
  stats::Table t({"t(ms)", "target", "action", "reason", "evidence p99",
                  "backlog", "replicas"});
  for (const auto& d : decisions->items()) {
    const trace::JsonValue* path = d.find("path");
    const std::string target =
        path ? "path " + std::to_string(path->as_u64()) : "hedger";
    const std::string action =
        path ? d.find("from")->as_string() + " -> " + d.find("to")->as_string()
             : (d.find("reason")->as_string() == "hedge_raise" ? "+1 replica"
                                                               : "-1 replica");
    char tbuf[32];
    std::snprintf(tbuf, sizeof(tbuf), "%.2f",
                  d.find("now_ns")->as_double() / 1e6);
    t.add_row({tbuf, target, action, d.find("reason")->as_string(),
               bench::us(d.find("p99_ns")->as_u64()),
               stats::fmt_u64(d.find("backlog")->as_u64()),
               stats::fmt_u64(d.find("replicas")->as_u64())});
  }
  bench::print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ext 3", "Online control plane: SLO-driven quarantine + "
                         "adaptive hedging vs a noisy neighbor on path 2");
  bench::JsonReportSink sink("ext3", argc, argv);

  // Quiet calibration — the SLO target is 4x the clean p99 (probes share
  // the data path, so they see real queue wait; 4x keeps healthy paths
  // from flapping on probe jitter).
  auto quiet_cfg = base_cfg("rss");
  auto quiet = harness::run_scenario(quiet_cfg);
  sink.add("quiet", quiet_cfg, quiet);
  const std::uint64_t slo_ns = 4 * quiet.latency.p99();
  bench::note("quiet p99 = " + bench::us(quiet.latency.p99()) +
              "; SLO target set to 4x = " + bench::us(slo_ns));

  // --- quarantine story: static hashing can't dodge the thief -------------
  auto rss_off_cfg = base_cfg("rss");
  add_interference(rss_off_cfg);
  auto rss_off = harness::run_scenario(rss_off_cfg);
  sink.add("rss-ctrl-off", rss_off_cfg, rss_off);

  auto rss_on_cfg = base_cfg("rss");
  add_interference(rss_on_cfg);
  add_ctrl(rss_on_cfg, slo_ns);
  // rss has no replication knob (set_replication is a no-op for static
  // hashing), so the hedger stays off; the redundant run below covers it.
  auto rss_on = harness::run_scenario(rss_on_cfg);
  sink.add("rss-ctrl-on", rss_on_cfg, rss_on);

  // --- hedging story: least-backlog self-limits, stragglers remain --------
  auto red_off_cfg = base_cfg("redundant:1");
  add_interference(red_off_cfg);
  auto red_off = harness::run_scenario(red_off_cfg);
  sink.add("red1-ctrl-off", red_off_cfg, red_off);

  auto red_on_cfg = base_cfg("redundant:1");
  add_interference(red_on_cfg);
  add_ctrl(red_on_cfg, slo_ns);
  enable_hedger(red_on_cfg);
  auto red_on = harness::run_scenario(red_on_cfg);
  sink.add("red1-ctrl-on", red_on_cfg, red_on);

  stats::Table t({"metric", "quiet", "rss off", "rss+ctrl", "red:1 off",
                  "red:1+ctrl"});
  auto row = [&](const char* name, auto get) {
    t.add_row({name, get(quiet), get(rss_off), get(rss_on), get(red_off),
               get(red_on)});
  };
  row("p50", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p50());
  });
  row("p99", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p99());
  });
  row("p99.9", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.p999());
  });
  row("max", [](const harness::ScenarioResult& r) {
    return bench::us(r.latency.max());
  });
  row("egressed", [](const harness::ScenarioResult& r) {
    return stats::fmt_u64(r.egressed);
  });
  row("quarantines", [](const harness::ScenarioResult& r) {
    return r.ctrl_report.empty() ? std::string("-")
                                 : stats::fmt_u64(r.ctrl_quarantines);
  });
  row("reinstatements", [](const harness::ScenarioResult& r) {
    return r.ctrl_report.empty() ? std::string("-")
                                 : stats::fmt_u64(r.ctrl_reinstatements);
  });
  bench::print_table(t);

  std::printf("\nDecision timeline — quarantine story (rss + ctrl):\n");
  print_decision_timeline(rss_on.ctrl_report);
  std::printf("\nDecision timeline — hedging story (redundant:1 + ctrl):\n");
  print_decision_timeline(red_on.ctrl_report);

  bench::note("the controller trades a little path capacity (quarantined "
              "windows) or bandwidth (replicas) for the interference tail; "
              "compare p99.9 ctrl on/off against the quiet baseline");
  return sink.flush() ? 0 : 1;
}
