// Fig 2 (motivation): queue-depth timeline through a noisy-neighbor burst.
//
// Bursty MMPP arrivals plus CPU-theft interference on path 0. With a
// single path the queue balloons during every burst; with 4-path JSQ the
// load shifts to quiet paths and the peak depth stays bounded.
#include <algorithm>

#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

namespace {

harness::ScenarioResult run(const std::string& policy, std::size_t paths) {
  harness::ScenarioConfig cfg;
  cfg.policy = policy;
  cfg.num_paths = paths;
  cfg.load = 0.45;
  cfg.packets = 120'000;
  cfg.warmup_packets = 0;
  cfg.interference = true;
  cfg.interference_cfg.duty_cycle = 0.3;
  cfg.interference_cfg.mean_burst_ns = 500'000;  // long, visible stalls
  cfg.interference_paths = {0};
  cfg.sample_queues_interval_ns = 100'000;  // 100us buckets
  cfg.seed = 23;
  return harness::run_scenario(cfg);
}

double max_depth_at(const harness::ScenarioResult& r, std::size_t bucket) {
  double m = 0;
  for (const auto& series : r.queue_depth_series) {
    auto s = series.samples();
    if (bucket < s.size()) m = std::max(m, s[bucket].value);
  }
  return m;
}

}  // namespace

int main() {
  bench::banner("Fig 2",
                "Queue depth timeline under bursts + interference on "
                "path 0 (max across paths, 100us buckets)");

  auto single = run("single", 1);
  auto jsq = run("jsq", 4);

  std::size_t buckets =
      std::min(single.queue_depth_series[0].samples().size(),
               jsq.queue_depth_series[0].samples().size());
  // Center the printed window on the single-path's worst burst so the
  // balloon-and-drain is visible.
  std::size_t peak_bucket = 0;
  for (std::size_t b = 0; b < buckets; ++b)
    if (max_depth_at(single, b) > max_depth_at(single, peak_bucket))
      peak_bucket = b;
  std::size_t start = peak_bucket > 15 ? peak_bucket - 15 : 0;
  stats::Table t({"t (us)", "single-path depth", "jsq-4path depth"});
  for (std::size_t b = start; b < buckets && b < start + 40; ++b) {
    t.add_row({stats::fmt_u64(b * 100),
               stats::fmt_double(max_depth_at(single, b), 0),
               stats::fmt_double(max_depth_at(jsq, b), 0)});
  }
  bench::print_table(t);

  double peak_single = 0, peak_jsq = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    peak_single = std::max(peak_single, max_depth_at(single, b));
    peak_jsq = std::max(peak_jsq, max_depth_at(jsq, b));
  }
  bench::note("peak queue depth: single=" +
              stats::fmt_double(peak_single, 0) + " vs jsq-4=" +
              stats::fmt_double(peak_jsq, 0));
  bench::note("p99.9 latency: single=" + bench::us(single.latency.p999()) +
              " vs jsq-4=" + bench::us(jsq.latency.p999()));
  return 0;
}
