// Fig 9: what redundancy costs.
//
// Replication factor r in {1..4} across offered loads. Reports the extra
// internal work (replica fraction), the achievable egress rate, and the
// tail. Expected crossover: r=2 wins the tail comfortably below ~50-65%
// load, then queueing from the doubled work inverts the ranking.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

int main() {
  bench::banner("Fig 9", "Redundancy factor vs load: overhead and tail "
                         "(k=4, interference 10%)");

  const std::vector<std::string> policies = {"single", "jsq", "red2",
                                             "red3", "red4"};
  stats::Table t({"load", "policy", "extra copies/pkt", "egress Mpps",
                  "p99", "p99.9"});
  for (double load : {0.3, 0.5, 0.7, 0.85}) {
    for (const auto& policy : policies) {
      harness::ScenarioConfig cfg;
      cfg.policy = policy;
      cfg.num_paths = 4;
      cfg.load = load;
      cfg.packets = 150'000;
      cfg.warmup_packets = 15'000;
      cfg.interference = true;
      cfg.interference_cfg.duty_cycle = 0.10;
      cfg.interference_cfg.mean_burst_ns = 100'000;
      cfg.seed = 9;
      auto res = harness::run_scenario(cfg);
      t.add_row({stats::fmt_percent(load, 0), bench::policy_label(policy),
                 stats::fmt_double(res.replica_fraction, 2),
                 stats::fmt_double(res.achieved_mpps, 3),
                 bench::us(res.latency.p99()),
                 bench::us(res.latency.p999())});
    }
  }
  bench::print_table(t);
  bench::note("r-1 extra copies multiply the internal load by r: red4 at "
              "85% offered load is internally oversubscribed (3.4x) and "
              "its tail explodes; the crossover vs jsq sits between 50% "
              "and 70%");
  return 0;
}
