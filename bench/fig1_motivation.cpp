// Fig 1 (motivation): the last mile's tail under co-location.
//
// One last-mile path (the status quo), moderate load, with and without a
// noisy neighbor stealing the core. The figure the paper opens with: the
// median barely moves, the p99.9 explodes by an order of magnitude or
// more. Prints the latency CDF and the quantile comparison.
#include "bench_common.hpp"
#include "harness/experiment.hpp"

using namespace mdp;

int main() {
  bench::banner("Fig 1", "Last-mile latency CDF: quiet vs noisy neighbor "
                         "(single path, 40% load)");

  harness::ScenarioConfig cfg;
  cfg.policy = "single";
  cfg.num_paths = 1;
  cfg.load = 0.4;
  cfg.packets = 300'000;
  cfg.warmup_packets = 30'000;
  cfg.seed = 1;

  auto quiet = harness::run_scenario(cfg);

  cfg.interference = true;
  cfg.interference_cfg.duty_cycle = 0.25;
  cfg.interference_cfg.mean_burst_ns = 150'000;
  auto noisy = harness::run_scenario(cfg);

  stats::Table t({"quantile", "quiet", "noisy neighbor", "inflation"});
  for (double q : {0.50, 0.90, 0.99, 0.999, 0.9999}) {
    auto a = quiet.latency.quantile(q);
    auto b = noisy.latency.quantile(q);
    char label[16];
    std::snprintf(label, sizeof(label), "p%g", q * 100);
    t.add_row({label, bench::us(a), bench::us(b),
               stats::fmt_double(static_cast<double>(b) /
                                     static_cast<double>(a),
                                 1) +
                   "x"});
  }
  bench::print_table(t);

  double p50_infl = static_cast<double>(noisy.latency.p50()) /
                    static_cast<double>(quiet.latency.p50());
  double p999_infl = static_cast<double>(noisy.latency.p999()) /
                     static_cast<double>(quiet.latency.p999());
  bench::note("median inflation " + stats::fmt_double(p50_infl, 2) +
              "x vs p99.9 inflation " + stats::fmt_double(p999_infl, 1) +
              "x -- the tail, not the median, is the problem");

  // CDF detail: fraction of packets under each latency threshold.
  auto frac_below = [](const stats::LatencyHistogram& h, std::uint64_t v) {
    double best = 0;
    for (auto [value, p] : h.cdf()) {
      if (value > v) break;
      best = p;
    }
    return best;
  };
  stats::Table cdf({"latency <=", "CDF quiet", "CDF noisy"});
  for (std::uint64_t v : {2'000ULL, 5'000ULL, 10'000ULL, 20'000ULL,
                          50'000ULL, 100'000ULL, 200'000ULL, 500'000ULL,
                          1'000'000ULL, 2'000'000ULL}) {
    cdf.add_row({bench::us(v), stats::fmt_double(frac_below(quiet.latency, v), 4),
                 stats::fmt_double(frac_below(noisy.latency, v), 4)});
  }
  std::printf("\nLatency CDF (fraction of packets within bound):\n");
  bench::print_table(cdf);
  return 0;
}
