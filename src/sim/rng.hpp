// Rng: xoshiro256** — fast, high-quality, and (critically for reproduction)
// fully deterministic across platforms for a given seed. Every experiment
// takes an explicit seed; same seed => bit-identical packet trace.
#pragma once

#include <cstdint>

namespace mdp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // modulo bias is negligible for n << 2^64 and determinism is what we need.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [lo, hi).
  double uniform_range(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mdp::sim
