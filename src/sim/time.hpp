// Virtual time: nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace mdp::sim {

using TimeNs = std::uint64_t;

inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

}  // namespace mdp::sim
