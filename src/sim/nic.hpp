// SimNic: a multi-queue NIC front end, the ingress of the simulated host.
// Frames arrive via rx(); RSS steers them to one of `num_queues` bounded RX
// queues by 5-tuple hash (or the caller overrides steering, which is how
// the multipath scheduler takes control of the last mile).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"

namespace mdp::sim {

struct NicConfig {
  std::size_t num_queues = 4;
  std::size_t queue_capacity = 1024;  ///< per-queue; overflow => tail drop
};

class SimNic {
 public:
  explicit SimNic(NicConfig cfg) : cfg_(cfg), queues_(cfg.num_queues) {}

  std::size_t num_queues() const noexcept { return queues_.size(); }

  /// RSS steering: stable hash -> queue.
  std::size_t rss_queue(const net::Packet& pkt) const noexcept {
    return static_cast<std::size_t>(pkt.anno().flow_hash % queues_.size());
  }

  /// Deliver a frame into its RSS queue. Returns false (and drops) if the
  /// queue is full.
  bool rx(net::PacketPtr pkt) {
    // Evaluate the queue before moving the handle: function-argument
    // evaluation order is unspecified, so a one-liner would be UB.
    std::size_t q = rss_queue(*pkt);
    return rx_to(q, std::move(pkt));
  }

  /// Deliver into an explicit queue (multipath steering).
  bool rx_to(std::size_t queue, net::PacketPtr pkt) {
    auto& q = queues_[queue];
    if (q.size() >= cfg_.queue_capacity) {
      ++drops_;
      return false;  // pkt handle recycles on destruction
    }
    q.push_back(std::move(pkt));
    ++received_;
    return true;
  }

  /// Poll one frame from a queue (nullptr handle if empty).
  net::PacketPtr poll(std::size_t queue) {
    auto& q = queues_[queue];
    if (q.empty()) return net::PacketPtr{nullptr};
    net::PacketPtr pkt = std::move(q.front());
    q.pop_front();
    return pkt;
  }

  /// Poll up to `max` frames from a queue into `out`.
  std::size_t poll_burst(std::size_t queue, std::size_t max,
                         std::vector<net::PacketPtr>& out) {
    std::size_t n = 0;
    while (n < max) {
      auto pkt = poll(queue);
      if (!pkt) break;
      out.push_back(std::move(pkt));
      ++n;
    }
    return n;
  }

  std::size_t queue_depth(std::size_t queue) const noexcept {
    return queues_[queue].size();
  }
  std::uint64_t total_received() const noexcept { return received_; }
  std::uint64_t total_drops() const noexcept { return drops_; }

 private:
  NicConfig cfg_;
  std::vector<std::deque<net::PacketPtr>> queues_;
  std::uint64_t received_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace mdp::sim
