// EventQueue: the discrete-event core. A binary heap of (virtual time,
// insertion sequence, callback); ties in time break by insertion order so
// runs are fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace mdp::sim {

class EventQueue {
 public:
  using Callback = UniqueFunction<void()>;

  TimeNs now() const noexcept { return now_; }

  /// Schedule `cb` at absolute virtual time `at_ns` (clamped to now()).
  void schedule_at(TimeNs at_ns, Callback cb) {
    if (at_ns < now_) at_ns = now_;
    heap_.push(Event{at_ns, seq_++, std::move(cb)});
  }

  /// Schedule `cb` `delay_ns` after now().
  void schedule_in(TimeNs delay_ns, Callback cb) {
    schedule_at(now_ + delay_ns, std::move(cb));
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Run the next event; returns false if none pending.
  bool step() {
    if (heap_.empty()) return false;
    // priority_queue::top is const; the event must be moved out, so we
    // const_cast around the API (the object is popped immediately after).
    Event& top = const_cast<Event&>(heap_.top());
    TimeNs t = top.at;
    Callback cb = std::move(top.cb);
    heap_.pop();
    now_ = t;
    ++processed_;
    cb();
    return true;
  }

  /// Run events until the queue is drained.
  void run() {
    while (step()) {
    }
  }

  /// Run events with time <= until_ns; advances now() to until_ns.
  void run_until(TimeNs until_ns) {
    while (!heap_.empty() && heap_.top().at <= until_ns) step();
    if (now_ < until_ns) now_ = until_ns;
  }

  /// Discard all pending events WITHOUT executing them. Call this before
  /// tearing down objects the queued closures reference (packet pools,
  /// cores): closures may own packets whose deleters touch the pool, so
  /// they must be destroyed while it is still alive.
  void clear() {
    while (!heap_.empty()) heap_.pop();
  }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    Callback cb;
    // Min-heap via greater-than: earlier time first, then lower seq.
    bool operator<(const Event& o) const noexcept {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Event> heap_;
  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace mdp::sim
