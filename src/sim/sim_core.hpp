// SimCore: queueing model of one data-plane CPU core running an NF pipeline
// run-to-completion (the way a DPDK/Click worker core does).
//
// Jobs are served FIFO and non-preemptively. Interference ("CPU theft" by a
// co-located noisy neighbor) is modelled as high-priority jobs that jump the
// queue: packets already in service finish, but everything queued behind
// waits out the burst — exactly the stall a vSwitch worker experiences when
// the hypervisor schedules another vCPU on its core.
//
// Two backlog views:
//   backlog_ns()          — ground truth (packets + theft), for analysis
//   visible_backlog_ns()  — what a dispatcher can actually observe (its own
//                           queued packets). CPU theft is invisible at
//                           dispatch time: the hypervisor does not tell the
//                           vSwitch that the core is about to be preempted.
//                           Schedulers get this view; that unpredictability
//                           is precisely why redundancy/hedging has value.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/unique_function.hpp"

namespace mdp::sim {

class SimCore {
 public:
  using Done = UniqueFunction<void(TimeNs completed_at)>;

  SimCore(EventQueue& eq, std::string name = {})
      : eq_(eq), name_(std::move(name)) {}

  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  /// Submit a job taking `service_ns` of core time; `done` fires at
  /// completion. High-priority jobs are served ahead of all queued normal
  /// jobs. `visible` controls whether the job counts toward the
  /// dispatcher-observable backlog: priority *packets* are visible,
  /// interference bursts are not (pass visible=false).
  void submit(TimeNs service_ns, Done done, bool high_priority = false,
              bool visible = true) {
    Job job{service_ns, std::move(done), visible};
    queued_work_ns_ += service_ns;
    if (visible) queued_visible_ns_ += service_ns;
    if (high_priority) {
      queue_.push_front(std::move(job));
    } else {
      queue_.push_back(std::move(job));
    }
    if (!busy_) start_next();
  }

  /// Jobs waiting (not counting the one in service).
  std::size_t queue_depth() const noexcept { return queue_.size(); }
  bool busy() const noexcept { return busy_; }
  /// Total core time consumed by completed or in-service jobs.
  TimeNs busy_ns() const noexcept { return busy_ns_; }
  std::uint64_t jobs_completed() const noexcept { return completed_; }
  const std::string& name() const noexcept { return name_; }

  /// Time the in-service job will complete (0 if idle).
  TimeNs in_service_until() const noexcept { return in_service_until_; }

  /// Ground-truth outstanding work: queued demands (incl. theft) plus the
  /// remaining service of the in-flight job.
  TimeNs backlog_ns() const noexcept {
    return queued_work_ns_ + in_service_remaining();
  }

  /// Dispatcher-observable backlog: queued *packet* work, plus the
  /// in-service remainder only when the in-service job is a packet. A
  /// stolen core looks idle — the whole point.
  TimeNs visible_backlog_ns() const noexcept {
    TimeNs v = queued_visible_ns_;
    if (busy_ && !in_service_theft_) v += in_service_remaining();
    return v;
  }

 private:
  struct Job {
    TimeNs service_ns;
    Done done;
    bool visible;
  };

  TimeNs in_service_remaining() const noexcept {
    return (busy_ && in_service_until_ > eq_.now())
               ? in_service_until_ - eq_.now()
               : 0;
  }

  void start_next() {
    if (queue_.empty()) {
      busy_ = false;
      in_service_until_ = 0;
      in_service_theft_ = false;
      return;
    }
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    queued_work_ns_ -= job.service_ns;
    if (job.visible) queued_visible_ns_ -= job.service_ns;
    in_service_theft_ = !job.visible;
    TimeNs finish = eq_.now() + job.service_ns;
    in_service_until_ = finish;
    busy_ns_ += job.service_ns;
    eq_.schedule_at(finish, [this, done = std::move(job.done)]() mutable {
      ++completed_;
      done(eq_.now());
      start_next();
    });
  }

  EventQueue& eq_;
  std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  bool in_service_theft_ = false;
  TimeNs in_service_until_ = 0;
  TimeNs busy_ns_ = 0;
  TimeNs queued_work_ns_ = 0;    // waiting jobs, incl. theft
  TimeNs queued_visible_ns_ = 0; // waiting packet jobs only
  std::uint64_t completed_ = 0;
};

}  // namespace mdp::sim
