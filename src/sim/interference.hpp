// InterferenceModel: the "noisy neighbor". Generates CPU-theft bursts on a
// SimCore following an on/off renewal process:
//
//   off period ~ Exponential(mean_off)  (core belongs to the data plane)
//   on  period ~ burst distribution     (core stolen; queue backs up)
//
// duty cycle = mean_on / (mean_on + mean_off). Burst lengths default to a
// bounded Pareto so occasional long stalls exist — those are precisely what
// creates the last-mile p99.9 tail the paper targets.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/distributions.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/sim_core.hpp"

namespace mdp::sim {

struct InterferenceConfig {
  double duty_cycle = 0.1;          ///< fraction of core time stolen
  double mean_burst_ns = 100'000;   ///< mean theft burst (100us default)
  double burst_alpha = 1.3;         ///< Pareto tail index for burst length
  double max_burst_ns = 2'000'000;  ///< burst cap (2ms)
  bool pareto_bursts = true;        ///< false => exponential bursts
};

class InterferenceModel {
 public:
  InterferenceModel(EventQueue& eq, SimCore& core, InterferenceConfig cfg,
                    std::uint64_t seed);

  /// Begin injecting theft bursts (schedules the first off->on transition).
  void start();

  std::uint64_t bursts_injected() const noexcept { return bursts_; }
  TimeNs total_stolen_ns() const noexcept { return stolen_ns_; }
  const InterferenceConfig& config() const noexcept { return cfg_; }

 private:
  void schedule_next_burst();

  EventQueue& eq_;
  SimCore& core_;
  InterferenceConfig cfg_;
  Rng rng_;
  DistributionPtr burst_dist_;
  DistributionPtr gap_dist_;
  std::uint64_t bursts_ = 0;
  TimeNs stolen_ns_ = 0;
};

}  // namespace mdp::sim
