// Random-variate distributions used by workloads, service models, and
// interference: exponential, bounded Pareto (heavy tail), lognormal,
// constant, uniform, and empirical CDFs (the DCTCP-style flow-size CDFs).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace mdp::sim {

/// Abstract positive-valued distribution. sample() returns a double; call
/// sites round to integral ns/bytes as appropriate.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double sample(Rng& rng) = 0;
  virtual double mean() const = 0;
};

using DistributionPtr = std::unique_ptr<Distribution>;

class Constant final : public Distribution {
 public:
  explicit Constant(double v) : v_(v) {}
  double sample(Rng&) override { return v_; }
  double mean() const override { return v_; }

 private:
  double v_;
};

class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {}
  double sample(Rng& rng) override { return rng.uniform_range(lo_, hi_); }
  double mean() const override { return (lo_ + hi_) / 2; }

 private:
  double lo_, hi_;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean) : mean_(mean) {}
  double sample(Rng& rng) override {
    // Inverse transform; 1-u avoids log(0).
    return -mean_ * std::log(1.0 - rng.uniform());
  }
  double mean() const override { return mean_; }

 private:
  double mean_;
};

/// Pareto truncated to [min, max]: the standard heavy-tail model for burst
/// durations and flow sizes. alpha <= 1 still has a finite mean thanks to
/// the upper bound.
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double alpha, double min, double max)
      : alpha_(alpha), min_(min), max_(max) {}

  double sample(Rng& rng) override {
    double u = rng.uniform();
    double la = std::pow(min_, alpha_);
    double ha = std::pow(max_, alpha_);
    // Inverse CDF of the truncated Pareto.
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  }

  double mean() const override {
    if (alpha_ == 1.0)
      return (std::log(max_) - std::log(min_)) /
             (1.0 / min_ - 1.0 / max_);
    double la = std::pow(min_, alpha_);
    double ha = std::pow(max_, alpha_);
    return (la / (1.0 - la / ha)) * (alpha_ / (alpha_ - 1.0)) *
           (1.0 / std::pow(min_, alpha_ - 1.0) -
            1.0 / std::pow(max_, alpha_ - 1.0));
  }

 private:
  double alpha_, min_, max_;
};

class LogNormal final : public Distribution {
 public:
  /// Parameterized by the mean and sigma of the underlying normal.
  LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {}

  double sample(Rng& rng) override {
    // Box-Muller; consume two uniforms deterministically.
    double u1 = rng.uniform();
    double u2 = rng.uniform();
    if (u1 <= 0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return std::exp(mu_ + sigma_ * z);
  }

  double mean() const override {
    return std::exp(mu_ + sigma_ * sigma_ / 2.0);
  }

 private:
  double mu_, sigma_;
};

/// Piecewise-linear inverse of an empirical CDF given as (value, cum_prob)
/// knots, cum_prob increasing to 1.0. This is how the web-search and
/// data-mining flow-size distributions from the DCTCP paper are encoded.
class EmpiricalCdf final : public Distribution {
 public:
  explicit EmpiricalCdf(std::vector<std::pair<double, double>> knots);

  double sample(Rng& rng) override;
  double mean() const override { return mean_; }

 private:
  std::vector<std::pair<double, double>> knots_;  // (value, cum prob)
  double mean_ = 0;
};

}  // namespace mdp::sim
