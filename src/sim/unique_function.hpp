// UniqueFunction: minimal type-erased move-only callable (the subset of
// C++23 std::move_only_function we need). Event callbacks capture move-only
// PacketPtr handles, which std::function cannot hold.
#pragma once

#include <memory>
#include <utility>

namespace mdp::sim {

template <typename Sig>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueFunction>)
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  R operator()(Args... args) {
    return impl_->call(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R call(Args... args) = 0;
  };

  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    R call(Args... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace mdp::sim
