#include "sim/distributions.hpp"

#include <algorithm>
#include <stdexcept>

namespace mdp::sim {

EmpiricalCdf::EmpiricalCdf(std::vector<std::pair<double, double>> knots)
    : knots_(std::move(knots)) {
  if (knots_.size() < 2) throw std::invalid_argument("need >= 2 CDF knots");
  if (!std::is_sorted(knots_.begin(), knots_.end(),
                      [](const auto& a, const auto& b) {
                        return a.second < b.second;
                      }))
    throw std::invalid_argument("CDF probabilities must be non-decreasing");
  if (knots_.back().second < 1.0) knots_.back().second = 1.0;

  // Mean of the piecewise-linear distribution: sum of segment midpoints
  // weighted by segment probability mass.
  double m = 0;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    double pmass = knots_[i].second - knots_[i - 1].second;
    m += pmass * (knots_[i].first + knots_[i - 1].first) / 2.0;
  }
  mean_ = m;
}

double EmpiricalCdf::sample(Rng& rng) {
  double u = rng.uniform();
  auto it = std::lower_bound(
      knots_.begin(), knots_.end(), u,
      [](const auto& k, double p) { return k.second < p; });
  if (it == knots_.begin()) return knots_.front().first;
  if (it == knots_.end()) return knots_.back().first;
  auto lo = *(it - 1);
  auto hi = *it;
  double span = hi.second - lo.second;
  double frac = span > 0 ? (u - lo.second) / span : 0.0;
  return lo.first + frac * (hi.first - lo.first);
}

}  // namespace mdp::sim
