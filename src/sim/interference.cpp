#include "sim/interference.hpp"

#include <algorithm>

namespace mdp::sim {

InterferenceModel::InterferenceModel(EventQueue& eq, SimCore& core,
                                     InterferenceConfig cfg,
                                     std::uint64_t seed)
    : eq_(eq), core_(core), cfg_(cfg), rng_(seed) {
  if (cfg_.pareto_bursts) {
    // Solve the bounded-Pareto minimum so the configured mean holds:
    // approximate by scaling a unit-mean draw instead — simpler and exact.
    burst_dist_ = std::make_unique<BoundedPareto>(
        cfg_.burst_alpha, 1.0, cfg_.max_burst_ns / cfg_.mean_burst_ns * 4.0);
  } else {
    burst_dist_ = std::make_unique<Exponential>(1.0);
  }
  double d = std::clamp(cfg_.duty_cycle, 0.0, 0.95);
  double mean_off =
      d > 0 ? cfg_.mean_burst_ns * (1.0 - d) / d : 0.0;
  gap_dist_ = std::make_unique<Exponential>(mean_off);
}

void InterferenceModel::start() {
  if (cfg_.duty_cycle <= 0) return;
  schedule_next_burst();
}

void InterferenceModel::schedule_next_burst() {
  TimeNs gap = static_cast<TimeNs>(gap_dist_->sample(rng_));
  eq_.schedule_in(gap, [this] {
    // Scale the unit draw to the configured mean and cap it.
    double unit = burst_dist_->sample(rng_);
    double scaled = unit / burst_dist_->mean() * cfg_.mean_burst_ns;
    TimeNs burst = static_cast<TimeNs>(
        std::min(scaled, cfg_.max_burst_ns));
    if (burst == 0) burst = 1;
    ++bursts_;
    stolen_ns_ += burst;
    core_.submit(
        burst, [](TimeNs) {}, /*high_priority=*/true, /*visible=*/false);
    // The off-period clock starts when this burst ends, so the long-run
    // stolen fraction converges to the configured duty cycle.
    eq_.schedule_in(burst, [this] { schedule_next_burst(); });
  });
}

}  // namespace mdp::sim
