// Standard Click element library: queues, fan-out, classification, IP
// header manipulation, paint, and simple sources/sinks. NF-grade elements
// (Firewall, NAT, ...) live in mdp::nf and register into the same registry.
//
// Port-count convention: n_inputs()/n_outputs() return -1 for "any number"
// (switch/fan-out elements size themselves from the wiring).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "click/element.hpp"
#include "click/task.hpp"
#include "sim/rng.hpp"

namespace mdp::click {

/// Queue(CAPACITY=1024): push input, pull output, tail-drop on overflow.
class Queue final : public Element {
 public:
  std::string class_name() const override { return "Queue"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 25; }

  void push(int port, net::PacketPtr pkt) override;
  void push_batch(int port, PacketBatch&& batch) override;
  net::PacketPtr pull(int port) override;

  std::size_t size() const noexcept { return q_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t drops() const noexcept { return drops_; }
  std::uint64_t highwater() const noexcept { return highwater_; }

 private:
  std::deque<net::PacketPtr> q_;
  std::size_t capacity_ = 1024;
  std::uint64_t drops_ = 0;
  std::uint64_t highwater_ = 0;
};

/// Unqueue(BURST=1): scheduled task that pulls from input and pushes out.
class Unqueue final : public Element {
 public:
  std::string class_name() const override { return "Unqueue"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  bool initialize(std::string* err) override;
  sim::TimeNs cost_ns() const override { return 15; }

  Task* task() noexcept { return task_.get(); }

 private:
  bool fire();
  std::unique_ptr<Task> task_;
  std::size_t burst_ = 1;
};

/// Null: zero-cost pass-through. Used as the input/output endpoints of
/// compound elements and as a wiring placeholder.
class Null final : public Element {
 public:
  std::string class_name() const override { return "Null"; }
  sim::TimeNs cost_ns() const override { return 0; }
  void push_batch(int, PacketBatch&& batch) override {
    output_push_batch(0, std::move(batch));
  }
};

/// Counter: transparent packet/byte counter.
class Counter final : public Element {
 public:
  std::string class_name() const override { return "Counter"; }
  sim::TimeNs cost_ns() const override { return 15; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override {
    ++packets_;
    bytes_ += pkt->length();
    return pkt;
  }
  void push_batch(int, PacketBatch&& batch) override {
    for (const auto& pkt : batch) {
      if (!pkt) continue;
      ++packets_;
      bytes_ += pkt->length();
    }
    output_push_batch(0, std::move(batch));
  }
  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  void reset() noexcept { packets_ = bytes_ = 0; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Discard: sink; recycles everything pushed into it.
class Discard final : public Element {
 public:
  std::string class_name() const override { return "Discard"; }
  int n_outputs() const override { return 0; }
  sim::TimeNs cost_ns() const override { return 5; }
  void push(int, net::PacketPtr pkt) override {
    ++count_;
    pkt.reset();
  }
  void push_batch(int, PacketBatch&& batch) override {
    for (const auto& pkt : batch)
      if (pkt) ++count_;
    batch.clear();
  }
  std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Tee: replicates each input packet to every connected output (clone via
/// the router's packet pool for outputs beyond the first).
class Tee final : public Element {
 public:
  std::string class_name() const override { return "Tee"; }
  int n_outputs() const override { return -1; }
  bool initialize(std::string* err) override;
  sim::TimeNs cost_ns() const override { return 35; }
  void push(int port, net::PacketPtr pkt) override;
};

/// Classifier(pattern, ..., pattern): Click's byte-pattern classifier.
/// Each pattern is a space-separated conjunction of `offset/hexvalue`
/// or `offset/hexvalue%hexmask` terms; `-` matches everything. A packet
/// goes to the output port of the first matching pattern; packets matching
/// no pattern are dropped.
class Classifier final : public Element {
 public:
  std::string class_name() const override { return "Classifier"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 40; }
  void push(int port, net::PacketPtr pkt) override;

  std::size_t num_patterns() const noexcept { return patterns_.size(); }

 private:
  struct Term {
    std::size_t offset;
    std::vector<std::uint8_t> value;
    std::vector<std::uint8_t> mask;
  };
  struct Pattern {
    std::vector<Term> terms;  // empty => match-all ('-')
  };
  static bool parse_pattern(const std::string& text, Pattern* out,
                            std::string* err);
  bool matches(const Pattern& p, const net::Packet& pkt) const;
  std::vector<Pattern> patterns_;
};

/// HashSwitch(N): output = flow_hash % N. The RSS baseline.
class HashSwitch final : public Element {
 public:
  std::string class_name() const override { return "HashSwitch"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 20; }
  void push(int port, net::PacketPtr pkt) override;

 private:
  std::size_t n_ = 2;
};

/// RoundRobinSwitch(N): rotates over N outputs.
class RoundRobinSwitch final : public Element {
 public:
  std::string class_name() const override { return "RoundRobinSwitch"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 15; }
  void push(int port, net::PacketPtr pkt) override;

 private:
  std::size_t n_ = 2;
  std::size_t next_ = 0;
};

/// RandomSwitch(N, SEED=1): uniform random output.
class RandomSwitch final : public Element {
 public:
  std::string class_name() const override { return "RandomSwitch"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 20; }
  void push(int port, net::PacketPtr pkt) override;

 private:
  std::size_t n_ = 2;
  sim::Rng rng_{1};
};

/// Paint(COLOR): stamps the paint annotation.
class Paint final : public Element {
 public:
  std::string class_name() const override { return "Paint"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 10; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override {
    pkt->anno().paint = color_;
    return pkt;
  }
  void push_batch(int, PacketBatch&& batch) override {
    act_batch_and_forward(std::move(batch));
  }

 private:
  std::uint8_t color_ = 0;
};

/// PaintSwitch: routes by the paint annotation; out-of-range => drop.
class PaintSwitch final : public Element {
 public:
  std::string class_name() const override { return "PaintSwitch"; }
  int n_outputs() const override { return -1; }
  sim::TimeNs cost_ns() const override { return 15; }
  void push(int port, net::PacketPtr pkt) override;
};

/// CheckIPHeader: validates the IPv4 header (version, length, checksum).
/// Valid packets exit port 0; invalid exit port 1 if connected, else drop.
class CheckIPHeader final : public Element {
 public:
  std::string class_name() const override { return "CheckIPHeader"; }
  int n_outputs() const override { return -1; }
  sim::TimeNs cost_ns() const override { return 70; }
  void push(int port, net::PacketPtr pkt) override;
  void push_batch(int port, PacketBatch&& batch) override;

  std::uint64_t drops() const noexcept { return drops_; }

 private:
  std::uint64_t drops_ = 0;
};

/// DecIPTTL: decrements TTL with RFC 1624 incremental checksum update.
/// Expired packets exit port 1 if connected, else drop.
class DecIPTTL final : public Element {
 public:
  std::string class_name() const override { return "DecIPTTL"; }
  int n_outputs() const override { return -1; }
  sim::TimeNs cost_ns() const override { return 45; }
  void push(int port, net::PacketPtr pkt) override;

  std::uint64_t expired() const noexcept { return expired_; }

 private:
  std::uint64_t expired_ = 0;
};

/// Strip(N): remove N bytes from the front (e.g. Strip(14) de-Ethernets).
class Strip final : public Element {
 public:
  std::string class_name() const override { return "Strip"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 10; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override {
    if (pkt->pull(n_) == nullptr) return net::PacketPtr{nullptr};
    return pkt;
  }
  void push_batch(int, PacketBatch&& batch) override {
    act_batch_and_forward(std::move(batch));
  }

 private:
  std::size_t n_ = 14;
};

/// Unstrip(N): re-expose N bytes of headroom at the front.
class Unstrip final : public Element {
 public:
  std::string class_name() const override { return "Unstrip"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 10; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override {
    if (pkt->push(n_) == nullptr) return net::PacketPtr{nullptr};
    return pkt;
  }
  void push_batch(int, PacketBatch&& batch) override {
    act_batch_and_forward(std::move(batch));
  }

 private:
  std::size_t n_ = 14;
};

/// EtherMirror: swaps Ethernet source/destination (reflector).
class EtherMirror final : public Element {
 public:
  std::string class_name() const override { return "EtherMirror"; }
  sim::TimeNs cost_ns() const override { return 30; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;
  void push_batch(int, PacketBatch&& batch) override {
    act_batch_and_forward(std::move(batch));
  }
};

/// SetTrafficClass(BE|LS|LC): marks the multipath traffic class annotation.
class SetTrafficClass final : public Element {
 public:
  std::string class_name() const override { return "SetTrafficClass"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 10; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override {
    pkt->anno().traffic_class = cls_;
    return pkt;
  }
  void push_batch(int, PacketBatch&& batch) override {
    act_batch_and_forward(std::move(batch));
  }

 private:
  net::TrafficClass cls_ = net::TrafficClass::kBestEffort;
};

/// InfiniteSource(LIMIT=1024, SIZE=64, BURST=1): task-driven UDP packet
/// source for self-contained router configs. Requires a pool in context.
class InfiniteSource final : public Element {
 public:
  std::string class_name() const override { return "InfiniteSource"; }
  int n_inputs() const override { return 0; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  bool initialize(std::string* err) override;
  sim::TimeNs cost_ns() const override { return 20; }

  std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  bool fire();
  std::unique_ptr<Task> task_;
  std::uint64_t limit_ = 1024;
  std::size_t payload_ = 64;
  std::size_t burst_ = 1;
  std::uint64_t emitted_ = 0;
};

/// Print(LABEL): logs "<label>: len=N flow=..." per packet to stdout.
class Print final : public Element {
 public:
  std::string class_name() const override { return "Print"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 10; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;

 private:
  std::string label_ = "Print";
};

/// Parse helpers shared by element configure() methods.
bool parse_size_arg(const std::string& arg, std::size_t* out);
bool parse_u64_arg(const std::string& arg, std::uint64_t* out);

}  // namespace mdp::click
