// ElementRegistry: maps Click class names ("Queue", "Tee", "Firewall") to
// factories so Router can instantiate elements from config text. Elements
// self-register via MDP_REGISTER_ELEMENT at static-init time.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "click/element.hpp"

namespace mdp::click {

class ElementRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Element>()>;

  static ElementRegistry& instance();

  void register_class(const std::string& name, Factory factory);
  std::unique_ptr<Element> create(const std::string& name) const;
  bool has(const std::string& name) const;
  std::vector<std::string> class_names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Helper whose constructor performs the registration.
struct ElementRegistration {
  ElementRegistration(const std::string& name, ElementRegistry::Factory f) {
    ElementRegistry::instance().register_class(name, std::move(f));
  }
};

#define MDP_REGISTER_ELEMENT(cls, click_name)                         \
  static ::mdp::click::ElementRegistration mdp_reg_##cls(             \
      click_name, []() -> std::unique_ptr<::mdp::click::Element> {    \
        return std::make_unique<cls>();                               \
      })

}  // namespace mdp::click
