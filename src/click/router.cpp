#include "click/router.hpp"

#include <cctype>
#include <set>
#include <sstream>

#include "click/registry.hpp"

namespace mdp::click {

namespace {

// --- lexer -----------------------------------------------------------------

enum class TokKind { kIdent, kColonColon, kArrow, kLBracket, kRBracket,
                     kSemicolon, kInt, kArgs, kBody, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;
};

/// Strip // and /* */ comments (preserving newlines for line numbers).
std::string strip_comments(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size();) {
    if (in[i] == '/' && i + 1 < in.size() && in[i + 1] == '/') {
      while (i < in.size() && in[i] != '\n') ++i;
    } else if (in[i] == '/' && i + 1 < in.size() && in[i + 1] == '*') {
      i += 2;
      while (i + 1 < in.size() && !(in[i] == '*' && in[i + 1] == '/')) {
        if (in[i] == '\n') out += '\n';
        ++i;
      }
      i += 2;
    } else {
      out += in[i++];
    }
  }
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string text) : text_(strip_comments(std::move(text))) {}

  Token next() {
    skip_ws();
    if (pos_ >= text_.size()) return {TokKind::kEnd, "", line_};
    char c = text_[pos_];
    if (c == ';') {
      ++pos_;
      return {TokKind::kSemicolon, ";", line_};
    }
    if (c == '[') {
      ++pos_;
      return {TokKind::kLBracket, "[", line_};
    }
    if (c == ']') {
      ++pos_;
      return {TokKind::kRBracket, "]", line_};
    }
    if (c == ':' && peek(1) == ':') {
      pos_ += 2;
      return {TokKind::kColonColon, "::", line_};
    }
    if (c == '-' && peek(1) == '>') {
      pos_ += 2;
      return {TokKind::kArrow, "->", line_};
    }
    if (c == '(') return lex_balanced('(', ')', TokKind::kArgs);
    if (c == '{') return lex_balanced('{', '}', TokKind::kBody);
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        num += text_[pos_++];
      return {TokKind::kInt, num, line_};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '@') {
      std::string id;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '@' ||
              text_[pos_] == '/'))
        id += text_[pos_++];
      return {TokKind::kIdent, id, line_};
    }
    return {TokKind::kEnd, std::string(1, c), line_};  // unknown char
  }

  int line() const noexcept { return line_; }

 private:
  char peek(std::size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  /// Capture a balanced-delimiter blob as one token (contents only).
  Token lex_balanced(char open, char close, TokKind kind) {
    int depth = 0;
    bool in_quote = false;
    std::string blob;
    int start_line = line_;
    for (; pos_ < text_.size(); ++pos_) {
      char c = text_[pos_];
      if (c == '\n') ++line_;
      if (in_quote) {
        if (c == '"') in_quote = false;
        blob += c;
        continue;
      }
      if (c == '"') {
        in_quote = true;
        blob += c;
        continue;
      }
      if (c == open) {
        if (depth++ > 0) blob += c;
        continue;
      }
      if (c == close) {
        if (--depth == 0) {
          ++pos_;
          return {kind, blob, start_line};
        }
        blob += c;
        continue;
      }
      blob += c;
    }
    return {TokKind::kEnd, blob, start_line};  // unbalanced
  }

  std::string text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Split an args blob at top-level commas, trimming whitespace; fully
/// quoted arguments lose their protective quotes.
std::vector<std::string> split_args(const std::string& blob) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  bool in_quote = false;
  for (char c : blob) {
    if (in_quote) {
      if (c == '"') in_quote = false;
      cur += c;
      continue;
    }
    switch (c) {
      case '"':
        in_quote = true;
        cur += c;
        break;
      case '(':
        ++depth;
        cur += c;
        break;
      case ')':
        --depth;
        cur += c;
        break;
      case ',':
        if (depth == 0) {
          out.push_back(cur);
          cur.clear();
        } else {
          cur += c;
        }
        break;
      default:
        cur += c;
    }
  }
  out.push_back(cur);
  for (auto& a : out) {
    std::size_t b = a.find_first_not_of(" \t\n\r");
    std::size_t e = a.find_last_not_of(" \t\n\r");
    a = (b == std::string::npos) ? std::string{} : a.substr(b, e - b + 1);
    if (a.size() >= 2 && a.front() == '"' && a.back() == '"')
      a = a.substr(1, a.size() - 2);
  }
  if (out.size() == 1 && out[0].empty()) out.clear();
  return out;
}

struct Endpoint {
  std::string name;  // resolved element/instance name
  int in_port = 0;
  int out_port = 0;
};

}  // namespace

// --- Router ------------------------------------------------------------------

Element* Router::add_element(const std::string& name, const std::string& cls,
                             const std::vector<std::string>& args,
                             std::string* err) {
  if (find(name) != nullptr || compound_instances_.count(name) != 0) {
    *err = "duplicate element name '" + name + "'";
    return nullptr;
  }
  auto elem = ElementRegistry::instance().create(cls);
  if (!elem) {
    *err = "unknown element class '" + cls + "'";
    return nullptr;
  }
  elem->set_name(name);
  elem->set_router(this);
  if (!elem->configure(args, err)) {
    if (err->empty()) *err = "configure failed";
    *err = name + " :: " + cls + ": " + *err;
    return nullptr;
  }
  elements_.push_back(std::move(elem));
  return elements_.back().get();
}

Element* Router::instantiate(const std::string& name, const std::string& cls,
                             const std::vector<std::string>& args,
                             std::string* err) {
  auto def = compound_defs_.find(cls);
  if (def == compound_defs_.end())
    return add_element(name, cls, args, err);

  // Compound instantiation: pass-through endpoints + prefixed body.
  if (!args.empty()) {
    *err = "compound element '" + cls + "' takes no arguments";
    return nullptr;
  }
  if (find(name) != nullptr || compound_instances_.count(name) != 0) {
    *err = "duplicate element name '" + name + "'";
    return nullptr;
  }
  Element* in = add_element(name + "/input", "Null", {}, err);
  if (in == nullptr) return nullptr;
  Element* out = add_element(name + "/output", "Null", {}, err);
  if (out == nullptr) return nullptr;
  compound_instances_[name] = {in, out};
  if (!configure_impl(def->second, name + "/", err)) return nullptr;
  return in;
}

Element* Router::adopt(std::unique_ptr<Element> elem,
                       const std::string& name) {
  if (find(name) != nullptr) return nullptr;
  elem->set_name(name);
  elem->set_router(this);
  elements_.push_back(std::move(elem));
  return elements_.back().get();
}

Element* Router::resolve(const std::string& name, bool as_source) const {
  auto it = compound_instances_.find(name);
  if (it != compound_instances_.end())
    return as_source ? it->second.output : it->second.input;
  return find(name);
}

bool Router::connect(Element* from, int from_port, Element* to, int to_port,
                     std::string* err) {
  if (from->n_outputs() >= 0 && from_port >= from->n_outputs()) {
    *err = from->name() + " has no output port " + std::to_string(from_port);
    return false;
  }
  if (to->n_inputs() >= 0 && to_port >= to->n_inputs()) {
    *err = to->name() + " has no input port " + std::to_string(to_port);
    return false;
  }
  if (from->output_connected(from_port)) {
    *err = from->name() + " output " + std::to_string(from_port) +
           " already connected";
    return false;
  }
  from->connect_output(from_port, to, to_port);
  to->set_input(to_port, from, from_port);
  return true;
}

Element* Router::find(const std::string& name) const {
  for (const auto& e : elements_)
    if (e->name() == name) return e.get();
  return nullptr;
}

bool Router::initialize(std::string* err) {
  for (auto& e : elements_) {
    std::string local;
    if (!e->initialize(&local)) {
      *err = e->name() + ": " + (local.empty() ? "initialize failed" : local);
      return false;
    }
  }
  initialized_ = true;
  return true;
}

sim::TimeNs Router::chain_cost(const Element* head) const {
  sim::TimeNs total = 0;
  std::set<const Element*> seen;  // guard against cycles
  const Element* cur = head;
  while (cur != nullptr && seen.insert(cur).second) {
    total += cur->cost_ns();
    cur = cur->output_element(0);
  }
  return total;
}

bool Router::configure(const std::string& config_text, std::string* err) {
  return configure_impl(config_text, "", err);
}

bool Router::configure_impl(const std::string& config_text,
                            const std::string& prefix, std::string* err) {
  Lexer lex(config_text);
  Token tok = lex.next();

  auto fail = [&](const std::string& msg) {
    std::ostringstream os;
    os << "line " << tok.line << ": " << msg;
    *err = os.str();
    return false;
  };

  // `input` / `output` inside a compound body refer to the instance's
  // pass-through endpoints; everything else gets the scope prefix.
  auto scoped = [&](const std::string& ref) { return prefix + ref; };

  /// True if `ref` names something instantiable as an anonymous element.
  auto known_class = [&](const std::string& ref) {
    return ElementRegistry::instance().has(ref) ||
           compound_defs_.count(ref) != 0;
  };
  auto exists = [&](const std::string& scoped_name) {
    return find(scoped_name) != nullptr ||
           compound_instances_.count(scoped_name) != 0;
  };

  // Parse one endpoint: [ '[' int ']' ] ref [ args ] [ '[' int ']' ].
  auto parse_endpoint = [&](Endpoint* out) -> bool {
    out->in_port = 0;
    out->out_port = 0;
    if (tok.kind == TokKind::kLBracket) {
      tok = lex.next();
      if (tok.kind != TokKind::kInt) return fail("expected port number");
      out->in_port = std::stoi(tok.text);
      tok = lex.next();
      if (tok.kind != TokKind::kRBracket) return fail("expected ']'");
      tok = lex.next();
    }
    if (tok.kind != TokKind::kIdent) return fail("expected element name");
    std::string ref = tok.text;
    tok = lex.next();

    // Inline declaration in a connection: `... -> name :: Class(args) -> ...`
    if (tok.kind == TokKind::kColonColon) {
      tok = lex.next();
      if (tok.kind != TokKind::kIdent)
        return fail("expected class name after '::'");
      std::string cls = tok.text;
      tok = lex.next();
      std::vector<std::string> args;
      if (tok.kind == TokKind::kArgs) {
        args = split_args(tok.text);
        tok = lex.next();
      }
      if (instantiate(scoped(ref), cls, args, err) == nullptr) return false;
      out->name = scoped(ref);
      if (tok.kind == TokKind::kLBracket) {
        tok = lex.next();
        if (tok.kind != TokKind::kInt) return fail("expected port number");
        out->out_port = std::stoi(tok.text);
        tok = lex.next();
        if (tok.kind != TokKind::kRBracket) return fail("expected ']'");
        tok = lex.next();
      }
      return true;
    }

    if (tok.kind == TokKind::kArgs) {
      std::string anon = scoped(ref + "@" + std::to_string(++anon_counter_));
      if (instantiate(anon, ref, split_args(tok.text), err) == nullptr)
        return false;
      out->name = anon;
      tok = lex.next();
    } else if (!exists(scoped(ref)) && known_class(ref)) {
      std::string anon = scoped(ref + "@" + std::to_string(++anon_counter_));
      if (instantiate(anon, ref, {}, err) == nullptr) return false;
      out->name = anon;
    } else {
      out->name = scoped(ref);
    }

    if (tok.kind == TokKind::kLBracket) {
      tok = lex.next();
      if (tok.kind != TokKind::kInt) return fail("expected port number");
      out->out_port = std::stoi(tok.text);
      tok = lex.next();
      if (tok.kind != TokKind::kRBracket) return fail("expected ']'");
      tok = lex.next();
    }
    return true;
  };

  while (tok.kind != TokKind::kEnd) {
    if (tok.kind == TokKind::kSemicolon) {
      tok = lex.next();
      continue;
    }

    if (tok.kind == TokKind::kIdent) {
      std::string first = tok.text;
      tok = lex.next();

      // elementclass Name { body };
      if (first == "elementclass") {
        if (tok.kind != TokKind::kIdent)
          return fail("expected compound class name after 'elementclass'");
        std::string cname = tok.text;
        tok = lex.next();
        if (tok.kind != TokKind::kBody)
          return fail("expected '{ ... }' body for elementclass '" +
                      cname + "'");
        if (ElementRegistry::instance().has(cname) ||
            compound_defs_.count(cname))
          return fail("elementclass '" + cname + "' shadows existing class");
        compound_defs_[cname] = tok.text;
        tok = lex.next();
        continue;
      }

      // Declaration: name :: Class(args)
      if (tok.kind == TokKind::kColonColon) {
        tok = lex.next();
        if (tok.kind != TokKind::kIdent)
          return fail("expected class name after '::'");
        std::string cls = tok.text;
        tok = lex.next();
        std::vector<std::string> args;
        if (tok.kind == TokKind::kArgs) {
          args = split_args(tok.text);
          tok = lex.next();
        }
        if (instantiate(scoped(first), cls, args, err) == nullptr)
          return false;
        continue;
      }

      // Connection chain starting at `first`.
      Endpoint from;
      from.name = scoped(first);
      if (tok.kind == TokKind::kArgs) {
        std::string anon =
            scoped(first + "@" + std::to_string(++anon_counter_));
        if (instantiate(anon, first, split_args(tok.text), err) == nullptr)
          return false;
        from.name = anon;
        tok = lex.next();
      } else if (!exists(from.name) && known_class(first) &&
                 tok.kind == TokKind::kArrow) {
        std::string anon =
            scoped(first + "@" + std::to_string(++anon_counter_));
        if (instantiate(anon, first, {}, err) == nullptr) return false;
        from.name = anon;
      }
      if (tok.kind == TokKind::kLBracket) {
        tok = lex.next();
        if (tok.kind != TokKind::kInt) return fail("expected port number");
        from.out_port = std::stoi(tok.text);
        tok = lex.next();
        if (tok.kind != TokKind::kRBracket) return fail("expected ']'");
        tok = lex.next();
      }
      if (tok.kind == TokKind::kSemicolon || tok.kind == TokKind::kEnd) {
        if (!exists(from.name))
          return fail("unknown element '" + from.name + "'");
        continue;
      }
      if (tok.kind != TokKind::kArrow)
        return fail("expected '->' or '::' after '" + first + "'");

      while (tok.kind == TokKind::kArrow) {
        tok = lex.next();
        Endpoint to;
        if (!parse_endpoint(&to)) return false;
        Element* fe = resolve(from.name, /*as_source=*/true);
        Element* te = resolve(to.name, /*as_source=*/false);
        if (fe == nullptr)
          return fail("unknown element '" + from.name + "'");
        if (te == nullptr) return fail("unknown element '" + to.name + "'");
        if (!connect(fe, from.out_port, te, to.in_port, err)) return false;
        from = to;
        from.out_port = to.out_port;
      }
      continue;
    }

    return fail("unexpected token '" + tok.text + "'");
  }
  return true;
}

}  // namespace mdp::click
