#include "click/registry.hpp"

namespace mdp::click {

ElementRegistry& ElementRegistry::instance() {
  static ElementRegistry reg;
  return reg;
}

void ElementRegistry::register_class(const std::string& name,
                                     Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<Element> ElementRegistry::create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second();
}

bool ElementRegistry::has(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> ElementRegistry::class_names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [k, v] : factories_) out.push_back(k);
  return out;
}

}  // namespace mdp::click
