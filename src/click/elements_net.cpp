#include "click/elements_net.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "click/elements.hpp"
#include "click/registry.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"

namespace mdp::click {

// --- VxlanEncap ----------------------------------------------------------------

bool VxlanEncap::configure(const std::vector<std::string>& args,
                           std::string* err) {
  if (args.size() != 3) {
    *err = "VxlanEncap(VNI, LOCAL_VTEP, REMOTE_VTEP)";
    return false;
  }
  char* end = nullptr;
  unsigned long vni = std::strtoul(args[0].c_str(), &end, 10);
  if (*end != '\0' || vni >= (1u << 24)) {
    *err = "VxlanEncap: VNI must be 0..2^24-1";
    return false;
  }
  tunnel_.vni = static_cast<std::uint32_t>(vni);
  if (!net::ipv4_from_string(args[1], &tunnel_.local_vtep) ||
      !net::ipv4_from_string(args[2], &tunnel_.remote_vtep)) {
    *err = "VxlanEncap: bad VTEP address";
    return false;
  }
  return true;
}

net::PacketPtr VxlanEncap::simple_action(net::PacketPtr pkt) {
  if (!net::vxlan_encap(*pkt, tunnel_)) {
    ++failed_;
    return net::PacketPtr{nullptr};
  }
  ++encapped_;
  return pkt;
}

// --- VxlanDecap ----------------------------------------------------------------

bool VxlanDecap::configure(const std::vector<std::string>& args,
                           std::string* err) {
  if (args.empty()) return true;  // any VNI
  if (args.size() != 1) {
    *err = "VxlanDecap(VNI|any)";
    return false;
  }
  if (args[0] == "any") {
    match_any_ = true;
    return true;
  }
  char* end = nullptr;
  unsigned long vni = std::strtoul(args[0].c_str(), &end, 10);
  if (*end != '\0' || vni >= (1u << 24)) {
    *err = "VxlanDecap: bad VNI";
    return false;
  }
  match_any_ = false;
  expected_vni_ = static_cast<std::uint32_t>(vni);
  return true;
}

void VxlanDecap::push(int, net::PacketPtr pkt) {
  auto info = net::vxlan_decap(*pkt);
  if (!info || (!match_any_ && info->vni != expected_vni_)) {
    ++rejected_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return;
  }
  last_vni_ = info->vni;
  ++decapped_;
  output_push(0, std::move(pkt));
}

// --- VLAN ------------------------------------------------------------------------

bool VLANEncap::configure(const std::vector<std::string>& args,
                          std::string* err) {
  if (args.empty() || args.size() > 2) {
    *err = "VLANEncap(TAG [, PRIORITY])";
    return false;
  }
  std::size_t tag;
  if (!parse_size_arg(args[0], &tag) || tag >= 4096) {
    *err = "VLANEncap: TAG must be 0..4095";
    return false;
  }
  std::size_t prio = 0;
  if (args.size() == 2 && (!parse_size_arg(args[1], &prio) || prio > 7)) {
    *err = "VLANEncap: PRIORITY must be 0..7";
    return false;
  }
  tci_ = static_cast<std::uint16_t>((prio << 13) | tag);
  return true;
}

net::PacketPtr VLANEncap::simple_action(net::PacketPtr pkt) {
  if (pkt->length() < net::kEthernetHeaderLen) return net::PacketPtr{nullptr};
  // Insert 4 bytes after the two MACs: shift the MACs forward.
  std::byte* front = pkt->push(4);
  if (front == nullptr) return net::PacketPtr{nullptr};
  std::memmove(front, front + 4, 12);
  net::store_be16(front + 12, net::kEtherTypeVlan);
  net::store_be16(front + 14, tci_);
  return pkt;
}

net::PacketPtr VLANDecap::simple_action(net::PacketPtr pkt) {
  if (pkt->length() < net::kEthernetHeaderLen + 4) return pkt;
  net::EthernetView eth(pkt->data());
  if (eth.ether_type() != net::kEtherTypeVlan) return pkt;
  std::memmove(pkt->data() + 4, pkt->data(), 12);
  pkt->pull(4);
  ++decapped_;
  return pkt;
}

// --- SetIPDscp ------------------------------------------------------------------

bool SetIPDscp::configure(const std::vector<std::string>& args,
                          std::string* err) {
  std::size_t d;
  if (args.size() != 1 || !parse_size_arg(args[0], &d) || d > 63) {
    *err = "SetIPDscp(DSCP): 0..63";
    return false;
  }
  dscp_ = static_cast<std::uint8_t>(d);
  return true;
}

net::PacketPtr SetIPDscp::simple_action(net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed) return pkt;
  net::Ipv4View ip(pkt->data() + parsed->l3_offset);
  // The version/ihl + TOS bytes form the first checksummed 16-bit word.
  std::uint16_t old_word = net::load_be16(pkt->data() + parsed->l3_offset);
  ip.set_dscp(dscp_);
  std::uint16_t new_word = net::load_be16(pkt->data() + parsed->l3_offset);
  ip.set_checksum(net::checksum_update16(ip.checksum(), old_word, new_word));
  return pkt;
}

// --- Meter ----------------------------------------------------------------------

bool Meter::configure(const std::vector<std::string>& args,
                      std::string* err) {
  if (args.size() != 1) {
    *err = "Meter(RATE_PPS)";
    return false;
  }
  threshold_pps_ = std::atof(args[0].c_str());
  if (threshold_pps_ <= 0) {
    *err = "Meter: RATE_PPS must be positive";
    return false;
  }
  return true;
}

void Meter::push(int, net::PacketPtr pkt) {
  std::uint64_t now = pkt->anno().ingress_ns;
  if (!primed_) {
    primed_ = true;
    last_ns_ = now;
    rate_ = 0;
  } else if (now > last_ns_) {
    // Exponentially-decayed rate estimator with ~1ms time constant.
    double dt_s = static_cast<double>(now - last_ns_) / 1e9;
    double alpha = 1.0 - std::exp(-dt_s / 1e-3);
    double inst = 1.0 / dt_s;
    rate_ += alpha * (inst - rate_);
    last_ns_ = now;
  }
  if (rate_ <= threshold_pps_) {
    output_push(0, std::move(pkt));
  } else if (output_connected(1)) {
    output_push(1, std::move(pkt));
  }
}

// --- Switch ---------------------------------------------------------------------

bool Switch::configure(const std::vector<std::string>& args,
                       std::string* err) {
  if (args.empty() || args.size() > 2) {
    *err = "Switch(N, START=0)";
    return false;
  }
  if (!parse_size_arg(args[0], &n_) || n_ == 0) {
    *err = "Switch: bad N";
    return false;
  }
  std::size_t start = 0;
  if (args.size() == 2 && (!parse_size_arg(args[1], &start) || start >= n_)) {
    *err = "Switch: START out of range";
    return false;
  }
  current_ = static_cast<int>(start);
  return true;
}

void Switch::push(int, net::PacketPtr pkt) {
  output_push(current_, std::move(pkt));
}

// --- registrations ---------------------------------------------------------------

MDP_REGISTER_ELEMENT(VxlanEncap, "VxlanEncap");
MDP_REGISTER_ELEMENT(VxlanDecap, "VxlanDecap");
MDP_REGISTER_ELEMENT(VLANEncap, "VLANEncap");
MDP_REGISTER_ELEMENT(VLANDecap, "VLANDecap");
MDP_REGISTER_ELEMENT(SetIPDscp, "SetIPDscp");
MDP_REGISTER_ELEMENT(Meter, "Meter");
MDP_REGISTER_ELEMENT(Switch, "Switch");

}  // namespace mdp::click
