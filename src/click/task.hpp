// Task / StrideScheduler: Click's CPU scheduling model. Elements that need
// agency (Unqueue pulling from a Queue, sources) own a Task; the stride
// scheduler interleaves tasks proportionally to their tickets.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace mdp::click {

class Task {
 public:
  /// @param fn    returns true if the task did useful work this firing.
  /// @param tickets proportional share (Click default 1024).
  explicit Task(std::function<bool()> fn, std::uint32_t tickets = 1024)
      : fn_(std::move(fn)), tickets_(tickets ? tickets : 1),
        stride_(kStride1 / (tickets ? tickets : 1)) {}

  bool fire() { return fn_(); }

  std::uint64_t pass() const noexcept { return pass_; }
  void advance() noexcept { pass_ += stride_; }
  std::uint32_t tickets() const noexcept { return tickets_; }
  std::uint64_t fire_count() const noexcept { return fires_; }
  std::uint64_t work_count() const noexcept { return work_; }
  void count_fire(bool did_work) noexcept {
    ++fires_;
    if (did_work) ++work_;
  }

 private:
  static constexpr std::uint64_t kStride1 = 1u << 16;
  std::function<bool()> fn_;
  std::uint32_t tickets_;
  std::uint64_t stride_;
  std::uint64_t pass_ = 0;
  std::uint64_t fires_ = 0;
  std::uint64_t work_ = 0;
};

class StrideScheduler {
 public:
  void add(Task* t) { tasks_.push_back(t); }

  bool empty() const noexcept { return tasks_.empty(); }
  std::size_t num_tasks() const noexcept { return tasks_.size(); }

  /// Fire the lowest-pass task once. Returns whether it did work.
  bool run_once() {
    if (tasks_.empty()) return false;
    Task* best = tasks_[0];
    for (Task* t : tasks_)
      if (t->pass() < best->pass()) best = t;
    bool did = best->fire();
    best->count_fire(did);
    best->advance();
    return did;
  }

  /// Run until `max_iters` firings or until an entire sweep does no work.
  /// Returns the number of firings that did work.
  std::size_t run(std::size_t max_iters) {
    std::size_t productive = 0;
    std::size_t idle_streak = 0;
    for (std::size_t i = 0; i < max_iters; ++i) {
      if (run_once()) {
        ++productive;
        idle_streak = 0;
      } else if (++idle_streak >= tasks_.size()) {
        break;  // every task reported no work
      }
    }
    return productive;
  }

 private:
  std::vector<Task*> tasks_;
};

}  // namespace mdp::click
