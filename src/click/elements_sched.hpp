// Link-scheduling pull elements: strict-priority and deficit round robin
// (Click's PrioSched / DRRSched). Both have N pull inputs (normally fed by
// Queues) and one pull output.
#pragma once

#include <string>
#include <vector>

#include "click/element.hpp"

namespace mdp::click {

/// PrioSched: always serves the lowest-numbered non-empty input.
class PrioSched final : public Element {
 public:
  std::string class_name() const override { return "PrioSched"; }
  int n_inputs() const override { return -1; }
  sim::TimeNs cost_ns() const override { return 20; }
  net::PacketPtr pull(int port) override;

 private:
  static constexpr int kMaxInputs = 64;
};

/// DrrSched(QUANTUM=500): deficit round robin over its inputs; each round
/// an input's deficit grows by QUANTUM bytes and it may send packets while
/// its deficit covers them. Byte-fair across inputs regardless of packet
/// size mix.
class DrrSched final : public Element {
 public:
  std::string class_name() const override { return "DrrSched"; }
  int n_inputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  bool initialize(std::string* err) override;
  sim::TimeNs cost_ns() const override { return 35; }
  net::PacketPtr pull(int port) override;

  std::uint64_t served(std::size_t input) const {
    return input < served_.size() ? served_[input] : 0;
  }
  std::uint64_t served_bytes(std::size_t input) const {
    return input < served_bytes_.size() ? served_bytes_[input] : 0;
  }

 private:
  std::size_t quantum_ = 500;
  std::size_t current_ = 0;
  std::vector<std::int64_t> deficit_;
  std::vector<net::PacketPtr> head_;  // head-of-line stash per input
  std::vector<std::uint64_t> served_;
  std::vector<std::uint64_t> served_bytes_;
  std::size_t n_inputs_wired_ = 0;
};

}  // namespace mdp::click
