#include "click/elements.hpp"

#include <cstdio>
#include <cstdlib>

#include "click/registry.hpp"
#include "click/router.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::click {

bool parse_size_arg(const std::string& arg, std::size_t* out) {
  if (arg.empty()) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_u64_arg(const std::string& arg, std::uint64_t* out) {
  std::size_t tmp;
  if (!parse_size_arg(arg, &tmp)) return false;
  *out = tmp;
  return true;
}

// --- Queue -------------------------------------------------------------------

bool Queue::configure(const std::vector<std::string>& args,
                      std::string* err) {
  if (args.empty()) return true;
  if (args.size() > 1 || !parse_size_arg(args[0], &capacity_) ||
      capacity_ == 0) {
    *err = "Queue(CAPACITY): positive integer expected";
    return false;
  }
  return true;
}

void Queue::push(int, net::PacketPtr pkt) {
  if (q_.size() >= capacity_) {
    ++drops_;
    return;  // tail drop; handle recycles
  }
  q_.push_back(std::move(pkt));
  if (q_.size() > highwater_) highwater_ = q_.size();
}

void Queue::push_batch(int, PacketBatch&& batch) {
  for (auto& pkt : batch) {
    if (!pkt) continue;
    if (q_.size() >= capacity_) {
      ++drops_;
      pkt.reset();  // tail drop
      continue;
    }
    q_.push_back(std::move(pkt));
  }
  if (q_.size() > highwater_) highwater_ = q_.size();
  batch.clear();
}

net::PacketPtr Queue::pull(int) {
  if (q_.empty()) return net::PacketPtr{nullptr};
  net::PacketPtr pkt = std::move(q_.front());
  q_.pop_front();
  return pkt;
}

// --- Unqueue -----------------------------------------------------------------

bool Unqueue::configure(const std::vector<std::string>& args,
                        std::string* err) {
  if (args.empty()) return true;
  if (args.size() > 1 || !parse_size_arg(args[0], &burst_) || burst_ == 0) {
    *err = "Unqueue(BURST): positive integer expected";
    return false;
  }
  return true;
}

bool Unqueue::initialize(std::string*) {
  task_ = std::make_unique<Task>([this] { return fire(); });
  router()->scheduler().add(task_.get());
  return true;
}

bool Unqueue::fire() {
  bool did = false;
  for (std::size_t i = 0; i < burst_; ++i) {
    net::PacketPtr pkt = input_pull(0);
    if (!pkt) break;
    did = true;
    output_push(0, std::move(pkt));
  }
  return did;
}

// --- Tee ---------------------------------------------------------------------

bool Tee::initialize(std::string* err) {
  if (num_connected_outputs() > 1 &&
      (router() == nullptr || router()->context().pool == nullptr)) {
    *err = "Tee with >1 output requires a packet pool in the router context";
    return false;
  }
  return true;
}

void Tee::push(int, net::PacketPtr pkt) {
  // Clone to every connected output except the last, which gets the
  // original moved (zero-copy on the common single-output case).
  constexpr int kMaxPorts = 64;
  int last = -1;
  for (int p = 0; p < kMaxPorts; ++p)
    if (output_connected(p)) last = p;
  if (last < 0) return;
  for (int p = 0; p < last; ++p) {
    if (!output_connected(p)) continue;
    net::PacketPtr copy = router()->context().pool->clone(*pkt);
    if (copy) output_push(p, std::move(copy));
  }
  output_push(last, std::move(pkt));
}

// --- Classifier --------------------------------------------------------------

bool Classifier::parse_pattern(const std::string& text, Pattern* out,
                               std::string* err) {
  if (text == "-") return true;  // match-all
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && std::isspace((unsigned char)text[pos])) ++pos;
    if (pos >= text.size()) break;
    std::size_t end = pos;
    while (end < text.size() && !std::isspace((unsigned char)text[end]))
      ++end;
    std::string term = text.substr(pos, end - pos);
    pos = end;

    std::size_t slash = term.find('/');
    if (slash == std::string::npos) {
      *err = "classifier term '" + term + "' missing '/'";
      return false;
    }
    Term t;
    t.offset = std::strtoull(term.substr(0, slash).c_str(), nullptr, 10);
    std::string rest = term.substr(slash + 1);
    std::string value = rest;
    std::string mask;
    std::size_t pct = rest.find('%');
    if (pct != std::string::npos) {
      value = rest.substr(0, pct);
      mask = rest.substr(pct + 1);
    }
    if (value.empty() || value.size() % 2 != 0) {
      *err = "classifier value '" + value + "' must be even-length hex";
      return false;
    }
    auto hex_nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    for (std::size_t i = 0; i < value.size(); i += 2) {
      int hi = hex_nibble(value[i]);
      int lo = hex_nibble(value[i + 1]);
      if (hi < 0 || lo < 0) {
        *err = "bad hex in classifier value '" + value + "'";
        return false;
      }
      t.value.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    if (!mask.empty()) {
      if (mask.size() != value.size()) {
        *err = "classifier mask length must equal value length";
        return false;
      }
      for (std::size_t i = 0; i < mask.size(); i += 2) {
        int hi = hex_nibble(mask[i]);
        int lo = hex_nibble(mask[i + 1]);
        if (hi < 0 || lo < 0) {
          *err = "bad hex in classifier mask '" + mask + "'";
          return false;
        }
        t.mask.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
      }
    } else {
      t.mask.assign(t.value.size(), 0xff);
    }
    out->terms.push_back(std::move(t));
  }
  return true;
}

bool Classifier::configure(const std::vector<std::string>& args,
                           std::string* err) {
  if (args.empty()) {
    *err = "Classifier requires at least one pattern";
    return false;
  }
  for (const auto& a : args) {
    Pattern p;
    if (!parse_pattern(a, &p, err)) return false;
    patterns_.push_back(std::move(p));
  }
  return true;
}

bool Classifier::matches(const Pattern& p, const net::Packet& pkt) const {
  for (const Term& t : p.terms) {
    if (t.offset + t.value.size() > pkt.length()) return false;
    const std::byte* base = pkt.data() + t.offset;
    for (std::size_t i = 0; i < t.value.size(); ++i) {
      auto b = std::to_integer<std::uint8_t>(base[i]);
      if ((b & t.mask[i]) != (t.value[i] & t.mask[i])) return false;
    }
  }
  return true;
}

void Classifier::push(int, net::PacketPtr pkt) {
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    if (matches(patterns_[i], *pkt)) {
      output_push(static_cast<int>(i), std::move(pkt));
      return;
    }
  }
  // No match: drop.
}

// --- switches ----------------------------------------------------------------

bool HashSwitch::configure(const std::vector<std::string>& args,
                           std::string* err) {
  if (args.size() != 1 || !parse_size_arg(args[0], &n_) || n_ == 0) {
    *err = "HashSwitch(N): positive output count required";
    return false;
  }
  return true;
}

void HashSwitch::push(int, net::PacketPtr pkt) {
  auto out = static_cast<int>(pkt->anno().flow_hash % n_);
  output_push(out, std::move(pkt));
}

bool RoundRobinSwitch::configure(const std::vector<std::string>& args,
                                 std::string* err) {
  if (args.size() != 1 || !parse_size_arg(args[0], &n_) || n_ == 0) {
    *err = "RoundRobinSwitch(N): positive output count required";
    return false;
  }
  return true;
}

void RoundRobinSwitch::push(int, net::PacketPtr pkt) {
  auto out = static_cast<int>(next_);
  next_ = (next_ + 1) % n_;
  output_push(out, std::move(pkt));
}

bool RandomSwitch::configure(const std::vector<std::string>& args,
                             std::string* err) {
  if (args.empty() || args.size() > 2 || !parse_size_arg(args[0], &n_) ||
      n_ == 0) {
    *err = "RandomSwitch(N, SEED=1)";
    return false;
  }
  if (args.size() == 2) {
    std::uint64_t seed;
    if (!parse_u64_arg(args[1], &seed)) {
      *err = "RandomSwitch: bad seed";
      return false;
    }
    rng_ = sim::Rng(seed);
  }
  return true;
}

void RandomSwitch::push(int, net::PacketPtr pkt) {
  auto out = static_cast<int>(rng_.uniform_u64(n_));
  output_push(out, std::move(pkt));
}

// --- Paint / PaintSwitch -------------------------------------------------------

bool Paint::configure(const std::vector<std::string>& args,
                      std::string* err) {
  std::size_t c;
  if (args.size() != 1 || !parse_size_arg(args[0], &c) || c > 255) {
    *err = "Paint(COLOR): 0..255";
    return false;
  }
  color_ = static_cast<std::uint8_t>(c);
  return true;
}

void PaintSwitch::push(int, net::PacketPtr pkt) {
  int port = pkt->anno().paint;  // read before the move (arg order is UB)
  output_push(port, std::move(pkt));
}

// --- IP header elements ---------------------------------------------------------

void CheckIPHeader::push(int, net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  bool ok = parsed.has_value() && net::validate_ipv4_csum(*pkt, *parsed);
  if (ok) {
    output_push(0, std::move(pkt));
  } else if (output_connected(1)) {
    output_push(1, std::move(pkt));
  } else {
    ++drops_;
  }
}

void CheckIPHeader::push_batch(int, PacketBatch&& batch) {
  // Valid packets ride the burst to output 0; invalid ones divert
  // per-packet to output 1 (or drop) without breaking the burst.
  for (auto& pkt : batch) {
    if (!pkt) continue;
    auto parsed = net::parse(*pkt);
    if (parsed.has_value() && net::validate_ipv4_csum(*pkt, *parsed))
      continue;
    if (output_connected(1)) {
      output_push(1, std::move(pkt));
    } else {
      ++drops_;
      pkt.reset();
    }
  }
  output_push_batch(0, std::move(batch));
}

void DecIPTTL::push(int, net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed) {
    ++expired_;
    return;
  }
  net::Ipv4View ip(pkt->data() + parsed->l3_offset);
  std::uint8_t ttl = ip.ttl();
  if (ttl <= 1) {
    ++expired_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return;
  }
  // Incremental checksum: the TTL/protocol 16-bit word changes.
  std::uint16_t old_word =
      static_cast<std::uint16_t>((std::uint16_t{ttl} << 8) | ip.protocol());
  ip.set_ttl(ttl - 1);
  std::uint16_t new_word = static_cast<std::uint16_t>(
      (std::uint16_t{static_cast<std::uint8_t>(ttl - 1)} << 8) |
      ip.protocol());
  ip.set_checksum(net::checksum_update16(ip.checksum(), old_word, new_word));
  output_push(0, std::move(pkt));
}

net::PacketPtr EtherMirror::simple_action(net::PacketPtr pkt) {
  if (pkt->length() < net::kEthernetHeaderLen) return net::PacketPtr{nullptr};
  net::EthernetView eth(pkt->data());
  auto d = eth.dst();
  eth.set_dst(eth.src());
  eth.set_src(d);
  return pkt;
}

// --- Strip / Unstrip ------------------------------------------------------------

bool Strip::configure(const std::vector<std::string>& args,
                      std::string* err) {
  if (args.size() != 1 || !parse_size_arg(args[0], &n_)) {
    *err = "Strip(N)";
    return false;
  }
  return true;
}

bool Unstrip::configure(const std::vector<std::string>& args,
                        std::string* err) {
  if (args.size() != 1 || !parse_size_arg(args[0], &n_)) {
    *err = "Unstrip(N)";
    return false;
  }
  return true;
}

// --- SetTrafficClass -------------------------------------------------------------

bool SetTrafficClass::configure(const std::vector<std::string>& args,
                                std::string* err) {
  if (args.size() != 1) {
    *err = "SetTrafficClass(BE|LS|LC)";
    return false;
  }
  if (args[0] == "BE") {
    cls_ = net::TrafficClass::kBestEffort;
  } else if (args[0] == "LS") {
    cls_ = net::TrafficClass::kLatencySensitive;
  } else if (args[0] == "LC") {
    cls_ = net::TrafficClass::kLatencyCritical;
  } else {
    *err = "SetTrafficClass: unknown class '" + args[0] + "'";
    return false;
  }
  return true;
}

// --- InfiniteSource --------------------------------------------------------------

bool InfiniteSource::configure(const std::vector<std::string>& args,
                               std::string* err) {
  if (args.size() > 3) {
    *err = "InfiniteSource(LIMIT=1024, SIZE=64, BURST=1)";
    return false;
  }
  if (args.size() >= 1 && !parse_u64_arg(args[0], &limit_)) {
    *err = "InfiniteSource: bad LIMIT";
    return false;
  }
  if (args.size() >= 2 && !parse_size_arg(args[1], &payload_)) {
    *err = "InfiniteSource: bad SIZE";
    return false;
  }
  if (args.size() >= 3 &&
      (!parse_size_arg(args[2], &burst_) || burst_ == 0)) {
    *err = "InfiniteSource: bad BURST";
    return false;
  }
  return true;
}

bool InfiniteSource::initialize(std::string* err) {
  if (router() == nullptr || router()->context().pool == nullptr) {
    *err = "InfiniteSource requires a packet pool in the router context";
    return false;
  }
  task_ = std::make_unique<Task>([this] { return fire(); });
  router()->scheduler().add(task_.get());
  return true;
}

bool InfiniteSource::fire() {
  if (emitted_ >= limit_) return false;
  bool did = false;
  for (std::size_t i = 0; i < burst_ && emitted_ < limit_; ++i) {
    net::BuildSpec spec;
    spec.flow.src_ip = 0x0a000001;
    spec.flow.dst_ip = 0x0a000002;
    spec.flow.src_port = static_cast<std::uint16_t>(1024 + (emitted_ % 1000));
    spec.flow.dst_port = 80;
    spec.payload_len = payload_;
    auto pkt = net::build_udp(*router()->context().pool, spec);
    if (!pkt) break;
    ++emitted_;
    did = true;
    output_push(0, std::move(pkt));
  }
  return did;
}

// --- Print ---------------------------------------------------------------------

bool Print::configure(const std::vector<std::string>& args,
                      std::string* err) {
  if (args.size() > 1) {
    *err = "Print(LABEL)";
    return false;
  }
  if (!args.empty()) label_ = args[0];
  return true;
}

net::PacketPtr Print::simple_action(net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (parsed) {
    std::printf("%s: len=%zu %s\n", label_.c_str(), pkt->length(),
                parsed->flow.to_string().c_str());
  } else {
    std::printf("%s: len=%zu (non-IP)\n", label_.c_str(), pkt->length());
  }
  return pkt;
}

// --- registrations ----------------------------------------------------------------

MDP_REGISTER_ELEMENT(Null, "Null");
MDP_REGISTER_ELEMENT(Queue, "Queue");
MDP_REGISTER_ELEMENT(Unqueue, "Unqueue");
MDP_REGISTER_ELEMENT(Counter, "Counter");
MDP_REGISTER_ELEMENT(Discard, "Discard");
MDP_REGISTER_ELEMENT(Tee, "Tee");
MDP_REGISTER_ELEMENT(Classifier, "Classifier");
MDP_REGISTER_ELEMENT(HashSwitch, "HashSwitch");
MDP_REGISTER_ELEMENT(RoundRobinSwitch, "RoundRobinSwitch");
MDP_REGISTER_ELEMENT(RandomSwitch, "RandomSwitch");
MDP_REGISTER_ELEMENT(Paint, "Paint");
MDP_REGISTER_ELEMENT(PaintSwitch, "PaintSwitch");
MDP_REGISTER_ELEMENT(CheckIPHeader, "CheckIPHeader");
MDP_REGISTER_ELEMENT(DecIPTTL, "DecIPTTL");
MDP_REGISTER_ELEMENT(Strip, "Strip");
MDP_REGISTER_ELEMENT(Unstrip, "Unstrip");
MDP_REGISTER_ELEMENT(EtherMirror, "EtherMirror");
MDP_REGISTER_ELEMENT(SetTrafficClass, "SetTrafficClass");
MDP_REGISTER_ELEMENT(InfiniteSource, "InfiniteSource");
MDP_REGISTER_ELEMENT(Print, "Print");

}  // namespace mdp::click
