// Element: the Click processing unit. Packets move between elements either
// by push (upstream calls downstream) or pull (downstream asks upstream),
// exactly following Click's composition model:
//
//   FromDevice -> Classifier -> CheckIPHeader -> Queue -> Unqueue -> ToDevice
//
// Subclasses override push()/pull() for multi-port logic, or just
// simple_action() for 1-in/1-out filters (return nullptr to drop).
//
// Each element also reports cost_ns(): its nominal per-packet CPU cost.
// The discrete-event path model charges the sum of chain element costs as
// the service time of a packet on a last-mile path, which is how functional
// processing (real header rewrites) and timing (queueing model) stay in
// sync.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/time.hpp"

namespace mdp::sim {
class EventQueue;
}

namespace mdp::click {

class Router;

/// A burst of packets moving through the batch path. Entries may be null
/// transiently (an element nulls dropped packets); output_push_batch()
/// compacts nulls away before forwarding.
using PacketBatch = std::vector<net::PacketPtr>;

class Element {
 public:
  virtual ~Element() = default;

  /// Class name as registered ("Queue", "Firewall", ...).
  virtual std::string class_name() const = 0;

  virtual int n_inputs() const { return 1; }
  virtual int n_outputs() const { return 1; }

  /// Parse configuration arguments. Return false and set *err to reject.
  virtual bool configure(const std::vector<std::string>& args,
                         std::string* err) {
    if (!args.empty() && !(args.size() == 1 && args[0].empty())) {
      *err = class_name() + " takes no arguments";
      return false;
    }
    return true;
  }

  /// Post-connection initialization (allocate tables, resolve handlers).
  virtual bool initialize(std::string* err) {
    (void)err;
    return true;
  }

  /// Per-packet nominal processing cost for the path cost model.
  virtual sim::TimeNs cost_ns() const { return 50; }

  // --- packet movement ----------------------------------------------------
  virtual void push(int port, net::PacketPtr pkt);
  virtual net::PacketPtr pull(int port);
  /// 1:1 transform hook used by the default push/pull. Return nullptr to
  /// drop the packet (the handle recycles it).
  virtual net::PacketPtr simple_action(net::PacketPtr pkt) {
    return pkt;
  }

  // --- batch movement (the burst fast path) --------------------------------
  // Linear chains move whole bursts between elements: one virtual call per
  // element per burst and better i-cache/d-cache behavior than ping-ponging
  // a single packet down the chain. Semantics are defined to be IDENTICAL
  // to pushing each batch entry through push() in order — the base
  // push_batch() literally does that, so every element (including ones
  // with custom multi-port push() logic) is batch-correct by default, and
  // elements opt into amortization by overriding push_batch() (1:1 filters
  // usually just call act_batch_and_forward()).

  /// Process a whole burst entering `port`. Overriders must consume the
  /// batch (forward, divert, or drop every entry).
  virtual void push_batch(int port, PacketBatch&& batch);
  /// Apply simple_action() to every packet, nulling dropped entries.
  virtual void simple_action_batch(PacketBatch& batch);
  /// Forward a burst out of `port` (nulls compacted first). Unconnected
  /// port => burst dropped (handles recycle the packets).
  void output_push_batch(int port, PacketBatch&& batch);

  // --- graph wiring (managed by Router) ------------------------------------
  void connect_output(int out_port, Element* dst, int dst_port);
  bool output_connected(int port) const noexcept {
    return port >= 0 && port < static_cast<int>(outputs_.size()) &&
           outputs_[port].element != nullptr;
  }
  void set_input(int in_port, Element* src, int src_port);
  bool input_connected(int port) const noexcept {
    return port >= 0 && port < static_cast<int>(inputs_.size()) &&
           inputs_[port].element != nullptr;
  }

  /// Push a packet out of `port`. Unconnected port => packet dropped.
  void output_push(int port, net::PacketPtr pkt);
  /// Pull a packet from whatever feeds input `port`.
  net::PacketPtr input_pull(int port);

  /// Downstream element on output `port` (nullptr if unconnected).
  Element* output_element(int port) const noexcept {
    return output_connected(port) ? outputs_[port].element : nullptr;
  }
  int num_connected_outputs() const noexcept {
    int n = 0;
    for (const auto& ref : outputs_)
      if (ref.element != nullptr) ++n;
    return n;
  }

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  Router* router() const noexcept { return router_; }
  void set_router(Router* r) noexcept { router_ = r; }

 protected:
  /// Canonical push_batch() body for 1:1 elements: run the batch action,
  /// forward survivors on output 0 as one burst.
  void act_batch_and_forward(PacketBatch&& batch) {
    simple_action_batch(batch);
    output_push_batch(0, std::move(batch));
  }

 private:
  struct PortRef {
    Element* element = nullptr;
    int port = 0;
  };
  std::vector<PortRef> outputs_;
  std::vector<PortRef> inputs_;
  std::string name_;
  Router* router_ = nullptr;
};

}  // namespace mdp::click
