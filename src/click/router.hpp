// Router: owns an element graph and builds it from Click configuration
// text. The supported grammar is the core of Click's language:
//
//   // declarations
//   q :: Queue(64);
//   cnt :: Counter;
//   // connections, with optional port specifiers and anonymous elements
//   src -> Classifier(12/0800, -) -> q;
//   q [0] -> [0] cnt -> Discard;
//
// Statements are ';'-separated; '//' and '/* */' comments are stripped.
// Multi-hop connection chains instantiate anonymous elements inline.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "click/element.hpp"
#include "click/task.hpp"
#include "net/packet_pool.hpp"
#include "sim/event_queue.hpp"

namespace mdp::click {

class Router {
 public:
  /// Shared services elements may need. Both pointers are optional, but
  /// elements that clone packets (Tee) require the pool and timestamping
  /// elements require the event queue.
  struct Context {
    sim::EventQueue* eq = nullptr;
    net::PacketPool* pool = nullptr;
  };

  Router() = default;
  explicit Router(Context ctx) : ctx_(ctx) {}

  /// Parse config text, instantiate elements, and wire connections.
  /// On failure returns false with a human-readable *err (line-oriented).
  ///
  /// Compound elements are supported in the Click style:
  ///
  ///   elementclass Pipeline { input -> Counter -> Paint(1) -> output; };
  ///   p :: Pipeline;
  ///   src -> p -> sink;
  ///
  /// A compound instance expands to pass-through `name/input` and
  /// `name/output` elements plus its prefixed body; connections to the
  /// instance attach to those endpoints (single input/output port).
  bool configure(const std::string& config_text, std::string* err);

  /// Programmatic construction (what configure() lowers to).
  Element* add_element(const std::string& name, const std::string& cls,
                       const std::vector<std::string>& args,
                       std::string* err);

  /// Adopt an externally constructed element (for elements that need
  /// runtime state a registry factory cannot provide, e.g. callbacks).
  Element* adopt(std::unique_ptr<Element> elem, const std::string& name);
  bool connect(Element* from, int from_port, Element* to, int to_port,
               std::string* err);

  /// Run every element's initialize(). Must be called once after wiring.
  bool initialize(std::string* err);

  Element* find(const std::string& name) const;

  template <typename T>
  T* find_as(const std::string& name) const {
    return dynamic_cast<T*>(find(name));
  }

  const std::vector<std::unique_ptr<Element>>& elements() const noexcept {
    return elements_;
  }

  Context& context() noexcept { return ctx_; }
  StrideScheduler& scheduler() noexcept { return scheduler_; }

  /// Sum of cost_ns() along the output-0 spine starting at `head`
  /// (inclusive). The multipath path model uses this as the base service
  /// time of a chain replica.
  sim::TimeNs chain_cost(const Element* head) const;

  bool initialized() const noexcept { return initialized_; }

 private:
  bool configure_impl(const std::string& config_text,
                      const std::string& prefix, std::string* err);
  Element* instantiate(const std::string& name, const std::string& cls,
                       const std::vector<std::string>& args,
                       std::string* err);
  /// Endpoint element for a (possibly compound) instance name.
  Element* resolve(const std::string& name, bool as_source) const;

  Context ctx_;
  std::vector<std::unique_ptr<Element>> elements_;
  StrideScheduler scheduler_;
  std::map<std::string, std::string> compound_defs_;  // class -> body text
  struct CompoundPorts {
    Element* input = nullptr;
    Element* output = nullptr;
  };
  std::map<std::string, CompoundPorts> compound_instances_;
  bool initialized_ = false;
  int anon_counter_ = 0;
};

}  // namespace mdp::click
