#include "click/element.hpp"

#include <algorithm>

namespace mdp::click {

void Element::push(int port, net::PacketPtr pkt) {
  (void)port;
  net::PacketPtr out = simple_action(std::move(pkt));
  if (out) output_push(0, std::move(out));
}

net::PacketPtr Element::pull(int port) {
  (void)port;
  net::PacketPtr pkt = input_pull(0);
  if (!pkt) return pkt;
  return simple_action(std::move(pkt));
}

void Element::push_batch(int port, PacketBatch&& batch) {
  // Per-packet fallback: exact push() semantics for elements that have
  // not opted into an amortized batch path.
  for (auto& pkt : batch)
    if (pkt) push(port, std::move(pkt));
  batch.clear();
}

void Element::simple_action_batch(PacketBatch& batch) {
  for (auto& pkt : batch)
    if (pkt) pkt = simple_action(std::move(pkt));
}

void Element::output_push_batch(int port, PacketBatch&& batch) {
  std::erase_if(batch, [](const net::PacketPtr& p) { return !p; });
  if (batch.empty()) return;
  if (!output_connected(port)) {
    batch.clear();  // drop: handles recycle
    return;
  }
  auto& ref = outputs_[port];
  ref.element->push_batch(ref.port, std::move(batch));
}

void Element::connect_output(int out_port, Element* dst, int dst_port) {
  if (out_port >= static_cast<int>(outputs_.size()))
    outputs_.resize(out_port + 1);
  outputs_[out_port] = {dst, dst_port};
}

void Element::set_input(int in_port, Element* src, int src_port) {
  if (in_port >= static_cast<int>(inputs_.size()))
    inputs_.resize(in_port + 1);
  inputs_[in_port] = {src, src_port};
}

void Element::output_push(int port, net::PacketPtr pkt) {
  if (!output_connected(port)) return;  // drop: handle recycles the packet
  auto& ref = outputs_[port];
  ref.element->push(ref.port, std::move(pkt));
}

net::PacketPtr Element::input_pull(int port) {
  if (!input_connected(port)) return net::PacketPtr{nullptr};
  auto& ref = inputs_[port];
  return ref.element->pull(ref.port);
}

}  // namespace mdp::click
