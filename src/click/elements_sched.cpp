#include "click/elements_sched.hpp"

#include "click/elements.hpp"
#include "click/registry.hpp"

namespace mdp::click {

net::PacketPtr PrioSched::pull(int) {
  for (int i = 0; i < kMaxInputs; ++i) {
    if (!input_connected(i)) continue;
    net::PacketPtr pkt = input_pull(i);
    if (pkt) return pkt;
  }
  return net::PacketPtr{nullptr};
}

bool DrrSched::configure(const std::vector<std::string>& args,
                         std::string* err) {
  if (args.empty()) return true;
  if (args.size() > 1 || !parse_size_arg(args[0], &quantum_) ||
      quantum_ == 0) {
    *err = "DrrSched(QUANTUM)";
    return false;
  }
  return true;
}

bool DrrSched::initialize(std::string* err) {
  constexpr int kMaxInputs = 64;
  for (int i = 0; i < kMaxInputs; ++i)
    if (input_connected(i)) n_inputs_wired_ = i + 1;
  if (n_inputs_wired_ == 0) {
    *err = "DrrSched has no connected inputs";
    return false;
  }
  deficit_.assign(n_inputs_wired_, 0);
  head_.resize(n_inputs_wired_);
  served_.assign(n_inputs_wired_, 0);
  served_bytes_.assign(n_inputs_wired_, 0);
  return true;
}

net::PacketPtr DrrSched::pull(int) {
  // Up to two full sweeps: one to grow deficits, one to serve — bounded
  // work even when everything upstream is empty.
  for (std::size_t sweep = 0; sweep < 2 * n_inputs_wired_ + 1; ++sweep) {
    std::size_t i = current_;
    // Fetch head-of-line if we don't have one stashed.
    if (!head_[i] && input_connected(static_cast<int>(i)))
      head_[i] = input_pull(static_cast<int>(i));
    if (head_[i]) {
      auto len = static_cast<std::int64_t>(head_[i]->length());
      if (deficit_[i] >= len) {
        deficit_[i] -= len;
        ++served_[i];
        served_bytes_[i] += static_cast<std::uint64_t>(len);
        return std::move(head_[i]);
      }
      // Not enough deficit: grant a quantum and move on.
      deficit_[i] += static_cast<std::int64_t>(quantum_);
      current_ = (i + 1) % n_inputs_wired_;
      continue;
    }
    // Empty input: per DRR, an idle flow's deficit resets.
    deficit_[i] = 0;
    current_ = (i + 1) % n_inputs_wired_;
  }
  return net::PacketPtr{nullptr};
}

MDP_REGISTER_ELEMENT(PrioSched, "PrioSched");
MDP_REGISTER_ELEMENT(DrrSched, "DrrSched");

}  // namespace mdp::click
