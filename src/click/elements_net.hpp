// Network-encapsulation and traffic-conditioning elements: VXLAN overlay
// endpoints, 802.1Q VLAN tagging, DSCP marking, a rate meter, and a
// static Switch. These extend the standard element set with what a
// virtualized-network last mile actually runs.
#pragma once

#include <string>
#include <vector>

#include "click/element.hpp"
#include "net/vxlan.hpp"

namespace mdp::click {

/// VxlanEncap(VNI, LOCAL_VTEP, REMOTE_VTEP): wraps each frame in the
/// outer Ethernet/IPv4/UDP/VXLAN stack. Drops frames with insufficient
/// headroom (counted).
class VxlanEncap final : public Element {
 public:
  std::string class_name() const override { return "VxlanEncap"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 110; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;

  const net::VxlanTunnel& tunnel() const noexcept { return tunnel_; }
  std::uint64_t encapped() const noexcept { return encapped_; }
  std::uint64_t failed() const noexcept { return failed_; }

 private:
  net::VxlanTunnel tunnel_;
  std::uint64_t encapped_ = 0;
  std::uint64_t failed_ = 0;
};

/// VxlanDecap(EXPECTED_VNI or 'any'): strips the outer stack. Frames that
/// are not valid VXLAN, or whose VNI mismatches, exit port 1 if connected
/// (else drop).
class VxlanDecap final : public Element {
 public:
  std::string class_name() const override { return "VxlanDecap"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 90; }
  void push(int port, net::PacketPtr pkt) override;

  std::uint64_t decapped() const noexcept { return decapped_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint32_t last_vni() const noexcept { return last_vni_; }

 private:
  bool match_any_ = true;
  std::uint32_t expected_vni_ = 0;
  std::uint64_t decapped_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint32_t last_vni_ = 0;
};

/// VLANEncap(TAG [, PRIORITY]): inserts an 802.1Q header after the MACs.
class VLANEncap final : public Element {
 public:
  std::string class_name() const override { return "VLANEncap"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 40; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;

 private:
  std::uint16_t tci_ = 1;  // priority(3) | DEI(1) | VLAN id(12)
};

/// VLANDecap: removes an 802.1Q header; non-VLAN frames pass untouched.
class VLANDecap final : public Element {
 public:
  std::string class_name() const override { return "VLANDecap"; }
  sim::TimeNs cost_ns() const override { return 35; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;

  std::uint64_t decapped() const noexcept { return decapped_; }

 private:
  std::uint64_t decapped_ = 0;
};

/// SetIPDscp(DSCP): rewrites the DSCP field with incremental checksum fix.
class SetIPDscp final : public Element {
 public:
  std::string class_name() const override { return "SetIPDscp"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 40; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;

 private:
  std::uint8_t dscp_ = 0;
};

/// Meter(RATE_PPS): EWMA-rate classifier. While the measured packet rate
/// is at or below RATE_PPS, packets exit port 0; above it they exit
/// port 1 (if connected, else dropped). Time source: ingress_ns.
class Meter final : public Element {
 public:
  std::string class_name() const override { return "Meter"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 30; }
  void push(int port, net::PacketPtr pkt) override;

  double rate_pps() const noexcept { return rate_; }

 private:
  double threshold_pps_ = 1e6;
  double rate_ = 0;
  std::uint64_t last_ns_ = 0;
  bool primed_ = false;
};

/// Switch(N, START=0): emits everything to one selectable output;
/// set_output() re-points it at runtime (used for draining/failover).
class Switch final : public Element {
 public:
  std::string class_name() const override { return "Switch"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 10; }
  void push(int port, net::PacketPtr pkt) override;

  void set_output(int out) noexcept { current_ = out; }
  int output() const noexcept { return current_; }

 private:
  std::size_t n_ = 2;
  int current_ = 0;
};

}  // namespace mdp::click
