// Longest-prefix-match routing table (binary trie) and the IPLookup
// element — the Click RadixIPLookup role: route the packet by destination
// prefix to an output port.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "click/element.hpp"
#include "nf/firewall.hpp"  // Prefix

namespace mdp::nf {

/// Binary-trie LPM over IPv4. Values are small ints (ports / next-hop
/// ids). Insertion order is irrelevant: longest prefix wins.
class LpmTable {
 public:
  LpmTable() : nodes_(1) {}

  /// Insert/overwrite a route. len 0 = default route.
  void insert(Prefix prefix, int value);

  /// Longest-prefix match; nullopt when nothing (not even default) covers.
  std::optional<int> lookup(std::uint32_t addr) const;

  /// Remove a route (exact prefix). Returns false if absent.
  bool remove(Prefix prefix);

  std::size_t num_routes() const noexcept { return routes_; }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    int child[2] = {-1, -1};
    int value = -1;  // -1 = no route terminates here
    bool has_value = false;
  };
  std::vector<Node> nodes_;
  std::size_t routes_ = 0;
};

/// Click element: IPLookup("CIDR PORT", ..., "CIDR PORT").
/// Routes each IPv4 packet by dst to the port of its longest matching
/// prefix; unroutable packets are dropped (and counted).
class IPLookup final : public click::Element {
 public:
  std::string class_name() const override { return "IPLookup"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 95; }
  void push(int port, net::PacketPtr pkt) override;

  LpmTable& table() noexcept { return table_; }
  std::uint64_t unroutable() const noexcept { return unroutable_; }

 private:
  LpmTable table_;
  std::uint64_t unroutable_ = 0;
};

}  // namespace mdp::nf
