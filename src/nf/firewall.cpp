#include "nf/firewall.hpp"

#include <cstdlib>
#include <sstream>

#include "click/registry.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

namespace {

bool parse_prefix(const std::string& s, Prefix* out, std::string* err) {
  if (s == "any" || s == "*") {
    *out = Prefix{};
    return true;
  }
  std::string addr = s;
  std::uint8_t len = 32;
  std::size_t slash = s.find('/');
  if (slash != std::string::npos) {
    addr = s.substr(0, slash);
    int l = std::atoi(s.substr(slash + 1).c_str());
    if (l < 0 || l > 32) {
      *err = "bad prefix length in '" + s + "'";
      return false;
    }
    len = static_cast<std::uint8_t>(l);
  }
  std::uint32_t ip;
  if (!net::ipv4_from_string(addr, &ip)) {
    *err = "bad IPv4 address in '" + s + "'";
    return false;
  }
  out->addr = ip;
  out->len = len;
  return true;
}

bool parse_port_range(const std::string& s, PortRange* out,
                      std::string* err) {
  if (s == "any" || s == "*") {
    *out = PortRange{};
    return true;
  }
  std::size_t dash = s.find('-');
  char* end = nullptr;
  if (dash == std::string::npos) {
    unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (*end != '\0' || v > 65535) {
      *err = "bad port '" + s + "'";
      return false;
    }
    out->lo = out->hi = static_cast<std::uint16_t>(v);
    return true;
  }
  unsigned long lo = std::strtoul(s.substr(0, dash).c_str(), &end, 10);
  bool lo_ok = (*end == '\0');
  unsigned long hi = std::strtoul(s.substr(dash + 1).c_str(), &end, 10);
  if (!lo_ok || *end != '\0' || lo > 65535 || hi > 65535 || lo > hi) {
    *err = "bad port range '" + s + "'";
    return false;
  }
  out->lo = static_cast<std::uint16_t>(lo);
  out->hi = static_cast<std::uint16_t>(hi);
  return true;
}

}  // namespace

std::optional<FwRule> FwRule::parse(const std::string& text,
                                    std::string* err) {
  std::istringstream is(text);
  std::string action;
  if (!(is >> action)) {
    *err = "empty rule";
    return std::nullopt;
  }
  FwRule rule;
  if (action == "allow") {
    rule.action = FwAction::kAllow;
  } else if (action == "deny") {
    rule.action = FwAction::kDeny;
  } else {
    *err = "rule must start with allow|deny, got '" + action + "'";
    return std::nullopt;
  }
  std::string kw;
  while (is >> kw) {
    std::string val;
    if (!(is >> val)) {
      *err = "keyword '" + kw + "' missing value";
      return std::nullopt;
    }
    if (kw == "proto") {
      if (val == "tcp") {
        rule.protocol = net::kIpProtoTcp;
      } else if (val == "udp") {
        rule.protocol = net::kIpProtoUdp;
      } else if (val == "any") {
        rule.protocol = 0;
      } else {
        *err = "unknown protocol '" + val + "'";
        return std::nullopt;
      }
    } else if (kw == "src") {
      if (!parse_prefix(val, &rule.src, err)) return std::nullopt;
    } else if (kw == "dst") {
      if (!parse_prefix(val, &rule.dst, err)) return std::nullopt;
    } else if (kw == "sport") {
      if (!parse_port_range(val, &rule.sport, err)) return std::nullopt;
    } else if (kw == "dport") {
      if (!parse_port_range(val, &rule.dport, err)) return std::nullopt;
    } else {
      *err = "unknown keyword '" + kw + "'";
      return std::nullopt;
    }
  }
  return rule;
}

// --- FirewallTable -----------------------------------------------------------

void FirewallTable::add_rule(FwRule rule) {
  rules_.push_back(rule);
  if (engine_ == Engine::kSrcTrie) rebuild_trie();
}

void FirewallTable::set_engine(Engine e) {
  engine_ = e;
  if (engine_ == Engine::kSrcTrie) rebuild_trie();
}

void FirewallTable::rebuild_trie() {
  trie_.clear();
  trie_.emplace_back();
  for (std::uint32_t i = 0; i < rules_.size(); ++i) {
    const Prefix& p = rules_[i].src;
    int node = 0;
    for (std::uint8_t bit = 0; bit < p.len; ++bit) {
      int b = (p.addr >> (31 - bit)) & 1;
      if (trie_[node].child[b] < 0) {
        trie_[node].child[b] = static_cast<int>(trie_.size());
        trie_.emplace_back();
      }
      node = trie_[node].child[b];
    }
    trie_[node].rules.push_back(i);
  }
}

FwAction FirewallTable::decide(const net::FlowKey& f,
                               std::size_t* rule_idx) const noexcept {
  return engine_ == Engine::kSrcTrie ? decide_trie(f, rule_idx)
                                     : decide_linear(f, rule_idx);
}

FwAction FirewallTable::decide_linear(const net::FlowKey& f,
                                      std::size_t* idx) const noexcept {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].matches(f)) {
      if (idx) *idx = i;
      return rules_[i].action;
    }
  }
  if (idx) *idx = rules_.size();
  return default_;
}

FwAction FirewallTable::decide_trie(const net::FlowKey& f,
                                    std::size_t* idx) const noexcept {
  // Walk the source-address trie collecting candidate rules anchored at
  // every prefix of f.src_ip, then first-match = minimum rule index among
  // candidates that fully match.
  std::uint32_t best = UINT32_MAX;
  int node = 0;
  for (std::uint8_t bit = 0; bit <= 32 && node >= 0; ++bit) {
    for (std::uint32_t r : trie_[node].rules) {
      if (r < best && rules_[r].matches(f)) best = r;
    }
    if (bit == 32) break;
    int b = (f.src_ip >> (31 - bit)) & 1;
    node = trie_[node].child[b];
  }
  if (best != UINT32_MAX) {
    if (idx) *idx = best;
    return rules_[best].action;
  }
  if (idx) *idx = rules_.size();
  return default_;
}

// --- Firewall element ----------------------------------------------------------

bool Firewall::configure(const std::vector<std::string>& args,
                         std::string* err) {
  for (const auto& arg : args) {
    if (arg.rfind("default ", 0) == 0) {
      std::string v = arg.substr(8);
      if (v == "allow") {
        table_.set_default(FwAction::kAllow);
      } else if (v == "deny") {
        table_.set_default(FwAction::kDeny);
      } else {
        *err = "default must be allow|deny";
        return false;
      }
      continue;
    }
    if (arg.rfind("engine ", 0) == 0) {
      std::string v = arg.substr(7);
      if (v == "linear") {
        table_.set_engine(FirewallTable::Engine::kLinear);
      } else if (v == "trie") {
        table_.set_engine(FirewallTable::Engine::kSrcTrie);
      } else {
        *err = "engine must be linear|trie";
        return false;
      }
      continue;
    }
    auto rule = FwRule::parse(arg, err);
    if (!rule) return false;
    table_.add_rule(*rule);
  }
  return true;
}

void Firewall::push(int, net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed) {
    ++denied_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return;
  }
  if (table_.decide(parsed->flow) == FwAction::kAllow) {
    ++allowed_;
    output_push(0, std::move(pkt));
  } else {
    ++denied_;
    if (output_connected(1)) output_push(1, std::move(pkt));
  }
}

void Firewall::push_batch(int, click::PacketBatch&& batch) {
  // Allowed packets ride the burst to output 0; denials divert per-packet
  // to output 1 (or drop) without breaking the burst.
  for (auto& pkt : batch) {
    if (!pkt) continue;
    auto parsed = net::parse(*pkt);
    if (parsed && table_.decide(parsed->flow) == FwAction::kAllow) {
      ++allowed_;
      continue;
    }
    ++denied_;
    if (output_connected(1)) {
      output_push(1, std::move(pkt));
    } else {
      pkt.reset();
    }
  }
  output_push_batch(0, std::move(batch));
}

MDP_REGISTER_ELEMENT(Firewall, "Firewall");

}  // namespace mdp::nf
