// LoadBalancer: L4 VIP -> backend (DIP) selection with per-flow affinity.
//
// Two selection policies:
//   - kConsistentHash : 160-vnode consistent-hash ring; backend changes
//                       disturb only O(1/n) of the flow space
//   - kWeightedRR     : smooth weighted round robin (nginx algorithm)
// Affinity: the first packet of a flow picks the backend; subsequent
// packets follow the affinity table so connections never split.
// The packet's dst_ip is rewritten to the chosen DIP with incremental
// checksum patching.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "click/element.hpp"
#include "net/flow_key.hpp"

namespace mdp::nf {

struct Backend {
  std::uint32_t dip = 0;   // host order
  std::uint32_t weight = 1;
  bool healthy = true;
};

class LoadBalancerCore {
 public:
  enum class Policy { kConsistentHash, kWeightedRR };

  explicit LoadBalancerCore(Policy p = Policy::kConsistentHash)
      : policy_(p) {}

  void add_backend(Backend b);
  /// Mark a backend (by DIP) unhealthy; its flows re-resolve on next packet.
  void set_healthy(std::uint32_t dip, bool healthy);

  /// Pick the backend for a flow (affinity table first). Returns 0 if no
  /// healthy backend exists.
  std::uint32_t select(const net::FlowKey& flow);

  std::size_t num_backends() const noexcept { return backends_.size(); }
  std::size_t affinity_entries() const noexcept { return affinity_.size(); }
  Policy policy() const noexcept { return policy_; }

  /// Per-backend packet counts (for balance tests).
  const std::unordered_map<std::uint32_t, std::uint64_t>& hits()
      const noexcept {
    return hits_;
  }

 private:
  static constexpr int kVnodesPerWeight = 160;
  void rebuild_ring();
  std::uint32_t pick_consistent(std::uint64_t hash) const;
  std::uint32_t pick_wrr();
  bool is_healthy(std::uint32_t dip) const;

  Policy policy_;
  std::vector<Backend> backends_;
  std::map<std::uint64_t, std::uint32_t> ring_;  // vnode hash -> dip
  std::unordered_map<net::FlowKey, std::uint32_t, net::FlowKeyHash>
      affinity_;
  std::unordered_map<std::uint32_t, std::uint64_t> hits_;
  // Smooth WRR state.
  std::vector<std::int64_t> wrr_current_;
};

/// Click element: LoadBalancer(VIP, DIP1 [w], DIP2 [w], ... [, policy hash|rr]).
/// Packets whose dst is not the VIP pass through untouched.
class LoadBalancer final : public click::Element {
 public:
  std::string class_name() const override { return "LoadBalancer"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 120; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;
  void push_batch(int, click::PacketBatch&& batch) override {
    act_batch_and_forward(std::move(batch));
  }

  LoadBalancerCore& core() noexcept { return core_; }
  std::uint64_t rewritten() const noexcept { return rewritten_; }

 private:
  LoadBalancerCore core_;
  std::vector<Backend> backends_pending_;  // staged until policy is known
  std::uint32_t vip_ = 0;
  std::uint64_t rewritten_ = 0;
};

}  // namespace mdp::nf
