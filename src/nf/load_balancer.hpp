// LoadBalancer: L4 VIP -> backend (DIP) selection with per-flow affinity.
//
// Two selection policies:
//   - kConsistentHash : 160-vnode consistent-hash ring; backend changes
//                       disturb only O(1/n) of the flow space
//   - kWeightedRR     : smooth weighted round robin (nginx algorithm)
// Affinity: the first packet of a flow picks the backend; subsequent
// packets follow the affinity table so connections never split.
// The packet's dst_ip is rewritten to the chosen DIP with incremental
// checksum patching.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "click/element.hpp"
#include "net/flow_key.hpp"
#include "nf/flow_table.hpp"

namespace mdp::nf {

struct Backend {
  std::uint32_t dip = 0;   // host order
  std::uint32_t weight = 1;
  bool healthy = true;
};

/// Affinity state lives in a bounded second-chance nf::FlowTable: a
/// million-flow affinity footprint is fixed at construction, cold flows
/// are displaced instead of growing memory, and per-tenant caps keep one
/// tenant's connection storm from flushing another tenant's affinity
/// (docs/TENANCY.md). Losing an affinity entry is safe — the flow simply
/// re-resolves through the (stable) consistent-hash ring.
class LoadBalancerCore {
 public:
  enum class Policy { kConsistentHash, kWeightedRR };

  explicit LoadBalancerCore(Policy p = Policy::kConsistentHash,
                            std::size_t affinity_capacity = 1 << 20)
      : policy_(p), affinity_(affinity_capacity) {}

  void add_backend(Backend b);
  /// Mark a backend (by DIP) unhealthy; its flows re-resolve on next packet.
  void set_healthy(std::uint32_t dip, bool healthy);

  /// Pick the backend for a flow (affinity table first). Returns 0 if no
  /// healthy backend exists. `tenant` charges the affinity entry to a
  /// tenant's occupancy cap; a cap-refused entry still load-balances, it
  /// just re-resolves per packet.
  std::uint32_t select(const net::FlowKey& flow, std::uint16_t tenant = 0);

  /// Per-tenant affinity-entry cap (0 = uncapped); docs/TENANCY.md.
  void set_tenant_cap(std::uint16_t tenant, std::size_t cap) {
    affinity_.set_tenant_cap(tenant, cap);
  }
  std::size_t tenant_occupancy(std::uint16_t tenant) const noexcept {
    return affinity_.tenant_occupancy(tenant);
  }

  std::size_t num_backends() const noexcept { return backends_.size(); }
  std::size_t affinity_entries() const noexcept { return affinity_.size(); }
  std::size_t affinity_capacity() const noexcept {
    return affinity_.capacity();
  }
  std::uint64_t affinity_evictions() const noexcept {
    return affinity_.evictions();
  }
  Policy policy() const noexcept { return policy_; }

  /// Per-backend packet counts (for balance tests).
  const std::unordered_map<std::uint32_t, std::uint64_t>& hits()
      const noexcept {
    return hits_;
  }

 private:
  static constexpr int kVnodesPerWeight = 160;
  void rebuild_ring();
  std::uint32_t pick_consistent(std::uint64_t hash) const;
  std::uint32_t pick_wrr();
  bool is_healthy(std::uint32_t dip) const;

  Policy policy_;
  std::vector<Backend> backends_;
  std::map<std::uint64_t, std::uint32_t> ring_;  // vnode hash -> dip
  FlowTable<std::uint32_t> affinity_;            // flow -> dip
  std::unordered_map<std::uint32_t, std::uint64_t> hits_;
  // Smooth WRR state.
  std::vector<std::int64_t> wrr_current_;
};

/// Click element: LoadBalancer(VIP, DIP1 [w], DIP2 [w], ... [, policy hash|rr]).
/// Packets whose dst is not the VIP pass through untouched.
class LoadBalancer final : public click::Element {
 public:
  std::string class_name() const override { return "LoadBalancer"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 120; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;
  void push_batch(int, click::PacketBatch&& batch) override {
    act_batch_and_forward(std::move(batch));
  }

  LoadBalancerCore& core() noexcept { return core_; }
  std::uint64_t rewritten() const noexcept { return rewritten_; }

 private:
  LoadBalancerCore core_;
  std::vector<Backend> backends_pending_;  // staged until policy is known
  std::uint32_t vip_ = 0;
  std::uint64_t rewritten_ = 0;
};

}  // namespace mdp::nf
