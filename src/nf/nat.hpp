// Nat: source NAT with dynamic port allocation (the IPRewriter pattern).
//
// Outbound packets get src_ip rewritten to the external address and
// src_port to a port drawn from the pool; the (internal flow -> external
// port) binding persists for the life of the flow so a flow stays
// recognizable downstream. Checksums (IPv4 + TCP/UDP) are patched
// incrementally (RFC 1624) rather than recomputed.
//
// Bindings expire LRU when the table is full and by idle timeout.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "click/element.hpp"
#include "net/flow_key.hpp"

namespace mdp::nf {

struct NatConfig {
  std::uint32_t external_ip = 0x0a0a0a0a;  // 10.10.10.10
  std::uint16_t port_lo = 10000;
  std::uint16_t port_hi = 60000;
  std::size_t max_entries = 65536;
  std::uint64_t idle_timeout_ns = 120ull * 1'000'000'000;  // 120 s
};

class NatTable {
 public:
  explicit NatTable(NatConfig cfg = {});

  struct Binding {
    std::uint16_t external_port;
    std::uint64_t last_used_ns;
  };

  /// Translate an outbound flow: returns the external port bound to this
  /// flow (allocating one if new), or nullopt if the port pool and table
  /// are exhausted.
  std::optional<std::uint16_t> translate(const net::FlowKey& flow,
                                         std::uint64_t now_ns);

  /// Reverse lookup: which internal flow owns this external port?
  std::optional<net::FlowKey> reverse(std::uint16_t external_port) const;

  /// Drop bindings idle longer than the timeout. Returns count evicted.
  std::size_t expire(std::uint64_t now_ns);

  std::size_t size() const noexcept { return bindings_.size(); }
  std::size_t ports_available() const noexcept { return free_ports_.size(); }
  std::uint64_t evictions() const noexcept { return evictions_; }
  const NatConfig& config() const noexcept { return cfg_; }

 private:
  void evict_lru();
  void erase_binding(const net::FlowKey& flow);

  NatConfig cfg_;
  struct Entry {
    Binding binding;
    std::list<net::FlowKey>::iterator lru_it;
  };
  std::unordered_map<net::FlowKey, Entry, net::FlowKeyHash> bindings_;
  std::unordered_map<std::uint16_t, net::FlowKey> by_port_;
  std::list<net::FlowKey> lru_;  // front = most recent
  std::vector<std::uint16_t> free_ports_;
  std::uint64_t evictions_ = 0;
};

/// Click element: Nat(EXTERNAL_IP [, PORT_LO, PORT_HI]). Output 0 carries
/// translated traffic; packets that cannot be translated (pool exhausted,
/// non-IP) exit port 1 if connected, else drop.
class Nat final : public click::Element {
 public:
  std::string class_name() const override { return "Nat"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 180; }
  void push(int port, net::PacketPtr pkt) override;
  void push_batch(int port, click::PacketBatch&& batch) override;

  NatTable& table() noexcept { return *table_; }
  std::uint64_t translated() const noexcept { return translated_; }
  std::uint64_t failed() const noexcept { return failed_; }

 private:
  /// Translate + rewrite one packet. Returns the packet for output 0, or
  /// null after diverting it to port 1 / dropping it.
  net::PacketPtr translate_one(net::PacketPtr pkt);
  std::unique_ptr<NatTable> table_ = std::make_unique<NatTable>();
  NatConfig cfg_{};
  std::uint64_t translated_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace mdp::nf
