// Nat: source NAT with dynamic port allocation (the IPRewriter pattern).
//
// Outbound packets get src_ip rewritten to the external address and
// src_port to a port drawn from the pool; the (internal flow -> external
// port) binding persists for the life of the flow so a flow stays
// recognizable downstream. Checksums (IPv4 + TCP/UDP) are patched
// incrementally (RFC 1624) rather than recomputed.
//
// Bindings live in a bounded second-chance nf::FlowTable (cold bindings
// displaced under table/port pressure, in-use bindings protected by their
// reference bit) and also expire by idle timeout. With num_external_ips >
// 1 the external side is a (NAT-pool address, port) grid — 20 addresses x
// 50k ports covers a million concurrent bindings, the carrier-grade-NAT
// shape — and per-tenant occupancy caps bound how much of the pool one
// tenant's connection storm can claim (docs/TENANCY.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "click/element.hpp"
#include "net/flow_key.hpp"
#include "nf/flow_table.hpp"

namespace mdp::nf {

struct NatConfig {
  std::uint32_t external_ip = 0x0a0a0a0a;  // 10.10.10.10 (pool base)
  std::uint16_t port_lo = 10000;
  std::uint16_t port_hi = 60000;
  /// Consecutive external addresses starting at external_ip; the usable
  /// binding space is num_external_ips * (port_hi - port_lo + 1).
  std::uint16_t num_external_ips = 1;
  std::size_t max_entries = 65536;
  std::uint64_t idle_timeout_ns = 120ull * 1'000'000'000;  // 120 s
};

class NatTable {
 public:
  explicit NatTable(NatConfig cfg = {});

  struct Binding {
    std::uint32_t external_ip;
    std::uint16_t external_port;
    std::uint64_t last_used_ns;
  };

  /// Translate an outbound flow: returns the external port bound to this
  /// flow (allocating one if new), or nullopt if the pool and table are
  /// exhausted. `tenant` charges the binding to a tenant's occupancy cap.
  std::optional<std::uint16_t> translate(const net::FlowKey& flow,
                                         std::uint64_t now_ns,
                                         std::uint16_t tenant = 0);

  /// Full binding (external ip + port) for an outbound flow.
  std::optional<Binding> translate_binding(const net::FlowKey& flow,
                                           std::uint64_t now_ns,
                                           std::uint16_t tenant = 0);

  /// Reverse lookup on the pool base address: which internal flow owns
  /// this external port? (Single-address pools; for multi-address pools
  /// use the (ip, port) overload.)
  std::optional<net::FlowKey> reverse(std::uint16_t external_port) const;
  std::optional<net::FlowKey> reverse(std::uint32_t external_ip,
                                      std::uint16_t external_port) const;

  /// Drop bindings idle longer than the timeout. Returns count evicted.
  std::size_t expire(std::uint64_t now_ns);

  /// Per-tenant binding cap (0 = uncapped); docs/TENANCY.md.
  void set_tenant_cap(std::uint16_t tenant, std::size_t cap) {
    bindings_.set_tenant_cap(tenant, cap);
  }
  std::size_t tenant_occupancy(std::uint16_t tenant) const noexcept {
    return bindings_.tenant_occupancy(tenant);
  }

  std::size_t size() const noexcept { return bindings_.size(); }
  std::size_t ports_available() const noexcept { return free_addrs_.size(); }
  std::uint64_t evictions() const noexcept { return bindings_.evictions(); }
  std::uint64_t cap_rejections() const noexcept {
    return bindings_.cap_rejections();
  }
  const NatConfig& config() const noexcept { return cfg_; }

 private:
  /// (address index << 16) | port — one code per pool slot.
  std::uint32_t addr_code(std::uint32_t ip, std::uint16_t port) const;
  void release_addr(const Binding& b);

  NatConfig cfg_;
  FlowTable<Binding> bindings_;
  std::unordered_map<std::uint32_t, net::FlowKey> by_addr_;  // code -> flow
  std::vector<std::uint32_t> free_addrs_;  // codes; back = next allocated
};

/// Click element: Nat(EXTERNAL_IP [, PORT_LO, PORT_HI]). Output 0 carries
/// translated traffic; packets that cannot be translated (pool exhausted,
/// non-IP) exit port 1 if connected, else drop.
class Nat final : public click::Element {
 public:
  std::string class_name() const override { return "Nat"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 180; }
  void push(int port, net::PacketPtr pkt) override;
  void push_batch(int port, click::PacketBatch&& batch) override;

  NatTable& table() noexcept { return *table_; }
  std::uint64_t translated() const noexcept { return translated_; }
  std::uint64_t failed() const noexcept { return failed_; }

 private:
  /// Translate + rewrite one packet. Returns the packet for output 0, or
  /// null after diverting it to port 1 / dropping it.
  net::PacketPtr translate_one(net::PacketPtr pkt);
  std::unique_ptr<NatTable> table_ = std::make_unique<NatTable>();
  NatConfig cfg_{};
  std::uint64_t translated_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace mdp::nf
