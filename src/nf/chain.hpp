// ChainBuilder: assembles NF service chains (as Click element pipelines)
// from declarative specs, and provides the canned chains used throughout
// the evaluation (the FW -> NAT -> LB -> Monitor style last-mile pipeline).
//
// Each multipath path instantiates its own chain replica via build_chain();
// Router::chain_cost() of the replica is the base service time the
// discrete-event path model charges per packet.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "click/router.hpp"

namespace mdp::nf {

struct ChainStage {
  std::string cls;                 ///< registered element class name
  std::vector<std::string> args;   ///< configure() arguments
};

struct ChainSpec {
  std::string name;
  std::vector<ChainStage> stages;

  std::size_t length() const noexcept { return stages.size(); }

  /// Canned chains:
  ///   "ipcheck"      : CheckIPHeader
  ///   "fw"           : CheckIPHeader, Firewall(32 rules)
  ///   "fw-nat"       : + Nat
  ///   "fw-nat-lb"    : + LoadBalancer (the default evaluation chain)
  ///   "fw-nat-lb-mon": + FlowMonitor
  ///   "full"         : + Dpi + RateLimiter (6-stage worst case)
  static ChainSpec preset(const std::string& name);

  /// All preset names, shortest chain first (Tab 3 sweeps these).
  static std::vector<std::string> preset_names();
};

/// Generate `n` syntactically distinct firewall rules (deny a few dark
/// prefixes, then allow enumerated /24s) so rule-count sweeps are realistic.
std::vector<std::string> make_firewall_rules(std::size_t n);

struct BuiltChain {
  click::Element* head = nullptr;
  click::Element* tail = nullptr;
  sim::TimeNs cost_ns = 0;  ///< sum of element costs along the chain
};

/// Instantiate `spec` into `router` with element names `<prefix>_<i>`,
/// connecting stage i output 0 -> stage i+1 input 0. Does NOT initialize
/// the router (callers wire sources/sinks first).
std::optional<BuiltChain> build_chain(click::Router& router,
                                      const std::string& prefix,
                                      const ChainSpec& spec,
                                      std::string* err);

/// Run a whole burst through the chain via the Click batch path
/// (head->push_batch): each element processes the full burst before the
/// next — one virtual call per element per burst, same per-packet results
/// as pushing each batch entry through head->push() in order. Survivors
/// flow to whatever is wired downstream of the chain tail.
void process_batch(const BuiltChain& chain, click::PacketBatch&& batch);

}  // namespace mdp::nf
