#include "nf/dpi.hpp"

#include <cstdlib>
#include <queue>

#include "click/registry.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

int AhoCorasick::add_pattern(const std::string& pattern) {
  int id = static_cast<int>(patterns_.size());
  patterns_.push_back(pattern);
  int node = 0;
  for (unsigned char c : pattern) {
    if (nodes_[node].next[c] < 0) {
      nodes_[node].next[c] = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
    }
    node = nodes_[node].next[c];
  }
  nodes_[node].out.push_back(id);
  built_ = false;
  return id;
}

void AhoCorasick::build() {
  // BFS: convert the trie into a deterministic automaton (goto function is
  // total after this pass; fail links merge output sets).
  std::queue<int> bfs;
  for (int c = 0; c < 256; ++c) {
    int v = nodes_[0].next[c];
    if (v < 0) {
      nodes_[0].next[c] = 0;
    } else {
      nodes_[v].fail = 0;
      bfs.push(v);
    }
  }
  while (!bfs.empty()) {
    int u = bfs.front();
    bfs.pop();
    for (int id : nodes_[nodes_[u].fail].out) nodes_[u].out.push_back(id);
    for (int c = 0; c < 256; ++c) {
      int v = nodes_[u].next[c];
      if (v < 0) {
        nodes_[u].next[c] = nodes_[nodes_[u].fail].next[c];
      } else {
        nodes_[v].fail = nodes_[nodes_[u].fail].next[c];
        bfs.push(v);
      }
    }
  }
  built_ = true;
}

std::size_t AhoCorasick::match_count(const std::byte* data, std::size_t len,
                                     int* first_match) const {
  if (first_match) *first_match = -1;
  if (!built_) return 0;
  std::size_t count = 0;
  int node = 0;
  for (std::size_t i = 0; i < len; ++i) {
    node = nodes_[node].next[std::to_integer<std::uint8_t>(data[i])];
    if (!nodes_[node].out.empty()) {
      count += nodes_[node].out.size();
      if (first_match && *first_match < 0)
        *first_match = nodes_[node].out.front();
    }
  }
  return count;
}

std::size_t AhoCorasick::match_count_first_only(const std::byte* data,
                                                std::size_t len,
                                                int* first) const {
  *first = -1;
  if (!built_) return 0;
  int node = 0;
  for (std::size_t i = 0; i < len; ++i) {
    node = nodes_[node].next[std::to_integer<std::uint8_t>(data[i])];
    if (!nodes_[node].out.empty()) {
      *first = nodes_[node].out.front();
      return 1;
    }
  }
  return 0;
}

// --- Dpi element -----------------------------------------------------------------

bool Dpi::configure(const std::vector<std::string>& args, std::string* err) {
  if (args.size() < 2) {
    *err = "Dpi(drop|\"paint N\", PATTERN, ...)";
    return false;
  }
  if (args[0] == "drop") {
    action_ = Action::kDrop;
  } else if (args[0].rfind("paint ", 0) == 0) {
    action_ = Action::kPaint;
    int p = std::atoi(args[0].substr(6).c_str());
    if (p < 0 || p > 255) {
      *err = "Dpi: paint color 0..255";
      return false;
    }
    paint_ = static_cast<std::uint8_t>(p);
  } else {
    *err = "Dpi: unknown action '" + args[0] + "'";
    return false;
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string pat = args[i];
    // Allow quoted patterns so commas/spaces survive config parsing.
    if (pat.size() >= 2 && pat.front() == '"' && pat.back() == '"')
      pat = pat.substr(1, pat.size() - 2);
    if (pat.empty()) {
      *err = "Dpi: empty pattern";
      return false;
    }
    ac_.add_pattern(pat);
  }
  return true;
}

bool Dpi::initialize(std::string*) {
  if (!ac_.built()) ac_.build();
  return true;
}

void Dpi::push(int, net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  const std::byte* payload = pkt->data();
  std::size_t len = pkt->length();
  if (parsed) {
    payload = pkt->data() + parsed->payload_offset;
    len = parsed->payload_len;
  }
  int first = -1;
  std::size_t hits = ac_.match_count(payload, len, &first);
  if (hits == 0) {
    ++clean_;
    output_push(0, std::move(pkt));
    return;
  }
  ++matched_;
  if (action_ == Action::kPaint) {
    pkt->anno().paint = paint_;
    output_push(0, std::move(pkt));
  } else if (output_connected(1)) {
    output_push(1, std::move(pkt));
  }
  // else: drop
}

MDP_REGISTER_ELEMENT(Dpi, "Dpi");

}  // namespace mdp::nf
