#include "nf/nat.hpp"

#include "click/registry.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

NatTable::NatTable(NatConfig cfg)
    : cfg_(cfg),
      bindings_(cfg.max_entries) {
  if (cfg_.num_external_ips == 0) cfg_.num_external_ips = 1;
  const std::size_t ports_per_ip =
      static_cast<std::size_t>(cfg_.port_hi) - cfg_.port_lo + 1;
  free_addrs_.reserve(ports_per_ip * cfg_.num_external_ips);
  // Populate descending (ip index, then port) so allocation starts at
  // (external_ip, port_lo) and walks ports before spilling to the next
  // pool address (pop_back).
  for (std::uint32_t ip = cfg_.num_external_ips; ip-- > 0;) {
    for (std::uint32_t p = cfg_.port_hi; p >= cfg_.port_lo; --p) {
      free_addrs_.push_back((ip << 16) | p);
      if (p == 0) break;  // uint wrap guard
    }
  }
  // Displaced bindings hand their pool slot back before the entry goes.
  bindings_.set_evict_callback(
      [this](const net::FlowKey&, const Binding& b, std::uint16_t) {
        release_addr(b);
      });
}

std::uint32_t NatTable::addr_code(std::uint32_t ip,
                                  std::uint16_t port) const {
  return ((ip - cfg_.external_ip) << 16) | port;
}

void NatTable::release_addr(const Binding& b) {
  free_addrs_.push_back(addr_code(b.external_ip, b.external_port));
  by_addr_.erase(addr_code(b.external_ip, b.external_port));
}

std::optional<NatTable::Binding> NatTable::translate_binding(
    const net::FlowKey& flow, std::uint64_t now_ns, std::uint16_t tenant) {
  if (Binding* b = bindings_.find(flow)) {
    b->last_used_ns = now_ns;
    return *b;
  }
  if (free_addrs_.empty()) {
    // Pool exhausted: displace a cold binding the same way capacity
    // pressure would (its callback returns the slot to the pool).
    if (!bindings_.evict_one() || free_addrs_.empty()) return std::nullopt;
  }
  // Claim the slot BEFORE inserting: the insert itself may displace a
  // cold binding, whose callback pushes a freed code onto free_addrs_.
  const std::uint32_t code = free_addrs_.back();
  free_addrs_.pop_back();
  Binding b;
  b.external_ip = cfg_.external_ip + (code >> 16);
  b.external_port = static_cast<std::uint16_t>(code & 0xffff);
  b.last_used_ns = now_ns;
  if (!bindings_.insert(flow, tenant, b)) {
    free_addrs_.push_back(code);  // tenant at cap with nothing evictable
    return std::nullopt;
  }
  by_addr_.emplace(code, flow);
  return b;
}

std::optional<std::uint16_t> NatTable::translate(const net::FlowKey& flow,
                                                 std::uint64_t now_ns,
                                                 std::uint16_t tenant) {
  auto b = translate_binding(flow, now_ns, tenant);
  if (!b) return std::nullopt;
  return b->external_port;
}

std::optional<net::FlowKey> NatTable::reverse(
    std::uint16_t external_port) const {
  return reverse(cfg_.external_ip, external_port);
}

std::optional<net::FlowKey> NatTable::reverse(
    std::uint32_t external_ip, std::uint16_t external_port) const {
  auto it = by_addr_.find(addr_code(external_ip, external_port));
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

std::size_t NatTable::expire(std::uint64_t now_ns) {
  return bindings_.erase_if(
      [&](const net::FlowKey&, const Binding& b, std::uint16_t) {
        const bool stale =
            now_ns - b.last_used_ns >= cfg_.idle_timeout_ns;
        if (stale) release_addr(b);
        return stale;
      });
}

// --- Nat element ----------------------------------------------------------------

bool Nat::configure(const std::vector<std::string>& args, std::string* err) {
  NatConfig cfg;
  if (!args.empty()) {
    if (!net::ipv4_from_string(args[0], &cfg.external_ip)) {
      *err = "Nat: bad external IP '" + args[0] + "'";
      return false;
    }
  }
  if (args.size() >= 3) {
    int lo = std::atoi(args[1].c_str());
    int hi = std::atoi(args[2].c_str());
    if (lo <= 0 || hi > 65535 || lo > hi) {
      *err = "Nat: bad port range";
      return false;
    }
    cfg.port_lo = static_cast<std::uint16_t>(lo);
    cfg.port_hi = static_cast<std::uint16_t>(hi);
  } else if (args.size() == 2) {
    *err = "Nat(EXTERNAL_IP [, PORT_LO, PORT_HI])";
    return false;
  }
  cfg_ = cfg;
  table_ = std::make_unique<NatTable>(cfg);
  return true;
}

net::PacketPtr Nat::translate_one(net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed || !parsed->has_l4) {
    ++failed_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return net::PacketPtr{nullptr};
  }
  auto binding = table_->translate_binding(parsed->flow, pkt->anno().ingress_ns,
                                           pkt->anno().tenant_id);
  if (!binding) {
    ++failed_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return net::PacketPtr{nullptr};
  }

  net::Ipv4View ip(pkt->data() + parsed->l3_offset);
  std::uint32_t old_ip = ip.src();
  std::uint16_t old_port = parsed->flow.src_port;
  std::uint32_t new_ip = binding->external_ip;
  std::uint16_t new_port = binding->external_port;

  ip.set_src(new_ip);
  ip.set_checksum(net::checksum_update32(ip.checksum(), old_ip, new_ip));

  std::byte* l4 = pkt->data() + parsed->l4_offset;
  if (parsed->flow.protocol == net::kIpProtoTcp) {
    net::TcpView tcp(l4);
    tcp.set_src_port(new_port);
    std::uint16_t c = tcp.checksum();
    c = net::checksum_update32(c, old_ip, new_ip);  // pseudo-header
    c = net::checksum_update16(c, old_port, new_port);
    tcp.set_checksum(c);
  } else {
    net::UdpView udp(l4);
    udp.set_src_port(new_port);
    std::uint16_t c = udp.checksum();
    if (c != 0) {  // 0 = checksum disabled
      c = net::checksum_update32(c, old_ip, new_ip);
      c = net::checksum_update16(c, old_port, new_port);
      udp.set_checksum(c == 0 ? 0xffff : c);
    }
  }

  // The flow identity changed; refresh the cached hash annotation.
  net::FlowKey new_flow = parsed->flow;
  new_flow.src_ip = new_ip;
  new_flow.src_port = new_port;
  pkt->anno().flow_hash = net::hash_flow(new_flow);

  ++translated_;
  return pkt;
}

void Nat::push(int, net::PacketPtr pkt) {
  net::PacketPtr out = translate_one(std::move(pkt));
  if (out) output_push(0, std::move(out));
}

void Nat::push_batch(int, click::PacketBatch&& batch) {
  for (auto& pkt : batch)
    if (pkt) pkt = translate_one(std::move(pkt));
  output_push_batch(0, std::move(batch));
}

MDP_REGISTER_ELEMENT(Nat, "Nat");

}  // namespace mdp::nf
