#include "nf/nat.hpp"

#include "click/registry.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

NatTable::NatTable(NatConfig cfg) : cfg_(cfg) {
  free_ports_.reserve(cfg_.port_hi - cfg_.port_lo + 1);
  // Populate descending so allocation starts at port_lo (pop_back).
  for (std::uint32_t p = cfg_.port_hi; p >= cfg_.port_lo; --p) {
    free_ports_.push_back(static_cast<std::uint16_t>(p));
    if (p == 0) break;  // uint wrap guard
  }
}

std::optional<std::uint16_t> NatTable::translate(const net::FlowKey& flow,
                                                 std::uint64_t now_ns) {
  auto it = bindings_.find(flow);
  if (it != bindings_.end()) {
    it->second.binding.last_used_ns = now_ns;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.binding.external_port;
  }
  if (bindings_.size() >= cfg_.max_entries) evict_lru();
  if (free_ports_.empty()) {
    evict_lru();
    if (free_ports_.empty()) return std::nullopt;
  }
  std::uint16_t port = free_ports_.back();
  free_ports_.pop_back();
  lru_.push_front(flow);
  bindings_.emplace(flow, Entry{Binding{port, now_ns}, lru_.begin()});
  by_port_.emplace(port, flow);
  return port;
}

std::optional<net::FlowKey> NatTable::reverse(
    std::uint16_t external_port) const {
  auto it = by_port_.find(external_port);
  if (it == by_port_.end()) return std::nullopt;
  return it->second;
}

void NatTable::erase_binding(const net::FlowKey& flow) {
  auto it = bindings_.find(flow);
  if (it == bindings_.end()) return;
  free_ports_.push_back(it->second.binding.external_port);
  by_port_.erase(it->second.binding.external_port);
  lru_.erase(it->second.lru_it);
  bindings_.erase(it);
  ++evictions_;
}

void NatTable::evict_lru() {
  if (lru_.empty()) return;
  erase_binding(lru_.back());
}

std::size_t NatTable::expire(std::uint64_t now_ns) {
  std::size_t n = 0;
  while (!lru_.empty()) {
    const net::FlowKey& oldest = lru_.back();
    auto it = bindings_.find(oldest);
    if (it == bindings_.end()) break;
    if (now_ns - it->second.binding.last_used_ns < cfg_.idle_timeout_ns)
      break;
    erase_binding(oldest);
    ++n;
  }
  return n;
}

// --- Nat element ----------------------------------------------------------------

bool Nat::configure(const std::vector<std::string>& args, std::string* err) {
  NatConfig cfg;
  if (!args.empty()) {
    if (!net::ipv4_from_string(args[0], &cfg.external_ip)) {
      *err = "Nat: bad external IP '" + args[0] + "'";
      return false;
    }
  }
  if (args.size() >= 3) {
    int lo = std::atoi(args[1].c_str());
    int hi = std::atoi(args[2].c_str());
    if (lo <= 0 || hi > 65535 || lo > hi) {
      *err = "Nat: bad port range";
      return false;
    }
    cfg.port_lo = static_cast<std::uint16_t>(lo);
    cfg.port_hi = static_cast<std::uint16_t>(hi);
  } else if (args.size() == 2) {
    *err = "Nat(EXTERNAL_IP [, PORT_LO, PORT_HI])";
    return false;
  }
  cfg_ = cfg;
  table_ = std::make_unique<NatTable>(cfg);
  return true;
}

net::PacketPtr Nat::translate_one(net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed || !parsed->has_l4) {
    ++failed_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return net::PacketPtr{nullptr};
  }
  auto port = table_->translate(parsed->flow, pkt->anno().ingress_ns);
  if (!port) {
    ++failed_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return net::PacketPtr{nullptr};
  }

  net::Ipv4View ip(pkt->data() + parsed->l3_offset);
  std::uint32_t old_ip = ip.src();
  std::uint16_t old_port = parsed->flow.src_port;
  std::uint32_t new_ip = table_->config().external_ip;
  std::uint16_t new_port = *port;

  ip.set_src(new_ip);
  ip.set_checksum(net::checksum_update32(ip.checksum(), old_ip, new_ip));

  std::byte* l4 = pkt->data() + parsed->l4_offset;
  if (parsed->flow.protocol == net::kIpProtoTcp) {
    net::TcpView tcp(l4);
    tcp.set_src_port(new_port);
    std::uint16_t c = tcp.checksum();
    c = net::checksum_update32(c, old_ip, new_ip);  // pseudo-header
    c = net::checksum_update16(c, old_port, new_port);
    tcp.set_checksum(c);
  } else {
    net::UdpView udp(l4);
    udp.set_src_port(new_port);
    std::uint16_t c = udp.checksum();
    if (c != 0) {  // 0 = checksum disabled
      c = net::checksum_update32(c, old_ip, new_ip);
      c = net::checksum_update16(c, old_port, new_port);
      udp.set_checksum(c == 0 ? 0xffff : c);
    }
  }

  // The flow identity changed; refresh the cached hash annotation.
  net::FlowKey new_flow = parsed->flow;
  new_flow.src_ip = new_ip;
  new_flow.src_port = new_port;
  pkt->anno().flow_hash = net::hash_flow(new_flow);

  ++translated_;
  return pkt;
}

void Nat::push(int, net::PacketPtr pkt) {
  net::PacketPtr out = translate_one(std::move(pkt));
  if (out) output_push(0, std::move(out));
}

void Nat::push_batch(int, click::PacketBatch&& batch) {
  for (auto& pkt : batch)
    if (pkt) pkt = translate_one(std::move(pkt));
  output_push_batch(0, std::move(batch));
}

MDP_REGISTER_ELEMENT(Nat, "Nat");

}  // namespace mdp::nf
