#include "nf/flow_cache.hpp"

#include "click/elements.hpp"
#include "click/registry.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

const CachedAction* FlowCacheCore::lookup(const net::FlowKey& flow) {
  const CachedAction* a = table_.find(flow);
  if (!a) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return a;
}

void FlowCacheCore::install(const net::FlowKey& flow, CachedAction action,
                            std::uint16_t tenant) {
  table_.insert(flow, tenant, action);
}

void FlowCacheCore::invalidate(const net::FlowKey& flow) {
  table_.erase(flow);
}

void FlowCacheCore::clear() { table_.clear(); }

// --- FlowCache element ------------------------------------------------------

bool FlowCache::configure(const std::vector<std::string>& args,
                          std::string* err) {
  if (args.empty()) return true;
  std::size_t cap;
  if (args.size() > 1 || !click::parse_size_arg(args[0], &cap) || cap == 0) {
    *err = "FlowCache(CAPACITY)";
    return false;
  }
  cache_ = FlowCacheCore(cap);
  return true;
}

void FlowCache::apply(const CachedAction& a, net::Packet& pkt,
                      const net::ParsedPacket& parsed) {
  if (!a.rewrite) return;
  net::Ipv4View ip(pkt.data() + parsed.l3_offset);
  std::uint16_t csum = ip.checksum();
  csum = net::checksum_update32(csum, ip.src(), a.new_src_ip);
  csum = net::checksum_update32(csum, ip.dst(), a.new_dst_ip);
  ip.set_src(a.new_src_ip);
  ip.set_dst(a.new_dst_ip);
  ip.set_checksum(csum);
  if (parsed.has_l4) {
    std::byte* l4 = pkt.data() + parsed.l4_offset;
    if (parsed.flow.protocol == net::kIpProtoTcp) {
      net::TcpView tcp(l4);
      tcp.set_src_port(a.new_src_port);
      tcp.set_dst_port(a.new_dst_port);
    } else if (parsed.flow.protocol == net::kIpProtoUdp) {
      net::UdpView udp(l4);
      udp.set_src_port(a.new_src_port);
      udp.set_dst_port(a.new_dst_port);
      udp.set_checksum(0);  // fast path: recompute disabled, mark absent
    }
  }
}

void FlowCache::push(int port, net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);

  if (port == 1) {
    // Slow-path return: learn the composite rewrite for the ORIGINAL flow.
    auto it = pending_.find(pkt->anno().cache_cookie);
    if (it != pending_.end() && parsed) {
      CachedAction a;
      a.rewrite = !(parsed->flow == it->second);
      a.new_src_ip = parsed->flow.src_ip;
      a.new_dst_ip = parsed->flow.dst_ip;
      a.new_src_port = parsed->flow.src_port;
      a.new_dst_port = parsed->flow.dst_port;
      cache_.install(it->second, a, pkt->anno().tenant_id);
      pending_.erase(it);
    }
    pkt->anno().cache_cookie = 0;
    output_push(0, std::move(pkt));
    return;
  }

  if (!parsed) {
    // Non-IP cannot be cached: straight to the slow path.
    output_push(1, std::move(pkt));
    return;
  }

  if (const CachedAction* a = cache_.lookup(parsed->flow)) {
    if (a->drop) {
      ++dropped_;
      return;
    }
    apply(*a, *pkt, *parsed);
    output_push(0, std::move(pkt));
    return;
  }

  // Miss: remember the original flow under a cookie and take the slow path.
  std::uint64_t cookie = next_cookie_++;
  pkt->anno().cache_cookie = cookie;
  pending_.emplace(cookie, parsed->flow);
  output_push(1, std::move(pkt));
}

/// Teach the cache that a flow should be dropped (e.g. the slow path's
/// firewall filtered it). Exposed for controller-style integration.
MDP_REGISTER_ELEMENT(FlowCache, "FlowCache");

}  // namespace mdp::nf
