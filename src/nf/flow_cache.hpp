// FlowCache: the vSwitch fast path. An exact-match (5-tuple) cache in
// front of the slow-path NF chain, in the style of OVS's exact-match/
// megaflow cache: the first packet of a flow takes the slow path (output
// 1) and the controller of the cache (the chain tail) installs the
// resulting verdict; subsequent packets hit the cache and bypass the chain
// entirely (output 0).
//
// Entries hold the flow's cached action (pass/drop) and rewrite template
// (new src/dst ip+port learned from the slow path's output packet).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "click/element.hpp"
#include "net/flow_key.hpp"
#include "net/packet_builder.hpp"
#include "nf/flow_table.hpp"

namespace mdp::nf {

struct CachedAction {
  bool drop = false;
  /// Rewrite template: apply these fields to matching packets (the
  /// composite effect of NAT + LB learned from one slow-path traversal).
  bool rewrite = false;
  std::uint32_t new_src_ip = 0;
  std::uint32_t new_dst_ip = 0;
  std::uint16_t new_src_port = 0;
  std::uint16_t new_dst_port = 0;
};

/// Exact-match cache over a bounded second-chance nf::FlowTable: memory is
/// fixed at construction, a cache hit refreshes the entry's reference bit,
/// and a full cache displaces the coldest entry. Per-tenant occupancy caps
/// (set_tenant_cap) keep one tenant's flow churn from flushing another's
/// working set — see docs/TENANCY.md for the eviction guarantees.
class FlowCacheCore {
 public:
  explicit FlowCacheCore(std::size_t capacity = 1 << 15)
      : table_(capacity) {}

  const CachedAction* lookup(const net::FlowKey& flow);
  void install(const net::FlowKey& flow, CachedAction action,
               std::uint16_t tenant = 0);
  void invalidate(const net::FlowKey& flow);
  void clear();

  /// Per-tenant occupancy cap (0 = uncapped); docs/TENANCY.md.
  void set_tenant_cap(std::uint16_t tenant, std::size_t cap) {
    table_.set_tenant_cap(tenant, cap);
  }
  std::size_t tenant_occupancy(std::uint16_t tenant) const noexcept {
    return table_.tenant_occupancy(tenant);
  }

  std::size_t size() const noexcept { return table_.size(); }
  std::size_t capacity() const noexcept { return table_.capacity(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return table_.evictions(); }
  std::uint64_t cap_rejections() const noexcept {
    return table_.cap_rejections();
  }
  double hit_rate() const noexcept {
    std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }

 private:
  FlowTable<CachedAction> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Click element: FlowCache(CAPACITY=32768).
///   input 0: packets from the wire. Cache hit => apply action, output 0
///            (or drop). Miss => output 1 (the slow path).
///   input 1: packets returning from the slow path. The element learns
///            the (original flow -> observed rewrite) mapping, installs
///            it, and emits on output 0.
/// The original flow of a slow-path packet is carried in a stash keyed by
/// a cookie annotation (paint is too small; we use flow_hash as cookie,
/// set on the miss path).
class FlowCache final : public click::Element {
 public:
  std::string class_name() const override { return "FlowCache"; }
  int n_inputs() const override { return -1; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 45; }  // fast-path cost
  void push(int port, net::PacketPtr pkt) override;

  FlowCacheCore& core() noexcept { return cache_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  void apply(const CachedAction& a, net::Packet& pkt,
             const net::ParsedPacket& parsed);

  FlowCacheCore cache_;
  // Original 5-tuple of in-flight slow-path packets, keyed by cookie.
  std::unordered_map<std::uint64_t, net::FlowKey> pending_;
  std::uint64_t next_cookie_ = 1;
  std::uint64_t dropped_ = 0;
};

}  // namespace mdp::nf
