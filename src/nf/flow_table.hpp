// FlowTable: the bounded-memory flow state container behind every NF table
// (NAT bindings, conntrack entries, LB affinity, the vSwitch flow cache),
// sized for 1M+ concurrent flows. Contract in docs/TENANCY.md.
//
// Design:
//   - Open addressing (linear probing) over a slot array allocated ONCE at
//     construction — memory is bounded by capacity for the life of the
//     table, no rehashing, no per-entry heap nodes. Deletion uses
//     backward-shift compaction, so there are no tombstones and probe
//     chains never rot under churn.
//   - Eviction is second-chance (clock): every entry carries a reference
//     bit set on lookup, NOT on insert. The hand sweeps slots, clears set
//     bits, and evicts the first cold entry. Because insertion grants no
//     reference, a connection storm of one-packet flows recycles its own
//     entries instead of displacing another tenant's active working set —
//     the scan-resistance that makes the tenancy isolation story work.
//   - Per-tenant occupancy caps: a tenant at its cap may only displace its
//     OWN entries (the clock sweep filters by tenant); it can never evict
//     another tenant's state. Caps that sum to <= capacity give strict
//     isolation; uncapped tenants compete for the remainder.
//   - Pinning: an entry pinned by the owner (in-flight flow: mid-handshake
//     connection, slow-path packet outstanding) is skipped by the clock
//     hand — eviction is deferred (counted) until unpin. If every
//     candidate is pinned the insert fails rather than evicts.
//
// Single-writer, like the Click elements that own these tables. All
// operations are deterministic for deterministic call sequences.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/flow_key.hpp"

namespace mdp::nf {

template <typename Value>
class FlowTable {
 public:
  /// Sentinel for "sweep over every tenant".
  static constexpr std::uint16_t kAnyTenant = 0xffff;

  /// Called just before an entry is evicted by the clock hand (NOT on
  /// erase/clear): owners reclaim derived state (NAT frees the port).
  using EvictFn = std::function<void(const net::FlowKey&, const Value&,
                                     std::uint16_t tenant)>;

  explicit FlowTable(std::size_t capacity = 1 << 15)
      : capacity_(capacity ? capacity : 1) {
    std::size_t want = capacity_ * 2;
    if (want < 16) want = 16;
    slots_.resize(std::bit_ceil(want));
    mask_ = slots_.size() - 1;
  }

  // Movable (the owning cores are copied around in configure()).
  FlowTable(FlowTable&&) noexcept = default;
  FlowTable& operator=(FlowTable&&) noexcept = default;
  FlowTable(const FlowTable& o)
      : capacity_(o.capacity_), slots_(o.slots_), mask_(o.mask_),
        hand_(o.hand_), size_(o.size_), tenant_occ_(o.tenant_occ_),
        tenant_cap_(o.tenant_cap_), on_evict_(o.on_evict_),
        evictions_(o.evictions_), cap_rejections_(o.cap_rejections_),
        pinned_deferrals_(o.pinned_deferrals_) {}
  FlowTable& operator=(const FlowTable& o) {
    FlowTable tmp(o);
    *this = std::move(tmp);
    return *this;
  }

  /// Lookup; a hit sets the entry's reference bit (it earns its second
  /// chance). Returns nullptr on miss. The pointer is invalidated by any
  /// mutating call.
  Value* find(const net::FlowKey& k) noexcept {
    const std::size_t i = find_slot(k);
    if (i == kNone) return nullptr;
    slots_[i].ref = true;
    return &slots_[i].value;
  }

  /// Lookup without touching the reference bit (pure read).
  const Value* peek(const net::FlowKey& k) const noexcept {
    const std::size_t i = find_slot(k);
    return i == kNone ? nullptr : &slots_[i].value;
  }

  /// Insert or update. An update refreshes the value and sets the
  /// reference bit. A fresh insert may displace a cold entry (second
  /// chance, honoring the tenant cap rule above); it fails — nullptr,
  /// counted in cap_rejections() — when the tenant is at its cap and owns
  /// only pinned/unevictable entries, or the table is full of pinned
  /// entries.
  Value* insert(const net::FlowKey& k, std::uint16_t tenant, Value v) {
    const std::size_t hit = find_slot(k);
    if (hit != kNone) {
      slots_[hit].value = std::move(v);
      slots_[hit].ref = true;
      return &slots_[hit].value;
    }
    const std::size_t cap = tenant_cap(tenant);
    if (cap != 0 && tenant_occupancy(tenant) >= cap) {
      // At the tenant cap: only the tenant's own entries may make room.
      if (!evict_one(tenant)) {
        ++cap_rejections_;
        return nullptr;
      }
    }
    if (size_ >= capacity_ && !evict_one(kAnyTenant)) {
      ++cap_rejections_;
      return nullptr;
    }
    std::size_t i = net::hash_flow(k) & mask_;
    while (slots_[i].used) i = (i + 1) & mask_;
    Slot& s = slots_[i];
    s.key = k;
    s.value = std::move(v);
    s.tenant = tenant;
    s.used = true;
    s.ref = false;  // insertion grants no reference: scan resistance
    s.pinned = false;
    ++size_;
    bump_occ(tenant, +1);
    return &s.value;
  }

  /// Remove an entry (owner-initiated; does NOT fire the evict callback
  /// and does not count as an eviction).
  bool erase(const net::FlowKey& k) {
    const std::size_t i = find_slot(k);
    if (i == kNone) return false;
    erase_slot(i);
    return true;
  }

  /// Pin/unpin: the clock hand defers eviction of pinned entries.
  bool pin(const net::FlowKey& k) noexcept {
    const std::size_t i = find_slot(k);
    if (i == kNone) return false;
    slots_[i].pinned = true;
    return true;
  }
  bool unpin(const net::FlowKey& k) noexcept {
    const std::size_t i = find_slot(k);
    if (i == kNone) return false;
    slots_[i].pinned = false;
    return true;
  }

  /// Evict one cold entry (clock sweep), optionally restricted to
  /// `tenant`'s entries. Fires the evict callback. Returns false when no
  /// candidate exists (empty / all pinned). Exposed so owners under
  /// resource pressure beyond occupancy (NAT port exhaustion) can force
  /// room the same way capacity pressure does.
  bool evict_one(std::uint16_t tenant = kAnyTenant) {
    // Two full laps: the first may only be clearing reference bits.
    const std::size_t budget = 2 * slots_.size();
    for (std::size_t n = 0; n < budget; ++n) {
      const std::size_t i = hand_;
      hand_ = (hand_ + 1) & mask_;
      Slot& s = slots_[i];
      if (!s.used) continue;
      if (tenant != kAnyTenant && s.tenant != tenant) continue;
      if (s.pinned) {
        ++pinned_deferrals_;
        continue;
      }
      if (s.ref) {
        s.ref = false;
        continue;
      }
      if (on_evict_) on_evict_(s.key, s.value, s.tenant);
      ++evictions_;
      erase_slot(i);
      return true;
    }
    return false;
  }

  /// Erase every entry for which `pred(key, value, tenant)` returns true
  /// (idle-timeout expiry). Owner-initiated: no evict callback, not
  /// counted as evictions. Returns the number erased.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t n = 0;
    std::size_t i = 0;
    while (i < slots_.size()) {
      Slot& s = slots_[i];
      if (s.used && pred(static_cast<const net::FlowKey&>(s.key),
                         static_cast<const Value&>(s.value), s.tenant)) {
        erase_slot(i);  // backward shift may move a new entry into i
        ++n;
      } else {
        ++i;
      }
    }
    return n;
  }

  /// Visit every live entry: fn(key, value, tenant). Read-only.
  template <typename Fn>
  void for_each(Fn fn) const {
    for (const Slot& s : slots_)
      if (s.used) fn(s.key, s.value, s.tenant);
  }

  void clear() {
    for (Slot& s : slots_) s.used = false;
    size_ = 0;
    hand_ = 0;
    tenant_occ_.assign(tenant_occ_.size(), 0);
  }

  void set_evict_callback(EvictFn fn) { on_evict_ = std::move(fn); }

  /// Cap `tenant`'s occupancy (0 = uncapped). Applies to future inserts;
  /// existing entries above a lowered cap age out through normal churn.
  void set_tenant_cap(std::uint16_t tenant, std::size_t cap) {
    if (tenant_cap_.size() <= tenant) tenant_cap_.resize(tenant + 1, 0);
    tenant_cap_[tenant] = cap;
  }
  std::size_t tenant_cap(std::uint16_t tenant) const noexcept {
    return tenant < tenant_cap_.size() ? tenant_cap_[tenant] : 0;
  }
  std::size_t tenant_occupancy(std::uint16_t tenant) const noexcept {
    return tenant < tenant_occ_.size() ? tenant_occ_[tenant] : 0;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return size_ >= capacity_; }
  /// Entries displaced by the clock hand (capacity / cap / owner pressure).
  std::uint64_t evictions() const noexcept { return evictions_; }
  /// Inserts refused because every candidate entry was pinned.
  std::uint64_t cap_rejections() const noexcept { return cap_rejections_; }
  /// Times the hand skipped a pinned (in-flight) entry it would otherwise
  /// have considered.
  std::uint64_t pinned_deferrals() const noexcept {
    return pinned_deferrals_;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Slot {
    net::FlowKey key{};
    Value value{};
    std::uint16_t tenant = 0;
    bool used = false;
    bool ref = false;
    bool pinned = false;
  };

  std::size_t find_slot(const net::FlowKey& k) const noexcept {
    std::size_t i = net::hash_flow(k) & mask_;
    while (slots_[i].used) {
      if (slots_[i].key == k) return i;
      i = (i + 1) & mask_;
    }
    return kNone;
  }

  /// Backward-shift deletion: pull forward-chain entries back over the
  /// hole so linear probing never needs tombstones.
  void erase_slot(std::size_t i) {
    bump_occ(slots_[i].tenant, -1);
    --size_;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!slots_[j].used) break;
      const std::size_t ideal = net::hash_flow(slots_[j].key) & mask_;
      // Entry at j may move into the hole at i iff its probe chain from
      // `ideal` covers i: (j - ideal) mod S >= (j - i) mod S.
      if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    slots_[i].used = false;
    slots_[i].ref = false;
    slots_[i].pinned = false;
  }

  void bump_occ(std::uint16_t tenant, int delta) {
    if (tenant_occ_.size() <= tenant) tenant_occ_.resize(tenant + 1, 0);
    tenant_occ_[tenant] += static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(delta));
  }

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t hand_ = 0;
  std::size_t size_ = 0;
  std::vector<std::size_t> tenant_occ_;
  std::vector<std::size_t> tenant_cap_;
  EvictFn on_evict_;
  std::uint64_t evictions_ = 0;
  std::uint64_t cap_rejections_ = 0;
  std::uint64_t pinned_deferrals_ = 0;
};

}  // namespace mdp::nf
