// RateLimiter: token-bucket policer. Time comes from the packet's
// ingress_ns annotation (virtual time in simulation, wall clock in the
// threaded data plane) so the element works identically in both modes.
#pragma once

#include <cstdint>
#include <string>

#include "click/element.hpp"

namespace mdp::nf {

class TokenBucket {
 public:
  /// @param rate_bps   sustained rate in bytes per second
  /// @param burst_bytes bucket depth
  TokenBucket(double rate_bps, double burst_bytes)
      : rate_bps_(rate_bps), burst_(burst_bytes), tokens_(burst_bytes) {}

  /// True if `bytes` may pass at time `now_ns` (consumes tokens).
  bool admit(std::size_t bytes, std::uint64_t now_ns) noexcept {
    refill(now_ns);
    if (tokens_ >= static_cast<double>(bytes)) {
      tokens_ -= static_cast<double>(bytes);
      return true;
    }
    return false;
  }

  double tokens() const noexcept { return tokens_; }
  double rate_bps() const noexcept { return rate_bps_; }
  double burst() const noexcept { return burst_; }

 private:
  void refill(std::uint64_t now_ns) noexcept {
    if (!primed_) {
      primed_ = true;
      last_ns_ = now_ns;
      return;
    }
    if (now_ns <= last_ns_) return;
    double dt_s = static_cast<double>(now_ns - last_ns_) / 1e9;
    tokens_ += dt_s * rate_bps_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ns_ = now_ns;
  }

  double rate_bps_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
  bool primed_ = false;  // distinguishes t=0 from "never seen a packet"
};

/// Click element: RateLimiter(RATE_MBPS, BURST_KB=64). Conforming packets
/// exit port 0; excess exits port 1 if connected, else dropped.
class RateLimiter final : public click::Element {
 public:
  std::string class_name() const override { return "RateLimiter"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 80; }
  void push(int port, net::PacketPtr pkt) override;

  std::uint64_t conformed() const noexcept { return conformed_; }
  std::uint64_t exceeded() const noexcept { return exceeded_; }
  TokenBucket& bucket() noexcept { return bucket_; }

 private:
  TokenBucket bucket_{125'000'000.0, 65536.0};  // 1 Gbps, 64 KB default
  std::uint64_t conformed_ = 0;
  std::uint64_t exceeded_ = 0;
};

}  // namespace mdp::nf
