#include "nf/conntrack.hpp"

#include "click/registry.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

const char* to_string(ConnState s) {
  switch (s) {
    case ConnState::kNew: return "NEW";
    case ConnState::kSynAck: return "SYN_ACK";
    case ConnState::kEstablished: return "ESTABLISHED";
    case ConnState::kFinWait: return "FIN_WAIT";
    case ConnState::kClosed: return "CLOSED";
  }
  return "?";
}

ConnState ConnTracker::observe(const net::FlowKey& flow,
                               std::uint8_t tcp_flags,
                               std::uint64_t now_ns) {
  net::FlowKey canon = flow.canonical();
  bool is_forward = (flow == canon);

  auto it = table_.find(canon);
  if (it == table_.end()) {
    if (table_.size() >= cfg_.max_entries) evict_lru();
    Keyed k;
    k.forward_is_initiator = is_forward;
    k.entry.state = ConnState::kNew;
    it = table_.emplace(canon, k).first;
  }
  Keyed& k = it->second;
  ConnEntry& e = k.entry;
  ++e.packets;
  e.last_seen_ns = now_ns;

  bool from_initiator = (is_forward == k.forward_is_initiator);

  if (flow.protocol != net::kIpProtoTcp) {
    // UDP pseudo-states: NEW until the responder speaks, then ESTABLISHED.
    if (e.state == ConnState::kNew && !from_initiator)
      e.state = ConnState::kEstablished;
    return e.state;
  }

  using net::TcpView;
  if (tcp_flags & TcpView::kRst) {
    e.state = ConnState::kClosed;
    return e.state;
  }
  switch (e.state) {
    case ConnState::kNew:
      if ((tcp_flags & TcpView::kSyn) && (tcp_flags & TcpView::kAck) &&
          !from_initiator) {
        e.state = ConnState::kSynAck;
      }
      break;
    case ConnState::kSynAck:
      if ((tcp_flags & TcpView::kAck) && from_initiator)
        e.state = ConnState::kEstablished;
      break;
    case ConnState::kEstablished:
      if (tcp_flags & TcpView::kFin) {
        (from_initiator ? e.forward_fin : e.reverse_fin) = true;
        e.state = ConnState::kFinWait;
      }
      break;
    case ConnState::kFinWait:
      if (tcp_flags & TcpView::kFin) {
        (from_initiator ? e.forward_fin : e.reverse_fin) = true;
        if (e.forward_fin && e.reverse_fin) e.state = ConnState::kClosed;
      }
      break;
    case ConnState::kClosed:
      break;
  }
  return e.state;
}

ConnState ConnTracker::lookup(const net::FlowKey& flow) const {
  auto it = table_.find(flow.canonical());
  return it == table_.end() ? ConnState::kClosed : it->second.entry.state;
}

std::size_t ConnTracker::expire(std::uint64_t now_ns) {
  std::size_t n = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    const ConnEntry& e = it->second.entry;
    std::uint64_t timeout =
        e.state == ConnState::kClosed
            ? cfg_.closed_linger_ns
            : (it->first.protocol == net::kIpProtoTcp
                   ? cfg_.tcp_idle_timeout_ns
                   : cfg_.udp_idle_timeout_ns);
    if (now_ns - e.last_seen_ns >= timeout) {
      it = table_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

void ConnTracker::evict_lru() {
  // O(n) scan is fine at eviction frequency; a true LRU list would add a
  // pointer per entry for an event that should be rare when sized right.
  auto oldest = table_.begin();
  for (auto it = table_.begin(); it != table_.end(); ++it)
    if (it->second.entry.last_seen_ns < oldest->second.entry.last_seen_ns)
      oldest = it;
  if (oldest != table_.end()) {
    table_.erase(oldest);
    ++evictions_;
  }
}

// --- StatefulFirewall ----------------------------------------------------------

bool StatefulFirewall::configure(const std::vector<std::string>& args,
                                 std::string* err) {
  for (const auto& arg : args) {
    if (arg.rfind("default ", 0) == 0) {
      std::string v = arg.substr(8);
      if (v == "allow") {
        table_.set_default(FwAction::kAllow);
      } else if (v == "deny") {
        table_.set_default(FwAction::kDeny);
      } else {
        *err = "default must be allow|deny";
        return false;
      }
      continue;
    }
    auto rule = FwRule::parse(arg, err);
    if (!rule) return false;
    table_.add_rule(*rule);
  }
  return true;
}

void StatefulFirewall::push(int, net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed || !parsed->has_l4) {
    ++rejected_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return;
  }

  std::uint8_t flags = 0;
  if (parsed->flow.protocol == net::kIpProtoTcp)
    flags = net::TcpView(pkt->data() + parsed->l4_offset).flags();

  ConnState before = tracker_.lookup(parsed->flow);
  bool opening =
      (parsed->flow.protocol == net::kIpProtoTcp)
          ? (flags & net::TcpView::kSyn) != 0 && (flags & net::TcpView::kAck) == 0
          : before == ConnState::kClosed;  // unknown UDP flow

  if (opening) {
    if (table_.decide(parsed->flow) != FwAction::kAllow) {
      ++rejected_;
      if (output_connected(1)) output_push(1, std::move(pkt));
      return;
    }
  } else if (before == ConnState::kClosed &&
             parsed->flow.protocol == net::kIpProtoTcp) {
    // Mid-stream TCP with no tracked connection: out-of-state, reject.
    ++out_of_state_;
    ++rejected_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return;
  }

  tracker_.observe(parsed->flow, flags, pkt->anno().ingress_ns);
  ++accepted_;
  output_push(0, std::move(pkt));
}

MDP_REGISTER_ELEMENT(StatefulFirewall, "StatefulFirewall");

}  // namespace mdp::nf
