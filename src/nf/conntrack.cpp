#include "nf/conntrack.hpp"

#include "click/registry.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

const char* to_string(ConnState s) {
  switch (s) {
    case ConnState::kNew: return "NEW";
    case ConnState::kSynAck: return "SYN_ACK";
    case ConnState::kEstablished: return "ESTABLISHED";
    case ConnState::kFinWait: return "FIN_WAIT";
    case ConnState::kClosed: return "CLOSED";
  }
  return "?";
}

ConnState ConnTracker::observe(const net::FlowKey& flow,
                               std::uint8_t tcp_flags,
                               std::uint64_t now_ns,
                               std::uint16_t tenant) {
  net::FlowKey canon = flow.canonical();
  bool is_forward = (flow == canon);

  Keyed* k = table_.find(canon);
  if (!k) {
    Keyed fresh;
    fresh.forward_is_initiator = is_forward;
    fresh.entry.state = ConnState::kNew;
    k = table_.insert(canon, tenant, fresh);
    if (!k) return ConnState::kClosed;  // tenant cap refused the entry
  }
  ConnEntry& e = k->entry;
  ++e.packets;
  e.last_seen_ns = now_ns;

  bool from_initiator = (is_forward == k->forward_is_initiator);

  if (flow.protocol != net::kIpProtoTcp) {
    // UDP pseudo-states: NEW until the responder speaks, then ESTABLISHED.
    if (e.state == ConnState::kNew && !from_initiator)
      e.state = ConnState::kEstablished;
    return e.state;
  }

  using net::TcpView;
  if (tcp_flags & TcpView::kRst) {
    e.state = ConnState::kClosed;
    return e.state;
  }
  switch (e.state) {
    case ConnState::kNew:
      if ((tcp_flags & TcpView::kSyn) && (tcp_flags & TcpView::kAck) &&
          !from_initiator) {
        e.state = ConnState::kSynAck;
      }
      break;
    case ConnState::kSynAck:
      if ((tcp_flags & TcpView::kAck) && from_initiator)
        e.state = ConnState::kEstablished;
      break;
    case ConnState::kEstablished:
      if (tcp_flags & TcpView::kFin) {
        (from_initiator ? e.forward_fin : e.reverse_fin) = true;
        e.state = ConnState::kFinWait;
      }
      break;
    case ConnState::kFinWait:
      if (tcp_flags & TcpView::kFin) {
        (from_initiator ? e.forward_fin : e.reverse_fin) = true;
        if (e.forward_fin && e.reverse_fin) e.state = ConnState::kClosed;
      }
      break;
    case ConnState::kClosed:
      break;
  }
  return e.state;
}

ConnState ConnTracker::lookup(const net::FlowKey& flow) const {
  const Keyed* k = table_.peek(flow.canonical());
  return k ? k->entry.state : ConnState::kClosed;
}

std::size_t ConnTracker::expire(std::uint64_t now_ns) {
  return table_.erase_if(
      [&](const net::FlowKey& key, const Keyed& k, std::uint16_t) {
        const ConnEntry& e = k.entry;
        std::uint64_t timeout =
            e.state == ConnState::kClosed
                ? cfg_.closed_linger_ns
                : (key.protocol == net::kIpProtoTcp
                       ? cfg_.tcp_idle_timeout_ns
                       : cfg_.udp_idle_timeout_ns);
        return now_ns - e.last_seen_ns >= timeout;
      });
}

// --- StatefulFirewall ----------------------------------------------------------

bool StatefulFirewall::configure(const std::vector<std::string>& args,
                                 std::string* err) {
  for (const auto& arg : args) {
    if (arg.rfind("default ", 0) == 0) {
      std::string v = arg.substr(8);
      if (v == "allow") {
        table_.set_default(FwAction::kAllow);
      } else if (v == "deny") {
        table_.set_default(FwAction::kDeny);
      } else {
        *err = "default must be allow|deny";
        return false;
      }
      continue;
    }
    auto rule = FwRule::parse(arg, err);
    if (!rule) return false;
    table_.add_rule(*rule);
  }
  return true;
}

void StatefulFirewall::push(int, net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed || !parsed->has_l4) {
    ++rejected_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return;
  }

  std::uint8_t flags = 0;
  if (parsed->flow.protocol == net::kIpProtoTcp)
    flags = net::TcpView(pkt->data() + parsed->l4_offset).flags();

  ConnState before = tracker_.lookup(parsed->flow);
  bool opening =
      (parsed->flow.protocol == net::kIpProtoTcp)
          ? (flags & net::TcpView::kSyn) != 0 && (flags & net::TcpView::kAck) == 0
          : before == ConnState::kClosed;  // unknown UDP flow

  if (opening) {
    if (table_.decide(parsed->flow) != FwAction::kAllow) {
      ++rejected_;
      if (output_connected(1)) output_push(1, std::move(pkt));
      return;
    }
  } else if (before == ConnState::kClosed &&
             parsed->flow.protocol == net::kIpProtoTcp) {
    // Mid-stream TCP with no tracked connection: out-of-state, reject.
    ++out_of_state_;
    ++rejected_;
    if (output_connected(1)) output_push(1, std::move(pkt));
    return;
  }

  tracker_.observe(parsed->flow, flags, pkt->anno().ingress_ns,
                   pkt->anno().tenant_id);
  ++accepted_;
  output_push(0, std::move(pkt));
}

MDP_REGISTER_ELEMENT(StatefulFirewall, "StatefulFirewall");

}  // namespace mdp::nf
