// FlowMonitor: per-flow accounting (packets, bytes, first/last seen) with a
// bounded table and top-k heavy-hitter query. Transparent element.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "click/element.hpp"
#include "net/flow_key.hpp"

namespace mdp::nf {

struct FlowStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t first_seen_ns = 0;
  std::uint64_t last_seen_ns = 0;
};

class FlowMonitorCore {
 public:
  explicit FlowMonitorCore(std::size_t max_flows = 1 << 16)
      : max_flows_(max_flows) {}

  void record(const net::FlowKey& flow, std::size_t bytes,
              std::uint64_t now_ns) {
    auto it = table_.find(flow);
    if (it == table_.end()) {
      if (table_.size() >= max_flows_) {
        ++overflow_;
        return;
      }
      it = table_.emplace(flow, FlowStats{}).first;
      it->second.first_seen_ns = now_ns;
    }
    ++it->second.packets;
    it->second.bytes += bytes;
    it->second.last_seen_ns = now_ns;
  }

  const FlowStats* lookup(const net::FlowKey& flow) const {
    auto it = table_.find(flow);
    return it == table_.end() ? nullptr : &it->second;
  }

  /// Heaviest k flows by bytes.
  std::vector<std::pair<net::FlowKey, FlowStats>> top_k(std::size_t k) const {
    std::vector<std::pair<net::FlowKey, FlowStats>> all(table_.begin(),
                                                        table_.end());
    std::partial_sort(all.begin(),
                      all.begin() + std::min(k, all.size()), all.end(),
                      [](const auto& a, const auto& b) {
                        return a.second.bytes > b.second.bytes;
                      });
    if (all.size() > k) all.resize(k);
    return all;
  }

  std::size_t num_flows() const noexcept { return table_.size(); }
  std::uint64_t overflow() const noexcept { return overflow_; }
  void clear() { table_.clear(); }

 private:
  std::size_t max_flows_;
  std::unordered_map<net::FlowKey, FlowStats, net::FlowKeyHash> table_;
  std::uint64_t overflow_ = 0;
};

/// Click element: FlowMonitor(MAX_FLOWS=65536).
class FlowMonitor final : public click::Element {
 public:
  std::string class_name() const override { return "FlowMonitor"; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override { return 60; }
  net::PacketPtr simple_action(net::PacketPtr pkt) override;
  void push_batch(int, click::PacketBatch&& batch) override {
    act_batch_and_forward(std::move(batch));
  }

  FlowMonitorCore& core() noexcept { return core_; }

 private:
  FlowMonitorCore core_;
};

}  // namespace mdp::nf
