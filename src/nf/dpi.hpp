// Dpi: multi-pattern payload inspection via an Aho-Corasick automaton.
//
// All patterns are matched in a single pass over the payload regardless of
// pattern count. Matching packets can be dropped or painted (for a
// downstream PaintSwitch to divert to a scrubber), per configuration.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "click/element.hpp"

namespace mdp::nf {

class AhoCorasick {
 public:
  /// Add a pattern before build(). Returns its pattern id.
  int add_pattern(const std::string& pattern);

  /// Finalize: compute goto/fail/output structure (BFS).
  void build();

  /// Count of pattern occurrences in `data`. If `first_match` is non-null,
  /// receives the id of the first pattern matched (-1 if none).
  std::size_t match_count(const std::byte* data, std::size_t len,
                          int* first_match = nullptr) const;

  bool contains(const std::byte* data, std::size_t len) const {
    int first = -1;
    (void)match_count_first_only(data, len, &first);
    return first >= 0;
  }

  std::size_t num_patterns() const noexcept { return patterns_.size(); }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  bool built() const noexcept { return built_; }

 private:
  std::size_t match_count_first_only(const std::byte* data, std::size_t len,
                                     int* first) const;
  struct Node {
    std::array<int, 256> next;
    int fail = 0;
    std::vector<int> out;  // pattern ids ending here
    Node() { next.fill(-1); }
  };
  std::vector<Node> nodes_{1};
  std::vector<std::string> patterns_;
  bool built_ = false;
};

/// Click element: Dpi(ACTION, PATTERN, PATTERN, ...) where ACTION is
/// "drop" or "paint N". Clean packets exit port 0 unchanged; under "drop",
/// matching packets exit port 1 if connected (else dropped).
class Dpi final : public click::Element {
 public:
  std::string class_name() const override { return "Dpi"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  bool initialize(std::string* err) override;
  sim::TimeNs cost_ns() const override { return 600; }
  void push(int port, net::PacketPtr pkt) override;

  AhoCorasick& automaton() noexcept { return ac_; }
  std::uint64_t matched() const noexcept { return matched_; }
  std::uint64_t clean() const noexcept { return clean_; }

 private:
  enum class Action { kDrop, kPaint };
  AhoCorasick ac_;
  Action action_ = Action::kDrop;
  std::uint8_t paint_ = 1;
  std::uint64_t matched_ = 0;
  std::uint64_t clean_ = 0;
};

}  // namespace mdp::nf
