#include "nf/flow_monitor.hpp"

#include "click/elements.hpp"
#include "click/registry.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

bool FlowMonitor::configure(const std::vector<std::string>& args,
                            std::string* err) {
  if (args.empty()) return true;
  std::size_t max_flows;
  if (args.size() > 1 || !click::parse_size_arg(args[0], &max_flows) ||
      max_flows == 0) {
    *err = "FlowMonitor(MAX_FLOWS)";
    return false;
  }
  core_ = FlowMonitorCore(max_flows);
  return true;
}

net::PacketPtr FlowMonitor::simple_action(net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (parsed)
    core_.record(parsed->flow, pkt->length(), pkt->anno().ingress_ns);
  return pkt;
}

MDP_REGISTER_ELEMENT(FlowMonitor, "FlowMonitor");

}  // namespace mdp::nf
