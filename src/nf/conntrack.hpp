// Connection tracking + stateful firewall.
//
// ConnTracker follows the TCP state machine (and pseudo-states for UDP)
// per canonical 5-tuple; StatefulFirewall admits packets that belong to an
// ESTABLISHED (or legitimately progressing) connection and applies the
// static ACL only to connection-opening packets — the iptables
// "ESTABLISHED,RELATED ACCEPT" pattern.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "click/element.hpp"
#include "net/flow_key.hpp"
#include "nf/firewall.hpp"

namespace mdp::nf {

enum class ConnState : std::uint8_t {
  kNew,          // first packet seen (UDP) / SYN sent (TCP)
  kSynAck,       // SYN+ACK observed
  kEstablished,  // handshake done / bidirectional UDP
  kFinWait,      // one side sent FIN
  kClosed,       // both FINs or RST
};

const char* to_string(ConnState s);

struct ConnEntry {
  ConnState state = ConnState::kNew;
  std::uint64_t packets = 0;
  std::uint64_t last_seen_ns = 0;
  bool forward_fin = false;
  bool reverse_fin = false;
};

struct ConnTrackerConfig {
  std::size_t max_entries = 1 << 16;
  std::uint64_t tcp_idle_timeout_ns = 300ull * 1'000'000'000;
  std::uint64_t udp_idle_timeout_ns = 30ull * 1'000'000'000;
  std::uint64_t closed_linger_ns = 1'000'000'000;
};

class ConnTracker {
 public:
  explicit ConnTracker(ConnTrackerConfig cfg = {}) : cfg_(cfg) {}

  /// Advance the connection for one observed packet.
  /// @param flow       packet 5-tuple in packet direction
  /// @param tcp_flags  TCP flags byte, 0 for non-TCP
  /// @returns the state AFTER this packet.
  ConnState observe(const net::FlowKey& flow, std::uint8_t tcp_flags,
                    std::uint64_t now_ns);

  /// Current state (kClosed for unknown connections).
  ConnState lookup(const net::FlowKey& flow) const;

  /// Expire idle/closed entries. Returns count removed.
  std::size_t expire(std::uint64_t now_ns);

  std::size_t size() const noexcept { return table_.size(); }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Keyed {
    ConnEntry entry;
    bool forward_is_initiator;  // canonical-src initiated the connection
  };
  void evict_lru();

  ConnTrackerConfig cfg_;
  std::unordered_map<net::FlowKey, Keyed, net::FlowKeyHash> table_;
  std::uint64_t evictions_ = 0;
};

/// Click element: StatefulFirewall(RULES...). Rules use FwRule syntax and
/// gate only connection-*opening* packets: anything on an established
/// connection passes. Out-of-state TCP packets (e.g. an ACK with no
/// tracked connection) are rejected — the classic stateful-FW behaviour.
/// Output 0 = accept, output 1 (optional) = reject.
class StatefulFirewall final : public click::Element {
 public:
  std::string class_name() const override { return "StatefulFirewall"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override {
    return 140 + 8 * static_cast<sim::TimeNs>(table_.num_rules());
  }
  void push(int port, net::PacketPtr pkt) override;

  ConnTracker& tracker() noexcept { return tracker_; }
  FirewallTable& acl() noexcept { return table_; }
  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t out_of_state() const noexcept { return out_of_state_; }

 private:
  ConnTracker tracker_;
  FirewallTable table_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t out_of_state_ = 0;
};

}  // namespace mdp::nf
