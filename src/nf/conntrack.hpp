// Connection tracking + stateful firewall.
//
// ConnTracker follows the TCP state machine (and pseudo-states for UDP)
// per canonical 5-tuple; StatefulFirewall admits packets that belong to an
// ESTABLISHED (or legitimately progressing) connection and applies the
// static ACL only to connection-opening packets — the iptables
// "ESTABLISHED,RELATED ACCEPT" pattern.
#pragma once

#include <cstdint>
#include <string>

#include "click/element.hpp"
#include "net/flow_key.hpp"
#include "nf/firewall.hpp"
#include "nf/flow_table.hpp"

namespace mdp::nf {

enum class ConnState : std::uint8_t {
  kNew,          // first packet seen (UDP) / SYN sent (TCP)
  kSynAck,       // SYN+ACK observed
  kEstablished,  // handshake done / bidirectional UDP
  kFinWait,      // one side sent FIN
  kClosed,       // both FINs or RST
};

const char* to_string(ConnState s);

struct ConnEntry {
  ConnState state = ConnState::kNew;
  std::uint64_t packets = 0;
  std::uint64_t last_seen_ns = 0;
  bool forward_fin = false;
  bool reverse_fin = false;
};

struct ConnTrackerConfig {
  std::size_t max_entries = 1 << 16;
  std::uint64_t tcp_idle_timeout_ns = 300ull * 1'000'000'000;
  std::uint64_t udp_idle_timeout_ns = 30ull * 1'000'000'000;
  std::uint64_t closed_linger_ns = 1'000'000'000;
};

/// Connection table over a bounded second-chance nf::FlowTable: memory is
/// fixed at max_entries, active connections are protected by their
/// reference bit, and per-tenant occupancy caps bound how many tracked
/// connections one tenant's storm can hold (docs/TENANCY.md). In-flight
/// connections (mid-handshake under owner protection) can be pinned so
/// capacity pressure defers their eviction instead of cutting them.
class ConnTracker {
 public:
  explicit ConnTracker(ConnTrackerConfig cfg = {})
      : cfg_(cfg), table_(cfg.max_entries) {}

  /// Advance the connection for one observed packet.
  /// @param flow       packet 5-tuple in packet direction
  /// @param tcp_flags  TCP flags byte, 0 for non-TCP
  /// @param tenant     tenant charged for the entry's occupancy
  /// @returns the state AFTER this packet (kClosed if the tenant's cap
  ///          refused the entry).
  ConnState observe(const net::FlowKey& flow, std::uint8_t tcp_flags,
                    std::uint64_t now_ns, std::uint16_t tenant = 0);

  /// Current state (kClosed for unknown connections).
  ConnState lookup(const net::FlowKey& flow) const;

  /// Expire idle/closed entries. Returns count removed.
  std::size_t expire(std::uint64_t now_ns);

  /// Defer/permit eviction of an in-flight connection (docs/TENANCY.md).
  bool pin(const net::FlowKey& flow) { return table_.pin(flow.canonical()); }
  bool unpin(const net::FlowKey& flow) {
    return table_.unpin(flow.canonical());
  }

  /// Per-tenant tracked-connection cap (0 = uncapped).
  void set_tenant_cap(std::uint16_t tenant, std::size_t cap) {
    table_.set_tenant_cap(tenant, cap);
  }
  std::size_t tenant_occupancy(std::uint16_t tenant) const noexcept {
    return table_.tenant_occupancy(tenant);
  }

  std::size_t size() const noexcept { return table_.size(); }
  std::uint64_t evictions() const noexcept { return table_.evictions(); }
  std::uint64_t cap_rejections() const noexcept {
    return table_.cap_rejections();
  }
  std::uint64_t pinned_deferrals() const noexcept {
    return table_.pinned_deferrals();
  }

 private:
  struct Keyed {
    ConnEntry entry;
    bool forward_is_initiator = false;  // canonical-src opened the conn
  };

  ConnTrackerConfig cfg_;
  FlowTable<Keyed> table_;
};

/// Click element: StatefulFirewall(RULES...). Rules use FwRule syntax and
/// gate only connection-*opening* packets: anything on an established
/// connection passes. Out-of-state TCP packets (e.g. an ACK with no
/// tracked connection) are rejected — the classic stateful-FW behaviour.
/// Output 0 = accept, output 1 (optional) = reject.
class StatefulFirewall final : public click::Element {
 public:
  std::string class_name() const override { return "StatefulFirewall"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override {
    return 140 + 8 * static_cast<sim::TimeNs>(table_.num_rules());
  }
  void push(int port, net::PacketPtr pkt) override;

  ConnTracker& tracker() noexcept { return tracker_; }
  FirewallTable& acl() noexcept { return table_; }
  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t out_of_state() const noexcept { return out_of_state_; }

 private:
  ConnTracker tracker_;
  FirewallTable table_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t out_of_state_ = 0;
};

}  // namespace mdp::nf
