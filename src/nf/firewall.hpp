// Firewall: first-match ACL over the 5-tuple.
//
// Rules are ordered; the first rule whose predicate covers the packet
// decides allow (output 0) or deny (output 1 if connected, else drop).
// Packets matching no rule follow the default action.
//
// Two matching engines share the same rule list:
//   - kLinear  : scan rules in order (the Click/iptables baseline)
//   - kSrcTrie : a binary trie on the source prefix narrows the candidate
//                set before the ordered scan (first-match preserved by
//                taking the minimum rule index among trie hits)
// Tab 3's per-element cost uses the engine-dependent cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "click/element.hpp"
#include "net/flow_key.hpp"

namespace mdp::nf {

struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;
  bool contains(std::uint16_t p) const noexcept { return p >= lo && p <= hi; }
};

struct Prefix {
  std::uint32_t addr = 0;  // host order
  std::uint8_t len = 0;    // 0 => match all

  bool contains(std::uint32_t ip) const noexcept {
    if (len == 0) return true;
    std::uint32_t mask = len >= 32 ? 0xffffffffu : ~(0xffffffffu >> len);
    return (ip & mask) == (addr & mask);
  }
};

enum class FwAction : std::uint8_t { kAllow, kDeny };

struct FwRule {
  FwAction action = FwAction::kAllow;
  Prefix src;
  Prefix dst;
  PortRange sport;
  PortRange dport;
  std::uint8_t protocol = 0;  // 0 => any

  bool matches(const net::FlowKey& f) const noexcept {
    if (protocol != 0 && protocol != f.protocol) return false;
    if (!src.contains(f.src_ip)) return false;
    if (!dst.contains(f.dst_ip)) return false;
    if (!sport.contains(f.src_port)) return false;
    if (!dport.contains(f.dst_port)) return false;
    return true;
  }

  /// Parse "allow|deny [proto tcp|udp|any] [src CIDR|any] [dst CIDR|any]
  /// [sport LO-HI|N|any] [dport LO-HI|N|any]".
  static std::optional<FwRule> parse(const std::string& text,
                                     std::string* err);
};

class FirewallTable {
 public:
  enum class Engine { kLinear, kSrcTrie };

  void add_rule(FwRule rule);
  void set_default(FwAction a) noexcept { default_ = a; }
  void set_engine(Engine e);
  Engine engine() const noexcept { return engine_; }
  std::size_t num_rules() const noexcept { return rules_.size(); }

  /// First-match decision for a flow. Also reports which rule fired
  /// (rules_.size() => default action) for accounting.
  FwAction decide(const net::FlowKey& f, std::size_t* rule_idx = nullptr)
      const noexcept;

 private:
  void rebuild_trie();
  FwAction decide_linear(const net::FlowKey& f, std::size_t* idx)
      const noexcept;
  FwAction decide_trie(const net::FlowKey& f, std::size_t* idx)
      const noexcept;

  struct TrieNode {
    int child[2] = {-1, -1};
    std::vector<std::uint32_t> rules;  // rules anchored at this prefix node
  };

  std::vector<FwRule> rules_;
  FwAction default_ = FwAction::kAllow;
  Engine engine_ = Engine::kLinear;
  std::vector<TrieNode> trie_;
};

/// Click element wrapper. Configure args: first may be "default allow|deny"
/// or "engine linear|trie"; all other args are rules (see FwRule::parse).
class Firewall final : public click::Element {
 public:
  std::string class_name() const override { return "Firewall"; }
  int n_outputs() const override { return -1; }
  bool configure(const std::vector<std::string>& args,
                 std::string* err) override;
  sim::TimeNs cost_ns() const override {
    // Engine-dependent: linear pays per rule, trie pays per prefix bit.
    if (table_.engine() == FirewallTable::Engine::kSrcTrie)
      return 90 + 3 * 32;
    return 90 + 8 * static_cast<sim::TimeNs>(table_.num_rules());
  }
  void push(int port, net::PacketPtr pkt) override;
  void push_batch(int port, click::PacketBatch&& batch) override;

  FirewallTable& table() noexcept { return table_; }
  std::uint64_t allowed() const noexcept { return allowed_; }
  std::uint64_t denied() const noexcept { return denied_; }

 private:
  FirewallTable table_;
  std::uint64_t allowed_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace mdp::nf
