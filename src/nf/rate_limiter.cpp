#include "nf/rate_limiter.hpp"

#include <cstdlib>

#include "click/registry.hpp"

namespace mdp::nf {

bool RateLimiter::configure(const std::vector<std::string>& args,
                            std::string* err) {
  if (args.empty() || args.size() > 2) {
    *err = "RateLimiter(RATE_MBPS, BURST_KB=64)";
    return false;
  }
  double mbps = std::atof(args[0].c_str());
  if (mbps <= 0) {
    *err = "RateLimiter: RATE_MBPS must be positive";
    return false;
  }
  double burst_kb = 64;
  if (args.size() == 2) {
    burst_kb = std::atof(args[1].c_str());
    if (burst_kb <= 0) {
      *err = "RateLimiter: BURST_KB must be positive";
      return false;
    }
  }
  // Mbps (megabits) -> bytes/s.
  bucket_ = TokenBucket(mbps * 1e6 / 8.0, burst_kb * 1024.0);
  return true;
}

void RateLimiter::push(int, net::PacketPtr pkt) {
  if (bucket_.admit(pkt->length(), pkt->anno().ingress_ns)) {
    ++conformed_;
    output_push(0, std::move(pkt));
  } else {
    ++exceeded_;
    if (output_connected(1)) output_push(1, std::move(pkt));
  }
}

MDP_REGISTER_ELEMENT(RateLimiter, "RateLimiter");

}  // namespace mdp::nf
