#include "nf/chain.hpp"

#include <cstdio>

namespace mdp::nf {

std::vector<std::string> make_firewall_rules(std::size_t n) {
  std::vector<std::string> rules;
  rules.reserve(n);
  // A few deny rules up front (dark space, bogons), then allow /24s.
  const char* denies[] = {
      "deny src 0.0.0.0/8",
      "deny src 127.0.0.0/8",
      "deny src 224.0.0.0/4",
      "deny proto tcp dport 23",
  };
  for (std::size_t i = 0; i < n && i < 4; ++i) rules.push_back(denies[i]);
  for (std::size_t i = 4; i < n; ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "allow src 10.%zu.%zu.0/24",
                  (i / 250) % 250, i % 250);
    rules.emplace_back(buf);
  }
  return rules;
}

ChainSpec ChainSpec::preset(const std::string& name) {
  ChainSpec spec;
  spec.name = name;

  auto fw_stage = [] {
    ChainStage s{"Firewall", {"default allow"}};
    for (auto& r : make_firewall_rules(32)) s.args.push_back(r);
    return s;
  };
  ChainStage ipcheck{"CheckIPHeader", {}};
  ChainStage nat{"Nat", {"10.10.10.10"}};
  ChainStage lb{"LoadBalancer",
                {"10.0.100.1", "10.0.200.1", "10.0.200.2", "10.0.200.3"}};
  ChainStage mon{"FlowMonitor", {}};
  ChainStage dpi{"Dpi", {"paint 1", "EVILPATTERN", "MALWARE", "c2beacon"}};
  ChainStage police{"RateLimiter", {"10000"}};  // 10 Gbps: shaping, not drop

  auto sfw_stage = [] {
    ChainStage s{"StatefulFirewall", {"default allow"}};
    for (auto& r : make_firewall_rules(32)) s.args.push_back(r);
    return s;
  };
  ChainStage vxlan{"VxlanEncap",
                   {"4096", "192.168.50.1", "192.168.50.2"}};

  if (name == "ipcheck") {
    spec.stages = {ipcheck};
  } else if (name == "fw") {
    spec.stages = {ipcheck, fw_stage()};
  } else if (name == "stateful") {
    spec.stages = {ipcheck, sfw_stage()};
  } else if (name == "fw-nat") {
    spec.stages = {ipcheck, fw_stage(), nat};
  } else if (name == "fw-nat-lb") {
    spec.stages = {ipcheck, fw_stage(), nat, lb};
  } else if (name == "fw-nat-lb-mon") {
    spec.stages = {ipcheck, fw_stage(), nat, lb, mon};
  } else if (name == "overlay") {
    // Tenant pipeline terminating in VXLAN encap toward the underlay —
    // the virtualized-network last mile in its full glory.
    spec.stages = {ipcheck, fw_stage(), nat, lb, vxlan};
  } else if (name == "full") {
    spec.stages = {ipcheck, fw_stage(), nat, lb, dpi, police};
  }
  return spec;
}

std::vector<std::string> ChainSpec::preset_names() {
  // Ordered by per-packet cost (Tab 3 relies on this monotonicity).
  return {"ipcheck", "fw",            "stateful", "fw-nat",
          "fw-nat-lb", "fw-nat-lb-mon", "overlay",  "full"};
}

std::optional<BuiltChain> build_chain(click::Router& router,
                                      const std::string& prefix,
                                      const ChainSpec& spec,
                                      std::string* err) {
  if (spec.stages.empty()) {
    *err = "chain '" + spec.name + "' has no stages (unknown preset?)";
    return std::nullopt;
  }
  BuiltChain out;
  click::Element* prev = nullptr;
  for (std::size_t i = 0; i < spec.stages.size(); ++i) {
    const auto& st = spec.stages[i];
    std::string ename = prefix + "_" + std::to_string(i);
    click::Element* e = router.add_element(ename, st.cls, st.args, err);
    if (e == nullptr) return std::nullopt;
    if (prev != nullptr && !router.connect(prev, 0, e, 0, err))
      return std::nullopt;
    if (i == 0) out.head = e;
    prev = e;
  }
  out.tail = prev;
  out.cost_ns = router.chain_cost(out.head);
  return out;
}

void process_batch(const BuiltChain& chain, click::PacketBatch&& batch) {
  if (chain.head == nullptr) {
    batch.clear();
    return;
  }
  chain.head->push_batch(0, std::move(batch));
}

}  // namespace mdp::nf
