#include "nf/load_balancer.hpp"

#include <cstdlib>

#include "click/registry.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

void LoadBalancerCore::add_backend(Backend b) {
  backends_.push_back(b);
  rebuild_ring();
  wrr_current_.assign(backends_.size(), 0);
}

void LoadBalancerCore::set_healthy(std::uint32_t dip, bool healthy) {
  for (auto& b : backends_)
    if (b.dip == dip) b.healthy = healthy;
  rebuild_ring();
}

bool LoadBalancerCore::is_healthy(std::uint32_t dip) const {
  for (const auto& b : backends_)
    if (b.dip == dip) return b.healthy;
  return false;
}

void LoadBalancerCore::rebuild_ring() {
  ring_.clear();
  for (const auto& b : backends_) {
    if (!b.healthy) continue;
    std::uint64_t vnodes =
        std::uint64_t{kVnodesPerWeight} * (b.weight ? b.weight : 1);
    for (std::uint64_t v = 0; v < vnodes; ++v) {
      std::uint64_t h =
          net::mix64((std::uint64_t{b.dip} << 20) ^ v ^ 0xc0ffee);
      ring_[h] = b.dip;
    }
  }
}

std::uint32_t LoadBalancerCore::pick_consistent(std::uint64_t hash) const {
  if (ring_.empty()) return 0;
  auto it = ring_.lower_bound(hash);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::uint32_t LoadBalancerCore::pick_wrr() {
  // Smooth weighted round robin: current += weight; pick max; max -= total.
  std::int64_t total = 0;
  int best = -1;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (!backends_[i].healthy) continue;
    wrr_current_[i] += backends_[i].weight;
    total += backends_[i].weight;
    if (best < 0 || wrr_current_[i] > wrr_current_[best])
      best = static_cast<int>(i);
  }
  if (best < 0) return 0;
  wrr_current_[best] -= total;
  return backends_[best].dip;
}

std::uint32_t LoadBalancerCore::select(const net::FlowKey& flow,
                                       std::uint16_t tenant) {
  if (std::uint32_t* dip = affinity_.find(flow)) {
    if (is_healthy(*dip)) {
      ++hits_[*dip];
      return *dip;
    }
    affinity_.erase(flow);  // stale affinity to a dead backend
  }
  std::uint32_t dip = (policy_ == Policy::kConsistentHash)
                          ? pick_consistent(net::hash_flow(flow))
                          : pick_wrr();
  if (dip != 0) {
    affinity_.insert(flow, tenant, dip);  // cap-refused: re-resolve later
    ++hits_[dip];
  }
  return dip;
}

// --- LoadBalancer element --------------------------------------------------------

bool LoadBalancer::configure(const std::vector<std::string>& args,
                             std::string* err) {
  if (args.size() < 2) {
    *err = "LoadBalancer(VIP, DIP[ w], ... [, policy hash|rr])";
    return false;
  }
  if (!net::ipv4_from_string(args[0], &vip_)) {
    *err = "LoadBalancer: bad VIP '" + args[0] + "'";
    return false;
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("policy ", 0) == 0) {
      std::string p = a.substr(7);
      if (p == "hash") {
        core_ = LoadBalancerCore(LoadBalancerCore::Policy::kConsistentHash);
      } else if (p == "rr") {
        core_ = LoadBalancerCore(LoadBalancerCore::Policy::kWeightedRR);
      } else {
        *err = "LoadBalancer: unknown policy '" + p + "'";
        return false;
      }
      continue;
    }
    // "DIP" or "DIP weight"
    Backend b;
    std::string addr = a;
    std::size_t sp = a.find(' ');
    if (sp != std::string::npos) {
      addr = a.substr(0, sp);
      int w = std::atoi(a.substr(sp + 1).c_str());
      if (w <= 0) {
        *err = "LoadBalancer: bad weight in '" + a + "'";
        return false;
      }
      b.weight = static_cast<std::uint32_t>(w);
    }
    if (!net::ipv4_from_string(addr, &b.dip)) {
      *err = "LoadBalancer: bad DIP '" + addr + "'";
      return false;
    }
    backends_pending_.push_back(b);
  }
  for (const auto& b : backends_pending_) core_.add_backend(b);
  backends_pending_.clear();
  return true;
}

net::PacketPtr LoadBalancer::simple_action(net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed || parsed->flow.dst_ip != vip_) return pkt;

  std::uint32_t dip = core_.select(parsed->flow, pkt->anno().tenant_id);
  if (dip == 0) return net::PacketPtr{nullptr};  // no healthy backend: drop

  net::Ipv4View ip(pkt->data() + parsed->l3_offset);
  std::uint32_t old_ip = ip.dst();
  ip.set_dst(dip);
  ip.set_checksum(net::checksum_update32(ip.checksum(), old_ip, dip));

  if (parsed->has_l4) {
    std::byte* l4 = pkt->data() + parsed->l4_offset;
    if (parsed->flow.protocol == net::kIpProtoTcp) {
      net::TcpView tcp(l4);
      tcp.set_checksum(
          net::checksum_update32(tcp.checksum(), old_ip, dip));
    } else if (parsed->flow.protocol == net::kIpProtoUdp) {
      net::UdpView udp(l4);
      std::uint16_t c = udp.checksum();
      if (c != 0) {
        c = net::checksum_update32(c, old_ip, dip);
        udp.set_checksum(c == 0 ? 0xffff : c);
      }
    }
  }

  net::FlowKey nf = parsed->flow;
  nf.dst_ip = dip;
  pkt->anno().flow_hash = net::hash_flow(nf);
  ++rewritten_;
  return pkt;
}

MDP_REGISTER_ELEMENT(LoadBalancer, "LoadBalancer");

}  // namespace mdp::nf
