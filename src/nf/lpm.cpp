#include "nf/lpm.hpp"

#include <cstdlib>
#include <sstream>

#include "click/registry.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace mdp::nf {

void LpmTable::insert(Prefix prefix, int value) {
  int node = 0;
  for (std::uint8_t bit = 0; bit < prefix.len; ++bit) {
    int b = (prefix.addr >> (31 - bit)) & 1;
    if (nodes_[node].child[b] < 0) {
      nodes_[node].child[b] = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
    }
    node = nodes_[node].child[b];
  }
  if (!nodes_[node].has_value) ++routes_;
  nodes_[node].has_value = true;
  nodes_[node].value = value;
}

std::optional<int> LpmTable::lookup(std::uint32_t addr) const {
  int best = -1;
  bool found = false;
  int node = 0;
  for (std::uint8_t bit = 0; bit <= 32; ++bit) {
    if (nodes_[node].has_value) {
      best = nodes_[node].value;
      found = true;
    }
    if (bit == 32) break;
    int b = (addr >> (31 - bit)) & 1;
    node = nodes_[node].child[b];
    if (node < 0) break;
  }
  if (!found) return std::nullopt;
  return best;
}

bool LpmTable::remove(Prefix prefix) {
  int node = 0;
  for (std::uint8_t bit = 0; bit < prefix.len; ++bit) {
    int b = (prefix.addr >> (31 - bit)) & 1;
    node = nodes_[node].child[b];
    if (node < 0) return false;
  }
  if (!nodes_[node].has_value) return false;
  nodes_[node].has_value = false;
  nodes_[node].value = -1;
  --routes_;
  return true;
}

// --- IPLookup element -------------------------------------------------------

bool IPLookup::configure(const std::vector<std::string>& args,
                         std::string* err) {
  if (args.empty()) {
    *err = "IPLookup(\"CIDR PORT\", ...)";
    return false;
  }
  for (const auto& arg : args) {
    std::istringstream is(arg);
    std::string cidr;
    int port = -1;
    if (!(is >> cidr >> port) || port < 0) {
      *err = "IPLookup: route '" + arg + "' must be 'CIDR PORT'";
      return false;
    }
    Prefix p;
    std::string addr = cidr;
    int len = 32;
    if (auto slash = cidr.find('/'); slash != std::string::npos) {
      addr = cidr.substr(0, slash);
      len = std::atoi(cidr.substr(slash + 1).c_str());
      if (len < 0 || len > 32) {
        *err = "IPLookup: bad prefix length in '" + cidr + "'";
        return false;
      }
    }
    if (!net::ipv4_from_string(addr, &p.addr)) {
      *err = "IPLookup: bad address in '" + cidr + "'";
      return false;
    }
    p.len = static_cast<std::uint8_t>(len);
    table_.insert(p, port);
  }
  return true;
}

void IPLookup::push(int, net::PacketPtr pkt) {
  auto parsed = net::parse(*pkt);
  if (!parsed) {
    ++unroutable_;
    return;
  }
  auto port = table_.lookup(parsed->flow.dst_ip);
  if (!port) {
    ++unroutable_;
    return;
  }
  output_push(*port, std::move(pkt));
}

MDP_REGISTER_ELEMENT(IPLookup, "IPLookup");

}  // namespace mdp::nf
