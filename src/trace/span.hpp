// SpanRecord: per-packet stage-level latency attribution.
//
// Every traced packet carries one span in its annotation area. The data
// plane stamps a boundary timestamp as the packet crosses each pipeline
// stage; a stage's latency is the difference between consecutive
// boundaries, so the per-stage durations telescope *exactly* to the
// end-to-end latency — no double counting, no gaps. This is what lets a
// p99.9 sample be decomposed into its cause: queue wait vs. service vs.
// chain work vs. merge vs. reorder dwell.
//
// Boundaries (in pipeline order):
//   ingress -> dispatch -> service_start -> service_end -> chain_done
//           -> merge -> egress
//
// Stages (boundary deltas):
//   kSchedule   ingress..dispatch        policy decision + hedge park time
//   kQueueWait  dispatch..service_start  wait in the path core's queue
//   kService    service_start..service_end  core service (incl. jitter)
//   kChain      service_end..chain_done  functional chain traversal
//                                        (zero in discrete-event sim mode)
//   kMerge      chain_done..merge        dedup / first-copy-wins decision
//                                        (zero in sim mode)
//   kReorder    merge..egress            resequencer dwell
//
// Cost model: the span lives in the annotation block (compile-time gated
// by MDP_TRACE_ENABLED), and stamping is runtime-gated by the Tracer —
// with tracing off the hot path pays one pointer test per stage.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

// Compile-time gate: build with -DMDP_TRACE_ENABLED=0 to strip the span
// from the packet annotation area and all stamping code.
#ifndef MDP_TRACE_ENABLED
#define MDP_TRACE_ENABLED 1
#endif

namespace mdp::trace {

enum class Stage : std::uint8_t {
  kSchedule = 0,
  kQueueWait,
  kService,
  kChain,
  kMerge,
  kReorder,
  kCount,
};

inline constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::kCount);

inline const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kSchedule: return "schedule";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kService: return "service";
    case Stage::kChain: return "chain";
    case Stage::kMerge: return "merge";
    case Stage::kReorder: return "reorder";
    case Stage::kCount: break;
  }
  return "?";
}

inline Stage stage_at(std::size_t i) noexcept {
  return static_cast<Stage>(i);
}

struct SpanRecord {
  // Boundary timestamps, ns (virtual sim time or wall clock). 0 = the
  // boundary was never crossed (stage reported as zero-width).
  std::uint64_t ingress_ns = 0;
  std::uint64_t dispatch_ns = 0;
  std::uint64_t service_start_ns = 0;
  std::uint64_t service_end_ns = 0;
  std::uint64_t chain_done_ns = 0;
  std::uint64_t merge_ns = 0;
  std::uint64_t egress_ns = 0;

  // Decision metadata captured at scheduling time.
  std::uint64_t seq = 0;           ///< per-flow multipath sequence number
  std::uint32_t flow_id = 0;
  std::uint16_t path_id = 0;       ///< path the egressed copy traversed
  std::uint8_t num_copies = 0;     ///< copies the policy chose at ingress
  std::uint8_t traffic_class = 0;  ///< net::TrafficClass value
  bool hedged = false;             ///< a hedge copy was involved
  bool active = false;             ///< span is being stamped by a Tracer

  // Batch-aware attribution. Burst-mode data planes stamp service
  // boundaries once per burst, so the raw kService span of any member
  // covers the whole burst. These record the burst this packet rode in;
  // attributed_service_ns() divides the span over the population so a
  // tail exemplar no longer claims its neighbors' service time.
  std::uint16_t burst_size = 1;    ///< packets in this service burst
  std::uint16_t burst_pos = 0;     ///< this packet's position in the burst

  /// Effective (monotonic, hole-filled) boundary sequence. A zero (never
  /// stamped) or backwards boundary inherits its predecessor, so a
  /// truncated span still yields non-negative stages that telescope to
  /// the end-to-end latency.
  std::array<std::uint64_t, kNumStages + 1> boundaries() const noexcept {
    std::array<std::uint64_t, kNumStages + 1> b{
        ingress_ns,       dispatch_ns, service_start_ns, service_end_ns,
        chain_done_ns, merge_ns,    egress_ns};
    for (std::size_t i = 1; i < b.size(); ++i)
      if (b[i] < b[i - 1]) b[i] = b[i - 1];
    return b;
  }

  /// Per-stage durations; stages()[i] corresponds to stage_at(i).
  std::array<std::uint64_t, kNumStages> stages() const noexcept {
    auto b = boundaries();
    std::array<std::uint64_t, kNumStages> d{};
    for (std::size_t i = 0; i < kNumStages; ++i) d[i] = b[i + 1] - b[i];
    return d;
  }

  std::uint64_t stage_ns(Stage s) const noexcept {
    return stages()[static_cast<std::size_t>(s)];
  }

  /// End-to-end latency: equals the sum of all stage durations exactly.
  std::uint64_t e2e_ns() const noexcept {
    auto b = boundaries();
    return b[kNumStages] - b[0];
  }

  /// Service time this packet may honestly claim: the per-burst service
  /// span amortized over the burst population. Equal to the raw kService
  /// stage at burst_size 1.
  std::uint64_t attributed_service_ns() const noexcept {
    return stage_ns(Stage::kService) /
           (burst_size ? std::uint64_t{burst_size} : 1);
  }
};

}  // namespace mdp::trace
