#include "trace/registry.hpp"

#include <cstdio>

#include "trace/json.hpp"

namespace mdp::trace {

Snapshot StatsRegistry::snapshot() const {
  Snapshot s;
  for (const auto& [name, fn] : counter_fns_) s.counters[name] = fn();
  for (const auto& [prefix, set] : counter_sets_)
    for (const auto& [k, v] : set->all())
      s.counters[prefix.empty() ? k : prefix + "." + k] += v;
  for (const auto& [name, fn] : gauge_fns_) s.gauges[name] = fn();
  for (const auto& [name, h] : hists_) s.histograms.emplace(name, *h);
  for (const stats::TimeSeries* ts : series_)
    s.series.push_back({ts->name(), ts->interval_ns(), ts->samples()});
  return s;
}

Snapshot Snapshot::diff_since(const Snapshot& earlier) const {
  Snapshot out = *this;
  for (auto& [name, v] : out.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) v = v >= it->second ? v - it->second : 0;
  }
  for (auto& [name, h] : out.histograms) {
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) h.subtract(it->second);
  }
  return out;
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges.emplace(name, v);
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, h);
    if (!inserted) it->second.merge(h);
  }
  for (const auto& sr : other.series) series.push_back(sr);
}

namespace {

void write_histogram(JsonWriter& w, const stats::LatencyHistogram& h) {
  w.begin_object();
  w.key("count").value(h.count());
  w.key("sum_ns").value(h.sum());
  w.key("mean_ns").value(h.mean());
  w.key("min_ns").value(h.min());
  w.key("max_ns").value(h.max());
  w.key("p50_ns").value(h.p50());
  w.key("p90_ns").value(h.p90());
  w.key("p99_ns").value(h.p99());
  w.key("p999_ns").value(h.p999());
  w.key("p9999_ns").value(h.p9999());
  w.end_object();
}

}  // namespace

std::string Snapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name);
    write_histogram(w, h);
  }
  w.end_object();
  w.key("series").begin_array();
  for (const auto& sr : series) {
    w.begin_object();
    w.key("name").value(sr.name);
    w.key("interval_ns").value(sr.interval_ns);
    w.key("samples").begin_array();
    for (const auto& smp : sr.samples) {
      w.begin_array();
      w.value(smp.t_ns).value(smp.value).value(smp.count);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Snapshot::to_csv() const {
  // Fixed column set so one file parses uniformly: counter/gauge rows use
  // `value`, histogram rows use the summary columns. Time series are a
  // JSON-only export (variable length does not fit this shape).
  std::string out =
      "type,name,value,count,sum_ns,mean_ns,min_ns,max_ns,"
      "p50_ns,p90_ns,p99_ns,p999_ns,p9999_ns\n";
  char buf[512];
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "counter,%s,%llu,,,,,,,,,,\n",
                  name.c_str(), static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof(buf), "gauge,%s,%.12g,,,,,,,,,,\n",
                  name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(
        buf, sizeof(buf),
        "hist,%s,,%llu,%llu,%.12g,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
        name.c_str(), static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.sum()), h.mean(),
        static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.max()),
        static_cast<unsigned long long>(h.p50()),
        static_cast<unsigned long long>(h.p90()),
        static_cast<unsigned long long>(h.p99()),
        static_cast<unsigned long long>(h.p999()),
        static_cast<unsigned long long>(h.p9999()));
    out += buf;
  }
  return out;
}

}  // namespace mdp::trace
