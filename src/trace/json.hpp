// Minimal JSON emit/parse for machine-readable metrics export.
//
// JsonWriter is a streaming emitter (comma/nesting handled internally);
// JsonValue is a small recursive-descent parser used by the round-trip
// tests and by tooling that consumes run reports. Deliberately tiny: no
// external dependency, no allocation tricks, just enough JSON for metric
// payloads (UTF-8 passthrough, \uXXXX emitted for control characters).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mdp::trace {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& null();
  /// Splice a pre-rendered JSON fragment as the next value (trusted input).
  JsonWriter& raw(std::string_view fragment);

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

  static std::string escape(std::string_view s);

 private:
  void comma_for_value();

  std::string out_;
  // One flag per open container: true once it has at least one element.
  std::vector<bool> has_elem_;
  bool after_key_ = false;
};

/// Parsed JSON document node.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse a complete document; nullopt on syntax error / trailing junk.
  static std::optional<JsonValue> parse(std::string_view text);

  Type type() const noexcept { return type_; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }

  bool as_bool() const noexcept { return bool_; }
  double as_double() const noexcept { return num_; }
  std::uint64_t as_u64() const noexcept {
    return num_ < 0 ? 0 : static_cast<std::uint64_t>(num_ + 0.5);
  }
  const std::string& as_string() const noexcept { return str_; }
  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Nested lookup: find("a")->find("b") without null checks.
  const JsonValue* find_path(
      std::initializer_list<std::string_view> keys) const noexcept;

 private:
  struct Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace mdp::trace
