#include "trace/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mdp::trace {

// --- JsonWriter ---------------------------------------------------------------

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  has_elem_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  has_elem_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  comma_for_value();
  out_ += fragment;
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- JsonValue ----------------------------------------------------------------

struct JsonValue::Parser {
  std::string_view s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
      ++i;
  }

  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (i < s.size()) {
      char c = s[i++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i >= s.size()) return false;
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (i + 4 > s.size()) return false;
            unsigned cp = 0;
            for (int k = 0; k < 4; ++k) {
              char h = s[i++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            // Metric payloads only ever escape control chars; emit the
            // code point as UTF-8 (no surrogate-pair handling).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xc0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& v) {
    skip_ws();
    if (i >= s.size()) return false;
    char c = s[i];
    if (c == '{') {
      ++i;
      v.type_ = Type::kObject;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        std::string k;
        if (!parse_string(k)) return false;
        if (!eat(':')) return false;
        JsonValue member;
        if (!parse_value(member)) return false;
        v.members_.emplace_back(std::move(k), std::move(member));
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++i;
      v.type_ = Type::kArray;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        JsonValue item;
        if (!parse_value(item)) return false;
        v.items_.push_back(std::move(item));
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      v.type_ = Type::kString;
      return parse_string(v.str_);
    }
    if (c == 't') {
      v.type_ = Type::kBool;
      v.bool_ = true;
      return literal("true");
    }
    if (c == 'f') {
      v.type_ = Type::kBool;
      v.bool_ = false;
      return literal("false");
    }
    if (c == 'n') {
      v.type_ = Type::kNull;
      return literal("null");
    }
    // Number.
    std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-'))
      ++i;
    if (i == start) return false;
    char* end = nullptr;
    std::string num(s.substr(start, i - start));
    v.type_ = Type::kNumber;
    v.num_ = std::strtod(num.c_str(), &end);
    return end == num.c_str() + num.size();
  }
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue v;
  if (!p.parse_value(v)) return std::nullopt;
  p.skip_ws();
  if (p.i != text.size()) return std::nullopt;
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue* JsonValue::find_path(
    std::initializer_list<std::string_view> keys) const noexcept {
  const JsonValue* cur = this;
  for (std::string_view k : keys) {
    if (!cur) return nullptr;
    cur = cur->find(k);
  }
  return cur;
}

}  // namespace mdp::trace
