// StatsRegistry: one snapshot/diff/merge interface over every metric the
// data plane produces — monotonic counters (CounterSet or enum-indexed),
// gauges, LatencyHistograms, per-stage trace histograms, and TimeSeries.
//
// Sources register once (cheap: a name plus a pointer/closure); snapshot()
// materializes a point-in-time Snapshot that can be diffed against an
// earlier one (interval metrics), merged across shards, and exported as
// JSON or CSV. The registry holds *references* to live sources — snapshot
// while the owning objects are alive.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stats/counters.hpp"
#include "stats/histogram.hpp"
#include "stats/time_series.hpp"

namespace mdp::trace {

/// Point-in-time view of every registered metric.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, stats::LatencyHistogram> histograms;

  struct Series {
    std::string name;
    std::uint64_t interval_ns = 0;
    std::vector<stats::TimeSeries::Sample> samples;
  };
  std::vector<Series> series;

  /// Interval view: this snapshot minus an `earlier` one taken from the
  /// same registry. Counters/histogram buckets subtract; gauges keep the
  /// later (current) value; series keep the later samples.
  Snapshot diff_since(const Snapshot& earlier) const;

  /// Shard union: counters add, histograms bucket-merge, gauges and
  /// series from `other` are inserted (existing names keep this side's
  /// gauge value).
  void merge(const Snapshot& other);

  /// Machine-readable exports. JSON carries full percentile summaries per
  /// histogram; CSV is one metric per row with a fixed column set.
  std::string to_json() const;
  std::string to_csv() const;
};

class StatsRegistry {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;

  void add_counter(std::string name, CounterFn fn) {
    counter_fns_.emplace_back(std::move(name), std::move(fn));
  }
  void add_gauge(std::string name, GaugeFn fn) {
    gauge_fns_.emplace_back(std::move(name), std::move(fn));
  }
  void add_histogram(std::string name, const stats::LatencyHistogram* h) {
    hists_.emplace_back(std::move(name), h);
  }
  /// Every key in `set` appears in snapshots as "<prefix>.<key>". Keys
  /// added to the set after registration are picked up automatically.
  void add_counter_set(std::string prefix, const stats::CounterSet* set) {
    counter_sets_.emplace_back(std::move(prefix), set);
  }
  void add_time_series(const stats::TimeSeries* ts) {
    series_.push_back(ts);
  }

  Snapshot snapshot() const;

  std::size_t num_sources() const noexcept {
    return counter_fns_.size() + gauge_fns_.size() + hists_.size() +
           counter_sets_.size() + series_.size();
  }

 private:
  std::vector<std::pair<std::string, CounterFn>> counter_fns_;
  std::vector<std::pair<std::string, GaugeFn>> gauge_fns_;
  std::vector<std::pair<std::string, const stats::LatencyHistogram*>> hists_;
  std::vector<std::pair<std::string, const stats::CounterSet*>>
      counter_sets_;
  std::vector<const stats::TimeSeries*> series_;
};

}  // namespace mdp::trace
