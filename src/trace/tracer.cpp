#include "trace/tracer.hpp"

namespace mdp::trace {

void write_exemplar_json(JsonWriter& w, const Exemplar& ex) {
  const SpanRecord& sp = ex.span;
  w.begin_object();
  w.key("e2e_ns").value(ex.e2e_ns);
  w.key("ordinal").value(ex.ordinal);
  w.key("flow_id").value(static_cast<std::uint64_t>(sp.flow_id));
  w.key("seq").value(sp.seq);
  w.key("path").value(static_cast<std::uint64_t>(sp.path_id));
  w.key("copies").value(static_cast<std::uint64_t>(sp.num_copies));
  w.key("traffic_class").value(static_cast<std::uint64_t>(sp.traffic_class));
  w.key("hedged").value(sp.hedged);
  w.key("burst_size").value(static_cast<std::uint64_t>(sp.burst_size));
  w.key("burst_pos").value(static_cast<std::uint64_t>(sp.burst_pos));
  w.key("attributed_service_ns").value(sp.attributed_service_ns());
  w.key("stages_ns").begin_object();
  auto stages = sp.stages();
  for (std::size_t i = 0; i < kNumStages; ++i)
    w.key(stage_name(stage_at(i))).value(stages[i]);
  w.end_object();
  w.key("timestamps_ns").begin_object();
  w.key("ingress").value(sp.ingress_ns);
  w.key("dispatch").value(sp.dispatch_ns);
  w.key("service_start").value(sp.service_start_ns);
  w.key("service_end").value(sp.service_end_ns);
  w.key("chain_done").value(sp.chain_done_ns);
  w.key("merge").value(sp.merge_ns);
  w.key("egress").value(sp.egress_ns);
  w.end_object();
  w.end_object();
}

namespace {

void write_hist(JsonWriter& w, const stats::LatencyHistogram& h) {
  w.begin_object();
  w.key("count").value(h.count());
  w.key("sum_ns").value(h.sum());
  w.key("mean_ns").value(h.mean());
  w.key("min_ns").value(h.min());
  w.key("max_ns").value(h.max());
  w.key("p50_ns").value(h.p50());
  w.key("p90_ns").value(h.p90());
  w.key("p99_ns").value(h.p99());
  w.key("p999_ns").value(h.p999());
  w.key("p9999_ns").value(h.p9999());
  w.end_object();
}

}  // namespace

std::string TraceReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traced").value(traced);
  w.key("stages").begin_object();
  for (std::size_t i = 0; i < kNumStages; ++i) {
    w.key(stage_name(stage_at(i)));
    write_hist(w, stage_hist[i]);
  }
  w.end_object();
  w.key("e2e");
  write_hist(w, e2e);
  w.key("exemplars").begin_object();
  w.key("slowest").begin_array();
  for (const Exemplar& ex : slowest) write_exemplar_json(w, ex);
  w.end_array();
  w.key("sampled").begin_array();
  for (const Exemplar& ex : sampled) write_exemplar_json(w, ex);
  w.end_array();
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace mdp::trace
