// Tracer: the runtime side of per-packet stage attribution.
//
// The data plane stamps SpanRecords (see span.hpp) only while a Tracer is
// attached *and* enabled — the disabled hot-path cost is one pointer/bool
// test per stage. At egress the tracer folds the finished span into
// per-stage latency histograms and offers it to the exemplar reservoir,
// so any aggregate tail number can be decomposed into stage
// contributions and illustrated with concrete worst-case packets.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "stats/histogram.hpp"
#include "trace/exemplar.hpp"
#include "trace/json.hpp"
#include "trace/registry.hpp"
#include "trace/span.hpp"

namespace mdp::trace {

struct TracerConfig {
  bool enabled = true;
  ReservoirConfig reservoir{};
};

/// Extracted, self-contained results of a traced run (copyable; safe to
/// keep after the Tracer and data plane are gone).
struct TraceReport {
  std::array<stats::LatencyHistogram, kNumStages> stage_hist;
  stats::LatencyHistogram e2e;
  std::vector<Exemplar> slowest;  ///< slowest first
  std::vector<Exemplar> sampled;  ///< uniform sample
  std::uint64_t traced = 0;

  /// Serialize stage histograms + exemplars (schema documented in
  /// docs/OBSERVABILITY.md).
  std::string to_json() const;
};

/// Append one exemplar (timestamps, stage durations, metadata) to `w`.
void write_exemplar_json(JsonWriter& w, const Exemplar& ex);

class Tracer {
 public:
  explicit Tracer(TracerConfig cfg = {})
      : cfg_(cfg), enabled_(cfg.enabled), reservoir_(cfg.reservoir) {}

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Fold a finished span: called by the data plane at packet egress.
  /// Ignores spans that were never activated (ingressed while disabled).
  void on_egress(const SpanRecord& span) {
    if (!enabled_ || !span.active) return;
    auto stages = span.stages();
    for (std::size_t i = 0; i < kNumStages; ++i)
      stage_hist_[i].record(stages[i]);
    e2e_.record(span.e2e_ns());
    reservoir_.offer(span);
    ++traced_;
  }

  std::uint64_t traced() const noexcept { return traced_; }
  const stats::LatencyHistogram& stage_histogram(Stage s) const noexcept {
    return stage_hist_[static_cast<std::size_t>(s)];
  }
  const stats::LatencyHistogram& e2e() const noexcept { return e2e_; }
  const ExemplarReservoir& exemplars() const noexcept { return reservoir_; }

  TraceReport report() const {
    TraceReport r;
    r.stage_hist = stage_hist_;
    r.e2e = e2e_;
    r.slowest = reservoir_.slowest();
    r.sampled = reservoir_.sample();
    r.traced = traced_;
    return r;
  }

  /// Expose stage histograms + trace counters under "<prefix>." names.
  void register_with(StatsRegistry& reg, const std::string& prefix) {
    for (std::size_t i = 0; i < kNumStages; ++i)
      reg.add_histogram(prefix + ".stage." + stage_name(stage_at(i)),
                        &stage_hist_[i]);
    reg.add_histogram(prefix + ".e2e", &e2e_);
    reg.add_counter(prefix + ".traced", [this] { return traced_; });
  }

  void reset() {
    for (auto& h : stage_hist_) h.reset();
    e2e_.reset();
    reservoir_.reset();
    traced_ = 0;
  }

 private:
  TracerConfig cfg_;
  bool enabled_;
  ExemplarReservoir reservoir_;
  std::array<stats::LatencyHistogram, kNumStages> stage_hist_;
  stats::LatencyHistogram e2e_;
  std::uint64_t traced_ = 0;
};

}  // namespace mdp::trace
