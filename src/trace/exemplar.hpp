// ExemplarReservoir: retains the complete stage breakdown of (a) the
// slowest N packets seen and (b) a uniform random sample of K packets.
//
// Aggregate histograms tell you *that* p99.9 is high; exemplars tell you
// *why* — each one carries the full SpanRecord, so any tail number can be
// decomposed into queue wait vs. service vs. reorder dwell. The uniform
// sample provides the "typical packet" baseline the slow set is compared
// against.
//
// Determinism: the uniform sample uses Vitter's algorithm R driven by a
// seeded splitmix64 stream, so a seeded simulation run reproduces the
// exact same exemplar set.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/span.hpp"

namespace mdp::trace {

struct Exemplar {
  SpanRecord span;
  std::uint64_t e2e_ns = 0;
  std::uint64_t ordinal = 0;  ///< 0-based index among traced egresses
};

struct ReservoirConfig {
  std::size_t slowest_capacity = 32;
  std::size_t sample_capacity = 32;
  std::uint64_t seed = 1;
};

class ExemplarReservoir {
 public:
  explicit ExemplarReservoir(ReservoirConfig cfg = {})
      : cfg_(cfg), state_(cfg.seed ? cfg.seed : 0x9e3779b97f4a7c15ull) {}

  void offer(const SpanRecord& span) {
    Exemplar ex{span, span.e2e_ns(), seen_};
    ++seen_;
    if (cfg_.slowest_capacity > 0) {
      // Min-heap on (e2e, ordinal): front is the cheapest-to-evict entry.
      if (slowest_.size() < cfg_.slowest_capacity) {
        slowest_.push_back(ex);
        std::push_heap(slowest_.begin(), slowest_.end(), slower_first);
      } else if (slower_first(ex, slowest_.front())) {
        std::pop_heap(slowest_.begin(), slowest_.end(), slower_first);
        slowest_.back() = ex;
        std::push_heap(slowest_.begin(), slowest_.end(), slower_first);
      }
    }
    if (cfg_.sample_capacity > 0) {
      if (sample_.size() < cfg_.sample_capacity) {
        sample_.push_back(ex);
      } else {
        std::uint64_t j = next_u64() % seen_;
        if (j < sample_.size()) sample_[j] = ex;
      }
    }
  }

  std::uint64_t seen() const noexcept { return seen_; }

  /// Slowest exemplars, slowest first (ties broken by arrival order).
  std::vector<Exemplar> slowest() const {
    std::vector<Exemplar> out = slowest_;
    std::sort(out.begin(), out.end(), slower_first);
    return out;
  }

  /// Uniform sample, in reservoir order (not sorted).
  const std::vector<Exemplar>& sample() const noexcept { return sample_; }

  void reset() {
    slowest_.clear();
    sample_.clear();
    seen_ = 0;
    state_ = cfg_.seed ? cfg_.seed : 0x9e3779b97f4a7c15ull;
  }

 private:
  /// Strict weak ordering putting the slower exemplar *earlier*: used both
  /// as the min-heap comparator and to sort slowest-first output.
  static bool slower_first(const Exemplar& a, const Exemplar& b) noexcept {
    if (a.e2e_ns != b.e2e_ns) return a.e2e_ns > b.e2e_ns;
    return a.ordinal < b.ordinal;
  }

  std::uint64_t next_u64() noexcept {  // splitmix64
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  ReservoirConfig cfg_;
  std::uint64_t state_;
  std::uint64_t seen_ = 0;
  std::vector<Exemplar> slowest_;  // min-heap wrt slower_first
  std::vector<Exemplar> sample_;
};

}  // namespace mdp::trace
