#include "ctrl/slo_monitor.hpp"

namespace mdp::ctrl {

SloMonitor::SloMonitor(std::size_t num_paths, std::uint64_t slo_target_ns)
    : slo_target_ns_(slo_target_ns) {
  paths_.reserve(num_paths);
  for (std::size_t p = 0; p < num_paths; ++p) {
    auto w = std::make_unique<PathWindow>();
    for (auto& b : w->buckets) b.store(0, std::memory_order_relaxed);
    for (auto& s : w->stage_sum) s.store(0, std::memory_order_relaxed);
    paths_.push_back(std::move(w));
  }
}

void SloMonitor::observe(std::uint16_t path,
                         std::uint64_t latency_ns) noexcept {
  if (path >= paths_.size()) return;
  PathWindow& w = *paths_[path];
  w.buckets[slo_bucket_index(latency_ns)].fetch_add(
      1, std::memory_order_relaxed);
  w.sum.fetch_add(latency_ns, std::memory_order_relaxed);
  w.lifetime_samples.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t slot_t =
      w.slot_target.load(std::memory_order_relaxed);
  if (latency_ns >
      (slot_t ? slot_t : slo_target_ns_.load(std::memory_order_relaxed))) {
    w.violations.fetch_add(1, std::memory_order_relaxed);
    w.lifetime_violations.fetch_add(1, std::memory_order_relaxed);
  }
}

void SloMonitor::observe_span(std::uint16_t path,
                              const trace::SpanRecord& span) noexcept {
  if (path >= paths_.size()) return;
  observe(path, span.e2e_ns());
  const auto stages = span.stages();
  PathWindow& w = *paths_[path];
  for (std::size_t i = 0; i < trace::kNumStages; ++i)
    if (stages[i])
      w.stage_sum[i].fetch_add(stages[i], std::memory_order_relaxed);
}

WindowStats SloMonitor::harvest(std::size_t path) noexcept {
  WindowStats out;
  if (path >= paths_.size()) return out;
  PathWindow& w = *paths_[path];
  std::uint64_t* counts = out.bucket_counts.data();
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = w.buckets[i].exchange(0, std::memory_order_relaxed);
    out.samples += counts[i];
    if (counts[i]) out.max_ns = slo_bucket_upper_edge(i);
  }
  out.sum_ns = w.sum.exchange(0, std::memory_order_relaxed);
  out.violations = w.violations.exchange(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < trace::kNumStages; ++i)
    out.stage_sum_ns[i] = w.stage_sum[i].exchange(0,
                                                  std::memory_order_relaxed);
  if (out.samples == 0) return out;
  // Quantiles = upper edge of the bucket where the CDF crosses the rank.
  // The p99 rank's +99 rounding keeps tiny windows sane (rank is at least
  // 1, at most n); the median uses the upper-middle rank.
  const std::uint64_t rank50 = (out.samples + 1) / 2;
  const std::uint64_t rank99 = (out.samples * 99 + 99) / 100;
  const std::uint64_t rank999 = (out.samples * 999 + 999) / 1000;
  std::uint64_t seen = 0;
  bool have_p50 = false;
  bool have_p99 = false;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (!have_p50 && seen >= rank50) {
      out.p50_ns = slo_bucket_upper_edge(i);
      have_p50 = true;
    }
    if (!have_p99 && seen >= rank99) {
      out.p99_ns = slo_bucket_upper_edge(i);
      have_p99 = true;
    }
    if (seen >= rank999) {
      out.p999_ns = slo_bucket_upper_edge(i);
      break;
    }
  }
  return out;
}

std::uint64_t SloMonitor::total_observed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& w : paths_)
    n += w->lifetime_samples.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t SloMonitor::total_violations() const noexcept {
  std::uint64_t n = 0;
  for (const auto& w : paths_)
    n += w->lifetime_violations.load(std::memory_order_relaxed);
  return n;
}

void SloMonitor::register_stats(trace::StatsRegistry& reg) const {
  reg.add_counter("slo.observed", [this] { return total_observed(); });
  reg.add_counter("slo.violations", [this] { return total_violations(); });
  reg.add_gauge("slo.target_ns", [this] {
    return static_cast<double>(slo_target_ns_.load(
        std::memory_order_relaxed));
  });
}

}  // namespace mdp::ctrl
