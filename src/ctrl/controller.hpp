// Controller: the control plane's decision stage — observation in,
// actuation out, one tick at a time.
//
// Threading model is the same as ThreadedDataPlane::pump(): tick() runs on
// the caller thread, interleaved with pump()/ingress at whatever cadence
// the caller chooses. All controller state is caller-thread-only; the only
// cross-thread traffic is the SloMonitor's atomic windows (written by
// whoever observes completions — the threaded plane's collector, the sim
// plane's egress callback) and the plane's own atomic counters. That is
// what makes test_ctrl's end-to-end case TSan-clean with workers running.
//
// Per tick, for every path:
//   1. harvest the SloMonitor window,
//   2. judge it (violation fraction vs threshold, and — for silent
//      blackholes that produce NO completions — backlog vs backlog_limit),
//   3. feed the PathStateMachine and actuate its transitions
//      (mask / flush+drain / probe-only probation / re-enable),
//   4. run the AdaptiveHedger on the worst serving-path p99.
// Every transition and every hedge change is appended to a bounded
// decision log, exported as the "ctrl" section of mdp.run_report.v2
// (docs/OBSERVABILITY.md) so benches can show *when* and *why* the
// controller acted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/actuator.hpp"
#include "ctrl/hedger.hpp"
#include "ctrl/path_state.hpp"
#include "ctrl/slo_monitor.hpp"
#include "ctrl/tenant.hpp"
#include "forecast/tail_estimator.hpp"
#include "telem/flight_recorder.hpp"
#include "telem/snapshot_exporter.hpp"
#include "trace/registry.hpp"

namespace mdp::ctrl {

/// Stable numeric code for a decision reason string, stamped into
/// telem::EventType::kCtrlDecision events (field `n`). 0 = unknown.
/// Codes are part of the flight-recorder schema (docs/OBSERVABILITY.md):
///   1 slo_breach          2 backlog_breach     3 slo+backlog_breach
///   4 probe_breach        5 drain_start        6 drained
///   7 probation_passed    8 hedge_raise        9 hedge_lower
///  10 hedge_timeout      11 tenant_throttle   12 tenant_shed
///  13 tenant_probation   14 tenant_reinstate  15 granularity_shift
///  16 forecast_prehedge  17 forecast_probe    18 forecast_prequarantine
///  19 forecast_restore
std::uint32_t decision_reason_code(const char* reason) noexcept;

/// The proactive stage (docs/FORECAST.md): a TailEstimator runs over the
/// same harvested windows the reactive judge sees, and forecasts that
/// clear BOTH the estimator's actionability gate (min_windows +
/// confidence_floor) and the thresholds below actuate before the breach:
///
///   forecast p99.9 >= prequarantine_threshold x SLO  -> admission
///       kProbeOnly on that path (probe-first; a forecast NEVER
///       hard-quarantines — only the reactive FSM, fed by the probe
///       evidence, can do that)
///   forecast p99.9 >= prehedge_threshold x SLO       -> one pre-raise of
///       the replication factor + a proactive tightening of the PID hedge
///       deadline (plane-wide; driven by the worst serving forecast)
///   same threshold + a worsening dominant-stage trend -> probe credits at
///       the trending path (stage-aware early evidence)
///
/// Every actuation opens a confirmation episode: a reactive slo_breach on
/// that path within confirm_window_ticks confirms it, expiry counts a
/// false positive — the fraction is exported and CI-gated (<= 5%).
/// Disabled (the default) must be byte-identical to a build without this
/// stage: every member below is only read when `enabled` is true.
struct ForecastConfig {
  bool enabled = false;
  forecast::EstimatorConfig estimator{};
  /// Pre-hedge when the worst actionable forecast p99.9 reaches this
  /// multiple of the SLO target (just-under-1 = act while still in SLO).
  double prehedge_threshold = 0.9;
  /// Pre-quarantine (kProbeOnly) at this multiple. Must be > prehedge.
  double prequarantine_threshold = 1.5;
  /// Release a held pre-actuation once the forecast falls back below this
  /// multiple of the SLO target.
  double restore_threshold = 0.7;
  /// Fractional cut of the PID deadline position on pre-hedge.
  double pretighten_frac = 0.3;
  /// A held pre-actuation auto-releases after this many ticks.
  std::uint64_t max_hold_ticks = 16;
  /// Reactive-confirmation window for false-positive accounting.
  std::uint64_t confirm_window_ticks = 8;
  /// Probe credits granted per tick by forecast_probe and to a
  /// pre-quarantined path (0 = inherit probe_grant_per_tick).
  std::uint64_t probe_grant = 0;
  /// Minimum ticks between forecast_probe actuations per path.
  std::uint64_t probe_cooldown_ticks = 4;
};

struct Config {
  /// The latency objective, in whatever unit the monitor is fed.
  std::uint64_t slo_target_ns = 1'000'000;
  /// Breach when the window's violation fraction exceeds this.
  double violation_threshold = 0.01;
  /// Windows with fewer samples than this carry no SLO signal.
  std::uint64_t min_samples = 32;
  /// Backlog breach when path_backlog() exceeds this (detects silent
  /// blackholes, which produce no completions to judge). 0 disables.
  std::uint64_t backlog_limit = 0;
  /// Hysteresis knobs (quarantine_after, probation_probes).
  PathStateConfig path{};
  /// Probe packets granted onto a probation path per tick.
  std::uint64_t probe_grant_per_tick = 8;
  /// Never quarantine below this many ACTIVE paths.
  std::size_t min_serving_paths = 1;
  HedgerConfig hedger{};
  HedgeTimeoutConfig hedge_timeout{};
  /// The third lever: replication granularity (none / packet-hedge /
  /// flow-replica / both), moved from the same worst-serving-path
  /// evidence as the hedger plus the breach judge's stage attribution.
  /// Disabled by default.
  GranularityConfig granularity{};
  /// Stage-aware actuation: when a breaching ACTIVE window's dominant
  /// stage is `service` (the path's core is slow, not its queue deep),
  /// masking the path doesn't fix anything hedging can't fix better —
  /// defer the quarantine up to this many ticks per episode and let the
  /// hedger act. 0 disables (every breach counts immediately). Requires
  /// stage evidence (observe_span feeders); scalar-only windows are
  /// never deferred.
  std::uint64_t service_defer_ticks = 0;
  /// The proactive stage: act on forecast tails BEFORE the reactive
  /// breach (docs/FORECAST.md). Disabled by default; disabled is
  /// byte-identical to the pre-forecast controller.
  ForecastConfig forecast{};
  /// Oldest decisions are evicted past this bound.
  std::size_t decision_log_capacity = 256;
};

/// One logged control action (state transition, hedge change, or tenant
/// admission change).
struct Decision {
  static constexpr std::uint16_t kHedge = 0xffff;   ///< `path` for hedges
  static constexpr std::uint16_t kTenant = 0xfffe;  ///< `path` for tenants
  /// `path` for granularity shifts. Lowest sentinel: `path <
  /// kGranularity` means "a real path".
  static constexpr std::uint16_t kGranularity = 0xfffd;

  std::uint64_t tick = 0;
  std::uint64_t now_ns = 0;
  std::uint16_t path = 0;
  PathState from = PathState::kActive;
  PathState to = PathState::kActive;
  const char* reason = "";
  // Evidence the decision was made on.
  std::uint64_t p99_ns = 0;
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  std::uint64_t backlog = 0;
  std::size_t replicas = 1;
  /// Stage verdict: WHERE the window's latency went ("queue_wait",
  /// "service", "reorder", ...) — empty when the feeder supplied no stage
  /// evidence (plain observe()), and the latency mass it carried.
  const char* dominant_stage = "";
  std::uint64_t dominant_stage_ns = 0;
  /// Hedge deadline in force when the decision was logged (0 = the
  /// scheduler's own budget).
  std::uint64_t hedge_timeout_ns = 0;
  /// Tenant decisions only (path == kTenant): which tenant moved, where,
  /// and the window's offered arrivals the judgment was made on.
  std::uint16_t tenant = 0;
  TenantState tenant_from = TenantState::kAdmitted;
  TenantState tenant_to = TenantState::kAdmitted;
  std::uint64_t arrivals = 0;
  /// Granularity decisions only (path == kGranularity): the shift.
  core::Granularity gran_from = core::Granularity::kPacketHedge;
  core::Granularity gran_to = core::Granularity::kPacketHedge;
  /// Granularity in force when the decision was logged; serialized as
  /// the "granularity" field while the lever is enabled.
  core::Granularity granularity = core::Granularity::kPacketHedge;
  bool granularity_logged = false;
  /// Forecast decisions only (reason forecast_*): the forecast evidence
  /// the action was taken on, serialized as a "forecast" sub-object.
  std::uint64_t fc_p99_ns = 0;
  std::uint64_t fc_p999_ns = 0;
  double fc_confidence = 0.0;
  std::uint64_t fc_horizon_ticks = 0;
  bool forecast_logged = false;
};

class Controller {
 public:
  /// `actuator` and `monitor` must outlive the controller. The monitor's
  /// SLO target is aligned to cfg.slo_target_ns on construction.
  Controller(Config cfg, Actuator& actuator, SloMonitor& monitor);

  /// Advance the control loop. Caller thread only, same as pump().
  void tick(std::uint64_t now_ns);

  PathState path_state(std::size_t p) const { return paths_[p].fsm.state(); }
  std::size_t replicas() const noexcept { return hedger_.replicas(); }
  std::uint64_t ticks() const noexcept { return tick_; }

  std::uint64_t quarantines() const noexcept;
  std::uint64_t reinstatements() const noexcept;
  std::uint64_t hedge_raises() const noexcept { return hedger_.raises(); }
  std::uint64_t hedge_lowers() const noexcept { return hedger_.lowers(); }
  std::uint64_t suppressed_quarantines() const noexcept {
    return suppressed_quarantines_;
  }
  /// Hedge deadline currently actuated (0 = scheduler's own budget).
  std::uint64_t hedge_timeout_ns() const noexcept {
    return hedge_timeout_.timeout_ns();
  }
  std::uint64_t hedge_timeout_adjustments() const noexcept {
    return hedge_timeout_.adjustments();
  }
  /// Breaches whose quarantine was deferred because the evidence said
  /// `service` (stage-aware actuation; see Config::service_defer_ticks).
  std::uint64_t service_deferrals() const noexcept {
    return service_deferrals_;
  }
  /// Replication granularity currently in force (the third lever).
  core::Granularity granularity() const noexcept {
    return gran_.granularity();
  }
  std::uint64_t granularity_shifts() const noexcept {
    return gran_.shifts();
  }

  // --- forecast stage (docs/FORECAST.md; all zero while disabled) ----------
  std::uint64_t forecast_prehedges() const noexcept {
    return forecast_prehedges_;
  }
  std::uint64_t forecast_probes() const noexcept { return forecast_probes_; }
  std::uint64_t forecast_prequarantines() const noexcept {
    return forecast_prequarantines_;
  }
  std::uint64_t forecast_restores() const noexcept {
    return forecast_restores_;
  }
  std::uint64_t forecast_confirmed() const noexcept {
    return forecast_confirmed_;
  }
  std::uint64_t forecast_false_positives() const noexcept {
    return forecast_false_positives_;
  }
  /// false positives / resolved episodes (0 with no resolved episodes).
  double forecast_false_positive_fraction() const noexcept {
    const std::uint64_t resolved =
        forecast_confirmed_ + forecast_false_positives_;
    return resolved ? static_cast<double>(forecast_false_positives_) /
                          static_cast<double>(resolved)
                    : 0.0;
  }
  /// Controller-tick windows whose reactive judge saw an SLO breach
  /// (counted per path per tick; the A/B bench's primary metric).
  std::uint64_t breach_windows() const noexcept { return breach_windows_; }
  /// True while a forecast pre-quarantine holds `p` at kProbeOnly.
  bool pre_quarantined(std::size_t p) const noexcept {
    return p < paths_.size() && paths_[p].pre_quarantined;
  }
  /// The estimator's current forecast for `p` (default-constructed, never
  /// actionable, while the stage is disabled).
  forecast::Forecast path_forecast(std::size_t p) const {
    return est_ ? est_->forecast(p) : forecast::Forecast{};
  }

  const std::vector<Decision>& decisions() const noexcept {
    return decisions_;
  }

  // Runtime-adjustable knobs (caller thread; apply from the next tick).
  void set_slo_target_ns(std::uint64_t t);
  void set_violation_threshold(double f) { cfg_.violation_threshold = f; }
  void set_backlog_limit(std::uint64_t n) { cfg_.backlog_limit = n; }
  const Config& config() const noexcept { return cfg_; }

  // --- tenancy (optional; see docs/TENANCY.md) -----------------------------
  /// Attach the per-tenant admission stage: every tick() harvests each
  /// tenant's window, advances its state machine, actuates transitions
  /// via Actuator::set_tenant_admission, and logs them with the same
  /// decision machinery as path quarantine (reasons tenant_throttle /
  /// tenant_shed / tenant_probation / tenant_reinstate). A transition
  /// INTO kShed auto-dumps the attached flight recorder exactly like a
  /// quarantine does. `ta` must outlive the controller; nullptr detaches.
  void attach_tenants(TenantAdmission* ta) { tenants_ = ta; }
  TenantAdmission* tenants() const noexcept { return tenants_; }

  std::uint64_t tenant_throttles() const noexcept {
    return tenants_ ? tenants_->throttles() : 0;
  }
  std::uint64_t tenant_sheds() const noexcept {
    return tenants_ ? tenants_->sheds() : 0;
  }
  std::uint64_t tenant_reinstates() const noexcept {
    return tenants_ ? tenants_->reinstates() : 0;
  }
  std::uint64_t tenant_dropped() const noexcept {
    return tenants_ ? tenants_->total_dropped() : 0;
  }

  // --- telemetry plane (optional; see docs/OBSERVABILITY.md) ---------------
  /// Forward every harvested window to `exporter` (one begin_tick /
  /// add_path* / end_tick cycle per tick): the per-tick per-path
  /// histogram time series behind the "telem" run-report section. The
  /// exporter must outlive the controller's last tick. nullptr detaches.
  void set_telem_exporter(telem::SnapshotExporter* exporter) {
    exporter_ = exporter;
  }

  /// Attach a flight recorder: every logged decision also lands on the
  /// recorder's "ctrl" channel (kCtrlDecision, n = reason code), and a
  /// transition INTO kQuarantined auto-dumps the recorder's last
  /// `dump_window_ns` of events (0 = everything retained) into
  /// last_quarantine_dump() — the post-mortem for "what was the plane
  /// doing in the ticks before this path was cut". nullptr detaches.
  void attach_recorder(telem::FlightRecorder* rec,
                       std::uint64_t dump_window_ns = 0);

  /// Timeline captured at the most recent quarantine decision (empty
  /// until the first one). mdp.flight_recorder.v1 JSON.
  const std::string& last_quarantine_dump() const noexcept {
    return last_quarantine_dump_;
  }
  std::uint64_t auto_dumps() const noexcept { return auto_dumps_; }

  /// The "ctrl" section of mdp.run_report.v2: config echo, lifetime
  /// counters, and the decision log (see docs/OBSERVABILITY.md).
  std::string report_json() const;

  /// Expose lifetime counters as `ctrl.*`. The controller must outlive
  /// any snapshot taken from `reg`.
  void register_stats(trace::StatsRegistry& reg) const;

 private:
  struct PathCtl {
    PathStateMachine fsm;
    /// Why the path last breached: "slo_breach", "backlog_breach", or
    /// "slo+backlog_breach" when both trigger conditions held in the same
    /// window — the quarantine decision reports the cause that actually
    /// fired, not a blanket label.
    const char* last_breach_reason = "slo_breach";
    /// Stage verdict of the last breaching window (empty = no evidence).
    const char* last_dominant_stage = "";
    std::uint64_t last_dominant_ns = 0;
    /// service_defer_ticks budget consumed in the current breach episode
    /// (reset by the first clean window).
    std::uint64_t service_defers_used = 0;
    // Forecast stage (only touched while cfg_.forecast.enabled):
    /// Held at kProbeOnly by a forecast (the FSM still reads kActive —
    /// only reactive evidence may hard-quarantine).
    bool pre_quarantined = false;
    std::uint64_t pre_quarantined_since = 0;
    std::uint64_t last_forecast_probe_tick = 0;  ///< 0 = never
    /// Open confirmation episode: a forecast actuation waiting for a
    /// reactive slo_breach (confirm) or expiry (false positive).
    bool fp_pending = false;
    std::uint64_t fp_since = 0;
  };

  void log_decision(Decision d);
  std::size_t active_count() const;
  /// kActive paths NOT held by a forecast pre-quarantine (== active_count
  /// while the forecast stage is disabled).
  std::size_t serving_count() const;
  /// Open a confirmation episode on `p` (no-op while one is pending:
  /// overlapping actuations share the first episode's clock).
  void open_fp_episode(std::size_t p);

  Config cfg_;
  Actuator& act_;
  SloMonitor& mon_;
  TenantAdmission* tenants_ = nullptr;
  AdaptiveHedger hedger_;
  HedgeTimeoutController hedge_timeout_;
  GranularityController gran_;
  /// Baseline pushed to the actuator on the first enabled tick, so the
  /// plane and the lever agree before any shift happens.
  bool gran_actuated_ = false;
  telem::SnapshotExporter* exporter_ = nullptr;
  telem::FlightRecorder* recorder_ = nullptr;
  telem::FlightRecorder::Channel* rec_chan_ = nullptr;
  std::uint64_t dump_window_ns_ = 0;
  std::string last_quarantine_dump_;
  std::uint64_t auto_dumps_ = 0;
  std::vector<PathCtl> paths_;
  std::vector<Decision> decisions_;
  std::uint64_t tick_ = 0;
  std::uint64_t suppressed_quarantines_ = 0;
  std::uint64_t service_deferrals_ = 0;
  std::uint64_t decisions_evicted_ = 0;
  /// Forecast stage (docs/FORECAST.md). The estimator exists only while
  /// cfg_.forecast.enabled — a null est_ is the disabled stage.
  std::unique_ptr<forecast::TailEstimator> est_;
  bool prehedge_active_ = false;
  std::uint64_t prehedge_since_ = 0;
  std::uint64_t forecast_prehedges_ = 0;
  std::uint64_t forecast_probes_ = 0;
  std::uint64_t forecast_prequarantines_ = 0;
  std::uint64_t forecast_restores_ = 0;
  std::uint64_t forecast_confirmed_ = 0;
  std::uint64_t forecast_false_positives_ = 0;
  std::uint64_t breach_windows_ = 0;
};

}  // namespace mdp::ctrl
