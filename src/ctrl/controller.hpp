// Controller: the control plane's decision stage — observation in,
// actuation out, one tick at a time.
//
// Threading model is the same as ThreadedDataPlane::pump(): tick() runs on
// the caller thread, interleaved with pump()/ingress at whatever cadence
// the caller chooses. All controller state is caller-thread-only; the only
// cross-thread traffic is the SloMonitor's atomic windows (written by
// whoever observes completions — the threaded plane's collector, the sim
// plane's egress callback) and the plane's own atomic counters. That is
// what makes test_ctrl's end-to-end case TSan-clean with workers running.
//
// Per tick, for every path:
//   1. harvest the SloMonitor window,
//   2. judge it (violation fraction vs threshold, and — for silent
//      blackholes that produce NO completions — backlog vs backlog_limit),
//   3. feed the PathStateMachine and actuate its transitions
//      (mask / flush+drain / probe-only probation / re-enable),
//   4. run the AdaptiveHedger on the worst serving-path p99.
// Every transition and every hedge change is appended to a bounded
// decision log, exported as the "ctrl" section of mdp.run_report.v2
// (docs/OBSERVABILITY.md) so benches can show *when* and *why* the
// controller acted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/actuator.hpp"
#include "ctrl/hedger.hpp"
#include "ctrl/path_state.hpp"
#include "ctrl/slo_monitor.hpp"
#include "ctrl/tenant.hpp"
#include "telem/flight_recorder.hpp"
#include "telem/snapshot_exporter.hpp"
#include "trace/registry.hpp"

namespace mdp::ctrl {

/// Stable numeric code for a decision reason string, stamped into
/// telem::EventType::kCtrlDecision events (field `n`). 0 = unknown.
/// Codes are part of the flight-recorder schema (docs/OBSERVABILITY.md):
///   1 slo_breach          2 backlog_breach     3 slo+backlog_breach
///   4 probe_breach        5 drain_start        6 drained
///   7 probation_passed    8 hedge_raise        9 hedge_lower
///  10 hedge_timeout      11 tenant_throttle   12 tenant_shed
///  13 tenant_probation   14 tenant_reinstate  15 granularity_shift
std::uint32_t decision_reason_code(const char* reason) noexcept;

struct Config {
  /// The latency objective, in whatever unit the monitor is fed.
  std::uint64_t slo_target_ns = 1'000'000;
  /// Breach when the window's violation fraction exceeds this.
  double violation_threshold = 0.01;
  /// Windows with fewer samples than this carry no SLO signal.
  std::uint64_t min_samples = 32;
  /// Backlog breach when path_backlog() exceeds this (detects silent
  /// blackholes, which produce no completions to judge). 0 disables.
  std::uint64_t backlog_limit = 0;
  /// Hysteresis knobs (quarantine_after, probation_probes).
  PathStateConfig path{};
  /// Probe packets granted onto a probation path per tick.
  std::uint64_t probe_grant_per_tick = 8;
  /// Never quarantine below this many ACTIVE paths.
  std::size_t min_serving_paths = 1;
  HedgerConfig hedger{};
  HedgeTimeoutConfig hedge_timeout{};
  /// The third lever: replication granularity (none / packet-hedge /
  /// flow-replica / both), moved from the same worst-serving-path
  /// evidence as the hedger plus the breach judge's stage attribution.
  /// Disabled by default.
  GranularityConfig granularity{};
  /// Stage-aware actuation: when a breaching ACTIVE window's dominant
  /// stage is `service` (the path's core is slow, not its queue deep),
  /// masking the path doesn't fix anything hedging can't fix better —
  /// defer the quarantine up to this many ticks per episode and let the
  /// hedger act. 0 disables (every breach counts immediately). Requires
  /// stage evidence (observe_span feeders); scalar-only windows are
  /// never deferred.
  std::uint64_t service_defer_ticks = 0;
  /// Oldest decisions are evicted past this bound.
  std::size_t decision_log_capacity = 256;
};

/// One logged control action (state transition, hedge change, or tenant
/// admission change).
struct Decision {
  static constexpr std::uint16_t kHedge = 0xffff;   ///< `path` for hedges
  static constexpr std::uint16_t kTenant = 0xfffe;  ///< `path` for tenants
  /// `path` for granularity shifts. Lowest sentinel: `path <
  /// kGranularity` means "a real path".
  static constexpr std::uint16_t kGranularity = 0xfffd;

  std::uint64_t tick = 0;
  std::uint64_t now_ns = 0;
  std::uint16_t path = 0;
  PathState from = PathState::kActive;
  PathState to = PathState::kActive;
  const char* reason = "";
  // Evidence the decision was made on.
  std::uint64_t p99_ns = 0;
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  std::uint64_t backlog = 0;
  std::size_t replicas = 1;
  /// Stage verdict: WHERE the window's latency went ("queue_wait",
  /// "service", "reorder", ...) — empty when the feeder supplied no stage
  /// evidence (plain observe()), and the latency mass it carried.
  const char* dominant_stage = "";
  std::uint64_t dominant_stage_ns = 0;
  /// Hedge deadline in force when the decision was logged (0 = the
  /// scheduler's own budget).
  std::uint64_t hedge_timeout_ns = 0;
  /// Tenant decisions only (path == kTenant): which tenant moved, where,
  /// and the window's offered arrivals the judgment was made on.
  std::uint16_t tenant = 0;
  TenantState tenant_from = TenantState::kAdmitted;
  TenantState tenant_to = TenantState::kAdmitted;
  std::uint64_t arrivals = 0;
  /// Granularity decisions only (path == kGranularity): the shift.
  core::Granularity gran_from = core::Granularity::kPacketHedge;
  core::Granularity gran_to = core::Granularity::kPacketHedge;
  /// Granularity in force when the decision was logged; serialized as
  /// the "granularity" field while the lever is enabled.
  core::Granularity granularity = core::Granularity::kPacketHedge;
  bool granularity_logged = false;
};

class Controller {
 public:
  /// `actuator` and `monitor` must outlive the controller. The monitor's
  /// SLO target is aligned to cfg.slo_target_ns on construction.
  Controller(Config cfg, Actuator& actuator, SloMonitor& monitor);

  /// Advance the control loop. Caller thread only, same as pump().
  void tick(std::uint64_t now_ns);

  PathState path_state(std::size_t p) const { return paths_[p].fsm.state(); }
  std::size_t replicas() const noexcept { return hedger_.replicas(); }
  std::uint64_t ticks() const noexcept { return tick_; }

  std::uint64_t quarantines() const noexcept;
  std::uint64_t reinstatements() const noexcept;
  std::uint64_t hedge_raises() const noexcept { return hedger_.raises(); }
  std::uint64_t hedge_lowers() const noexcept { return hedger_.lowers(); }
  std::uint64_t suppressed_quarantines() const noexcept {
    return suppressed_quarantines_;
  }
  /// Hedge deadline currently actuated (0 = scheduler's own budget).
  std::uint64_t hedge_timeout_ns() const noexcept {
    return hedge_timeout_.timeout_ns();
  }
  std::uint64_t hedge_timeout_adjustments() const noexcept {
    return hedge_timeout_.adjustments();
  }
  /// Breaches whose quarantine was deferred because the evidence said
  /// `service` (stage-aware actuation; see Config::service_defer_ticks).
  std::uint64_t service_deferrals() const noexcept {
    return service_deferrals_;
  }
  /// Replication granularity currently in force (the third lever).
  core::Granularity granularity() const noexcept {
    return gran_.granularity();
  }
  std::uint64_t granularity_shifts() const noexcept {
    return gran_.shifts();
  }

  const std::vector<Decision>& decisions() const noexcept {
    return decisions_;
  }

  // Runtime-adjustable knobs (caller thread; apply from the next tick).
  void set_slo_target_ns(std::uint64_t t);
  void set_violation_threshold(double f) { cfg_.violation_threshold = f; }
  void set_backlog_limit(std::uint64_t n) { cfg_.backlog_limit = n; }
  const Config& config() const noexcept { return cfg_; }

  // --- tenancy (optional; see docs/TENANCY.md) -----------------------------
  /// Attach the per-tenant admission stage: every tick() harvests each
  /// tenant's window, advances its state machine, actuates transitions
  /// via Actuator::set_tenant_admission, and logs them with the same
  /// decision machinery as path quarantine (reasons tenant_throttle /
  /// tenant_shed / tenant_probation / tenant_reinstate). A transition
  /// INTO kShed auto-dumps the attached flight recorder exactly like a
  /// quarantine does. `ta` must outlive the controller; nullptr detaches.
  void attach_tenants(TenantAdmission* ta) { tenants_ = ta; }
  TenantAdmission* tenants() const noexcept { return tenants_; }

  std::uint64_t tenant_throttles() const noexcept {
    return tenants_ ? tenants_->throttles() : 0;
  }
  std::uint64_t tenant_sheds() const noexcept {
    return tenants_ ? tenants_->sheds() : 0;
  }
  std::uint64_t tenant_reinstates() const noexcept {
    return tenants_ ? tenants_->reinstates() : 0;
  }
  std::uint64_t tenant_dropped() const noexcept {
    return tenants_ ? tenants_->total_dropped() : 0;
  }

  // --- telemetry plane (optional; see docs/OBSERVABILITY.md) ---------------
  /// Forward every harvested window to `exporter` (one begin_tick /
  /// add_path* / end_tick cycle per tick): the per-tick per-path
  /// histogram time series behind the "telem" run-report section. The
  /// exporter must outlive the controller's last tick. nullptr detaches.
  void set_telem_exporter(telem::SnapshotExporter* exporter) {
    exporter_ = exporter;
  }

  /// Attach a flight recorder: every logged decision also lands on the
  /// recorder's "ctrl" channel (kCtrlDecision, n = reason code), and a
  /// transition INTO kQuarantined auto-dumps the recorder's last
  /// `dump_window_ns` of events (0 = everything retained) into
  /// last_quarantine_dump() — the post-mortem for "what was the plane
  /// doing in the ticks before this path was cut". nullptr detaches.
  void attach_recorder(telem::FlightRecorder* rec,
                       std::uint64_t dump_window_ns = 0);

  /// Timeline captured at the most recent quarantine decision (empty
  /// until the first one). mdp.flight_recorder.v1 JSON.
  const std::string& last_quarantine_dump() const noexcept {
    return last_quarantine_dump_;
  }
  std::uint64_t auto_dumps() const noexcept { return auto_dumps_; }

  /// The "ctrl" section of mdp.run_report.v2: config echo, lifetime
  /// counters, and the decision log (see docs/OBSERVABILITY.md).
  std::string report_json() const;

  /// Expose lifetime counters as `ctrl.*`. The controller must outlive
  /// any snapshot taken from `reg`.
  void register_stats(trace::StatsRegistry& reg) const;

 private:
  struct PathCtl {
    PathStateMachine fsm;
    /// Why the path last breached: "slo_breach", "backlog_breach", or
    /// "slo+backlog_breach" when both trigger conditions held in the same
    /// window — the quarantine decision reports the cause that actually
    /// fired, not a blanket label.
    const char* last_breach_reason = "slo_breach";
    /// Stage verdict of the last breaching window (empty = no evidence).
    const char* last_dominant_stage = "";
    std::uint64_t last_dominant_ns = 0;
    /// service_defer_ticks budget consumed in the current breach episode
    /// (reset by the first clean window).
    std::uint64_t service_defers_used = 0;
  };

  void log_decision(Decision d);
  std::size_t active_count() const;

  Config cfg_;
  Actuator& act_;
  SloMonitor& mon_;
  TenantAdmission* tenants_ = nullptr;
  AdaptiveHedger hedger_;
  HedgeTimeoutController hedge_timeout_;
  GranularityController gran_;
  /// Baseline pushed to the actuator on the first enabled tick, so the
  /// plane and the lever agree before any shift happens.
  bool gran_actuated_ = false;
  telem::SnapshotExporter* exporter_ = nullptr;
  telem::FlightRecorder* recorder_ = nullptr;
  telem::FlightRecorder::Channel* rec_chan_ = nullptr;
  std::uint64_t dump_window_ns_ = 0;
  std::string last_quarantine_dump_;
  std::uint64_t auto_dumps_ = 0;
  std::vector<PathCtl> paths_;
  std::vector<Decision> decisions_;
  std::uint64_t tick_ = 0;
  std::uint64_t suppressed_quarantines_ = 0;
  std::uint64_t service_deferrals_ = 0;
  std::uint64_t decisions_evicted_ = 0;
};

}  // namespace mdp::ctrl
