// Actuator: the control plane's write interface onto a data plane.
//
// The Controller is deliberately blind to which vehicle it is driving —
// the simulated MdpDataPlane (virtual clock, bench timelines) or the
// ThreadedDataPlane (real threads, the loopback test rig). Each vehicle
// supplies an adapter:
//
//   ThreadedPlaneActuator  -> ThreadedDataPlane::set_path_admission /
//                             grant_probe_credits / path_inflight. All
//                             calls happen on the caller thread, the same
//                             thread that runs pump() and Controller::tick
//                             — no atomics needed beyond what the plane
//                             already exposes.
//   SimPlaneActuator       -> MdpDataPlane::set_path_up for masking,
//                             ReorderBuffer::flush_all for draining,
//                             SimCore probe jobs for probation (results
//                             loop back into the SloMonitor), and
//                             Scheduler::set_replication for hedging.
//
// Test doubles implement the interface directly (see tests/test_ctrl.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/dataplane.hpp"
#include "core/threaded_dataplane.hpp"
#include "ctrl/slo_monitor.hpp"
#include "sim/event_queue.hpp"

namespace mdp::ctrl {

enum class TenantState : std::uint8_t;  // ctrl/tenant.hpp

/// Per-path admission level the controller can set.
enum class Admission : std::uint8_t {
  kEnabled = 0,   ///< normal candidate for the dispatch policy
  kProbeOnly,     ///< only controller-granted probe packets admitted
  kDisabled,      ///< masked out entirely
};

class Actuator {
 public:
  virtual ~Actuator() = default;
  virtual std::size_t num_paths() const = 0;

  /// Mask/unmask a path in the dispatch candidate set.
  virtual void set_admission(std::size_t path, Admission a) = 0;

  /// Allow `n` probe packets onto a kProbeOnly path (probation traffic).
  virtual void grant_probes(std::size_t path, std::uint64_t n) = 0;

  /// Queued + in-flight work attributable to the path; 0 == drained.
  virtual std::uint64_t path_backlog(std::size_t path) const = 0;

  /// Push stranded work toward quiesce (reorder flush, staged wire
  /// frames). Called once per tick while the path drains; may be a no-op
  /// for planes that drain on their own.
  virtual void flush_path(std::size_t path) = 0;

  /// Hedging: desired replication factor for latency-critical copies.
  /// Default no-op — not every plane replicates.
  virtual void set_replicas(std::size_t r) { (void)r; }

  /// Hedging: pin the hedge-fire deadline (ctrl::HedgeTimeoutController);
  /// 0 restores the policy's own budget. Default no-op — not every plane
  /// hedges.
  virtual void set_hedge_timeout(std::uint64_t timeout_ns) {
    (void)timeout_ns;
  }

  /// Tenancy: mirror a tenant's admission state into the plane's ingress
  /// gate (ctrl::TenantAdmission drives this from Controller::tick).
  /// Default no-op — planes without a tenant gate ignore it; the
  /// TenantAdmission object itself already answers admit() queries.
  virtual void set_tenant_admission(std::uint16_t tenant, TenantState s) {
    (void)tenant;
    (void)s;
  }

  /// Replication granularity: what unit the plane duplicates (none /
  /// packet-hedge / flow-replica / both; ctrl::GranularityController).
  /// Default no-op — not every plane replicates flows.
  virtual void set_granularity(core::Granularity g) { (void)g; }
};

/// Adapter for the threaded plane. Caller-thread only, like pump().
class ThreadedPlaneActuator : public Actuator {
 public:
  explicit ThreadedPlaneActuator(core::ThreadedDataPlane& dp) : dp_(dp) {}

  std::size_t num_paths() const override { return dp_.num_paths(); }
  void set_admission(std::size_t path, Admission a) override;
  void grant_probes(std::size_t path, std::uint64_t n) override;
  std::uint64_t path_backlog(std::size_t path) const override {
    return dp_.path_inflight(path);
  }
  /// The threaded plane's rings drain on their own while workers run;
  /// rigs that put a wire behind the plane override this to flush it.
  void flush_path(std::size_t path) override { (void)path; }

 protected:
  core::ThreadedDataPlane& dp_;
};

/// Adapter for the simulated plane. Probation probes are tiny SimCore
/// jobs whose completion latency feeds back into the SloMonitor on the
/// probed path — the same closed loop the real traffic uses.
class SimPlaneActuator : public Actuator {
 public:
  SimPlaneActuator(sim::EventQueue& eq, core::MdpDataPlane& dp,
                   SloMonitor& monitor, sim::TimeNs probe_cost_ns = 200)
      : eq_(eq), dp_(dp), monitor_(monitor), probe_cost_ns_(probe_cost_ns) {}

  std::size_t num_paths() const override { return dp_.num_paths(); }
  void set_admission(std::size_t path, Admission a) override;
  void grant_probes(std::size_t path, std::uint64_t n) override;
  std::uint64_t path_backlog(std::size_t path) const override {
    return dp_.inflight(path);
  }
  void flush_path(std::size_t path) override;
  void set_replicas(std::size_t r) override {
    dp_.scheduler().set_replication(r);
  }
  void set_hedge_timeout(std::uint64_t timeout_ns) override {
    dp_.scheduler().set_hedge_timeout_ns(
        static_cast<sim::TimeNs>(timeout_ns));
  }
  void set_granularity(core::Granularity g) override {
    dp_.set_granularity(g);
  }

  std::uint64_t probes_sent() const noexcept { return probes_sent_; }

 private:
  sim::EventQueue& eq_;
  core::MdpDataPlane& dp_;
  SloMonitor& monitor_;
  sim::TimeNs probe_cost_ns_;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace mdp::ctrl
