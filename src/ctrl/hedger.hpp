// AdaptiveHedger: closes the loop on the replication factor.
//
// RepNet's lesson (see PAPERS.md) is that replication must be selective —
// at low load an extra copy erases the tail for free, at high load the
// copies ARE the load and the whole curve collapses. The static choice
// (RedundantScheduler r=2/3, AdaptiveMdpConfig::replicate_k) bakes that
// trade-off in at startup; the hedger moves it at runtime from observed
// tail inflation vs the SLO target:
//
//   inflation = serving-path worst p99 / slo_target
//   inflation > raise_threshold  (sustained)  -> replicas + 1
//   inflation < lower_threshold  (sustained)  -> replicas - 1
//
// Both edges require `sustain_ticks` consecutive out-of-band windows and
// respect a cooldown after every change, so the factor ratchets instead of
// oscillating with one noisy window — the same hysteresis discipline as
// the PathStateMachine. Pure decision logic; the Controller actuates the
// returned factor through Actuator::set_replicas().
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/granularity.hpp"

namespace mdp::ctrl {

struct HedgerConfig {
  bool enabled = true;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 3;
  /// Raise when p99 exceeds raise_threshold x SLO target.
  double raise_threshold = 1.0;
  /// Lower when p99 falls below lower_threshold x SLO target.
  double lower_threshold = 0.5;
  /// Consecutive qualifying windows before a change.
  int sustain_ticks = 2;
  /// Ticks after a change during which no further change happens.
  int cooldown_ticks = 4;
  /// Windows smaller than this carry no signal.
  std::uint64_t min_samples = 32;
};

class AdaptiveHedger {
 public:
  explicit AdaptiveHedger(HedgerConfig cfg = {});

  /// One controller tick: feed the worst serving-path p99 and the window's
  /// sample count; returns the (possibly updated) replication factor.
  std::size_t update(std::uint64_t worst_p99_ns, std::uint64_t samples,
                     std::uint64_t slo_target_ns);

  /// Forecast-driven raise (mdp::forecast pre-hedge): +1 replica within
  /// max_replicas on predicted — not yet measured — tail inflation. Starts
  /// the same cooldown a measured raise would, so the reactive loop can't
  /// immediately fight the pre-raise; honored cooldowns also mean a
  /// flapping forecast can't ratchet replicas faster than measurement
  /// could. Returns the (possibly unchanged) factor.
  std::size_t pre_raise() {
    if (!cfg_.enabled || cooldown_ > 0 || replicas_ >= cfg_.max_replicas)
      return replicas_;
    ++replicas_;
    ++pre_raises_;
    raise_streak_ = 0;
    lower_streak_ = 0;
    cooldown_ = cfg_.cooldown_ticks;
    return replicas_;
  }

  std::size_t replicas() const noexcept { return replicas_; }
  std::uint64_t raises() const noexcept { return raises_; }
  std::uint64_t lowers() const noexcept { return lowers_; }
  std::uint64_t pre_raises() const noexcept { return pre_raises_; }

 private:
  HedgerConfig cfg_;
  std::size_t replicas_;
  int raise_streak_ = 0;
  int lower_streak_ = 0;
  int cooldown_ = 0;
  std::uint64_t raises_ = 0;
  std::uint64_t lowers_ = 0;
  std::uint64_t pre_raises_ = 0;
};

// --- hedge-timeout control -------------------------------------------------------
//
// The replica count is the coarse lever; the hedge TIMEOUT is the fine
// one. Fire too early and every packet sends two copies (the load doubles,
// RepNet's failure mode); fire too late and the straggler has already
// blown the SLO before its second copy leaves. The controller below moves
// the deadline inside [floor, ceiling] where
//
//   floor   = max(p50, min_timeout_ns)   never hedge before the median —
//                                        half of all packets would hedge
//   ceiling = max_timeout_ns (or the SLO target when 0) — a hedge fired
//                                        at/after the deadline is useless
//
// by a PID loop on the normalized tail error e = (p99 - slo) / slo:
// positive error (tail past the SLO) pushes the deadline down toward the
// median so stragglers get rescued sooner; negative error relaxes it back
// toward the ceiling, shedding duplicate-send load. kp reacts to the
// current window, ki works off persistent offsets (a tail that sits just
// above the SLO for many windows keeps ratcheting the deadline down), kd
// damps reaction to one-window spikes. A deadband suppresses actuation
// for sub-noise changes so the scheduler knob isn't twitched every tick.

struct HedgeTimeoutConfig {
  bool enabled = false;
  std::uint64_t min_timeout_ns = 1'000;
  /// Deadline ceiling; 0 = the SLO target passed to update().
  std::uint64_t max_timeout_ns = 0;
  double kp = 0.5;
  double ki = 0.1;
  double kd = 0.0;
  /// |integral| clamp, in error units (anti-windup).
  double integral_limit = 4.0;
  /// Windows smaller than this carry no signal.
  std::uint64_t min_samples = 32;
  /// Relative deadline change below which no actuation happens.
  double deadband = 0.05;
};

class HedgeTimeoutController {
 public:
  explicit HedgeTimeoutController(HedgeTimeoutConfig cfg = {});

  /// One controller tick: feed the worst serving path's window median and
  /// p99. Returns the hedge deadline to actuate, or 0 while disabled /
  /// before the first adequate window (meaning: leave the scheduler's own
  /// budget in place).
  std::uint64_t update(std::uint64_t p50_ns, std::uint64_t p99_ns,
                       std::uint64_t samples, std::uint64_t slo_target_ns);

  /// The currently actuated deadline (0 = none yet).
  std::uint64_t timeout_ns() const noexcept { return timeout_ns_; }
  std::uint64_t adjustments() const noexcept { return adjustments_; }
  bool enabled() const noexcept { return cfg_.enabled; }

  /// Forecast-driven tightening (mdp::forecast pre-hedge): slide the
  /// deadline position toward the floor by `frac` of its current value
  /// ahead of any measured error. The move flows through the next
  /// update()'s normal deadband/actuation path — the PID stays the single
  /// writer of the actuated deadline, the forecast only biases it.
  void pre_tighten(double frac) {
    if (!cfg_.enabled) return;
    if (frac < 0.0) frac = 0.0;
    if (frac > 1.0) frac = 1.0;
    position_ *= 1.0 - frac;
  }

 private:
  HedgeTimeoutConfig cfg_;
  /// Normalized deadline position in [0, 1]: 0 = floor, 1 = ceiling.
  /// Starts at the ceiling (conservative: no hedging before evidence).
  double position_ = 1.0;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool primed_ = false;
  std::uint64_t timeout_ns_ = 0;
  std::uint64_t adjustments_ = 0;
};

// --- replication granularity -----------------------------------------------------
//
// The third lever: not how many copies or when, but WHAT gets duplicated.
// Packet hedging reacts after a deadline is already blown — right when
// the pain is queueing (the straggler re-queues elsewhere and wins). But
// when the pain is the service stage itself (a stolen core slows every
// packet it serves), each packet of a short flow eats the slowdown and
// hedges one by one; RepNet's flow-granularity replication — clone the
// whole short flow onto a disjoint path set up front — is the cheaper
// fix. The policy reads the same stage-attribution evidence the breach
// judge produces:
//
//   sustained inflation, service-dominant   -> escalate toward flow
//                                              replicas (kFlowReplica,
//                                              then kBoth if it persists)
//   sustained inflation, queueing-dominant  -> escalate toward packet
//                                              hedging (kBoth covers the
//                                              single-copy remainder)
//   sustained calm                          -> step back down toward the
//                                              configured baseline
//
// Same sustain/cooldown hysteresis as the hedger: one noisy window never
// moves the lever. Pure decision logic; the Controller actuates through
// Actuator::set_granularity() and logs "granularity_shift" decisions.

struct GranularityConfig {
  bool enabled = false;
  /// The resting granularity while the tail is in-band.
  core::Granularity baseline = core::Granularity::kPacketHedge;
  /// Escalate when p99 exceeds raise_threshold x SLO target (sustained).
  double raise_threshold = 1.0;
  /// De-escalate when p99 falls below lower_threshold x SLO (sustained).
  double lower_threshold = 0.5;
  int sustain_ticks = 2;
  int cooldown_ticks = 4;
  std::uint64_t min_samples = 32;
};

class GranularityController {
 public:
  explicit GranularityController(GranularityConfig cfg = {});

  /// One controller tick: worst serving-path p99/samples plus the breach
  /// judge's dominant-stage attribution ("" or nullptr = no stage
  /// evidence). Returns the (possibly updated) granularity.
  core::Granularity update(std::uint64_t worst_p99_ns, std::uint64_t samples,
                           std::uint64_t slo_target_ns,
                           const char* dominant_stage);

  core::Granularity granularity() const noexcept { return granularity_; }
  std::uint64_t shifts() const noexcept { return shifts_; }

 private:
  core::Granularity escalate(const char* dominant_stage) const;
  core::Granularity deescalate() const;

  GranularityConfig cfg_;
  core::Granularity granularity_;
  int raise_streak_ = 0;
  int lower_streak_ = 0;
  int cooldown_ = 0;
  std::uint64_t shifts_ = 0;
};

}  // namespace mdp::ctrl
