// AdaptiveHedger: closes the loop on the replication factor.
//
// RepNet's lesson (see PAPERS.md) is that replication must be selective —
// at low load an extra copy erases the tail for free, at high load the
// copies ARE the load and the whole curve collapses. The static choice
// (RedundantScheduler r=2/3, AdaptiveMdpConfig::replicate_k) bakes that
// trade-off in at startup; the hedger moves it at runtime from observed
// tail inflation vs the SLO target:
//
//   inflation = serving-path worst p99 / slo_target
//   inflation > raise_threshold  (sustained)  -> replicas + 1
//   inflation < lower_threshold  (sustained)  -> replicas - 1
//
// Both edges require `sustain_ticks` consecutive out-of-band windows and
// respect a cooldown after every change, so the factor ratchets instead of
// oscillating with one noisy window — the same hysteresis discipline as
// the PathStateMachine. Pure decision logic; the Controller actuates the
// returned factor through Actuator::set_replicas().
#pragma once

#include <cstddef>
#include <cstdint>

namespace mdp::ctrl {

struct HedgerConfig {
  bool enabled = true;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 3;
  /// Raise when p99 exceeds raise_threshold x SLO target.
  double raise_threshold = 1.0;
  /// Lower when p99 falls below lower_threshold x SLO target.
  double lower_threshold = 0.5;
  /// Consecutive qualifying windows before a change.
  int sustain_ticks = 2;
  /// Ticks after a change during which no further change happens.
  int cooldown_ticks = 4;
  /// Windows smaller than this carry no signal.
  std::uint64_t min_samples = 32;
};

class AdaptiveHedger {
 public:
  explicit AdaptiveHedger(HedgerConfig cfg = {});

  /// One controller tick: feed the worst serving-path p99 and the window's
  /// sample count; returns the (possibly updated) replication factor.
  std::size_t update(std::uint64_t worst_p99_ns, std::uint64_t samples,
                     std::uint64_t slo_target_ns);

  std::size_t replicas() const noexcept { return replicas_; }
  std::uint64_t raises() const noexcept { return raises_; }
  std::uint64_t lowers() const noexcept { return lowers_; }

 private:
  HedgerConfig cfg_;
  std::size_t replicas_;
  int raise_streak_ = 0;
  int lower_streak_ = 0;
  int cooldown_ = 0;
  std::uint64_t raises_ = 0;
  std::uint64_t lowers_ = 0;
};

}  // namespace mdp::ctrl
