#include "ctrl/actuator.hpp"

namespace mdp::ctrl {

// --- ThreadedPlaneActuator ------------------------------------------------------

void ThreadedPlaneActuator::set_admission(std::size_t path, Admission a) {
  core::PathAdmission pa = core::PathAdmission::kEnabled;
  if (a == Admission::kProbeOnly) pa = core::PathAdmission::kProbeOnly;
  if (a == Admission::kDisabled) pa = core::PathAdmission::kDisabled;
  dp_.set_path_admission(path, pa);
}

void ThreadedPlaneActuator::grant_probes(std::size_t path, std::uint64_t n) {
  dp_.grant_probe_credits(path, n);
}

// --- SimPlaneActuator -----------------------------------------------------------

void SimPlaneActuator::set_admission(std::size_t path, Admission a) {
  // The sim plane's candidate mask is binary: schedulers skip down paths.
  // Probe-only probation rides on top — the path stays masked and the
  // probes go straight onto its core (grant_probes), bypassing dispatch.
  dp_.set_path_up(path, a == Admission::kEnabled);
}

void SimPlaneActuator::grant_probes(std::size_t path, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const sim::TimeNs start = eq_.now();
    ++probes_sent_;
    // High-priority so the probe measures the core's responsiveness (the
    // stall), not the drained queue; visible=false keeps it out of the
    // schedulers' backlog view, like health probes.
    dp_.core(path).submit(
        probe_cost_ns_,
        [this, path, start](sim::TimeNs now) {
          monitor_.observe(static_cast<std::uint16_t>(path), now - start);
        },
        /*high_priority=*/true, /*visible=*/false);
  }
}

void SimPlaneActuator::flush_path(std::size_t path) {
  (void)path;
  // Release everything the merge stage is holding for resequencing; the
  // quarantined path's gaps will not fill while it is masked, and the
  // flushed packets advance every flow window past them.
  dp_.reorder_mut().flush_all();
}

}  // namespace mdp::ctrl
