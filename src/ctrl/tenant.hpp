// Tenant admission: the control plane's per-tenant stage — SLO classes,
// arrival contracts, and the shed/throttle state machine that keeps one
// tenant's connection storm from becoming every tenant's tail.
//
// Model (docs/TENANCY.md): each tenant carries a contract — an SLO target
// for its completions and an arrival budget per controller tick window.
// The controller judges the ARRIVAL side, not the latency side: when the
// plane's tail degrades under a storm, every tenant's latency suffers
// (the victim's windows breach too), so shedding on SLO violation would
// cut the victim. Shedding on budget violation cuts the tenant that broke
// its contract. Per-tenant SLO windows are still harvested every tick —
// they are the evidence (reported, exported, asserted in tests) that the
// isolation works.
//
// TenantAdmission threading mirrors SloMonitor: admit() / observe() /
// on_flow_arrival() are any-thread (relaxed atomics, lock-free, no
// fences); harvesting and the state machine run on the controller (tick)
// thread only. The data plane reads each tenant's admission state as a
// single relaxed atomic load per packet.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/slo_monitor.hpp"
#include "stats/cacheline.hpp"

namespace mdp::ctrl {

/// Admission state of one tenant (docs/TENANCY.md state machine):
///   kAdmitted  -> every packet admitted
///   kThrottled -> 1 in throttle_keep_one_in packets admitted
///   kShed      -> nothing admitted
///   kProbation -> admitted, but one storming window re-sheds
enum class TenantState : std::uint8_t {
  kAdmitted = 0,
  kThrottled,
  kShed,
  kProbation,
};

const char* tenant_state_name(TenantState s) noexcept;

/// One tenant's contract. Budgets of 0 mean "uncontracted" (never judged
/// storming, unlimited hedges) — the implicit default tenant's shape.
struct TenantSpec {
  std::string name = "tenant";
  /// Per-tenant SLO target (same unit the monitor is fed); 0 = inherit
  /// TenantAdmissionConfig::default_slo_target_ns.
  std::uint64_t slo_target_ns = 0;
  /// Contracted packet arrivals per controller tick window; exceeding it
  /// makes the window "storming". 0 = uncontracted.
  std::uint64_t arrival_budget_per_tick = 0;
  /// Hedge copies this tenant may spend per tick window (tokens refilled
  /// at harvest). 0 = unlimited.
  std::uint64_t hedge_budget_per_tick = 0;
  /// While kThrottled, 1 in this many packets is admitted (>= 2).
  std::uint32_t throttle_keep_one_in = 8;
};

struct TenantAdmissionConfig {
  std::vector<TenantSpec> tenants;
  /// SLO target for tenants whose spec leaves slo_target_ns = 0.
  std::uint64_t default_slo_target_ns = 1'000'000;
  /// Consecutive storming windows before kAdmitted -> kThrottled (>= 1).
  std::uint32_t throttle_after = 2;
  /// Further consecutive storming windows before kThrottled -> kShed.
  std::uint32_t shed_after = 2;
  /// Calm (in-budget) windows before kShed -> kProbation, and before
  /// kThrottled -> kAdmitted.
  std::uint32_t cooldown_windows = 4;
  /// Calm windows in kProbation before full reinstatement.
  std::uint32_t probation_windows = 4;
};

/// Pure hysteresis FSM for one tenant, windowed like PathStateMachine:
/// one on_window(storming) call per controller tick. Tick-thread only.
class TenantStateMachine {
 public:
  TenantStateMachine() : TenantStateMachine(2, 2, 4, 4) {}
  TenantStateMachine(std::uint32_t throttle_after, std::uint32_t shed_after,
                     std::uint32_t cooldown_windows,
                     std::uint32_t probation_windows)
      : throttle_after_(throttle_after ? throttle_after : 1),
        shed_after_(shed_after ? shed_after : 1),
        cooldown_windows_(cooldown_windows ? cooldown_windows : 1),
        probation_windows_(probation_windows ? probation_windows : 1) {}

  /// Advance one window. Returns true when the state changed.
  bool on_window(bool storming);

  TenantState state() const noexcept { return state_; }
  std::uint64_t throttles() const noexcept { return throttles_; }
  std::uint64_t sheds() const noexcept { return sheds_; }
  std::uint64_t reinstates() const noexcept { return reinstates_; }

 private:
  std::uint32_t throttle_after_;
  std::uint32_t shed_after_;
  std::uint32_t cooldown_windows_;
  std::uint32_t probation_windows_;
  TenantState state_ = TenantState::kAdmitted;
  std::uint32_t storm_streak_ = 0;
  std::uint32_t calm_streak_ = 0;
  std::uint64_t throttles_ = 0;
  std::uint64_t sheds_ = 0;
  std::uint64_t reinstates_ = 0;
};

class TenantAdmission {
 public:
  explicit TenantAdmission(TenantAdmissionConfig cfg);

  std::size_t num_tenants() const noexcept { return slots_.size(); }
  const TenantSpec& spec(std::size_t t) const { return cfg_.tenants[t]; }
  const TenantAdmissionConfig& config() const noexcept { return cfg_; }

  // --- any-thread (data plane) --------------------------------------------
  /// Count one packet arrival for `tenant` and decide its fate under the
  /// tenant's current admission state. Lock-free; false = drop at the
  /// door (the packet must not enter the plane).
  bool admit(std::uint16_t tenant) noexcept;

  /// Count one new-flow arrival (the connection-storm signal, distinct
  /// from per-packet arrivals in reports).
  void on_flow_arrival(std::uint16_t tenant) noexcept;

  /// Record a completed packet's latency against the tenant's SLO class.
  void observe(std::uint16_t tenant, std::uint64_t latency_ns) noexcept {
    mon_.observe(tenant, latency_ns);
  }

  /// Spend one hedge token (per-tenant hedging budget). True = the tenant
  /// may hedge this packet; unlimited when the spec's budget is 0.
  bool try_consume_hedge_token(std::uint16_t tenant) noexcept;

  /// Current admission state; single relaxed load, any thread.
  TenantState state(std::uint16_t tenant) const noexcept;

  // --- tick thread ---------------------------------------------------------
  struct TickResult {
    TenantState before = TenantState::kAdmitted;
    TenantState after = TenantState::kAdmitted;
    bool changed = false;
    bool storming = false;
    const char* reason = "";  ///< set iff changed
    std::uint64_t arrivals = 0;
    std::uint64_t admitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t flow_arrivals = 0;
    WindowStats slo;  ///< the tenant's harvested latency window
  };

  /// Harvest `tenant`'s window (exchange-to-zero), refill its hedge
  /// tokens, and advance its state machine. Controller thread only.
  TickResult tick_tenant(std::size_t tenant);

  /// The per-tenant SLO monitor (slot == tenant id).
  SloMonitor& monitor() noexcept { return mon_; }
  const SloMonitor& monitor() const noexcept { return mon_; }

  // Lifetime totals (tick thread for per-tenant FSM counters; dropped is
  // any-thread safe).
  std::uint64_t throttles() const noexcept;
  std::uint64_t sheds() const noexcept;
  std::uint64_t reinstates() const noexcept;
  std::uint64_t total_dropped() const noexcept;
  std::uint64_t dropped(std::size_t tenant) const noexcept;
  std::size_t shed_count() const noexcept;  ///< tenants currently kShed

 private:
  /// Hot counters one interference line per tenant so tenant A's packet
  /// rate never steals tenant B's counter line (same discipline as
  /// SloMonitor::PathWindow).
  struct alignas(stats::kCacheLineSize) Slot {
    std::atomic<std::uint64_t> arrivals{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> flow_arrivals{0};
    std::atomic<std::uint64_t> throttle_seq{0};
    std::atomic<std::uint64_t> hedge_tokens{0};
    alignas(stats::kCacheLineSize) std::atomic<std::uint8_t> state{
        static_cast<std::uint8_t>(TenantState::kAdmitted)};
    std::atomic<std::uint64_t> lifetime_dropped{0};
    /// Tick-thread only.
    TenantStateMachine fsm;
  };

  TenantAdmissionConfig cfg_;
  std::vector<std::unique_ptr<Slot>> slots_;
  SloMonitor mon_;
};

}  // namespace mdp::ctrl
