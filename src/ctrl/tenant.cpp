#include "ctrl/tenant.hpp"

namespace mdp::ctrl {

const char* tenant_state_name(TenantState s) noexcept {
  switch (s) {
    case TenantState::kAdmitted: return "ADMITTED";
    case TenantState::kThrottled: return "THROTTLED";
    case TenantState::kShed: return "SHED";
    case TenantState::kProbation: return "PROBATION";
  }
  return "?";
}

bool TenantStateMachine::on_window(bool storming) {
  if (storming) {
    ++storm_streak_;
    calm_streak_ = 0;
  } else {
    ++calm_streak_;
    storm_streak_ = 0;
  }
  const TenantState before = state_;
  switch (state_) {
    case TenantState::kAdmitted:
      if (storm_streak_ >= throttle_after_) {
        state_ = TenantState::kThrottled;
        ++throttles_;
        storm_streak_ = 0;
      }
      break;
    case TenantState::kThrottled:
      // Still storming through the throttle: escalate to a full shed.
      if (storm_streak_ >= shed_after_) {
        state_ = TenantState::kShed;
        ++sheds_;
        storm_streak_ = 0;
      } else if (calm_streak_ >= cooldown_windows_) {
        state_ = TenantState::kAdmitted;
        ++reinstates_;
        calm_streak_ = 0;
      }
      break;
    case TenantState::kShed:
      // Arrivals measure OFFERED load while shed (nothing is admitted),
      // so calm here means the storm source actually stopped.
      if (calm_streak_ >= cooldown_windows_) {
        state_ = TenantState::kProbation;
        calm_streak_ = 0;
      }
      break;
    case TenantState::kProbation:
      // Probation has no hysteresis: one storming window re-sheds.
      if (storming) {
        state_ = TenantState::kShed;
        ++sheds_;
        storm_streak_ = 0;
      } else if (calm_streak_ >= probation_windows_) {
        state_ = TenantState::kAdmitted;
        ++reinstates_;
        calm_streak_ = 0;
      }
      break;
  }
  return state_ != before;
}

TenantAdmission::TenantAdmission(TenantAdmissionConfig cfg)
    : cfg_(std::move(cfg)),
      mon_(cfg_.tenants.empty() ? 1 : cfg_.tenants.size(),
           cfg_.default_slo_target_ns) {
  if (cfg_.tenants.empty()) cfg_.tenants.emplace_back();
  for (auto& spec : cfg_.tenants)
    if (spec.throttle_keep_one_in < 2) spec.throttle_keep_one_in = 2;
  slots_.reserve(cfg_.tenants.size());
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    auto s = std::make_unique<Slot>();
    s->fsm = TenantStateMachine(cfg_.throttle_after, cfg_.shed_after,
                                cfg_.cooldown_windows,
                                cfg_.probation_windows);
    s->hedge_tokens.store(cfg_.tenants[t].hedge_budget_per_tick,
                          std::memory_order_relaxed);
    slots_.push_back(std::move(s));
    if (cfg_.tenants[t].slo_target_ns)
      mon_.set_slot_target_ns(t, cfg_.tenants[t].slo_target_ns);
  }
}

bool TenantAdmission::admit(std::uint16_t tenant) noexcept {
  if (tenant >= slots_.size()) return true;  // unknown tenants pass
  Slot& s = *slots_[tenant];
  s.arrivals.fetch_add(1, std::memory_order_relaxed);
  switch (static_cast<TenantState>(
      s.state.load(std::memory_order_relaxed))) {
    case TenantState::kAdmitted:
    case TenantState::kProbation:
      s.admitted.fetch_add(1, std::memory_order_relaxed);
      return true;
    case TenantState::kThrottled: {
      // Deterministic 1-in-N keep: the fetch_add sequences concurrent
      // callers, so exactly one of every N consecutive arrivals passes.
      const std::uint64_t seq =
          s.throttle_seq.fetch_add(1, std::memory_order_relaxed);
      if (seq % cfg_.tenants[tenant].throttle_keep_one_in == 0) {
        s.admitted.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      s.dropped.fetch_add(1, std::memory_order_relaxed);
      s.lifetime_dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    case TenantState::kShed:
      s.dropped.fetch_add(1, std::memory_order_relaxed);
      s.lifetime_dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
  }
  return true;
}

void TenantAdmission::on_flow_arrival(std::uint16_t tenant) noexcept {
  if (tenant >= slots_.size()) return;
  slots_[tenant]->flow_arrivals.fetch_add(1, std::memory_order_relaxed);
}

bool TenantAdmission::try_consume_hedge_token(
    std::uint16_t tenant) noexcept {
  if (tenant >= slots_.size()) return true;
  if (cfg_.tenants[tenant].hedge_budget_per_tick == 0) return true;
  Slot& s = *slots_[tenant];
  std::uint64_t have = s.hedge_tokens.load(std::memory_order_relaxed);
  while (have > 0) {
    if (s.hedge_tokens.compare_exchange_weak(have, have - 1,
                                             std::memory_order_relaxed))
      return true;
  }
  return false;
}

TenantState TenantAdmission::state(std::uint16_t tenant) const noexcept {
  if (tenant >= slots_.size()) return TenantState::kAdmitted;
  return static_cast<TenantState>(
      slots_[tenant]->state.load(std::memory_order_relaxed));
}

TenantAdmission::TickResult TenantAdmission::tick_tenant(
    std::size_t tenant) {
  TickResult r;
  if (tenant >= slots_.size()) return r;
  Slot& s = *slots_[tenant];
  const TenantSpec& spec = cfg_.tenants[tenant];

  r.arrivals = s.arrivals.exchange(0, std::memory_order_relaxed);
  r.admitted = s.admitted.exchange(0, std::memory_order_relaxed);
  r.dropped = s.dropped.exchange(0, std::memory_order_relaxed);
  r.flow_arrivals = s.flow_arrivals.exchange(0, std::memory_order_relaxed);
  s.hedge_tokens.store(spec.hedge_budget_per_tick,
                       std::memory_order_relaxed);
  r.slo = mon_.harvest(tenant);

  r.storming = spec.arrival_budget_per_tick > 0 &&
               r.arrivals > spec.arrival_budget_per_tick;
  r.before = s.fsm.state();
  r.changed = s.fsm.on_window(r.storming);
  r.after = s.fsm.state();
  if (r.changed) {
    s.state.store(static_cast<std::uint8_t>(r.after),
                  std::memory_order_relaxed);
    switch (r.after) {
      case TenantState::kThrottled: r.reason = "tenant_throttle"; break;
      case TenantState::kShed: r.reason = "tenant_shed"; break;
      case TenantState::kProbation: r.reason = "tenant_probation"; break;
      case TenantState::kAdmitted: r.reason = "tenant_reinstate"; break;
    }
  }
  return r;
}

std::uint64_t TenantAdmission::throttles() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s->fsm.throttles();
  return n;
}

std::uint64_t TenantAdmission::sheds() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s->fsm.sheds();
  return n;
}

std::uint64_t TenantAdmission::reinstates() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s->fsm.reinstates();
  return n;
}

std::uint64_t TenantAdmission::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : slots_)
    n += s->lifetime_dropped.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t TenantAdmission::dropped(std::size_t tenant) const noexcept {
  if (tenant >= slots_.size()) return 0;
  return slots_[tenant]->lifetime_dropped.load(std::memory_order_relaxed);
}

std::size_t TenantAdmission::shed_count() const noexcept {
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (static_cast<TenantState>(s->state.load(
            std::memory_order_relaxed)) == TenantState::kShed)
      ++n;
  return n;
}

}  // namespace mdp::ctrl
