#include "ctrl/hedger.hpp"

namespace mdp::ctrl {

AdaptiveHedger::AdaptiveHedger(HedgerConfig cfg) : cfg_(cfg) {
  if (cfg_.min_replicas == 0) cfg_.min_replicas = 1;
  if (cfg_.max_replicas < cfg_.min_replicas)
    cfg_.max_replicas = cfg_.min_replicas;
  if (cfg_.sustain_ticks < 1) cfg_.sustain_ticks = 1;
  replicas_ = cfg_.min_replicas;
}

std::size_t AdaptiveHedger::update(std::uint64_t worst_p99_ns,
                                   std::uint64_t samples,
                                   std::uint64_t slo_target_ns) {
  if (!cfg_.enabled || slo_target_ns == 0) return replicas_;
  if (cooldown_ > 0) --cooldown_;
  if (samples < cfg_.min_samples) {
    // No signal: hold streaks, don't let silence accumulate toward a
    // change (mirrors the state machine's has_signal rule).
    raise_streak_ = 0;
    lower_streak_ = 0;
    return replicas_;
  }
  const double inflation = static_cast<double>(worst_p99_ns) /
                           static_cast<double>(slo_target_ns);
  if (inflation > cfg_.raise_threshold) {
    lower_streak_ = 0;
    if (++raise_streak_ >= cfg_.sustain_ticks && cooldown_ == 0 &&
        replicas_ < cfg_.max_replicas) {
      ++replicas_;
      ++raises_;
      raise_streak_ = 0;
      cooldown_ = cfg_.cooldown_ticks;
    }
  } else if (inflation < cfg_.lower_threshold) {
    raise_streak_ = 0;
    if (++lower_streak_ >= cfg_.sustain_ticks && cooldown_ == 0 &&
        replicas_ > cfg_.min_replicas) {
      --replicas_;
      ++lowers_;
      lower_streak_ = 0;
      cooldown_ = cfg_.cooldown_ticks;
    }
  } else {
    raise_streak_ = 0;
    lower_streak_ = 0;
  }
  return replicas_;
}

}  // namespace mdp::ctrl
